// Benchmarks regenerating the shape of every figure in the paper's
// evaluation, plus ablations of the design choices called out in
// DESIGN.md. Each benchmark measures the host cost of one experiment
// unit and attaches the experiment's headline quantity as a custom
// metric (cut value, flip ratio, traffic saving, ...), so
//
//	go test -bench=. -benchmem
//
// doubles as a smoke regeneration of the whole evaluation at reduced
// scale. The full-resolution figures come from cmd/experiments.
package mbrim_test

import (
	"testing"

	"mbrim/internal/brim"
	"mbrim/internal/dnc"
	"mbrim/internal/graph"
	"mbrim/internal/interconnect"
	"mbrim/internal/ising"
	"mbrim/internal/multichip"
	"mbrim/internal/rng"
	"mbrim/internal/sa"
	"mbrim/internal/sbm"
)

func benchGraph(n int, seed uint64) (*graph.Graph, *ising.Model) {
	g := graph.Complete(n, rng.New(seed))
	return g, g.ToIsing()
}

// --- Fig 1: divide-and-conquer past the capacity cliff ---------------

func BenchmarkFig1DivideAndConquer(b *testing.B) {
	b.Run("WithinCapacity", func(b *testing.B) {
		_, m := benchGraph(64, 1)
		mach := &dnc.ProxyMachine{Cap: 64, AnnealNS: 1000, Program: 100, Sweeps: 30}
		for i := 0; i < b.N; i++ {
			sol, _ := mach.Anneal(m, nil, uint64(i))
			_ = sol
		}
	})
	b.Run("QBSolvBeyondCapacity", func(b *testing.B) {
		_, m := benchGraph(96, 1)
		mach := &dnc.ProxyMachine{Cap: 64, AnnealNS: 1000, Program: 100, Sweeps: 30}
		var glue int64
		for i := 0; i < b.N; i++ {
			res := dnc.QBSolv(m, mach, dnc.QBSolvConfig{Seed: uint64(i)})
			glue += res.GlueOps
		}
		b.ReportMetric(float64(glue)/float64(b.N), "glueOps/op")
	})
	b.Run("OursBeyondCapacity", func(b *testing.B) {
		_, m := benchGraph(96, 1)
		mach := &dnc.ProxyMachine{Cap: 64, AnnealNS: 1000, Program: 100, Sweeps: 30}
		for i := 0; i < b.N; i++ {
			dnc.Ours(m, mach, dnc.OursConfig{Seed: uint64(i)})
		}
	})
}

// --- Fig 9: energy surprise vs ignorance ------------------------------

func BenchmarkFig9EnergySurprise(b *testing.B) {
	_, m := benchGraph(256, 2)
	for i := 0; i < b.N; i++ {
		samples := multichip.EnergySurprise(m, multichip.SurpriseConfig{
			Solvers: 4, EpochMoves: 64, Epochs: 5, Runs: 2, Seed: uint64(i),
		})
		if len(samples) == 0 {
			b.Fatal("no samples")
		}
	}
}

// --- Fig 11: single-solver landscape ----------------------------------

func BenchmarkFig11SingleSolver(b *testing.B) {
	g, m := benchGraph(256, 3)
	b.Run("BRIM", func(b *testing.B) {
		var cut float64
		for i := 0; i < b.N; i++ {
			res := brim.Solve(m, brim.SolveConfig{Duration: 60, Config: brim.Config{Seed: uint64(i)}})
			cut = g.CutFromEnergy(res.Energy)
		}
		b.ReportMetric(cut, "cut")
	})
	b.Run("SA", func(b *testing.B) {
		var cut float64
		for i := 0; i < b.N; i++ {
			res := sa.Solve(m, sa.Config{Sweeps: 100, Seed: uint64(i)})
			cut = g.CutFromEnergy(res.Energy)
		}
		b.ReportMetric(cut, "cut")
	})
	b.Run("bSBM", func(b *testing.B) {
		var cut float64
		for i := 0; i < b.N; i++ {
			res := sbm.Solve(m, sbm.Config{Variant: sbm.Ballistic, Steps: 300, Seed: uint64(i)})
			cut = g.CutValue(res.Spins)
		}
		b.ReportMetric(cut, "cut")
	})
	b.Run("dSBM", func(b *testing.B) {
		var cut float64
		for i := 0; i < b.N; i++ {
			res := sbm.Solve(m, sbm.Config{Variant: sbm.Discrete, Steps: 300, Seed: uint64(i)})
			cut = g.CutValue(res.Spins)
		}
		b.ReportMetric(cut, "cut")
	})
}

// --- Fig 12: multiprocessor under bandwidth tiers ---------------------

func BenchmarkFig12MultichipQuality(b *testing.B) {
	g, m := benchGraph(256, 4)
	bwScale := 256.0 / 16384
	tiers := []struct {
		name string
		rate float64
	}{
		{"3D", 0},
		{"HB", 250 * bwScale},
		{"LB", 62.5 * bwScale},
	}
	for _, tier := range tiers {
		b.Run("Concurrent"+tier.name, func(b *testing.B) {
			var cut, elapsed float64
			for i := 0; i < b.N; i++ {
				res := multichip.MustSystem(m, multichip.Config{
					Chips: 4, Seed: uint64(i), ChannelBytesPerNS: tier.rate,
				}).RunConcurrent(60)
				cut = g.CutFromEnergy(res.Energy)
				elapsed = res.ElapsedNS
			}
			b.ReportMetric(cut, "cut")
			b.ReportMetric(elapsed, "elapsedNS")
		})
		b.Run("Batch"+tier.name, func(b *testing.B) {
			var cut, elapsed float64
			for i := 0; i < b.N; i++ {
				res := multichip.MustSystem(m, multichip.Config{
					Chips: 4, Seed: uint64(i), EpochNS: 10, ChannelBytesPerNS: tier.rate,
				}).RunBatch(4, 60)
				cut = g.CutFromEnergy(res.BestEnergy)
				elapsed = res.ElapsedNS
			}
			b.ReportMetric(cut, "cut")
			b.ReportMetric(elapsed, "elapsedNS")
		})
	}
}

// --- Fig 13: flips vs bit changes --------------------------------------

func BenchmarkFig13FlipsVsBitChanges(b *testing.B) {
	_, m := benchGraph(256, 5)
	for _, epoch := range []float64{1, 3.3, 10} {
		b.Run(epochName(epoch), func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				res := multichip.MustSystem(m, multichip.Config{
					Chips: 4, EpochNS: epoch, Seed: uint64(i),
				}).RunConcurrent(60)
				if res.BitChanges > 0 {
					ratio = float64(res.Flips) / float64(res.BitChanges)
				}
			}
			b.ReportMetric(ratio, "flips/bitChange")
		})
	}
}

func epochName(e float64) string {
	switch e {
	case 1:
		return "Epoch1ns"
	case 3.3:
		return "Epoch3.3ns"
	default:
		return "Epoch10ns"
	}
}

// --- Fig 14: quality vs epoch size, both modes -------------------------

func BenchmarkFig14EpochQuality(b *testing.B) {
	g, m := benchGraph(256, 6)
	b.Run("ConcurrentLongEpoch", func(b *testing.B) {
		var cut float64
		for i := 0; i < b.N; i++ {
			res := multichip.MustSystem(m, multichip.Config{
				Chips: 4, EpochNS: 20, Seed: uint64(i),
			}).RunConcurrent(80)
			cut = g.CutFromEnergy(res.Energy)
		}
		b.ReportMetric(cut, "cut")
	})
	b.Run("BatchLongEpoch", func(b *testing.B) {
		var cut float64
		for i := 0; i < b.N; i++ {
			res := multichip.MustSystem(m, multichip.Config{
				Chips: 4, EpochNS: 20, Seed: uint64(i),
			}).RunBatch(4, 80)
			cut = g.CutFromEnergy(res.BestEnergy)
		}
		b.ReportMetric(cut, "cut")
	})
}

// --- Fig 15: coordinated induced flips ---------------------------------

func BenchmarkFig15InducedFlips(b *testing.B) {
	_, m := benchGraph(256, 7)
	b.Run("Uncoordinated", func(b *testing.B) {
		var traffic float64
		for i := 0; i < b.N; i++ {
			res := multichip.MustSystem(m, multichip.Config{
				Chips: 4, Seed: uint64(i),
			}).RunConcurrent(60)
			traffic = res.TrafficBytes
		}
		b.ReportMetric(traffic, "trafficB")
	})
	b.Run("Coordinated", func(b *testing.B) {
		var traffic float64
		for i := 0; i < b.N; i++ {
			res := multichip.MustSystem(m, multichip.Config{
				Chips: 4, Seed: uint64(i), Coordinated: true,
			}).RunConcurrent(60)
			traffic = res.TrafficBytes
		}
		b.ReportMetric(traffic, "trafficB")
	})
}

// --- Sec 6.4.1: first principles ---------------------------------------

func BenchmarkFirstPrinciples(b *testing.B) {
	_, m := benchGraph(256, 8)
	b.Run("SAInstructionsPerFlip", func(b *testing.B) {
		var ipf float64
		for i := 0; i < b.N; i++ {
			res := sa.Solve(m, sa.Config{Sweeps: 50, Seed: uint64(i)})
			ipf = res.InstructionsPerFlip()
		}
		b.ReportMetric(ipf, "instr/flip")
	})
	b.Run("BRIMFlipCadence", func(b *testing.B) {
		var nsPerFlip float64
		for i := 0; i < b.N; i++ {
			res := brim.Solve(m, brim.SolveConfig{Duration: 60, Config: brim.Config{Seed: uint64(i)}})
			if res.Flips > 0 {
				nsPerFlip = res.ModelNS / float64(res.Flips)
			}
		}
		b.ReportMetric(nsPerFlip, "modelNS/flip")
	})
}

// --- Ablations (DESIGN.md Sec 5) ----------------------------------------

// AblationEpoch: the central knob — host cost and quality across epoch
// lengths.
func BenchmarkAblationEpoch(b *testing.B) {
	g, m := benchGraph(256, 9)
	for _, epoch := range []float64{1, 5, 25} {
		b.Run(ablName("Epoch", epoch), func(b *testing.B) {
			var cut float64
			for i := 0; i < b.N; i++ {
				res := multichip.MustSystem(m, multichip.Config{
					Chips: 4, EpochNS: epoch, Seed: uint64(i),
				}).RunConcurrent(60)
				cut = g.CutFromEnergy(res.Energy)
			}
			b.ReportMetric(cut, "cut")
		})
	}
}

func ablName(prefix string, v float64) string {
	switch v {
	case 1:
		return prefix + "1ns"
	case 5:
		return prefix + "5ns"
	default:
		return prefix + "25ns"
	}
}

// AblationCoordinatedFlips: quality must be unaffected while traffic
// drops (the flips themselves are identical decisions).
func BenchmarkAblationCoordinatedFlips(b *testing.B) {
	g, m := benchGraph(256, 10)
	for _, coord := range []bool{false, true} {
		name := "Off"
		if coord {
			name = "On"
		}
		b.Run(name, func(b *testing.B) {
			var cut, traffic float64
			for i := 0; i < b.N; i++ {
				res := multichip.MustSystem(m, multichip.Config{
					Chips: 4, Seed: uint64(i), Coordinated: coord,
				}).RunConcurrent(60)
				cut = g.CutFromEnergy(res.Energy)
				traffic = res.TrafficBytes
			}
			b.ReportMetric(cut, "cut")
			b.ReportMetric(traffic, "trafficB")
		})
	}
}

// AblationLocalField: the dense cached-local-field SA against the
// naive full-recompute strawman (Sec 6.1's "dense matrix" win).
func BenchmarkAblationLocalField(b *testing.B) {
	_, m := benchGraph(256, 11)
	b.Run("CachedFields", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sa.Solve(m, sa.Config{Sweeps: 20, Seed: uint64(i)})
		}
	})
	b.Run("NaiveRecompute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sa.SolveNaive(m, sa.Config{Sweeps: 20, Seed: uint64(i)})
		}
	})
}

// AblationIntegrator: RK4 (the paper's method) vs forward Euler at the
// same step size.
func BenchmarkAblationIntegrator(b *testing.B) {
	g, m := benchGraph(256, 12)
	b.Run("RK4", func(b *testing.B) {
		var cut float64
		for i := 0; i < b.N; i++ {
			ma := brim.New(m, brim.Config{Seed: uint64(i)})
			ma.SetHorizon(60)
			ma.Run(60)
			cut = g.CutValue(ma.Spins())
		}
		b.ReportMetric(cut, "cut")
	})
	b.Run("Euler", func(b *testing.B) {
		var cut float64
		for i := 0; i < b.N; i++ {
			ma := brim.New(m, brim.Config{Seed: uint64(i)})
			ma.SetHorizon(60)
			ma.RunEuler(60)
			cut = g.CutValue(ma.Spins())
		}
		b.ReportMetric(cut, "cut")
	})
}

// AblationBatchStagger: staggered batch mode's O(N) state exchange vs
// the O(bN²) context-switch volume independent jobs would pay
// (Sec 5.5's closing argument). The reprogram volume is modeled: b=8
// coupling bits × N² weights per switch.
func BenchmarkAblationBatchStagger(b *testing.B) {
	_, m := benchGraph(256, 13)
	b.Run("Staggered", func(b *testing.B) {
		var traffic float64
		for i := 0; i < b.N; i++ {
			res := multichip.MustSystem(m, multichip.Config{
				Chips: 4, EpochNS: 10, Seed: uint64(i),
			}).RunBatch(4, 60)
			traffic = res.TrafficBytes
		}
		b.ReportMetric(traffic, "trafficB")
	})
	b.Run("ContextSwitchModel", func(b *testing.B) {
		// Modeled, not simulated: every epoch each chip would reload
		// the next job's coupling block — (N/chips)×N weights × 1 byte.
		n := float64(m.N())
		epochs := 6.0            // 60 ns / 10 ns
		perSwitch := (n / 4) * n // bytes per chip per switch at b=8 bits
		var traffic float64
		for i := 0; i < b.N; i++ {
			traffic = epochs * 4 * perSwitch
		}
		b.ReportMetric(traffic, "trafficB")
	})
}

// --- Extension benches ---------------------------------------------------

// AblationTopology: stall cost of cheaper fabrics at equal traffic.
func BenchmarkAblationTopology(b *testing.B) {
	_, m := benchGraph(256, 14)
	for _, tc := range []struct {
		name string
		topo interconnect.Topology
	}{
		{"Dedicated", interconnect.Dedicated},
		{"SharedBus", interconnect.SharedBus},
		{"Ring", interconnect.Ring},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var stall float64
			for i := 0; i < b.N; i++ {
				res := multichip.MustSystem(m, multichip.Config{
					Chips: 4, Seed: uint64(i), Channels: 1, ChannelBytesPerNS: 0.05,
					Topology: tc.topo,
				}).RunConcurrent(30)
				stall = res.StallNS
			}
			b.ReportMetric(stall, "stallNS")
		})
	}
}

// SparseVsDense: the CSR representation's win on a 1%-density graph.
func BenchmarkSparseVsDenseSA(b *testing.B) {
	g := graph.Random(2000, 0.01, rng.New(15))
	dense := g.ToIsing()
	sparse := g.ToSparseIsing()
	b.Run("Dense", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sa.SolveProblem(dense, sa.Config{Sweeps: 5, Seed: uint64(i)})
		}
	})
	b.Run("Sparse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sa.SolveProblem(sparse, sa.Config{Sweeps: 5, Seed: uint64(i)})
		}
	})
}

// MultiChipSBM: the paper's comparator architecture at two staleness
// levels.
func BenchmarkMultiChipSBM(b *testing.B) {
	g, m := benchGraph(256, 16)
	for _, ee := range []int{1, 50} {
		name := "ExchangeEvery1"
		if ee == 50 {
			name = "ExchangeEvery50"
		}
		b.Run(name, func(b *testing.B) {
			var cut float64
			for i := 0; i < b.N; i++ {
				res := sbm.SolveMultiChip(m, sbm.MultiChipConfig{
					Config: sbm.Config{Variant: sbm.Ballistic, Steps: 200, Seed: uint64(i)},
					Chips:  4, ExchangeEvery: ee,
				})
				cut = g.CutValue(res.Spins)
			}
			b.ReportMetric(cut, "cut")
		})
	}
}

// HostParallelism: wall-time effect of per-chip goroutines (results
// are bit-identical; only the host cost differs).
func BenchmarkHostParallelism(b *testing.B) {
	_, m := benchGraph(512, 17)
	for _, par := range []bool{false, true} {
		name := "Sequential"
		if par {
			name = "Parallel"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				multichip.MustSystem(m, multichip.Config{
					Chips: 4, Seed: uint64(i), Parallel: par,
				}).RunConcurrent(10)
			}
		})
	}
}

// SequentialVsConcurrent: the Sec 5.4.1 elapsed-time contrast at equal
// per-chip annealing.
func BenchmarkSequentialMode(b *testing.B) {
	g, m := benchGraph(256, 18)
	b.Run("Concurrent", func(b *testing.B) {
		var cut, elapsed float64
		for i := 0; i < b.N; i++ {
			res := multichip.MustSystem(m, multichip.Config{
				Chips: 4, Seed: uint64(i), EpochNS: 1,
			}).RunConcurrent(40)
			cut, elapsed = g.CutFromEnergy(res.Energy), res.ElapsedNS
		}
		b.ReportMetric(cut, "cut")
		b.ReportMetric(elapsed, "elapsedNS")
	})
	b.Run("Sequential", func(b *testing.B) {
		var cut, elapsed float64
		for i := 0; i < b.N; i++ {
			res := multichip.MustSystem(m, multichip.Config{
				Chips: 4, Seed: uint64(i), EpochNS: 1,
			}).RunSequential(40)
			cut, elapsed = g.CutFromEnergy(res.Energy), res.ElapsedNS
		}
		b.ReportMetric(cut, "cut")
		b.ReportMetric(elapsed, "elapsedNS")
	})
}
