module mbrim

go 1.24
