// Package mbrim is a library-scale reproduction of "Increasing Ising
// Machine Capacity with Multi-Chip Architectures" (Sharma, Afoakwa,
// Ignjatovic & Huang, ISCA 2022): a multiprocessor Ising machine built
// from BRIM-style chips with shadow copies of remote spins, a
// bandwidth-modeled digital fabric, concurrent and batch operating
// modes, and the coordinated induced-flip optimization — together with
// every substrate the paper's evaluation needs (an Isakov-style
// simulated annealer, tabu search, qbsolv-style divide-and-conquer,
// and ballistic/discrete simulated bifurcation baselines).
//
// # Quick start
//
// Build a problem (here: MaxCut on a random ±1 complete graph, the
// paper's K-graph family), then solve it with any engine through the
// uniform Solve surface:
//
//	g := mbrim.CompleteGraph(512, 1)     // K512, seeded
//	out, err := mbrim.Solve(mbrim.Request{
//	    Kind:  mbrim.MBRIMConcurrent,    // 4-chip multiprocessor
//	    Model: g.ToIsing(),
//	    Graph: g,
//	    Chips: 4,
//	    DurationNS: 200,
//	})
//	// out.Cut is the cut value, out.ModelNS the machine time spent.
//
// For finer control, construct a multichip.System-equivalent directly
// with NewSystem and drive RunConcurrent / RunBatch yourself; all
// detailed knobs (epoch length, channel bandwidth, coordination,
// per-epoch statistics, energy-surprise probes) live on SystemConfig.
//
// # Time semantics
//
// Machine engines (BRIM, mBRIM) report *model time* — nanoseconds of
// the machine's own physics. Software engines (SA, tabu, SBM) report
// measured wall time. Speedup comparisons divide one by the other,
// exactly as the paper's methodology does (Sec 6.1).
package mbrim

import (
	"context"
	"io"

	"mbrim/internal/brim"
	"mbrim/internal/core"
	"mbrim/internal/diag"
	"mbrim/internal/fault"
	"mbrim/internal/graph"
	"mbrim/internal/ising"
	"mbrim/internal/multichip"
	"mbrim/internal/obs"
	"mbrim/internal/portfolio"
	"mbrim/internal/rng"
	"mbrim/internal/sched"
)

// Core model types, re-exported from the internal packages.
type (
	// Model is a dense Ising problem: symmetric couplings J, biases h,
	// global bias scale μ, and energy E = -Σ_{i<j}Jσσ - μΣhσ.
	Model = ising.Model
	// QUBO is a quadratic unconstrained binary optimization instance;
	// convert with its ToIsing method.
	QUBO = ising.QUBO
	// SubProblem is one side of an Eq. 3 bipartition with effective
	// biases folding the frozen complement.
	SubProblem = ising.SubProblem
	// Graph is an undirected weighted graph with MaxCut↔Ising mapping.
	Graph = graph.Graph
	// Edge is one weighted graph edge.
	Edge = graph.Edge
)

// Solver orchestration types.
type (
	// Request selects and parameterizes a solver engine.
	Request = core.Request
	// Outcome is the uniform solve report.
	Outcome = core.Outcome
	// Kind names a solver engine.
	Kind = core.Kind
	// Engine is one registered solver — implement it and call
	// RegisterEngine to add an engine to the dispatch registry.
	Engine = core.Engine
	// EngineCapabilities declares what an engine supports (resume,
	// warm start, backend selection, span tracing, model time).
	EngineCapabilities = core.Capabilities
	// EngineInfo is one registry entry: kind plus capabilities.
	EngineInfo = core.EngineInfo
)

// Portfolio-solving types (the "portfolio" engine): the race field,
// its per-entrant overrides, and the post-race report attached to
// Outcome.Portfolio.
type (
	// PortfolioSpec configures a heterogeneous race on Request.Portfolio:
	// entrants (empty = structure-based auto-dispatch), the
	// first-to-target energy, the race budget and the optional
	// warm-start hand-off stage.
	PortfolioSpec = core.PortfolioSpec
	// PortfolioEntrant names one entrant engine with its overrides.
	PortfolioEntrant = core.PortfolioEntrant
	// PortfolioReport attributes the race: winner, per-entrant results,
	// dispatcher statistics, hand-off outcome.
	PortfolioReport = core.PortfolioReport
	// EntrantReport is one entrant's side of the race.
	EntrantReport = core.EntrantReport
	// StructureStats are the dispatcher's row statistics (density,
	// degree distribution) over a model's coupling structure.
	StructureStats = core.StructureStats
)

// RegisterEngine adds a solver engine to the dispatch registry; it
// panics on a duplicate or empty kind (registration is an init-time
// act, and a clash is a build defect).
func RegisterEngine(e Engine) { core.Register(e) }

// Engines returns every registered engine with its capabilities,
// sorted by kind — the same view mbrimd serves on GET /engines.
func Engines() []EngineInfo { return core.Engines() }

// EngineCaps reports a registered engine's capabilities.
func EngineCaps(k Kind) (EngineCapabilities, bool) { return core.EngineCaps(k) }

// AnalyzeStructure computes the portfolio dispatcher's row statistics
// for a model.
func AnalyzeStructure(m *Model) StructureStats { return portfolio.Analyze(m) }

// DispatchPortfolio picks a race field from structure statistics, at
// most max entrants (0 = the dispatcher default).
func DispatchPortfolio(stats StructureStats, max int) []PortfolioEntrant {
	return portfolio.Dispatch(stats, max)
}

// Observability types, re-exported from internal/obs. Attach a Tracer
// and/or a Registry to Request to capture a run's typed event stream
// and cross-run counters; see the package example and README's
// Observability section.
type (
	// Tracer receives typed run events; NewJSONLTracer and NewRing are
	// the built-in sinks, and any Emit(Event) implementation works.
	Tracer = obs.Tracer
	// Event is one typed, timestamped run event.
	Event = obs.Event
	// EventKind discriminates Event payloads (run_start, epoch_sync, ...).
	EventKind = obs.Kind
	// Registry is a goroutine-safe set of named counters, gauges and
	// histograms.
	Registry = obs.Registry
	// JSONLTracer streams events as JSON Lines to a writer.
	JSONLTracer = obs.JSONLTracer
	// Ring is a fixed-capacity in-memory event buffer.
	Ring = obs.Ring
	// Broadcast fans the event stream out to live subscribers without
	// ever blocking the solve (full subscribers drop and count).
	Broadcast = obs.Broadcast
	// MetricLabels attaches dimensions (engine, chip, mode...) to a
	// registry series for the Prometheus exposition.
	MetricLabels = obs.Labels
)

// NewJSONLTracer returns a tracer streaming events to w as JSON Lines.
// Call Flush (or Close) when the run completes.
func NewJSONLTracer(w io.Writer) *JSONLTracer { return obs.NewJSONL(w) }

// NewRing returns an in-memory tracer keeping the last n events.
func NewRing(n int) *Ring { return obs.NewRing(n) }

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// ReadJSONL parses a JSON Lines trace back into events.
func ReadJSONL(r io.Reader) ([]Event, error) { return obs.ReadJSONL(r) }

// NewBroadcast returns a bounded fan-out tracer whose subscribers each
// get a buffered channel of n events (n <= 0 uses the default).
func NewBroadcast(n int) *Broadcast { return obs.NewBroadcast(n) }

// Fanout composes tracers into one that emits to each in order; nil
// entries are skipped, and an all-nil list yields a nil Tracer.
func Fanout(ts ...Tracer) Tracer { return obs.Fanout(ts...) }

// Introspection types: hierarchical span tracing (Request.SpanTrace)
// and the live diagnostics reducer (Request.Diag + a DiagReducer in the
// tracer fan-out). See README's Introspection section.
type (
	// Spanner allocates hierarchical interval spans over a Tracer; a
	// nil *Spanner is the free disabled path. Engines drive it when
	// Request.SpanTrace is set — construct one directly only to
	// instrument your own orchestration code.
	Spanner = obs.Spanner
	// Span is one open interval handle; the zero Span is "no parent".
	Span = obs.Span
	// DiagReducer folds a live event stream into convergence and
	// partition-quality diagnostics; read with Snapshot.
	DiagReducer = diag.Reducer
	// DiagConfig tunes plateau detection and the live TTS estimate.
	DiagConfig = diag.Config
	// DiagSnapshot is a point-in-time diagnostics report: energy
	// trajectory analytics, chip-pair shadow-spin disagreement, traffic
	// attribution and a TTS estimate with confidence bounds.
	DiagSnapshot = diag.Snapshot
)

// Span event kinds (values of Event.Kind) emitted when Request.SpanTrace
// is enabled, alongside the flat kinds (run_start, epoch_sync, ...).
const (
	SpanStartEvent = obs.SpanStart
	SpanEndEvent   = obs.SpanEnd
	PairStatEvent  = obs.PairStat
)

// NewSpanner builds a span recorder emitting into tr; a nil tr yields
// the disabled (nil, zero-cost) Spanner.
func NewSpanner(tr Tracer) *Spanner { return obs.NewSpanner(tr) }

// NewDiagReducer builds a diagnostics reducer; include it in the
// Request's tracer fan-out and set Request.Diag so engines emit the
// pair-statistics events it consumes.
func NewDiagReducer(cfg DiagConfig) *DiagReducer { return diag.New(cfg) }

// WriteChromeTrace renders a captured event stream as Chrome
// trace-event JSON, loadable in ui.perfetto.dev or chrome://tracing.
// The timeline is deterministic model time (1 model ns = 1 trace µs).
func WriteChromeTrace(w io.Writer, events []Event) error {
	return obs.WriteChromeTrace(w, events)
}

// Multiprocessor types for direct (non-orchestrated) use.
type (
	// System is the k-chip multiprocessor Ising machine.
	System = multichip.System
	// SystemConfig holds all multiprocessor knobs.
	SystemConfig = multichip.Config
	// SystemResult reports a concurrent-mode run.
	SystemResult = multichip.Result
	// BatchResult reports a batch-mode run.
	BatchResult = multichip.BatchResult
	// Layout describes a reconfigurable chip configuration (Fig 7).
	Layout = multichip.Layout
	// FaultConfig parameterizes the deterministic fault-injection
	// layer (set SystemConfig.Faults / Request.Faults).
	FaultConfig = fault.Config
	// RecoveryConfig selects and tunes the recovery policies.
	RecoveryConfig = fault.Recovery
	// FaultStats ledgers a run's injected faults and recovery work.
	FaultStats = fault.Stats
	// Schedule maps run progress ∈ [0,1] to a control value.
	Schedule = sched.Schedule
	// RNG is a deterministic, cloneable random source.
	RNG = rng.Source
)

// Engine kinds.
const (
	SA              = core.SA
	Tabu            = core.Tabu
	BSBM            = core.BSBM
	DSBM            = core.DSBM
	BRIM            = core.BRIM
	QBSolv          = core.QBSolv
	OursDnc         = core.OursDnc
	MBRIMConcurrent = core.MBRIMConcurrent
	MBRIMBatch      = core.MBRIMBatch
	PT              = core.PT
	MBRIMSequential = core.MBRIMSequential
	// Portfolio races several engines on one model: first to the target
	// energy wins and the losers are cancelled (see PortfolioSpec).
	Portfolio = core.Portfolio
)

// Bandwidth presets of the paper's Sec 6.3 configurations, in channel
// bytes per nanosecond.
const (
	HBChannelBytesPerNS = core.HBChannelBytesPerNS
	LBChannelBytesPerNS = core.LBChannelBytesPerNS
)

// Coupling-backend names for Request.Backend. Every backend produces
// bit-identical results for a fixed seed; the choice only moves host
// time. BackendAuto (the empty default) picks dense unless the model's
// measured density is at most 5%, where CSR wins.
const (
	BackendAuto    = "auto"
	BackendDense   = "dense"
	BackendCSR     = "csr"
	BackendBlocked = "blocked"
)

// NewModel returns an n-spin Ising model with zero couplings.
func NewModel(n int) *Model { return ising.NewModel(n) }

// NewQUBO returns an n-variable QUBO with zero coefficients.
func NewQUBO(n int) *QUBO { return ising.NewQUBO(n) }

// NewGraph returns an empty graph on n vertices.
func NewGraph(n int) *Graph { return graph.New(n) }

// CompleteGraph returns the seeded K-graph K_n with ±1 weights — the
// paper's benchmark family (K2000, K16384, ...).
func CompleteGraph(n int, seed uint64) *Graph {
	return graph.Complete(n, rng.New(seed))
}

// RandomGraph returns a seeded Erdős–Rényi G(n, p) graph with ±1
// weights.
func RandomGraph(n int, p float64, seed uint64) *Graph {
	return graph.Random(n, p, rng.New(seed))
}

// ReadGraph parses the Gset text format ("n m" header, "u v w" edges,
// 1-based vertices).
func ReadGraph(r io.Reader) (*Graph, error) { return graph.Read(r) }

// Solve runs the requested engine and returns a uniform outcome.
func Solve(req Request) (*Outcome, error) { return core.Solve(req) }

// SolveCtx is Solve with lifecycle control: the request is validated at
// the boundary, cancelling the context stops the engine at its next
// natural boundary with an *InterruptedError carrying the best-so-far
// Outcome (and, for multichip engines, resume bytes), integrator
// divergence surfaces as a typed *DivergenceError, and engine panics
// are converted to *PanicError.
func SolveCtx(ctx context.Context, req Request) (*Outcome, error) {
	return core.SolveCtx(ctx, req)
}

// Lifecycle sentinels: match with errors.Is.
var (
	// ErrInterrupted matches a solve stopped by context cancellation
	// or deadline; the concrete error is *InterruptedError.
	ErrInterrupted = core.ErrInterrupted
	// ErrInvalidModel matches a request rejected at the Solve boundary
	// (non-finite couplings/biases, asymmetry, mis-sized warm start).
	ErrInvalidModel = core.ErrInvalidModel
)

// Lifecycle error types.
type (
	// InterruptedError reports a cancelled solve: the best-so-far
	// Outcome plus, for multichip engines, serialized checkpoint bytes
	// that Request.Resume accepts for a bit-identical continuation.
	InterruptedError = core.InterruptedError
	// PanicError reports an engine panic converted to an error at the
	// Solve boundary, with the stack attached.
	PanicError = core.PanicError
	// DivergenceError reports BRIM integrator blowup that survived the
	// step-halving guardrail, with per-node diagnostics.
	DivergenceError = brim.DivergenceError
)

// Kinds returns every engine name, sorted.
func Kinds() []string { return core.Kinds() }

// ParseKind validates a solver name.
func ParseKind(s string) (Kind, error) { return core.ParseKind(s) }

// NewSystem builds a multiprocessor Ising machine over the model,
// reporting invalid configuration as an error.
func NewSystem(m *Model, cfg SystemConfig) (*System, error) {
	return multichip.NewSystem(m, cfg)
}

// MustSystem is NewSystem for statically known-good configuration; it
// panics on configuration errors.
func MustSystem(m *Model, cfg SystemConfig) *System {
	return multichip.MustSystem(m, cfg)
}

// PlanLayout computes a reconfigurable chip's module configuration for
// a multiprocessor of the given size (Sec 5.2 / Fig 7).
func PlanLayout(k, moduleN, chips int) (*Layout, error) {
	return multichip.PlanLayout(k, moduleN, chips)
}

// Stack describes a 3D-integrated multiprocessor (Fig 8).
type Stack = multichip.Stack

// PlanStack validates and builds a 3D stack of `layers` layers, each
// carrying moduleN spins.
func PlanStack(layers, moduleN int) (*Stack, error) {
	return multichip.PlanStack(layers, moduleN)
}

// Packing reports how problems occupy Ising hardware (Fig 4's
// utilization analysis).
type Packing = multichip.Packing

// PackMonolithic places problems block-diagonally on a monolithic k×k
// macrochip; PackReconfigurable bin-packs them onto independent chips.
func PackMonolithic(chipN, k int, problems []int) (*Packing, error) {
	return multichip.PackMonolithic(chipN, k, problems)
}

// PackReconfigurable places problems onto independently operating
// reconfigurable chips (Fig 5), avoiding the macrochip's waste.
func PackReconfigurable(chipN int, problems []int) (*Packing, error) {
	return multichip.PackReconfigurable(chipN, problems)
}

// NewRNG returns a deterministic random source for the seed.
func NewRNG(seed uint64) *RNG { return rng.New(seed) }

// Extract builds the Eq. 3 sub-problem over the given parent indices
// with the complement frozen at spins.
func Extract(parent *Model, sub []int, spins []int8) *SubProblem {
	return ising.Extract(parent, sub, spins)
}
