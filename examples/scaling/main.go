// Scaling beyond one machine: the paper's motivating experiment in
// miniature. A fixed-capacity Ising machine solves growing problems —
// first directly, then glued by divide-and-conquer software (the
// D-Wave approach), then as a true multiprocessor (the paper's
// architecture). Watch the d&c speedup collapse at the capacity cliff
// while the multiprocessor keeps its advantage.
//
//	go run ./examples/scaling
package main

import (
	"fmt"
	"log"

	"mbrim"
)

func main() {
	const capacity = 128 // spins one machine can map
	fmt.Printf("machine capacity: %d spins\n\n", capacity)
	fmt.Printf("%6s %16s %16s %18s\n", "n", "d&c total ns", "mBRIM total ns", "d&c / mBRIM")

	for _, n := range []int{96, 128, 144, 192, 256} {
		g := mbrim.CompleteGraph(n, uint64(n))
		m := g.ToIsing()

		// Divide-and-conquer: one physical machine + glue software.
		dc, err := mbrim.Solve(mbrim.Request{
			Kind: mbrim.QBSolv, Model: m, Graph: g, Seed: 1,
			MachineCapacity: capacity, Sweeps: 40,
		})
		if err != nil {
			log.Fatal(err)
		}
		// TotalNS for d&c = machine time + measured glue time.
		dcTotal := dc.ModelNS + dc.Stats["softwareNS"]

		// Multiprocessor: enough chips to hold the problem natively.
		chips := (n + capacity - 1) / capacity
		if chips < 2 {
			chips = 1
		}
		mp, err := mbrim.Solve(mbrim.Request{
			Kind: mbrim.MBRIMConcurrent, Model: m, Graph: g, Seed: 1,
			Chips: chips, DurationNS: 200,
		})
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%6d %16.0f %16.0f %17.0fx", n, dcTotal, mp.ModelNS, dcTotal/mp.ModelNS)
		if n <= capacity {
			fmt.Print("   (fits one machine)")
		} else {
			fmt.Printf("   (%d chips)", chips)
		}
		fmt.Printf("   cuts: d&c %.0f, mBRIM %.0f\n", dc.Cut, mp.Cut)
	}

	fmt.Println("\nPast the capacity cliff, divide-and-conquer pays milliseconds of host")
	fmt.Println("glue per pass (Sec 3.3 of the paper); the multiprocessor keeps solving")
	fmt.Println("at machine speed because the cross-partition terms live in hardware")
	fmt.Println("shadow copies instead of software bias updates.")
}
