// MaxCut solver comparison: one sparse random graph, every engine in
// the library, one table — solution quality against each engine's own
// time axis (model time for machines, wall time for software).
//
//	go run ./examples/maxcut
package main

import (
	"fmt"
	"log"

	"mbrim"
)

func main() {
	// A sparse Gset-style instance: 800 vertices, ~1% density, ±1
	// weights. Sparse graphs are where MaxCut heuristics disagree most.
	g := mbrim.RandomGraph(800, 0.01, 7)
	m := g.ToIsing()
	fmt.Printf("MaxCut on G(%d, 0.01): %d edges, total weight %.0f\n\n",
		g.N(), g.M(), g.TotalWeight())

	configs := []struct {
		name string
		req  mbrim.Request
	}{
		{"simulated annealing (10 restarts)", mbrim.Request{Kind: mbrim.SA, Sweeps: 300, Runs: 10}},
		{"tabu search", mbrim.Request{Kind: mbrim.Tabu, Sweeps: 40}},
		{"ballistic SBM (10 restarts)", mbrim.Request{Kind: mbrim.BSBM, Steps: 800, Runs: 10}},
		{"discrete SBM (10 restarts)", mbrim.Request{Kind: mbrim.DSBM, Steps: 800, Runs: 10}},
		{"single-chip BRIM", mbrim.Request{Kind: mbrim.BRIM, DurationNS: 300}},
		{"4-chip mBRIM, concurrent", mbrim.Request{Kind: mbrim.MBRIMConcurrent, Chips: 4, DurationNS: 300}},
		{"4-chip mBRIM, batch of 4", mbrim.Request{Kind: mbrim.MBRIMBatch, Chips: 4, Runs: 4, DurationNS: 300}},
	}

	fmt.Printf("%-36s %10s %14s %14s\n", "engine", "cut", "machine ns", "host time")
	for _, c := range configs {
		req := c.req
		req.Model = m
		req.Graph = g
		req.Seed = 7
		out, err := mbrim.Solve(req)
		if err != nil {
			log.Fatal(err)
		}
		machine := "-"
		if out.ModelNS > 0 {
			machine = fmt.Sprintf("%.0f", out.ModelNS)
		}
		fmt.Printf("%-36s %10.0f %14s %14v\n", c.name, out.Cut, machine, out.Wall)
	}

	fmt.Println("\nmachine ns is the annealer's own physics time: the quantity the paper's")
	fmt.Println("speedup claims are built on. Host time is how long this host needed to")
	fmt.Println("simulate it (or, for software engines, to actually solve).")
}
