// Number partitioning on an Ising machine: split a multiset of numbers
// into two groups with equal sums. This is one of Karp's original
// NP-complete problems; its Ising form (Lucas [36] in the paper's
// references) is H = (Σ aᵢσᵢ)², i.e. couplings J_ij = -2aᵢaⱼ in this
// library's convention — an instance with biases and non-unit weights,
// exercising a different model path than the ±1 MaxCut benchmarks.
//
//	go run ./examples/partition
package main

import (
	"fmt"
	"log"

	"mbrim"
)

func main() {
	numbers := []float64{
		31, 17, 8, 42, 29, 5, 73, 11, 60, 38, 22, 90, 14, 55, 7, 66,
		12, 81, 26, 49, 3, 95, 34, 58, 19, 44, 70, 9, 27, 62, 16, 51,
	}
	total := 0.0
	for _, a := range numbers {
		total += a
	}
	fmt.Printf("partitioning %d numbers, total %.0f (perfect half: %.1f)\n",
		len(numbers), total, total/2)

	// H(σ) = (Σ aᵢσᵢ)² = Σ aᵢ² + 2 Σ_{i<j} aᵢaⱼ σᵢσⱼ. In this library's
	// convention E = -Σ_{i<j} J σσ, so J_ij = -2 aᵢaⱼ and the constant
	// Σ aᵢ² is dropped: minimizing E minimizes the imbalance squared.
	n := len(numbers)
	m := mbrim.NewModel(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.SetCoupling(i, j, -2*numbers[i]*numbers[j])
		}
	}

	machine, err := mbrim.Solve(mbrim.Request{
		Kind:       mbrim.MBRIMBatch, // 2 chips, 4 staggered jobs
		Model:      m,
		Chips:      2,
		Runs:       4,
		DurationNS: 1500,
		Seed:       3,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Hybrid finish: polish the machine's readout with warm-started SA.
	// Number partitioning has couplings spanning two orders of
	// magnitude, the regime where an analog machine benefits most from
	// a short digital cleanup.
	out, err := mbrim.Solve(mbrim.Request{
		Kind:    mbrim.SA,
		Model:   m,
		Sweeps:  400,
		Seed:    3,
		Initial: machine.Spins,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("machine energy %.0f -> polished energy %.0f\n", machine.Energy, out.Energy)

	var left, right []float64
	var sumL, sumR float64
	for i, s := range out.Spins {
		if s > 0 {
			left = append(left, numbers[i])
			sumL += numbers[i]
		} else {
			right = append(right, numbers[i])
			sumR += numbers[i]
		}
	}
	fmt.Printf("group A (sum %.0f): %v\n", sumL, left)
	fmt.Printf("group B (sum %.0f): %v\n", sumR, right)
	fmt.Printf("imbalance: %.0f (machine time %.0f ns + SA polish %v)\n",
		sumL-sumR, machine.ModelNS, out.Wall)
}
