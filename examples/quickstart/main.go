// Quickstart: build a benchmark K-graph, solve it on a 4-chip
// multiprocessor Ising machine, and read out the MaxCut solution.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mbrim"
)

func main() {
	// K512: a fully connected 512-vertex graph with ±1 edge weights,
	// the benchmark family of the paper (K2000, K16384, ...).
	g := mbrim.CompleteGraph(512, 42)

	out, err := mbrim.Solve(mbrim.Request{
		Kind:       mbrim.MBRIMConcurrent, // 4 BRIM chips, concurrent mode
		Model:      g.ToIsing(),
		Graph:      g,
		Chips:      4,
		DurationNS: 200, // 200 ns of machine time
		Seed:       42,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("K%d MaxCut\n", g.N())
	fmt.Printf("  cut value:    %.0f\n", out.Cut)
	fmt.Printf("  energy:       %.0f\n", out.Energy)
	fmt.Printf("  machine time: %.0f ns (model time of the annealer)\n", out.ModelNS)
	fmt.Printf("  host time:    %v (time to simulate it)\n", out.Wall)
	fmt.Printf("  spin flips:   %.0f, of which %.0f were communicated\n",
		out.Stats["flips"], out.Stats["bitChanges"])
	fmt.Printf("  fabric bytes: %.0f\n", out.Stats["trafficBytes"])
}
