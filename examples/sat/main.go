// Boolean satisfiability on an Ising machine: a planted 3-CNF formula
// is reduced to maximum independent set (Karp's chain), annealed on
// the multiprocessor, decoded, and checked clause by clause.
//
//	go run ./examples/sat
package main

import (
	"fmt"
	"log"

	"mbrim"
)

func main() {
	// Plant a satisfying assignment, then generate clauses consistent
	// with it so the instance is guaranteed satisfiable.
	const vars = 20
	const clauses = 60
	r := mbrim.NewRNG(13)
	planted := make([]bool, vars)
	for i := range planted {
		planted[i] = r.Bool(0.5)
	}
	var cnf [][]mbrim.SATLiteral
	for len(cnf) < clauses {
		a, b, c := r.Intn(vars), r.Intn(vars), r.Intn(vars)
		if a == b || b == c || a == c {
			continue
		}
		clause := []mbrim.SATLiteral{
			{Var: a, Negated: r.Bool(0.5)},
			{Var: b, Negated: r.Bool(0.5)},
			{Var: c, Negated: r.Bool(0.5)},
		}
		satisfied := false
		for _, l := range clause {
			if planted[l.Var] != l.Negated {
				satisfied = true
			}
		}
		if satisfied {
			cnf = append(cnf, clause)
		}
	}

	s := mbrim.SATProblem{Vars: vars, Clauses: cnf}
	m, _ := s.Ising()
	fmt.Printf("3-CNF: %d variables, %d clauses -> %d Ising spins (one per literal occurrence)\n",
		vars, clauses, m.N())

	machine, err := mbrim.Solve(mbrim.Request{
		Kind:       mbrim.MBRIMConcurrent,
		Model:      m,
		Chips:      4,
		DurationNS: 500,
		Seed:       13,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Hybrid polish, then decode to a boolean assignment.
	polished, err := mbrim.Solve(mbrim.Request{
		Kind: mbrim.SA, Model: m, Sweeps: 800, Runs: 4, Seed: 13, Initial: machine.Spins,
	})
	if err != nil {
		log.Fatal(err)
	}
	assign := s.Decode(polished.Spins)
	fmt.Printf("machine time: %.0f ns, satisfied clauses: %d / %d (sat=%v)\n",
		machine.ModelNS, s.NumSatisfied(assign), clauses, s.Satisfied(assign))
	fmt.Printf("assignment: %v\n", assign)
}
