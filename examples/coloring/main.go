// Graph coloring on an Ising machine: color a register-interference-
// style graph with k colors so no adjacent vertices share one — the
// scheduling/allocation workload the paper's introduction motivates.
// The one-hot Lucas encoding turns an n-vertex, k-color instance into
// n·k spins, solved here on a 4-chip multiprocessor with an exact
// ground-truth check on a small instance first.
//
//	go run ./examples/coloring
package main

import (
	"fmt"
	"log"

	"mbrim"
)

func main() {
	// Small instance with ground truth: the Petersen graph is
	// 3-colorable; verify the encoding finds a proper 3-coloring
	// exactly.
	petersen := mbrim.NewGraph(10)
	for i := 0; i < 5; i++ {
		petersen.AddEdge(i, (i+1)%5, 1)     // outer cycle
		petersen.AddEdge(i+5, (i+2)%5+5, 1) // inner pentagram
		petersen.AddEdge(i, i+5, 1)         // spokes
	}
	small := mbrim.ColoringProblem{G: petersen, Colors: 3}
	sm, sOff := small.Ising()
	sRes := mbrim.SolveExact(sm)
	colors := small.Decode(sRes.Spins)
	fmt.Printf("Petersen graph, 3 colors: penalty %.0f, proper=%v, coloring=%v\n",
		sRes.Energy+sOff, small.Valid(colors), colors)

	// Bigger instance on the multiprocessor: random interference graph,
	// 4 colors, 4 chips.
	g := mbrim.RandomGraph(48, 0.12, 11)
	prob := mbrim.ColoringProblem{G: g, Colors: 5}
	m, off := prob.Ising()
	fmt.Printf("\nG(%d, 0.12): %d edges, %d colors -> %d spins on 4 chips\n",
		g.N(), g.M(), prob.Colors, m.N())

	out, err := mbrim.Solve(mbrim.Request{
		Kind:       mbrim.MBRIMConcurrent,
		Model:      m,
		Chips:      4,
		DurationNS: 600,
		Seed:       11,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Hybrid polish, as a production pipeline would.
	polished, err := mbrim.Solve(mbrim.Request{
		Kind: mbrim.SA, Model: m, Sweeps: 1500, Runs: 4, Seed: 11, Initial: out.Spins,
	})
	if err != nil {
		log.Fatal(err)
	}
	decoded := prob.Decode(polished.Spins)
	fmt.Printf("machine penalty %.0f -> polished penalty %.0f\n",
		out.Energy+off, polished.Energy+off)
	fmt.Printf("conflicts after decode: %d of %d edges (valid=%v)\n",
		prob.Conflicts(decoded), g.M(), prob.Valid(decoded))
	fmt.Printf("machine time: %.0f ns\n", out.ModelNS)
}
