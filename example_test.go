package mbrim_test

import (
	"bytes"
	"fmt"

	"mbrim"
)

// ExampleNewSystem drives the multiprocessor directly for full control
// over epochs, bandwidth and operating mode.
func ExampleNewSystem() {
	g := mbrim.CompleteGraph(64, 7)
	sys := mbrim.MustSystem(g.ToIsing(), mbrim.SystemConfig{
		Chips:             4,
		EpochNS:           3.3,
		Channels:          1,
		ChannelBytesPerNS: 0.05, // a deliberately starved fabric
		Seed:              7,
	})
	res := sys.RunConcurrent(50)
	fmt.Println(res.StallNS > 0, res.BitChanges <= res.Flips)
	// Output: true true
}

// ExampleSolve_tracing attaches a JSONL tracer and a metrics registry
// to a solve: the tracer archives the typed event stream (RunStart,
// per-epoch ChipStep/EpochSync/FabricTransfer, RunEnd), the registry
// accumulates counters that agree with the outcome's own stats.
func ExampleSolve_tracing() {
	g := mbrim.CompleteGraph(64, 7)
	var buf bytes.Buffer
	tracer := mbrim.NewJSONLTracer(&buf)
	reg := mbrim.NewRegistry()
	out, err := mbrim.Solve(mbrim.Request{
		Kind:       mbrim.MBRIMConcurrent,
		Model:      g.ToIsing(),
		Graph:      g,
		Chips:      4,
		DurationNS: 30,
		Seed:       7,
		Tracer:     tracer,
		Metrics:    reg,
	})
	if err != nil {
		panic(err)
	}
	if err := tracer.Flush(); err != nil {
		panic(err)
	}

	events, err := mbrim.ReadJSONL(&buf)
	if err != nil {
		panic(err)
	}
	fmt.Println("bracketed:", events[0].Kind, "...", events[len(events)-1].Kind)
	snap := reg.Snapshot()
	fmt.Println("counters agree:",
		float64(snap.Counters["multichip.flips"]) == out.Stats["flips"],
		snap.Counters["core.solves"] == 1)
	// Output:
	// bracketed: run_start ... run_end
	// counters agree: true true
}

// ExamplePartitionProblem encodes number partitioning and solves it
// exactly (small instances) — the Lucas-catalogue workflow.
func ExamplePartitionProblem() {
	p := mbrim.PartitionProblem{Numbers: []float64{7, 5, 4, 4, 2}}
	m, offset := p.Ising()
	res := mbrim.SolveExact(m)
	fmt.Println(res.Energy+offset == 0, p.Imbalance(res.Spins))
	// Output: true 0
}

// ExampleEmbedComplete shows the local-coupling capacity cost of
// Sec 4.1.1: an n-spin all-to-all problem needs n(n−1) physical nodes.
func ExampleEmbedComplete() {
	g := mbrim.CompleteGraph(10, 1)
	e := mbrim.EmbedComplete(g.ToIsing(), 0)
	fmt.Println(e.PhysicalNodes(), mbrim.EffectiveCapacity(e.PhysicalNodes()))
	// Output: 90 10
}

// ExamplePlanLayout reproduces the paper's Fig 7 configurations for a
// chip of 4×4 modules with 2000 nodes each.
func ExamplePlanLayout() {
	for _, chips := range []int{1, 4, 16} {
		l, _ := mbrim.PlanLayout(4, 2000, chips)
		fmt.Printf("%d chips: %d spins each, %d total\n", chips, l.SpinsPerChip, l.TotalSpins)
	}
	// Output:
	// 1 chips: 8000 spins each, 8000 total
	// 4 chips: 4000 spins each, 16000 total
	// 16 chips: 2000 spins each, 32000 total
}

// ExamplePackReconfigurable shows the Fig 4/5 utilization argument.
func ExamplePackReconfigurable() {
	problems := []int{100, 100, 100}
	mono, _ := mbrim.PackMonolithic(100, 3, problems)
	reconf, _ := mbrim.PackReconfigurable(100, problems)
	fmt.Printf("monolithic %.2f reconfigurable %.2f\n", mono.Utilization(), reconf.Utilization())
	// Output: monolithic 0.33 reconfigurable 1.00
}

// ExampleSolveMultiChipSBM runs the paper's comparator architecture —
// partitioned simulated bifurcation with periodic position exchange.
func ExampleSolveMultiChipSBM() {
	g := mbrim.CompleteGraph(64, 3)
	res := mbrim.SolveMultiChipSBM(g.ToIsing(), mbrim.MultiChipSBMConfig{
		Config: mbrim.SBMConfig{Variant: mbrim.SBMBallistic, Steps: 200, Seed: 3},
		Chips:  4,
	})
	fmt.Println(g.CutValue(res.Spins) > 0, res.Exchanges == 200)
	// Output: true true
}

// ExampleNewBRIM drives the analog machine directly, with device
// variation enabled.
func ExampleNewBRIM() {
	g := mbrim.CompleteGraph(32, 4)
	ma := mbrim.NewBRIM(g.ToIsing(), mbrim.BRIMConfig{Seed: 4, DeviceVariation: 0.05})
	ma.SetHorizon(50)
	ma.Run(50)
	fmt.Println(len(ma.Spins()), ma.Flips() > 0)
	// Output: 32 true
}

// ExampleSolvePopulation runs the birth/death Monte Carlo baseline.
func ExampleSolvePopulation() {
	g := mbrim.CompleteGraph(32, 5)
	res := mbrim.SolvePopulation(g.ToIsing(), mbrim.PopulationConfig{
		Population: 32, Rungs: 15, Seed: 5,
	})
	fmt.Println(g.CutValue(res.Spins) > 0, res.MinPopulation > 0)
	// Output: true true
}

// ExampleChimeraCapacity reproduces the paper's D-Wave 2000q number.
func ExampleChimeraCapacity() {
	fmt.Println(mbrim.ChimeraCapacity(2048, 4))
	// Output: 65
}
