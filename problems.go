package mbrim

import (
	"io"

	"mbrim/internal/embed"
	"mbrim/internal/exact"
	"mbrim/internal/ising"
	"mbrim/internal/problems"
	"mbrim/internal/sa"
)

// Sparse problem support: CSR models with O(degree) flip updates, for
// Gset-scale sparse instances where a dense N×N matrix is wasteful.
type (
	// SparseModel is an immutable CSR Ising model.
	SparseModel = ising.SparseModel
	// SparseEntry is one coupling (I < J) for building a SparseModel.
	SparseEntry = ising.SparseEntry
	// Problem is the solver-facing surface shared by dense and sparse
	// models.
	Problem = ising.Problem
	// SAResult reports an Anneal run.
	SAResult = sa.Result
)

// NewSparseModel builds a sparse model from coupling entries and
// optional biases (nil = zero).
func NewSparseModel(n int, entries []SparseEntry, biases []float64) *SparseModel {
	return ising.NewSparse(n, entries, biases)
}

// Sparsify converts a dense model, keeping nonzero couplings.
func Sparsify(m *Model) *SparseModel { return ising.Sparsify(m) }

// Anneal runs Isakov-style simulated annealing over any Problem —
// the direct path for sparse instances, which the Request/Solve
// surface (dense-only) does not cover.
func Anneal(p Problem, sweeps int, seed uint64) *SAResult {
	return sa.SolveProblem(p, sa.Config{Sweeps: sweeps, Seed: seed})
}

// Problem encodings (Lucas's catalogue of Ising formulations — the
// paper's reference [36]). Each type carries an Ising() encoder, a
// Decode back to the problem domain, and validators; see the package
// documentation of the corresponding methods.
type (
	// PartitionProblem is number partitioning: split numbers into two
	// equal-sum groups.
	PartitionProblem = problems.Partition
	// VertexCoverProblem is minimum vertex cover.
	VertexCoverProblem = problems.VertexCover
	// IndependentSetProblem is maximum independent set.
	IndependentSetProblem = problems.IndependentSet
	// CliqueProblem is maximum clique.
	CliqueProblem = problems.Clique
	// ColoringProblem is graph k-coloring.
	ColoringProblem = problems.Coloring
	// SATProblem is CNF satisfiability (independent-set reduction).
	SATProblem = problems.SAT
	// SATLiteral is a possibly negated variable in a SAT clause.
	SATLiteral = problems.Literal
	// TSPProblem is the traveling salesman problem.
	TSPProblem = problems.TSP
	// KnapsackProblem is 0/1 knapsack with a one-hot slack register
	// for the capacity inequality.
	KnapsackProblem = problems.Knapsack
)

// ExactResult is the outcome of exhaustive ground-truth search.
type ExactResult = exact.Result

// SolveExact returns the global optimum of a small instance (≤ 30
// spins) by Gray-code enumeration — the ground truth the heuristic
// engines are validated against.
func SolveExact(m *Model) *ExactResult { return exact.Solve(m) }

// VerifyLocalOptimum checks that spins attain the claimed energy and
// that no single flip improves it.
func VerifyLocalOptimum(m *Model, spins []int8, energy float64) error {
	return exact.Verify(m, spins, energy)
}

// ChainEmbedding is a logical problem mapped onto a bounded-degree
// (local-coupling) machine via ferromagnetic chains — the Sec 4.1.1
// regime that motivates all-to-all architectures.
type ChainEmbedding = embed.Embedding

// EmbedComplete embeds a dense model onto the crossbar chain scheme;
// chainStrength 0 selects a provably sufficient default.
func EmbedComplete(m *Model, chainStrength float64) *ChainEmbedding {
	return embed.Complete(m, chainStrength)
}

// EffectiveCapacity returns the largest complete problem a
// local-coupling machine of `physical` nodes can host (√N scaling).
func EffectiveCapacity(physical int) int { return embed.EffectiveCapacity(physical) }

// ChimeraGraph returns the chimera topology (rows×cols cells of
// K_{shore,shore} plus inter-cell couplers) of the D-Wave machines the
// paper's capacity numbers refer to.
func ChimeraGraph(rows, cols, shore int) *Graph { return embed.Chimera(rows, cols, shore) }

// ChimeraCapacity returns the largest complete graph embeddable on a
// square chimera with the given qubit budget — 2048 qubits at shore 4
// host K_65, the paper's "about 64 effective nodes".
func ChimeraCapacity(qubits, shore int) int { return embed.ChimeraCapacity(qubits, shore) }

// EmbedCompleteOnChimera embeds a dense model onto the chimera fabric
// with Choi's cross-chain construction; every programmed coupler is a
// legal chimera edge.
func EmbedCompleteOnChimera(m *Model, shore int, chainStrength float64) *ChainEmbedding {
	return embed.CompleteOnChimera(m, shore, chainStrength)
}

// FromQUBO converts a QUBO to an Ising model plus the constant offset
// with Value(x) = Energy(σ) + offset under σ = 2x−1.
func FromQUBO(q *QUBO) (*Model, float64) { return q.ToIsing() }

// ToQUBO converts an Ising model to a QUBO plus the constant offset
// with Energy(σ) = Value(x) + offset.
func ToQUBO(m *Model) (*QUBO, float64) { return ising.FromIsing(m) }

// ReadQUBOFile parses qbsolv's .qubo text format.
func ReadQUBOFile(r io.Reader) (*QUBO, error) { return ising.ReadQUBO(r) }

// WriteQUBOFile emits q in qbsolv's .qubo text format.
func WriteQUBOFile(w io.Writer, q *QUBO) error { return ising.WriteQUBO(w, q) }
