package mbrim_test

import (
	"math/rand"
	"testing"

	"mbrim"
	"mbrim/internal/embed"
	"mbrim/internal/ising"
)

// The determinism contract of the lattice layer, asserted at the public
// surface: for a fixed seed, every coupling backend produces the same
// solve outcome bit for bit, on every engine with a coupling hot loop.
// "Same" here is exact float equality and exact spin equality — not a
// tolerance — because each backend accumulates every row in the same
// ascending-column order as the serial dense loops it replaced.

// equivalenceModels returns named (model, graph) problems spanning the
// layouts the backends specialize for: a dense complete graph, a ~5%
// random graph, and a crossbar chain embedding whose physical model is
// sparse and strongly structured.
func equivalenceModels(t *testing.T) map[string]*mbrim.Model {
	t.Helper()
	models := map[string]*mbrim.Model{
		"kgraph": mbrim.CompleteGraph(40, 1).ToIsing(),
		"random": mbrim.RandomGraph(60, 0.05, 2).ToIsing(),
	}
	logical := mbrim.CompleteGraph(9, 3).ToIsing()
	models["chimera"] = embed.Complete(logical, 0).Physical
	// Give two models biases so the μh path is exercised.
	r := rand.New(rand.NewSource(4))
	for _, name := range []string{"kgraph", "chimera"} {
		m := models[name]
		for i := 0; i < m.N(); i++ {
			m.SetBias(i, r.Float64()-0.5)
		}
	}
	return models
}

func solveOn(t *testing.T, kind mbrim.Kind, m *mbrim.Model, backend string) *mbrim.Outcome {
	t.Helper()
	out, err := mbrim.Solve(mbrim.Request{
		Kind:    kind,
		Model:   m,
		Seed:    7,
		Sweeps:  20,
		Steps:   60,
		Runs:    2,
		Chips:   4,
		Backend: backend,
		// Short dynamical runs keep the suite fast; bit-identity does
		// not depend on duration.
		DurationNS: 20,
	})
	if err != nil {
		t.Fatalf("%s/%s: %v", kind, backend, err)
	}
	return out
}

func TestBackendsBitIdenticalAcrossEngines(t *testing.T) {
	engines := []mbrim.Kind{mbrim.SA, mbrim.BSBM, mbrim.DSBM, mbrim.BRIM,
		mbrim.QBSolv, mbrim.OursDnc, mbrim.MBRIMConcurrent}
	for name, m := range equivalenceModels(t) {
		for _, kind := range engines {
			t.Run(name+"/"+string(kind), func(t *testing.T) {
				ref := solveOn(t, kind, m, mbrim.BackendDense)
				if ref.Backend != mbrim.BackendDense {
					t.Fatalf("outcome reports backend %q, want dense", ref.Backend)
				}
				for _, backend := range []string{mbrim.BackendCSR, mbrim.BackendBlocked} {
					got := solveOn(t, kind, m, backend)
					if got.Backend != backend {
						t.Fatalf("outcome reports backend %q, want %q", got.Backend, backend)
					}
					if got.Energy != ref.Energy {
						t.Fatalf("%s energy %v, dense %v", backend, got.Energy, ref.Energy)
					}
					if ising.HammingDistance(got.Spins, ref.Spins) != 0 {
						t.Fatalf("%s spins differ from dense", backend)
					}
					for k, v := range ref.Stats {
						if k == "softwareNS" {
							continue // measured host wall time, not deterministic
						}
						if got.Stats[k] != v {
							t.Fatalf("%s stat %s = %v, dense %v", backend, k, got.Stats[k], v)
						}
					}
				}
			})
		}
	}
}

func TestAutoBackendResolvesByDensity(t *testing.T) {
	models := equivalenceModels(t)
	dense := solveOn(t, mbrim.SA, models["kgraph"], mbrim.BackendAuto)
	if dense.Backend != mbrim.BackendDense {
		t.Fatalf("auto on a complete graph picked %q, want dense", dense.Backend)
	}
	sparse := solveOn(t, mbrim.SA, models["random"], "")
	if sparse.Backend != mbrim.BackendCSR {
		t.Fatalf("auto on a 5%%-density graph picked %q, want csr", sparse.Backend)
	}
	// Whatever auto picks, the outcome matches an explicit request.
	explicit := solveOn(t, mbrim.SA, models["random"], mbrim.BackendCSR)
	if sparse.Energy != explicit.Energy ||
		ising.HammingDistance(sparse.Spins, explicit.Spins) != 0 {
		t.Fatal("auto outcome differs from the explicitly-requested backend")
	}
}

func TestBackendRejectsUnknownName(t *testing.T) {
	_, err := mbrim.Solve(mbrim.Request{
		Kind:    mbrim.SA,
		Model:   mbrim.CompleteGraph(8, 1).ToIsing(),
		Backend: "simd",
	})
	if err == nil {
		t.Fatal("unknown backend name was accepted")
	}
}
