#!/usr/bin/env bash
# End-to-end smoke of the distributed solve fabric: boot two mbrimd
# worker nodes, run the same seeded K-graph solve three ways —
#   1. in process (the ground truth),
#   2. distributed across the workers (must match bit for bit,
#      modeled traffic/stall ledgers included),
#   3. distributed through fault-injecting chaos proxies with one
#      worker blackholed mid-run (must recover via checkpoint
#      rollback-replay onto the survivor and land on the identical
#      trajectory, with the recovery cost visible in the ledgers) —
# and assert the bit-identity and recovery claims with jq. The chaos
# run is federated: its merged fleet trace must carry coordinator and
# worker spans under one trace ID, recovery included. A fourth leg
# drives the coordinator-as-a-service surface (POST /cluster/runs with
# federate:true, then GET .../trace and .../diag).
#
# Run from the repository root: ./scripts/cluster_smoke.sh
set -euo pipefail

DIR=$(mktemp -d)
PIDS=()
FAILED=1

cleanup() {
  if [ "$FAILED" -ne 0 ]; then
    echo "cluster smoke: FAILED — worker logs follow" >&2
    for log in "$DIR"/w*.out; do
      [ -f "$log" ] && { echo "--- $log ---" >&2; cat "$log" >&2; }
    done
  fi
  # Kill hard: a smoke runner must never leave daemons behind, even
  # ones wedged mid-drain.
  for pid in "${PIDS[@]:-}"; do
    kill -9 "$pid" 2>/dev/null || true
  done
}
trap cleanup EXIT

die() {
  echo "cluster smoke: FAIL: $*" >&2
  exit 1
}

go build -o "$DIR/mbrim" ./cmd/mbrim || die "building mbrim"
go build -o "$DIR/mbrimd" ./cmd/mbrimd || die "building mbrimd"

"$DIR/mbrimd" -addr localhost:0 -worker >"$DIR/w1.out" 2>&1 &
PIDS+=($!)
"$DIR/mbrimd" -addr localhost:0 -worker >"$DIR/w2.out" 2>&1 &
PIDS+=($!)

addr() { sed -n 's|^mbrimd: listening on http://||p' "$1"; }
A1=""
A2=""
for _ in $(seq 1 50); do
  A1=$(addr "$DIR/w1.out")
  A2=$(addr "$DIR/w2.out")
  [ -n "$A1" ] && [ -n "$A2" ] && break
  sleep 0.1
done
[ -n "$A1" ] || die "worker 1 never printed its listen address"
[ -n "$A2" ] || die "worker 2 never printed its listen address"

PROBLEM="-k 64 -chips 2 -duration 100 -seed 7"

# 1. Ground truth: the in-process multiprocessor.
# shellcheck disable=SC2086
"$DIR/mbrim" -solver mbrim $PROBLEM -json >"$DIR/inproc.json" \
  || die "in-process reference solve"

# 2. Clean distributed run.
# shellcheck disable=SC2086
"$DIR/mbrim" -cluster "http://$A1,http://$A2" $PROBLEM -spins -json \
  >"$DIR/clean.json" || die "clean distributed solve"

# 3. Chaos: flaky transport (5% injected 503s) plus worker 1
# blackholed at epoch 5, two epochs past the last checkpoint. Federated,
# so the kill scenario must still merge into ONE fleet trace.
# shellcheck disable=SC2086
"$DIR/mbrim" -cluster "http://$A1,http://$A2" $PROBLEM -spins -json \
  -ckpt-every 3 -chaos-error 0.05 -chaos-kill-worker 1 -chaos-kill-epoch 5 \
  -cluster-trace "$DIR/chaos_trace.json" \
  >"$DIR/chaos.json" || die "chaos distributed solve"

# The clean distributed run reproduces the in-process run bit for bit,
# ledgers included.
jq -e --slurpfile c "$DIR/clean.json" '
  .Energy == $c[0].energy and
  .Cut == $c[0].cut and
  .Stats.flips == $c[0].flips and
  .Stats.bitChanges == $c[0].bitChanges and
  .Stats.trafficBytes == $c[0].trafficBytes and
  (.Stats.stallNS // 0) == ($c[0].stallNS // 0) and
  .Spins == $c[0].spins
' "$DIR/inproc.json" >/dev/null \
  || die "clean distributed run diverged from the in-process reference"

# The chaos run replays to the identical trajectory (spins, energy,
# counters) despite losing a worker...
jq -e --slurpfile c "$DIR/chaos.json" '
  .Energy == $c[0].energy and
  .Cut == $c[0].cut and
  .Stats.flips == $c[0].flips and
  .Stats.bitChanges == $c[0].bitChanges and
  .Spins == $c[0].spins
' "$DIR/inproc.json" >/dev/null \
  || die "chaos run did not recover to the reference trajectory"

# ...recovery actually happened and was charged into the ledgers:
# death + rollback-replay observed, degraded (the survivor hosts both
# slices), and the handoff traffic exceeds the fault-free run's.
jq -e --slurpfile i "$DIR/inproc.json" '
  .recovery.workerDeaths >= 1 and
  .recovery.recoveries >= 1 and
  .recovery.replayedEpochs >= 1 and
  .recovery.handoffBytes > 0 and
  .recovery.recoveryStallNS > 0 and
  .recovery.degraded == true and
  .liveWorkers == 1 and
  .trafficBytes > $i[0].Stats.trafficBytes
' "$DIR/chaos.json" >/dev/null \
  || die "chaos run's recovery ledger missing or inconsistent"

# The chaos run's merged fleet trace: every span carries the SAME trace
# ID, and spans from the coordinator AND both workers made it into the
# one document — including the worker that died mid-run (its pre-kill
# spans were federated at the earlier checkpoint round).
[ -s "$DIR/chaos_trace.json" ] || die "chaos run wrote no fleet trace"
jq -e '
  ([.traceEvents[] | select(.args.trace != null) | .args.trace] | unique | length) == 1
' "$DIR/chaos_trace.json" >/dev/null \
  || die "chaos fleet trace does not share a single trace ID"
jq -e '
  ([.traceEvents[] | select(.args.trace != null) | .args.origin] | unique) as $o |
  ($o | index("co") != null) and
  (($o | map(select(startswith("w"))) | length) >= 2)
' "$DIR/chaos_trace.json" >/dev/null \
  || die "chaos fleet trace is missing coordinator or worker spans"
jq -e '
  [.traceEvents[] | select(.name == "recovery")] | length >= 1
' "$DIR/chaos_trace.json" >/dev/null \
  || die "chaos fleet trace does not show the recovery"

# 4. The coordinator-as-a-service surface: a third mbrimd (no -worker)
# accepts a federated submission and serves the merged trace and the
# fleet diagnostics over HTTP.
"$DIR/mbrimd" -addr localhost:0 >"$DIR/co.out" 2>&1 &
PIDS+=($!)
CO=""
for _ in $(seq 1 50); do
  CO=$(addr "$DIR/co.out")
  [ -n "$CO" ] && break
  sleep 0.1
done
[ -n "$CO" ] || die "coordinator daemon never printed its listen address"

RID=$(curl -sf -X POST "http://$CO/cluster/runs" -d '{
  "workers": ["http://'"$A1"'", "http://'"$A2"'"],
  "k": 64, "chips": 2, "durationNS": 100, "seed": 7,
  "checkpointEvery": 3, "federate": true
}' | jq -r .id)
[ -n "$RID" ] && [ "$RID" != "null" ] || die "federated submission rejected"

for _ in $(seq 1 100); do
  DONE=$(curl -sf "http://$CO/cluster/runs/$RID" | jq -r '.done // false')
  [ "$DONE" = "true" ] && break
  sleep 0.1
done
[ "$DONE" = "true" ] || die "federated daemon run never finished"

curl -sf "http://$CO/cluster/runs/$RID/trace" >"$DIR/daemon_trace.json" \
  || die "GET /cluster/runs/$RID/trace"
jq -e '
  ([.traceEvents[] | select(.args.trace != null) | .args.trace] | unique | length) == 1 and
  (([.traceEvents[] | select(.args.trace != null) | .args.origin] | unique) as $o |
    ($o | index("co") != null) and (($o | map(select(startswith("w"))) | length) >= 2))
' "$DIR/daemon_trace.json" >/dev/null \
  || die "daemon fleet trace malformed: spans from 2 workers must share the coordinator trace ID"

curl -sf "http://$CO/cluster/runs/$RID/diag" >"$DIR/daemon_diag.json" \
  || die "GET /cluster/runs/$RID/diag"
jq -e '
  .id == "'"$RID"'" and
  (.traceID | length) == 16 and
  .fleet.workers == 2 and
  .fleet.epochs >= 1 and
  .fleet.syncFraction >= 0 and .fleet.syncFraction <= 1 and
  (.fleet.perWorker | length) == 2
' "$DIR/daemon_diag.json" >/dev/null \
  || die "fleet diag report malformed"

FAILED=0
echo "cluster smoke: OK"
