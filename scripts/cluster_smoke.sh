#!/usr/bin/env bash
# End-to-end smoke of the distributed solve fabric: boot two mbrimd
# worker nodes, run the same seeded K-graph solve three ways —
#   1. in process (the ground truth),
#   2. distributed across the workers (must match bit for bit,
#      modeled traffic/stall ledgers included),
#   3. distributed through fault-injecting chaos proxies with one
#      worker blackholed mid-run (must recover via checkpoint
#      rollback-replay onto the survivor and land on the identical
#      trajectory, with the recovery cost visible in the ledgers) —
# and assert the bit-identity and recovery claims with jq.
#
# Run from the repository root: ./scripts/cluster_smoke.sh
set -euxo pipefail

DIR=$(mktemp -d)
go build -o "$DIR/mbrim" ./cmd/mbrim
go build -o "$DIR/mbrimd" ./cmd/mbrimd

"$DIR/mbrimd" -addr localhost:0 -worker >"$DIR/w1.out" 2>&1 &
W1=$!
"$DIR/mbrimd" -addr localhost:0 -worker >"$DIR/w2.out" 2>&1 &
W2=$!
trap 'kill "$W1" "$W2" 2>/dev/null || true' EXIT

addr() { sed -n 's|^mbrimd: listening on http://||p' "$1"; }
A1=""
A2=""
for _ in $(seq 1 50); do
  A1=$(addr "$DIR/w1.out")
  A2=$(addr "$DIR/w2.out")
  [ -n "$A1" ] && [ -n "$A2" ] && break
  sleep 0.1
done
test -n "$A1" && test -n "$A2"

PROBLEM="-k 64 -chips 2 -duration 100 -seed 7"

# 1. Ground truth: the in-process multiprocessor.
# shellcheck disable=SC2086
"$DIR/mbrim" -solver mbrim $PROBLEM -json >"$DIR/inproc.json"

# 2. Clean distributed run.
# shellcheck disable=SC2086
"$DIR/mbrim" -cluster "http://$A1,http://$A2" $PROBLEM -spins -json \
  >"$DIR/clean.json"

# 3. Chaos: flaky transport (5% injected 503s) plus worker 1
# blackholed at epoch 5, two epochs past the last checkpoint.
# shellcheck disable=SC2086
"$DIR/mbrim" -cluster "http://$A1,http://$A2" $PROBLEM -spins -json \
  -ckpt-every 3 -chaos-error 0.05 -chaos-kill-worker 1 -chaos-kill-epoch 5 \
  >"$DIR/chaos.json"

# The clean distributed run reproduces the in-process run bit for bit,
# ledgers included.
jq -e --slurpfile c "$DIR/clean.json" '
  .Energy == $c[0].energy and
  .Cut == $c[0].cut and
  .Stats.flips == $c[0].flips and
  .Stats.bitChanges == $c[0].bitChanges and
  .Stats.trafficBytes == $c[0].trafficBytes and
  (.Stats.stallNS // 0) == ($c[0].stallNS // 0) and
  .Spins == $c[0].spins
' "$DIR/inproc.json"

# The chaos run replays to the identical trajectory (spins, energy,
# counters) despite losing a worker...
jq -e --slurpfile c "$DIR/chaos.json" '
  .Energy == $c[0].energy and
  .Cut == $c[0].cut and
  .Stats.flips == $c[0].flips and
  .Stats.bitChanges == $c[0].bitChanges and
  .Spins == $c[0].spins
' "$DIR/inproc.json"

# ...recovery actually happened and was charged into the ledgers:
# death + rollback-replay observed, degraded (the survivor hosts both
# slices), and the handoff traffic exceeds the fault-free run's.
jq -e --slurpfile i "$DIR/inproc.json" '
  .recovery.workerDeaths >= 1 and
  .recovery.recoveries >= 1 and
  .recovery.replayedEpochs >= 1 and
  .recovery.handoffBytes > 0 and
  .recovery.recoveryStallNS > 0 and
  .recovery.degraded == true and
  .liveWorkers == 1 and
  .trafficBytes > $i[0].Stats.trafficBytes
' "$DIR/chaos.json"

echo "cluster smoke: OK"
