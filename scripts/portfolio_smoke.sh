#!/usr/bin/env bash
# End-to-end smoke of the heterogeneous portfolio engine (HETRI mode):
#
#   1. CLI leg — solve a seeded K-graph with sa alone to fix a target
#      energy, then race sa against tabu against a deliberately
#      long-running dsbm with that target. The race must end
#      first-to-target, the winner must be attributed, and the
#      still-running loser must report it was cancelled (its
#      InterruptedError surfaces as entrants[].interrupted in the race
#      ledger).
#   2. Daemon leg — the same scenario through mbrimd: GET /engines must
#      list the portfolio with its capability flags, POST /runs with a
#      portfolio spec must race to the target, and both the outcome's
#      race ledger and the diag snapshot's portfolio section must carry
#      the win attribution.
#
# Run from the repository root: ./scripts/portfolio_smoke.sh
set -euo pipefail

DIR=$(mktemp -d)
PIDS=()
FAILED=1

cleanup() {
  if [ "$FAILED" -ne 0 ]; then
    echo "portfolio smoke: FAILED — daemon log follows" >&2
    [ -f "$DIR/mbrimd.out" ] && cat "$DIR/mbrimd.out" >&2
  fi
  for pid in "${PIDS[@]:-}"; do
    kill -9 "$pid" 2>/dev/null || true
  done
}
trap cleanup EXIT

die() {
  echo "portfolio smoke: FAIL: $*" >&2
  exit 1
}

go build -o "$DIR/mbrim" ./cmd/mbrim || die "building mbrim"
go build -o "$DIR/mbrimd" ./cmd/mbrimd || die "building mbrimd"

PROBLEM="-k 48 -seed 11 -sweeps 40 -runs 1"

# --- Leg 1: CLI race, first to target ---------------------------------

# Reference: sa alone fixes the target. Entrant 0 of the race runs the
# identical seed and sweep budget, so it reproduces this energy exactly
# and is guaranteed to cross the target.
# shellcheck disable=SC2086
"$DIR/mbrim" -solver sa $PROBLEM -json >"$DIR/ref.json" \
  || die "reference sa solve"
TARGET=$(jq -r '.Energy' "$DIR/ref.json")
[ -n "$TARGET" ] || die "reference run reported no energy"

# The race: sa will hit the target; dsbm's five-million-step budget
# guarantees somebody is still running when it does and must be
# cancelled.
# shellcheck disable=SC2086
"$DIR/mbrim" -solver portfolio -portfolio sa,tabu,dsbm \
  -target "$TARGET" $PROBLEM -steps 5000000 -json >"$DIR/race.json" \
  || die "portfolio race solve"

jq -e --argjson t "$TARGET" '
  .Portfolio.hitTarget == true and
  .Portfolio.winnerKind != "" and
  .Energy <= $t and
  ([.Portfolio.entrants[] | select(.interrupted == true)] | length) >= 1 and
  (.Portfolio.entrants | length) == 3
' "$DIR/race.json" >/dev/null \
  || die "race ledger missing first-to-target win or cancelled losers: $(cat "$DIR/race.json")"

# The human-readable report tells the same story.
# shellcheck disable=SC2086
"$DIR/mbrim" -solver portfolio -portfolio sa,tabu,dsbm \
  -target "$TARGET" $PROBLEM -steps 5000000 >"$DIR/race.txt" \
  || die "portfolio race solve (text)"
grep -q 'first to target' "$DIR/race.txt" || die "text report missing first-to-target"
grep -q 'cancelled' "$DIR/race.txt" || die "text report missing a cancelled loser"

# --- Leg 2: the daemon surface ----------------------------------------

"$DIR/mbrimd" -addr localhost:0 >"$DIR/mbrimd.out" 2>&1 &
PIDS+=($!)
ADDR=""
for _ in $(seq 1 50); do
  ADDR=$(sed -n 's|^mbrimd: listening on http://||p' "$DIR/mbrimd.out")
  [ -n "$ADDR" ] && break
  sleep 0.1
done
[ -n "$ADDR" ] || die "daemon never printed its listen address"

# The engine catalogue comes from the registry, portfolio included.
curl -fsS "http://$ADDR/engines" >"$DIR/engines.json" || die "GET /engines"
jq -e '
  (.engines | length) >= 12 and
  ([.engines[] | select(.kind == "portfolio")] | length) == 1 and
  ([.engines[] | select(.kind == "mbrim" and .capabilities.resume)] | length) == 1 and
  ([.engines[] | select(.kind == "sa" and .capabilities.warmStart)] | length) == 1
' "$DIR/engines.json" >/dev/null || die "engine catalogue: $(cat "$DIR/engines.json")"

wait_done() {
  local id=$1 state=""
  for _ in $(seq 1 150); do
    state=$(curl -fsS "http://$ADDR/runs/$id" | jq -r .state)
    case "$state" in completed | failed | interrupted) break ;; esac
    sleep 0.2
  done
  [ "$state" = completed ] || die "run $id ended $state"
}

# Reference run through the daemon fixes the target for the same
# seeded problem.
ID=$(curl -fsS -X POST "http://$ADDR/runs" \
  -d '{"engine":"sa","k":48,"seed":11,"sweeps":40,"runs":1}' | jq -r .id)
[ -n "$ID" ] || die "reference submit"
wait_done "$ID"
DTARGET=$(curl -fsS "http://$ADDR/runs/$ID/outcome" | jq -r .energy)

# The race: identical sa entrant plus a long dsbm that must be
# cancelled at first-to-target.
RID=$(curl -fsS -X POST "http://$ADDR/runs" -d '{
  "engine": "portfolio", "k": 48, "seed": 11, "sweeps": 40, "runs": 1,
  "portfolio": {
    "targetEnergy": '"$DTARGET"',
    "entrants": [
      {"kind": "sa"}, {"kind": "tabu"}, {"kind": "dsbm", "steps": 5000000}
    ]
  }
}' | jq -r .id)
[ -n "$RID" ] || die "portfolio submit"
wait_done "$RID"

curl -fsS "http://$ADDR/runs/$RID/outcome" >"$DIR/outcome.json" || die "GET outcome"
jq -e --argjson t "$DTARGET" '
  .engine == "portfolio" and
  .energy <= $t and
  .portfolio.hitTarget == true and
  .portfolio.winnerKind != "" and
  ([.portfolio.entrants[] | select(.interrupted == true)] | length) >= 1
' "$DIR/outcome.json" >/dev/null \
  || die "daemon outcome ledger: $(cat "$DIR/outcome.json")"

# The diag snapshot folded the same race from the event stream.
curl -fsS "http://$ADDR/runs/$RID/diag" >"$DIR/diag.json" || die "GET diag"
jq -e '
  .portfolio != null and
  (.portfolio.entrants | length) == 3 and
  .portfolio.winner >= 0 and
  ([.portfolio.entrants[] | select(.phase == "cancelled")] | length) >= 1
' "$DIR/diag.json" >/dev/null || die "daemon diag portfolio section: $(cat "$DIR/diag.json")"

FAILED=0
echo "portfolio smoke: OK (CLI + daemon first-to-target race, losers cancelled)"
