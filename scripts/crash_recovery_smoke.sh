#!/usr/bin/env bash
# Crash-recovery smoke for mbrimd's durable run supervision: start a
# daemon with a state dir, submit a multichip solve, kill -9 the daemon
# mid-run, restart it on the same state dir, and assert the journal
# replay resumes the run to an outcome bit-identical — energy, flips,
# full spin state — to the same submission solved by a daemon that was
# never interrupted.
#
# Run from the repository root: ./scripts/crash_recovery_smoke.sh
set -euo pipefail

DIR=$(mktemp -d)
STATE="$DIR/state"
PIDS=()
FAILED=1

cleanup() {
  if [ "$FAILED" -ne 0 ]; then
    echo "crash recovery smoke: FAILED — daemon logs follow" >&2
    for log in "$DIR"/d*.out; do
      [ -f "$log" ] && { echo "--- $log ---" >&2; cat "$log" >&2; }
    done
  fi
  for pid in "${PIDS[@]:-}"; do
    kill -9 "$pid" 2>/dev/null || true
  done
}
trap cleanup EXIT

die() {
  echo "crash recovery smoke: FAIL: $*" >&2
  exit 1
}

go build -o "$DIR/mbrimd" ./cmd/mbrimd || die "building mbrimd"

# start_daemon LOGFILE ARGS... — sets the globals ADDR and DPID.
# (Deliberately not a command substitution: a subshell would hide the
# daemon's PID from the cleanup trap.)
start_daemon() {
  local log="$1"
  shift
  "$DIR/mbrimd" -addr localhost:0 "$@" >"$log" 2>&1 &
  DPID=$!
  PIDS+=("$DPID")
  ADDR=""
  for _ in $(seq 1 100); do
    ADDR=$(sed -n 's|^mbrimd: listening on http://||p' "$log")
    [ -n "$ADDR" ] && break
    sleep 0.1
  done
  [ -n "$ADDR" ] || die "daemon ($log) never printed its listen address"
  for _ in $(seq 1 100); do
    curl -sf "http://$ADDR/readyz" >/dev/null && return 0
    sleep 0.1
  done
  die "daemon ($log) never became ready"
}

# ~1.4s of wall time: room for several 100ms checkpoints before the
# kill, and real work left to resume after it.
BODY='{"engine":"mbrim","k":64,"chips":2,"durationNS":5000,"seed":7}'

# Generation 1: durable daemon, killed mid-run.
start_daemon "$DIR/d1.out" -state-dir "$STATE" -checkpoint-every 100ms
G1="$ADDR"
curl -sf -X POST "http://$G1/runs" -d "$BODY" >/dev/null \
  || die "submitting the run to generation 1"

for _ in $(seq 1 150); do
  if compgen -G "$STATE/checkpoints/*.ckpt" >/dev/null 2>&1; then
    break
  fi
  sleep 0.1
done
compgen -G "$STATE/checkpoints/*.ckpt" >/dev/null 2>&1 \
  || die "no durable checkpoint appeared before the kill"
sleep 0.15 # let the solve move past the checkpointed state
kill -9 "$DPID" || die "kill -9 of generation 1"
wait "$DPID" 2>/dev/null || true

[ -s "$STATE/run.journal" ] || die "journal file missing after the crash"

# Generation 2: same state dir; replay must resume run-1 to completion.
start_daemon "$DIR/d2.out" -state-dir "$STATE" -checkpoint-every 100ms
G2="$ADDR"
grep -q "replayed" "$DIR/d2.out" || die "generation 2 logged no replay summary"

OUTCOME=""
for _ in $(seq 1 600); do
  if OUTCOME=$(curl -sf "http://$G2/runs/run-1/outcome" 2>/dev/null); then
    break
  fi
  OUTCOME=""
  sleep 0.1
done
[ -n "$OUTCOME" ] || die "resumed run-1 never reached a terminal outcome"
echo "$OUTCOME" >"$DIR/resumed.json"
jq -e '.state == "completed"' "$DIR/resumed.json" >/dev/null \
  || die "resumed run-1 ended $(jq -r .state "$DIR/resumed.json"), not completed"

# Reference: the identical submission on a daemon that is never
# interrupted (no state dir — journaling off is also the overhead-free
# default path).
start_daemon "$DIR/d3.out"
G3="$ADDR"
curl -sf -X POST "http://$G3/runs" -d "$BODY" >/dev/null \
  || die "submitting the reference run"
REF=""
for _ in $(seq 1 600); do
  if REF=$(curl -sf "http://$G3/runs/run-1/outcome" 2>/dev/null); then
    break
  fi
  REF=""
  sleep 0.1
done
[ -n "$REF" ] || die "reference run never reached a terminal outcome"
echo "$REF" >"$DIR/reference.json"

# The durability pin: kill -9 plus replay is invisible in the outcome.
jq -e --slurpfile ref "$DIR/reference.json" '
  .energy == $ref[0].energy and
  .stats.flips == $ref[0].stats.flips and
  .spins == $ref[0].spins
' "$DIR/resumed.json" >/dev/null \
  || die "resumed outcome diverged from the uninterrupted reference"

FAILED=0
echo "crash recovery smoke: OK"
