package interconnect

import (
	"math"
	"testing"
)

// The message-sizing functions are consumed by the fault layer with
// attacker-ish inputs (arbitrary change counts after corruption,
// shrinking fanouts after chip loss), so their domains are pinned by
// fuzzing: no panics on valid input, and the index-list vs bitmap
// crossover stays monotone.

func FuzzSpinIndexBits(f *testing.F) {
	f.Add(1)
	f.Add(2)
	f.Add(1024)
	f.Add(1 << 20)
	f.Fuzz(func(t *testing.T, n int) {
		if n < 1 {
			return // outside the documented domain
		}
		got := SpinIndexBits(n)
		if got < 1 || got > 63 {
			t.Fatalf("SpinIndexBits(%d) = %d out of range", n, got)
		}
		// Defining property: 2^got >= n and (for got > 1) 2^(got-1) < n.
		if n > 1 && (1<<uint(got) < n || 1<<uint(got-1) >= n) {
			t.Fatalf("SpinIndexBits(%d) = %d is not ceil(log2)", n, got)
		}
		// Monotone in n.
		if n > 1 && SpinIndexBits(n-1) > got {
			t.Fatalf("SpinIndexBits not monotone at %d", n)
		}
	})
}

func FuzzFlipUpdateBytes(f *testing.F) {
	f.Add(8, 3)
	f.Add(1, 0)
	f.Add(1<<16, 64)
	f.Fuzz(func(t *testing.T, n, fanout int) {
		if n < 1 || fanout < 0 || fanout > 1<<20 {
			return
		}
		got := FlipUpdateBytes(n, fanout)
		if math.IsNaN(got) || got < 0 {
			t.Fatalf("FlipUpdateBytes(%d, %d) = %v", n, fanout, got)
		}
		if fanout == 0 && got != 0 {
			t.Fatalf("zero fanout cost %v", got)
		}
		// Monotone in fanout.
		if fanout > 0 && FlipUpdateBytes(n, fanout-1) > got {
			t.Fatalf("FlipUpdateBytes not monotone in fanout at (%d, %d)", n, fanout)
		}
	})
}

func FuzzDeltaSyncBytes(f *testing.F) {
	f.Add(10, 1000, 3)
	f.Add(0, 1, 0)
	f.Add(500, 1000, 1)
	f.Fuzz(func(t *testing.T, changes, local, fanout int) {
		if local < 1 || local > 1<<20 || changes < 0 || changes > local ||
			fanout < 0 || fanout > 1<<16 {
			return
		}
		got := DeltaSyncBytes(changes, local, fanout)
		if math.IsNaN(got) || got < 0 {
			t.Fatalf("DeltaSyncBytes(%d, %d, %d) = %v", changes, local, fanout, got)
		}
		// Never exceeds the full bitmap (the encoder's fallback).
		bitmap := float64(local) / 8 * float64(fanout)
		if got > bitmap+1e-9 {
			t.Fatalf("DeltaSyncBytes(%d, %d, %d) = %v exceeds bitmap %v",
				changes, local, fanout, got, bitmap)
		}
		// Crossover monotonicity: more changes never cost less.
		if changes > 0 && DeltaSyncBytes(changes-1, local, fanout) > got+1e-9 {
			t.Fatalf("DeltaSyncBytes not monotone in changes at (%d, %d, %d)",
				changes, local, fanout)
		}
	})
}
