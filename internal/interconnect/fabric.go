// Package interconnect models the digital fabric of the multiprocessor
// Ising machine (Sec 5.3): per-chip dedicated channels with finite
// bandwidth, broadcast update traffic, and the congestion-induced
// stalling that forces the machine's physics to slow down when demand
// exceeds supply.
//
// The model is epoch-oriented, matching how the architecture operates:
// chips accumulate egress traffic during an epoch of model time; at
// the epoch boundary the fabric computes how much longer than the
// epoch the slowest chip needs to drain its traffic. That excess is
// the stall — wall-clock (model) time during which the dynamical
// system is held, exactly the "slow down the machine to match the
// fabric" coping strategy of Sec 5.3. A fabric with zero rate is
// unlimited (the 3D-integration case, mBRIM_3D).
package interconnect

import (
	"fmt"
	"math"
	"math/bits"

	"mbrim/internal/obs"
)

// Fabric tracks traffic and stalls for a k-chip system.
type Fabric struct {
	numChips   int
	channels   int
	bytesPerNS float64 // per channel; 0 = unlimited

	topology   Topology
	epochBytes []float64 // egress accumulated this epoch, per chip
	totalBytes float64
	byKind     map[string]float64
	// epochByKind splits the open epoch's traffic by kind; EndEpoch
	// snapshots it into lastEpochByKind and clears it, so injected
	// retransmit/resync traffic stays distinguishable per epoch.
	epochByKind     map[string]float64
	lastEpochByKind map[string]float64
	stallNS         float64
	epochs          int
	peakDemand      float64 // max per-chip bytes/ns demand seen in any epoch
}

// New builds a fabric for numChips chips, each with `channels`
// dedicated egress channels of bytesPerNS bytes per nanosecond
// (1 GB/s = 1 byte/ns). bytesPerNS = 0 models unlimited bandwidth.
// Invalid arguments are reported as an error — this is the public
// configuration boundary.
func New(numChips, channels int, bytesPerNS float64) (*Fabric, error) {
	if numChips < 1 {
		return nil, fmt.Errorf("interconnect: numChips=%d, want >= 1", numChips)
	}
	if channels < 1 {
		return nil, fmt.Errorf("interconnect: channels=%d, want >= 1", channels)
	}
	if bytesPerNS < 0 || math.IsNaN(bytesPerNS) {
		return nil, fmt.Errorf("interconnect: bytesPerNS=%v, want >= 0", bytesPerNS)
	}
	return &Fabric{
		numChips:        numChips,
		channels:        channels,
		bytesPerNS:      bytesPerNS,
		epochBytes:      make([]float64, numChips),
		byKind:          make(map[string]float64),
		epochByKind:     make(map[string]float64),
		lastEpochByKind: make(map[string]float64),
	}, nil
}

// Unlimited reports whether the fabric has no bandwidth constraint.
func (f *Fabric) Unlimited() bool { return f.bytesPerNS == 0 }

// NumChips returns the chip count.
func (f *Fabric) NumChips() int { return f.numChips }

// EgressRate returns a chip's total egress bandwidth in bytes/ns, or
// +Inf for an unlimited fabric.
func (f *Fabric) EgressRate() float64 {
	if f.Unlimited() {
		return math.Inf(1)
	}
	return f.bytesPerNS * float64(f.channels)
}

// Record charges `bytes` of egress traffic to chip for the current
// epoch, tagged with a kind for the traffic breakdown ("flip",
// "sync", "induced", ...).
func (f *Fabric) Record(chip int, bytes float64, kind string) {
	if chip < 0 || chip >= f.numChips {
		panic(fmt.Sprintf("interconnect: chip %d of %d", chip, f.numChips))
	}
	if bytes < 0 || math.IsNaN(bytes) {
		panic(fmt.Sprintf("interconnect: bytes=%v", bytes))
	}
	f.epochBytes[chip] += bytes
	f.totalBytes += bytes
	f.byKind[kind] += bytes
	f.epochByKind[kind] += bytes
}

// EndEpoch closes an epoch of epochNS model time: it returns the stall
// the system must take so every chip can drain its egress, accumulates
// statistics, and clears the per-epoch buckets. The returned stall is
// max over chips of (bytes/rate − epochNS), floored at zero.
func (f *Fabric) EndEpoch(epochNS float64) float64 {
	if epochNS <= 0 {
		panic(fmt.Sprintf("interconnect: epochNS=%v", epochNS))
	}
	f.epochs++
	for chip := range f.epochBytes {
		if demand := f.epochBytes[chip] / epochNS; demand > f.peakDemand {
			f.peakDemand = demand
		}
	}
	stall := f.epochStall(epochNS)
	for chip := range f.epochBytes {
		f.epochBytes[chip] = 0
	}
	f.epochByKind, f.lastEpochByKind = f.lastEpochByKind, f.epochByKind
	clear(f.epochByKind)
	f.stallNS += stall
	return stall
}

// EndEpochSpanned is EndEpoch with the settlement recorded for span
// tracing: when the epoch stalls (demand exceeded supply), the stall
// becomes a "fabric_settle" interval of its own length, anchored at
// atNS on the trace timeline and nested under parent. A nil spanner —
// or a congestion-free epoch — reduces to EndEpoch exactly.
func (f *Fabric) EndEpochSpanned(epochNS float64, sp *obs.Spanner, parent obs.Span, atNS float64) float64 {
	stall := f.EndEpoch(epochNS)
	if sp != nil && stall > 0 {
		sp.Complete("fabric_settle", parent, -1, atNS, stall, 0,
			&obs.Event{StallNS: stall})
	}
	return stall
}

// TotalBytes returns all traffic recorded so far.
func (f *Fabric) TotalBytes() float64 { return f.totalBytes }

// BytesByKind returns the cumulative traffic recorded under the given
// tag across the whole run.
func (f *Fabric) BytesByKind(kind string) float64 { return f.byKind[kind] }

// EpochBytesByKind returns the traffic recorded under the given tag
// during the most recently closed epoch. The bucket resets at every
// EndEpoch, so per-epoch breakdowns (sync vs retransmit vs resync)
// stay distinguishable from the cumulative totals.
func (f *Fabric) EpochBytesByKind(kind string) float64 { return f.lastEpochByKind[kind] }

// Kinds returns the traffic tags seen so far, in no particular order.
func (f *Fabric) Kinds() []string {
	out := make([]string, 0, len(f.byKind))
	for k := range f.byKind {
		out = append(out, k)
	}
	return out
}

// StallNS returns the cumulative congestion stall.
func (f *Fabric) StallNS() float64 { return f.stallNS }

// AddStall charges extra hold time directly — the honest accounting
// path for recovery costs (retransmit backoff, repartition
// reprogramming) that stall the machine without being congestion.
func (f *Fabric) AddStall(ns float64) {
	if ns < 0 || math.IsNaN(ns) {
		panic(fmt.Sprintf("interconnect: AddStall(%v)", ns))
	}
	f.stallNS += ns
}

// Epochs returns how many epochs have been closed.
func (f *Fabric) Epochs() int { return f.epochs }

// PeakDemand returns the highest per-chip bytes/ns demand observed in
// any single epoch — the peak-bandwidth number of Sec 6.5.
func (f *Fabric) PeakDemand() float64 { return f.peakDemand }

// --- Checkpointing ----------------------------------------------------

// State is a snapshot of the fabric's cumulative accounting, for
// checkpoint/resume. It must be captured at an epoch boundary — after
// EndEpoch — when the open-epoch buckets are empty; the snapshot
// therefore carries only closed-epoch totals.
type State struct {
	TotalBytes float64            `json:"totalBytes"`
	StallNS    float64            `json:"stallNS"`
	PeakDemand float64            `json:"peakDemand"`
	Epochs     int                `json:"epochs"`
	ByKind     map[string]float64 `json:"byKind,omitempty"`
	// LastEpochByKind is the most recently closed epoch's per-kind
	// breakdown, kept so EpochBytesByKind stays truthful across a
	// resume.
	LastEpochByKind map[string]float64 `json:"lastEpochByKind,omitempty"`
}

// Snapshot captures the fabric's accounting at an epoch boundary.
func (f *Fabric) Snapshot() *State {
	st := &State{
		TotalBytes:      f.totalBytes,
		StallNS:         f.stallNS,
		PeakDemand:      f.peakDemand,
		Epochs:          f.epochs,
		ByKind:          make(map[string]float64, len(f.byKind)),
		LastEpochByKind: make(map[string]float64, len(f.lastEpochByKind)),
	}
	for k, v := range f.byKind {
		st.ByKind[k] = v
	}
	for k, v := range f.lastEpochByKind {
		st.LastEpochByKind[k] = v
	}
	return st
}

// Restore loads a snapshot onto a fabric built with the same
// configuration, clearing the open-epoch buckets. Snapshots may come
// from untrusted checkpoint bytes, so invalid accounting is reported
// as an error rather than loaded.
func (f *Fabric) Restore(st *State) error {
	if st == nil {
		return fmt.Errorf("interconnect: nil fabric state")
	}
	if st.TotalBytes < 0 || math.IsNaN(st.TotalBytes) || math.IsInf(st.TotalBytes, 0) ||
		st.StallNS < 0 || math.IsNaN(st.StallNS) || math.IsInf(st.StallNS, 0) ||
		st.PeakDemand < 0 || math.IsNaN(st.PeakDemand) || math.IsInf(st.PeakDemand, 0) ||
		st.Epochs < 0 {
		return fmt.Errorf("interconnect: invalid fabric state: total=%v stall=%v peak=%v epochs=%d",
			st.TotalBytes, st.StallNS, st.PeakDemand, st.Epochs)
	}
	for k, v := range st.ByKind {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("interconnect: invalid fabric state: byKind[%q]=%v", k, v)
		}
	}
	for k, v := range st.LastEpochByKind {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("interconnect: invalid fabric state: lastEpochByKind[%q]=%v", k, v)
		}
	}
	f.totalBytes = st.TotalBytes
	f.stallNS = st.StallNS
	f.peakDemand = st.PeakDemand
	f.epochs = st.Epochs
	f.byKind = make(map[string]float64, len(st.ByKind))
	for k, v := range st.ByKind {
		f.byKind[k] = v
	}
	f.lastEpochByKind = make(map[string]float64, len(st.LastEpochByKind))
	for k, v := range st.LastEpochByKind {
		f.lastEpochByKind[k] = v
	}
	clear(f.epochByKind)
	for chip := range f.epochBytes {
		f.epochBytes[chip] = 0
	}
	return nil
}

// --- Message sizing ---------------------------------------------------

// SpinIndexBits returns the bits needed to name one of n spins —
// ceil(log2(n)), minimum 1. A flip update is one spin index; the new
// value is implied because updates are toggles.
func SpinIndexBits(n int) int {
	if n < 1 {
		panic(fmt.Sprintf("interconnect: SpinIndexBits(%d)", n))
	}
	if n == 1 {
		return 1
	}
	return bits.Len(uint(n - 1))
}

// FlipUpdateBytes returns the broadcast cost of one spin-flip update
// in a system of n total spins reaching fanout destination chips: the
// paper's f_s·N·log(N) demand comes from charging log2(N) bits per
// flip per destination.
func FlipUpdateBytes(n, fanout int) float64 {
	if fanout < 0 {
		panic(fmt.Sprintf("interconnect: fanout=%d", fanout))
	}
	return float64(SpinIndexBits(n)) / 8 * float64(fanout)
}

// DeltaSyncBytes returns the epoch-boundary cost of communicating
// `changes` bit changes out of `local` owned spins to fanout chips.
// The encoder picks the cheaper of an index list (changes·log2(local))
// and a full bitmap (local bits) — the batch-mode saving of Sec 5.5
// comes from changes being far fewer than flips.
func DeltaSyncBytes(changes, local, fanout int) float64 {
	if changes < 0 || changes > local {
		panic(fmt.Sprintf("interconnect: changes=%d local=%d", changes, local))
	}
	if fanout < 0 {
		panic(fmt.Sprintf("interconnect: fanout=%d", fanout))
	}
	indexList := float64(changes * SpinIndexBits(local))
	bitmap := float64(local)
	bits := math.Min(indexList, bitmap)
	return bits / 8 * float64(fanout)
}
