package interconnect

import (
	"math"
	"testing"
)

func TestTopologyString(t *testing.T) {
	if Dedicated.String() != "dedicated" || SharedBus.String() != "shared-bus" ||
		Ring.String() != "ring" {
		t.Fatal("topology names wrong")
	}
	if Topology(9).String() != "Topology(9)" {
		t.Fatal("unknown topology name wrong")
	}
}

func TestDedicatedIsDefault(t *testing.T) {
	f := mustNew(2, 1, 10)
	if f.Topology() != Dedicated {
		t.Fatal("default topology not dedicated")
	}
}

func TestSharedBusStallsOnTotal(t *testing.T) {
	// Two chips, 10 B/ns bus. 60 B each in a 5 ns epoch: dedicated
	// would need 6 ns per chip (1 ns stall); the bus needs 12 ns total
	// (7 ns stall).
	f := mustNew(2, 1, 10)
	f.SetTopology(SharedBus)
	f.Record(0, 60, "x")
	f.Record(1, 60, "x")
	if s := f.EndEpoch(5); math.Abs(s-7) > 1e-9 {
		t.Fatalf("bus stall = %v, want 7", s)
	}
}

func TestSharedBusWorseThanDedicated(t *testing.T) {
	load := func(topo Topology) float64 {
		f := mustNew(4, 1, 10)
		f.SetTopology(topo)
		for c := 0; c < 4; c++ {
			f.Record(c, 100, "x")
		}
		return f.EndEpoch(5)
	}
	if load(SharedBus) <= load(Dedicated) {
		t.Fatal("shared bus should stall at least as much as dedicated links")
	}
}

func TestRingStall(t *testing.T) {
	// 4 chips: hops = ⌈3/2⌉ = 2, links = 4. Total 400 B → per-link
	// 400·2/4 = 200 B at 10 B/ns = 20 ns; epoch 5 → stall 15.
	f := mustNew(4, 1, 10)
	f.SetTopology(Ring)
	for c := 0; c < 4; c++ {
		f.Record(c, 100, "x")
	}
	if s := f.EndEpoch(5); math.Abs(s-15) > 1e-9 {
		t.Fatalf("ring stall = %v, want 15", s)
	}
}

func TestRingBetweenDedicatedAndBus(t *testing.T) {
	// With uniform traffic the ring's per-link load sits between a
	// private link (1 chip's bytes) and the bus (all bytes).
	run := func(topo Topology) float64 {
		f := mustNew(6, 1, 10)
		f.SetTopology(topo)
		for c := 0; c < 6; c++ {
			f.Record(c, 100, "x")
		}
		return f.EndEpoch(1)
	}
	d, r, b := run(Dedicated), run(Ring), run(SharedBus)
	if !(d <= r && r <= b) {
		t.Fatalf("ordering violated: dedicated %v, ring %v, bus %v", d, r, b)
	}
}

func TestUnlimitedIgnoresTopology(t *testing.T) {
	for _, topo := range []Topology{Dedicated, SharedBus, Ring} {
		f := mustNew(4, 1, 0)
		f.SetTopology(topo)
		f.Record(0, 1e12, "x")
		if s := f.EndEpoch(1); s != 0 {
			t.Fatalf("%v: unlimited fabric stalled %v", topo, s)
		}
	}
}

func TestSingleChipRingNoHops(t *testing.T) {
	f := mustNew(1, 1, 10)
	f.SetTopology(Ring)
	f.Record(0, 1e6, "x")
	if s := f.EndEpoch(1); s != 0 {
		t.Fatalf("1-chip ring stalled %v (nothing to broadcast to)", s)
	}
}

func TestSetTopologyPanics(t *testing.T) {
	f := mustNew(2, 1, 10)
	f.Record(0, 1, "x")
	f.EndEpoch(1)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("SetTopology after EndEpoch did not panic")
			}
		}()
		f.SetTopology(Ring)
	}()
	if err := mustNew(2, 1, 10).SetTopology(Topology(42)); err == nil {
		t.Fatal("unknown topology did not error")
	}
}
