package interconnect

import (
	"math"
	"testing"
	"testing/quick"
)

// mustNew builds a fabric from known-good arguments; constructor error
// paths are covered by TestNewErrors.
func mustNew(numChips, channels int, bytesPerNS float64) *Fabric {
	f, err := New(numChips, channels, bytesPerNS)
	if err != nil {
		panic(err)
	}
	return f
}

func TestNewErrors(t *testing.T) {
	for name, fn := range map[string]func() (*Fabric, error){
		"zero chips":    func() (*Fabric, error) { return New(0, 1, 1) },
		"zero channels": func() (*Fabric, error) { return New(1, 0, 1) },
		"neg rate":      func() (*Fabric, error) { return New(1, 1, -1) },
		"nan rate":      func() (*Fabric, error) { return New(1, 1, math.NaN()) },
	} {
		if f, err := fn(); err == nil || f != nil {
			t.Fatalf("%s: want error, got fabric=%v err=%v", name, f, err)
		}
	}
}

func TestUnlimitedFabricNeverStalls(t *testing.T) {
	f := mustNew(4, 3, 0)
	if !f.Unlimited() {
		t.Fatal("zero rate should be unlimited")
	}
	f.Record(0, 1e12, "flip")
	if s := f.EndEpoch(1); s != 0 {
		t.Fatalf("unlimited fabric stalled %v", s)
	}
	if !math.IsInf(f.EgressRate(), 1) {
		t.Fatal("unlimited egress rate should be +Inf")
	}
}

func TestStallComputation(t *testing.T) {
	// 2 channels × 5 bytes/ns = 10 bytes/ns. 100 bytes in a 5 ns epoch
	// needs 10 ns to drain → 5 ns stall.
	f := mustNew(2, 2, 5)
	f.Record(0, 100, "flip")
	if s := f.EndEpoch(5); math.Abs(s-5) > 1e-9 {
		t.Fatalf("stall = %v, want 5", s)
	}
	if math.Abs(f.StallNS()-5) > 1e-9 {
		t.Fatalf("cumulative stall = %v", f.StallNS())
	}
}

func TestStallTakesWorstChip(t *testing.T) {
	f := mustNew(3, 1, 10)   // 10 bytes/ns per chip
	f.Record(0, 50, "flip")  // needs 5 ns
	f.Record(1, 200, "flip") // needs 20 ns
	f.Record(2, 10, "flip")  // needs 1 ns
	if s := f.EndEpoch(4); math.Abs(s-16) > 1e-9 {
		t.Fatalf("stall = %v, want 16 (worst chip)", s)
	}
}

func TestNoStallWhenWithinBudget(t *testing.T) {
	f := mustNew(2, 1, 100)
	f.Record(0, 50, "sync")
	if s := f.EndEpoch(1); s != 0 {
		t.Fatalf("stall %v despite headroom", s)
	}
}

func TestEpochBucketsReset(t *testing.T) {
	f := mustNew(1, 1, 10)
	f.Record(0, 100, "flip")
	f.EndEpoch(10) // exactly drains
	// A second epoch with no traffic must not stall.
	if s := f.EndEpoch(10); s != 0 {
		t.Fatalf("stale epoch traffic leaked: stall %v", s)
	}
}

func TestTrafficAccounting(t *testing.T) {
	f := mustNew(2, 1, 0)
	f.Record(0, 10, "flip")
	f.Record(1, 20, "sync")
	f.Record(0, 5, "flip")
	if f.TotalBytes() != 35 {
		t.Fatalf("TotalBytes = %v", f.TotalBytes())
	}
	if f.BytesByKind("flip") != 15 || f.BytesByKind("sync") != 20 {
		t.Fatal("per-kind accounting wrong")
	}
	if f.BytesByKind("absent") != 0 {
		t.Fatal("absent kind nonzero")
	}
}

func TestEpochKindSplit(t *testing.T) {
	// Per-epoch kind buckets snapshot at EndEpoch and reset, while the
	// cumulative totals keep growing — the split the recovery policies'
	// traffic accounting relies on.
	f := mustNew(2, 1, 0)
	f.Record(0, 10, "sync")
	f.Record(1, 4, "retransmit")
	f.EndEpoch(1)
	if got := f.EpochBytesByKind("sync"); got != 10 {
		t.Fatalf("epoch sync bytes = %v, want 10", got)
	}
	if got := f.EpochBytesByKind("retransmit"); got != 4 {
		t.Fatalf("epoch retransmit bytes = %v, want 4", got)
	}
	f.Record(0, 7, "sync")
	f.Record(0, 3, "resync")
	f.EndEpoch(1)
	if got := f.EpochBytesByKind("sync"); got != 7 {
		t.Fatalf("epoch 2 sync bytes = %v, want 7 (bucket must reset)", got)
	}
	if got := f.EpochBytesByKind("retransmit"); got != 0 {
		t.Fatalf("epoch 2 retransmit bytes = %v, want 0", got)
	}
	if got := f.EpochBytesByKind("resync"); got != 3 {
		t.Fatalf("epoch 2 resync bytes = %v, want 3", got)
	}
	// Cumulative totals are unaffected by the per-epoch reset.
	if f.BytesByKind("sync") != 17 || f.BytesByKind("retransmit") != 4 || f.BytesByKind("resync") != 3 {
		t.Fatalf("cumulative kinds wrong: sync=%v retransmit=%v resync=%v",
			f.BytesByKind("sync"), f.BytesByKind("retransmit"), f.BytesByKind("resync"))
	}
	if f.TotalBytes() != 24 {
		t.Fatalf("TotalBytes = %v, want 24", f.TotalBytes())
	}
	kinds := f.Kinds()
	if len(kinds) != 3 {
		t.Fatalf("Kinds = %v, want 3 entries", kinds)
	}
}

func TestAddStall(t *testing.T) {
	f := mustNew(1, 1, 0)
	f.Record(0, 8, "sync")
	f.EndEpoch(1)
	f.AddStall(2.5)
	if got := f.StallNS(); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("StallNS = %v, want 2.5", got)
	}
}

func TestPeakDemand(t *testing.T) {
	f := mustNew(1, 1, 0)
	f.Record(0, 100, "flip")
	f.EndEpoch(10) // 10 bytes/ns
	f.Record(0, 10, "flip")
	f.EndEpoch(10) // 1 byte/ns
	if math.Abs(f.PeakDemand()-10) > 1e-9 {
		t.Fatalf("PeakDemand = %v, want 10", f.PeakDemand())
	}
	if f.Epochs() != 2 {
		t.Fatalf("Epochs = %d", f.Epochs())
	}
}

func TestDeliveryInvariant(t *testing.T) {
	// DESIGN.md invariant: bytes delivered ≤ bandwidth × (epoch+stall),
	// per chip, for any traffic pattern.
	f2 := func(loads []uint32, epochRaw uint16) bool {
		f := mustNew(4, 2, 3)
		epoch := float64(epochRaw%1000) + 1
		for i, l := range loads {
			f.Record(i%4, float64(l%100000), "x")
		}
		var perChip [4]float64
		for i, l := range loads {
			perChip[i%4] += float64(l % 100000)
		}
		stall := f.EndEpoch(epoch)
		budget := f.EgressRate() * (epoch + stall)
		for _, b := range perChip {
			if b > budget+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f2, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpinIndexBits(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4,
		1024: 10, 1025: 11, 8000: 13, 32000: 15}
	for n, want := range cases {
		if got := SpinIndexBits(n); got != want {
			t.Fatalf("SpinIndexBits(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestFlipUpdateBytes(t *testing.T) {
	// 1024 spins → 10 bits → 1.25 bytes per destination; 3 destinations.
	if got := FlipUpdateBytes(1024, 3); math.Abs(got-3.75) > 1e-12 {
		t.Fatalf("FlipUpdateBytes = %v, want 3.75", got)
	}
	if got := FlipUpdateBytes(1024, 0); got != 0 {
		t.Fatalf("zero fanout cost = %v", got)
	}
}

func TestDeltaSyncBytesPicksCheaper(t *testing.T) {
	// 1000 local spins, 10 changes: index list = 10×10 bits = 100 bits
	// beats the 1000-bit bitmap.
	few := DeltaSyncBytes(10, 1000, 1)
	if math.Abs(few-100.0/8) > 1e-12 {
		t.Fatalf("few-changes cost = %v, want 12.5", few)
	}
	// 500 changes: 500×10 = 5000 bits; bitmap 1000 bits wins.
	many := DeltaSyncBytes(500, 1000, 1)
	if math.Abs(many-1000.0/8) > 1e-12 {
		t.Fatalf("many-changes cost = %v, want 125", many)
	}
}

func TestDeltaSyncBytesMonotoneProperty(t *testing.T) {
	// More changes can never cost less.
	f := func(aRaw, bRaw uint16) bool {
		local := 1000
		a := int(aRaw) % (local + 1)
		b := int(bRaw) % (local + 1)
		if a > b {
			a, b = b, a
		}
		return DeltaSyncBytes(a, local, 2) <= DeltaSyncBytes(b, local, 2)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"bad chip":    func() { mustNew(2, 1, 1).Record(2, 1, "x") },
		"neg bytes":   func() { mustNew(2, 1, 1).Record(0, -1, "x") },
		"zero epoch":  func() { mustNew(2, 1, 1).EndEpoch(0) },
		"neg stall":   func() { mustNew(2, 1, 1).AddStall(-1) },
		"bad changes": func() { DeltaSyncBytes(11, 10, 1) },
		"bad index n": func() { SpinIndexBits(0) },
		"neg fanout":  func() { FlipUpdateBytes(8, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
