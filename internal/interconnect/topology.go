package interconnect

import "fmt"

// Topology selects the first-order congestion model of the fabric.
// The paper assumes dedicated per-chip channels (mBRIM_HB gives each
// chip three private 250 GB/s links); the alternatives quantify what
// cheaper fabrics would cost.
type Topology int

const (
	// Dedicated gives every chip its own egress channels: a chip
	// stalls only on its own traffic. The paper's assumption.
	Dedicated Topology = iota
	// SharedBus arbitrates one medium among all chips: the system
	// stalls on the *sum* of all traffic.
	SharedBus
	// Ring connects chips in a bidirectional ring: a broadcast splits
	// both ways and travels ⌈(k−1)/2⌉ hops, so every byte of payload
	// occupies that many link-hops, spread over k links.
	Ring
)

// String names the topology.
func (t Topology) String() string {
	switch t {
	case Dedicated:
		return "dedicated"
	case SharedBus:
		return "shared-bus"
	case Ring:
		return "ring"
	default:
		return fmt.Sprintf("Topology(%d)", int(t))
	}
}

// SetTopology selects the congestion model. Call before any EndEpoch;
// changing it mid-run would make the stall accounting incoherent.
// Unknown topologies are reported as an error (they arrive from user
// configuration); calling after epochs closed is an internal invariant
// violation and panics.
func (f *Fabric) SetTopology(t Topology) error {
	if f.epochs > 0 {
		panic("interconnect: SetTopology after epochs have closed")
	}
	switch t {
	case Dedicated, SharedBus, Ring:
		f.topology = t
	default:
		return fmt.Errorf("interconnect: unknown topology %d", int(t))
	}
	return nil
}

// Topology returns the congestion model in effect.
func (f *Fabric) Topology() Topology { return f.topology }

// epochStall computes the stall for the closed epoch under the
// configured topology, given the per-chip epoch bytes.
func (f *Fabric) epochStall(epochNS float64) float64 {
	if f.Unlimited() {
		return 0
	}
	rate := f.EgressRate()
	stall := 0.0
	switch f.topology {
	case SharedBus:
		total := 0.0
		for _, b := range f.epochBytes {
			total += b
		}
		if s := total/rate - epochNS; s > 0 {
			stall = s
		}
	case Ring:
		k := float64(f.numChips)
		hops := float64(f.numChips / 2) // ⌈(k−1)/2⌉
		if f.numChips == 1 {
			hops = 0
		}
		total := 0.0
		for _, b := range f.epochBytes {
			total += b
		}
		perLink := total * hops / k
		if s := perLink/rate - epochNS; s > 0 {
			stall = s
		}
	default: // Dedicated
		for _, b := range f.epochBytes {
			if s := b/rate - epochNS; s > stall {
				stall = s
			}
		}
	}
	return stall
}
