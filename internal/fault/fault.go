// Package fault is the deterministic fault-injection layer for the
// multiprocessor's digital fabric and chips. The paper's multi-chip
// gains rest on every epoch-boundary synchronization arriving intact;
// follow-up analyses (see PAPERS.md: "Limitations in Parallel Ising
// Machine Networks") show that stale or lost inter-chip updates are
// exactly where parallel Ising networks break down. This package lets
// the simulator model — and, with the recovery policies, survive — an
// imperfect fabric instead of an ideal one.
//
// # Fault model
//
// Four injectable fault classes, all seed-driven and independent of
// host scheduling:
//
//   - message drop: a chip's epoch-boundary broadcast is lost; the
//     sender believes it delivered, so receiver shadows silently go
//     stale (belief divergence).
//   - message corruption: the broadcast arrives with one update's
//     value inverted; receivers apply garbage.
//   - message delay: the broadcast arrives one epoch late.
//   - chip stall: a chip's analog integration freezes for one epoch
//     (its digital logic — PRNG, kick latch, fabric port — keeps
//     clocking, so coordinated-kick streams stay aligned).
//   - chip loss: one chip dies permanently at a configured epoch; its
//     slice freezes unless the repartition recovery is enabled.
//
// # Determinism
//
// Every decision is derived by stateless splitmix64 hashing of
// (seed, domain, epoch, chip, attempt) — no shared stream is consumed
// — so the schedule is bit-identical whether the chips are simulated
// sequentially or on host goroutines, and identical across runs for
// the same seed. This is what makes resilience sweeps reproducible.
//
// # Recovery policies
//
// Each policy is charged honestly in the cost model (fabric bytes by
// kind plus stall ns), never applied for free:
//
//   - Detect: CRC-style detection with bounded retransmit-and-backoff.
//     A faulted message is detected and retransmitted up to
//     MaxRetransmits times; every attempt re-charges the message bytes
//     (kind "retransmit") and adds RetransmitBackoffNS of stall. If
//     every attempt faults, the sender knows delivery failed and keeps
//     its belief ledger stale, so the changes resend naturally at the
//     next boundary.
//   - WatchdogThreshold: a shadow-staleness watchdog. When the
//     fraction of a chip's owned spins whose receiver shadows diverge
//     from its true readout exceeds the threshold, the chip broadcasts
//     a full bitmap of its slice (kind "resync"), repairing all
//     shadows at full-bitmap cost.
//   - Repartition: graceful degradation on chip loss. The dead chip's
//     spins are redistributed round-robin onto the survivors, which
//     are reprogrammed (RepartitionNSPerSpin stall per moved spin plus
//     a state broadcast, kind "resync") and the run continues at
//     reduced capacity.
package fault

import (
	"fmt"
	"math"

	"mbrim/internal/rng"
)

// Recovery configures the recovery policies. The zero value disables
// all of them: faults land and nothing fights back.
type Recovery struct {
	// Detect enables CRC-style fault detection with bounded
	// retransmission of faulted boundary messages.
	Detect bool
	// MaxRetransmits bounds the retries per message. Default 3 when
	// Detect is set.
	MaxRetransmits int
	// RetransmitBackoffNS is the stall charged per retransmit attempt
	// (detection latency + turnaround). Default 0.5 ns when Detect is
	// set.
	RetransmitBackoffNS float64
	// WatchdogThreshold, if > 0, enables the shadow-staleness watchdog:
	// when a chip's receiver-shadow divergence fraction exceeds the
	// threshold at an epoch boundary, a full-bitmap resync is forced.
	WatchdogThreshold float64
	// Repartition enables graceful degradation on chip loss: the dead
	// chip's slice is repartitioned onto the survivors and the run
	// continues.
	Repartition bool
	// RepartitionNSPerSpin is the reprogramming stall charged per spin
	// moved during a repartition. Default 10 ns.
	RepartitionNSPerSpin float64
}

// Config parameterizes the injector. The zero value injects nothing;
// see Enabled.
type Config struct {
	// Seed drives every fault decision. Independent of the system
	// seed so fault schedules can be varied against a fixed problem.
	Seed uint64
	// DropRate is the per-message probability that an epoch-boundary
	// broadcast is lost.
	DropRate float64
	// CorruptRate is the per-message probability that a broadcast
	// arrives with one update inverted.
	CorruptRate float64
	// DelayRate is the per-message probability that a broadcast is
	// delivered one epoch late.
	DelayRate float64
	// StallRate is the per-chip per-epoch probability of a transient
	// integration stall.
	StallRate float64
	// ChipLossEpoch, if > 0, kills one chip permanently at the start
	// of that (1-based) epoch.
	ChipLossEpoch int
	// ChipLossChip selects the victim; -1 picks one from the seed.
	ChipLossChip int
	// Recovery selects the recovery policies.
	Recovery Recovery
}

// Enabled reports whether the configuration injects any fault at all.
// A disabled config must leave simulations bit-identical to runs with
// no fault layer.
func (c Config) Enabled() bool {
	return c.DropRate > 0 || c.CorruptRate > 0 || c.DelayRate > 0 ||
		c.StallRate > 0 || c.ChipLossEpoch > 0
}

// Validate checks the configuration against a system of `chips` chips.
func (c Config) Validate(chips int) error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"DropRate", c.DropRate},
		{"CorruptRate", c.CorruptRate},
		{"DelayRate", c.DelayRate},
		{"StallRate", c.StallRate},
	} {
		if math.IsNaN(r.v) || r.v < 0 || r.v > 1 {
			return fmt.Errorf("fault: %s=%v outside [0,1]", r.name, r.v)
		}
	}
	if c.ChipLossEpoch < 0 {
		return fmt.Errorf("fault: ChipLossEpoch=%d", c.ChipLossEpoch)
	}
	if c.ChipLossChip < -1 || c.ChipLossChip >= chips {
		return fmt.Errorf("fault: ChipLossChip=%d for %d chips", c.ChipLossChip, chips)
	}
	r := c.Recovery
	if r.MaxRetransmits < 0 {
		return fmt.Errorf("fault: MaxRetransmits=%d", r.MaxRetransmits)
	}
	if math.IsNaN(r.RetransmitBackoffNS) || r.RetransmitBackoffNS < 0 {
		return fmt.Errorf("fault: RetransmitBackoffNS=%v", r.RetransmitBackoffNS)
	}
	if math.IsNaN(r.WatchdogThreshold) || r.WatchdogThreshold < 0 || r.WatchdogThreshold > 1 {
		return fmt.Errorf("fault: WatchdogThreshold=%v outside [0,1]", r.WatchdogThreshold)
	}
	if math.IsNaN(r.RepartitionNSPerSpin) || r.RepartitionNSPerSpin < 0 {
		return fmt.Errorf("fault: RepartitionNSPerSpin=%v", r.RepartitionNSPerSpin)
	}
	return nil
}

// withDefaults fills the recovery defaults.
func (c Config) withDefaults() Config {
	out := c
	if out.Recovery.Detect {
		if out.Recovery.MaxRetransmits == 0 {
			out.Recovery.MaxRetransmits = 3
		}
		if out.Recovery.RetransmitBackoffNS == 0 {
			out.Recovery.RetransmitBackoffNS = 0.5
		}
	}
	if out.Recovery.Repartition && out.Recovery.RepartitionNSPerSpin == 0 {
		out.Recovery.RepartitionNSPerSpin = 10
	}
	return out
}

// MessagePlan is the injector's verdict on one boundary broadcast
// attempt. Drop wins over Corrupt; Delay composes with a clean
// delivery. Salt picks which update a corruption mangles.
type MessagePlan struct {
	Drop    bool
	Corrupt bool
	Delay   bool
	Salt    uint64
}

// Faulted reports whether the attempt is damaged (dropped or
// corrupted) — the condition CRC-style detection catches.
func (p MessagePlan) Faulted() bool { return p.Drop || p.Corrupt }

// Injector hands out deterministic fault decisions. It is stateless
// after construction and therefore safe for concurrent use from chip
// goroutines.
type Injector struct {
	cfg      Config
	chips    int
	lossChip int
}

// NewInjector validates cfg for a system of `chips` chips and builds
// the injector, applying recovery defaults.
func NewInjector(cfg Config, chips int) (*Injector, error) {
	if chips < 1 {
		return nil, fmt.Errorf("fault: chips=%d", chips)
	}
	if err := cfg.Validate(chips); err != nil {
		return nil, err
	}
	in := &Injector{cfg: cfg.withDefaults(), chips: chips, lossChip: cfg.ChipLossChip}
	if cfg.ChipLossEpoch > 0 && cfg.ChipLossChip == -1 {
		in.lossChip = rng.New(cfg.Seed).Fork(0x1055).Intn(chips)
	}
	return in, nil
}

// Config returns the (defaulted) configuration in effect.
func (in *Injector) Config() Config { return in.cfg }

// Hash domains: distinct streams per decision class so adding one
// fault class never perturbs another's schedule.
const (
	domainStall   = 0x57A11
	domainMessage = 0x4D5A6
)

// stream derives a fresh deterministic source for one decision site.
func (in *Injector) stream(domain, epoch, chip, attempt uint64) *rng.Source {
	s := in.cfg.Seed
	for _, v := range [...]uint64{domain, epoch, chip, attempt} {
		s += 0x9e3779b97f4a7c15 * (v + 1)
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		s = z ^ (z >> 31)
	}
	return rng.New(s)
}

// ChipStalled reports whether chip's integration freezes for the given
// (1-based) epoch.
func (in *Injector) ChipStalled(epoch, chip int) bool {
	if in.cfg.StallRate <= 0 {
		return false
	}
	return in.stream(domainStall, uint64(epoch), uint64(chip), 0).Bool(in.cfg.StallRate)
}

// Message returns the fault plan for chip's boundary broadcast at the
// given (1-based) epoch. attempt 0 is the original send; attempts
// 1..MaxRetransmits are CRC-triggered retries, each redrawing its fate
// independently.
func (in *Injector) Message(epoch, chip, attempt int) MessagePlan {
	var p MessagePlan
	if in.cfg.DropRate <= 0 && in.cfg.CorruptRate <= 0 && in.cfg.DelayRate <= 0 {
		return p
	}
	r := in.stream(domainMessage, uint64(epoch), uint64(chip), uint64(attempt))
	p.Drop = r.Bool(in.cfg.DropRate)
	p.Corrupt = r.Bool(in.cfg.CorruptRate)
	p.Delay = r.Bool(in.cfg.DelayRate)
	p.Salt = r.Uint64()
	if p.Drop {
		p.Corrupt = false
	}
	return p
}

// LostChip reports which chip (if any) dies at the start of the given
// (1-based) epoch.
func (in *Injector) LostChip(epoch int) (chip int, lost bool) {
	if in.cfg.ChipLossEpoch == 0 || epoch != in.cfg.ChipLossEpoch {
		return -1, false
	}
	return in.lossChip, true
}

// Stats is the per-run ledger of injected faults and recovery work,
// reported alongside a run's result so resilience sweeps need no
// external registry.
type Stats struct {
	// Injected fault counts.
	Drops, Corruptions, Delays, Stalls, ChipLosses int64
	// Recovery activity: retransmit attempts, watchdog resyncs, and
	// repartitions performed.
	Retransmits, Resyncs, Repartitions int64
	// Recovery traffic, also visible in the fabric's kind-tagged
	// accounting under "retransmit" and "resync".
	RetransmitBytes, ResyncBytes float64
	// RecoveryStallNS is the stall charged by recovery (retransmit
	// backoff + repartition reprogramming); included in the run's
	// total StallNS.
	RecoveryStallNS float64
}

// Any reports whether anything at all was injected or recovered.
func (s Stats) Any() bool {
	return s.Drops != 0 || s.Corruptions != 0 || s.Delays != 0 || s.Stalls != 0 ||
		s.ChipLosses != 0 || s.Retransmits != 0 || s.Resyncs != 0 || s.Repartitions != 0
}
