package fault

import (
	"math"
	"testing"
)

func TestZeroConfigDisabled(t *testing.T) {
	var c Config
	if c.Enabled() {
		t.Fatal("zero config must be disabled")
	}
	if err := c.Validate(4); err != nil {
		t.Fatalf("zero config invalid: %v", err)
	}
	if (Stats{}).Any() {
		t.Fatal("zero stats must report nothing")
	}
}

func TestValidateRejects(t *testing.T) {
	for name, cfg := range map[string]Config{
		"drop > 1":        {DropRate: 1.5},
		"neg corrupt":     {CorruptRate: -0.1},
		"nan delay":       {DelayRate: math.NaN()},
		"stall > 1":       {StallRate: 2},
		"neg loss epoch":  {ChipLossEpoch: -1},
		"loss chip range": {ChipLossEpoch: 1, ChipLossChip: 4},
		"loss chip low":   {ChipLossEpoch: 1, ChipLossChip: -2},
		"neg retries":     {Recovery: Recovery{MaxRetransmits: -1}},
		"neg backoff":     {Recovery: Recovery{RetransmitBackoffNS: -1}},
		"watchdog > 1":    {Recovery: Recovery{WatchdogThreshold: 1.5}},
		"neg reprogram":   {Recovery: Recovery{RepartitionNSPerSpin: -1}},
	} {
		if err := cfg.Validate(4); err == nil {
			t.Fatalf("%s passed validation", name)
		}
		if _, err := NewInjector(cfg, 4); err == nil {
			t.Fatalf("%s passed NewInjector", name)
		}
	}
}

func TestRecoveryDefaults(t *testing.T) {
	in, err := NewInjector(Config{DropRate: 0.1,
		Recovery: Recovery{Detect: true, Repartition: true}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	r := in.Config().Recovery
	if r.MaxRetransmits != 3 || r.RetransmitBackoffNS != 0.5 || r.RepartitionNSPerSpin != 10 {
		t.Fatalf("defaults not applied: %+v", r)
	}
}

func TestMessageDeterminism(t *testing.T) {
	// Identical (seed, epoch, chip, attempt) → identical plan, however
	// many times and in whatever order the injector is consulted. This
	// is the property that makes fault schedules independent of host
	// scheduling (Parallel on/off).
	a, _ := NewInjector(Config{Seed: 7, DropRate: 0.3, CorruptRate: 0.2, DelayRate: 0.2}, 4)
	b, _ := NewInjector(Config{Seed: 7, DropRate: 0.3, CorruptRate: 0.2, DelayRate: 0.2}, 4)
	for epoch := 1; epoch <= 50; epoch++ {
		for chip := 0; chip < 4; chip++ {
			for attempt := 0; attempt < 3; attempt++ {
				pa := a.Message(epoch, chip, attempt)
				// Consult b in a scrambled, repeated pattern.
				_ = b.Message(epoch+1, chip, attempt)
				pb := b.Message(epoch, chip, attempt)
				if pa != pb {
					t.Fatalf("plan diverged at e=%d c=%d a=%d: %+v vs %+v",
						epoch, chip, attempt, pa, pb)
				}
				if pb != b.Message(epoch, chip, attempt) {
					t.Fatal("repeated consultation changed the plan")
				}
			}
			if a.ChipStalled(epoch, chip) != b.ChipStalled(epoch, chip) {
				t.Fatalf("stall schedule diverged at e=%d c=%d", epoch, chip)
			}
		}
	}
}

func TestSeedChangesSchedule(t *testing.T) {
	a, _ := NewInjector(Config{Seed: 1, DropRate: 0.5}, 2)
	b, _ := NewInjector(Config{Seed: 2, DropRate: 0.5}, 2)
	same := 0
	total := 0
	for epoch := 1; epoch <= 200; epoch++ {
		for chip := 0; chip < 2; chip++ {
			total++
			if a.Message(epoch, chip, 0).Drop == b.Message(epoch, chip, 0).Drop {
				same++
			}
		}
	}
	if same == total {
		t.Fatal("different seeds produced identical drop schedules")
	}
}

func TestMessageRatesRoughlyHonored(t *testing.T) {
	in, _ := NewInjector(Config{Seed: 3, DropRate: 0.25}, 1)
	drops := 0
	const n = 4000
	for epoch := 1; epoch <= n; epoch++ {
		if in.Message(epoch, 0, 0).Drop {
			drops++
		}
	}
	frac := float64(drops) / n
	if frac < 0.20 || frac > 0.30 {
		t.Fatalf("drop fraction %v far from 0.25", frac)
	}
}

func TestDropWinsOverCorrupt(t *testing.T) {
	in, _ := NewInjector(Config{Seed: 5, DropRate: 1, CorruptRate: 1}, 1)
	p := in.Message(1, 0, 0)
	if !p.Drop || p.Corrupt {
		t.Fatalf("want pure drop, got %+v", p)
	}
	if !p.Faulted() {
		t.Fatal("dropped plan not Faulted")
	}
}

func TestLostChip(t *testing.T) {
	in, _ := NewInjector(Config{Seed: 9, ChipLossEpoch: 5, ChipLossChip: 2}, 4)
	if _, lost := in.LostChip(4); lost {
		t.Fatal("loss fired early")
	}
	chip, lost := in.LostChip(5)
	if !lost || chip != 2 {
		t.Fatalf("LostChip(5) = %d, %v", chip, lost)
	}
	if _, lost := in.LostChip(6); lost {
		t.Fatal("loss fired twice")
	}
	// -1 picks a victim from the seed, deterministically and in range.
	a, _ := NewInjector(Config{Seed: 9, ChipLossEpoch: 1, ChipLossChip: -1}, 4)
	b, _ := NewInjector(Config{Seed: 9, ChipLossEpoch: 1, ChipLossChip: -1}, 4)
	ca, _ := a.LostChip(1)
	cb, _ := b.LostChip(1)
	if ca != cb || ca < 0 || ca >= 4 {
		t.Fatalf("seeded victim: %d vs %d", ca, cb)
	}
}
