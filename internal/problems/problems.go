// Package problems provides Ising encodings of classic NP-complete
// problems, following Lucas's catalogue ("Ising formulations of many
// NP problems", reference [36] of the paper). The paper's premise is
// that an Ising machine is a general accelerator precisely because
// every problem in the Karp set has such a formulation; this package
// makes that concrete for the library:
//
//   - number partitioning (Partition)
//   - minimum vertex cover (VertexCover)
//   - maximum independent set (IndependentSet)
//   - maximum clique (Clique)
//   - graph k-coloring (Coloring)
//   - boolean satisfiability (SAT, via the independent-set reduction)
//   - traveling salesman (TSP)
//
// Every encoding follows the same contract: a problem value exposes an
// Ising() method returning the model (and, where meaningful, a
// constant offset such that objective = energy + offset), a Decode
// method mapping a spin assignment back to the problem domain, and
// validators/objectives on the decoded solution. Penalty weights
// default to values that make constraint violations strictly
// unprofitable for the instance at hand; they can be overridden.
package problems

import "fmt"

// requirePositive panics with a uniform message when a sizing argument
// is out of range — encodings are programmer-driven, so these are
// contract violations, not runtime errors.
func requirePositive(name string, v int) {
	if v <= 0 {
		panic(fmt.Sprintf("problems: %s must be positive, got %d", name, v))
	}
}
