package problems

import (
	"fmt"

	"mbrim/internal/graph"
	"mbrim/internal/ising"
)

// Literal is a possibly negated boolean variable.
type Literal struct {
	Var     int
	Negated bool
}

// SAT is boolean satisfiability in CNF. The encoding is the classic
// reduction through maximum independent set (Lucas §4.2 → §4.1 chain,
// also Karp's original): one node per literal *occurrence*, edges
// inside each clause (pick at most one literal per clause) and between
// every pair of contradictory occurrences (x and ¬x can't both be
// chosen). An independent set of size = #clauses exists iff the
// formula is satisfiable.
type SAT struct {
	// Vars is the number of boolean variables (indices 0..Vars-1).
	Vars int
	// Clauses is the CNF: each clause is a disjunction of literals.
	Clauses [][]Literal
	// A, B forward to the underlying IndependentSet encoding.
	A, B float64
}

// validate panics on malformed formulas.
func (s SAT) validate() {
	requirePositive("Vars", s.Vars)
	if len(s.Clauses) == 0 {
		panic("problems: SAT with no clauses")
	}
	for ci, cl := range s.Clauses {
		if len(cl) == 0 {
			panic(fmt.Sprintf("problems: empty clause %d", ci))
		}
		for _, l := range cl {
			if l.Var < 0 || l.Var >= s.Vars {
				panic(fmt.Sprintf("problems: clause %d references variable %d of %d", ci, l.Var, s.Vars))
			}
		}
	}
}

// conflictGraph builds the occurrence graph; node order is clause
// order then literal order, so Index(c, l) = Σ len(earlier clauses)+l.
func (s SAT) conflictGraph() *graph.Graph {
	s.validate()
	total := 0
	starts := make([]int, len(s.Clauses))
	for ci, cl := range s.Clauses {
		starts[ci] = total
		total += len(cl)
	}
	g := graph.New(total)
	// Intra-clause cliques.
	for ci, cl := range s.Clauses {
		for i := 0; i < len(cl); i++ {
			for j := i + 1; j < len(cl); j++ {
				g.AddEdge(starts[ci]+i, starts[ci]+j, 1)
			}
		}
	}
	// Contradiction edges across clauses.
	for ci, cl := range s.Clauses {
		for i, li := range cl {
			for cj := ci + 1; cj < len(s.Clauses); cj++ {
				for j, lj := range s.Clauses[cj] {
					if li.Var == lj.Var && li.Negated != lj.Negated {
						g.AddEdge(starts[ci]+i, starts[cj]+j, 1)
					}
				}
			}
		}
	}
	return g
}

// Ising returns the independent-set model of the occurrence graph.
// Ground states with |set| = #clauses correspond to satisfying
// assignments.
func (s SAT) Ising() (m *ising.Model, offset float64) {
	return IndependentSet{G: s.conflictGraph(), A: s.A, B: s.B}.Ising()
}

// Decode maps spins to a boolean assignment: chosen occurrences force
// their literal true; unconstrained variables default to false. The
// chosen set is first repaired to independence, so contradictory
// forcings cannot occur.
func (s SAT) Decode(spins []int8) []bool {
	g := s.conflictGraph()
	set := IndependentSet{G: g, A: s.A, B: s.B}.Decode(spins)
	inSet := make(map[int]bool, len(set))
	for _, v := range set {
		inSet[v] = true
	}
	assign := make([]bool, s.Vars)
	node := 0
	for _, cl := range s.Clauses {
		for _, l := range cl {
			if inSet[node] {
				assign[l.Var] = !l.Negated
			}
			node++
		}
	}
	s.repair(assign)
	return assign
}

// repair greedily flips any variable whose flip strictly increases the
// satisfied-clause count, until no single flip helps — the standard
// boolean-side cleanup of raw annealer output.
func (s SAT) repair(assign []bool) {
	current := s.NumSatisfied(assign)
	for pass := 0; pass < s.Vars; pass++ {
		improved := false
		for v := 0; v < s.Vars; v++ {
			assign[v] = !assign[v]
			if got := s.NumSatisfied(assign); got > current {
				current = got
				improved = true
			} else {
				assign[v] = !assign[v]
			}
		}
		if !improved {
			return
		}
	}
}

// NumSatisfied counts clauses satisfied by the assignment.
func (s SAT) NumSatisfied(assign []bool) int {
	if len(assign) != s.Vars {
		panic("problems: SAT.NumSatisfied length mismatch")
	}
	sat := 0
	for _, cl := range s.Clauses {
		for _, l := range cl {
			if assign[l.Var] != l.Negated {
				sat++
				break
			}
		}
	}
	return sat
}

// Satisfied reports whether the assignment satisfies every clause.
func (s SAT) Satisfied(assign []bool) bool {
	return s.NumSatisfied(assign) == len(s.Clauses)
}
