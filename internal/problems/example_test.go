package problems_test

import (
	"fmt"

	"mbrim/internal/exact"
	"mbrim/internal/graph"
	"mbrim/internal/problems"
)

// ExamplePartition solves a small number-partitioning instance
// exactly.
func ExamplePartition() {
	p := problems.Partition{Numbers: []float64{5, 4, 3, 2, 2}}
	m, offset := p.Ising()
	res := exact.Solve(m)
	fmt.Println(res.Energy+offset == 0, p.Imbalance(res.Spins))
	// Output: true 0
}

// ExampleVertexCover finds the minimum cover of a path graph.
func ExampleVertexCover() {
	g := graph.New(5)
	for i := 0; i < 4; i++ {
		g.AddEdge(i, i+1, 1)
	}
	vc := problems.VertexCover{G: g}
	m, _ := vc.Ising()
	cover := vc.Decode(exact.Solve(m).Spins)
	fmt.Println(vc.IsCover(cover), len(cover))
	// Output: true 2
}

// ExampleSAT decides a tiny CNF formula.
func ExampleSAT() {
	s := problems.SAT{
		Vars: 2,
		Clauses: [][]problems.Literal{
			{{Var: 0}, {Var: 1}},
			{{Var: 0, Negated: true}},
		},
	}
	m, _ := s.Ising()
	assign := s.Decode(exact.Solve(m).Spins)
	fmt.Println(s.Satisfied(assign), assign[0], assign[1])
	// Output: true false true
}

// ExampleKnapsack packs a small knapsack optimally.
func ExampleKnapsack() {
	k := problems.Knapsack{
		Weights:  []int{2, 3, 4},
		Values:   []float64{3, 4, 5},
		Capacity: 5,
	}
	m, _ := k.Ising()
	items := k.Decode(exact.Solve(m).Spins)
	fmt.Println(k.Feasible(items), k.TotalValue(items))
	// Output: true 7
}

// ExampleTSP finds the square's perimeter tour.
func ExampleTSP() {
	d := [][]float64{
		{0, 1, 2, 1},
		{1, 0, 1, 2},
		{2, 1, 0, 1},
		{1, 2, 1, 0},
	}
	t := problems.TSP{Dist: d}
	m, _ := t.Ising()
	tour := t.Decode(exact.Solve(m).Spins)
	fmt.Println(t.ValidTour(tour), t.Length(tour))
	// Output: true 4
}
