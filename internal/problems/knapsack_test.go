package problems

import (
	"math"
	"testing"

	"mbrim/internal/exact"
	"mbrim/internal/sa"
)

// bruteKnapsack returns the optimal value by enumeration.
func bruteKnapsack(k Knapsack) float64 {
	best := 0.0
	n := k.Items()
	for mask := 0; mask < 1<<n; mask++ {
		w, v := 0, 0.0
		for α := 0; α < n; α++ {
			if mask&(1<<α) != 0 {
				w += k.Weights[α]
				v += k.Values[α]
			}
		}
		if w <= k.Capacity && v > best {
			best = v
		}
	}
	return best
}

func TestKnapsackExactSmall(t *testing.T) {
	k := Knapsack{
		Weights:  []int{2, 3, 4},
		Values:   []float64{3, 4, 5},
		Capacity: 5,
	}
	m, offset := k.Ising()
	if m.N() != 8 { // 3 items + 5 slack bits
		t.Fatalf("spins = %d, want 8", m.N())
	}
	res := exact.Solve(m)
	// At the optimum H = −B·value with B = 1.
	wantValue := bruteKnapsack(k) // items {2,3}: weight 5 ≤ 5, value 7? No: w2+w3=7>5; best = {0,1}: w=5, v=7
	got := -(res.Energy + offset)
	if math.Abs(got-wantValue) > 1e-6 {
		t.Fatalf("encoded optimum value %v, brute force %v", got, wantValue)
	}
	items := k.Decode(res.Spins)
	if !k.Feasible(items) {
		t.Fatalf("decoded selection %v infeasible", items)
	}
	if math.Abs(k.TotalValue(items)-wantValue) > 1e-6 {
		t.Fatalf("decoded value %v, want %v", k.TotalValue(items), wantValue)
	}
}

func TestKnapsackConstraintBinds(t *testing.T) {
	// One heavy, valuable item that does not fit: the optimum must
	// skip it.
	k := Knapsack{
		Weights:  []int{6, 2},
		Values:   []float64{100, 1},
		Capacity: 5,
	}
	m, offset := k.Ising()
	res := exact.Solve(m)
	if got := -(res.Energy + offset); math.Abs(got-1) > 1e-6 {
		t.Fatalf("optimum value %v, want 1 (big item cannot fit)", got)
	}
}

func TestKnapsackSAWithRepair(t *testing.T) {
	k := Knapsack{
		Weights:  []int{3, 5, 7, 2, 4, 6, 1, 8},
		Values:   []float64{4, 7, 9, 2, 6, 7, 1, 10},
		Capacity: 15,
	}
	m, _ := k.Ising()
	br := sa.SolveBatch(m, sa.Config{Sweeps: 600, Seed: 1}, 8)
	items := k.Decode(br.Best.Spins)
	if !k.Feasible(items) {
		t.Fatalf("repaired selection %v infeasible (weight %d)", items, k.TotalWeight(items))
	}
	want := bruteKnapsack(k)
	if got := k.TotalValue(items); got < 0.8*want {
		t.Fatalf("SA+repair value %v, optimum %v", got, want)
	}
}

func TestKnapsackDecodeRepairsOverload(t *testing.T) {
	k := Knapsack{Weights: []int{3, 3, 3}, Values: []float64{1, 2, 3}, Capacity: 4}
	spins := make([]int8, k.Spins())
	for i := range spins {
		spins[i] = 1 // everything selected: weight 9 > 4
	}
	items := k.Decode(spins)
	if !k.Feasible(items) {
		t.Fatalf("repair left infeasible selection %v", items)
	}
	// The repair drops the worst value/weight items first, so item 2
	// (value 3) must survive.
	if len(items) != 1 || items[0] != 2 {
		t.Fatalf("repair kept %v, want the most valuable item", items)
	}
}

func TestKnapsackPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"empty":        func() { Knapsack{Capacity: 1}.Ising() },
		"len mismatch": func() { Knapsack{Weights: []int{1}, Values: []float64{1, 2}, Capacity: 1}.Ising() },
		"zero weight":  func() { Knapsack{Weights: []int{0}, Values: []float64{1}, Capacity: 1}.Ising() },
		"neg value":    func() { Knapsack{Weights: []int{1}, Values: []float64{-1}, Capacity: 1}.Ising() },
		"zero cap":     func() { Knapsack{Weights: []int{1}, Values: []float64{1}}.Ising() },
		"bad decode":   func() { Knapsack{Weights: []int{1}, Values: []float64{1}, Capacity: 2}.Decode(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}
