package problems

import (
	"mbrim/internal/graph"
	"mbrim/internal/ising"
)

// VertexCover is minimum vertex cover: choose the fewest vertices so
// every edge has a chosen endpoint. Lucas §4.3:
//
//	H = A Σ_{(u,v)∈E} (1−x_u)(1−x_v) + B Σ_v x_v
//
// with A > B so uncovering an edge never pays. The default is B = 1,
// A = 2.
type VertexCover struct {
	G *graph.Graph
	// A is the edge-coverage penalty; B the per-vertex cost. Zero
	// values select A = 2, B = 1.
	A, B float64
}

func (vc VertexCover) weights() (a, b float64) {
	a, b = vc.A, vc.B
	if b == 0 {
		b = 1
	}
	if a == 0 {
		a = 2 * b
	}
	return a, b
}

// Ising returns the model and offset with cost(x) = E(σ) + offset,
// where cost counts A per uncovered edge plus B per chosen vertex.
func (vc VertexCover) Ising() (m *ising.Model, offset float64) {
	a, b := vc.weights()
	n := vc.G.N()
	q := ising.NewQUBO(n)
	for _, e := range vc.G.Edges() {
		// A(1−x_u)(1−x_v) = A − A x_u − A x_v + A x_u x_v
		q.AddCoeff(e.U, e.U, -a)
		q.AddCoeff(e.V, e.V, -a)
		q.AddCoeff(e.U, e.V, a)
	}
	constant := a * float64(vc.G.M())
	for v := 0; v < n; v++ {
		q.AddCoeff(v, v, b)
	}
	m, qOffset := q.ToIsing()
	return m, qOffset + constant
}

// Decode returns the chosen vertices (σ = +1 ⇔ x = 1), repaired to a
// valid cover: any uncovered edge gets its higher-degree endpoint
// added. Repair mirrors what a production pipeline does with raw
// annealer output.
func (vc VertexCover) Decode(spins []int8) []int {
	n := vc.G.N()
	if len(spins) != n {
		panic("problems: VertexCover.Decode length mismatch")
	}
	in := make([]bool, n)
	for v, s := range spins {
		in[v] = s > 0
	}
	deg := vc.G.Degrees()
	for _, e := range vc.G.Edges() {
		if !in[e.U] && !in[e.V] {
			if deg[e.U] >= deg[e.V] {
				in[e.U] = true
			} else {
				in[e.V] = true
			}
		}
	}
	var cover []int
	for v, chosen := range in {
		if chosen {
			cover = append(cover, v)
		}
	}
	return cover
}

// IsCover reports whether vs covers every edge of the graph.
func (vc VertexCover) IsCover(vs []int) bool {
	in := make([]bool, vc.G.N())
	for _, v := range vs {
		in[v] = true
	}
	for _, e := range vc.G.Edges() {
		if !in[e.U] && !in[e.V] {
			return false
		}
	}
	return true
}

// IndependentSet is maximum independent set: choose the most vertices
// with no edge inside the choice. Lucas §4.2 (via its complement to
// vertex cover):
//
//	H = A Σ_{(u,v)∈E} x_u x_v − B Σ_v x_v,  A > B.
type IndependentSet struct {
	G *graph.Graph
	// A is the edge-conflict penalty; B the per-vertex reward. Zero
	// values select A = 2, B = 1.
	A, B float64
}

func (is IndependentSet) weights() (a, b float64) {
	a, b = is.A, is.B
	if b == 0 {
		b = 1
	}
	if a == 0 {
		a = 2 * b
	}
	return a, b
}

// Ising returns the model and offset with
// (A·conflicts − B·|set|) = E(σ) + offset.
func (is IndependentSet) Ising() (m *ising.Model, offset float64) {
	a, b := is.weights()
	n := is.G.N()
	q := ising.NewQUBO(n)
	for _, e := range is.G.Edges() {
		q.AddCoeff(e.U, e.V, a)
	}
	for v := 0; v < n; v++ {
		q.AddCoeff(v, v, -b)
	}
	return q.ToIsing()
}

// Decode returns the chosen vertices repaired to independence: while a
// conflict edge exists, the endpoint with more conflicts is dropped.
func (is IndependentSet) Decode(spins []int8) []int {
	n := is.G.N()
	if len(spins) != n {
		panic("problems: IndependentSet.Decode length mismatch")
	}
	in := make([]bool, n)
	for v, s := range spins {
		in[v] = s > 0
	}
	for {
		conflicts := make([]int, n)
		found := false
		for _, e := range is.G.Edges() {
			if in[e.U] && in[e.V] {
				conflicts[e.U]++
				conflicts[e.V]++
				found = true
			}
		}
		if !found {
			break
		}
		worst, worstC := -1, 0
		for v, c := range conflicts {
			if c > worstC {
				worst, worstC = v, c
			}
		}
		in[worst] = false
	}
	var set []int
	for v, chosen := range in {
		if chosen {
			set = append(set, v)
		}
	}
	return set
}

// IsIndependent reports whether no edge joins two chosen vertices.
func (is IndependentSet) IsIndependent(vs []int) bool {
	in := make([]bool, is.G.N())
	for _, v := range vs {
		in[v] = true
	}
	for _, e := range is.G.Edges() {
		if in[e.U] && in[e.V] {
			return false
		}
	}
	return true
}

// Clique is maximum clique, solved as maximum independent set on the
// complement graph (Lucas §4.2's standard identity).
type Clique struct {
	G *graph.Graph
	// A, B as for IndependentSet, applied on the complement.
	A, B float64
}

// complement returns the unweighted complement graph.
func (c Clique) complement() *graph.Graph {
	n := c.G.N()
	comp := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if c.G.Weight(u, v) == 0 {
				comp.AddEdge(u, v, 1)
			}
		}
	}
	return comp
}

// Ising encodes maximum clique via the complement's independent set.
func (c Clique) Ising() (m *ising.Model, offset float64) {
	return IndependentSet{G: c.complement(), A: c.A, B: c.B}.Ising()
}

// Decode returns the clique vertices, repaired for validity.
func (c Clique) Decode(spins []int8) []int {
	return IndependentSet{G: c.complement(), A: c.A, B: c.B}.Decode(spins)
}

// IsClique reports whether every pair of chosen vertices is adjacent
// in the original graph.
func (c Clique) IsClique(vs []int) bool {
	for i := 0; i < len(vs); i++ {
		for j := i + 1; j < len(vs); j++ {
			if c.G.Weight(vs[i], vs[j]) == 0 {
				return false
			}
		}
	}
	return true
}
