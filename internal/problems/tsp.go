package problems

import (
	"fmt"
	"math"

	"mbrim/internal/ising"
)

// TSP is the traveling salesman problem on a complete distance matrix.
// Lucas §7.2, one-hot in both directions: x_{v,t} means city v is
// visited at time t, with
//
//	H = A Σ_v (1−Σ_t x_{v,t})² + A Σ_t (1−Σ_v x_{v,t})²
//	  + B Σ_{u≠v} d_{uv} Σ_t x_{u,t} x_{v,t+1}
//
// (time wraps: the tour is a cycle). A must dominate B·max(d) so that
// breaking a constraint never pays. Spins are city-major:
// Index(v, t) = v·n + t.
type TSP struct {
	// Dist is the symmetric distance matrix; Dist[i][i] is ignored.
	Dist [][]float64
	// A is the constraint penalty; zero selects 2·B·max(d)+1.
	A float64
	// B is the distance weight; zero selects 1.
	B float64
}

// N returns the number of cities.
func (t TSP) N() int { return len(t.Dist) }

// Index returns the spin index of (city, time).
func (t TSP) Index(city, time int) int { return city*t.N() + time }

func (t TSP) validate() {
	requirePositive("cities", t.N())
	for i, row := range t.Dist {
		if len(row) != t.N() {
			panic(fmt.Sprintf("problems: TSP distance row %d has %d entries for %d cities", i, len(row), t.N()))
		}
	}
}

func (t TSP) weights() (a, b float64) {
	b = t.B
	if b == 0 {
		b = 1
	}
	a = t.A
	if a == 0 {
		maxD := 0.0
		for i := range t.Dist {
			for j := range t.Dist[i] {
				if i != j && t.Dist[i][j] > maxD {
					maxD = t.Dist[i][j]
				}
			}
		}
		a = 2*b*maxD + 1
	}
	return a, b
}

// Ising returns the model and offset with H(x) = E(σ) + offset; at a
// valid tour, H = B × tour length.
func (t TSP) Ising() (m *ising.Model, offset float64) {
	t.validate()
	a, b := t.weights()
	n := t.N()
	q := ising.NewQUBO(n * n)
	constant := 0.0

	// One-hot per city over times, and per time over cities.
	oneHot := func(indices []int) {
		constant += a
		for i, ii := range indices {
			q.AddCoeff(ii, ii, -a)
			for j := i + 1; j < len(indices); j++ {
				q.AddCoeff(ii, indices[j], 2*a)
			}
		}
	}
	buf := make([]int, n)
	for v := 0; v < n; v++ {
		for ti := 0; ti < n; ti++ {
			buf[ti] = t.Index(v, ti)
		}
		oneHot(buf)
	}
	for ti := 0; ti < n; ti++ {
		for v := 0; v < n; v++ {
			buf[v] = t.Index(v, ti)
		}
		oneHot(buf)
	}

	// Distance terms over consecutive time slots (cyclic).
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			d := t.Dist[u][v]
			if d == 0 {
				continue
			}
			for ti := 0; ti < n; ti++ {
				q.AddCoeff(t.Index(u, ti), t.Index(v, (ti+1)%n), b*d)
			}
		}
	}
	m, qOffset := q.ToIsing()
	return m, qOffset + constant
}

// Decode extracts a tour: for each time slot, the chosen city (repaired
// greedily — unassigned slots take the nearest unused city, duplicate
// assignments keep the first). The result is a permutation of cities.
func (t TSP) Decode(spins []int8) []int {
	n := t.N()
	if len(spins) != n*n {
		panic("problems: TSP.Decode length mismatch")
	}
	tour := make([]int, n)
	used := make([]bool, n)
	for ti := range tour {
		tour[ti] = -1
	}
	for ti := 0; ti < n; ti++ {
		for v := 0; v < n; v++ {
			if spins[t.Index(v, ti)] > 0 && !used[v] {
				tour[ti] = v
				used[v] = true
				break
			}
		}
	}
	// Repair: fill empty slots with the nearest unused city to the
	// previous slot's city (or the lowest unused for slot 0).
	for ti := 0; ti < n; ti++ {
		if tour[ti] != -1 {
			continue
		}
		bestV, bestD := -1, math.Inf(1)
		for v := 0; v < n; v++ {
			if used[v] {
				continue
			}
			d := 0.0
			if ti > 0 && tour[ti-1] >= 0 {
				d = t.Dist[tour[ti-1]][v]
			} else {
				d = float64(v)
			}
			if d < bestD {
				bestV, bestD = v, d
			}
		}
		tour[ti] = bestV
		used[bestV] = true
	}
	return tour
}

// Length returns the cyclic tour length.
func (t TSP) Length(tour []int) float64 {
	n := t.N()
	if len(tour) != n {
		panic("problems: TSP.Length length mismatch")
	}
	total := 0.0
	for i := 0; i < n; i++ {
		total += t.Dist[tour[i]][tour[(i+1)%n]]
	}
	return total
}

// ValidTour reports whether tour is a permutation of all cities.
func (t TSP) ValidTour(tour []int) bool {
	if len(tour) != t.N() {
		return false
	}
	seen := make([]bool, t.N())
	for _, v := range tour {
		if v < 0 || v >= t.N() || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}
