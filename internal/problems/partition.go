package problems

import (
	"math"

	"mbrim/internal/ising"
)

// Partition is the number-partitioning problem: split the numbers
// into two groups whose sums are as close as possible. Lucas §2.1:
// H = (Σ aᵢσᵢ)², so the ground energy is the squared imbalance of the
// best achievable split (0 for a perfect partition).
type Partition struct {
	Numbers []float64
}

// Ising returns the model whose energy is E(σ) = (Σ aᵢσᵢ)² − Σ aᵢ²;
// offset is Σ aᵢ², so imbalance² = E + offset exactly.
func (p Partition) Ising() (m *ising.Model, offset float64) {
	requirePositive("len(Numbers)", len(p.Numbers))
	n := len(p.Numbers)
	m = ising.NewModel(n)
	for i := 0; i < n; i++ {
		offset += p.Numbers[i] * p.Numbers[i]
		for j := i + 1; j < n; j++ {
			// (Σaσ)² = Σa² + 2Σ_{i<j} aᵢaⱼσᵢσⱼ; with E = −Σ_{i<j}Jσσ the
			// quadratic part needs J = −2aᵢaⱼ.
			m.SetCoupling(i, j, -2*p.Numbers[i]*p.Numbers[j])
		}
	}
	return m, offset
}

// Imbalance returns |Σ_{σ=+1} aᵢ − Σ_{σ=−1} aᵢ| for the assignment.
func (p Partition) Imbalance(spins []int8) float64 {
	if len(spins) != len(p.Numbers) {
		panic("problems: Partition.Imbalance length mismatch")
	}
	s := 0.0
	for i, a := range p.Numbers {
		s += a * float64(spins[i])
	}
	return math.Abs(s)
}

// Decode splits the numbers by spin sign and returns the two groups'
// index lists.
func (p Partition) Decode(spins []int8) (plus, minus []int) {
	if len(spins) != len(p.Numbers) {
		panic("problems: Partition.Decode length mismatch")
	}
	for i, s := range spins {
		if s > 0 {
			plus = append(plus, i)
		} else {
			minus = append(minus, i)
		}
	}
	return plus, minus
}
