package problems

import (
	"fmt"

	"mbrim/internal/ising"
)

// Knapsack is the 0/1 knapsack problem: choose items maximizing total
// value subject to total weight ≤ Capacity. Lucas §5.2 handles the
// inequality with a one-hot auxiliary register y_1..y_W ("the total
// weight is exactly w"):
//
//	H = A(1 − Σ_w y_w)² + A(Σ_w w·y_w − Σ_α w_α x_α)² − B Σ_α v_α x_α
//
// with A > B·max(v) so constraint violations never pay. Integer
// weights are required; the encoding uses Capacity auxiliary binary
// variables, so it is meant for modest capacities (the scaling cost of
// inequality constraints is the instructive part).
type Knapsack struct {
	// Weights and Values describe the items (same length, positive).
	Weights []int
	Values  []float64
	// Capacity is the weight budget (positive).
	Capacity int
	// A is the constraint penalty; zero selects 2·B·max(v)+1. B is the
	// value reward scale; zero selects 1.
	A, B float64
}

func (k Knapsack) validate() {
	if len(k.Weights) == 0 || len(k.Weights) != len(k.Values) {
		panic(fmt.Sprintf("problems: Knapsack with %d weights, %d values", len(k.Weights), len(k.Values)))
	}
	requirePositive("Capacity", k.Capacity)
	for i, w := range k.Weights {
		if w <= 0 {
			panic(fmt.Sprintf("problems: Knapsack weight %d = %d", i, w))
		}
		if k.Values[i] <= 0 {
			panic(fmt.Sprintf("problems: Knapsack value %d = %v", i, k.Values[i]))
		}
	}
}

func (k Knapsack) weights() (a, b float64) {
	b = k.B
	if b == 0 {
		b = 1
	}
	maxV := 0.0
	for _, v := range k.Values {
		if v > maxV {
			maxV = v
		}
	}
	a = k.A
	if a == 0 {
		a = 2*b*maxV + 1
	}
	return a, b
}

// Items returns the item count; Spins the total variable count
// (items + Capacity slack bits). Item α is variable α; slack bit for
// weight w (1-based) is variable Items()+w−1.
func (k Knapsack) Items() int { return len(k.Weights) }

// Spins returns the total binary-variable count of the encoding.
func (k Knapsack) Spins() int { return len(k.Weights) + k.Capacity }

// Ising returns the model and offset with H(x) = E(σ) + offset. At a
// feasible optimum, H = −B·(total value), so the achieved value is
// −(E+offset)/B.
func (k Knapsack) Ising() (m *ising.Model, offset float64) {
	k.validate()
	a, b := k.weights()
	items := k.Items()
	total := k.Spins()
	q := ising.NewQUBO(total)
	constant := 0.0

	slack := func(w int) int { return items + w - 1 } // w in 1..Capacity

	// A(1 − Σ y)²: one-hot over the slack register.
	constant += a
	for w := 1; w <= k.Capacity; w++ {
		q.AddCoeff(slack(w), slack(w), -a)
		for w2 := w + 1; w2 <= k.Capacity; w2++ {
			q.AddCoeff(slack(w), slack(w2), 2*a)
		}
	}

	// A(Σ w·y_w − Σ w_α x_α)²: expand the square. Let S = Σ c_i z_i
	// with c = +w for slacks and −w_α for items; then S² =
	// Σ c_i² z_i + 2 Σ_{i<j} c_i c_j z_i z_j.
	coeff := make([]float64, total)
	for α, w := range k.Weights {
		coeff[α] = -float64(w)
	}
	for w := 1; w <= k.Capacity; w++ {
		coeff[slack(w)] = float64(w)
	}
	for i := 0; i < total; i++ {
		q.AddCoeff(i, i, a*coeff[i]*coeff[i])
		for j := i + 1; j < total; j++ {
			if coeff[i] != 0 && coeff[j] != 0 {
				q.AddCoeff(i, j, 2*a*coeff[i]*coeff[j])
			}
		}
	}

	// −B Σ v x: the objective.
	for α, v := range k.Values {
		q.AddCoeff(α, α, -b*v)
	}

	m, qOffset := q.ToIsing()
	return m, qOffset + constant
}

// Decode returns the chosen item indices, repaired to feasibility by
// dropping the lowest value-per-weight items until the load fits.
func (k Knapsack) Decode(spins []int8) []int {
	if len(spins) != k.Spins() {
		panic("problems: Knapsack.Decode length mismatch")
	}
	chosen := make([]bool, k.Items())
	load := 0
	for α := 0; α < k.Items(); α++ {
		if spins[α] > 0 {
			chosen[α] = true
			load += k.Weights[α]
		}
	}
	for load > k.Capacity {
		worst, worstRatio := -1, 0.0
		for α, in := range chosen {
			if !in {
				continue
			}
			ratio := k.Values[α] / float64(k.Weights[α])
			if worst == -1 || ratio < worstRatio {
				worst, worstRatio = α, ratio
			}
		}
		chosen[worst] = false
		load -= k.Weights[worst]
	}
	var out []int
	for α, in := range chosen {
		if in {
			out = append(out, α)
		}
	}
	return out
}

// TotalWeight and TotalValue evaluate a selection.
func (k Knapsack) TotalWeight(items []int) int {
	w := 0
	for _, α := range items {
		w += k.Weights[α]
	}
	return w
}

// TotalValue sums the selected items' values.
func (k Knapsack) TotalValue(items []int) float64 {
	v := 0.0
	for _, α := range items {
		v += k.Values[α]
	}
	return v
}

// Feasible reports whether the selection fits the capacity.
func (k Knapsack) Feasible(items []int) bool {
	return k.TotalWeight(items) <= k.Capacity
}
