package problems

import (
	"mbrim/internal/graph"
	"mbrim/internal/ising"
)

// Coloring is graph k-coloring: assign one of Colors colors to every
// vertex so no edge is monochromatic. Lucas §6.1, one-hot encoding:
// binary variable x_{v,c} means vertex v has color c, and
//
//	H = A Σ_v (1 − Σ_c x_{v,c})² + A Σ_{(u,v)∈E} Σ_c x_{u,c} x_{v,c}
//
// Ground energy 0 ⇔ a proper coloring exists. Spins are laid out
// vertex-major: index(v, c) = v·Colors + c.
type Coloring struct {
	G      *graph.Graph
	Colors int
	// A is the penalty weight; zero selects 1 (all terms are
	// constraints, so relative weight does not matter).
	A float64
}

// Index returns the spin index of (vertex, color).
func (c Coloring) Index(v, color int) int { return v*c.Colors + color }

// Ising returns the model and offset with
// penalty(x) = E(σ) + offset ≥ 0, equality at proper colorings.
func (c Coloring) Ising() (m *ising.Model, offset float64) {
	requirePositive("Colors", c.Colors)
	a := c.A
	if a == 0 {
		a = 1
	}
	n := c.G.N()
	q := ising.NewQUBO(n * c.Colors)
	constant := 0.0
	// One-hot terms: A(1 − Σ_c x)² = A − 2A Σ x + A (Σ x)².
	for v := 0; v < n; v++ {
		constant += a
		for ci := 0; ci < c.Colors; ci++ {
			q.AddCoeff(c.Index(v, ci), c.Index(v, ci), -2*a+a) // −2A x + A x²
			for cj := ci + 1; cj < c.Colors; cj++ {
				q.AddCoeff(c.Index(v, ci), c.Index(v, cj), 2*a)
			}
		}
	}
	// Edge conflicts.
	for _, e := range c.G.Edges() {
		for ci := 0; ci < c.Colors; ci++ {
			q.AddCoeff(c.Index(e.U, ci), c.Index(e.V, ci), a)
		}
	}
	m, qOffset := q.ToIsing()
	return m, qOffset + constant
}

// Decode assigns each vertex the color of its strongest one-hot bit
// (ties and all-off vertices take the lowest available color, greedily
// avoiding conflicts with already-decoded neighbours).
func (c Coloring) Decode(spins []int8) []int {
	n := c.G.N()
	if len(spins) != n*c.Colors {
		panic("problems: Coloring.Decode length mismatch")
	}
	colors := make([]int, n)
	for v := 0; v < n; v++ {
		chosen := -1
		for ci := 0; ci < c.Colors; ci++ {
			if spins[c.Index(v, ci)] > 0 {
				if chosen == -1 {
					chosen = ci
				} else {
					// Double-hot: ambiguous, fall through to greedy.
					chosen = -1
					break
				}
			}
		}
		if chosen == -1 {
			chosen = c.greedyColor(v, colors)
		}
		colors[v] = chosen
	}
	c.repair(colors)
	return colors
}

// repair recolors conflicted vertices to a locally free color when one
// exists, iterating until no single-vertex recoloring helps. Raw
// annealer output routinely leaves a handful of conflicts; this is the
// standard post-processing pass.
func (c Coloring) repair(colors []int) {
	adj := make([][]int, c.G.N())
	for _, e := range c.G.Edges() {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	for pass := 0; pass < c.G.N(); pass++ {
		changed := false
		for v := range adj {
			counts := make([]int, c.Colors)
			for _, u := range adj[v] {
				counts[colors[u]]++
			}
			if counts[colors[v]] == 0 {
				continue
			}
			// Min-conflicts move: strictly reduce this vertex's
			// conflict count (a free color reduces it to zero).
			best, bestCount := colors[v], counts[colors[v]]
			for ci := 0; ci < c.Colors; ci++ {
				if counts[ci] < bestCount {
					best, bestCount = ci, counts[ci]
				}
			}
			if best != colors[v] {
				colors[v] = best
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// greedyColor picks the lowest color not used by v's already-colored
// lower-index neighbours.
func (c Coloring) greedyColor(v int, colors []int) int {
	used := make([]bool, c.Colors)
	for _, e := range c.G.Edges() {
		var other int
		switch {
		case e.U == v:
			other = e.V
		case e.V == v:
			other = e.U
		default:
			continue
		}
		if other < v && colors[other] < c.Colors {
			used[colors[other]] = true
		}
	}
	for ci := 0; ci < c.Colors; ci++ {
		if !used[ci] {
			return ci
		}
	}
	return 0
}

// Conflicts counts monochromatic edges under the assignment.
func (c Coloring) Conflicts(colors []int) int {
	if len(colors) != c.G.N() {
		panic("problems: Coloring.Conflicts length mismatch")
	}
	conflicts := 0
	for _, e := range c.G.Edges() {
		if colors[e.U] == colors[e.V] {
			conflicts++
		}
	}
	return conflicts
}

// Valid reports a proper coloring.
func (c Coloring) Valid(colors []int) bool { return c.Conflicts(colors) == 0 }
