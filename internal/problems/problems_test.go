package problems

import (
	"math"
	"testing"
	"testing/quick"

	"mbrim/internal/exact"
	"mbrim/internal/graph"
	"mbrim/internal/ising"
	"mbrim/internal/rng"
	"mbrim/internal/sa"
)

// --- Partition ---------------------------------------------------------

func TestPartitionEnergyIdentity(t *testing.T) {
	// imbalance² = E(σ) + offset for every assignment.
	f := func(seed uint32) bool {
		r := rng.New(uint64(seed))
		n := 2 + r.Intn(10)
		nums := make([]float64, n)
		for i := range nums {
			nums[i] = float64(r.Intn(50) + 1)
		}
		p := Partition{Numbers: nums}
		m, offset := p.Ising()
		for trial := 0; trial < 5; trial++ {
			s := ising.RandomSpins(n, r)
			imb := p.Imbalance(s)
			if math.Abs(imb*imb-(m.Energy(s)+offset)) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionExactOptimum(t *testing.T) {
	// {3,1,1,2,2,1}: perfect split 5/5 exists.
	p := Partition{Numbers: []float64{3, 1, 1, 2, 2, 1}}
	m, offset := p.Ising()
	res := exact.Solve(m)
	if got := res.Energy + offset; math.Abs(got) > 1e-9 {
		t.Fatalf("best imbalance² = %v, want 0", got)
	}
	if p.Imbalance(res.Spins) != 0 {
		t.Fatal("optimal spins do not balance")
	}
}

func TestPartitionSAFindsGoodSplit(t *testing.T) {
	r := rng.New(1)
	nums := make([]float64, 24)
	for i := range nums {
		nums[i] = float64(r.Intn(100) + 1)
	}
	p := Partition{Numbers: nums}
	m, _ := p.Ising()
	br := sa.SolveBatch(m, sa.Config{Sweeps: 400, Seed: 2}, 8)
	total := 0.0
	for _, a := range nums {
		total += a
	}
	if imb := p.Imbalance(br.Best.Spins); imb > total*0.02 {
		t.Fatalf("SA imbalance %v of total %v", imb, total)
	}
}

func TestPartitionDecode(t *testing.T) {
	p := Partition{Numbers: []float64{1, 2, 3}}
	plus, minus := p.Decode([]int8{1, -1, 1})
	if len(plus) != 2 || len(minus) != 1 || plus[0] != 0 || plus[1] != 2 || minus[0] != 1 {
		t.Fatalf("Decode = %v / %v", plus, minus)
	}
}

// --- VertexCover -------------------------------------------------------

func pathGraph(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1, 1)
	}
	return g
}

func TestVertexCoverExactOnPath(t *testing.T) {
	// P5 (5 vertices, 4 edges): minimum cover has 2 vertices {1,3}.
	vc := VertexCover{G: pathGraph(5)}
	m, offset := vc.Ising()
	res := exact.Solve(m)
	if got := res.Energy + offset; math.Abs(got-2) > 1e-9 {
		t.Fatalf("optimal cost %v, want 2 (B=1 per vertex, no violations)", got)
	}
	cover := vc.Decode(res.Spins)
	if !vc.IsCover(cover) || len(cover) != 2 {
		t.Fatalf("decoded cover %v invalid or non-minimal", cover)
	}
}

func TestVertexCoverDecodeRepairs(t *testing.T) {
	vc := VertexCover{G: pathGraph(4)}
	// Empty selection: repair must produce a valid cover.
	cover := vc.Decode([]int8{-1, -1, -1, -1})
	if !vc.IsCover(cover) {
		t.Fatalf("repaired cover %v does not cover", cover)
	}
}

func TestVertexCoverSAOnRandomGraph(t *testing.T) {
	r := rng.New(3)
	g := graph.Random(30, 0.15, r)
	vc := VertexCover{G: g}
	m, _ := vc.Ising()
	br := sa.SolveBatch(m, sa.Config{Sweeps: 300, Seed: 4}, 6)
	cover := vc.Decode(br.Best.Spins)
	if !vc.IsCover(cover) {
		t.Fatal("SA-decoded cover invalid after repair")
	}
	if len(cover) == g.N() {
		t.Fatal("cover is the whole graph; optimization did nothing")
	}
}

// --- IndependentSet / Clique -------------------------------------------

func TestIndependentSetExactOnPath(t *testing.T) {
	// P5: maximum independent set {0,2,4}, size 3.
	is := IndependentSet{G: pathGraph(5)}
	m, offset := is.Ising()
	res := exact.Solve(m)
	// Objective = A·conflicts − B·|set| = E + offset; optimum −3.
	if got := res.Energy + offset; math.Abs(got-(-3)) > 1e-9 {
		t.Fatalf("optimal objective %v, want -3", got)
	}
	set := is.Decode(res.Spins)
	if !is.IsIndependent(set) || len(set) != 3 {
		t.Fatalf("decoded set %v", set)
	}
}

func TestIndependentSetDecodeRepairs(t *testing.T) {
	is := IndependentSet{G: pathGraph(4)}
	all := []int8{1, 1, 1, 1}
	set := is.Decode(all)
	if !is.IsIndependent(set) {
		t.Fatalf("repair left conflicts: %v", set)
	}
	if len(set) == 0 {
		t.Fatal("repair dropped everything")
	}
}

func TestCliqueExact(t *testing.T) {
	// A K4 plus a pendant vertex: maximum clique is the K4.
	g := graph.New(5)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddEdge(i, j, 1)
		}
	}
	g.AddEdge(3, 4, 1)
	c := Clique{G: g}
	m, _ := c.Ising()
	res := exact.Solve(m)
	clique := c.Decode(res.Spins)
	if !c.IsClique(clique) || len(clique) != 4 {
		t.Fatalf("decoded clique %v, want the K4", clique)
	}
}

func TestCliqueIsCliqueRejects(t *testing.T) {
	g := pathGraph(3)
	c := Clique{G: g}
	if c.IsClique([]int{0, 2}) {
		t.Fatal("non-adjacent pair accepted as clique")
	}
	if !c.IsClique([]int{0, 1}) {
		t.Fatal("edge rejected as clique")
	}
}

// --- Coloring ----------------------------------------------------------

func TestColoringEnergyIdentity(t *testing.T) {
	// At a proper one-hot coloring the energy plus offset is zero; at
	// any assignment it equals the penalty count (A=1).
	g := pathGraph(4)
	c := Coloring{G: g, Colors: 2}
	m, offset := c.Ising()
	// Proper coloring 0,1,0,1 as one-hot spins.
	spins := make([]int8, 8)
	for i := range spins {
		spins[i] = -1
	}
	for v := 0; v < 4; v++ {
		spins[c.Index(v, v%2)] = 1
	}
	if got := m.Energy(spins) + offset; math.Abs(got) > 1e-9 {
		t.Fatalf("proper coloring has penalty %v, want 0", got)
	}
	// Monochromatic edge: color everything 0 → 3 conflict edges.
	for v := 0; v < 4; v++ {
		spins[c.Index(v, v%2)] = -1
		spins[c.Index(v, 0)] = 1
	}
	if got := m.Energy(spins) + offset; math.Abs(got-3) > 1e-9 {
		t.Fatalf("all-one-color penalty %v, want 3", got)
	}
}

func TestColoringExactFindsProper(t *testing.T) {
	// C5 (odd cycle) is 3-colorable but not 2-colorable.
	g := graph.New(5)
	for i := 0; i < 5; i++ {
		g.AddEdge(i, (i+1)%5, 1)
	}
	c3 := Coloring{G: g, Colors: 3}
	m3, off3 := c3.Ising()
	res3 := exact.Solve(m3)
	if got := res3.Energy + off3; math.Abs(got) > 1e-9 {
		t.Fatalf("C5 3-coloring penalty %v, want 0", got)
	}
	colors := c3.Decode(res3.Spins)
	if !c3.Valid(colors) {
		t.Fatalf("decoded coloring %v has conflicts", colors)
	}
	c2 := Coloring{G: g, Colors: 2}
	m2, off2 := c2.Ising()
	res2 := exact.Solve(m2)
	if got := res2.Energy + off2; got < 1-1e-9 {
		t.Fatalf("C5 2-coloring penalty %v, want >= 1 (odd cycle)", got)
	}
}

func TestColoringSAOnRandomGraph(t *testing.T) {
	r := rng.New(5)
	g := graph.Random(18, 0.2, r)
	c := Coloring{G: g, Colors: 4}
	m, _ := c.Ising()
	br := sa.SolveBatch(m, sa.Config{Sweeps: 400, Seed: 6}, 6)
	colors := c.Decode(br.Best.Spins)
	if conflicts := c.Conflicts(colors); conflicts > g.M()/10 {
		t.Fatalf("%d conflicts of %d edges after decode", conflicts, g.M())
	}
}

func TestColoringDecodeGreedyFallback(t *testing.T) {
	g := pathGraph(3)
	c := Coloring{G: g, Colors: 2}
	// All spins down: every vertex falls back to greedy → proper
	// coloring of a path.
	colors := c.Decode(make([]int8, 6)) // zeros are not +1
	if !c.Valid(colors) {
		t.Fatalf("greedy fallback produced conflicts: %v", colors)
	}
}

// --- SAT ---------------------------------------------------------------

func lit(v int) Literal { return Literal{Var: v} }
func neg(v int) Literal { return Literal{Var: v, Negated: true} }

func TestSATSatisfiableExact(t *testing.T) {
	// (x0 ∨ x1) ∧ (¬x0 ∨ x1) ∧ (¬x1 ∨ x2): satisfiable (x1=1, x2=1).
	s := SAT{Vars: 3, Clauses: [][]Literal{
		{lit(0), lit(1)},
		{neg(0), lit(1)},
		{neg(1), lit(2)},
	}}
	m, _ := s.Ising()
	res := exact.Solve(m)
	assign := s.Decode(res.Spins)
	if !s.Satisfied(assign) {
		t.Fatalf("optimal decode %v does not satisfy", assign)
	}
}

func TestSATUnsatisfiableDetected(t *testing.T) {
	// x0 ∧ ¬x0: no independent set of size 2.
	s := SAT{Vars: 1, Clauses: [][]Literal{{lit(0)}, {neg(0)}}}
	m, offset := s.Ising()
	res := exact.Solve(m)
	// Objective −B·|set|; best |set| = 1, so objective −1, not −2.
	if got := res.Energy + offset; math.Abs(got-(-1)) > 1e-9 {
		t.Fatalf("unsat optimum %v, want -1", got)
	}
	assign := s.Decode(res.Spins)
	if s.Satisfied(assign) {
		t.Fatal("claimed to satisfy an unsatisfiable formula")
	}
}

func TestSAT3CNFWithSA(t *testing.T) {
	// Random satisfiable 3-CNF: plant an assignment, generate clauses
	// consistent with it.
	r := rng.New(7)
	vars := 12
	planted := make([]bool, vars)
	for i := range planted {
		planted[i] = r.Bool(0.5)
	}
	var clauses [][]Literal
	for len(clauses) < 30 {
		a, b, c := r.Intn(vars), r.Intn(vars), r.Intn(vars)
		if a == b || b == c || a == c {
			continue
		}
		cl := []Literal{
			{Var: a, Negated: r.Bool(0.5)},
			{Var: b, Negated: r.Bool(0.5)},
			{Var: c, Negated: r.Bool(0.5)},
		}
		ok := false
		for _, l := range cl {
			if planted[l.Var] != l.Negated {
				ok = true
			}
		}
		if ok {
			clauses = append(clauses, cl)
		}
	}
	s := SAT{Vars: vars, Clauses: clauses}
	m, _ := s.Ising()
	br := sa.SolveBatch(m, sa.Config{Sweeps: 500, Seed: 8}, 8)
	assign := s.Decode(br.Best.Spins)
	if got := s.NumSatisfied(assign); got < len(clauses)-2 {
		t.Fatalf("SA satisfied only %d of %d clauses", got, len(clauses))
	}
}

func TestSATPanicsOnBadInput(t *testing.T) {
	for name, f := range map[string]func(){
		"no clauses":   func() { SAT{Vars: 1}.Ising() },
		"empty clause": func() { SAT{Vars: 1, Clauses: [][]Literal{{}}}.Ising() },
		"bad var":      func() { SAT{Vars: 1, Clauses: [][]Literal{{lit(3)}}}.Ising() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

// --- TSP -----------------------------------------------------------------

func squareTSP() TSP {
	// Four cities on a unit square: optimal tour length 4.
	pts := [][2]float64{{0, 0}, {1, 0}, {1, 1}, {0, 1}}
	d := make([][]float64, 4)
	for i := range d {
		d[i] = make([]float64, 4)
		for j := range d[i] {
			dx := pts[i][0] - pts[j][0]
			dy := pts[i][1] - pts[j][1]
			d[i][j] = math.Sqrt(dx*dx + dy*dy)
		}
	}
	return TSP{Dist: d}
}

func TestTSPExactSquare(t *testing.T) {
	tsp := squareTSP()
	m, offset := tsp.Ising()
	res := exact.Solve(m)
	if got := res.Energy + offset; math.Abs(got-4) > 1e-6 {
		t.Fatalf("optimal H = %v, want 4 (perimeter)", got)
	}
	tour := tsp.Decode(res.Spins)
	if !tsp.ValidTour(tour) {
		t.Fatalf("decoded tour %v invalid", tour)
	}
	if l := tsp.Length(tour); math.Abs(l-4) > 1e-6 {
		t.Fatalf("tour length %v, want 4", l)
	}
}

func TestTSPEnergyIdentityAtValidTour(t *testing.T) {
	tsp := squareTSP()
	m, offset := tsp.Ising()
	// Encode tour 0→1→2→3 as one-hot spins.
	spins := make([]int8, 16)
	for i := range spins {
		spins[i] = -1
	}
	for ti, v := range []int{0, 1, 2, 3} {
		spins[tsp.Index(v, ti)] = 1
	}
	if got := m.Energy(spins) + offset; math.Abs(got-4) > 1e-6 {
		t.Fatalf("valid tour H = %v, want 4", got)
	}
}

func TestTSPDecodeRepairs(t *testing.T) {
	tsp := squareTSP()
	// All spins down: full repair path.
	tour := tsp.Decode(make([]int8, 16))
	if !tsp.ValidTour(tour) {
		t.Fatalf("repaired tour %v invalid", tour)
	}
	// Duplicate assignment: city 0 claims two slots.
	spins := make([]int8, 16)
	for i := range spins {
		spins[i] = -1
	}
	spins[tsp.Index(0, 0)] = 1
	spins[tsp.Index(0, 1)] = 1
	tour = tsp.Decode(spins)
	if !tsp.ValidTour(tour) {
		t.Fatalf("duplicate-repaired tour %v invalid", tour)
	}
}

func TestTSPSAFindsShortTour(t *testing.T) {
	// Six cities on a hexagon: optimum is the perimeter (6 edges of
	// unit side). SA should get within 20%.
	n := 6
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			ai := 2 * math.Pi * float64(i) / float64(n)
			aj := 2 * math.Pi * float64(j) / float64(n)
			dx := math.Cos(ai) - math.Cos(aj)
			dy := math.Sin(ai) - math.Sin(aj)
			d[i][j] = math.Sqrt(dx*dx + dy*dy)
		}
	}
	tsp := TSP{Dist: d}
	m, _ := tsp.Ising()
	br := sa.SolveBatch(m, sa.Config{Sweeps: 800, Seed: 9}, 10)
	tour := tsp.Decode(br.Best.Spins)
	if !tsp.ValidTour(tour) {
		t.Fatalf("tour %v invalid", tour)
	}
	perimeter := 6.0 // hexagon side = 1 at unit radius... side = 2 sin(π/6) = 1
	if l := tsp.Length(tour); l > perimeter*1.2 {
		t.Fatalf("tour length %v, perimeter %v", l, perimeter)
	}
}

func TestTSPPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"empty":      func() { TSP{}.Ising() },
		"ragged":     func() { TSP{Dist: [][]float64{{0, 1}, {1}}}.Ising() },
		"bad decode": func() { squareTSP().Decode(make([]int8, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}
