// Package tabu implements the tabu-search local solver that D-Wave's
// qbsolv tool (Algorithm 1 in the paper's appendix) uses for its
// initial estimate and its per-pass polish. It is a standard
// single-flip tabu search over Ising states: each iteration flips the
// best admissible spin, recently flipped spins are tabu for a fixed
// tenure, and a tabu flip is admitted anyway if it would beat the best
// energy seen (the aspiration criterion).
package tabu

import (
	"context"
	"fmt"
	"time"

	"mbrim/internal/ising"
	"mbrim/internal/rng"
)

// Config parameterizes a tabu search run.
type Config struct {
	// MaxIters bounds the total number of flips. Must be >= 1.
	MaxIters int
	// Patience stops the search after this many iterations without
	// improving the best energy. Zero defaults to 10·n.
	Patience int
	// Tenure is how many iterations a flipped spin stays tabu. Zero
	// defaults to n/10 + 1.
	Tenure int
	// Seed drives tie-breaking and the random start.
	Seed uint64
	// Initial optionally fixes the starting state (copied).
	Initial []int8
}

// Result is the outcome of a tabu search.
type Result struct {
	Spins  []int8 // best state found
	Energy float64
	Iters  int
	Wall   time.Duration
}

// Solve runs tabu search on the model and returns the best state
// encountered.
func Solve(m *ising.Model, cfg Config) *Result {
	res, _ := SolveCtx(context.Background(), m, cfg)
	return res
}

// SolveCtx is Solve with cancellation: the search stops at the next
// iteration boundary and returns the best state found so far alongside
// ctx.Err(). The result is always non-nil and internally consistent.
func SolveCtx(ctx context.Context, m *ising.Model, cfg Config) (*Result, error) {
	if cfg.MaxIters < 1 {
		panic(fmt.Sprintf("tabu: MaxIters=%d", cfg.MaxIters))
	}
	if ctx == nil {
		ctx = context.Background()
	}
	n := m.N()
	tenure := cfg.Tenure
	if tenure == 0 {
		tenure = n/10 + 1
	}
	patience := cfg.Patience
	if patience == 0 {
		patience = 10 * n
	}
	r := rng.New(cfg.Seed)
	spins := cfg.Initial
	if spins == nil {
		spins = ising.RandomSpins(n, r)
	} else {
		if len(spins) != n {
			panic("tabu: Initial length mismatch")
		}
		spins = ising.CopySpins(spins)
	}
	fields := m.LocalFields(spins, nil)
	energy := m.EnergyFromFields(spins, fields)

	best := ising.CopySpins(spins)
	bestEnergy := energy
	tabuUntil := make([]int, n)
	sinceImprove := 0

	start := time.Now()
	done := ctx.Done()
	var runErr error
	iter := 0
	for ; iter < cfg.MaxIters && sinceImprove < patience; iter++ {
		select {
		case <-done:
			runErr = ctx.Err()
		default:
		}
		if runErr != nil {
			break
		}
		// Pick the admissible flip with the lowest resulting energy;
		// break ties randomly so the search does not cycle on plateaus.
		bestK := -1
		bestDelta := 0.0
		ties := 0
		for k := 0; k < n; k++ {
			delta := m.FlipDelta(spins, fields, k)
			admissible := iter >= tabuUntil[k] || energy+delta < bestEnergy
			if !admissible {
				continue
			}
			switch {
			case bestK == -1 || delta < bestDelta:
				bestK, bestDelta, ties = k, delta, 1
			case delta == bestDelta:
				ties++
				if r.Intn(ties) == 0 {
					bestK = k
				}
			}
		}
		if bestK == -1 {
			// Everything tabu and nothing aspirates: release the oldest
			// tabu entry by flipping a random spin.
			bestK = r.Intn(n)
			bestDelta = m.FlipDelta(spins, fields, bestK)
		}
		m.ApplyFlip(spins, fields, bestK)
		energy += bestDelta
		tabuUntil[bestK] = iter + tenure + 1
		if energy < bestEnergy {
			bestEnergy = energy
			copy(best, spins)
			sinceImprove = 0
		} else {
			sinceImprove++
		}
	}
	return &Result{
		Spins:  best,
		Energy: bestEnergy,
		Iters:  iter,
		Wall:   time.Since(start),
	}, runErr
}
