package tabu

import (
	"math"
	"testing"

	"mbrim/internal/graph"
	"mbrim/internal/ising"
	"mbrim/internal/rng"
)

func ferromagnet(n int) *ising.Model {
	m := ising.NewModel(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.SetCoupling(i, j, 1)
		}
	}
	return m
}

func TestFindsFerromagnetGround(t *testing.T) {
	n := 20
	m := ferromagnet(n)
	res := Solve(m, Config{MaxIters: 2000, Seed: 1})
	want := -float64(n*(n-1)) / 2
	if res.Energy != want {
		t.Fatalf("energy %v, want %v", res.Energy, want)
	}
}

func TestEnergyMatchesSpins(t *testing.T) {
	r := rng.New(2)
	g := graph.Complete(30, r)
	m := g.ToIsing()
	res := Solve(m, Config{MaxIters: 500, Seed: 3})
	if d := math.Abs(res.Energy - m.Energy(res.Spins)); d > 1e-6 {
		t.Fatalf("reported energy off by %v", d)
	}
}

func TestDeterministic(t *testing.T) {
	r := rng.New(4)
	g := graph.Complete(25, r)
	m := g.ToIsing()
	a := Solve(m, Config{MaxIters: 300, Seed: 7})
	b := Solve(m, Config{MaxIters: 300, Seed: 7})
	if a.Energy != b.Energy || ising.HammingDistance(a.Spins, b.Spins) != 0 {
		t.Fatal("same seed produced different runs")
	}
}

func TestBeatsRandomStart(t *testing.T) {
	r := rng.New(5)
	g := graph.Complete(50, r)
	m := g.ToIsing()
	init := ising.RandomSpins(50, r)
	startEnergy := m.Energy(init)
	res := Solve(m, Config{MaxIters: 1000, Seed: 6, Initial: init})
	if res.Energy >= startEnergy {
		t.Fatalf("tabu did not improve: %v -> %v", startEnergy, res.Energy)
	}
}

func TestEscapesLocalMinimum(t *testing.T) {
	// A frustrated 4-cycle with one strong and three weak edges has
	// local minima; tabu's forced moves must still reach the optimum
	// (found exhaustively).
	m := ising.NewModel(4)
	m.SetCoupling(0, 1, 2)
	m.SetCoupling(1, 2, -1)
	m.SetCoupling(2, 3, -1)
	m.SetCoupling(3, 0, -1)
	bestE := math.Inf(1)
	for mask := 0; mask < 16; mask++ {
		s := make([]int8, 4)
		for i := range s {
			if mask&(1<<i) != 0 {
				s[i] = 1
			} else {
				s[i] = -1
			}
		}
		if e := m.Energy(s); e < bestE {
			bestE = e
		}
	}
	res := Solve(m, Config{MaxIters: 500, Seed: 8})
	if res.Energy != bestE {
		t.Fatalf("stuck at %v, optimum is %v", res.Energy, bestE)
	}
}

func TestPatienceStopsEarly(t *testing.T) {
	m := ferromagnet(10)
	res := Solve(m, Config{MaxIters: 100000, Patience: 20, Seed: 9})
	if res.Iters >= 100000 {
		t.Fatal("patience did not stop the search")
	}
}

func TestInitialNotMutated(t *testing.T) {
	m := ferromagnet(8)
	init := ising.RandomSpins(8, rng.New(10))
	keep := ising.CopySpins(init)
	Solve(m, Config{MaxIters: 100, Seed: 11, Initial: init})
	if ising.HammingDistance(init, keep) != 0 {
		t.Fatal("Solve mutated the caller's Initial")
	}
}

func TestPanicsOnBadConfig(t *testing.T) {
	m := ferromagnet(4)
	for name, f := range map[string]func(){
		"zero iters":  func() { Solve(m, Config{MaxIters: 0}) },
		"bad initial": func() { Solve(m, Config{MaxIters: 1, Initial: make([]int8, 2)}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestBestNeverWorseThanVisited(t *testing.T) {
	// Returned energy is the best over the trajectory, so rerunning
	// with more iterations can only improve or tie.
	r := rng.New(12)
	g := graph.Complete(40, r)
	m := g.ToIsing()
	short := Solve(m, Config{MaxIters: 50, Patience: 1 << 30, Seed: 13})
	long := Solve(m, Config{MaxIters: 2000, Patience: 1 << 30, Seed: 13})
	if long.Energy > short.Energy {
		t.Fatalf("longer run worse: %v vs %v", long.Energy, short.Energy)
	}
}
