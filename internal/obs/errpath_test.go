package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestReadJSONLTruncatedLine(t *testing.T) {
	// The writer died mid-record: the final line is cut off. The
	// readable prefix must still come back alongside the error.
	in := `{"kind":"run_start","label":"sa","seed":7}
{"kind":"chip_step","epoch":3,"count":11}
{"kind":"epoch_sync","ep`
	events, err := ReadJSONL(strings.NewReader(in))
	if err == nil {
		t.Fatal("truncated trace parsed without error")
	}
	if len(events) != 2 {
		t.Fatalf("recovered %d events, want 2", len(events))
	}
	if events[0].Kind != RunStart || events[0].Seed != 7 {
		t.Fatalf("events[0] = %+v", events[0])
	}
	if events[1].Kind != ChipStep || events[1].Count != 11 {
		t.Fatalf("events[1] = %+v", events[1])
	}
}

func TestReadJSONLInvalidMidStream(t *testing.T) {
	in := `{"kind":"run_start","label":"sa"}
this is not json
{"kind":"run_end","value":-12}
`
	events, err := ReadJSONL(strings.NewReader(in))
	if err == nil {
		t.Fatal("corrupt mid-stream line parsed without error")
	}
	if len(events) != 1 || events[0].Kind != RunStart {
		t.Fatalf("recovered %+v, want the single leading event", events)
	}
}

func TestReadJSONLWrongTypes(t *testing.T) {
	// Structurally valid JSON with mismatched field types must error,
	// not silently zero the fields.
	in := `{"kind":"chip_step","epoch":"three"}`
	if _, err := ReadJSONL(strings.NewReader(in)); err == nil {
		t.Fatal("type-mismatched record parsed without error")
	}
}

func TestReadJSONLEmpty(t *testing.T) {
	events, err := ReadJSONL(strings.NewReader(""))
	if err != nil {
		t.Fatalf("empty trace: %v", err)
	}
	if len(events) != 0 {
		t.Fatalf("empty trace produced %d events", len(events))
	}
}

// TestSnapshotDuringObserve hammers Snapshot and the Prometheus encoder
// against live instrument traffic; run with -race it pins that scrapes
// never tear a moving registry.
func TestSnapshotDuringObserve(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r.Counter("core.solves").Inc()
				r.CounterWith("core.solves", Labels{"engine": "sa"}).Inc()
				r.Gauge("runs.active").Add(1)
				r.HistogramWith("core.solve_wall_ns", Labels{"engine": "sa"}).
					Observe(float64(i%1000) + 0.5)
			}
		}(g)
	}
	for i := 0; i < 50; i++ {
		sn := r.Snapshot()
		hs := sn.Histograms[`core.solve_wall_ns{engine="sa"}`]
		var bucketed int64
		for _, b := range hs.Buckets {
			bucketed += b.Count
		}
		// Buckets are incremented after count, so a snapshot can see at
		// most Count bucketed observations.
		if bucketed > hs.Count {
			t.Fatalf("snapshot tore: %d bucketed > count %d", bucketed, hs.Count)
		}
		if err := r.WriteProm(&discard{}); err != nil {
			t.Fatalf("WriteProm under load: %v", err)
		}
	}
	close(stop)
	wg.Wait()
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
