package obs

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestCheckGoroutineLeaksPasses(t *testing.T) {
	// Generous baseline: whatever is running now is, by definition, not
	// a leak introduced by this test.
	if err := CheckGoroutineLeaks(runtime.NumGoroutine()+2, time.Second); err != nil {
		t.Fatalf("unexpected leak report: %v", err)
	}
}

func TestCheckGoroutineLeaksDetects(t *testing.T) {
	stop := make(chan struct{})
	defer close(stop)
	go func() { <-stop }() // deliberate straggler

	err := CheckGoroutineLeaks(1, 50*time.Millisecond)
	if err == nil {
		t.Fatal("expected a leak error with an impossible baseline of 1")
	}
	if !strings.Contains(err.Error(), "goroutine leak") {
		t.Fatalf("error missing marker: %v", err)
	}
	if !strings.Contains(err.Error(), "goroutine ") {
		t.Fatalf("error missing stack dump: %v", err)
	}
}

func TestCheckGoroutineLeaksWaitsForSettle(t *testing.T) {
	base := runtime.NumGoroutine()
	done := make(chan struct{})
	go func() {
		time.Sleep(60 * time.Millisecond)
		close(done)
	}()
	// The helper should outwait the short-lived goroutine.
	if err := CheckGoroutineLeaks(base, 2*time.Second); err != nil {
		t.Fatalf("helper did not wait for settle: %v", err)
	}
	<-done
}
