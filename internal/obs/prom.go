package obs

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// This file implements the Prometheus text exposition format
// (version 0.0.4) over the Registry: the standard scrape surface a
// fleet operator points Prometheus at. The encoder is stdlib-only and
// deterministic — families alphabetical, series sorted by label set —
// so expositions diff cleanly and tests can pin exact output.
//
// Mapping:
//
//   - Counter  → `# TYPE name counter`, one sample per series.
//   - Gauge    → `# TYPE name gauge`, one sample per series.
//   - Histogram→ `# TYPE name histogram` with cumulative
//     `name_bucket{le="..."}` samples over the populated power-of-two
//     boundaries, a closing `le="+Inf"` bucket, and `name_sum` /
//     `name_count` samples.
//
// Instrument names in this repository are dotted (multichip.flips);
// sanitization rewrites every character outside [a-zA-Z0-9_:] to `_`
// and prefixes a `_` when the name would start with a digit. If two
// instrument kinds collide on one sanitized name, the later kind gets
// a disambiguating `_gauge` / `_histogram` suffix rather than emitting
// an invalid duplicate family.

// promContentType is the Content-Type of the text exposition format.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// sanitizeMetricName rewrites s into a valid Prometheus metric name.
func sanitizeMetricName(s string) string {
	if s == "" {
		return "_"
	}
	var b strings.Builder
	b.Grow(len(s))
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteRune(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// sanitizeLabelName rewrites s into a valid Prometheus label name
// (colons are not allowed in label names).
func sanitizeLabelName(s string) string {
	if s == "" {
		return "_"
	}
	var b strings.Builder
	b.Grow(len(s))
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			b.WriteRune(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabelValue escapes a label value per the exposition format:
// backslash, double quote and newline.
func escapeLabelValue(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeHelp escapes # HELP text: backslash and newline.
func escapeHelp(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// promFloat formats a sample value. Prometheus accepts Go's shortest
// 'g' representation; infinities spell +Inf/-Inf.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promSeries is one exposition-ready series: sanitized label text
// (without braces) plus the instrument it reads from.
type promSeries struct {
	labels []labelPair // sanitized names, raw values
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// labelText renders the series' labels plus any extras (the histogram
// `le`), returning "" for an empty set and `{k="v",...}` otherwise.
func labelText(pairs []labelPair, extra ...labelPair) string {
	all := make([]labelPair, 0, len(pairs)+len(extra))
	all = append(all, pairs...)
	all = append(all, extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// promFamily is one metric family: every series sharing a sanitized
// name and instrument kind.
type promFamily struct {
	name   string // sanitized
	raw    string // original instrument name, for help lookup
	kind   string // "counter" | "gauge" | "histogram"
	series []promSeries
}

// sortSeries orders a family's series by label text so output is
// deterministic.
func (f *promFamily) sortSeries() {
	sort.Slice(f.series, func(a, b int) bool {
		return labelText(f.series[a].labels) < labelText(f.series[b].labels)
	})
}

// sanitizePairs sanitizes label names, preserving value text.
func sanitizePairs(pairs []labelPair) []labelPair {
	if len(pairs) == 0 {
		return nil
	}
	out := make([]labelPair, len(pairs))
	for i, p := range pairs {
		out[i] = labelPair{Key: sanitizeLabelName(p.Key), Value: p.Value}
	}
	return out
}

// families assembles the exposition families under the registry lock:
// instruments grouped by sanitized name, cross-kind collisions
// disambiguated, series sorted. Values are read later (atomically), so
// holding the lock here only pins the instrument set, not the counts.
func (r *Registry) families() []promFamily {
	r.mu.Lock()
	defer r.mu.Unlock()
	byName := map[string]*promFamily{}
	order := []string{}
	add := func(key, kind string, s promSeries) {
		meta, ok := r.series[key]
		if !ok {
			meta = seriesMeta{name: key}
		}
		name := sanitizeMetricName(meta.name)
		// A family is one (name, kind); a second kind on the same name
		// gets a suffix so the exposition never repeats a TYPE line.
		f, ok := byName[name]
		if ok && f.kind != kind {
			name = name + "_" + kind
			f, ok = byName[name]
		}
		if !ok || f.kind != kind {
			f = &promFamily{name: name, raw: meta.name, kind: kind}
			byName[name] = f
			order = append(order, name)
		}
		s.labels = sanitizePairs(meta.labels)
		f.series = append(f.series, s)
	}
	for key, c := range r.counters {
		add(key, "counter", promSeries{c: c})
	}
	if _, taken := r.counters[DroppedNaNName]; !taken && r.droppedNaN.Value() > 0 {
		add(DroppedNaNName, "counter", promSeries{c: &r.droppedNaN})
	}
	for key, g := range r.gauges {
		add(key, "gauge", promSeries{g: g})
	}
	for key, h := range r.hists {
		add(key, "histogram", promSeries{h: h})
	}
	sort.Strings(order)
	out := make([]promFamily, 0, len(order))
	for _, name := range order {
		f := byName[name]
		f.sortSeries()
		if help, ok := r.help[f.raw]; ok {
			f.raw = help
		} else {
			f.raw = "mbrim instrument " + f.raw
		}
		out = append(out, *f)
	}
	return out
}

// WriteProm writes the registry in the Prometheus text exposition
// format (version 0.0.4): a `# HELP` and `# TYPE` header per family,
// then one sample line per series — with `_bucket`/`_sum`/`_count`
// expansion for histograms. Output is deterministic: families
// alphabetical, series sorted by label set.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	var b bytes.Buffer
	for _, f := range r.families() {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.raw))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.series {
			switch f.kind {
			case "counter":
				fmt.Fprintf(&b, "%s%s %d\n", f.name, labelText(s.labels), s.c.Value())
			case "gauge":
				fmt.Fprintf(&b, "%s%s %s\n", f.name, labelText(s.labels), promFloat(s.g.Value()))
			case "histogram":
				writePromHistogram(&b, f.name, s)
			}
		}
	}
	_, err := w.Write(b.Bytes())
	return err
}

// writePromHistogram expands one histogram series into cumulative
// _bucket samples plus _sum and _count. Buckets and count are read
// count-first so a concurrent Observe can never make the +Inf bucket
// smaller than an inner one: an observation seen in a bucket but not
// in count would break cumulativity, the reverse is a benign
// undercount of the tail.
func writePromHistogram(b *bytes.Buffer, name string, s promSeries) {
	h := s.h
	total := h.Count()
	sum := h.Sum()
	var cum int64
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		cum += n
		if cum > total {
			// A sample landed in its bucket between the Count() read and
			// this one; clamp so the exposition stays cumulative.
			cum = total
		}
		le := promFloat(math.Exp2(float64(i + histMinExp)))
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, labelText(s.labels, labelPair{Key: "le", Value: le}), cum)
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, labelText(s.labels, labelPair{Key: "le", Value: "+Inf"}), total)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, labelText(s.labels), promFloat(sum))
	fmt.Fprintf(b, "%s_count%s %d\n", name, labelText(s.labels), total)
}

// PromHandler returns an http.Handler serving the Prometheus text
// exposition — the GET /metrics endpoint of the operations plane.
func (r *Registry) PromHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		var buf bytes.Buffer
		if err := r.WriteProm(&buf); err != nil {
			http.Error(w, "obs: encoding exposition: "+err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", promContentType)
		w.Header().Set("Cache-Control", "no-store")
		_, _ = w.Write(buf.Bytes())
	})
}
