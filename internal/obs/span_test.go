package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestSpanNestingAndIDs(t *testing.T) {
	r := NewRing(64)
	sp := NewSpanner(r)
	root := sp.Start("solve", Span{}, -1, 0)
	epoch := sp.Start("epoch", root, -1, 0)
	cstep := sp.Complete("chip_step", epoch, 2, 0, 3.3, 12345, &Event{Count: 7})
	epoch.End(3.3, nil)
	root.End(3.3, &Event{StallNS: 1.5})

	evs := r.Events()
	if len(evs) != 6 {
		t.Fatalf("got %d events, want 6", len(evs))
	}
	id := cstep.ID()
	if root.ID() != 1 || epoch.ID() != 2 || id != 3 {
		t.Fatalf("IDs = %d,%d,%d; want 1,2,3", root.ID(), epoch.ID(), id)
	}
	// The closed handle parents further intervals but cannot re-close.
	cstep.End(99, nil)
	if got := len(r.Events()); got != 6 {
		t.Fatalf("End on a Complete handle emitted (%d events)", got)
	}
	// solve start, epoch start, chip start+end, epoch end, solve end.
	wantKinds := []Kind{SpanStart, SpanStart, SpanStart, SpanEnd, SpanEnd, SpanEnd}
	for i, k := range wantKinds {
		if evs[i].Kind != k {
			t.Fatalf("event %d kind %q, want %q", i, evs[i].Kind, k)
		}
	}
	cs := evs[2]
	if cs.Label != "chip_step" || cs.Parent != epoch.ID() || cs.Chip != 2 || cs.Peer != 3 {
		t.Fatalf("chip_step start wrong: %+v", cs)
	}
	ce := evs[3]
	if ce.Span != id || ce.Value != 3.3 || ce.WallDurNS != 12345 || ce.Count != 7 {
		t.Fatalf("chip_step end wrong: %+v", ce)
	}
	se := evs[5]
	if se.Span != 1 || se.Parent != 0 || se.StallNS != 1.5 || se.Value != 3.3 {
		t.Fatalf("solve end wrong: %+v", se)
	}
}

// The disabled path — a nil *Spanner — must not allocate: this is the
// contract that lets every engine instrumentation site run
// unconditionally behind a single nil check (see BENCH_diag.json).
func TestSpanDisabledZeroAlloc(t *testing.T) {
	var sp *Spanner
	extra := &Event{Count: 1}
	allocs := testing.AllocsPerRun(1000, func() {
		s := sp.Start("epoch", Span{}, -1, 1.0)
		sp.Complete("chip_step", s, 0, 1.0, 2.0, 0, nil)
		s.End(3.0, nil)
		Span{}.End(4.0, extra)
	})
	if allocs != 0 {
		t.Fatalf("disabled span path allocates %v per op, want 0", allocs)
	}
}

func TestNewSpannerNilTracer(t *testing.T) {
	if sp := NewSpanner(nil); sp != nil {
		t.Fatal("NewSpanner(nil) should return nil (disabled path)")
	}
}

func TestWriteChromeTrace(t *testing.T) {
	r := NewRing(64)
	sp := NewSpanner(r)
	root := sp.Start("solve", Span{}, -1, 0)
	ep := sp.Start("epoch", root, -1, 0)
	sp.Complete("chip_step", ep, 0, 0, 3.3, 99, nil)
	r.Emit(Event{Kind: EnergySample, ModelNS: 3.3, Value: -12})
	r.Emit(Event{Kind: PairStat, ModelNS: 3.3, Chip: 0, Peer: 2, Value: 0.25})
	r.Emit(Event{Kind: Recovery, Label: "retransmit", ModelNS: 3.3, Chip: 1, Count: 2})
	ep.End(4.0, nil)
	// root deliberately left open: the exporter must close it.

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, r.Events()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	byName := map[string]map[string]any{}
	for _, te := range doc.TraceEvents {
		byName[te["name"].(string)] = te
	}
	for _, name := range []string{"solve", "epoch", "chip_step", "energy", "recovery:retransmit"} {
		if _, ok := byName[name]; !ok {
			t.Fatalf("trace missing %q in %s", name, buf.String())
		}
	}
	if byName["chip_step"]["tid"].(float64) != 1 {
		t.Fatalf("chip_step should sit on chip track 1: %v", byName["chip_step"])
	}
	if byName["solve"]["dur"] == nil || byName["solve"]["args"].(map[string]any)["open"] != true {
		t.Fatalf("open solve span not auto-closed: %v", byName["solve"])
	}
	if !strings.Contains(buf.String(), `"stale 0←1"`) {
		t.Fatalf("pair stat counter missing from trace: %s", buf.String())
	}
}

// The exporter layout is driven solely by model time, so two exports
// of the same (wall-stripped) stream are byte-identical — the property
// behind the CI trace golden check.
func TestChromeTraceDeterministic(t *testing.T) {
	mk := func() []byte {
		r := NewRing(16)
		sp := NewSpanner(r)
		root := sp.Start("solve", Span{}, -1, 0)
		sp.Complete("epoch", root, -1, 0, 3.3, 0, nil)
		root.End(3.3, nil)
		evs := r.Events()
		for i := range evs {
			evs[i].WallNS, evs[i].WallDurNS = 0, 0
		}
		var buf bytes.Buffer
		if err := WriteChromeTrace(&buf, evs); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if a, b := mk(), mk(); !bytes.Equal(a, b) {
		t.Fatalf("exports differ:\n%s\n%s", a, b)
	}
}

func TestRingEventsSince(t *testing.T) {
	r := NewRing(4)
	for i := 1; i <= 6; i++ {
		r.Emit(Event{Kind: EnergySample, Value: float64(i)})
	}
	// Ring holds events 3..6 (ordinals), 1..2 evicted.
	evs, first := r.EventsSince(0)
	if len(evs) != 4 || first != 3 || evs[0].Value != 3 {
		t.Fatalf("EventsSince(0) = %d events, first %d", len(evs), first)
	}
	evs, first = r.EventsSince(4)
	if len(evs) != 2 || first != 5 || evs[0].Value != 5 || evs[1].Value != 6 {
		t.Fatalf("EventsSince(4) = %d events, first %d: %+v", len(evs), first, evs)
	}
	evs, first = r.EventsSince(6)
	if len(evs) != 0 || first != 7 {
		t.Fatalf("EventsSince(6) = %d events, first %d", len(evs), first)
	}
	// A seq below the retained window replays everything retained.
	evs, first = r.EventsSince(1)
	if len(evs) != 4 || first != 3 {
		t.Fatalf("EventsSince(1) = %d events, first %d", len(evs), first)
	}
}
