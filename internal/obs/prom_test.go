package obs

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// The exposition grammar, as a stock Prometheus scraper parses it.
var (
	promName    = `[a-zA-Z_:][a-zA-Z0-9_:]*`
	promLabel   = `[a-zA-Z_][a-zA-Z0-9_]*="(?:\\.|[^"\\\n])*"`
	helpRe      = regexp.MustCompile(`^# HELP (` + promName + `) (.*)$`)
	typeRe      = regexp.MustCompile(`^# TYPE (` + promName + `) (counter|gauge|histogram)$`)
	sampleRe    = regexp.MustCompile(`^(` + promName + `)(\{` + promLabel + `(?:,` + promLabel + `)*\})? (\S+)$`)
	labelTermRe = regexp.MustCompile(promLabel)
)

// promSample is one parsed exposition line.
type promSample struct {
	name   string
	labels string // brace text, "" when unlabeled
	value  float64
}

// parseProm validates text against the exposition grammar and returns
// the samples grouped by the family that declared them. Any line that
// fits neither a header nor a sample fails the test.
func parseProm(t *testing.T, text string) (types map[string]string, samples []promSample) {
	t.Helper()
	types = map[string]string{}
	helped := map[string]bool{}
	current := ""
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if m := helpRe.FindStringSubmatch(line); m != nil {
			if helped[m[1]] {
				t.Fatalf("line %d: duplicate HELP for %s", ln+1, m[1])
			}
			helped[m[1]] = true
			continue
		}
		if m := typeRe.FindStringSubmatch(line); m != nil {
			if _, dup := types[m[1]]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, m[1])
			}
			if !helped[m[1]] {
				t.Fatalf("line %d: TYPE %s without preceding HELP", ln+1, m[1])
			}
			types[m[1]] = m[2]
			current = m[1]
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: not a valid exposition line: %q", ln+1, line)
		}
		name := m[1]
		// A sample must belong to the family most recently declared:
		// the bare name, or its _bucket/_sum/_count expansion.
		if current == "" {
			t.Fatalf("line %d: sample %s before any TYPE", ln+1, name)
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if name != current && !(types[current] == "histogram" && base == current) {
			t.Fatalf("line %d: sample %s outside its family %s", ln+1, name, current)
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Fatalf("line %d: bad sample value %q: %v", ln+1, m[3], err)
		}
		samples = append(samples, promSample{name: name, labels: m[2], value: v})
	}
	return types, samples
}

func expose(t *testing.T, r *Registry) string {
	t.Helper()
	var b bytes.Buffer
	if err := r.WriteProm(&b); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	return b.String()
}

func find(samples []promSample, name, labels string) (float64, bool) {
	for _, s := range samples {
		if s.name == name && s.labels == labels {
			return s.value, true
		}
	}
	return 0, false
}

func TestPromExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("multichip.flips").Add(42)
	r.Counter("core.solves").Add(5)
	r.CounterWith("core.solves", Labels{"engine": "sa"}).Add(3)
	r.CounterWith("core.solves", Labels{"engine": "mbrim"}).Add(2)
	r.Gauge("runs.active").Set(2.5)
	r.HistogramWith("core.solve_wall_ns", Labels{"engine": "sa"}).Observe(1500)
	r.SetHelp("core.solves", "Completed solves.")

	types, samples := parseProm(t, expose(t, r))

	if got := types["multichip_flips"]; got != "counter" {
		t.Fatalf("multichip_flips type = %q, want counter", got)
	}
	if got := types["runs_active"]; got != "gauge" {
		t.Fatalf("runs_active type = %q, want gauge", got)
	}
	if got := types["core_solve_wall_ns"]; got != "histogram" {
		t.Fatalf("core_solve_wall_ns type = %q, want histogram", got)
	}
	if v, ok := find(samples, "multichip_flips", ""); !ok || v != 42 {
		t.Fatalf("multichip_flips = %v, %v", v, ok)
	}
	// The unlabeled total and the engine-labeled breakdown share one
	// family.
	if v, ok := find(samples, "core_solves", ""); !ok || v != 5 {
		t.Fatalf("core_solves = %v, %v", v, ok)
	}
	if v, ok := find(samples, "core_solves", `{engine="sa"}`); !ok || v != 3 {
		t.Fatalf(`core_solves{engine="sa"} = %v, %v`, v, ok)
	}
	if v, ok := find(samples, "core_solves", `{engine="mbrim"}`); !ok || v != 2 {
		t.Fatalf(`core_solves{engine="mbrim"} = %v, %v`, v, ok)
	}
	if v, ok := find(samples, "core_solve_wall_ns_count", `{engine="sa"}`); !ok || v != 1 {
		t.Fatalf("histogram count = %v, %v", v, ok)
	}
	if v, ok := find(samples, "core_solve_wall_ns_sum", `{engine="sa"}`); !ok || v != 1500 {
		t.Fatalf("histogram sum = %v, %v", v, ok)
	}
	if v, ok := find(samples, "core_solve_wall_ns_bucket", `{engine="sa",le="+Inf"}`); !ok || v != 1 {
		t.Fatalf("+Inf bucket = %v, %v", v, ok)
	}
}

func TestPromHistogramCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("wall")
	for _, v := range []float64{0.5, 3, 3, 1000, 1e9} {
		h.Observe(v)
	}
	_, samples := parseProm(t, expose(t, r))
	var cum float64 = -1
	var last float64
	n := 0
	for _, s := range samples {
		if s.name != "wall_bucket" {
			continue
		}
		n++
		if s.value < cum {
			t.Fatalf("bucket %s=%v below previous %v: not cumulative", s.labels, s.value, cum)
		}
		cum = s.value
		last = s.value
		if !labelTermRe.MatchString(s.labels) {
			t.Fatalf("bucket without le label: %q", s.labels)
		}
	}
	if n < 2 {
		t.Fatalf("expected multiple buckets, got %d", n)
	}
	count, _ := find(samples, "wall_count", "")
	if last != count || count != 5 {
		t.Fatalf("+Inf bucket %v != count %v (want 5)", last, count)
	}
	sum, _ := find(samples, "wall_sum", "")
	if want := 0.5 + 3 + 3 + 1000 + 1e9; sum != want {
		t.Fatalf("sum = %v, want %v", sum, want)
	}
}

func TestPromLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterWith("c", Labels{"path": "a\\b\"c\nd"}).Inc()
	text := expose(t, r)
	want := `c{path="a\\b\"c\nd"} 1`
	if !strings.Contains(text, want) {
		t.Fatalf("exposition missing escaped label line %q:\n%s", want, text)
	}
	parseProm(t, text) // must still satisfy the grammar
}

func TestPromNameSanitization(t *testing.T) {
	cases := []struct{ in, want string }{
		{"multichip.flips", "multichip_flips"},
		{"brim.chip-step/retries", "brim_chip_step_retries"},
		{"0weird", "_0weird"},
		{"", "_"},
		{"ok:colon", "ok:colon"},
	}
	for _, c := range cases {
		if got := sanitizeMetricName(c.in); got != c.want {
			t.Errorf("sanitizeMetricName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	if got := sanitizeLabelName("le:gal.label"); got != "le_gal_label" {
		t.Errorf("sanitizeLabelName = %q", got)
	}
	// A dotted label name is sanitized at exposition time.
	r := NewRegistry()
	r.CounterWith("c", Labels{"chip.id": "0"}).Inc()
	if text := expose(t, r); !strings.Contains(text, `c{chip_id="0"} 1`) {
		t.Fatalf("label name not sanitized:\n%s", text)
	}
}

func TestPromKindCollisionSuffix(t *testing.T) {
	r := NewRegistry()
	r.Counter("x.y").Inc()
	r.Gauge("x_y").Set(7) // same sanitized name, different kind
	types, samples := parseProm(t, expose(t, r))
	counterName, gaugeName := "x_y", "x_y_gauge"
	if types[counterName] == "gauge" {
		counterName, gaugeName = "x_y_counter", "x_y"
	}
	if types[counterName] != "counter" || types[gaugeName] != "gauge" {
		t.Fatalf("collision not disambiguated: %v", types)
	}
	if v, ok := find(samples, gaugeName, ""); !ok || v != 7 {
		t.Fatalf("suffixed gauge = %v, %v", v, ok)
	}
}

func TestPromDroppedNaN(t *testing.T) {
	r := NewRegistry()
	r.Gauge("g").Add(nan())
	r.Histogram("h").Observe(nan())
	r.Histogram("h").Observe(1)
	if got := r.DroppedNaN(); got != 2 {
		t.Fatalf("DroppedNaN = %d, want 2", got)
	}
	_, samples := parseProm(t, expose(t, r))
	if v, ok := find(samples, DroppedNaNName, ""); !ok || v != 2 {
		t.Fatalf("%s = %v, %v", DroppedNaNName, v, ok)
	}
	// The dropped samples never reached the instruments.
	if got := r.Gauge("g").Value(); got != 0 {
		t.Fatalf("gauge poisoned: %v", got)
	}
	if got := r.Histogram("h").Count(); got != 1 {
		t.Fatalf("histogram count = %d, want 1", got)
	}
	sn := r.Snapshot()
	if sn.Counters[DroppedNaNName] != 2 {
		t.Fatalf("snapshot %s = %d", DroppedNaNName, sn.Counters[DroppedNaNName])
	}

	// A user counter claiming the reserved name wins; the synthetic
	// series must not duplicate the family.
	r2 := NewRegistry()
	r2.Counter(DroppedNaNName).Add(9)
	r2.Gauge("g").Add(nan())
	types, samples2 := parseProm(t, expose(t, r2))
	if types[DroppedNaNName] != "counter" {
		t.Fatalf("types = %v", types)
	}
	n := 0
	for _, s := range samples2 {
		if s.name == DroppedNaNName {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("%d %s samples, want exactly 1", n, DroppedNaNName)
	}
}

func TestPromDeterministic(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 8; i++ {
		r.CounterWith("c", Labels{"chip": fmt.Sprint(i)}).Inc()
		r.GaugeWith("g", Labels{"chip": fmt.Sprint(i)}).Set(float64(i))
	}
	r.Histogram("h").Observe(3)
	if a, b := expose(t, r), expose(t, r); a != b {
		t.Fatalf("two expositions differ:\n%s\n---\n%s", a, b)
	}
}

func TestPromHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("core.solves").Inc()
	srv := httptest.NewServer(r.PromHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); got != promContentType {
		t.Fatalf("Content-Type = %q", got)
	}
	if got := resp.Header.Get("Cache-Control"); got != "no-store" {
		t.Fatalf("Cache-Control = %q", got)
	}
	var b bytes.Buffer
	if _, err := b.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "core_solves 1") {
		t.Fatalf("body missing sample:\n%s", b.String())
	}
}

func nan() float64 {
	var zero float64
	return zero / zero
}
