package obs

import (
	"sync/atomic"
	"time"
)

// Spanner turns a Tracer into a hierarchical interval recorder: Start
// opens an interval (emitting SpanStart), the returned Span's End
// closes it (emitting SpanEnd with the measured wall duration and the
// model-time duration). Interval IDs are allocated from a per-Spanner
// counter, and Parent links encode the nesting — solve → epoch → chip
// step → sync/recovery — so a trace can be reassembled into a tree or
// exported to the Chrome trace-event format (WriteChromeTrace).
//
// A nil *Spanner is the disabled path: every method is a no-op and
// allocates nothing, so instrumentation sites cost a single nil check
// (pinned by TestSpanDisabledZeroAlloc and BENCH_diag.json).
//
// # Determinism
//
// Span IDs are handed out in call order. Engines keep the event stream
// deterministic by opening and closing spans only on the orchestration
// goroutine at epoch barriers, in chip order — intervals whose wall
// time is measured inside worker goroutines are recorded with Complete
// at the next barrier instead. As everywhere in this package, WallNS
// and WallDurNS are the only nondeterministic fields.
type Spanner struct {
	tr   Tracer
	next atomic.Uint64
}

// NewSpanner builds a Spanner emitting into tr. A nil tr yields a nil
// Spanner, i.e. the disabled path.
func NewSpanner(tr Tracer) *Spanner {
	if tr == nil {
		return nil
	}
	return &Spanner{tr: tr}
}

// NewSpannerAt builds a Spanner whose interval IDs start at base+1.
// Distributed runs use it to partition the span ID space across
// processes — the coordinator hands each remote slice a disjoint base,
// so streams merged by the federation collector never collide and
// parent links resolve across process boundaries. A nil tr yields a
// nil Spanner.
func NewSpannerAt(tr Tracer, base uint64) *Spanner {
	sp := NewSpanner(tr)
	if sp != nil {
		sp.next.Store(base)
	}
	return sp
}

// RemoteSpan builds a closed handle for an interval that lives in
// another process: End on it is a no-op, only the ID matters for
// parenting. It is the import half of cross-process span propagation —
// a cluster worker wraps the coordinator's span ID from the wire so
// its local intervals record the coordinator's interval as Parent.
func RemoteSpan(id uint64) Span {
	return Span{id: id}
}

// Span is one open interval. The zero Span is a valid "no interval"
// value: its ID reads 0 and End on it is a no-op, so children of an
// absent parent simply record Parent 0 (the root).
type Span struct {
	sp        *Spanner
	id        uint64
	parent    uint64
	label     string
	chip      int
	modelNS   float64
	wallStart int64
}

// ID returns the interval's identifier (0 for the zero Span).
func (s Span) ID() uint64 { return s.id }

// StartNS returns the interval's model-time start position.
func (s Span) StartNS() float64 { return s.modelNS }

// Start opens an interval named label under parent (pass the zero Span
// for a root interval), positioned at modelNS of model time. chip
// scopes the interval to a chip track; pass -1 for system-level
// intervals (solve, epoch, sync).
func (sp *Spanner) Start(label string, parent Span, chip int, modelNS float64) Span {
	if sp == nil {
		return Span{}
	}
	id := sp.next.Add(1)
	e := Event{Kind: SpanStart, Label: label, Span: id, Parent: parent.id, ModelNS: modelNS}
	if chip >= 0 {
		e.Chip = chip
		e.Peer = chip + 1 // distinguishes "chip 0" from "system" on wire
	}
	sp.tr.Emit(e)
	return Span{sp: sp, id: id, parent: parent.id, label: label, chip: chip,
		modelNS: modelNS, wallStart: time.Now().UnixNano()}
}

// End closes the interval at model-time position modelNS, emitting
// SpanEnd with Value = the model-time duration and WallDurNS = the
// measured wall duration. extra, if non-nil, contributes work totals
// (Count, StallNS, Aux) to the close event. No-op on the zero Span.
func (s Span) End(modelNS float64, extra *Event) {
	if s.sp == nil {
		return
	}
	e := Event{Kind: SpanEnd, Label: s.label, Span: s.id, Parent: s.parent,
		ModelNS: modelNS, Value: modelNS - s.modelNS,
		WallDurNS: time.Now().UnixNano() - s.wallStart}
	if s.chip >= 0 {
		e.Chip = s.chip
		e.Peer = s.chip + 1
	}
	if extra != nil {
		e.Count, e.StallNS, e.Aux = extra.Count, extra.StallNS, extra.Aux
	}
	s.sp.tr.Emit(e)
}

// Complete records an already-measured interval as a SpanStart/SpanEnd
// pair and returns a closed handle usable as a parent for further
// Complete calls. Engines use it at epoch barriers for work whose wall
// time was measured inside a worker goroutine: the ID is allocated
// here, on the barrier goroutine, so IDs stay deterministic while
// wallDurNS carries the worker's measurement. The interval spans
// [modelNS, modelNS+modelDurNS] of model time.
func (sp *Spanner) Complete(label string, parent Span, chip int, modelNS, modelDurNS float64, wallDurNS int64, extra *Event) Span {
	if sp == nil {
		return Span{}
	}
	id := sp.next.Add(1)
	start := Event{Kind: SpanStart, Label: label, Span: id, Parent: parent.id, ModelNS: modelNS}
	end := Event{Kind: SpanEnd, Label: label, Span: id, Parent: parent.id,
		ModelNS: modelNS + modelDurNS, Value: modelDurNS, WallDurNS: wallDurNS}
	if chip >= 0 {
		start.Chip, start.Peer = chip, chip+1
		end.Chip, end.Peer = chip, chip+1
	}
	if extra != nil {
		end.Count, end.StallNS, end.Aux = extra.Count, extra.StallNS, extra.Aux
	}
	sp.tr.Emit(start)
	sp.tr.Emit(end)
	// sp is deliberately left nil in the handle: the interval is already
	// closed, so End on it must be a no-op; only the id matters for
	// parenting.
	return Span{id: id, parent: parent.id, label: label, chip: chip, modelNS: modelNS}
}
