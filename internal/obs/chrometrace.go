package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// WriteChromeTrace renders a captured event stream as a Chrome
// trace-event JSON document ({"traceEvents": [...]}) loadable by
// chrome://tracing and ui.perfetto.dev.
//
// The trace timeline is *model time*: one model nanosecond maps to one
// trace microsecond, which makes the export deterministic for a seeded
// run (wall durations ride along in each slice's args instead of
// driving the layout). Span events become complete ("X") slices —
// system-level intervals (solve, epoch, sync, fabric settle) on track
// 0 and chip-scoped intervals on one track per chip — and point events
// (faults, recoveries, kicks, pair stats) become instant ("i") events
// on their chip's track. Counter ("C") tracks chart the energy
// trajectory and per-epoch fabric stall.
//
// Spans still open at the end of the stream (e.g. a trace snapshotted
// mid-run, or truncated by a Ring eviction) are closed at the last
// model timestamp observed so the export always loads.
func WriteChromeTrace(w io.Writer, events []Event) error {
	type slice struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		TS   float64        `json:"ts"`
		Dur  *float64       `json:"dur,omitempty"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		S    string         `json:"s,omitempty"`
		Args map[string]any `json:"args,omitempty"`
	}
	var out []slice
	type open struct {
		idx  int // index into out
		tsNS float64
	}
	opened := map[uint64]open{}
	lastTS := 0.0
	tid := func(e Event) int {
		if e.Peer > 0 {
			return e.Peer // chip-scoped: track = chip+1
		}
		return 0
	}
	for _, e := range events {
		if e.ModelNS > lastTS {
			lastTS = e.ModelNS
		}
		switch e.Kind {
		case SpanStart:
			args := map[string]any{"span": e.Span}
			if e.Parent != 0 {
				args["parent"] = e.Parent
			}
			// Distributed context, present only on federated streams:
			// the shared trace ID (hex, as jq consumers compare it as a
			// string) and the emitting node.
			if e.Trace != 0 {
				args["trace"] = fmt.Sprintf("%016x", e.Trace)
			}
			if e.Origin != "" {
				args["origin"] = e.Origin
			}
			out = append(out, slice{Name: e.Label, Ph: "X", TS: e.ModelNS,
				PID: 1, TID: tid(e), Args: args})
			opened[e.Span] = open{idx: len(out) - 1, tsNS: e.ModelNS}
		case SpanEnd:
			o, ok := opened[e.Span]
			if !ok {
				continue // start evicted from the ring; drop the orphan end
			}
			delete(opened, e.Span)
			d := e.ModelNS - o.tsNS
			if d < 0 {
				d = 0
			}
			out[o.idx].Dur = &d
			if e.WallDurNS != 0 {
				out[o.idx].Args["wallDurNS"] = e.WallDurNS
			}
			if e.Count != 0 {
				out[o.idx].Args["count"] = e.Count
			}
			if e.StallNS != 0 {
				out[o.idx].Args["stallNS"] = e.StallNS
			}
		case EnergySample:
			out = append(out, slice{Name: "energy", Ph: "C", TS: e.ModelNS, PID: 1,
				Args: map[string]any{"energy": e.Value}})
		case FabricTransfer:
			out = append(out, slice{Name: "fabric", Ph: "C", TS: e.ModelNS, PID: 1,
				Args: map[string]any{"bytes": e.Value, "stallNS": e.StallNS}})
		case Fault, Recovery:
			out = append(out, slice{Name: string(e.Kind) + ":" + e.Label, Ph: "i",
				TS: e.ModelNS, PID: 1, TID: e.Chip + 1, S: "t",
				Args: map[string]any{"epoch": e.Epoch, "count": e.Count}})
		case PairStat:
			out = append(out, slice{Name: fmt.Sprintf("stale %d←%d", e.Chip, e.Peer-1),
				Ph: "C", TS: e.ModelNS, PID: 1, TID: e.Chip + 1,
				Args: map[string]any{"fraction": e.Value}})
		}
	}
	// Close any still-open spans at the last observed timestamp.
	still := make([]uint64, 0, len(opened))
	for id := range opened {
		still = append(still, id)
	}
	sort.Slice(still, func(i, j int) bool { return still[i] < still[j] })
	for _, id := range still {
		o := opened[id]
		d := lastTS - o.tsNS
		if d < 0 {
			d = 0
		}
		out[o.idx].Dur = &d
		out[o.idx].Args["open"] = true
	}

	doc := struct {
		TraceEvents []slice        `json:"traceEvents"`
		Meta        map[string]any `json:"otherData"`
	}{TraceEvents: out, Meta: map[string]any{
		"timeUnit": "1 trace us = 1 model ns",
	}}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
