package obs_test

import (
	"bytes"
	"fmt"

	"mbrim/internal/obs"
)

// A registry accumulates named instruments across runs; Snapshot gives
// a point-in-time copy suitable for assertion or JSON export.
func ExampleRegistry() {
	reg := obs.NewRegistry()
	reg.Counter("solver.flips").Add(41)
	reg.Counter("solver.flips").Inc()
	reg.Gauge("fabric.stall_ns").Set(12.5)
	reg.Histogram("epoch_ns").Observe(3)
	reg.Histogram("epoch_ns").Observe(5)

	snap := reg.Snapshot()
	fmt.Println("flips:", snap.Counters["solver.flips"])
	fmt.Println("stall:", snap.Gauges["fabric.stall_ns"])
	fmt.Println("epochs:", snap.Histograms["epoch_ns"].Count, "mean:", snap.Histograms["epoch_ns"].Mean)
	// Output:
	// flips: 42
	// stall: 12.5
	// epochs: 2 mean: 4
}

// A JSONL tracer archives the event stream one JSON object per line;
// ReadJSONL parses it back for offline analysis.
func ExampleJSONLTracer() {
	var buf bytes.Buffer
	tr := obs.NewJSONL(&buf)
	tr.Emit(obs.Event{Kind: obs.RunStart, Label: "sa", Seed: 7})
	tr.Emit(obs.Event{Kind: obs.EnergySample, Value: -128})
	tr.Emit(obs.Event{Kind: obs.RunEnd, Label: "sa", Value: -130})
	if err := tr.Flush(); err != nil {
		panic(err)
	}

	events, err := obs.ReadJSONL(&buf)
	if err != nil {
		panic(err)
	}
	for _, e := range events {
		fmt.Println(e.Kind)
	}
	// Output:
	// run_start
	// energy_sample
	// run_end
}

// Fanout drives several sinks from one stream — here an archival
// JSONL writer and a live ring buffer.
func ExampleFanout() {
	var buf bytes.Buffer
	ring := obs.NewRing(4)
	tr := obs.Fanout(obs.NewJSONL(&buf), ring)
	tr.Emit(obs.Event{Kind: obs.EpochSync, Epoch: 1, Count: 9})

	fmt.Println("ring holds:", ring.Total())
	// Output:
	// ring holds: 1
}
