package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Broadcast is a bounded fan-out sink: a Tracer that forwards every
// event to any number of dynamically attached subscribers, each behind
// its own buffered channel. It decouples a solve's hot path from
// arbitrarily slow consumers (an SSE client on a bad link, a stalled
// pipe): Emit never blocks — when a subscriber's buffer is full the
// event is dropped for that subscriber and counted, and the solve
// proceeds at full speed. Safe for concurrent use.
type Broadcast struct {
	mu      sync.Mutex
	subs    map[int]chan Event
	next    int
	buf     int
	closed  bool
	dropped atomic.Int64
	total   atomic.Int64
}

// DefaultBroadcastBuffer is the per-subscriber channel capacity used
// when NewBroadcast is given a non-positive size.
const DefaultBroadcastBuffer = 256

// NewBroadcast returns a broadcast sink whose subscribers each get a
// buffered channel of the given capacity (DefaultBroadcastBuffer when
// n <= 0).
func NewBroadcast(n int) *Broadcast {
	if n <= 0 {
		n = DefaultBroadcastBuffer
	}
	return &Broadcast{subs: map[int]chan Event{}, buf: n}
}

// Emit forwards the event to every live subscriber without blocking,
// stamping WallNS if the producer left it zero. Subscribers whose
// buffer is full lose the event; each loss increments Dropped.
func (b *Broadcast) Emit(e Event) {
	if e.WallNS == 0 {
		e.WallNS = time.Now().UnixNano()
	}
	b.total.Add(1)
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, ch := range b.subs {
		select {
		case ch <- e:
		default:
			b.dropped.Add(1)
		}
	}
}

// Subscribe attaches a new consumer and returns its event channel plus
// a cancel function. The channel is closed when the consumer cancels
// or the broadcast closes; cancel is idempotent. Subscribing to a
// closed broadcast returns an already-closed channel.
func (b *Broadcast) Subscribe() (<-chan Event, func()) {
	b.mu.Lock()
	defer b.mu.Unlock()
	ch := make(chan Event, b.buf)
	if b.closed {
		close(ch)
		return ch, func() {}
	}
	id := b.next
	b.next++
	b.subs[id] = ch
	return ch, func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		if sub, ok := b.subs[id]; ok {
			delete(b.subs, id)
			close(sub)
		}
	}
}

// Close detaches and closes every subscriber channel; the broadcast
// accepts no new subscribers afterwards. Events emitted after Close
// are discarded (but still counted in Total). Idempotent.
func (b *Broadcast) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for id, ch := range b.subs {
		delete(b.subs, id)
		close(ch)
	}
}

// Dropped returns how many (event, subscriber) deliveries were lost to
// full buffers.
func (b *Broadcast) Dropped() int64 { return b.dropped.Load() }

// Total returns how many events were emitted over the broadcast's
// lifetime.
func (b *Broadcast) Total() int64 { return b.total.Load() }

// Subscribers returns the number of currently attached consumers.
func (b *Broadcast) Subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}
