package obs

import (
	"strings"
	"testing"
)

func TestRegistryRelease(t *testing.T) {
	r := NewRegistry()
	r.CounterWith("diag.pair_disagreement", Labels{"run": "r-1", "from": "0", "to": "1"}).Inc()
	r.GaugeWith("diag.plateau", Labels{"run": "r-1"}).Set(1)
	r.GaugeWith("diag.plateau", Labels{"run": "r-2"}).Set(2)
	r.HistogramWith("diag.latency", Labels{"run": "r-1"}).Observe(3)
	r.Gauge("cluster.live_workers").Set(2)

	released := r.Release(func(name string, labels Labels) bool {
		return strings.HasPrefix(name, "diag.") && labels["run"] == "r-1"
	})
	if released != 3 {
		t.Fatalf("released %d series, want 3", released)
	}

	s := r.Snapshot()
	for key := range s.Counters {
		if strings.Contains(key, `run="r-1"`) {
			t.Fatalf("released counter %q still in snapshot", key)
		}
	}
	for key := range s.Histograms {
		if strings.Contains(key, `run="r-1"`) {
			t.Fatalf("released histogram %q still in snapshot", key)
		}
	}
	if _, ok := s.Gauges[`diag.plateau{run="r-2"}`]; !ok {
		t.Fatal("unmatched run r-2 gauge was released")
	}
	if _, ok := s.Gauges["cluster.live_workers"]; !ok {
		t.Fatal("unlabeled series was released")
	}
	if got := r.SeriesCount(); got != 2 {
		t.Fatalf("SeriesCount = %d, want 2", got)
	}

	// A handle obtained before release keeps working (detached), and
	// re-creating the series starts a fresh cell.
	g := r.GaugeWith("diag.plateau", Labels{"run": "r-1"})
	if got := g.Value(); got != 0 {
		t.Fatalf("re-created series carried over value %v", got)
	}
}

func TestRegistryReleaseNil(t *testing.T) {
	var r *Registry
	if n := r.Release(func(string, Labels) bool { return true }); n != 0 {
		t.Fatalf("nil registry released %d", n)
	}
	if n := r.SeriesCount(); n != 0 {
		t.Fatalf("nil registry SeriesCount = %d", n)
	}
}
