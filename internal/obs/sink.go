package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// JSONLTracer writes one JSON object per event to an underlying
// writer — the archival sink. Output is buffered; call Flush (or
// Close) before reading the destination. Safe for concurrent use.
type JSONLTracer struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
	c   io.Closer
}

// NewJSONL builds a JSONL sink over w. If w is an io.Closer, Close
// closes it after flushing.
func NewJSONL(w io.Writer) *JSONLTracer {
	bw := bufio.NewWriter(w)
	t := &JSONLTracer{bw: bw, enc: json.NewEncoder(bw)}
	if c, ok := w.(io.Closer); ok {
		t.c = c
	}
	return t
}

// Emit writes the event as one JSON line, stamping WallNS if the
// producer left it zero.
func (t *JSONLTracer) Emit(e Event) {
	if e.WallNS == 0 {
		e.WallNS = time.Now().UnixNano()
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	// Encode errors (e.g. a full disk) are deliberately swallowed:
	// tracing must never fail a solve.
	_ = t.enc.Encode(e)
}

// Flush drains the buffer to the underlying writer.
func (t *JSONLTracer) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.bw.Flush()
}

// Close flushes and, when the destination is an io.Closer, closes it.
func (t *JSONLTracer) Close() error {
	if err := t.Flush(); err != nil {
		return err
	}
	if t.c != nil {
		return t.c.Close()
	}
	return nil
}

// ReadJSONL parses a JSONL trace back into events — the inverse of
// JSONLTracer, for tests and offline analysis.
func ReadJSONL(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for {
		var e Event
		if err := dec.Decode(&e); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, err
		}
		out = append(out, e)
	}
}

// Ring is a fixed-capacity in-memory sink keeping the most recent
// events — live inspection without unbounded growth. Safe for
// concurrent use.
type Ring struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	total int64
}

// NewRing builds a ring holding the last n events. n must be >= 1.
func NewRing(n int) *Ring {
	if n < 1 {
		panic("obs: NewRing capacity must be >= 1")
	}
	return &Ring{buf: make([]Event, 0, n)}
}

// Emit records the event, evicting the oldest when full, stamping
// WallNS if the producer left it zero.
func (r *Ring) Emit(e Event) {
	if e.WallNS == 0 {
		e.WallNS = time.Now().UnixNano()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
		return
	}
	r.buf[r.next] = e
	r.next = (r.next + 1) % len(r.buf)
}

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	evs, _ := r.EventsSince(0)
	return evs
}

// EventsSince returns the retained events whose emission ordinal is
// strictly greater than seq, oldest first, together with the ordinal
// of the first returned event. Ordinals are 1-based and count every
// event ever emitted to the ring, so they survive eviction: after a
// consumer disconnects at ordinal K, EventsSince(K) replays exactly
// the retained events it has not seen (events older than the ring's
// capacity are gone — the returned first ordinal exposes the gap).
func (r *Ring) EventsSince(seq int64) ([]Event, int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	first := r.total - int64(len(out)) + 1
	if skip := seq - first + 1; skip > 0 {
		if skip >= int64(len(out)) {
			return nil, r.total + 1
		}
		out = out[skip:]
		first += skip
	}
	return out, first
}

// Total returns how many events were emitted over the ring's lifetime,
// including evicted ones.
func (r *Ring) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}
