package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONL(&buf)
	in := []Event{
		{Kind: RunStart, Label: "sa", Seed: 7, Count: 512, Value: 100},
		{Kind: EpochSync, Epoch: 3, ModelNS: 12.5, Count: 40, Induced: 9},
		{Kind: FabricTransfer, Epoch: 3, Value: 128, StallNS: 0.25},
		{Kind: RunEnd, Label: "sa", Value: -123.5, WallDurNS: 42},
	}
	for _, e := range in {
		tr.Emit(e)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != len(in) {
		t.Fatalf("got %d lines, want %d", got, len(in))
	}
	out, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round-trip length %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].WallNS == 0 {
			t.Errorf("event %d: WallNS not stamped", i)
		}
		out[i].WallNS = 0
		if out[i] != in[i] {
			t.Errorf("event %d round-trip mismatch:\n got %+v\nwant %+v", i, out[i], in[i])
		}
	}
}

func TestRingEvictsOldest(t *testing.T) {
	r := NewRing(3)
	for i := 1; i <= 5; i++ {
		r.Emit(Event{Kind: ChipStep, Epoch: i})
	}
	if r.Total() != 5 {
		t.Fatalf("Total=%d, want 5", r.Total())
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d events, want 3", len(evs))
	}
	for i, want := range []int{3, 4, 5} {
		if evs[i].Epoch != want {
			t.Errorf("event %d: Epoch=%d, want %d", i, evs[i].Epoch, want)
		}
	}
}

func TestFanout(t *testing.T) {
	if Fanout() != nil {
		t.Error("empty Fanout should be nil")
	}
	if Fanout(nil, nil) != nil {
		t.Error("all-nil Fanout should be nil")
	}
	a, b := NewRing(8), NewRing(8)
	single := Fanout(nil, a)
	if single != a {
		t.Error("single-sink Fanout should unwrap")
	}
	multi := Fanout(a, nil, b)
	multi.Emit(Event{Kind: EnergySample, Value: 1})
	if a.Total() != 1 || b.Total() != 1 {
		t.Errorf("fanout delivered a=%d b=%d, want 1/1", a.Total(), b.Total())
	}
}

func TestRegistryInstruments(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Add(3)
	r.Counter("x").Inc()
	if v := r.Counter("x").Value(); v != 4 {
		t.Errorf("counter=%d, want 4", v)
	}
	r.Gauge("g").Set(2.5)
	r.Gauge("g").Add(-1)
	if v := r.Gauge("g").Value(); v != 1.5 {
		t.Errorf("gauge=%v, want 1.5", v)
	}
	h := r.Histogram("h")
	for _, v := range []float64{0.5, 3, 1000} {
		h.Observe(v)
	}
	if h.Count() != 3 || h.Sum() != 1003.5 {
		t.Errorf("hist count=%d sum=%v", h.Count(), h.Sum())
	}
	snap := r.Snapshot()
	if snap.Counters["x"] != 4 || snap.Gauges["g"] != 1.5 {
		t.Errorf("snapshot mismatch: %+v", snap)
	}
	hs := snap.Histograms["h"]
	if hs.Min != 0.5 || hs.Max != 1000 || hs.Mean != 334.5 {
		t.Errorf("hist snapshot: %+v", hs)
	}
	var total int64
	for _, b := range hs.Buckets {
		total += b.Count
	}
	if total != 3 {
		t.Errorf("bucket counts sum to %d, want 3", total)
	}
}

func TestBucketIndexBounds(t *testing.T) {
	if bucketIndex(0) != 0 || bucketIndex(-5) != 0 {
		t.Error("non-positive values must land in bucket 0")
	}
	if bucketIndex(math.MaxFloat64) != histBuckets-1 {
		t.Error("huge values must land in the overflow bucket")
	}
	// Bucket i covers (2^(i-1+histMinExp), 2^(i+histMinExp)]: the upper
	// boundary is inclusive.
	for i := 0; i < histBuckets-1; i++ {
		le := math.Exp2(float64(i + histMinExp))
		if got := bucketIndex(le); got != i {
			t.Errorf("bucketIndex(%v)=%d, want %d", le, got, i)
		}
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Add(1)
	r.Gauge("g").Set(1)
	r.Histogram("h").Observe(1)
	if r.Counter("x").Value() != 0 || r.Gauge("g").Value() != 0 || r.Histogram("h").Count() != 0 {
		t.Error("nil registry instruments must read zero")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 {
		t.Error("nil registry snapshot must be empty")
	}
	Nop{}.Emit(Event{Kind: RunStart})
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h").Observe(float64(i))
			}
		}()
	}
	wg.Wait()
	if v := r.Counter("c").Value(); v != workers*per {
		t.Errorf("counter=%d, want %d", v, workers*per)
	}
	if v := r.Gauge("g").Value(); v != workers*per {
		t.Errorf("gauge=%v, want %d", v, workers*per)
	}
	if v := r.Histogram("h").Count(); v != workers*per {
		t.Errorf("hist count=%d, want %d", v, workers*per)
	}
}

func TestJSONLConcurrent(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONL(&buf)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Emit(Event{Kind: ChipStep, Chip: w, Epoch: i})
			}
		}(w)
	}
	wg.Wait()
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	evs, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("concurrent emission corrupted the stream: %v", err)
	}
	if len(evs) != 400 {
		t.Fatalf("got %d events, want 400", len(evs))
	}
}
