package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64, safe for concurrent
// use. A nil Counter is a no-op, so call sites can record
// unconditionally against an absent registry.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v.Add(d)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 cell with atomic Set/Add, safe for concurrent
// use. A nil Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
	// dropped counts NaN deltas rejected by Add; wired to the owning
	// registry's obs_dropped_nan counter (nil for a bare Gauge).
	dropped *Counter
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add atomically adds d to the gauge. A NaN delta would poison the
// cell irrecoverably, so it is dropped and counted in the registry's
// obs_dropped_nan counter instead.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	if math.IsNaN(d) {
		g.dropped.Inc()
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets is the fixed bucket count of a Histogram: power-of-two
// boundaries from 2^histMinExp up, wide enough for sub-ns stalls
// through multi-second wall times.
const (
	histBuckets = 64
	histMinExp  = -10
)

// Histogram accumulates a distribution of float64 observations into
// exponential (power-of-two) buckets, with atomic count/sum/min/max.
// Safe for concurrent use; a nil Histogram is a no-op.
type Histogram struct {
	count   atomic.Int64
	sumBits atomic.Uint64
	minBits atomic.Uint64 // stored as math.Float64bits; init +Inf
	maxBits atomic.Uint64 // init -Inf
	buckets [histBuckets]atomic.Int64
	// dropped counts NaN observations rejected by Observe; wired to
	// the owning registry's obs_dropped_nan counter.
	dropped *Counter
}

func newHistogram(dropped *Counter) *Histogram {
	h := &Histogram{dropped: dropped}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// bucketIndex maps v to its bucket: index i covers (2^(i-1+histMinExp),
// 2^(i+histMinExp)], with everything <= 2^histMinExp in bucket 0 and a
// final overflow bucket.
func bucketIndex(v float64) int {
	if v <= math.Exp2(histMinExp) {
		return 0
	}
	frac, exp := math.Frexp(v) // v = frac × 2^exp, frac ∈ [0.5, 1)
	idx := exp - histMinExp
	if frac == 0.5 {
		// Exact powers of two belong to the bucket they bound: the
		// exported boundary is a "less or equal".
		idx--
	}
	if idx < 0 {
		idx = 0
	}
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	return idx
}

// Observe records one sample. A NaN sample would poison sum, min and
// max for the histogram's whole lifetime, so it is dropped and counted
// in the registry's obs_dropped_nan counter instead.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if math.IsNaN(v) {
		h.dropped.Inc()
		return
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	for {
		old := h.minBits.Load()
		if v >= math.Float64frombits(old) || h.minBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) || h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	h.buckets[bucketIndex(v)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Labels attaches dimensions to an instrument series. The
// (name, labels) pair identifies one series: the same name with
// different label values yields independent instruments that the
// Prometheus exposition groups into one metric family. Label names
// should be prometheus-compatible ([a-zA-Z_][a-zA-Z0-9_]*); other
// characters are sanitized at exposition time.
type Labels map[string]string

// labelPair is one stored key/value; series hold them sorted by key.
type labelPair struct {
	Key, Value string
}

// seriesMeta records how a map key decomposes, so the Prometheus
// encoder can group series into families without re-parsing keys.
type seriesMeta struct {
	name   string
	labels []labelPair
}

// seriesKey builds the canonical map key for (name, labels): the bare
// name when unlabeled (backward-compatible with pre-label registries),
// else name{k="v",...} with keys sorted.
func seriesKey(name string, labels Labels) (string, seriesMeta) {
	meta := seriesMeta{name: name}
	if len(labels) == 0 {
		return name, meta
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(labels[k])
		b.WriteByte('"')
		meta.labels = append(meta.labels, labelPair{Key: k, Value: labels[k]})
	}
	b.WriteByte('}')
	return b.String(), meta
}

// Registry is a named set of counters, gauges and histograms shared
// across engines. Get-or-create accessors and all instrument
// operations are goroutine-safe, so Parallel chip goroutines can
// record concurrently. A nil *Registry is a no-op: its accessors
// return nil instruments whose methods do nothing.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	// series maps every instrument key to its (name, labels)
	// decomposition for the Prometheus encoder.
	series map[string]seriesMeta
	// help holds operator-registered # HELP text, keyed by raw
	// (unsanitized) metric name.
	help map[string]string
	// droppedNaN counts NaN samples rejected by Gauge.Add and
	// Histogram.Observe. It surfaces as obs_dropped_nan in snapshots
	// and expositions once nonzero.
	droppedNaN Counter
}

// DroppedNaNName is the counter name under which rejected NaN samples
// surface in snapshots and Prometheus expositions.
const DroppedNaNName = "obs_dropped_nan"

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		series:   map[string]seriesMeta{},
		help:     map[string]string{},
	}
}

// DroppedNaN returns how many NaN samples this registry's instruments
// rejected.
func (r *Registry) DroppedNaN() int64 {
	if r == nil {
		return 0
	}
	return r.droppedNaN.Value()
}

// SetHelp registers # HELP text for the named metric family (the raw
// instrument name, before sanitization), shown in the Prometheus
// exposition. Families without registered help get a generated line.
func (r *Registry) SetHelp(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.help[name] = help
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter { return r.CounterWith(name, nil) }

// CounterWith returns the counter series for (name, labels), creating
// it on first use. Series sharing a name but differing in labels are
// independent instruments in one exposition family.
func (r *Registry) CounterWith(name string, labels Labels) *Counter {
	if r == nil {
		return nil
	}
	key, meta := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[key]
	if !ok {
		c = &Counter{}
		r.counters[key] = c
		r.series[key] = meta
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge { return r.GaugeWith(name, nil) }

// GaugeWith returns the gauge series for (name, labels), creating it
// on first use.
func (r *Registry) GaugeWith(name string, labels Labels) *Gauge {
	if r == nil {
		return nil
	}
	key, meta := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[key]
	if !ok {
		g = &Gauge{dropped: &r.droppedNaN}
		r.gauges[key] = g
		r.series[key] = meta
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram { return r.HistogramWith(name, nil) }

// HistogramWith returns the histogram series for (name, labels),
// creating it on first use.
func (r *Registry) HistogramWith(name string, labels Labels) *Histogram {
	if r == nil {
		return nil
	}
	key, meta := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[key]
	if !ok {
		h = newHistogram(&r.droppedNaN)
		r.hists[key] = h
		r.series[key] = meta
	}
	return h
}

// Release deletes every series for which match returns true, across
// counters, gauges and histograms, and returns how many series were
// removed. Released series disappear from snapshots and Prometheus
// expositions; instrument handles already held by callers keep
// working but record into detached cells. This is the retention hook
// for per-run labeled series (diag_*, fleet_*), which would otherwise
// accumulate for the life of the daemon — a reducer releases its own
// series when its run expires from retention. Registered # HELP text
// is family-level and survives, so a family that comes back keeps its
// description.
func (r *Registry) Release(match func(name string, labels Labels) bool) int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for key, meta := range r.series {
		labels := make(Labels, len(meta.labels))
		for _, lp := range meta.labels {
			labels[lp.Key] = lp.Value
		}
		if !match(meta.name, labels) {
			continue
		}
		delete(r.counters, key)
		delete(r.gauges, key)
		delete(r.hists, key)
		delete(r.series, key)
		n++
	}
	return n
}

// SeriesCount returns how many distinct series the registry currently
// holds, across all instrument kinds — the cardinality bound that
// retention tests assert on.
func (r *Registry) SeriesCount() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.series)
}

// HistogramBucket is one populated bucket of a histogram snapshot:
// Count observations at most LE (and above the previous bucket's LE).
type HistogramBucket struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// HistogramSnapshot is a point-in-time histogram summary.
type HistogramSnapshot struct {
	Count   int64             `json:"count"`
	Sum     float64           `json:"sum"`
	Min     float64           `json:"min"`
	Max     float64           `json:"max"`
	Mean    float64           `json:"mean"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of every instrument, suitable for
// JSON export (expvar-style) or programmatic assertion. Labeled series
// appear under their full key, e.g. `core.solves{engine="sa"}`.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures the current value of every instrument. Instruments
// may keep moving while the snapshot is taken; each value is
// individually atomic.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	if n := r.droppedNaN.Value(); n > 0 {
		if _, taken := r.counters[DroppedNaNName]; !taken {
			s.Counters[DroppedNaNName] = n
		}
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// snapshot captures one histogram's current state.
func (h *Histogram) snapshot() HistogramSnapshot {
	hs := HistogramSnapshot{Count: h.Count(), Sum: h.Sum()}
	if hs.Count > 0 {
		hs.Min = math.Float64frombits(h.minBits.Load())
		hs.Max = math.Float64frombits(h.maxBits.Load())
		hs.Mean = hs.Sum / float64(hs.Count)
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			hs.Buckets = append(hs.Buckets, HistogramBucket{
				LE:    math.Exp2(float64(i + histMinExp)),
				Count: n,
			})
		}
	}
	sort.Slice(hs.Buckets, func(a, b int) bool { return hs.Buckets[a].LE < hs.Buckets[b].LE })
	return hs
}

// WriteJSON writes an indented JSON snapshot to w — the expvar-style
// export used by the CLIs' -metrics dump.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// ServeHTTP serves the JSON snapshot, so a registry can be mounted
// next to a net/http/pprof listener. The snapshot is encoded into a
// buffer first so an encode failure can still produce a 500 instead of
// a truncated 200, and responses are marked uncacheable — a scrape
// must always see live values.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		http.Error(w, "obs: encoding metrics snapshot: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Cache-Control", "no-store")
	_, _ = w.Write(buf.Bytes())
}
