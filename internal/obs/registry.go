package obs

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64, safe for concurrent
// use. A nil Counter is a no-op, so call sites can record
// unconditionally against an absent registry.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v.Add(d)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 cell with atomic Set/Add, safe for concurrent
// use. A nil Gauge is a no-op.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add atomically adds d to the gauge.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets is the fixed bucket count of a Histogram: power-of-two
// boundaries from 2^histMinExp up, wide enough for sub-ns stalls
// through multi-second wall times.
const (
	histBuckets = 64
	histMinExp  = -10
)

// Histogram accumulates a distribution of float64 observations into
// exponential (power-of-two) buckets, with atomic count/sum/min/max.
// Safe for concurrent use; a nil Histogram is a no-op.
type Histogram struct {
	count   atomic.Int64
	sumBits atomic.Uint64
	minBits atomic.Uint64 // stored as math.Float64bits; init +Inf
	maxBits atomic.Uint64 // init -Inf
	buckets [histBuckets]atomic.Int64
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// bucketIndex maps v to its bucket: index i covers (2^(i-1+histMinExp),
// 2^(i+histMinExp)], with everything <= 2^histMinExp in bucket 0 and a
// final overflow bucket.
func bucketIndex(v float64) int {
	if v <= math.Exp2(histMinExp) {
		return 0
	}
	frac, exp := math.Frexp(v) // v = frac × 2^exp, frac ∈ [0.5, 1)
	idx := exp - histMinExp
	if frac == 0.5 {
		// Exact powers of two belong to the bucket they bound: the
		// exported boundary is a "less or equal".
		idx--
	}
	if idx < 0 {
		idx = 0
	}
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	return idx
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	for {
		old := h.minBits.Load()
		if v >= math.Float64frombits(old) || h.minBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) || h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	h.buckets[bucketIndex(v)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Registry is a named set of counters, gauges and histograms shared
// across engines. Get-or-create accessors and all instrument
// operations are goroutine-safe, so Parallel chip goroutines can
// record concurrently. A nil *Registry is a no-op: its accessors
// return nil instruments whose methods do nothing.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram()
		r.hists[name] = h
	}
	return h
}

// HistogramBucket is one populated bucket of a histogram snapshot:
// Count observations at most LE (and above the previous bucket's LE).
type HistogramBucket struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// HistogramSnapshot is a point-in-time histogram summary.
type HistogramSnapshot struct {
	Count   int64             `json:"count"`
	Sum     float64           `json:"sum"`
	Min     float64           `json:"min"`
	Max     float64           `json:"max"`
	Mean    float64           `json:"mean"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of every instrument, suitable for
// JSON export (expvar-style) or programmatic assertion.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures the current value of every instrument. Instruments
// may keep moving while the snapshot is taken; each value is
// individually atomic.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{Count: h.Count(), Sum: h.Sum()}
		if hs.Count > 0 {
			hs.Min = math.Float64frombits(h.minBits.Load())
			hs.Max = math.Float64frombits(h.maxBits.Load())
			hs.Mean = hs.Sum / float64(hs.Count)
		}
		for i := range h.buckets {
			if n := h.buckets[i].Load(); n > 0 {
				hs.Buckets = append(hs.Buckets, HistogramBucket{
					LE:    math.Exp2(float64(i + histMinExp)),
					Count: n,
				})
			}
		}
		sort.Slice(hs.Buckets, func(a, b int) bool { return hs.Buckets[a].LE < hs.Buckets[b].LE })
		s.Histograms[name] = hs
	}
	return s
}

// WriteJSON writes an indented JSON snapshot to w — the expvar-style
// export used by the CLIs' -metrics dump.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// ServeHTTP serves the JSON snapshot, so a registry can be mounted
// next to a net/http/pprof listener.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = r.WriteJSON(w)
}
