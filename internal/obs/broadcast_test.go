package obs

import (
	"sync"
	"testing"
)

func TestBroadcastDeliverAndCancel(t *testing.T) {
	b := NewBroadcast(8)
	ch1, cancel1 := b.Subscribe()
	ch2, cancel2 := b.Subscribe()
	defer cancel2()
	if got := b.Subscribers(); got != 2 {
		t.Fatalf("Subscribers = %d, want 2", got)
	}

	b.Emit(Event{Kind: ChipStep, Epoch: 1})
	b.Emit(Event{Kind: EpochSync, Epoch: 1})
	for _, ch := range []<-chan Event{ch1, ch2} {
		if e := <-ch; e.Kind != ChipStep {
			t.Fatalf("first event %v", e.Kind)
		}
		if e := <-ch; e.Kind != EpochSync {
			t.Fatalf("second event %v", e.Kind)
		}
	}

	cancel1()
	cancel1() // idempotent
	if _, open := <-ch1; open {
		t.Fatal("cancelled channel still open")
	}
	b.Emit(Event{Kind: RunEnd})
	if e := <-ch2; e.Kind != RunEnd {
		t.Fatalf("live subscriber missed event: %v", e.Kind)
	}
	if got := b.Total(); got != 3 {
		t.Fatalf("Total = %d, want 3", got)
	}
	if got := b.Dropped(); got != 0 {
		t.Fatalf("Dropped = %d, want 0", got)
	}
}

func TestBroadcastBoundedDrop(t *testing.T) {
	b := NewBroadcast(2)
	ch, cancel := b.Subscribe()
	defer cancel()
	// Nobody drains: the third and later emissions must be dropped,
	// never block.
	for i := 0; i < 5; i++ {
		b.Emit(Event{Kind: ChipStep, Epoch: i})
	}
	if got := b.Dropped(); got != 3 {
		t.Fatalf("Dropped = %d, want 3", got)
	}
	if got := b.Total(); got != 5 {
		t.Fatalf("Total = %d, want 5", got)
	}
	// The buffered prefix survives in order.
	if e := <-ch; e.Epoch != 0 {
		t.Fatalf("buffered[0].Epoch = %d", e.Epoch)
	}
	if e := <-ch; e.Epoch != 1 {
		t.Fatalf("buffered[1].Epoch = %d", e.Epoch)
	}
}

func TestBroadcastClose(t *testing.T) {
	b := NewBroadcast(4)
	ch, cancel := b.Subscribe()
	b.Emit(Event{Kind: ChipStep})
	b.Close()
	b.Close() // idempotent
	// Buffered event, then closed.
	if e, open := <-ch; !open || e.Kind != ChipStep {
		t.Fatalf("buffered event lost: %v %v", e, open)
	}
	if _, open := <-ch; open {
		t.Fatal("channel not closed by Close")
	}
	cancel() // after Close: no panic

	// Late events are discarded but still counted.
	b.Emit(Event{Kind: RunEnd})
	if got := b.Total(); got != 2 {
		t.Fatalf("Total = %d, want 2", got)
	}

	// Subscribing to a closed broadcast yields a closed channel.
	ch2, cancel2 := b.Subscribe()
	if _, open := <-ch2; open {
		t.Fatal("post-Close subscription not closed")
	}
	cancel2()
	if got := b.Subscribers(); got != 0 {
		t.Fatalf("Subscribers = %d, want 0", got)
	}
}

// TestBroadcastConcurrent exercises Emit against churning subscribers
// under the race detector.
func TestBroadcastConcurrent(t *testing.T) {
	b := NewBroadcast(4)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				b.Emit(Event{Kind: ChipStep, Epoch: i})
			}
		}()
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				ch, cancel := b.Subscribe()
				select {
				case <-ch:
				case <-stop:
					cancel()
					return
				}
				cancel()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			b.Emit(Event{Kind: EpochSync})
		}
		close(stop)
	}()
	wg.Wait()
	b.Close()
	if got := b.Total(); got != 4*500+2000 {
		t.Fatalf("Total = %d, want %d", got, 4*500+2000)
	}
}
