package obs

import (
	"runtime"
	"sync"
	"testing"
)

// The federation collector in internal/cluster pages worker rings with
// EventsSince cursors across checkpoint rounds, so its edge semantics —
// wrap-around, cursors older than the ring tail, cursors at or past the
// head, and pages taken while producers keep appending — are contract,
// not implementation detail. These tests pin them.

func ringWith(t *testing.T, capacity, emitted int) *Ring {
	t.Helper()
	r := NewRing(capacity)
	for i := 1; i <= emitted; i++ {
		r.Emit(Event{Kind: EnergySample, Epoch: i})
	}
	return r
}

// checkPage asserts a page starts at ordinal wantFirst and carries the
// consecutive Epoch payloads wantFirst..wantLast (the test encodes each
// event's ordinal in Epoch).
func checkPage(t *testing.T, evs []Event, first, wantFirst, wantLast int64) {
	t.Helper()
	if first != wantFirst {
		t.Fatalf("first ordinal = %d, want %d", first, wantFirst)
	}
	if got, want := int64(len(evs)), wantLast-wantFirst+1; got != want {
		t.Fatalf("page length = %d, want %d", got, want)
	}
	for i, e := range evs {
		if int64(e.Epoch) != wantFirst+int64(i) {
			t.Fatalf("event %d has ordinal payload %d, want %d", i, e.Epoch, wantFirst+int64(i))
		}
	}
}

func TestEventsSinceBeforeWrap(t *testing.T) {
	r := ringWith(t, 8, 5) // not yet full
	evs, first := r.EventsSince(0)
	checkPage(t, evs, first, 1, 5)
	evs, first = r.EventsSince(3)
	checkPage(t, evs, first, 4, 5)
}

func TestEventsSinceWrapAround(t *testing.T) {
	// Capacity 8, 13 emitted: ordinals 1–5 evicted, 6–13 retained with
	// the buffer physically wrapped (next points mid-buffer).
	r := ringWith(t, 8, 13)
	evs, first := r.EventsSince(7)
	checkPage(t, evs, first, 8, 13)

	// A cursor exactly at the ring tail's predecessor returns the whole
	// retained window.
	evs, first = r.EventsSince(5)
	checkPage(t, evs, first, 6, 13)
}

func TestEventsSinceOlderThanTail(t *testing.T) {
	r := ringWith(t, 8, 13)
	// Ordinals 1–5 are gone. A consumer that last saw ordinal 2 gets the
	// retained window, and the returned first ordinal (6, not 3) exposes
	// the eviction gap so the consumer can count what it missed.
	evs, first := r.EventsSince(2)
	checkPage(t, evs, first, 6, 13)
	if gap := first - (2 + 1); gap != 3 {
		t.Fatalf("exposed gap = %d, want 3", gap)
	}
}

func TestEventsSinceAtAndPastHead(t *testing.T) {
	r := ringWith(t, 8, 13)
	// Caught up: nothing to return, and the sentinel first ordinal is
	// total+1 (where the next event will land).
	evs, first := r.EventsSince(13)
	if len(evs) != 0 {
		t.Fatalf("caught-up page returned %d events", len(evs))
	}
	if first != 14 {
		t.Fatalf("caught-up first = %d, want total+1 = 14", first)
	}
	// A cursor beyond the head (e.g. from a stale snapshot of another
	// ring) behaves the same rather than replaying.
	if evs, _ := r.EventsSince(99); len(evs) != 0 {
		t.Fatalf("past-head page returned %d events", len(evs))
	}
}

func TestEventsSinceEmptyRing(t *testing.T) {
	r := NewRing(4)
	evs, first := r.EventsSince(0)
	if len(evs) != 0 || first != 1 {
		t.Fatalf("empty ring page = (%d events, first %d), want (0, 1)", len(evs), first)
	}
}

// TestEventsSinceConcurrentAppend pages a ring with cursors while a
// producer keeps appending, and asserts every page is internally
// consistent: ordinals are consecutive, never before the cursor, and
// never duplicate what the consumer already saw. Run with -race this
// also pins that paging is safe during eviction.
func TestEventsSinceConcurrentAppend(t *testing.T) {
	const (
		capacity = 64
		emitted  = 4096
	)
	r := NewRing(capacity)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= emitted; i++ {
			r.Emit(Event{Kind: EnergySample, Epoch: i})
		}
	}()

	var cursor, seen, gaps int64
	for cursor < emitted { // consumer stops once it has paged past the last emit
		evs, first := r.EventsSince(cursor)
		if len(evs) == 0 {
			runtime.Gosched() // producer hasn't advanced past the cursor yet
			continue
		}
		if first <= cursor {
			t.Fatalf("page replayed ordinal %d at cursor %d", first, cursor)
		}
		if first > cursor+1 {
			gaps += first - cursor - 1
		}
		for i, e := range evs {
			if int64(e.Epoch) != first+int64(i) {
				t.Fatalf("page not consecutive: payload %d at ordinal %d", e.Epoch, first+int64(i))
			}
		}
		cursor = first + int64(len(evs)) - 1
		seen += int64(len(evs))
	}
	wg.Wait()
	if seen+gaps != emitted {
		t.Fatalf("saw %d events + %d gap, want exactly %d emitted", seen, gaps, emitted)
	}
}
