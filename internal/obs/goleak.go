package obs

import (
	"fmt"
	"runtime"
	"time"
)

// CheckGoroutineLeaks verifies the process has settled back to at most
// baseline goroutines, polling until timeout so goroutines still
// winding down after a test (ticker drains, closing HTTP conns, run
// supervisors) get a grace period. On failure it returns an error
// carrying a full stack dump so the leaked goroutines are identifiable
// from CI logs alone.
//
// Intended for TestMain:
//
//	code := m.Run()
//	if code == 0 {
//		if err := obs.CheckGoroutineLeaks(base, 5*time.Second); err != nil {
//			fmt.Fprintln(os.Stderr, err)
//			code = 1
//		}
//	}
//	os.Exit(code)
func CheckGoroutineLeaks(baseline int, timeout time.Duration) error {
	if baseline < 1 {
		baseline = 1
	}
	deadline := time.Now().Add(timeout)
	n := runtime.NumGoroutine()
	for n > baseline {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			return fmt.Errorf("obs: goroutine leak: %d goroutines alive after %v (baseline %d)\n%s",
				n, timeout, baseline, buf)
		}
		time.Sleep(10 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return nil
}
