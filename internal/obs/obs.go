// Package obs is the repository's observability layer: a lightweight,
// zero-dependency (stdlib-only) tracing and metrics surface threaded
// through every solver engine.
//
// # Event taxonomy
//
// A run emits a stream of typed, timestamped Events. The taxonomy
// mirrors the quantities the paper's evaluation is built from:
//
//   - RunStart / RunEnd bracket one solve: engine, seed, problem size,
//     then the uniform ledger (best energy, model ns vs wall ns, flip
//     totals). Emitted by the core orchestration layer.
//   - ChipStep: one chip finished integrating one epoch — per-epoch
//     flip and induced-flip counts (the time axis of Figs 13/15).
//   - InducedKick: the annealing kicks a chip applied during an epoch
//     (Sec 5.4.2's coordinated-flip accounting).
//   - EpochSync: a boundary belief synchronization — the bit changes
//     actually communicated over the fabric, and the induced subset.
//   - FabricTransfer: the fabric's epoch settlement — bytes moved and
//     congestion stall (the Fig 12 time-to-solution components).
//   - Probe: an ignorance / energy-surprise measurement (Fig 9).
//   - EnergySample: an (elapsed time, energy) trajectory sample.
//   - Fault: an injected fabric or chip fault (Label discriminates:
//     "drop", "corrupt", "delay", "stall", "chip-loss").
//   - Recovery: recovery-policy activity (Label discriminates:
//     "retransmit", "resync", "repartition"), with the traffic and
//     stall it cost.
//   - Numerical: integrator-guardrail activity — halved-step retries
//     spent during an epoch, or the divergence abort itself (Label
//     discriminates: "step-retry", "divergence").
//   - SpanStart / SpanEnd: hierarchical interval markers (solve →
//     epoch → chip step → sync/recovery), produced by a Spanner when
//     span tracing is explicitly enabled. Span carries the interval
//     ID, Parent links it to the enclosing interval.
//   - PairStat: a partition-quality measurement for one directed chip
//     pair — how much of the owner's state the observer's shadow copy
//     has wrong (the Burns & Huang disagreement measure). Emitted only
//     when diagnostics are explicitly enabled.
//
// # Sinks
//
// A Tracer is any consumer of the stream. The package ships a JSONL
// sink (one JSON object per line, for archiving and offline analysis),
// a fixed-capacity in-memory Ring (for tests and live inspection), and
// Fanout to drive several sinks at once. Engine result series
// (per-epoch stats, probe samples, energy traces) are themselves
// assembled by internal consumers of this stream rather than by
// parallel bookkeeping.
//
// # Overhead
//
// Tracing is off by default: a nil Tracer in an engine config skips
// every emission site behind a single branch, and all sites sit at
// epoch/sweep boundaries, never inside integration inner loops. The
// no-op path adds no measurable cost to the hot benchmarks (see
// BENCH_obs.json at the repository root). Sinks and the metrics
// Registry are goroutine-safe, so Parallel chip goroutines may record
// concurrently.
package obs

// Kind names an event type. Kinds marshal as readable strings so JSONL
// traces are self-describing.
type Kind string

// The event taxonomy. See the package comment for semantics.
const (
	RunStart       Kind = "run_start"
	ChipStep       Kind = "chip_step"
	InducedKick    Kind = "induced_kick"
	EpochSync      Kind = "epoch_sync"
	FabricTransfer Kind = "fabric_transfer"
	Probe          Kind = "probe"
	EnergySample   Kind = "energy_sample"
	Fault          Kind = "fault"
	Recovery       Kind = "recovery"
	Numerical      Kind = "numerical"
	RunEnd         Kind = "run_end"
	SpanStart      Kind = "span_start"
	SpanEnd        Kind = "span_end"
	PairStat       Kind = "pair_stat"
	EntrantStart   Kind = "entrant_start"
	EntrantEnd     Kind = "entrant_end"
	PortfolioWin   Kind = "portfolio_win"
)

// Event is one trace record. It is a flat value type so emission never
// allocates; which fields are meaningful depends on Kind:
//
//	RunStart:       Label (engine), Seed, Count (problem spins),
//	                Value (planned duration ns, 0 for software engines)
//	ChipStep:       Epoch, Chip, Count (flips), Induced (induced
//	                flips), ModelNS (model time at epoch end)
//	InducedKick:    Epoch, Chip, Count (kicks applied this epoch)
//	EpochSync:      Epoch, Count (bit changes), Induced (induced bit
//	                changes), ModelNS
//	FabricTransfer: Epoch, Value (bytes this epoch), StallNS, ModelNS
//	Probe:          Epoch, Chip, Value (energy surprise), Aux (degree
//	                of ignorance)
//	EnergySample:   ModelNS (elapsed ns; sweep/step ordinal for
//	                software engines), Value (energy), Epoch/Chip when
//	                scoped
//	Fault:          Label (fault class), Epoch, Chip, Count (updates
//	                affected, when applicable)
//	Recovery:       Label (policy), Epoch, Chip, Count (attempts or
//	                spins moved), Value (bytes charged), StallNS
//	                (recovery stall charged), Aux (divergence fraction
//	                for "resync")
//	Numerical:      integrator guardrail activity (Label
//	                discriminates: "step-retry" with Count halved-step
//	                retries a chip spent during the epoch;
//	                "divergence" when the run aborts), Epoch, Chip,
//	                ModelNS
//	RunEnd:         Label (engine), Value (best energy), ModelNS,
//	                StallNS, Count (flips), Induced, WallDurNS
//	SpanStart:      Label (span name), Span (interval ID), Parent
//	                (enclosing interval ID, 0 for the root), ModelNS
//	                (model-time position at open), Chip and Peer
//	                (chip+1) for chip-scoped intervals
//	SpanEnd:        Span, Label, ModelNS (model-time position at
//	                close), Value (model-time duration), WallDurNS
//	                (measured wall duration), Count/StallNS/Aux when
//	                the interval carries work totals
//	PairStat:       Epoch, Chip (observer), Peer (owner chip + 1),
//	                Count (stale shadow spins), Value (disagreement
//	                fraction over the owner's slice), ModelNS
//	EntrantStart:   a portfolio race entrant launches — Label (entrant
//	                engine kind), Chip (entrant index), Seed (entrant's
//	                effective seed)
//	EntrantEnd:     an entrant finishes or is cancelled — Label (kind),
//	                Chip (index), Value (best energy), Count (1 when
//	                the entrant was interrupted, 0 when it completed),
//	                WallDurNS (entrant wall time)
//	PortfolioWin:   the race's win attribution — Label (winning engine
//	                kind), Chip (winner index), Value (winning energy),
//	                Count (1 when the race ended first-to-target)
//
// Peer is always a 1-based chip identity (chip index + 1), so that
// chip 0 survives the omitempty JSON encoding; 0 means "no peer".
//
// Trace and Origin carry distributed context: Trace is a run-scoped
// trace identifier shared by every process contributing to one
// distributed solve, and Origin names the emitting node ("co" for the
// coordinator, "w0", "w1", … for workers). Both are zero for
// single-process runs and are stamped by a StampTracer (worker side)
// or the federation collector (coordinator side) rather than by
// emission sites.
//
// WallNS is the wall-clock timestamp stamped by the sink at emission,
// and WallDurNS on span events is a measured duration; those two are
// the only fields excluded from determinism guarantees.
type Event struct {
	Kind      Kind    `json:"kind"`
	WallNS    int64   `json:"wallNS,omitempty"`
	ModelNS   float64 `json:"modelNS,omitempty"`
	Epoch     int     `json:"epoch,omitempty"`
	Chip      int     `json:"chip,omitempty"`
	Seed      uint64  `json:"seed,omitempty"`
	Count     int64   `json:"count,omitempty"`
	Induced   int64   `json:"induced,omitempty"`
	Value     float64 `json:"value,omitempty"`
	Aux       float64 `json:"aux,omitempty"`
	StallNS   float64 `json:"stallNS,omitempty"`
	WallDurNS int64   `json:"wallDurNS,omitempty"`
	Span      uint64  `json:"span,omitempty"`
	Parent    uint64  `json:"parent,omitempty"`
	Peer      int     `json:"peer,omitempty"`
	Label     string  `json:"label,omitempty"`
	Trace     uint64  `json:"trace,omitempty"`
	Origin    string  `json:"origin,omitempty"`
}

// Tracer consumes a run's event stream. Implementations must be safe
// for concurrent Emit calls. Engine configs hold a Tracer that is nil
// by default: every emission site guards with a nil check, which is
// the entire cost of the disabled path.
type Tracer interface {
	Emit(Event)
}

// Nop is a Tracer that discards everything — for callers that want an
// explicit non-nil no-op.
type Nop struct{}

// Emit discards the event.
func (Nop) Emit(Event) {}

// Fanout composes tracers into one that forwards every event to each,
// in order. Nil entries are skipped; zero live tracers yield nil (the
// disabled path), one yields it unwrapped.
func Fanout(ts ...Tracer) Tracer {
	live := make([]Tracer, 0, len(ts))
	for _, t := range ts {
		if t != nil {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multiTracer(live)
}

type multiTracer []Tracer

func (m multiTracer) Emit(e Event) {
	for _, t := range m {
		t.Emit(e)
	}
}

// StampTracer wraps tr so every event passing through carries the
// distributed trace context: Trace is set to traceID when the event
// has none, and Origin to origin when the event has none. It is the
// export half of cross-process span propagation — a cluster worker
// stamps its slice streams with the coordinator-assigned trace ID so
// the federation collector can tell runs apart on a shared node, and
// the coordinator stamps its own stream "co". A nil tr yields nil (the
// disabled path).
func StampTracer(tr Tracer, traceID uint64, origin string) Tracer {
	if tr == nil {
		return nil
	}
	return &stampTracer{tr: tr, trace: traceID, origin: origin}
}

type stampTracer struct {
	tr     Tracer
	trace  uint64
	origin string
}

func (s *stampTracer) Emit(e Event) {
	if e.Trace == 0 {
		e.Trace = s.trace
	}
	if e.Origin == "" {
		e.Origin = s.origin
	}
	s.tr.Emit(e)
}
