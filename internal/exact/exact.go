// Package exact provides ground-truth solvers for small Ising
// instances. The test suites use them to validate every heuristic
// engine against true optima, and the problem-encoding library uses
// them to verify that reductions preserve optimal solutions.
//
// Solve enumerates all 2^(n-1) states (σ → −σ symmetry halves the
// space when there are no biases; with biases the full 2^n is walked)
// in Gray-code order, so consecutive states differ by one spin and the
// energy updates in O(N) per state via the cached local fields.
// Practical to about n = 26 on a laptop.
package exact

import (
	"fmt"
	"math"
	"math/bits"

	"mbrim/internal/ising"
)

// MaxN is the largest instance Solve accepts. 2^30 states with O(N)
// updates is already minutes of work; anything larger is a bug in the
// caller, not a patience problem.
const MaxN = 30

// Result is the exact optimum of an instance.
type Result struct {
	Spins  []int8
	Energy float64
	// States is the number of states visited.
	States uint64
	// Degenerate reports whether more than one state attains the
	// optimum (the mirrored state does not count).
	Degenerate bool
}

// Solve returns the global minimum-energy state by exhaustive
// Gray-code enumeration. It panics if the model has more than MaxN
// spins.
func Solve(m *ising.Model) *Result {
	n := m.N()
	if n > MaxN {
		panic(fmt.Sprintf("exact: %d spins exceeds MaxN=%d", n, MaxN))
	}
	spins := make([]int8, n)
	for i := range spins {
		spins[i] = -1
	}
	fields := m.LocalFields(spins, nil)
	energy := m.EnergyFromFields(spins, fields)

	best := ising.CopySpins(spins)
	bestEnergy := energy
	degenerate := false

	// With zero biases, E(σ) = E(−σ): walking half the space suffices.
	half := true
	for i := 0; i < n; i++ {
		if m.Bias(i) != 0 {
			half = false
			break
		}
	}
	total := uint64(1) << uint(n)
	if half && n > 0 {
		total >>= 1
	}

	res := &Result{States: total}
	for i := uint64(1); i < total; i++ {
		// Gray code: state g(i) differs from g(i-1) in bit tz(i).
		k := bits.TrailingZeros64(i)
		delta := m.FlipDelta(spins, fields, k)
		m.ApplyFlip(spins, fields, k)
		energy += delta
		switch {
		case energy < bestEnergy-1e-12:
			bestEnergy = energy
			copy(best, spins)
			degenerate = false
		case math.Abs(energy-bestEnergy) <= 1e-12:
			degenerate = true
		}
	}
	res.Spins = best
	res.Energy = bestEnergy
	res.Degenerate = degenerate
	return res
}

// MaxCut returns the exact maximum cut of the model's MaxCut
// counterpart: cut = (W − E_min)/2 where W is the total coupling
// weight of the graph that produced the model with J = −w. The caller
// supplies W (graph.TotalWeight()).
func MaxCut(m *ising.Model, totalWeight float64) float64 {
	return (totalWeight - Solve(m).Energy) / 2
}

// Verify checks that the claimed spins attain the claimed energy and
// that no single flip improves it (local optimality — a cheap sanity
// check usable at sizes where Solve is not).
func Verify(m *ising.Model, spins []int8, energy float64) error {
	if got := m.Energy(spins); math.Abs(got-energy) > 1e-9 {
		return fmt.Errorf("exact: claimed energy %v, spins give %v", energy, got)
	}
	fields := m.LocalFields(spins, nil)
	for k := 0; k < m.N(); k++ {
		if d := m.FlipDelta(spins, fields, k); d < -1e-9 {
			return fmt.Errorf("exact: flip of spin %d improves energy by %v — not even locally optimal", k, -d)
		}
	}
	return nil
}
