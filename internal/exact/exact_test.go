package exact

import (
	"math"
	"testing"
	"testing/quick"

	"mbrim/internal/graph"
	"mbrim/internal/ising"
	"mbrim/internal/rng"
	"mbrim/internal/sa"
)

func randomModel(n int, withBias bool, r *rng.Source) *ising.Model {
	m := ising.NewModel(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.SetCoupling(i, j, float64(r.Intn(7)-3))
		}
		if withBias {
			m.SetBias(i, float64(r.Intn(5)-2))
		}
	}
	return m
}

// bruteForce is the trivially correct reference: evaluate Energy on
// every bitmask.
func bruteForce(m *ising.Model) float64 {
	n := m.N()
	best := math.Inf(1)
	s := make([]int8, n)
	for mask := 0; mask < 1<<n; mask++ {
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				s[i] = 1
			} else {
				s[i] = -1
			}
		}
		if e := m.Energy(s); e < best {
			best = e
		}
	}
	return best
}

func TestSolveMatchesBruteForceNoBias(t *testing.T) {
	f := func(seed uint32) bool {
		r := rng.New(uint64(seed))
		n := 2 + r.Intn(10)
		m := randomModel(n, false, r)
		res := Solve(m)
		return math.Abs(res.Energy-bruteForce(m)) < 1e-9 &&
			math.Abs(m.Energy(res.Spins)-res.Energy) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveMatchesBruteForceWithBias(t *testing.T) {
	f := func(seed uint32) bool {
		r := rng.New(uint64(seed))
		n := 2 + r.Intn(10)
		m := randomModel(n, true, r)
		res := Solve(m)
		return math.Abs(res.Energy-bruteForce(m)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveHalvesSymmetricSpace(t *testing.T) {
	r := rng.New(1)
	m := randomModel(12, false, r)
	res := Solve(m)
	if res.States != 1<<11 {
		t.Fatalf("visited %d states, want %d (halved)", res.States, 1<<11)
	}
	mb := randomModel(12, true, r)
	resB := Solve(mb)
	if resB.States != 1<<12 {
		t.Fatalf("biased instance visited %d states, want %d", resB.States, 1<<12)
	}
}

func TestFerromagnetGroundAndDegeneracy(t *testing.T) {
	n := 10
	m := ising.NewModel(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.SetCoupling(i, j, 1)
		}
	}
	res := Solve(m)
	if res.Energy != -float64(n*(n-1))/2 {
		t.Fatalf("energy %v", res.Energy)
	}
	// Only σ and −σ are optimal, and −σ is not enumerated separately:
	// no degeneracy flag.
	if res.Degenerate {
		t.Fatal("ferromagnet flagged degenerate in half-space enumeration")
	}
}

func TestDegenerateDetected(t *testing.T) {
	// Two decoupled antiferromagnetic pairs: 4 optimal states in the
	// half space → degenerate.
	m := ising.NewModel(4)
	m.SetCoupling(0, 1, -1)
	m.SetCoupling(2, 3, -1)
	if !Solve(m).Degenerate {
		t.Fatal("degenerate instance not flagged")
	}
}

func TestPanicsOnTooLarge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Solve(ising.NewModel(MaxN + 1))
}

func TestMaxCutExact(t *testing.T) {
	// Triangle: max cut 2.
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(0, 2, 1)
	if cut := MaxCut(g.ToIsing(), g.TotalWeight()); cut != 2 {
		t.Fatalf("triangle max cut %v, want 2", cut)
	}
}

func TestVerify(t *testing.T) {
	r := rng.New(3)
	m := randomModel(10, true, r)
	res := Solve(m)
	if err := Verify(m, res.Spins, res.Energy); err != nil {
		t.Fatalf("optimum failed Verify: %v", err)
	}
	if err := Verify(m, res.Spins, res.Energy+1); err == nil {
		t.Fatal("Verify accepted wrong energy")
	}
}

func TestVerifyCatchesNonLocalOptimum(t *testing.T) {
	m := ising.NewModel(2)
	m.SetCoupling(0, 1, 1)
	bad := []int8{1, -1} // flipping either spin improves
	if err := Verify(m, bad, m.Energy(bad)); err == nil {
		t.Fatal("Verify accepted a locally improvable state")
	}
}

func TestSAReachesExactOptimum(t *testing.T) {
	// Cross-validation: batch SA must find the true optimum on small
	// frustrated instances.
	r := rng.New(4)
	for trial := 0; trial < 5; trial++ {
		g := graph.Complete(14, r)
		m := g.ToIsing()
		want := Solve(m).Energy
		got := sa.SolveBatch(m, sa.Config{Sweeps: 200, Seed: uint64(trial)}, 10).Best.Energy
		if got != want {
			t.Fatalf("trial %d: SA best %v, optimum %v", trial, got, want)
		}
	}
}

func BenchmarkSolveN20(b *testing.B) {
	r := rng.New(1)
	m := randomModel(20, false, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Solve(m)
	}
}
