package exact

import (
	"math"
	"testing"

	"mbrim/internal/graph"
	"mbrim/internal/rng"
)

// TestSKGroundStateScaling is a physics sanity check on the whole
// model/solver stack. A ±1 K-graph is a Sherrington–Kirkpatrick spin
// glass with couplings of unit variance; its ground-state energy is
// known to scale as E₀ ≈ −e₀·N^(3/2) with e₀ → 0.7632 (the Parisi
// constant) as N → ∞. At the small sizes exact enumeration reaches,
// finite-size effects push the density above the asymptote, but it
// must already sit in the right window and tighten with N — a
// miscalibrated energy convention (double counting, sign flips, lost
// factor of 2) lands far outside it.
func TestSKGroundStateScaling(t *testing.T) {
	type point struct {
		n       int
		seeds   int
		density float64
	}
	var pts []point
	for _, n := range []int{14, 18, 22} {
		const seeds = 3
		sum := 0.0
		for s := 0; s < seeds; s++ {
			g := graph.Complete(n, rng.New(uint64(100*n+s)))
			e0 := Solve(g.ToIsing()).Energy
			sum += -e0 / math.Pow(float64(n), 1.5)
		}
		pts = append(pts, point{n: n, seeds: seeds, density: sum / seeds})
	}
	for _, p := range pts {
		if p.density < 0.60 || p.density > 1.05 {
			t.Fatalf("n=%d: ground-state density %.3f outside the SK window [0.60, 1.05]",
				p.n, p.density)
		}
	}
}
