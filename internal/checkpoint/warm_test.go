package checkpoint

import (
	"strings"
	"testing"
)

func TestWarmRoundTrip(t *testing.T) {
	m := testModel(12, 1)
	spins := make([]int8, m.N())
	for i := range spins {
		spins[i] = int8(1 - 2*(i%2))
	}
	data, err := EncodeWarm("sa", 7, m, spins, -42.5)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if f.Warm == nil {
		t.Fatal("warm payload lost in round trip")
	}
	if f.Warm.From != "sa" {
		t.Fatalf("From = %q", f.Warm.From)
	}
	if got := f.Warm.Energy(); got != -42.5 {
		t.Fatalf("Energy() = %v, want -42.5 (bit-exact)", got)
	}
	if len(f.Warm.Spins) != m.N() {
		t.Fatalf("spins length %d", len(f.Warm.Spins))
	}
	for i := range spins {
		if f.Warm.Spins[i] != spins[i] {
			t.Fatalf("spin %d changed: %d != %d", i, f.Warm.Spins[i], spins[i])
		}
	}
	if err := f.ValidateWarm(m); err != nil {
		t.Fatal(err)
	}
	// EncodeWarm copies the spins: mutating the caller's slice after
	// encoding must not leak into the envelope.
	spins[0] = -spins[0]
	f2, _ := Decode(data)
	if f2.Warm.Spins[0] == spins[0] {
		t.Fatal("EncodeWarm aliased the caller's spin slice")
	}
}

func TestValidateWarmRejections(t *testing.T) {
	m := testModel(12, 1)
	spins := make([]int8, m.N())
	for i := range spins {
		spins[i] = 1
	}

	// Not a warm envelope at all (a plain resume checkpoint).
	plain := &File{Engine: "mbrim", Seed: 1, N: m.N(), ModelHash: HashModel(m)}
	if err := plain.ValidateWarm(m); err == nil || !strings.Contains(err.Error(), "warm") {
		t.Fatalf("plain envelope accepted as warm: %v", err)
	}

	// Wrong model: same size, different couplings.
	data, err := EncodeWarm("sa", 1, m, spins, -1)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := Decode(data)
	if err := f.ValidateWarm(testModel(12, 2)); err == nil {
		t.Fatal("accepted a warm start against a different model")
	}
	if err := f.ValidateWarm(testModel(16, 1)); err == nil {
		t.Fatal("accepted a warm start against a different size")
	}

	// Corrupt spin values.
	f.Warm.Spins[3] = 0
	if err := f.ValidateWarm(m); err == nil {
		t.Fatal("accepted a zero spin")
	}

	// Cross-engine and cross-seed hand-off is the point: neither is
	// checked by ValidateWarm.
	f2, _ := Decode(data)
	f2.Engine, f2.Seed = "something-else", 999
	if err := f2.ValidateWarm(m); err != nil {
		t.Fatalf("warm validation must not bind engine/seed: %v", err)
	}
}

func TestEncodeWarmRejectsMismatchedSpins(t *testing.T) {
	m := testModel(12, 1)
	if _, err := EncodeWarm("sa", 1, m, make([]int8, 5), -1); err == nil {
		t.Fatal("accepted a mis-sized spin vector")
	}
}
