// Package checkpoint defines the versioned on-disk format for
// interrupted solver runs. A checkpoint file is a single JSON object —
// human-inspectable, stdlib-only, and exact: encoding/json round-trips
// float64 values bit-for-bit (shortest-representation printing), and
// the few quantities that can hold ±Inf are carried as IEEE-754 bit
// patterns in uint64 fields, so a decoded checkpoint resumes
// bit-identically to the run that wrote it.
//
// The envelope binds a snapshot to the run that produced it: a magic
// string and format version, the engine kind, the seed, the problem
// size, and a hash of the model itself. Resume refuses a checkpoint
// whose envelope does not match the request, which turns the classic
// silent failure — resuming chip state against a different problem —
// into a typed error.
//
// Decode is hardened against arbitrary corrupt bytes: it validates the
// envelope and returns errors, never panics. The deep validation of
// the engine payload (dimensions, value ranges, PRNG positions)
// happens in the engine's own Restore path, which is equally
// panic-free; the two layers together make feeding a truncated,
// bit-flipped or hostile file a recoverable error.
package checkpoint

import (
	"encoding/json"
	"fmt"
	"math"

	"mbrim/internal/ising"
	"mbrim/internal/multichip"
)

// Magic identifies a checkpoint file; Version is the format revision.
// Any incompatible change to the payload structs must bump Version.
const (
	Magic   = "mbrim-ckpt"
	Version = 1
)

// File is the envelope plus the engine payload. Exactly one payload
// field is set, matching Engine.
type File struct {
	Magic   string `json:"magic"`
	Version int    `json:"version"`
	// Engine is the core solver kind the run used (e.g.
	// "multichip-concurrent"); resume dispatches on it.
	Engine string `json:"engine"`
	// Seed and N describe the run; ModelHash fingerprints the problem
	// (couplings, biases, μ) so a checkpoint cannot be resumed against
	// a different model of the same size.
	Seed      uint64 `json:"seed"`
	N         int    `json:"n"`
	ModelHash uint64 `json:"modelHash"`
	// Multichip is the payload for the multichip engines.
	Multichip *multichip.Checkpoint `json:"multichip,omitempty"`
	// Warm is the engine-agnostic warm-start payload: the best spins
	// (and their energy) a run had found when it stopped. Unlike the
	// full-state payloads it resumes on a *different* engine — the
	// portfolio hand-off converts a losing entrant's best state into a
	// Warm envelope a second-stage engine starts from. Additive to
	// format version 1: files without it decode unchanged.
	Warm *Warm `json:"warm,omitempty"`
}

// Warm is the cross-engine warm-start snapshot.
type Warm struct {
	// Spins is the best configuration found (length N).
	Spins []int8 `json:"spins"`
	// EnergyBits is the IEEE-754 bit pattern of that configuration's
	// energy (uint64 so ±Inf round-trips exactly).
	EnergyBits uint64 `json:"energyBits"`
	// From names the engine that produced the state — provenance for
	// logs and the portfolio's win attribution, not validated on
	// resume.
	From string `json:"from,omitempty"`
}

// Energy decodes the snapshot's energy.
func (w *Warm) Energy() float64 { return math.Float64frombits(w.EnergyBits) }

// HashModel fingerprints a model with FNV-1a over its size, μ, every
// coupling and every bias (as IEEE-754 bits, so -0 vs +0 and NaN
// payloads distinguish). It is not cryptographic — it guards against
// accidents, not adversaries.
func HashModel(m *ising.Model) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	n := m.N()
	mix(uint64(n))
	mix(math.Float64bits(m.Mu()))
	for i := 0; i < n; i++ {
		for _, v := range m.Row(i) {
			mix(math.Float64bits(v))
		}
	}
	for _, v := range m.Biases() {
		mix(math.Float64bits(v))
	}
	return h
}

// Encode serializes a checkpoint file, stamping the magic and version.
func Encode(f *File) ([]byte, error) {
	if f == nil {
		return nil, fmt.Errorf("checkpoint: nil file")
	}
	out := *f
	out.Magic = Magic
	out.Version = Version
	data, err := json.Marshal(&out)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: encode: %w", err)
	}
	return data, nil
}

// Decode parses checkpoint bytes and validates the envelope. It never
// panics, whatever the input: corruption is reported as an error. The
// payload's deep validation happens when the engine restores it.
func Decode(data []byte) (*File, error) {
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("checkpoint: decode: %w", err)
	}
	if f.Magic != Magic {
		return nil, fmt.Errorf("checkpoint: bad magic %q", f.Magic)
	}
	if f.Version != Version {
		return nil, fmt.Errorf("checkpoint: version %d, this build reads %d", f.Version, Version)
	}
	if f.N < 1 {
		return nil, fmt.Errorf("checkpoint: n=%d", f.N)
	}
	if f.Engine == "" {
		return nil, fmt.Errorf("checkpoint: missing engine")
	}
	return &f, nil
}

// EncodeWarm builds a warm-start envelope: the best spins an engine
// had found, bound to the model so it cannot warm-start a different
// problem. The spins are copied, not aliased.
func EncodeWarm(from string, seed uint64, m *ising.Model, spins []int8, energy float64) ([]byte, error) {
	if m == nil {
		return nil, fmt.Errorf("checkpoint: nil model")
	}
	if len(spins) != m.N() {
		return nil, fmt.Errorf("checkpoint: warm start has %d spins for a %d-spin model", len(spins), m.N())
	}
	return Encode(&File{
		Engine:    from,
		Seed:      seed,
		N:         m.N(),
		ModelHash: HashModel(m),
		Warm: &Warm{
			Spins:      append([]int8(nil), spins...),
			EnergyBits: math.Float64bits(energy),
			From:       from,
		},
	})
}

// ValidateWarm checks a decoded warm-start envelope against the model
// it is about to seed. Engine and seed are deliberately not checked —
// crossing engines is the point of a warm-start hand-off — but the
// model must be the same problem and the spins must be well-formed.
func (f *File) ValidateWarm(m *ising.Model) error {
	if f.Warm == nil {
		return fmt.Errorf("checkpoint: no warm-start payload")
	}
	if f.N != m.N() {
		return fmt.Errorf("checkpoint: written for %d spins, warm-starting %d", f.N, m.N())
	}
	if h := HashModel(m); f.ModelHash != h {
		return fmt.Errorf("checkpoint: model hash %#x does not match this problem (%#x)", f.ModelHash, h)
	}
	if len(f.Warm.Spins) != m.N() {
		return fmt.Errorf("checkpoint: warm payload has %d spins for a %d-spin model", len(f.Warm.Spins), m.N())
	}
	for i, s := range f.Warm.Spins {
		if s != -1 && s != 1 {
			return fmt.Errorf("checkpoint: warm spin [%d]=%d is not a spin", i, s)
		}
	}
	return nil
}

// Validate checks a decoded file against the run it is about to
// resume.
func (f *File) Validate(engine string, seed uint64, m *ising.Model) error {
	if f.Engine != engine {
		return fmt.Errorf("checkpoint: written by engine %q, resuming %q", f.Engine, engine)
	}
	if f.Seed != seed {
		return fmt.Errorf("checkpoint: written with seed %d, resuming %d", f.Seed, seed)
	}
	if f.N != m.N() {
		return fmt.Errorf("checkpoint: written for %d spins, resuming %d", f.N, m.N())
	}
	if h := HashModel(m); f.ModelHash != h {
		return fmt.Errorf("checkpoint: model hash %#x does not match this problem (%#x)", f.ModelHash, h)
	}
	return nil
}
