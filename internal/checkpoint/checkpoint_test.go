package checkpoint

import (
	"strings"
	"testing"

	"mbrim/internal/graph"
	"mbrim/internal/ising"
	"mbrim/internal/multichip"
	"mbrim/internal/rng"
)

func testModel(n int, seed uint64) *ising.Model {
	return graph.Complete(n, rng.New(seed)).ToIsing()
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := testModel(16, 1)
	f := &File{
		Engine:    "mbrim",
		Seed:      7,
		N:         m.N(),
		ModelHash: HashModel(m),
		Multichip: &multichip.Checkpoint{Mode: multichip.ModeConcurrent, DurationNS: 40},
	}
	data, err := Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Magic != Magic || got.Version != Version {
		t.Fatalf("envelope not stamped: %+v", got)
	}
	if got.Engine != f.Engine || got.Seed != f.Seed || got.N != f.N || got.ModelHash != f.ModelHash {
		t.Fatalf("round trip changed the envelope: %+v", got)
	}
	if got.Multichip == nil || got.Multichip.Mode != multichip.ModeConcurrent || got.Multichip.DurationNS != 40 {
		t.Fatalf("round trip lost the payload: %+v", got.Multichip)
	}
	if err := got.Validate("mbrim", 7, m); err != nil {
		t.Fatal(err)
	}
}

func TestValidateMismatches(t *testing.T) {
	m := testModel(16, 1)
	f := &File{Engine: "mbrim", Seed: 7, N: m.N(), ModelHash: HashModel(m)}

	if err := f.Validate("mbrim-batch", 7, m); err == nil {
		t.Fatal("accepted wrong engine")
	}
	if err := f.Validate("mbrim", 8, m); err == nil {
		t.Fatal("accepted wrong seed")
	}
	if err := f.Validate("mbrim", 7, testModel(24, 1)); err == nil {
		t.Fatal("accepted wrong size")
	}
	// Same size, different couplings: only the hash can tell.
	if err := f.Validate("mbrim", 7, testModel(16, 2)); err == nil {
		t.Fatal("accepted a different model of the same size")
	}
}

func TestHashModelSensitivity(t *testing.T) {
	a := testModel(16, 1)
	b := testModel(16, 1)
	if HashModel(a) != HashModel(b) {
		t.Fatal("identical models hash differently")
	}
	b.SetBias(3, 0.5)
	if HashModel(a) == HashModel(b) {
		t.Fatal("bias change not reflected in hash")
	}
	c := testModel(16, 1)
	c.SetCoupling(0, 1, 42)
	if HashModel(a) == HashModel(c) {
		t.Fatal("coupling change not reflected in hash")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	m := testModel(8, 1)
	data, err := Encode(&File{Engine: "mbrim", Seed: 1, N: m.N(), ModelHash: HashModel(m)})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":       nil,
		"garbage":     []byte("not json at all"),
		"truncated":   data[:len(data)/2],
		"wrong magic": []byte(strings.Replace(string(data), Magic, "mbrim-XXXX", 1)),
		"bad version": []byte(strings.Replace(string(data), `"version":1`, `"version":99`, 1)),
		"zero n":      []byte(strings.Replace(string(data), `"n":8`, `"n":0`, 1)),
		"no engine":   []byte(strings.Replace(string(data), `"engine":"mbrim"`, `"engine":""`, 1)),
	}
	for name, bad := range cases {
		if _, err := Decode(bad); err == nil {
			t.Errorf("%s: corrupt bytes accepted", name)
		}
	}
}

// FuzzDecode asserts the hardening contract: Decode never panics, for
// any input — it either returns a structurally valid envelope or an
// error.
func FuzzDecode(f *testing.F) {
	m := testModel(8, 1)
	good, err := Encode(&File{Engine: "mbrim", Seed: 1, N: m.N(), ModelHash: HashModel(m),
		Multichip: &multichip.Checkpoint{Mode: multichip.ModeConcurrent, DurationNS: 10}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"magic":"mbrim-ckpt","version":1,"engine":"x","n":1}`))
	f.Add([]byte(`{"magic":"mbrim-ckpt","version":1,"engine":"x","n":1,"multichip":{"chips":[{}]}}`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		file, err := Decode(data)
		if err != nil {
			return
		}
		if file.Magic != Magic || file.Version != Version || file.N < 1 || file.Engine == "" {
			t.Fatalf("Decode accepted an invalid envelope: %+v", file)
		}
	})
}
