package checkpoint

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
)

// A Ref is a stable pointer to a durably stored checkpoint file: the
// journal records refs, not payloads, so the log stays small while the
// (potentially large) resume envelopes live as ordinary files next to
// it. Size and content hash travel with the ref, turning a torn or
// tampered checkpoint file into a load error instead of a silently
// wrong resume.
type Ref struct {
	// Name is the file name within the checkpoint directory. Always a
	// bare name — Load rejects anything with a path separator, so a
	// corrupt or hostile journal cannot point outside the state dir.
	Name   string `json:"name"`
	Bytes  int64  `json:"bytes"`
	SHA256 string `json:"sha256"`
}

// WriteRef durably stores data as name inside dir and returns its ref.
// The write is atomic and crash-safe: data lands in a temp file that is
// fsynced before being renamed over name, then the directory itself is
// synced so the rename survives a power cut. A reader therefore sees
// either the previous checkpoint or the new one, never a mix.
func WriteRef(dir, name string, data []byte) (Ref, error) {
	if filepath.Base(name) != name || name == "" || name == "." {
		return Ref{}, fmt.Errorf("checkpoint: invalid ref name %q", name)
	}
	tmp, err := os.CreateTemp(dir, name+".tmp-*")
	if err != nil {
		return Ref{}, fmt.Errorf("checkpoint: ref temp: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return Ref{}, fmt.Errorf("checkpoint: ref write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return Ref{}, fmt.Errorf("checkpoint: ref sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return Ref{}, fmt.Errorf("checkpoint: ref close: %w", err)
	}
	if err := os.Rename(tmpName, filepath.Join(dir, name)); err != nil {
		return Ref{}, fmt.Errorf("checkpoint: ref rename: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	sum := sha256.Sum256(data)
	return Ref{Name: name, Bytes: int64(len(data)), SHA256: hex.EncodeToString(sum[:])}, nil
}

// Load reads the referenced file from dir and verifies its size and
// content hash against the ref. Any mismatch — truncation, bit rot,
// a swapped file — is an error; the caller decides whether to fall
// back to an older checkpoint or restart from scratch.
func (r Ref) Load(dir string) ([]byte, error) {
	if filepath.Base(r.Name) != r.Name || r.Name == "" || r.Name == "." {
		return nil, fmt.Errorf("checkpoint: invalid ref name %q", r.Name)
	}
	data, err := os.ReadFile(filepath.Join(dir, r.Name))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: ref load: %w", err)
	}
	if int64(len(data)) != r.Bytes {
		return nil, fmt.Errorf("checkpoint: ref %s: %d bytes on disk, ref says %d", r.Name, len(data), r.Bytes)
	}
	sum := sha256.Sum256(data)
	if got := hex.EncodeToString(sum[:]); got != r.SHA256 {
		return nil, fmt.Errorf("checkpoint: ref %s: content hash mismatch", r.Name)
	}
	return data, nil
}
