package checkpoint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRefRoundTrip(t *testing.T) {
	dir := t.TempDir()
	data := []byte("checkpoint payload bytes")
	ref, err := WriteRef(dir, "run-1.ckpt", data)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Name != "run-1.ckpt" || ref.Bytes != int64(len(data)) || len(ref.SHA256) != 64 {
		t.Fatalf("ref = %+v", ref)
	}
	got, err := ref.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Fatalf("loaded %q, wrote %q", got, data)
	}
	// No temp droppings after a clean write.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("dir holds %d entries, want only the checkpoint", len(entries))
	}
}

func TestRefOverwriteIsAtomicReplacement(t *testing.T) {
	dir := t.TempDir()
	if _, err := WriteRef(dir, "c.ckpt", []byte("old")); err != nil {
		t.Fatal(err)
	}
	ref, err := WriteRef(dir, "c.ckpt", []byte("new and longer"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ref.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "new and longer" {
		t.Fatalf("loaded %q after overwrite", got)
	}
}

func TestRefLoadDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	ref, err := WriteRef(dir, "c.ckpt", []byte("pristine"))
	if err != nil {
		t.Fatal(err)
	}
	// Same length, different content: only the hash can catch it.
	if err := os.WriteFile(filepath.Join(dir, "c.ckpt"), []byte("tampered"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Load(dir); err == nil || !strings.Contains(err.Error(), "hash") {
		t.Fatalf("want hash mismatch, got %v", err)
	}
	// Truncation is caught by the size check.
	if err := os.WriteFile(filepath.Join(dir, "c.ckpt"), []byte("pris"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Load(dir); err == nil || !strings.Contains(err.Error(), "bytes") {
		t.Fatalf("want size mismatch, got %v", err)
	}
}

func TestRefRejectsPathEscape(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"", ".", "../evil", "a/b"} {
		if _, err := WriteRef(dir, name, []byte("x")); err == nil {
			t.Errorf("WriteRef accepted %q", name)
		}
		if _, err := (Ref{Name: name}).Load(dir); err == nil {
			t.Errorf("Load accepted %q", name)
		}
	}
}
