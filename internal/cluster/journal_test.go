package cluster

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mbrim/internal/journal"
)

func clusterWorker(t *testing.T) string {
	t.Helper()
	mux := http.NewServeMux()
	NewWorker(nil, 0).Routes(mux)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv.URL
}

// TestClusterJournalWriteThroughAndRecover covers the coordinator's
// share of the durability contract: submissions and terminal outcomes
// journal under the cluster scope, a restart turns journaled runs into
// tombstones (cluster runs cannot survive their workers), and the id
// counter resumes past every journaled run.
func TestClusterJournalWriteThroughAndRecover(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "run.journal")

	// Previous process: cr-1 finished, cr-2 was mid-flight at the crash.
	jw, err := journal.Open(jpath, nil)
	if err != nil {
		t.Fatal(err)
	}
	seed := []journal.Record{
		{Type: journal.TypeSubmit, ID: "cr-1", Scope: journal.ScopeCluster,
			Spec: json.RawMessage(`{"k":8}`)},
		{Type: journal.TypeTerminal, ID: "cr-1", Scope: journal.ScopeCluster,
			State: "completed", Summary: json.RawMessage(`{"energy":-4,"flips":9,"epochs":3}`)},
		{Type: journal.TypeSubmit, ID: "cr-2", Scope: journal.ScopeCluster,
			Spec: json.RawMessage(`{"k":8}`)},
	}
	for _, rec := range seed {
		if err := jw.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	jw.Close()

	// Restart: replay, then serve fresh submissions through the same
	// journal.
	rep, err := journal.Replay(jpath)
	if err != nil {
		t.Fatal(err)
	}
	jw2, err := journal.Open(jpath, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer jw2.Close()
	m := NewManager(nil, nil, 0)
	m.SetJournal(jw2)
	tombs, failed := m.Recover(rep.Records)
	if tombs != 2 || failed != 1 {
		t.Fatalf("Recover = (%d tombstones, %d failed), want (2, 1)", tombs, failed)
	}

	cr1, ok := m.lookup("cr-1")
	if !ok || cr1.err != nil {
		t.Fatalf("cr-1 tombstone = %+v, %v", cr1, ok)
	}
	cr2, ok := m.lookup("cr-2")
	if !ok || cr2.err == nil || !strings.Contains(cr2.err.Error(), "coordinator restart") {
		t.Fatalf("cr-2 tombstone should name the restart: %+v, %v", cr2, ok)
	}
	body := cr2.statusBody()
	if body["done"] != true || body["error"] == nil {
		t.Fatalf("cr-2 status = %+v", body)
	}

	// A fresh submission continues past the journaled ids and writes
	// through the journal.
	mux := http.NewServeMux()
	m.Routes(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/cluster/runs", "application/json",
		strings.NewReader(`{"workers":["`+clusterWorker(t)+`"],"k":8,"durationNS":200,"seed":5}`))
	if err != nil {
		t.Fatal(err)
	}
	var accepted map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&accepted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || accepted["id"] != "cr-3" {
		t.Fatalf("submit = %d %v, want 202 cr-3", resp.StatusCode, accepted)
	}
	cr3, _ := m.lookup("cr-3")
	select {
	case <-cr3.done:
	case <-time.After(30 * time.Second):
		t.Fatal("cr-3 did not finish")
	}
	jw2.Close()

	rep2, err := journal.Replay(jpath)
	if err != nil {
		t.Fatal(err)
	}
	var types []string
	for _, rec := range rep2.Records {
		if rec.ID == "cr-3" && rec.Scope == journal.ScopeCluster {
			types = append(types, string(rec.Type))
		}
	}
	if len(types) != 2 || types[0] != string(journal.TypeSubmit) || types[1] != string(journal.TypeTerminal) {
		t.Fatalf("cr-3 journal trail = %v, want [submit terminal]", types)
	}
	// The replay pass itself journaled cr-2's failure, so a second
	// restart folds it as terminal instead of re-failing it.
	sawCr2Terminal := false
	for _, rec := range rep2.Records {
		if rec.ID == "cr-2" && rec.Type == journal.TypeTerminal {
			sawCr2Terminal = true
		}
	}
	if !sawCr2Terminal {
		t.Fatal("Recover did not journal cr-2's terminal record")
	}
}
