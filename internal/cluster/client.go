package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mbrim/internal/obs"
)

// This file is the coordinator's transport: per-RPC deadlines,
// deterministic-jittered exponential backoff under a per-run retry
// budget, and the heartbeat prober that separates slow from dead.
//
// Failure taxonomy:
//   - transport errors and 5xx are retryable (a chaos proxy injects
//     exactly these; so do real networks);
//   - 4xx are protocol errors — a coordinator/worker disagreement no
//     retry can fix — and abort the run;
//   - a worker whose heartbeats still answer gets a doubled attempt
//     allowance before being declared dead (slow ≠ dead, Sec: failure
//     model in DESIGN.md);
//   - exhausting attempts or the budget declares the worker dead and
//     surfaces errWorkerDead, which the coordinator turns into a
//     checkpoint-rollback recovery.

// writeJSON / writeError mirror the runs package's response helpers.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// workerDeadError reports that a worker was declared dead.
type workerDeadError struct {
	worker int // index into the coordinator's worker list
	cause  error
}

func (e *workerDeadError) Error() string {
	return fmt.Sprintf("cluster: worker %d declared dead: %v", e.worker, e.cause)
}

// protocolError is a non-retryable 4xx/422 from a worker.
type protocolError struct {
	status int
	body   string
}

func (e *protocolError) Error() string {
	return fmt.Sprintf("cluster: worker protocol error %d: %s", e.status, strings.TrimSpace(e.body))
}

// splitmix64 is the repo's standard stateless hash (internal/rng,
// internal/fault use the same constants) — here it derives backoff
// jitter deterministically from (seed, worker, attempt counter), the
// same philosophy as the fault layer's seed-hashed fates.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// workerHealth is one worker's liveness ledger, shared between the
// prober goroutine and RPC issuers.
type workerHealth struct {
	misses atomic.Int64 // consecutive heartbeat misses
	dead   atomic.Bool  // declared dead (sticky for the run)
	probes atomic.Int64
}

// transport issues the coordinator's RPCs against one worker set.
type transport struct {
	cfg     Config
	client  *http.Client
	workers []string
	health  []*workerHealth
	reg     *obs.Registry // cfg.Metrics; nil instruments are no-ops

	budget  atomic.Int64 // remaining retries for the run
	retries atomic.Int64 // retries actually spent
	jitter  atomic.Uint64

	stopProbe chan struct{}
	probeWG   sync.WaitGroup
}

func newTransport(cfg Config, workers []string) *transport {
	t := &transport{
		cfg:     cfg,
		client:  cfg.Client,
		workers: workers,
		health:  make([]*workerHealth, len(workers)),
		reg:     cfg.Metrics,
	}
	if t.client == nil {
		t.client = &http.Client{}
	}
	for i := range t.health {
		t.health[i] = &workerHealth{}
	}
	t.budget.Store(int64(cfg.RetryBudget))
	if t.reg != nil {
		t.reg.SetHelp("cluster.rpc_inflight", "coordinator RPCs currently in flight (including backoff waits)")
		t.reg.SetHelp("cluster.rpc_latency_ns", "per-attempt RPC wall latency by wire method")
		t.reg.SetHelp("cluster.rpc_backoff_ns", "retry backoff waited by wire method")
		t.reg.SetHelp("cluster.rpc_retries_total", "RPC retries by wire method")
		t.reg.SetHelp("cluster.rpc_attempt_errors", "failed RPC attempts by wire method")
		t.reg.SetHelp("cluster.rpc_bytes", "request/response bytes on the wire by method and direction")
		t.reg.SetHelp("fleet.wire_bytes", "bytes actually moved to/from each worker (compare fleet.model_traffic_bytes)")
		t.reg.SetHelp("fleet.heartbeat_rtt_ns", "per-worker /healthz heartbeat round-trip time")
	}
	return t
}

// rpcMethod maps an RPC to its wire-method label — the dimension the
// per-method latency/retry/backoff series are keyed by.
func rpcMethod(method, path string) string {
	if i := strings.IndexByte(path, '?'); i >= 0 {
		path = path[:i] // label by route, not by cursor value
	}
	switch {
	case strings.HasSuffix(path, "/step"):
		return "step"
	case strings.HasSuffix(path, "/sync"):
		return "sync"
	case strings.HasSuffix(path, "/events"):
		return "events"
	case strings.HasSuffix(path, "/clock"):
		return "clock"
	case strings.HasSuffix(path, "/metrics.json"):
		return "metrics"
	case method == http.MethodPut:
		return "create"
	case method == http.MethodDelete:
		return "delete"
	default:
		return "status"
	}
}

// startProber launches one heartbeat goroutine per worker, probing
// GET /healthz every HeartbeatEvery. HeartbeatMisses consecutive
// failures mark the worker dead; any success clears the count (unless
// already declared dead — death is sticky, a flapping worker cannot
// rejoin mid-run).
func (t *transport) startProber() {
	t.stopProbe = make(chan struct{})
	for wi := range t.workers {
		t.probeWG.Add(1)
		go func(wi int) {
			defer t.probeWG.Done()
			ticker := time.NewTicker(t.cfg.HeartbeatEvery)
			defer ticker.Stop()
			for {
				select {
				case <-t.stopProbe:
					return
				case <-ticker.C:
				}
				h := t.health[wi]
				if h.dead.Load() {
					return
				}
				h.probes.Add(1)
				if t.probe(wi) {
					h.misses.Store(0)
					continue
				}
				if h.misses.Add(1) >= int64(t.cfg.HeartbeatMisses) {
					h.dead.Store(true)
					return
				}
			}
		}(wi)
	}
}

func (t *transport) stopProber() {
	if t.stopProbe != nil {
		close(t.stopProbe)
		t.probeWG.Wait()
		t.stopProbe = nil
	}
}

// probe issues one heartbeat. Probes ride the same chaos-exposed URL
// as RPCs, so an injected blackhole looks like death here too. The
// deadline is floored well above the probe cadence: it fences a hung
// worker, while refused/reset connections (how a crashed or blackholed
// worker actually presents) fail immediately regardless — so
// scheduling jitter on a loaded host cannot masquerade as death.
func (t *transport) probe(wi int) bool {
	d := t.cfg.HeartbeatEvery
	if d < 500*time.Millisecond {
		d = 500 * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.workers[wi]+"/healthz", nil)
	if err != nil {
		return false
	}
	start := time.Now()
	resp, err := t.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.reg.HistogramWith("fleet.heartbeat_rtt_ns", obs.Labels{"worker": strconv.Itoa(wi)}).
			Observe(float64(time.Since(start).Nanoseconds()))
		return true
	}
	return false
}

// alive reports whether the worker has not been declared dead.
func (t *transport) alive(wi int) bool { return !t.health[wi].dead.Load() }

// markDead declares a worker dead directly (RPC-layer detection).
func (t *transport) markDead(wi int) { t.health[wi].dead.Store(true) }

// do issues one JSON RPC against worker wi with deadline, backoff and
// budget, decoding a 2xx body into out (when non-nil). It returns
// *workerDeadError when the worker is declared dead, *protocolError on
// 4xx, ctx.Err() on coordinator cancellation.
func (t *transport) do(ctx context.Context, wi int, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("cluster: encoding %s %s: %w", method, path, err)
		}
	}
	ml := rpcMethod(method, path)
	t.reg.Gauge("cluster.rpc_inflight").Add(1)
	defer t.reg.Gauge("cluster.rpc_inflight").Add(-1)
	maxAttempts := t.cfg.MaxAttempts
	var lastErr error
	for attempt := 0; ; attempt++ {
		if !t.alive(wi) {
			if lastErr == nil {
				lastErr = errors.New("heartbeats missed")
			}
			return &workerDeadError{worker: wi, cause: lastErr}
		}
		if attempt >= maxAttempts {
			// Out of attempts. A worker whose heartbeats still answer is
			// slow, not dead: grant one doubling of the allowance before
			// giving up on it.
			if maxAttempts == t.cfg.MaxAttempts && t.health[wi].misses.Load() == 0 && t.health[wi].probes.Load() > 0 {
				maxAttempts *= 2
			} else {
				t.markDead(wi)
				return &workerDeadError{worker: wi, cause: lastErr}
			}
		}
		if attempt > 0 {
			if t.budget.Add(-1) < 0 {
				t.markDead(wi)
				return &workerDeadError{worker: wi, cause: fmt.Errorf("retry budget exhausted (%w)", lastErr)}
			}
			t.retries.Add(1)
			t.reg.CounterWith("cluster.rpc_retries_total", obs.Labels{"method": ml}).Inc()
			if err := t.sleepBackoff(ctx, wi, attempt, ml); err != nil {
				return err
			}
		}
		err := t.once(ctx, wi, method, path, body, out)
		if err == nil {
			return nil
		}
		var pe *protocolError
		if errors.As(err, &pe) {
			return err
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		lastErr = err
	}
}

// once is a single attempt under the per-RPC deadline. Every attempt
// is measured into the per-method latency histogram (failures are
// additionally counted in cluster.rpc_attempt_errors), and actual
// request/response bytes are charged to the wire ledgers — the
// "bytes on the wire" side of the fleet.wire_bytes vs.
// fleet.model_traffic_bytes comparison.
func (t *transport) once(ctx context.Context, wi int, method, path string, body []byte, out any) error {
	ml := rpcMethod(method, path)
	start := time.Now()
	defer func() {
		t.reg.HistogramWith("cluster.rpc_latency_ns", obs.Labels{"method": ml}).
			Observe(float64(time.Since(start).Nanoseconds()))
	}()
	fail := func(err error) error {
		t.reg.CounterWith("cluster.rpc_attempt_errors", obs.Labels{"method": ml}).Inc()
		return err
	}
	rctx, cancel := context.WithTimeout(ctx, t.cfg.RPCTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(rctx, method, t.workers[wi]+path, rd)
	if err != nil {
		return fail(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
		t.reg.CounterWith("cluster.rpc_bytes", obs.Labels{"method": ml, "dir": "tx"}).Add(int64(len(body)))
		t.reg.CounterWith("fleet.wire_bytes", obs.Labels{"worker": strconv.Itoa(wi), "dir": "tx"}).Add(int64(len(body)))
	}
	resp, err := t.client.Do(req)
	if err != nil {
		return fail(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxSliceBody))
	if err != nil {
		return fail(err)
	}
	t.reg.CounterWith("cluster.rpc_bytes", obs.Labels{"method": ml, "dir": "rx"}).Add(int64(len(data)))
	t.reg.CounterWith("fleet.wire_bytes", obs.Labels{"worker": strconv.Itoa(wi), "dir": "rx"}).Add(int64(len(data)))
	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		if out != nil {
			if err := json.Unmarshal(data, out); err != nil {
				return fmt.Errorf("cluster: decoding %s %s: %w", method, path, err)
			}
		}
		return nil
	case resp.StatusCode >= 400 && resp.StatusCode < 500 || resp.StatusCode == http.StatusUnprocessableEntity:
		return fail(&protocolError{status: resp.StatusCode, body: string(data)})
	default:
		return fail(fmt.Errorf("cluster: %s %s: status %d", method, path, resp.StatusCode))
	}
}

// backoffDelay is the pure schedule behind sleepBackoff:
// base·2^(attempt−1), capped at max, with ±50% deterministic jitter
// hashed from (seed, worker index, send counter). Extracted so tests
// can pin the exact sequence a fixed seed produces without sleeping.
func backoffDelay(base, max time.Duration, seed uint64, wi int, counter uint64, attempt int) time.Duration {
	d := base << (attempt - 1)
	if d > max {
		d = max
	}
	h := splitmix64(seed ^ uint64(wi)<<32 ^ counter)
	frac := 0.5 + float64(h>>11)/float64(1<<53) // [0.5, 1.5)
	return time.Duration(float64(d) * frac)
}

// sleepBackoff waits out backoffDelay for the next send counter —
// reproducible schedules, like everything else in the repo. ml is the
// wire-method label the waited delay is charged to.
func (t *transport) sleepBackoff(ctx context.Context, wi, attempt int, ml string) error {
	d := backoffDelay(t.cfg.BackoffBase, t.cfg.BackoffMax, t.cfg.Seed, wi, t.jitter.Add(1), attempt)
	t.reg.HistogramWith("cluster.rpc_backoff_ns", obs.Labels{"method": ml}).Observe(float64(d.Nanoseconds()))
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}
