package cluster

// Trace federation: the coordinator-side collector that turns a
// distributed solve's scattered observability into one run-scoped
// view. Three streams feed it:
//
//   - the coordinator's own spans and events, fanned in live;
//   - each worker's span stream, pulled page-by-page from
//     GET /worker/events with obs.Ring.EventsSince cursors — once per
//     checkpoint round plus a final catch-up pull, piggybacking on the
//     cadence the run already pays for instead of adding a poller;
//   - each worker's /metrics.json, scraped on the same cadence and
//     re-exported as worker-labeled fleet_* gauges.
//
// Merging is deterministic by construction: the canonical order is a
// stable sort by (model time, origin rank, span ID, start-before-end),
// all of which are deterministic fields, so a complete federated run
// always serializes to the same trace no matter how pulls interleaved
// with the run (the wall-time fields are the usual nondeterministic
// exceptions, and the golden test zeroes them). Wall stamps from
// workers are shifted onto the coordinator's clock by the offset the
// /worker/clock handshake estimated.
//
// Federation is observability, not control: every fetch is a single
// t.once attempt — no retries, no retry-budget draw — so a flaky or
// dead worker degrades the trace (an eviction gap, counted) but can
// never degrade the solve.

import (
	"context"
	"hash/fnv"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"mbrim/internal/diag"
	"mbrim/internal/obs"
)

// Federation ring capacities: the coordinator stream and each pulled
// worker stream are bounded independently; eviction shows up as a
// truncated trace, never unbounded memory.
const (
	coFederationRing     = 16384
	workerFederationRing = 16384
)

// deriveTraceID derives the run's trace ID deterministically from the
// solve seed and the run ID, so re-running a seeded solve federates
// under the same trace ID. Never zero (zero means "no trace context").
func deriveTraceID(seed uint64, runID string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(runID))
	id := splitmix64(seed ^ h.Sum64())
	if id == 0 {
		id = 1
	}
	return id
}

// federation is the per-run collector state hanging off a Coordinator.
type federation struct {
	traceID uint64
	chips   int
	spans   *obs.Spanner // coordinator-side spans (IDs from 1)
	runSpan obs.Span
	co      *obs.Ring   // coordinator's own stamped stream
	fleet   *diag.Fleet // cluster-level reducer, fed both streams

	mu      sync.Mutex
	workers []*obs.Ring // pulled worker events, per worker ordinal
	cursors []int64     // EventsSince cursor per worker
	offsets []int64     // worker wall clock minus coordinator's, ns
	pulled  int64
	dropped int64
}

func newFederation(c Config, runID string, workers int) *federation {
	f := &federation{
		traceID: deriveTraceID(c.Seed, runID),
		chips:   c.Chips,
		co:      obs.NewRing(coFederationRing),
		workers: make([]*obs.Ring, workers),
		cursors: make([]int64, workers),
		offsets: make([]int64, workers),
		fleet: diag.NewFleet(diag.FleetConfig{
			Workers:  workers,
			Registry: c.Metrics,
			RunID:    runID,
		}),
	}
	for wi := range f.workers {
		f.workers[wi] = obs.NewRing(workerFederationRing)
	}
	if reg := c.Metrics; reg != nil {
		reg.SetHelp("fleet.pull_wall_ns", "wall time one federation pull round took (trace pages + metrics scrapes)")
		reg.SetHelp("fleet.pulled_events", "worker trace events the federation collector ingested")
		reg.SetHelp("fleet.scrapes", "worker /metrics.json scrapes by worker")
		reg.SetHelp("fleet.worker_steps", "node-level step count scraped from the worker (absolute, not per-run)")
		reg.SetHelp("fleet.worker_slices", "node-level hosted-slice gauge scraped from the worker")
		reg.SetHelp("fleet.worker_step_replays", "node-level replay-cache hit count scraped from the worker")
		reg.SetHelp("fleet.model_traffic_bytes", "modeled fabric bytes the run charged (compare fleet.wire_bytes)")
	}
	return f
}

// spanBase hands slice s of generation gen a disjoint span-ID range.
// The coordinator allocates from 1 up; each slice incarnation gets its
// own 2³²-wide window, so worker spans never collide with the
// coordinator's or each other's — including across recoveries, where a
// replayed slice re-emits spans for epochs its previous incarnation
// already covered and must not reuse their IDs.
func (f *federation) spanBase(gen, s int) uint64 {
	return (uint64(gen)*uint64(f.chips) + uint64(s) + 1) << 32
}

func (f *federation) setOffset(wi int, off int64) {
	f.mu.Lock()
	f.offsets[wi] = off
	f.mu.Unlock()
}

func (f *federation) cursor(wi int) int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cursors[wi]
}

// ingest folds one pulled page from worker wi: filter to this run's
// trace, shift wall stamps onto the coordinator's clock, stamp the
// origin, and feed both the merge ring and the fleet reducer. Returns
// how many events were kept.
func (f *federation) ingest(wi int, since int64, page EventsPage) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	var gap int64
	switch {
	case len(page.Events) > 0 && page.First > since+1:
		gap = page.First - since - 1
	case len(page.Events) == 0 && page.Total > since:
		// Everything between the cursor and the head was evicted.
		gap = page.Total - since
	}
	if gap > 0 {
		f.dropped += gap
		f.fleet.NoteDropped(gap)
	}
	off := f.offsets[wi]
	origin := "w" + strconv.Itoa(wi)
	kept := 0
	for _, e := range page.Events {
		if e.Trace != f.traceID {
			continue // another run's slice on the same worker
		}
		e.WallNS -= off
		e.Origin = origin
		f.workers[wi].Emit(e)
		f.fleet.Emit(e)
		kept++
	}
	f.pulled += int64(kept)
	if page.Total > f.cursors[wi] {
		f.cursors[wi] = page.Total
	}
	return kept
}

// originRank orders event sources in the canonical merge: coordinator
// first, then workers by ordinal.
func originRank(origin string) int {
	if wi, ok := fleetOriginWorker(origin); ok {
		return wi + 1
	}
	return 0
}

// fleetOriginWorker mirrors diag's origin parsing for merge ranking.
func fleetOriginWorker(origin string) (int, bool) {
	if len(origin) < 2 || origin[0] != 'w' {
		return 0, false
	}
	n, err := strconv.Atoi(origin[1:])
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// merged returns the federated event stream in canonical order: a
// stable sort of all sources by model time, then origin rank, then
// span ID, then start-before-end. Every key is deterministic, so a
// complete run merges identically regardless of pull timing; during a
// live run the view is simply the events federated so far.
func (f *federation) merged() []obs.Event {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := f.co.Events()
	for _, r := range f.workers {
		out = append(out, r.Events()...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.ModelNS != b.ModelNS {
			return a.ModelNS < b.ModelNS
		}
		if ra, rb := originRank(a.Origin), originRank(b.Origin); ra != rb {
			return ra < rb
		}
		if a.Span != b.Span {
			return a.Span < b.Span
		}
		return spanKindRank(a.Kind) < spanKindRank(b.Kind)
	})
	return out
}

func spanKindRank(k obs.Kind) int {
	switch k {
	case obs.SpanStart:
		return 0
	case obs.SpanEnd:
		return 1
	default:
		return 2
	}
}

// --- Coordinator-side federation driver -----------------------------

// handshakeClocks estimates each live worker's clock offset via
// GET /worker/clock (Cristian's algorithm: offset = remote now minus
// the midpoint of the local send/receive bracket). One attempt per
// worker; a failed handshake leaves the offset at 0 — wall stamps from
// that worker stay on its own clock, which is exactly the pre-fleet
// behavior.
func (co *Coordinator) handshakeClocks(ctx context.Context) {
	for wi := range co.cfg.Workers {
		if !co.tr.alive(wi) {
			continue
		}
		t0 := time.Now().UnixNano()
		var cr ClockResponse
		if err := co.tr.once(ctx, wi, http.MethodGet, "/worker/clock", nil, &cr); err != nil {
			continue
		}
		t1 := time.Now().UnixNano()
		co.fed.setOffset(wi, cr.NowNS-(t0+(t1-t0)/2))
	}
}

// federateRound runs one collection round: pull every live worker's
// event page, scrape its metrics, refresh the fleet gauges, and record
// the round's cost as a federation_pull span under the run — the pull
// overhead is itself on the trace it builds.
func (co *Coordinator) federateRound(ctx context.Context) {
	if co.fed == nil {
		return
	}
	start := time.Now()
	kept := 0
	for wi := range co.cfg.Workers {
		if !co.tr.alive(wi) {
			continue
		}
		cur := co.fed.cursor(wi)
		var page EventsPage
		if err := co.tr.once(ctx, wi, http.MethodGet,
			"/worker/events?since="+strconv.FormatInt(cur, 10), nil, &page); err != nil {
			continue
		}
		kept += co.fed.ingest(wi, cur, page)
	}
	co.scrapeWorkerMetrics(ctx)
	wall := time.Since(start).Nanoseconds()
	co.fed.spans.Complete("federation_pull", co.fed.runSpan, -1, co.modelNS, 0, wall,
		&obs.Event{Count: int64(kept)})
	if m := co.metric(); m != nil {
		m.Histogram("fleet.pull_wall_ns").Observe(float64(wall))
		m.Counter("fleet.pulled_events").Add(int64(kept))
	}
	co.fed.fleet.Snapshot() // refresh fleet_* gauges
}

// scrapeWorkerMetrics pulls each live worker's /metrics.json and
// re-exports its node-level cluster.worker_* series as worker-labeled
// fleet.worker_* gauges. Scraped values are absolutes, so they re-enter
// as gauges regardless of their type on the worker — re-exporting a
// scraped counter as a counter would double-count on every round.
func (co *Coordinator) scrapeWorkerMetrics(ctx context.Context) {
	m := co.metric()
	if m == nil {
		return
	}
	for wi := range co.cfg.Workers {
		if !co.tr.alive(wi) {
			continue
		}
		var snap obs.Snapshot
		if err := co.tr.once(ctx, wi, http.MethodGet, "/metrics.json", nil, &snap); err != nil {
			continue
		}
		wl := obs.Labels{"worker": strconv.Itoa(wi)}
		for name, v := range snap.Counters {
			if rest, ok := scrapedWorkerSeries(name); ok {
				m.GaugeWith("fleet.worker_"+rest, wl).Set(float64(v))
			}
		}
		for name, v := range snap.Gauges {
			if rest, ok := scrapedWorkerSeries(name); ok {
				m.GaugeWith("fleet.worker_"+rest, wl).Set(v)
			}
		}
		m.CounterWith("fleet.scrapes", wl).Inc()
	}
}

// scrapedWorkerSeries matches the unlabeled cluster.worker_* series a
// worker exports and returns the suffix to re-export under. Labeled
// snapshot keys carry a {...} suffix and are skipped — only the
// node-level scalars federate.
func scrapedWorkerSeries(name string) (string, bool) {
	rest, ok := strings.CutPrefix(name, "cluster.worker_")
	if !ok || strings.ContainsRune(rest, '{') {
		return "", false
	}
	return rest, true
}

// finishFederation closes out the run's trace: a final catch-up pull
// under a private deadline (the run context may already be cancelled),
// the run span's end, and a last gauge refresh.
func (co *Coordinator) finishFederation(res *Result) {
	if co.fed == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*co.cfg.RPCTimeout)
	defer cancel()
	co.federateRound(ctx)
	co.fed.runSpan.End(co.modelNS, &obs.Event{Count: res.Flips, StallNS: res.StallNS})
	if m := co.metric(); m != nil {
		m.Gauge("fleet.model_traffic_bytes").Set(res.TrafficBytes)
	}
	co.fed.fleet.Snapshot()
}

// TraceID returns the run's federated trace ID, 0 when the run is not
// federated.
func (co *Coordinator) TraceID() uint64 {
	if co.fed == nil {
		return 0
	}
	return co.fed.traceID
}

// FederatedEvents returns the run's merged event stream in canonical
// order — the body behind GET /cluster/runs/{id}/trace once passed to
// obs.WriteChromeTrace. Nil when the run is not federated.
func (co *Coordinator) FederatedEvents() []obs.Event {
	if co.fed == nil {
		return nil
	}
	return co.fed.merged()
}

// FleetDiag returns the cluster-level diagnostics snapshot; ok is
// false when the run is not federated.
func (co *Coordinator) FleetDiag() (diag.FleetSnapshot, bool) {
	if co.fed == nil {
		return diag.FleetSnapshot{Straggler: -1}, false
	}
	return co.fed.fleet.Snapshot(), true
}

// ReleaseFleet drops the run-labeled fleet_* registry series this
// run's federation registered (retention eviction path).
func (co *Coordinator) ReleaseFleet() int {
	if co.fed == nil {
		return 0
	}
	return co.fed.fleet.Release()
}
