package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"mbrim/internal/graph"
	"mbrim/internal/ising"
	"mbrim/internal/journal"
	"mbrim/internal/obs"
	"mbrim/internal/rng"
)

// Manager hosts the coordinator API — the service half of `mbrim
// -cluster`, mounted into mbrimd next to the runs surface:
//
//	POST   /cluster/runs                 start a distributed solve
//	GET    /cluster/runs                 list runs
//	GET    /cluster/runs/{id}            status (result when finished)
//	POST   /cluster/runs/{id}/cancel     cancel; checkpoint kept
//	GET    /cluster/runs/{id}/checkpoint interrupt-checkpoint envelope
//	GET    /cluster/runs/{id}/trace      merged Perfetto trace (federated runs)
//	GET    /cluster/runs/{id}/diag       fleet diagnostics (federated runs)
type Manager struct {
	reg      *obs.Registry
	tracer   obs.Tracer
	maxSpins int
	jw       *journal.Writer

	mu   sync.Mutex
	next int
	runs map[string]*clusterRun
}

type clusterRun struct {
	mu       sync.Mutex
	id       string
	co       *Coordinator // nil for journal tombstones
	cancel   context.CancelFunc
	done     chan struct{}
	epoch    int
	elapsed  float64
	result   *Result
	envelope []byte
	err      error
}

// DefaultMaxSpins mirrors the runs surface's submission bound.
const DefaultMaxSpins = 65536

// NewManager builds the coordinator service. reg and tracer may be
// nil.
func NewManager(reg *obs.Registry, tracer obs.Tracer, maxSpins int) *Manager {
	if maxSpins <= 0 {
		maxSpins = DefaultMaxSpins
	}
	return &Manager{reg: reg, tracer: tracer, maxSpins: maxSpins, runs: make(map[string]*clusterRun)}
}

// SetJournal routes submit and terminal records for cluster runs
// through the same durable journal the runs surface writes. Call
// before serving traffic; nil leaves journaling off.
func (m *Manager) SetJournal(jw *journal.Writer) { m.jw = jw }

func (m *Manager) journalAppend(rec journal.Record) {
	if m.jw == nil {
		return
	}
	rec.Scope = journal.ScopeCluster
	_ = m.jw.Append(rec) // durability failures never fail the run; Append counts them
}

// Routes registers the coordinator endpoints on mux.
func (m *Manager) Routes(mux *http.ServeMux) {
	mux.HandleFunc("POST /cluster/runs", m.handleSubmit)
	mux.HandleFunc("GET /cluster/runs", m.handleList)
	mux.HandleFunc("GET /cluster/runs/{id}", m.handleStatus)
	mux.HandleFunc("POST /cluster/runs/{id}/cancel", m.handleCancel)
	mux.HandleFunc("GET /cluster/runs/{id}/checkpoint", m.handleCheckpoint)
	mux.HandleFunc("GET /cluster/runs/{id}/trace", m.handleTrace)
	mux.HandleFunc("GET /cluster/runs/{id}/diag", m.handleFleetDiag)
}

// SubmitRequest is the POST /cluster/runs body. The problem spec (k /
// graphSeed or n / edges) matches the runs surface; the rest maps onto
// Config.
type SubmitRequest struct {
	Workers   []string     `json:"workers"`
	K         int          `json:"k,omitempty"`
	GraphSeed uint64       `json:"graphSeed,omitempty"`
	N         int          `json:"n,omitempty"`
	Edges     [][3]float64 `json:"edges,omitempty"`

	Seed              uint64  `json:"seed,omitempty"`
	Chips             int     `json:"chips,omitempty"`
	DurationNS        float64 `json:"durationNS,omitempty"`
	EpochNS           float64 `json:"epochNS,omitempty"`
	Coordinated       bool    `json:"coordinated,omitempty"`
	Channels          int     `json:"channels,omitempty"`
	ChannelBytesPerNS float64 `json:"channelBytesPerNS,omitempty"`
	SampleEveryNS     float64 `json:"sampleEveryNS,omitempty"`
	Backend           string  `json:"backend,omitempty"`
	CheckpointEvery   int     `json:"checkpointEvery,omitempty"`
	RPCTimeoutMS      int     `json:"rpcTimeoutMS,omitempty"`
	MaxAttempts       int     `json:"maxAttempts,omitempty"`
	RetryBudget       int     `json:"retryBudget,omitempty"`
	// Federate enables fleet observability for the run (Config.Federate):
	// trace propagation to workers, stream federation, and the
	// /trace + /diag endpoints.
	Federate bool `json:"federate,omitempty"`
}

// buildModel constructs the problem graph, mirroring the runs
// surface's conventions (1-based edge endpoints, graphSeed default 1).
func (m *Manager) buildModel(sr *SubmitRequest) (*ising.Model, error) {
	switch {
	case sr.K > 0 && len(sr.Edges) > 0:
		return nil, fmt.Errorf("cluster: give k or edges, not both")
	case sr.K > 0:
		if sr.K > m.maxSpins {
			return nil, fmt.Errorf("cluster: k=%d exceeds the %d-spin limit", sr.K, m.maxSpins)
		}
		gseed := sr.GraphSeed
		if gseed == 0 {
			gseed = 1
		}
		return graph.Complete(sr.K, rng.New(gseed)).ToIsing(), nil
	case len(sr.Edges) > 0:
		if sr.N < 2 {
			return nil, fmt.Errorf("cluster: edges need n >= 2 vertices")
		}
		if sr.N > m.maxSpins {
			return nil, fmt.Errorf("cluster: n=%d exceeds the %d-spin limit", sr.N, m.maxSpins)
		}
		g := graph.New(sr.N)
		for i, e := range sr.Edges {
			u, v, w := int(e[0]), int(e[1]), e[2]
			if u < 1 || u > sr.N || v < 1 || v > sr.N || u == v {
				return nil, fmt.Errorf("cluster: edge %d (%d,%d) out of range for n=%d", i, u, v, sr.N)
			}
			g.AddEdge(u-1, v-1, w)
		}
		return g.ToIsing(), nil
	default:
		return nil, fmt.Errorf("cluster: need k > 0 or an edge list")
	}
}

func (m *Manager) config(sr *SubmitRequest) Config {
	seed := sr.Seed
	if seed == 0 {
		seed = 1
	}
	duration := sr.DurationNS
	if duration == 0 {
		duration = 100 // the core default duration
	}
	sampleEvery := sr.SampleEveryNS
	if sampleEvery == 0 {
		sampleEvery = duration / 100
	}
	cfg := Config{
		Workers:           sr.Workers,
		Chips:             sr.Chips,
		DurationNS:        duration,
		EpochNS:           sr.EpochNS,
		Coordinated:       sr.Coordinated,
		Seed:              seed,
		Backend:           sr.Backend,
		Channels:          sr.Channels,
		ChannelBytesPerNS: sr.ChannelBytesPerNS,
		SampleEveryNS:     sampleEvery,
		CheckpointEvery:   sr.CheckpointEvery,
		MaxAttempts:       sr.MaxAttempts,
		RetryBudget:       sr.RetryBudget,
		Federate:          sr.Federate,
		Metrics:           m.reg,
		Tracer:            m.tracer,
	}
	if sr.RPCTimeoutMS > 0 {
		cfg.RPCTimeout = msDuration(sr.RPCTimeoutMS)
	}
	return cfg
}

const maxClusterBody = 64 << 20

func (m *Manager) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var sr SubmitRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxClusterBody)).Decode(&sr); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("cluster: parsing body: %w", err))
		return
	}
	model, err := m.buildModel(&sr)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	m.mu.Lock()
	m.next++
	id := fmt.Sprintf("cr-%d", m.next)
	m.mu.Unlock()

	co, err := New(model, id, m.config(&sr))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	cr := &clusterRun{id: id, co: co, cancel: cancel, done: make(chan struct{})}
	co.Progress = func(epoch int, elapsed float64) {
		cr.mu.Lock()
		cr.epoch, cr.elapsed = epoch, elapsed
		cr.mu.Unlock()
	}
	m.mu.Lock()
	m.runs[id] = cr
	m.mu.Unlock()
	spec, _ := json.Marshal(&sr)
	m.journalAppend(journal.Record{Type: journal.TypeSubmit, ID: id, Spec: spec})
	go func() {
		defer close(cr.done)
		defer cancel()
		res, env, err := co.Solve(ctx)
		cr.mu.Lock()
		cr.result, cr.envelope, cr.err = res, env, err
		cr.mu.Unlock()
		term := journal.Record{Type: journal.TypeTerminal, ID: id, State: "completed"}
		if err != nil {
			term.State, term.Error = "failed", err.Error()
		}
		if res != nil {
			sum, merr := json.Marshal(map[string]any{
				"energy": res.Energy, "flips": res.Flips, "epochs": res.Epochs,
			})
			if merr == nil {
				term.Summary = sum
			}
		}
		m.journalAppend(term)
	}()
	writeJSON(w, http.StatusAccepted, map[string]string{"id": id})
}

func (m *Manager) lookup(id string) (*clusterRun, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cr, ok := m.runs[id]
	return cr, ok
}

// statusBody snapshots a run for JSON.
func (cr *clusterRun) statusBody() map[string]any {
	cr.mu.Lock()
	defer cr.mu.Unlock()
	body := map[string]any{"id": cr.id, "epoch": cr.epoch, "elapsedNS": cr.elapsed}
	select {
	case <-cr.done:
		body["done"] = true
		if cr.err != nil {
			body["error"] = cr.err.Error()
		}
		if cr.result != nil {
			body["result"] = map[string]any{
				"energy":       cr.result.Energy,
				"modelNS":      cr.result.ModelNS,
				"stallNS":      cr.result.StallNS,
				"elapsedNS":    cr.result.ElapsedNS,
				"flips":        cr.result.Flips,
				"bitChanges":   cr.result.BitChanges,
				"trafficBytes": cr.result.TrafficBytes,
				"epochs":       cr.result.Epochs,
				"recovery":     cr.result.Recovery,
				"liveWorkers":  cr.result.LiveWorkers,
			}
		}
		body["checkpoint"] = len(cr.envelope) > 0
	default:
		body["done"] = false
	}
	return body
}

func (m *Manager) handleList(w http.ResponseWriter, _ *http.Request) {
	m.mu.Lock()
	ids := make([]string, 0, len(m.runs))
	for id := range m.runs {
		ids = append(ids, id)
	}
	m.mu.Unlock()
	sort.Strings(ids)
	writeJSON(w, http.StatusOK, map[string]any{"runs": ids})
}

func (m *Manager) handleStatus(w http.ResponseWriter, r *http.Request) {
	cr, ok := m.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("cluster: no run %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, cr.statusBody())
}

func (m *Manager) handleCancel(w http.ResponseWriter, r *http.Request) {
	cr, ok := m.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("cluster: no run %q", r.PathValue("id")))
		return
	}
	cr.cancel()
	writeJSON(w, http.StatusOK, map[string]string{"id": cr.id, "state": "cancelling"})
}

func (m *Manager) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	cr, ok := m.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("cluster: no run %q", r.PathValue("id")))
		return
	}
	select {
	case <-cr.done:
	default:
		writeError(w, http.StatusConflict, fmt.Errorf("cluster: run %q still in progress", cr.id))
		return
	}
	cr.mu.Lock()
	env := cr.envelope
	cr.mu.Unlock()
	if len(env) == 0 {
		writeError(w, http.StatusNotFound, fmt.Errorf("cluster: run %q has no checkpoint (it completed)", cr.id))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", cr.id+".ckpt.json"))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(env)
}

// handleTrace serves the run's merged federated trace in the Chrome
// trace-event format Perfetto loads. Live runs serve the events
// federated so far; finished runs the complete canonical merge.
func (m *Manager) handleTrace(w http.ResponseWriter, r *http.Request) {
	cr, ok := m.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("cluster: no run %q", r.PathValue("id")))
		return
	}
	if cr.co == nil || cr.co.TraceID() == 0 {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("cluster: run %q has no federated trace (submit with \"federate\": true)", cr.id))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", cr.id+".trace.json"))
	w.Header().Set("Cache-Control", "no-store")
	_ = obs.WriteChromeTrace(w, cr.co.FederatedEvents())
}

// handleFleetDiag serves the cluster-level diagnostics snapshot —
// straggler attribution, sync-vs-compute split, pull health.
func (m *Manager) handleFleetDiag(w http.ResponseWriter, r *http.Request) {
	cr, ok := m.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("cluster: no run %q", r.PathValue("id")))
		return
	}
	if cr.co == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("cluster: run %q predates this coordinator", cr.id))
		return
	}
	snap, federated := cr.co.FleetDiag()
	if !federated {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("cluster: run %q is not federated (submit with \"federate\": true)", cr.id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id":      cr.id,
		"traceID": fmt.Sprintf("%016x", cr.co.TraceID()),
		"fleet":   snap,
	})
}

// Recover folds replayed journal records with the cluster scope back
// into the run table after a coordinator restart. Cluster runs cannot
// be resumed across a coordinator death — worker slices are gone with
// their processes — so non-terminal runs become failed tombstones that
// name the restart as the cause; terminal runs become status-only
// tombstones. The id counter resumes past the highest journaled run so
// fresh submissions never collide. Returns (tombstones, failed).
func (m *Manager) Recover(recs []journal.Record) (int, int) {
	type state struct {
		terminal *journal.Record
	}
	states := make(map[string]*state)
	order := make([]string, 0, 8)
	maxSeq := 0
	for i := range recs {
		rec := recs[i]
		if rec.Scope != journal.ScopeCluster {
			continue
		}
		if n, ok := strings.CutPrefix(rec.ID, "cr-"); ok {
			if v, err := strconv.Atoi(n); err == nil && v > maxSeq {
				maxSeq = v
			}
		}
		s, ok := states[rec.ID]
		if !ok {
			s = &state{}
			states[rec.ID] = s
			order = append(order, rec.ID)
		}
		if rec.Type == journal.TypeTerminal {
			s.terminal = &rec
		}
	}

	tombstones, failed := 0, 0
	m.mu.Lock()
	if maxSeq > m.next {
		m.next = maxSeq
	}
	m.mu.Unlock()
	for _, id := range order {
		s := states[id]
		cr := &clusterRun{id: id, cancel: func() {}, done: make(chan struct{})}
		close(cr.done)
		switch {
		case s.terminal == nil:
			cr.err = errors.New("cluster: interrupted by coordinator restart")
			failed++
			m.journalAppend(journal.Record{
				Type: journal.TypeTerminal, ID: id,
				State: "failed", Error: cr.err.Error(),
			})
		case s.terminal.State == "failed":
			cr.err = errors.New(s.terminal.Error)
		}
		m.mu.Lock()
		if _, exists := m.runs[id]; !exists {
			m.runs[id] = cr
			tombstones++
		}
		m.mu.Unlock()
	}
	return tombstones, failed
}

// CancelAll cancels every live run and waits for them to settle — the
// drain path.
func (m *Manager) CancelAll() {
	m.mu.Lock()
	runs := make([]*clusterRun, 0, len(m.runs))
	for _, cr := range m.runs {
		runs = append(runs, cr)
	}
	m.mu.Unlock()
	for _, cr := range runs {
		cr.cancel()
	}
	for _, cr := range runs {
		<-cr.done
	}
}

// Active reports how many runs are still in flight.
func (m *Manager) Active() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, cr := range m.runs {
		select {
		case <-cr.done:
		default:
			n++
		}
	}
	return n
}

func msDuration(ms int) time.Duration { return time.Duration(ms) * time.Millisecond }
