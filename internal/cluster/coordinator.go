package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sync"
	"time"

	"mbrim/internal/checkpoint"
	"mbrim/internal/graph"
	"mbrim/internal/interconnect"
	"mbrim/internal/ising"
	"mbrim/internal/lattice"
	"mbrim/internal/metrics"
	"mbrim/internal/multichip"
	"mbrim/internal/obs"
)

// Config parameterizes a distributed solve. The solver knobs mirror
// multichip.Config's distributable subset; the rest is the robustness
// envelope.
type Config struct {
	// Workers are the worker base URLs ("http://host:port"). Slices
	// are assigned round-robin; with more workers than chips the
	// extras are warm spares that recovery reassigns onto first.
	Workers []string
	// Chips is the slice count (default: one per worker).
	Chips int
	// DurationNS is the model-time horizon. Required.
	DurationNS float64
	// EpochNS, FlipIntervalNS, Coordinated, Seed, Backend and the
	// induced-flip ramp mean exactly what they mean in
	// multichip.Config.
	EpochNS        float64
	FlipIntervalNS float64
	Coordinated    bool
	Seed           uint64
	Backend        string
	InducedFrom    float64
	InducedTo      float64
	// Channels / ChannelBytesPerNS configure the modeled hardware
	// fabric the coordinator mirrors, so the traffic/stall ledgers
	// match the in-process simulation bit for bit.
	Channels          int
	ChannelBytesPerNS float64
	// SampleEveryNS records an (elapsed ns, energy) trace point at
	// least every so many ns, like the in-process engine.
	SampleEveryNS float64

	// CheckpointEvery is the coordinated-checkpoint cadence in epochs
	// (default 8): every K barriers the coordinator collects post-sync
	// slice snapshots — the rollback point a worker loss recovers
	// from.
	CheckpointEvery int
	// RPCTimeout bounds each RPC attempt (default 5s).
	RPCTimeout time.Duration
	// MaxAttempts per RPC before a worker is declared dead (default 4;
	// doubled once when the worker's heartbeats still answer — slow,
	// not dead). RetryBudget bounds total retries per run (default
	// 256).
	MaxAttempts int
	RetryBudget int
	// BackoffBase/BackoffMax shape the jittered exponential backoff
	// between attempts (defaults 25ms / 1s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// HeartbeatEvery / HeartbeatMisses configure the /healthz prober
	// (defaults 250ms / 4 consecutive misses ⇒ dead).
	HeartbeatEvery  time.Duration
	HeartbeatMisses int
	// HandoffNSPerSpin is the modeled reprogramming stall charged per
	// spin of every slice that changes hosts during recovery (default
	// 10, the fault layer's repartition figure).
	HandoffNSPerSpin float64

	// OnEpoch, if non-nil, runs after every completed barrier — the
	// deterministic injection point chaos harnesses use (e.g.
	// blackhole a proxy at epoch 7).
	OnEpoch func(epoch int)

	// Federate enables fleet observability: the coordinator derives a
	// run-scoped trace ID, opens a span tree over the solve, threads
	// trace context on every RPC so workers emit chip_step/slice_sync
	// spans under it, pulls worker event streams each checkpoint round,
	// and scrapes worker metrics into worker-labeled fleet_* series.
	// The merged trace is served by FederatedEvents / TraceID, the
	// cluster diagnostics by FleetDiag. Off by default; the disabled
	// path costs one nil check per instrumentation site.
	Federate bool

	// Metrics receives cluster_* instruments; Tracer the run's event
	// stream (EpochSync, EnergySample, Fault, Recovery). Client, when
	// set, issues the HTTP requests (proxies, test transports).
	Metrics *obs.Registry
	Tracer  obs.Tracer
	Client  *http.Client
}

func (c Config) withDefaults() (Config, error) {
	if len(c.Workers) == 0 {
		return c, errors.New("cluster: no workers")
	}
	if c.DurationNS <= 0 || math.IsNaN(c.DurationNS) {
		return c, fmt.Errorf("cluster: DurationNS=%v", c.DurationNS)
	}
	if c.Chips == 0 {
		c.Chips = len(c.Workers)
	}
	if c.Chips < 1 {
		return c, fmt.Errorf("cluster: Chips=%d", c.Chips)
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 8
	}
	if c.RPCTimeout == 0 {
		c.RPCTimeout = 5 * time.Second
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 4
	}
	if c.RetryBudget == 0 {
		c.RetryBudget = 256
	}
	if c.BackoffBase == 0 {
		c.BackoffBase = 25 * time.Millisecond
	}
	if c.BackoffMax == 0 {
		c.BackoffMax = time.Second
	}
	if c.HeartbeatEvery == 0 {
		c.HeartbeatEvery = 250 * time.Millisecond
	}
	if c.HeartbeatMisses == 0 {
		c.HeartbeatMisses = 4
	}
	if c.HandoffNSPerSpin == 0 {
		c.HandoffNSPerSpin = 10
	}
	if c.Backend != "" {
		if _, err := lattice.ParseKind(c.Backend); err != nil {
			return c, fmt.Errorf("cluster: %w", err)
		}
	}
	return c, nil
}

// RecoveryStats ledgers the robustness layer's activity for one run.
type RecoveryStats struct {
	RPCRetries      int64   `json:"rpcRetries"`
	WorkerDeaths    int64   `json:"workerDeaths"`
	Recoveries      int64   `json:"recoveries"`
	ReplayedEpochs  int64   `json:"replayedEpochs"`
	HandoffBytes    float64 `json:"handoffBytes"`
	RecoveryStallNS float64 `json:"recoveryStallNS"`
	// Degraded reports that spares ran out and a survivor now hosts
	// more than one slice.
	Degraded bool `json:"degraded,omitempty"`
}

// AllWorkersDeadError reports that a solve ran out of live workers.
// Stats carries the recovery ledger as of the collapse, so callers can
// see what the fabric already absorbed (retries spent, prior worker
// deaths, replayed epochs) before the final loss — the run is
// unrecoverable but the accounting is intact.
type AllWorkersDeadError struct {
	Stats RecoveryStats
	Cause error
}

func (e *AllWorkersDeadError) Error() string {
	return fmt.Sprintf("cluster: no workers left (%v)", e.Cause)
}

func (e *AllWorkersDeadError) Unwrap() error { return e.Cause }

// Result reports a distributed solve. The solver fields carry the
// multichip.Result semantics; with no faults injected they are
// bit-identical to the in-process run's.
type Result struct {
	Spins                []int8
	Energy               float64
	ModelNS              float64
	StallNS              float64
	ElapsedNS            float64
	Flips                int64
	InducedFlips         int64
	BitChanges           int64
	InducedBitChanges    int64
	TrafficBytes         float64
	PeakDemandBytesPerNS float64
	Epochs               int
	Trace                []metrics.Point
	Recovery             RecoveryStats
	LiveWorkers          int
}

// clusterCheckpoint is the coordinator's rollback point: every slice's
// post-sync snapshot at one barrier plus the coordinator-side position.
type clusterCheckpoint struct {
	epoch             int
	modelNS           float64
	elapsedNS         float64
	nextNS            float64
	bitChanges        int64
	inducedBitChanges int64
	trace             []metrics.Point
	states            []*multichip.SliceState
	fabric            *interconnect.State
}

// Coordinator drives one distributed solve. Build with New, run with
// Solve (once).
type Coordinator struct {
	cfg   Config
	model *ising.Model
	n     int
	parts [][]int
	tr    *transport
	// tracer is the run's effective event sink: cfg.Tracer directly, or
	// — when federating — a stamping fan-out that also feeds the
	// federation ring and the fleet reducer. fed is nil unless
	// cfg.Federate.
	tracer obs.Tracer
	fed    *federation

	fabric *interconnect.Fabric
	runID  string
	gen    int   // slice-id incarnation, bumped each recovery
	assign []int // slice -> worker index

	epoch             int
	modelNS           float64
	elapsedNS         float64
	nextNS            float64
	bitChanges        int64
	inducedBitChanges int64
	trace             []metrics.Point
	spins             []int8 // global readout mirror
	flips             int64  // cumulative machine flips at last barrier
	inducedFlips      int64
	// pendingSync[d] is barrier `epoch`'s payload for slice d; synced
	// marks it already delivered via a /sync (checkpoint) round.
	pendingSync [][]multichip.PendingUpdate
	synced      bool
	lastCkpt    *clusterCheckpoint
	stats       RecoveryStats

	// Progress, if set, is called after every barrier with the epoch
	// and current elapsed ns (the cluster API's live status feed).
	Progress func(epoch int, elapsedNS float64)
}

// New validates the configuration and builds a coordinator for the
// model. runID scopes the slice ids on the workers; distinct runs must
// use distinct ids.
func New(m *ising.Model, runID string, cfg Config) (*Coordinator, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	n := m.N()
	if c.Chips > n {
		return nil, fmt.Errorf("cluster: %d chips for %d spins", c.Chips, n)
	}
	fab, err := interconnect.New(c.Chips, valueOr(c.Channels, 3), c.ChannelBytesPerNS)
	if err != nil {
		return nil, err
	}
	co := &Coordinator{
		cfg:    c,
		model:  m,
		n:      n,
		parts:  graph.BlockPartition(n, c.Chips),
		tr:     newTransport(c, c.Workers),
		fabric: fab,
		runID:  runID,
		assign: make([]int, c.Chips),
		spins:  make([]int8, n),
	}
	for s := range co.assign {
		co.assign[s] = s % len(c.Workers)
	}
	co.tracer = c.Tracer
	if c.Federate {
		co.fed = newFederation(c, runID, len(c.Workers))
		co.tracer = obs.StampTracer(obs.Fanout(co.fed.co, co.fed.fleet, c.Tracer),
			co.fed.traceID, "co")
		co.fed.spans = obs.NewSpanner(co.tracer)
	}
	return co, nil
}

func valueOr(v, def int) int {
	if v == 0 {
		return def
	}
	return v
}

// sliceID names slice s's current incarnation on its worker.
func (co *Coordinator) sliceID(s int) string {
	return fmt.Sprintf("%s-s%d-g%d", co.runID, s, co.gen)
}

func (co *Coordinator) emit(e obs.Event) {
	if co.tracer != nil {
		co.tracer.Emit(e)
	}
}

func (co *Coordinator) metric() *obs.Registry { return co.cfg.Metrics }

// Solve runs the distributed solve to completion. On context
// cancellation it returns the partial result, a PR-3 checkpoint
// envelope the in-process engine ("mbrim") can resume, and ctx.Err().
func (co *Coordinator) Solve(ctx context.Context) (*Result, []byte, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	co.recordPartitionQuality()
	co.emit(obs.Event{Kind: obs.RunStart, Label: "cluster", Seed: co.cfg.Seed, Count: int64(co.n)})
	co.tr.startProber()
	defer co.tr.stopProber()
	if co.fed != nil {
		co.fed.runSpan = co.fed.spans.Start("cluster_run", obs.Span{}, -1, 0)
		co.handshakeClocks(ctx)
	}
	if err := co.createSlices(ctx, nil); err != nil {
		if wd := asWorkerDead(err); wd != nil {
			if rerr := co.recover(ctx, wd); rerr != nil {
				return nil, nil, rerr
			}
		} else {
			return nil, nil, err
		}
	}
	for co.modelNS < co.cfg.DurationNS-1e-9 {
		select {
		case <-ctx.Done():
			return co.interrupted(ctx)
		default:
		}
		err := co.stepEpoch(ctx)
		if err == nil {
			continue
		}
		if wd := asWorkerDead(err); wd != nil {
			if rerr := co.recover(ctx, wd); rerr != nil {
				return nil, nil, rerr
			}
			continue
		}
		if ctx.Err() != nil {
			// The cancellation struck mid-step and surfaced through the
			// transport; this is an interrupt, not a failure.
			return co.interrupted(ctx)
		}
		return nil, nil, err
	}
	res := co.partialResult()
	co.finishFederation(res)
	co.recordRunMetrics(res)
	co.emit(obs.Event{Kind: obs.RunEnd, Label: "cluster", Seed: co.cfg.Seed,
		Value: res.Energy, ModelNS: res.ModelNS, Count: res.Flips})
	return res, nil, nil
}

// interrupted assembles the cancellation return: partial result plus a
// resume envelope when a consistent cut can still be captured. A
// cancellation that struck mid-epoch leaves a completable barrier, not
// a torn one — the step RPC is idempotent (workers replay the cached
// report) — so the in-flight epoch is finished under a private deadline
// before checkpointing.
func (co *Coordinator) interrupted(ctx context.Context) (*Result, []byte, error) {
	if co.modelNS < co.cfg.DurationNS-1e-9 {
		bg, cancel := context.WithTimeout(context.Background(), 2*co.cfg.RPCTimeout)
		_ = co.stepEpoch(bg) // best effort; failure falls back to lastCkpt
		cancel()
	}
	res := co.partialResult()
	env, err := co.interruptCheckpoint()
	// Final federation pull after the interrupt checkpoint, so the
	// merged trace covers the checkpoint round's sync spans too.
	co.finishFederation(res)
	if err != nil {
		// No consistent cut available (e.g. cancelled before the first
		// coordinated checkpoint with workers torn): surface the partial
		// result without resume bytes rather than masking the interrupt.
		return res, nil, ctx.Err()
	}
	return res, env, ctx.Err()
}

func asWorkerDead(err error) *workerDeadError {
	var wd *workerDeadError
	if errors.As(err, &wd) {
		return wd
	}
	return nil
}

// sliceConfig is the wire configuration every slice shares.
func (co *Coordinator) sliceConfig() SliceConfig {
	return SliceConfig{
		Chips:          co.cfg.Chips,
		EpochNS:        co.cfg.EpochNS,
		FlipIntervalNS: co.cfg.FlipIntervalNS,
		Coordinated:    co.cfg.Coordinated,
		Seed:           co.cfg.Seed,
		DurationNS:     co.cfg.DurationNS,
		Backend:        co.cfg.Backend,
		InducedFrom:    co.cfg.InducedFrom,
		InducedTo:      co.cfg.InducedTo,
	}
}

// createSlices PUTs every slice onto its assigned worker, restoring
// states[s] when provided (nil means create fresh).
func (co *Coordinator) createSlices(ctx context.Context, states []*multichip.SliceState) error {
	mw := ModelToWire(co.model)
	scfg := co.sliceConfig()
	return co.forEachSlice(ctx, func(ctx context.Context, s int) error {
		req := &CreateSliceRequest{Slice: s, Model: mw, Config: scfg}
		if states != nil {
			req.State = states[s]
		}
		if co.fed != nil {
			req.Trace = &TraceContext{
				RunID:    co.runID,
				TraceID:  co.fed.traceID,
				SpanBase: co.fed.spanBase(co.gen, s),
				Parent:   co.fed.runSpan.ID(),
			}
		}
		return co.tr.do(ctx, co.assign[s], http.MethodPut, "/worker/slices/"+co.sliceID(s), req, nil)
	})
}

// forEachSlice runs f for every slice concurrently and merges failures
// deterministically: worker-dead errors win (recovery must see the
// death even when another slice failed differently), then the lowest
// failing slice's error.
func (co *Coordinator) forEachSlice(ctx context.Context, f func(ctx context.Context, s int) error) error {
	errs := make([]error, co.cfg.Chips)
	var wg sync.WaitGroup
	for s := 0; s < co.cfg.Chips; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			errs[s] = f(ctx, s)
		}(s)
	}
	wg.Wait()
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if wd := asWorkerDead(err); wd != nil {
			return wd
		}
		if first == nil {
			first = err
		}
	}
	return first
}

// stepEpoch drives one epoch across all slices: step RPCs with sync
// payloads batched in, then the coordinator-side barrier — fabric
// accounting, belief bookkeeping, next payloads, checkpoint cadence.
func (co *Coordinator) stepEpoch(ctx context.Context) error {
	epochNS := math.Min(epochOrDefault(co.cfg.EpochNS), co.cfg.DurationNS-co.modelNS)
	target := co.epoch + 1
	reps := make([]*multichip.EpochReport, co.cfg.Chips)
	// The epoch interval opens before the step RPCs go out so its ID can
	// ride in StepRequest.Parent — workers parent their chip_step spans
	// under it. Per-slice RPC walls are measured in the fan-out
	// goroutines and recorded as step_rpc spans at the barrier, on the
	// orchestration goroutine, keeping span IDs deterministic.
	var epochSpan obs.Span
	var rpcWall []int64
	if co.fed != nil {
		epochSpan = co.fed.spans.Start("epoch", co.fed.runSpan, -1, co.modelNS)
		rpcWall = make([]int64, co.cfg.Chips)
	}
	err := co.forEachSlice(ctx, func(ctx context.Context, s int) error {
		req := &StepRequest{Epoch: target, Parent: epochSpan.ID()}
		if !co.synced && co.pendingSync != nil {
			req.Sync = co.pendingSync[s]
		}
		var resp StepResponse
		start := time.Now()
		if err := co.tr.do(ctx, co.assign[s], http.MethodPost, "/worker/slices/"+co.sliceID(s)+"/step", req, &resp); err != nil {
			return err
		}
		if rpcWall != nil {
			rpcWall[s] = time.Since(start).Nanoseconds()
		}
		if resp.Report == nil || resp.Report.Epoch != target || len(resp.Report.Spins) != len(co.parts[s]) {
			return fmt.Errorf("cluster: slice %d returned a malformed epoch report", s)
		}
		reps[s] = resp.Report
		return nil
	})
	if err != nil {
		epochSpan.End(co.modelNS, nil)
		return err
	}

	// Barrier bookkeeping, in ascending slice order — the same
	// accumulation order System.syncEpoch uses.
	co.epoch = target
	co.modelNS += epochNS
	var changes, induced int64
	co.flips, co.inducedFlips = 0, 0
	next := make([][]multichip.PendingUpdate, co.cfg.Chips)
	for s, rep := range reps {
		for li, g := range co.parts[s] {
			co.spins[g] = rep.Spins[li]
		}
		co.flips += rep.Flips
		co.inducedFlips += rep.InducedFlips
		if co.cfg.Chips > 1 && len(rep.Updates) > 0 {
			changes += int64(len(rep.Updates))
			for _, u := range rep.Updates {
				if u.Induced {
					induced++
				}
			}
			co.fabric.Record(s, interconnect.DeltaSyncBytes(len(rep.Updates), len(co.parts[s]), co.cfg.Chips-1), "sync")
			for d := 0; d < co.cfg.Chips; d++ {
				if d != s {
					next[d] = append(next[d], rep.Updates...)
				}
			}
		}
	}
	co.bitChanges += changes
	co.inducedBitChanges += induced
	co.pendingSync = next
	co.synced = false
	co.emit(obs.Event{Kind: obs.EpochSync, Epoch: co.epoch, ModelNS: co.modelNS,
		Count: changes, Induced: induced})

	stall := co.fabric.EndEpoch(epochNS)
	co.elapsedNS += epochNS + stall
	if co.fed != nil {
		for s := range reps {
			co.fed.spans.Complete("step_rpc", epochSpan, s,
				co.modelNS-epochNS, epochNS, rpcWall[s], nil)
		}
		co.fed.spans.Complete("fabric_settle", epochSpan, -1, co.modelNS, 0, 0,
			&obs.Event{StallNS: stall})
		epochSpan.End(co.modelNS, &obs.Event{Count: changes, StallNS: stall})
	}
	if co.metric() != nil {
		co.metric().Histogram("cluster.epoch_stall_ns").Observe(stall)
		co.metric().Counter("cluster.epochs").Inc()
	}
	if co.cfg.SampleEveryNS > 0 && co.elapsedNS >= co.nextNS {
		energy := co.model.Energy(co.spins)
		co.trace = append(co.trace, metrics.Point{X: co.elapsedNS, Y: energy})
		co.emit(obs.Event{Kind: obs.EnergySample, Epoch: co.epoch, ModelNS: co.elapsedNS, Value: energy})
		co.nextNS = co.elapsedNS + co.cfg.SampleEveryNS
	}
	if co.Progress != nil {
		co.Progress(co.epoch, co.elapsedNS)
	}
	if co.cfg.OnEpoch != nil {
		co.cfg.OnEpoch(co.epoch)
	}

	done := co.modelNS >= co.cfg.DurationNS-1e-9
	if !done && co.epoch%co.cfg.CheckpointEvery == 0 {
		if err := co.checkpointRound(ctx); err != nil {
			return err
		}
	}
	return nil
}

func epochOrDefault(e float64) float64 {
	if e == 0 {
		return 3.3 // the multichip default epoch
	}
	return e
}

// checkpointRound delivers the open barrier to every slice via /sync
// (so snapshots are post-sync — a genuine epoch-barrier cut) and saves
// the rollback point.
func (co *Coordinator) checkpointRound(ctx context.Context) error {
	states := make([]*multichip.SliceState, co.cfg.Chips)
	var ckSpan obs.Span
	var rpcWall []int64
	if co.fed != nil {
		ckSpan = co.fed.spans.Start("checkpoint_round", co.fed.runSpan, -1, co.modelNS)
		rpcWall = make([]int64, co.cfg.Chips)
	}
	err := co.forEachSlice(ctx, func(ctx context.Context, s int) error {
		req := &SyncRequest{Epoch: co.epoch, WantState: true, Parent: ckSpan.ID()}
		if !co.synced && co.pendingSync != nil {
			req.Sync = co.pendingSync[s]
		}
		var resp SyncResponse
		start := time.Now()
		if err := co.tr.do(ctx, co.assign[s], http.MethodPost, "/worker/slices/"+co.sliceID(s)+"/sync", req, &resp); err != nil {
			return err
		}
		if rpcWall != nil {
			rpcWall[s] = time.Since(start).Nanoseconds()
		}
		if resp.State == nil || resp.State.Epochs != co.epoch {
			return fmt.Errorf("cluster: slice %d returned a stale snapshot", s)
		}
		states[s] = resp.State
		return nil
	})
	if err != nil {
		ckSpan.End(co.modelNS, nil)
		return err
	}
	co.synced = true
	co.lastCkpt = &clusterCheckpoint{
		epoch:             co.epoch,
		modelNS:           co.modelNS,
		elapsedNS:         co.elapsedNS,
		nextNS:            co.nextNS,
		bitChanges:        co.bitChanges,
		inducedBitChanges: co.inducedBitChanges,
		trace:             append([]metrics.Point(nil), co.trace...),
		states:            states,
		fabric:            co.fabric.Snapshot(),
	}
	if co.metric() != nil {
		co.metric().Counter("cluster.checkpoints").Inc()
	}
	if co.fed != nil {
		for s := range states {
			co.fed.spans.Complete("sync_rpc", ckSpan, s, co.modelNS, 0, rpcWall[s], nil)
		}
		ckSpan.End(co.modelNS, nil)
		// Federation rides the checkpoint cadence: one pull + scrape
		// round per rollback point, plus the final catch-up at run end.
		co.federateRound(ctx)
	}
	return nil
}

// recover handles a declared-dead worker: reassign its slices onto the
// least-loaded survivors (spares absorb first), roll every slice back
// to the last coordinated checkpoint, and charge the hand-off and the
// replayed work into the ledgers. The replay is deterministic, so the
// final trajectory is bit-identical to a run that never lost the
// worker.
func (co *Coordinator) recover(ctx context.Context, wd *workerDeadError) error {
	co.stats.WorkerDeaths++
	co.emit(obs.Event{Kind: obs.Fault, Label: "worker-loss", Epoch: co.epoch, Chip: wd.worker})
	if co.metric() != nil {
		co.metric().Counter("cluster.worker_deaths").Inc()
	}

	survivors := make([]int, 0, len(co.cfg.Workers))
	for wi := range co.cfg.Workers {
		if co.tr.alive(wi) {
			survivors = append(survivors, wi)
		}
	}
	if len(survivors) == 0 {
		stats := co.stats
		stats.RPCRetries = co.tr.retries.Load()
		return &AllWorkersDeadError{Stats: stats, Cause: wd}
	}

	// Reassign every slice hosted on a dead worker to the survivor
	// carrying the fewest slices, ties to the lowest worker index —
	// deterministic, and spares (load 0) absorb first.
	load := make([]int, len(co.cfg.Workers))
	for _, wi := range co.assign {
		if co.tr.alive(wi) {
			load[wi]++
		}
	}
	moved := make([]bool, co.cfg.Chips)
	movedSpins := 0
	for s, wi := range co.assign {
		if co.tr.alive(wi) {
			continue
		}
		best := survivors[0]
		for _, cand := range survivors[1:] {
			if load[cand] < load[best] {
				best = cand
			}
		}
		co.assign[s] = best
		load[best]++
		moved[s] = true
		movedSpins += len(co.parts[s])
	}
	for _, wi := range survivors {
		if load[wi] > 1 {
			co.stats.Degraded = true
		}
	}

	// Roll back: every slice (survivors included) returns to the last
	// coordinated checkpoint, or to a fresh start when none exists yet.
	var states []*multichip.SliceState
	rollbackFrom := co.epoch
	if ck := co.lastCkpt; ck != nil {
		states = ck.states
		co.epoch = ck.epoch
		co.modelNS = ck.modelNS
		co.elapsedNS = ck.elapsedNS
		co.nextNS = ck.nextNS
		co.bitChanges = ck.bitChanges
		co.inducedBitChanges = ck.inducedBitChanges
		co.trace = append([]metrics.Point(nil), ck.trace...)
		if err := co.fabric.Restore(ck.fabric); err != nil {
			return fmt.Errorf("cluster: %w", err)
		}
		co.flips, co.inducedFlips = 0, 0
		for _, st := range states {
			for li, g := range st.State.Owned {
				co.spins[g] = st.State.Machine.Spins[li]
			}
			co.flips += st.State.Machine.Flips
			co.inducedFlips += st.State.Machine.Induced
		}
		co.synced = true // checkpoint states are post-sync
	} else {
		co.epoch = 0
		co.modelNS = 0
		co.elapsedNS = 0
		co.nextNS = 0
		co.bitChanges = 0
		co.inducedBitChanges = 0
		co.flips, co.inducedFlips = 0, 0
		co.trace = nil
		fab, err := interconnect.New(co.cfg.Chips, valueOr(co.cfg.Channels, 3), co.cfg.ChannelBytesPerNS)
		if err != nil {
			return err
		}
		co.fabric = fab
		co.synced = false
	}
	co.pendingSync = nil
	replayed := int64(rollbackFrom - co.epoch)
	co.stats.ReplayedEpochs += replayed

	// Charge the recovery honestly: a full-state resync for every slice
	// that changed hosts, plus reprogramming stall — the same policy
	// the modeled fault layer applies to its repartitions.
	handoffBytes := 0.0
	for s := range co.assign {
		if moved[s] {
			b := interconnect.DeltaSyncBytes(len(co.parts[s]), len(co.parts[s]), 1)
			co.fabric.Record(s, b, "handoff")
			handoffBytes += b
		}
	}
	recoveryStall := 0.0
	if movedSpins > 0 {
		recoveryStall = float64(movedSpins) * co.cfg.HandoffNSPerSpin
		co.fabric.AddStall(recoveryStall)
		co.elapsedNS += recoveryStall
	}
	co.stats.RecoveryStallNS += recoveryStall
	co.stats.HandoffBytes += handoffBytes

	// Re-create every slice under a fresh incarnation.
	co.gen++
	if err := co.createSlices(ctx, states); err != nil {
		if next := asWorkerDead(err); next != nil {
			// Another worker died during recovery: recurse. The survivor
			// set shrinks monotonically, so this terminates.
			return co.recover(ctx, next)
		}
		return err
	}
	co.stats.Recoveries++
	co.emit(obs.Event{Kind: obs.Recovery, Label: "rollback-replay", Epoch: co.epoch,
		Chip: wd.worker, Count: replayed, StallNS: recoveryStall})
	if co.fed != nil {
		// Zero-width marker on the merged trace: where the rollback
		// landed, how many epochs replay, what stall was charged.
		co.fed.spans.Complete("recovery", co.fed.runSpan, wd.worker, co.modelNS, 0, 0,
			&obs.Event{Count: replayed, StallNS: recoveryStall})
	}
	if co.metric() != nil {
		co.metric().Counter("cluster.recoveries").Inc()
		co.metric().Counter("cluster.replayed_epochs").Add(replayed)
		co.metric().Gauge("cluster.recovery_stall_ns").Add(recoveryStall)
		co.metric().Gauge("cluster.handoff_bytes").Add(handoffBytes)
		co.metric().Gauge("cluster.live_workers").Set(float64(len(survivors)))
	}
	return nil
}

// partialResult assembles the result at the current barrier.
func (co *Coordinator) partialResult() *Result {
	res := &Result{
		ModelNS:              co.modelNS,
		StallNS:              co.fabric.StallNS(),
		ElapsedNS:            co.elapsedNS,
		Flips:                co.flips,
		InducedFlips:         co.inducedFlips,
		BitChanges:           co.bitChanges,
		InducedBitChanges:    co.inducedBitChanges,
		TrafficBytes:         co.fabric.TotalBytes(),
		PeakDemandBytesPerNS: co.fabric.PeakDemand(),
		Epochs:               co.epoch,
		Trace:                append([]metrics.Point(nil), co.trace...),
		Recovery:             co.stats,
	}
	res.Recovery.RPCRetries = co.tr.retries.Load()
	res.Spins = append([]int8(nil), co.spins...)
	res.Energy = co.model.Energy(res.Spins)
	for wi := range co.cfg.Workers {
		if co.tr.alive(wi) {
			res.LiveWorkers++
		}
	}
	return res
}

// interruptCheckpoint collects post-sync snapshots at the current
// barrier and assembles a PR-3 envelope resumable by the in-process
// concurrent engine. The run context is already cancelled, so the
// collection round runs under its own deadline.
func (co *Coordinator) interruptCheckpoint() ([]byte, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*co.cfg.RPCTimeout)
	defer cancel()
	if err := co.checkpointRound(ctx); err != nil && co.lastCkpt == nil {
		return nil, err
	}
	// If collection failed but an earlier rollback point exists, fall
	// back to it — older, but still a consistent cut.
	ck := co.lastCkpt
	mck := &multichip.Checkpoint{
		Mode:              multichip.ModeConcurrent,
		DurationNS:        co.cfg.DurationNS,
		EpochsDone:        ck.epoch,
		ModelNS:           ck.modelNS,
		ElapsedNS:         ck.elapsedNS,
		NextSampleNS:      ck.nextNS,
		BitChanges:        ck.bitChanges,
		InducedBitChanges: ck.inducedBitChanges,
		Trace:             append([]metrics.Point(nil), ck.trace...),
		Chips:             make([]multichip.ChipState, len(ck.states)),
		ReceiverBelief:    make([][]int8, len(ck.states)),
		InduceRNG:         make([][4]uint64, len(ck.states)),
		Fabric:            ck.fabric,
	}
	for i, st := range ck.states {
		mck.Chips[i] = st.State
		mck.ReceiverBelief[i] = st.Belief
		mck.InduceRNG[i] = st.InduceRNG
	}
	return checkpoint.Encode(&checkpoint.File{
		Engine:    "mbrim", // core.MBRIMConcurrent
		Seed:      co.cfg.Seed,
		N:         co.n,
		ModelHash: checkpoint.HashModel(co.model),
		Multichip: mck,
	})
}

// recordPartitionQuality publishes the partition-quality gauges for
// the run's slicing.
func (co *Coordinator) recordPartitionQuality() {
	if co.metric() == nil {
		return
	}
	backend := lattice.Auto
	if co.cfg.Backend != "" {
		backend, _ = lattice.ParseKind(co.cfg.Backend)
	}
	q := metrics.MeasurePartition(co.model.View(backend), co.parts)
	m := co.metric()
	m.SetHelp("cluster.partition_cut_weight_fraction",
		"fraction of total |J| weight crossing slice boundaries")
	m.SetHelp("cluster.partition_boundary_spin_fraction",
		"fraction of spins with at least one cross-slice coupling")
	m.SetHelp("cluster.partition_imbalance",
		"largest slice size over mean slice size, minus one")
	m.Gauge("cluster.partition_cut_weight_fraction").Set(q.CutWeightFraction)
	m.Gauge("cluster.partition_boundary_spin_fraction").Set(q.BoundarySpinFraction)
	m.Gauge("cluster.partition_imbalance").Set(q.Imbalance)
	m.Gauge("cluster.partition_cut_edges").Set(float64(q.CutEdges))
}

// recordRunMetrics publishes a finished run's totals.
func (co *Coordinator) recordRunMetrics(res *Result) {
	m := co.metric()
	if m == nil {
		return
	}
	m.SetHelp("cluster.solves", "completed cluster solves")
	m.Counter("cluster.solves").Inc()
	m.Counter("cluster.bit_changes").Add(res.BitChanges)
	m.Counter("cluster.rpc_retries").Add(res.Recovery.RPCRetries)
	m.Gauge("cluster.stall_ns").Add(res.StallNS)
	m.Gauge("cluster.traffic_bytes").Add(res.TrafficBytes)
	m.Gauge("cluster.live_workers").Set(float64(res.LiveWorkers))
}
