package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mbrim/internal/multichip"
	"mbrim/internal/obs"
)

// The A/B pair behind BENCH_cluster.json: the identical seeded
// concurrent-mode solve run in process (multichip.System, the ground
// truth every cluster test compares against) versus distributed across
// loopback worker nodes. The delta is the epoch-sync overhead of the
// distributed fabric — one JSON step RPC per slice per epoch plus the
// coordinated-checkpoint rounds — with the network itself at loopback
// cost. Both sides produce bit-identical results (pinned by
// TestClusterMatchesInProcess), so the comparison is pure wall time.

func benchWorkers(b *testing.B, k int) []string {
	b.Helper()
	urls := make([]string, k)
	for i := 0; i < k; i++ {
		mux := http.NewServeMux()
		NewWorker(nil, 0).Routes(mux)
		mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
			w.WriteHeader(http.StatusOK)
		})
		srv := httptest.NewServer(mux)
		b.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	return urls
}

func benchClusterConfig(workers []string, chips int) Config {
	return Config{
		Workers:         workers,
		Chips:           chips,
		Seed:            7,
		DurationNS:      50,
		RPCTimeout:      5 * time.Second,
		HeartbeatEvery:  50 * time.Millisecond,
		HeartbeatMisses: 4,
	}
}

// benchMetricWorkers is benchWorkers with a live registry per worker
// and /metrics.json served, so a federated bench pays the real scrape
// cost instead of fast-failing on a missing endpoint.
func benchMetricWorkers(b *testing.B, k int) []string {
	b.Helper()
	urls := make([]string, k)
	for i := 0; i < k; i++ {
		wreg := obs.NewRegistry()
		mux := http.NewServeMux()
		NewWorker(wreg, 0).Routes(mux)
		mux.Handle("GET /metrics.json", wreg)
		mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
			w.WriteHeader(http.StatusOK)
		})
		srv := httptest.NewServer(mux)
		b.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	return urls
}

// BenchmarkFederation is the A/B pair behind BENCH_fleetobs.json: the
// identical seeded distributed solve with fleet observability off
// (Config.Federate=false — every federation hook is a nil guard) versus
// on (trace context on every RPC, worker rings populated, events and
// metrics pulled back on the checkpoint cadence, fleet reducer fed).
// The off side must stay within noise of the pre-federation fabric;
// the on side quantifies the pull overhead.
func BenchmarkFederation(b *testing.B) {
	const n = 128
	m := kmodel(n, 7)
	for _, federate := range []bool{false, true} {
		name := "off"
		if federate {
			name = "on"
		}
		b.Run("federate="+name, func(b *testing.B) {
			workers := benchMetricWorkers(b, 2)
			for i := 0; i < b.N; i++ {
				cfg := benchClusterConfig(workers, 2)
				cfg.CheckpointEvery = 4
				cfg.Federate = federate
				co, err := New(m, fmt.Sprintf("bench-fed-%s-%d", name, i), cfg)
				if err != nil {
					b.Fatal(err)
				}
				r, _, err := co.Solve(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				if r.Energy >= 0 {
					b.Fatal("solve went nowhere")
				}
			}
		})
	}
}

func BenchmarkEpochSync(b *testing.B) {
	const n = 128
	m := kmodel(n, 7)
	for _, chips := range []int{2, 4} {
		cfg := benchClusterConfig(nil, chips)
		b.Run(fmt.Sprintf("inprocess/chips=%d", chips), func(b *testing.B) {
			mcfg := multichip.Config{Chips: cfg.Chips, Seed: cfg.Seed}
			for i := 0; i < b.N; i++ {
				sys := multichip.MustSystem(m, mcfg)
				if r := sys.RunConcurrent(cfg.DurationNS); r.Energy >= 0 {
					b.Fatal("solve went nowhere")
				}
			}
		})
		b.Run(fmt.Sprintf("cluster/workers=%d", chips), func(b *testing.B) {
			workers := benchWorkers(b, chips)
			for i := 0; i < b.N; i++ {
				cfg := benchClusterConfig(workers, chips)
				co, err := New(m, fmt.Sprintf("bench-%d-%d", chips, i), cfg)
				if err != nil {
					b.Fatal(err)
				}
				r, _, err := co.Solve(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				if r.Energy >= 0 {
					b.Fatal("solve went nowhere")
				}
			}
		})
	}
}
