package chaosproxy

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func upstream(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok")
	}))
	t.Cleanup(srv.Close)
	return srv
}

// fates drives n requests through a fresh proxy with cfg and records
// each one's observable outcome.
func fates(t *testing.T, cfg Config, n int) []string {
	t.Helper()
	p, err := New(upstream(t).URL, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(p)
	defer srv.Close()
	client := &http.Client{Timeout: 2 * time.Second}
	out := make([]string, n)
	for i := range out {
		resp, err := client.Get(srv.URL + "/x")
		switch {
		case err != nil:
			out[i] = "drop"
		case resp.StatusCode == http.StatusServiceUnavailable:
			out[i] = "error"
			resp.Body.Close()
		default:
			out[i] = "pass"
			resp.Body.Close()
		}
	}
	return out
}

// TestDeterministicSchedule pins the seed-hashed fate schedule: the
// same seed over the same request sequence injects the same faults,
// and a different seed injects different ones.
func TestDeterministicSchedule(t *testing.T) {
	cfg := Config{Seed: 7, DropRate: 0.2, ErrorRate: 0.2}
	a := fates(t, cfg, 40)
	b := fates(t, cfg, 40)
	injected := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d: run A %s, run B %s — schedule not deterministic", i, a[i], b[i])
		}
		if a[i] != "pass" {
			injected++
		}
	}
	if injected == 0 {
		t.Fatal("no faults injected at 40% combined rate over 40 requests")
	}
	cfg.Seed = 8
	c := fates(t, cfg, 40)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical schedules")
	}
}

// TestBlackhole checks the kill switch: every request fails while set,
// and service resumes when cleared.
func TestBlackhole(t *testing.T) {
	p, err := New(upstream(t).URL, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(p)
	defer srv.Close()
	client := &http.Client{Timeout: 2 * time.Second}

	if _, err := client.Get(srv.URL + "/healthz"); err != nil {
		t.Fatalf("pre-blackhole request failed: %v", err)
	}
	p.Blackhole(true)
	for i := 0; i < 3; i++ {
		if resp, err := client.Get(srv.URL + "/healthz"); err == nil {
			resp.Body.Close()
			t.Fatal("blackholed proxy answered a request")
		}
	}
	p.Blackhole(false)
	resp, err := client.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatalf("post-blackhole request failed: %v", err)
	}
	resp.Body.Close()

	st := p.Stats()
	if st.Blackholed != 3 || st.Forwarded < 2 {
		t.Errorf("stats: %+v, want 3 blackholed and >=2 forwarded", st)
	}
}

// TestDelay checks injected latency is bounded and the request still
// succeeds.
func TestDelay(t *testing.T) {
	p, err := New(upstream(t).URL, Config{Seed: 3, DelayRate: 1, Delay: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(p)
	defer srv.Close()
	start := time.Now()
	resp, err := http.Get(srv.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Errorf("request took %v, want >= 30ms of injected delay", d)
	}
	if st := p.Stats(); st.Delayed != 1 {
		t.Errorf("stats: %+v, want 1 delayed", st)
	}
}
