// Package chaosproxy is an in-process fault-injecting HTTP proxy for
// exercising the cluster robustness layer. It forwards requests to one
// upstream worker and injects failures — added latency, 5xx responses,
// dropped (connection-reset) requests, and a blackhole switch that
// kills the worker from the coordinator's point of view — from a
// deterministic schedule: each request's fate is hashed from the proxy
// seed and a request counter, the same seed-hashed-fates philosophy as
// the modeled fault layer (internal/fault). Two runs over the same
// request sequence inject the same faults.
package chaosproxy

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sync"
	"sync/atomic"
	"time"
)

// Config sets the injection rates. All rates are probabilities in
// [0, 1], evaluated per request in order: drop, error, delay.
type Config struct {
	// Seed drives the deterministic fate schedule.
	Seed uint64
	// DropRate resets the connection without a response — what a
	// crashed or partitioned worker looks like mid-request.
	DropRate float64
	// ErrorRate answers 503 without forwarding.
	ErrorRate float64
	// DelayRate stalls the request by Delay before forwarding.
	DelayRate float64
	Delay     time.Duration
}

// Stats counts what the proxy did.
type Stats struct {
	Requests   int64 `json:"requests"`
	Forwarded  int64 `json:"forwarded"`
	Dropped    int64 `json:"dropped"`
	Errored    int64 `json:"errored"`
	Delayed    int64 `json:"delayed"`
	Blackholed int64 `json:"blackholed"`
}

// Proxy fronts one upstream. Use httptest.NewServer(proxy) or mount it
// on any server; point the coordinator's worker URL at it.
type Proxy struct {
	cfg   Config
	rp    *httputil.ReverseProxy
	seq   atomic.Uint64
	black atomic.Bool
	mu    sync.Mutex
	st    Stats
}

// New builds a proxy for the upstream base URL.
func New(upstream string, cfg Config) (*Proxy, error) {
	u, err := url.Parse(upstream)
	if err != nil {
		return nil, fmt.Errorf("chaosproxy: upstream %q: %w", upstream, err)
	}
	p := &Proxy{cfg: cfg}
	p.rp = &httputil.ReverseProxy{
		Rewrite: func(r *httputil.ProxyRequest) { r.SetURL(u) },
		ErrorHandler: func(w http.ResponseWriter, _ *http.Request, _ error) {
			w.WriteHeader(http.StatusBadGateway)
		},
	}
	return p, nil
}

// Blackhole toggles total loss: while set, every request (heartbeats
// included) is dropped — the coordinator's view of a dead worker. The
// chaos harness flips this at a chosen epoch to stage a worker kill.
func (p *Proxy) Blackhole(on bool) { p.black.Store(on) }

// Stats returns a copy of the counters.
func (p *Proxy) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.st
}

func (p *Proxy) count(f func(*Stats)) {
	p.mu.Lock()
	f(&p.st)
	p.mu.Unlock()
}

// splitmix64 matches the repo's stateless hash (internal/rng).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fate draws this request's uniform in [0, 1).
func (p *Proxy) fate(seq uint64) float64 {
	h := splitmix64(p.cfg.Seed ^ seq)
	return float64(h>>11) / float64(1<<53)
}

// drop severs the connection without a response. Hijack gives a raw
// close (RST-like from the client's view); non-hijackable writers
// (e.g. HTTP/2) fall back to panicking with ErrAbortHandler, which
// also aborts the response without a reply.
func (p *Proxy) drop(w http.ResponseWriter, _ *http.Request) {
	if hj, ok := w.(http.Hijacker); ok {
		conn, _, err := hj.Hijack()
		if err == nil {
			if tc, ok := conn.(*net.TCPConn); ok {
				tc.SetLinger(0) // RST instead of FIN
			}
			conn.Close()
			return
		}
	}
	panic(http.ErrAbortHandler)
}

func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	seq := p.seq.Add(1)
	p.count(func(s *Stats) { s.Requests++ })
	if p.black.Load() {
		p.count(func(s *Stats) { s.Blackholed++ })
		io.Copy(io.Discard, r.Body)
		p.drop(w, r)
		return
	}
	u := p.fate(seq)
	switch {
	case u < p.cfg.DropRate:
		p.count(func(s *Stats) { s.Dropped++ })
		io.Copy(io.Discard, r.Body)
		p.drop(w, r)
		return
	case u < p.cfg.DropRate+p.cfg.ErrorRate:
		p.count(func(s *Stats) { s.Errored++ })
		io.Copy(io.Discard, r.Body)
		http.Error(w, "chaosproxy: injected failure", http.StatusServiceUnavailable)
		return
	case u < p.cfg.DropRate+p.cfg.ErrorRate+p.cfg.DelayRate && p.cfg.Delay > 0:
		p.count(func(s *Stats) { s.Delayed++ })
		select {
		case <-time.After(p.cfg.Delay):
		case <-r.Context().Done():
			return
		}
	}
	p.count(func(s *Stats) { s.Forwarded++ })
	p.rp.ServeHTTP(w, r)
}
