package cluster

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"mbrim/internal/obs"
)

// TestMain fails the package (only after an otherwise-green run) when
// coordinator or worker goroutines outlive their tests. Heartbeat
// loops, step RPC retries, and httptest servers must all be reaped by
// the time a test returns; a leak here means a supervision bug.
func TestMain(m *testing.M) {
	flag.Parse()
	base := runtime.NumGoroutine() + 2 // tolerate test-runner housekeeping
	code := m.Run()
	if code == 0 {
		if err := obs.CheckGoroutineLeaks(base, 5*time.Second); err != nil {
			fmt.Fprintln(os.Stderr, err)
			code = 1
		}
	}
	os.Exit(code)
}
