// Package cluster distributes one Ising problem across mbrimd worker
// nodes over HTTP — ROADMAP item 1, the paper's multi-chip slicing
// (vertical slices + shadow spins, Sec 5.4) realized across processes
// instead of across modeled chips. A Coordinator partitions the model
// exactly like multichip.NewSystem, hosts no dynamics itself, and
// drives one multichip.Slice per chip on remote workers in epoch
// lockstep; shadow-spin exchange and epoch sync are one batched wire
// message per slice per epoch.
//
// The robustness layer is the point: every RPC runs under a deadline
// with jittered exponential backoff and a per-run retry budget; a
// background prober heartbeats /healthz so the coordinator can tell a
// slow worker (RPCs time out, heartbeats answer → keep retrying) from
// a dead one (heartbeats miss → recover); recovery reassigns a lost
// worker's slices to survivors and rolls every slice back to the last
// coordinated checkpoint, replaying deterministically — the final
// trajectory is bit-identical to a fault-free run, and the replayed
// work and hand-off reprogramming are charged into the stall/traffic
// ledgers the way the modeled fault layer charges its recoveries.
//
// Parity contract: with no faults injected, a cluster solve equals
// System.RunConcurrent for the same (model, config, seed) bit for
// bit, including fabric traffic, stall and peak-demand accounting;
// the interrupt checkpoint is a standard PR-3 envelope the in-process
// engine resumes.
package cluster

import (
	"fmt"

	"mbrim/internal/ising"
	"mbrim/internal/lattice"
	"mbrim/internal/multichip"
	"mbrim/internal/obs"
	"mbrim/internal/sched"
)

// Wire format notes: everything is JSON. encoding/json prints float64
// at shortest round-trip precision, so couplings, biases and μ cross
// the wire bit-exactly — the same property the PR-3 checkpoint format
// relies on.

// ModelWire carries an Ising model: the upper triangle's nonzero
// couplings as [i, j, J] rows (0-based), plus biases and μ.
type ModelWire struct {
	N         int          `json:"n"`
	Mu        float64      `json:"mu,omitempty"`
	Biases    []float64    `json:"biases,omitempty"`
	Couplings [][3]float64 `json:"couplings"`
}

// ModelToWire encodes m for transport, scanning the CSR view so sparse
// problems pay O(nnz), not O(N²).
func ModelToWire(m *ising.Model) *ModelWire {
	n := m.N()
	w := &ModelWire{N: n, Mu: m.Mu()}
	for _, h := range m.Biases() {
		if h != 0 {
			w.Biases = append([]float64(nil), m.Biases()...)
			break
		}
	}
	view := m.View(lattice.CSR)
	for i := 0; i < n; i++ {
		view.Scan(i, func(j int, v float64) {
			if j > i {
				w.Couplings = append(w.Couplings, [3]float64{float64(i), float64(j), v})
			}
		})
	}
	return w
}

// Build reconstructs the model. Wire bytes are untrusted: every index
// is validated, failures are errors.
func (w *ModelWire) Build() (*ising.Model, error) {
	if w == nil {
		return nil, fmt.Errorf("cluster: nil model")
	}
	if w.N < 1 {
		return nil, fmt.Errorf("cluster: model n=%d", w.N)
	}
	if w.Biases != nil && len(w.Biases) != w.N {
		return nil, fmt.Errorf("cluster: model has %d biases for n=%d", len(w.Biases), w.N)
	}
	m := ising.NewModel(w.N)
	m.SetMu(w.Mu)
	for i, h := range w.Biases {
		m.SetBias(i, h)
	}
	for r, c := range w.Couplings {
		i, j := int(c[0]), int(c[1])
		if i < 0 || j <= i || j >= w.N {
			return nil, fmt.Errorf("cluster: model coupling %d has indices (%d,%d) for n=%d", r, i, j, w.N)
		}
		m.SetCoupling(i, j, c[2])
	}
	return m, nil
}

// SliceConfig is the run configuration a worker needs to host one
// slice. It is the distributable subset of multichip.Config: the brim
// dynamics use their defaults, and the induced-flip schedule is the
// linear ramp (the repo default; InducedFrom = InducedTo = 0 selects
// the default 0.08 → 0 decay).
type SliceConfig struct {
	Chips          int     `json:"chips"`
	EpochNS        float64 `json:"epochNS,omitempty"`
	FlipIntervalNS float64 `json:"flipIntervalNS,omitempty"`
	Coordinated    bool    `json:"coordinated,omitempty"`
	Seed           uint64  `json:"seed"`
	DurationNS     float64 `json:"durationNS"`
	Backend        string  `json:"backend,omitempty"`
	InducedFrom    float64 `json:"inducedFrom,omitempty"`
	InducedTo      float64 `json:"inducedTo,omitempty"`
}

// multichipConfig translates the wire configuration into the engine's.
func (c SliceConfig) multichipConfig() (multichip.Config, error) {
	backend := lattice.Auto
	if c.Backend != "" {
		var err error
		if backend, err = lattice.ParseKind(c.Backend); err != nil {
			return multichip.Config{}, fmt.Errorf("cluster: %w", err)
		}
	}
	var induced sched.Schedule
	if c.InducedFrom != 0 || c.InducedTo != 0 {
		induced = sched.Linear{From: c.InducedFrom, To: c.InducedTo}
	}
	return multichip.Config{
		Chips:          c.Chips,
		EpochNS:        c.EpochNS,
		FlipIntervalNS: c.FlipIntervalNS,
		InducedFlip:    induced,
		Coordinated:    c.Coordinated,
		Seed:           c.Seed,
		Backend:        backend,
	}, nil
}

// TraceContext threads distributed span parentage across the wire —
// the fleet-observability counterpart of the in-process Spanner parent
// links. The coordinator sends it on slice creation to bind the slice
// to its run: RunID and TraceID identify the run's single federated
// trace, SpanBase hands the slice a disjoint span-ID range (the worker
// allocates interval IDs from SpanBase+1 up, so streams merged by the
// federation collector never collide), and Parent is the coordinator
// interval the slice's spans nest under. Step and sync requests then
// carry only the per-RPC Parent — the coordinator's current epoch or
// checkpoint-round span — so worker chip_step/slice_sync intervals
// open as children of the coordinator's run tree. Absent trace context
// (nil pointer, zero Parent) disables worker-side span emission for
// the slice or RPC: the federation-off path costs one nil check.
type TraceContext struct {
	RunID    string `json:"runID,omitempty"`
	TraceID  uint64 `json:"traceID,omitempty"`
	SpanBase uint64 `json:"spanBase,omitempty"`
	Parent   uint64 `json:"parentSpan,omitempty"`
}

// ClockResponse is the GET /worker/clock body: the worker's wall clock
// at handling time. The coordinator brackets the RPC with its own
// clock reads and estimates the worker's clock offset as
// NowNS − (t₀+t₁)/2 (Cristian's algorithm), which the federation
// collector subtracts from fetched WallNS stamps so all wall times in
// a merged trace sit on the coordinator's clock. Model time — the
// trace layout axis — is deterministic and needs no alignment; the
// offset only aligns the advisory wall fields.
type ClockResponse struct {
	NowNS int64 `json:"nowNS"`
}

// EventsPage is the GET /worker/events?since=N body: one page of the
// worker's observability ring, fetched by the coordinator's federation
// collector. Events carries the retained events with emission ordinal
// > since (oldest first, obs.Ring.EventsSince semantics), First the
// ordinal of the first returned event, and Total the ring's lifetime
// emission count — First > since+1 exposes an eviction gap, and Total
// is the cursor for the next page.
type EventsPage struct {
	Events []obs.Event `json:"events,omitempty"`
	First  int64       `json:"first"`
	Total  int64       `json:"total"`
}

// CreateSliceRequest is the PUT /worker/slices/{id} body: host this
// chip of the problem. Re-PUT with the same id replaces the slice —
// creation is idempotent, so a retried or re-assigned create converges.
// State, when set, restores a hand-off snapshot after creation. Trace,
// when set, enables worker-side span emission for the slice under the
// coordinator's run tree.
type CreateSliceRequest struct {
	Slice  int                   `json:"slice"`
	Model  *ModelWire            `json:"model"`
	Config SliceConfig           `json:"config"`
	State  *multichip.SliceState `json:"state,omitempty"`
	Trace  *TraceContext         `json:"trace,omitempty"`
}

// SliceStatus reports a hosted slice's position.
type SliceStatus struct {
	ID     string  `json:"id"`
	Slice  int     `json:"slice"`
	Epoch  int     `json:"epoch"`
	Synced int     `json:"synced"`
	Model  float64 `json:"modelNS"`
	Done   bool    `json:"done"`
}

// StepRequest is the POST /worker/slices/{id}/step body: integrate
// epoch Epoch (1-based, must be the slice's next). Sync carries the
// previous barrier's cross-chip updates, batched into this message so
// epoch sync and shadow exchange are one round trip; it must be absent
// when the coordinator already delivered that barrier via /sync (a
// checkpoint round). Repeating the last completed epoch returns the
// cached response — the idempotency retried RPCs need.
type StepRequest struct {
	Epoch int                       `json:"epoch"`
	Sync  []multichip.PendingUpdate `json:"sync,omitempty"`
	// Parent is the coordinator's epoch interval ID: the worker's
	// chip_step span for this epoch nests under it. Zero when the run
	// is not federated.
	Parent uint64 `json:"parentSpan,omitempty"`
}

// StepResponse is the worker's epoch report.
type StepResponse struct {
	Report *multichip.EpochReport `json:"report"`
}

// SyncRequest is the POST /worker/slices/{id}/sync body: deliver
// barrier Epoch's cross-chip updates without integrating — the
// checkpoint path, which needs post-sync state at the barrier.
// Idempotent per epoch; WantState returns the slice snapshot.
type SyncRequest struct {
	Epoch     int                       `json:"epoch"`
	Sync      []multichip.PendingUpdate `json:"sync,omitempty"`
	WantState bool                      `json:"wantState,omitempty"`
	// Parent is the coordinator's checkpoint-round interval ID; the
	// worker's slice_sync span nests under it. Zero when not federated.
	Parent uint64 `json:"parentSpan,omitempty"`
}

// SyncResponse acknowledges a barrier delivery.
type SyncResponse struct {
	Epoch int                   `json:"epoch"`
	State *multichip.SliceState `json:"state,omitempty"`
}
