package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mbrim/internal/checkpoint"
	"mbrim/internal/cluster/chaosproxy"
	"mbrim/internal/graph"
	"mbrim/internal/ising"
	"mbrim/internal/multichip"
	"mbrim/internal/obs"
	"mbrim/internal/rng"
)

func kmodel(n int, seed uint64) *ising.Model {
	return graph.Complete(n, rng.New(seed)).ToIsing()
}

// startWorkers launches k in-process worker servers (worker routes
// plus the /healthz the prober relies on) and returns their base URLs.
func startWorkers(t *testing.T, k int) []string {
	t.Helper()
	urls := make([]string, k)
	for i := 0; i < k; i++ {
		mux := http.NewServeMux()
		NewWorker(nil, 0).Routes(mux)
		mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
			w.WriteHeader(http.StatusOK)
		})
		srv := httptest.NewServer(mux)
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	return urls
}

// fastConfig returns a Config tuned for loopback tests: tight
// timeouts, quick heartbeats, minimal backoff.
func fastConfig(workers []string, chips int, seed uint64, duration float64) Config {
	return Config{
		Workers:           workers,
		Chips:             chips,
		Seed:              seed,
		DurationNS:        duration,
		ChannelBytesPerNS: 0.5,
		SampleEveryNS:     duration / 10,
		RPCTimeout:        2 * time.Second,
		MaxAttempts:       3,
		BackoffBase:       time.Millisecond,
		BackoffMax:        4 * time.Millisecond,
		HeartbeatEvery:    20 * time.Millisecond,
		HeartbeatMisses:   5,
	}
}

func inProcess(t *testing.T, m *ising.Model, cfg Config) *multichip.Result {
	t.Helper()
	mcfg := multichip.Config{
		Chips:             cfg.Chips,
		EpochNS:           cfg.EpochNS,
		Coordinated:       cfg.Coordinated,
		Seed:              cfg.Seed,
		Channels:          cfg.Channels,
		ChannelBytesPerNS: cfg.ChannelBytesPerNS,
		SampleEveryNS:     cfg.SampleEveryNS,
	}
	return multichip.MustSystem(m, mcfg).RunConcurrent(cfg.DurationNS)
}

// compareToInProcess asserts the distributed trajectory equals the
// in-process one bit for bit. Traffic/stall/elapsed are compared only
// when wantLedgers is true (a recovered run legitimately carries extra
// hand-off traffic and stall).
func compareToInProcess(t *testing.T, got *Result, want *multichip.Result, wantLedgers bool) {
	t.Helper()
	for i := range got.Spins {
		if got.Spins[i] != want.Spins[i] {
			t.Fatalf("spin %d: cluster=%d in-process=%d", i, got.Spins[i], want.Spins[i])
		}
	}
	if got.Energy != want.Energy {
		t.Errorf("energy: cluster=%v in-process=%v", got.Energy, want.Energy)
	}
	if got.Flips != want.Flips {
		t.Errorf("flips: cluster=%d in-process=%d", got.Flips, want.Flips)
	}
	if got.InducedFlips != want.InducedFlips {
		t.Errorf("induced flips: cluster=%d in-process=%d", got.InducedFlips, want.InducedFlips)
	}
	if got.BitChanges != want.BitChanges {
		t.Errorf("bit changes: cluster=%d in-process=%d", got.BitChanges, want.BitChanges)
	}
	if got.InducedBitChanges != want.InducedBitChanges {
		t.Errorf("induced bit changes: cluster=%d in-process=%d", got.InducedBitChanges, want.InducedBitChanges)
	}
	if got.Epochs != want.Epochs {
		t.Errorf("epochs: cluster=%d in-process=%d", got.Epochs, want.Epochs)
	}
	if got.ModelNS != want.ModelNS {
		t.Errorf("model time: cluster=%v in-process=%v", got.ModelNS, want.ModelNS)
	}
	if !wantLedgers {
		return
	}
	if got.TrafficBytes != want.TrafficBytes {
		t.Errorf("traffic: cluster=%v in-process=%v", got.TrafficBytes, want.TrafficBytes)
	}
	if got.StallNS != want.StallNS {
		t.Errorf("stall: cluster=%v in-process=%v", got.StallNS, want.StallNS)
	}
	if got.ElapsedNS != want.ElapsedNS {
		t.Errorf("elapsed: cluster=%v in-process=%v", got.ElapsedNS, want.ElapsedNS)
	}
	if len(got.Trace) != len(want.Trace) {
		t.Fatalf("trace length: cluster=%d in-process=%d", len(got.Trace), len(want.Trace))
	}
	for i := range got.Trace {
		if got.Trace[i] != want.Trace[i] {
			t.Errorf("trace %d: cluster=%v in-process=%v", i, got.Trace[i], want.Trace[i])
		}
	}
}

// TestClusterMatchesInProcess is the parity contract: a fault-free
// distributed solve is bit-identical to System.RunConcurrent,
// including the fabric ledgers and the energy trace.
func TestClusterMatchesInProcess(t *testing.T) {
	for _, tc := range []struct {
		name        string
		workers     int
		chips       int
		coordinated bool
	}{
		{"2workers", 2, 2, false},
		{"3workers-coordinated", 3, 3, true},
		{"2workers-4chips", 2, 4, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := kmodel(48, 7)
			cfg := fastConfig(startWorkers(t, tc.workers), tc.chips, 99, 25)
			cfg.Coordinated = tc.coordinated
			want := inProcess(t, m, cfg)

			co, err := New(m, "t-"+tc.name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, env, err := co.Solve(context.Background())
			if err != nil {
				t.Fatalf("Solve: %v", err)
			}
			if env != nil {
				t.Fatal("completed run returned a checkpoint envelope")
			}
			compareToInProcess(t, got, want, true)
			if got.LiveWorkers != tc.workers {
				t.Errorf("live workers: %d, want %d", got.LiveWorkers, tc.workers)
			}
		})
	}
}

// TestClusterRecoversFromWorkerKill kills one worker mid-run (via a
// chaos-proxy blackhole at a chosen epoch) and checks the run
// completes with the same trajectory as an undisturbed in-process
// solve, with the recovery charged into the ledgers.
func TestClusterRecoversFromWorkerKill(t *testing.T) {
	m := kmodel(48, 7)
	backends := startWorkers(t, 3)
	proxies := make([]*chaosproxy.Proxy, len(backends))
	urls := make([]string, len(backends))
	for i, b := range backends {
		p, err := chaosproxy.New(b, chaosproxy.Config{Seed: 41})
		if err != nil {
			t.Fatal(err)
		}
		proxies[i] = p
		srv := httptest.NewServer(p)
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}

	cfg := fastConfig(urls, 3, 99, 25)
	cfg.CheckpointEvery = 2
	killed := false
	cfg.OnEpoch = func(epoch int) {
		if epoch == 5 && !killed {
			killed = true
			proxies[2].Blackhole(true)
		}
	}
	reg := obs.NewRegistry()
	cfg.Metrics = reg

	want := inProcess(t, m, cfg)
	co, err := New(m, "t-kill", cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := co.Solve(context.Background())
	if err != nil {
		t.Fatalf("Solve after worker kill: %v", err)
	}

	// Trajectory is bit-identical to a run that never lost the worker.
	compareToInProcess(t, got, want, false)

	// The robustness layer actually fired and was charged for.
	st := got.Recovery
	if st.WorkerDeaths == 0 || st.Recoveries == 0 {
		t.Fatalf("no recovery recorded: %+v", st)
	}
	if st.ReplayedEpochs == 0 {
		t.Errorf("no replayed epochs recorded: %+v", st)
	}
	if st.HandoffBytes <= 0 || st.RecoveryStallNS <= 0 {
		t.Errorf("recovery cost not charged: %+v", st)
	}
	if !st.Degraded {
		t.Errorf("3 slices on 2 survivors should report degraded mode")
	}
	if got.TrafficBytes <= want.TrafficBytes {
		t.Errorf("hand-off traffic not in ledger: cluster=%v in-process=%v", got.TrafficBytes, want.TrafficBytes)
	}
	if got.StallNS <= want.StallNS {
		t.Errorf("recovery stall not in ledger: cluster=%v in-process=%v", got.StallNS, want.StallNS)
	}
	if got.LiveWorkers != 2 {
		t.Errorf("live workers: %d, want 2", got.LiveWorkers)
	}
	snap := reg.Snapshot()
	if snap.Counters["cluster.recoveries"] == 0 {
		t.Errorf("cluster.recoveries metric not recorded")
	}
	if snap.Counters["cluster.worker_deaths"] == 0 {
		t.Errorf("cluster.worker_deaths metric not recorded")
	}
	if snap.Gauges["cluster.recovery_stall_ns"] <= 0 {
		t.Errorf("cluster.recovery_stall_ns metric not recorded")
	}
}

// TestClusterSurvivesFlakyTransport runs the whole solve through chaos
// proxies injecting drops, 5xx and latency and checks retries mask all
// of it: same result, no recovery needed.
func TestClusterSurvivesFlakyTransport(t *testing.T) {
	m := kmodel(36, 11)
	backends := startWorkers(t, 2)
	urls := make([]string, len(backends))
	for i, b := range backends {
		p, err := chaosproxy.New(b, chaosproxy.Config{
			Seed:      uint64(100 + i),
			DropRate:  0.08,
			ErrorRate: 0.08,
			DelayRate: 0.10,
			Delay:     2 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(p)
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	cfg := fastConfig(urls, 2, 17, 20)
	cfg.MaxAttempts = 6
	cfg.RetryBudget = 10_000
	want := inProcess(t, m, cfg)

	co, err := New(m, "t-flaky", cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := co.Solve(context.Background())
	if err != nil {
		t.Fatalf("Solve through flaky transport: %v", err)
	}
	compareToInProcess(t, got, want, true)
	if got.Recovery.RPCRetries == 0 {
		t.Errorf("expected retries through a flaky transport, got none")
	}
	if got.Recovery.WorkerDeaths != 0 {
		t.Errorf("flaky-but-alive workers were declared dead: %+v", got.Recovery)
	}
}

// TestClusterInterruptCheckpointResumesInProcess cancels a distributed
// run mid-flight and resumes the returned envelope on the in-process
// engine; the finished trajectory must equal an uninterrupted run.
func TestClusterInterruptCheckpointResumesInProcess(t *testing.T) {
	m := kmodel(40, 3)
	cfg := fastConfig(startWorkers(t, 2), 2, 5, 30)
	cfg.CheckpointEvery = 2
	want := inProcess(t, m, cfg)

	ctx, cancel := context.WithCancel(context.Background())
	co, err := New(m, "t-interrupt", cfg)
	if err != nil {
		t.Fatal(err)
	}
	co.Progress = func(epoch int, _ float64) {
		if epoch == 3 {
			cancel()
		}
	}
	partial, env, err := co.Solve(ctx)
	if err != context.Canceled {
		t.Fatalf("Solve: err=%v, want context.Canceled", err)
	}
	if partial == nil || len(env) == 0 {
		t.Fatal("cancelled run did not return a partial result and envelope")
	}

	f, err := checkpoint.Decode(env)
	if err != nil {
		t.Fatalf("decoding envelope: %v", err)
	}
	if err := f.Validate("mbrim", cfg.Seed, m); err != nil {
		t.Fatalf("envelope validation: %v", err)
	}
	mcfg := multichip.Config{
		Chips:             cfg.Chips,
		Seed:              cfg.Seed,
		ChannelBytesPerNS: cfg.ChannelBytesPerNS,
		SampleEveryNS:     cfg.SampleEveryNS,
	}
	got, ck, err := multichip.MustSystem(m, mcfg).RunConcurrentCtx(context.Background(), cfg.DurationNS, f.Multichip)
	if err != nil {
		t.Fatalf("in-process resume: %v", err)
	}
	if ck != nil {
		t.Fatal("resumed run returned a checkpoint")
	}
	for i := range got.Spins {
		if got.Spins[i] != want.Spins[i] {
			t.Fatalf("spin %d after resume: %d, want %d", i, got.Spins[i], want.Spins[i])
		}
	}
	if got.Energy != want.Energy {
		t.Errorf("energy after resume: %v, want %v", got.Energy, want.Energy)
	}
	if got.TrafficBytes != want.TrafficBytes {
		t.Errorf("traffic after resume: %v, want %v", got.TrafficBytes, want.TrafficBytes)
	}
	if got.ElapsedNS != want.ElapsedNS {
		t.Errorf("elapsed after resume: %v, want %v", got.ElapsedNS, want.ElapsedNS)
	}
}

// TestWorkerIdempotency pins the wire-protocol invariants retries rely
// on: step replay, epoch-gap conflict, and the double-sync guard.
func TestWorkerIdempotency(t *testing.T) {
	mux := http.NewServeMux()
	NewWorker(nil, 0).Routes(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	post := func(t *testing.T, path string, body any) (*http.Response, []byte) {
		t.Helper()
		data, _ := json.Marshal(body)
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}

	m := kmodel(16, 1)
	create := &CreateSliceRequest{
		Slice: 0,
		Model: ModelToWire(m),
		Config: SliceConfig{
			Chips: 2, Seed: 9, DurationNS: 10,
		},
	}
	data, _ := json.Marshal(create)
	req, _ := http.NewRequest(http.MethodPut, srv.URL+"/worker/slices/s0", bytes.NewReader(data))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	// Re-PUT converges (idempotent create).
	req2, _ := http.NewRequest(http.MethodPut, srv.URL+"/worker/slices/s0", bytes.NewReader(data))
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("re-create: status %d", resp2.StatusCode)
	}

	// Step epoch 1.
	r1, body1 := post(t, "/worker/slices/s0/step", &StepRequest{Epoch: 1})
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("step 1: status %d: %s", r1.StatusCode, body1)
	}
	// Retrying epoch 1 replays the identical bytes.
	r1b, body1b := post(t, "/worker/slices/s0/step", &StepRequest{Epoch: 1})
	if r1b.StatusCode != http.StatusOK {
		t.Fatalf("step 1 retry: status %d", r1b.StatusCode)
	}
	if !bytes.Equal(body1, body1b) {
		t.Fatal("step replay returned different bytes")
	}
	// Skipping ahead conflicts.
	r3, _ := post(t, "/worker/slices/s0/step", &StepRequest{Epoch: 3})
	if r3.StatusCode != http.StatusConflict {
		t.Fatalf("step 3 out of order: status %d, want 409", r3.StatusCode)
	}
	// Sync for the wrong barrier conflicts.
	rs, _ := post(t, "/worker/slices/s0/sync", &SyncRequest{Epoch: 7})
	if rs.StatusCode != http.StatusConflict {
		t.Fatalf("sync wrong epoch: status %d, want 409", rs.StatusCode)
	}
	// Sync at the current barrier is idempotent and can return state.
	rs1, _ := post(t, "/worker/slices/s0/sync", &SyncRequest{Epoch: 1, WantState: true})
	if rs1.StatusCode != http.StatusOK {
		t.Fatalf("sync: status %d", rs1.StatusCode)
	}
	rs2, _ := post(t, "/worker/slices/s0/sync", &SyncRequest{Epoch: 1, WantState: true})
	if rs2.StatusCode != http.StatusOK {
		t.Fatalf("sync retry: status %d", rs2.StatusCode)
	}
}

// TestManagerAPI drives a solve end to end through the coordinator
// HTTP surface.
func TestManagerAPI(t *testing.T) {
	workers := startWorkers(t, 2)
	mgr := NewManager(nil, nil, 0)
	mux := http.NewServeMux()
	mgr.Routes(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	body, _ := json.Marshal(&SubmitRequest{
		Workers:           workers,
		K:                 32,
		GraphSeed:         7,
		Seed:              99,
		DurationNS:        20,
		ChannelBytesPerNS: 0.5,
	})
	resp, err := http.Post(srv.URL+"/cluster/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		ID string `json:"id"`
	}
	json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || sub.ID == "" {
		t.Fatalf("submit: status %d id %q", resp.StatusCode, sub.ID)
	}

	deadline := time.Now().Add(30 * time.Second)
	var status struct {
		Done   bool   `json:"done"`
		Error  string `json:"error"`
		Result *struct {
			Energy float64 `json:"energy"`
			Epochs int     `json:"epochs"`
		} `json:"result"`
	}
	for {
		if time.Now().After(deadline) {
			t.Fatal("run did not finish in time")
		}
		r, err := http.Get(srv.URL + "/cluster/runs/" + sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		status.Done, status.Error, status.Result = false, "", nil
		json.NewDecoder(r.Body).Decode(&status)
		r.Body.Close()
		if status.Done {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if status.Error != "" {
		t.Fatalf("run failed: %s", status.Error)
	}
	if status.Result == nil || status.Result.Epochs == 0 {
		t.Fatalf("missing result: %+v", status)
	}

	// The API's answer equals the in-process engine's.
	m := kmodel(32, 7)
	want := multichip.MustSystem(m, multichip.Config{
		Chips: 2, Seed: 99, ChannelBytesPerNS: 0.5, SampleEveryNS: 0.2,
	}).RunConcurrent(20)
	if status.Result.Energy != want.Energy {
		t.Errorf("energy via API: %v, want %v", status.Result.Energy, want.Energy)
	}
}
