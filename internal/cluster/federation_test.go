package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mbrim/internal/cluster/chaosproxy"
	"mbrim/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden fleet Chrome trace")

// normalizeWall clears the wall-clock fields — the only nondeterminism
// the obs contract permits — so federated streams from identical runs
// compare byte for byte.
func normalizeWall(events []obs.Event) {
	for i := range events {
		events[i].WallNS = 0
		events[i].WallDurNS = 0
	}
}

func solveFederated(t *testing.T, n int, cfg Config, runID string) (*Coordinator, *Result) {
	t.Helper()
	cfg.Federate = true
	co, err := New(kmodel(n, cfg.Seed), runID, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := co.Solve(context.Background())
	if err != nil {
		t.Fatalf("federated Solve: %v", err)
	}
	return co, res
}

func TestDeriveTraceID(t *testing.T) {
	a := deriveTraceID(7, "run-1")
	if a == 0 {
		t.Fatal("trace ID must never be zero (zero means no context)")
	}
	if b := deriveTraceID(7, "run-1"); b != a {
		t.Fatalf("trace ID not deterministic: %x vs %x", a, b)
	}
	if deriveTraceID(8, "run-1") == a {
		t.Fatal("trace ID should depend on the seed")
	}
	if deriveTraceID(7, "run-2") == a {
		t.Fatal("trace ID should depend on the run ID")
	}
}

// TestFederationIngest pins the page-folding contract: events from
// another run's trace are dropped, wall stamps shift by the worker's
// clock offset, origins are stamped, and eviction gaps — both the
// partial-page and the everything-evicted shape — are counted, never
// silently absorbed.
func TestFederationIngest(t *testing.T) {
	f := newFederation(Config{Seed: 3, Chips: 2}, "t-ingest", 2)
	f.setOffset(1, 500)

	kept := f.ingest(1, 0, EventsPage{
		First: 1,
		Total: 3,
		Events: []obs.Event{
			{Kind: obs.SpanStart, Trace: f.traceID, WallNS: 1500, Span: 1},
			{Kind: obs.SpanStart, Trace: f.traceID ^ 1, WallNS: 9000, Span: 2}, // foreign run
			{Kind: obs.SpanEnd, Trace: f.traceID, WallNS: 2500, Span: 1},
		},
	})
	if kept != 2 {
		t.Fatalf("kept %d events, want 2 (foreign-trace event filtered)", kept)
	}
	evs := f.workers[1].Events()
	if len(evs) != 2 {
		t.Fatalf("worker ring holds %d events, want 2", len(evs))
	}
	if evs[0].WallNS != 1000 || evs[1].WallNS != 2000 {
		t.Fatalf("clock offset not applied: wall stamps %d, %d want 1000, 2000", evs[0].WallNS, evs[1].WallNS)
	}
	for _, e := range evs {
		if e.Origin != "w1" {
			t.Fatalf("origin = %q, want w1", e.Origin)
		}
	}
	if f.cursor(1) != 3 {
		t.Fatalf("cursor = %d, want 3", f.cursor(1))
	}

	// A page whose first ordinal jumped past the cursor records the
	// evicted span of ordinals.
	f.ingest(0, 0, EventsPage{First: 5, Total: 6, Events: []obs.Event{
		{Kind: obs.SpanStart, Trace: f.traceID, Span: 9},
		{Kind: obs.SpanEnd, Trace: f.traceID, Span: 9},
	}})
	if f.dropped != 4 {
		t.Fatalf("dropped = %d after partial eviction, want 4", f.dropped)
	}
	// Everything between cursor and head evicted: empty page, advanced total.
	f.ingest(0, 6, EventsPage{First: 11, Total: 10})
	if f.dropped != 8 {
		t.Fatalf("dropped = %d after full eviction, want 8", f.dropped)
	}
	if f.cursor(0) != 10 {
		t.Fatalf("cursor = %d, want 10", f.cursor(0))
	}
}

// TestFleetTraceGolden pins the whole fleet pipeline end to end: a
// seeded 2-worker federated solve — trace context propagated on every
// RPC, worker spans pulled back at checkpoint cadence, clock-shifted,
// merged with the coordinator's spans in canonical order — must render
// through WriteChromeTrace to the checked-in golden byte for byte.
// Model time, span-ID allocation, pull cadence, and the merge keys are
// all deterministic, so after clearing the two wall-clock fields any
// drift means the propagation format, span layout, or merge order
// changed and the golden must be regenerated deliberately with -update.
func TestFleetTraceGolden(t *testing.T) {
	cfg := fastConfig(startWorkers(t, 2), 2, 5, 20)
	cfg.CheckpointEvery = 2
	co, res := solveFederated(t, 24, cfg, "fleet-golden")
	if res.Energy >= 0 {
		t.Fatalf("no optimization progress (E=%v)", res.Energy)
	}

	events := co.FederatedEvents()
	normalizeWall(events)
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "fleet_trace_k24_w2.golden.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, buf.Len())
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with: go test ./internal/cluster -run FleetTraceGolden -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("fleet trace drifted from golden (%d vs %d bytes); if the change is intended, regenerate with -update",
			buf.Len(), len(want))
	}
}

// TestFederationMergeDeterministic runs the same seeded config twice
// against fresh workers and asserts the normalized federated streams
// are identical — the canonical merge order cannot depend on pull
// timing, goroutine scheduling, or worker interleaving.
func TestFederationMergeDeterministic(t *testing.T) {
	run := func() []obs.Event {
		cfg := fastConfig(startWorkers(t, 2), 4, 11, 25)
		cfg.CheckpointEvery = 3
		co, _ := solveFederated(t, 32, cfg, "fleet-det")
		evs := co.FederatedEvents()
		normalizeWall(evs)
		return evs
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("federated streams differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("federated streams diverge at event %d:\n  a=%+v\n  b=%+v", i, a[i], b[i])
		}
	}
}

// TestFederationNeutralTrajectory asserts turning federation on does
// not perturb the solve: the distributed trajectory and every ledger
// stay bit-identical to the in-process engine, exactly as they are
// with federation off.
func TestFederationNeutralTrajectory(t *testing.T) {
	m := kmodel(36, 13)
	cfg := fastConfig(startWorkers(t, 2), 2, 13, 20)
	cfg.CheckpointEvery = 2
	want := inProcess(t, m, cfg)

	cfg.Federate = true
	co, err := New(m, "t-neutral", cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := co.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	compareToInProcess(t, got, want, true)
}

// TestFederationChaosKillMergesOneTrace is the chaos acceptance check:
// kill a worker mid-run and the finished run still serves ONE merged
// trace — every span carries the run's single trace ID, spans from the
// coordinator and at least two distinct workers appear in it, and the
// recovery is visible as both a span and fleet-diag attribution.
func TestFederationChaosKillMergesOneTrace(t *testing.T) {
	m := kmodel(48, 7)
	backends := startWorkers(t, 3)
	proxies := make([]*chaosproxy.Proxy, len(backends))
	urls := make([]string, len(backends))
	for i, b := range backends {
		p, err := chaosproxy.New(b, chaosproxy.Config{Seed: 41})
		if err != nil {
			t.Fatal(err)
		}
		proxies[i] = p
		srv := httptest.NewServer(p)
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}

	cfg := fastConfig(urls, 3, 99, 25)
	cfg.CheckpointEvery = 2
	cfg.Federate = true
	killed := false
	cfg.OnEpoch = func(epoch int) {
		if epoch == 5 && !killed {
			killed = true
			proxies[2].Blackhole(true)
		}
	}
	co, err := New(m, "t-chaos-trace", cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := co.Solve(context.Background())
	if err != nil {
		t.Fatalf("Solve after worker kill: %v", err)
	}
	if got.Recovery.WorkerDeaths == 0 {
		t.Fatalf("kill did not register: %+v", got.Recovery)
	}

	events := co.FederatedEvents()
	origins := map[string]bool{}
	labels := map[string]int{}
	for _, e := range events {
		if e.Kind != obs.SpanStart {
			continue
		}
		if e.Trace != co.TraceID() {
			t.Fatalf("span %q carries trace %x, want the run's single trace %x", e.Label, e.Trace, co.TraceID())
		}
		origins[e.Origin] = true
		labels[e.Label]++
	}
	if !origins["co"] {
		t.Fatal("merged trace has no coordinator spans")
	}
	workerOrigins := 0
	for o := range origins {
		if strings.HasPrefix(o, "w") {
			workerOrigins++
		}
	}
	if workerOrigins < 2 {
		t.Fatalf("merged trace has spans from %d workers, want >= 2 (origins: %v)", workerOrigins, origins)
	}
	for _, want := range []string{"cluster_run", "epoch", "chip_step", "step_rpc", "federation_pull", "recovery"} {
		if labels[want] == 0 {
			t.Fatalf("merged trace missing %q spans (have %v)", want, labels)
		}
	}

	snap, ok := co.FleetDiag()
	if !ok {
		t.Fatal("federated run reports no fleet diag")
	}
	deaths := 0
	for _, w := range snap.PerWorker {
		deaths += w.Deaths
	}
	if deaths == 0 {
		t.Fatalf("fleet diag did not attribute the worker loss: %+v", snap)
	}
	if snap.ReplayedEpochs == 0 {
		t.Errorf("fleet diag did not count replayed epochs: %+v", snap)
	}
}

// TestFederationRPCMetrics asserts the per-RPC diagnostics a federated
// run leaves in the registry: per-method latency histograms, the
// in-flight gauge drained back to zero, bytes-on-wire by worker, pull
// accounting, and the run-labeled fleet gauges.
// startMetricWorkers is startWorkers with a live registry per worker,
// serving /metrics.json the way mbrimd does, so the coordinator's
// scrape path has something real to federate.
func startMetricWorkers(t *testing.T, k int) []string {
	t.Helper()
	urls := make([]string, k)
	for i := 0; i < k; i++ {
		wreg := obs.NewRegistry()
		mux := http.NewServeMux()
		NewWorker(wreg, 0).Routes(mux)
		mux.Handle("GET /metrics.json", wreg)
		mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
			w.WriteHeader(http.StatusOK)
		})
		srv := httptest.NewServer(mux)
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	return urls
}

func TestFederationRPCMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := fastConfig(startMetricWorkers(t, 2), 2, 9, 20)
	cfg.CheckpointEvery = 2
	cfg.Metrics = reg
	co, _ := solveFederated(t, 24, cfg, "t-rpcmetrics")

	snap := reg.Snapshot()
	for _, h := range []string{
		`cluster.rpc_latency_ns{method="step"}`,
		`cluster.rpc_latency_ns{method="sync"}`,
		`cluster.rpc_latency_ns{method="events"}`,
		`cluster.rpc_latency_ns{method="create"}`,
	} {
		if snap.Histograms[h].Count == 0 {
			t.Errorf("missing per-method RPC latency histogram %s", h)
		}
	}
	if g, ok := snap.Gauges["cluster.rpc_inflight"]; !ok || g != 0 {
		t.Errorf("cluster.rpc_inflight = %v, %v; want present and drained to 0", g, ok)
	}
	if snap.Counters[`fleet.wire_bytes{dir="rx",worker="0"}`] == 0 {
		t.Errorf("no wire bytes accounted for worker 0: %v", snap.Counters)
	}
	if snap.Counters["fleet.pulled_events"] == 0 {
		t.Error("federation pulled no events")
	}
	if snap.Histograms["fleet.pull_wall_ns"].Count == 0 {
		t.Error("no federation pull rounds observed")
	}
	if _, ok := snap.Gauges[`fleet.sync_fraction{run="t-rpcmetrics"}`]; !ok {
		t.Errorf("missing run-labeled fleet.sync_fraction gauge")
	}
	if snap.Gauges[`fleet.worker_steps{worker="0"}`] == 0 {
		t.Error("worker metrics scrape did not re-export cluster.worker_steps")
	}

	// Retention path: releasing the fleet drops every run-labeled series.
	if n := co.ReleaseFleet(); n == 0 {
		t.Fatal("ReleaseFleet released nothing")
	}
	for key := range reg.Snapshot().Gauges {
		if strings.Contains(key, `run="t-rpcmetrics"`) {
			t.Fatalf("released run still owns series %s", key)
		}
	}
}

// TestManagerTraceAndDiagEndpoints drives the HTTP surface: submit a
// federated run through the Manager, then fetch the merged Chrome
// trace and the fleet diagnostics exactly as an operator (or the smoke
// script) would.
func TestManagerTraceAndDiagEndpoints(t *testing.T) {
	m := NewManager(nil, nil, 0)
	mux := http.NewServeMux()
	m.Routes(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	w0, w1 := clusterWorker(t), clusterWorker(t)
	body := `{"workers":["` + w0 + `","` + w1 + `"],"k":16,"chips":2,"durationNS":200,"seed":5,"checkpointEvery":2,"federate":true}`
	resp, err := http.Post(srv.URL+"/cluster/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var accepted map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&accepted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d %v", resp.StatusCode, accepted)
	}
	id := accepted["id"]
	cr, _ := m.lookup(id)
	select {
	case <-cr.done:
	case <-time.After(30 * time.Second):
		t.Fatalf("%s did not finish", id)
	}

	// The merged trace parses as a Chrome trace and carries spans from
	// the coordinator and both workers under one trace ID.
	resp, err = http.Get(srv.URL + "/cluster/runs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /trace = %d", resp.StatusCode)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Args struct {
				Trace  string `json:"trace"`
				Origin string `json:"origin"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	resp.Body.Close()
	traceIDs := map[string]bool{}
	origins := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if (ev.Ph == "B" || ev.Ph == "X") && ev.Args.Trace != "" {
			traceIDs[ev.Args.Trace] = true
			origins[ev.Args.Origin] = true
		}
	}
	if len(traceIDs) != 1 {
		t.Fatalf("trace carries %d trace IDs, want exactly 1: %v", len(traceIDs), traceIDs)
	}
	if !origins["co"] || !origins["w0"] || !origins["w1"] {
		t.Fatalf("trace origins = %v, want co plus both workers", origins)
	}

	// The fleet diag endpoint reports the same trace ID and a snapshot.
	resp, err = http.Get(srv.URL + "/cluster/runs/" + id + "/diag")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /diag = %d", resp.StatusCode)
	}
	var dd struct {
		ID      string `json:"id"`
		TraceID string `json:"traceID"`
		Fleet   struct {
			Epochs    int64   `json:"epochs"`
			Workers   int     `json:"workers"`
			SyncFrac  float64 `json:"syncFraction"`
			PerWorker []struct {
				Epochs int64 `json:"epochs"`
			} `json:"perWorker"`
		} `json:"fleet"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dd); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if dd.ID != id || !traceIDs[dd.TraceID] {
		t.Fatalf("diag identity mismatch: %+v vs trace IDs %v", dd, traceIDs)
	}
	if dd.Fleet.Epochs == 0 || dd.Fleet.Workers != 2 {
		t.Fatalf("empty fleet snapshot: %+v", dd.Fleet)
	}

	// A non-federated run 404s on both endpoints rather than serving an
	// empty document.
	resp, err = http.Post(srv.URL+"/cluster/runs", "application/json",
		strings.NewReader(`{"workers":["`+w0+`"],"k":8,"durationNS":100,"seed":3}`))
	if err != nil {
		t.Fatal(err)
	}
	var plain map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&plain); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	cr2, _ := m.lookup(plain["id"])
	select {
	case <-cr2.done:
	case <-time.After(30 * time.Second):
		t.Fatal("plain run did not finish")
	}
	for _, ep := range []string{"/trace", "/diag"} {
		resp, err := http.Get(srv.URL + "/cluster/runs/" + plain["id"] + ep)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s on non-federated run = %d, want 404", ep, resp.StatusCode)
		}
	}
}
