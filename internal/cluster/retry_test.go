package cluster

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mbrim/internal/graph"
	"mbrim/internal/rng"
)

// TestBackoffDelayPinned pins the exact retry schedule a fixed seed
// produces. The jitter is hashed, not sampled, so these durations are
// part of the reproducibility contract: if this test breaks, recorded
// fault-injection traces stop replaying bit-identically.
func TestBackoffDelayPinned(t *testing.T) {
	const (
		base = 25 * time.Millisecond
		max  = time.Second
		seed = uint64(42)
		wi   = 1
	)
	want := []time.Duration{
		23804980,  // counter=1 attempt=1
		31773567,  // counter=2 attempt=2
		146296763, // counter=3 attempt=3
		172869367, // counter=4 attempt=4
		292480469, // counter=5 attempt=4 (cap holds the exponent, jitter still moves)
	}
	for i, w := range want {
		counter := uint64(i + 1)
		attempt := i + 1
		if attempt > 4 {
			attempt = 4
		}
		if got := backoffDelay(base, max, seed, wi, counter, attempt); got != w {
			t.Fatalf("backoffDelay(counter=%d, attempt=%d) = %d, want %d", counter, attempt, got, w)
		}
	}
	// Jitter bounds: every delay lands in [0.5, 1.5) of the raw
	// exponential step, for any counter.
	for c := uint64(1); c < 200; c++ {
		d := backoffDelay(base, max, seed, 0, c, 2)
		raw := 2 * base
		if d < raw/2 || d >= raw+raw/2 {
			t.Fatalf("counter %d: delay %v outside [%v, %v)", c, d, raw/2, raw+raw/2)
		}
	}
	// Different workers draw different schedules from the same seed.
	if backoffDelay(base, max, seed, 0, 1, 1) == backoffDelay(base, max, seed, 1, 1, 1) {
		t.Fatal("worker index does not perturb the jitter hash")
	}
}

// TestRetryBudgetExhaustionTypedError drives a solve against workers
// that answer health checks but fail every RPC, so retries burn the
// budget down and every worker is eventually declared dead. The
// surfaced error must be the typed *AllWorkersDeadError with the
// recovery ledger intact — the collapse is diagnosable, not just a
// string.
func TestRetryBudgetExhaustionTypedError(t *testing.T) {
	alwaysFail := func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		// 5xx is retryable (4xx would be a protocol error and abort).
		http.Error(w, "injected outage", http.StatusServiceUnavailable)
	}
	var urls []string
	for i := 0; i < 2; i++ {
		srv := httptest.NewServer(http.HandlerFunc(alwaysFail))
		defer srv.Close()
		urls = append(urls, srv.URL)
	}

	model := graph.Complete(12, rng.New(1)).ToIsing()
	co, err := New(model, "retry-test", Config{
		Workers:     urls,
		Chips:       2,
		DurationNS:  500,
		Seed:        7,
		MaxAttempts: 2,
		RetryBudget: 3,
		BackoffBase: time.Millisecond,
		BackoffMax:  4 * time.Millisecond,
		RPCTimeout:  2 * time.Second,
		// Heartbeats answer 200, so liveness never saves the workers —
		// only the RPC retry path decides their fate.
		HeartbeatEvery: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_, _, serr := co.Solve(ctx)
	if serr == nil {
		t.Fatal("solve succeeded against all-failing workers")
	}
	var awd *AllWorkersDeadError
	if !errors.As(serr, &awd) {
		t.Fatalf("error = %v (%T), want *AllWorkersDeadError", serr, serr)
	}
	if awd.Cause == nil {
		t.Fatal("AllWorkersDeadError lost its cause")
	}
	var wd *workerDeadError
	if !errors.As(awd, &wd) {
		t.Fatalf("cause chain lost the worker death: %v", serr)
	}
	// The ledger survived the collapse: at least one worker death was
	// recorded before the survivor check failed, and the retries the
	// budget paid for are accounted.
	if awd.Stats.WorkerDeaths < 1 {
		t.Fatalf("ledger worker deaths = %d, want >= 1", awd.Stats.WorkerDeaths)
	}
	if awd.Stats.RPCRetries < 1 {
		t.Fatalf("ledger RPC retries = %d, want >= 1", awd.Stats.RPCRetries)
	}
}
