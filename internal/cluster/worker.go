package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"mbrim/internal/multichip"
	"mbrim/internal/obs"
)

// Worker hosts slices on behalf of remote coordinators — the server
// half of the cluster protocol, mounted into mbrimd with -worker:
//
//	PUT    /worker/slices/{id}       create/replace a slice (idempotent)
//	GET    /worker/slices            list hosted slices
//	GET    /worker/slices/{id}       slice status (?state=1 adds snapshot)
//	POST   /worker/slices/{id}/step  integrate the next epoch
//	POST   /worker/slices/{id}/sync  deliver a barrier without integrating
//	DELETE /worker/slices/{id}       drop a slice
//
// Slice ids are coordinator-chosen ("run-3-s1-g2"), which makes every
// mutation idempotent: a re-PUT replaces, a repeated step replays the
// cached response, a repeated sync acknowledges again. Idempotency is
// what lets the coordinator retry any RPC blindly after a timeout — it
// can never double-integrate an epoch.
type Worker struct {
	reg *obs.Registry
	// ring is the worker's observability stream: every federated
	// slice's span events land here (stamped with their run's trace
	// ID), and coordinators page it via GET /worker/events — the
	// server half of trace federation.
	ring *obs.Ring

	mu        sync.Mutex
	slices    map[string]*workerSlice
	maxSlices int
}

// workerSlice is one hosted slice plus its replay cache. Its own lock
// serializes step/sync per slice while leaving distinct slices (one
// worker can host several after a degraded reassignment) concurrent.
type workerSlice struct {
	mu    sync.Mutex
	slice *multichip.Slice
	// syncedEpoch is the last barrier whose cross-chip updates were
	// delivered (via step piggyback or /sync); lastStep replays the
	// last completed epoch for retried RPCs.
	syncedEpoch int
	lastStep    *StepResponse
	// spans emits this slice's intervals into the worker ring when the
	// coordinator sent trace context on creation (nil otherwise — the
	// disabled path). spanFlips is the cumulative flip count already
	// attributed to closed chip_step spans, so each span carries its
	// epoch's delta even across a hand-off restore.
	spans     *obs.Spanner
	spanFlips int64
}

// DefaultMaxSlices bounds how many slices one worker will host.
const DefaultMaxSlices = 64

// DefaultWorkerRing is the capacity of the worker's observability
// ring. A slice emits two events per epoch plus checkpoint syncs, so
// this retains several thousand epochs across hosted slices; the
// federation collector pages with EventsSince cursors every checkpoint
// round, and an exposed eviction gap only truncates the oldest spans
// of a merged trace.
const DefaultWorkerRing = 16384

// NewWorker builds a worker. reg may be nil.
func NewWorker(reg *obs.Registry, maxSlices int) *Worker {
	if maxSlices <= 0 {
		maxSlices = DefaultMaxSlices
	}
	if reg != nil {
		reg.SetHelp("cluster.worker_slices", "slices currently hosted by this worker")
		reg.SetHelp("cluster.worker_steps", "slice epochs integrated by this worker")
		reg.SetHelp("cluster.worker_step_replays", "retried step RPCs answered from the replay cache")
	}
	return &Worker{
		reg:       reg,
		ring:      obs.NewRing(DefaultWorkerRing),
		slices:    make(map[string]*workerSlice),
		maxSlices: maxSlices,
	}
}

// Routes registers the worker endpoints on mux (Go 1.22 method
// patterns, like the runs surface).
func (wk *Worker) Routes(mux *http.ServeMux) {
	mux.HandleFunc("PUT /worker/slices/{id}", wk.handleCreate)
	mux.HandleFunc("GET /worker/slices", wk.handleList)
	mux.HandleFunc("GET /worker/slices/{id}", wk.handleGet)
	mux.HandleFunc("POST /worker/slices/{id}/step", wk.handleStep)
	mux.HandleFunc("POST /worker/slices/{id}/sync", wk.handleSync)
	mux.HandleFunc("DELETE /worker/slices/{id}", wk.handleDelete)
	mux.HandleFunc("GET /worker/events", wk.handleEvents)
	mux.HandleFunc("GET /worker/clock", wk.handleClock)
}

// handleEvents pages the worker's observability ring: the federation
// collector fetches ?since=<cursor> each checkpoint round and filters
// the page by trace ID (one worker may host slices of several runs).
func (wk *Worker) handleEvents(w http.ResponseWriter, r *http.Request) {
	since := int64(0)
	if s := r.URL.Query().Get("since"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("cluster: bad since cursor %q", s))
			return
		}
		since = v
	}
	evs, first := wk.ring.EventsSince(since)
	writeJSON(w, http.StatusOK, EventsPage{Events: evs, First: first, Total: wk.ring.Total()})
}

// handleClock answers the coordinator's clock-offset handshake.
func (wk *Worker) handleClock(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, ClockResponse{NowNS: time.Now().UnixNano()})
}

// maxSliceBody bounds slice-creation bodies (a model plus a snapshot).
const maxSliceBody = 128 << 20

func (wk *Worker) handleCreate(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	id := r.PathValue("id")
	var req CreateSliceRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSliceBody))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("cluster: parsing body: %w", err))
		return
	}
	m, err := req.Model.Build()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	mcfg, err := req.Config.multichipConfig()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sl, err := multichip.NewSlice(m, mcfg, req.Slice, req.Config.DurationNS)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ws := &workerSlice{slice: sl}
	if req.State != nil {
		if err := sl.Restore(req.State); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		// A restored snapshot is post-sync by construction.
		ws.syncedEpoch = sl.Epochs()
	}
	if tc := req.Trace; tc != nil && tc.TraceID != 0 {
		// Federated run: this slice's intervals go to the worker ring,
		// stamped with the coordinator-assigned trace ID, with IDs from
		// the slice's disjoint SpanBase range. The restored snapshot's
		// cumulative flip counter seeds the per-epoch delta so a
		// handed-off slice's first chip_step span doesn't claim the
		// pre-hand-off flips.
		ws.spans = obs.NewSpannerAt(obs.StampTracer(wk.ring, tc.TraceID, ""), tc.SpanBase)
		if req.State != nil && req.State.State.Machine != nil {
			ws.spanFlips = req.State.State.Machine.Flips
		}
		ws.spans.Complete("slice_install", obs.RemoteSpan(tc.Parent), sl.Chip(),
			sl.ModelNS(), 0, time.Since(start).Nanoseconds(), nil)
	}
	wk.mu.Lock()
	if _, exists := wk.slices[id]; !exists && len(wk.slices) >= wk.maxSlices {
		wk.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("cluster: worker at its %d-slice capacity", wk.maxSlices))
		return
	}
	wk.slices[id] = ws
	n := len(wk.slices)
	wk.mu.Unlock()
	if wk.reg != nil {
		wk.reg.Gauge("cluster.worker_slices").Set(float64(n))
	}
	writeJSON(w, http.StatusOK, wk.status(id, ws, false))
}

func (wk *Worker) lookup(id string) (*workerSlice, bool) {
	wk.mu.Lock()
	defer wk.mu.Unlock()
	ws, ok := wk.slices[id]
	return ws, ok
}

func (wk *Worker) status(id string, ws *workerSlice, withState bool) map[string]any {
	st := SliceStatus{
		ID:     id,
		Slice:  ws.slice.Chip(),
		Epoch:  ws.slice.Epochs(),
		Synced: ws.syncedEpoch,
		Model:  ws.slice.ModelNS(),
		Done:   ws.slice.Done(),
	}
	out := map[string]any{"status": st}
	if withState {
		out["state"] = ws.slice.Snapshot()
	}
	return out
}

func (wk *Worker) handleList(w http.ResponseWriter, _ *http.Request) {
	wk.mu.Lock()
	ids := make([]string, 0, len(wk.slices))
	for id := range wk.slices {
		ids = append(ids, id)
	}
	wk.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"slices": ids})
}

func (wk *Worker) handleGet(w http.ResponseWriter, r *http.Request) {
	ws, ok := wk.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("cluster: no slice %q", r.PathValue("id")))
		return
	}
	ws.mu.Lock()
	defer ws.mu.Unlock()
	writeJSON(w, http.StatusOK, wk.status(r.PathValue("id"), ws, r.URL.Query().Get("state") == "1"))
}

func (wk *Worker) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	wk.mu.Lock()
	delete(wk.slices, id)
	n := len(wk.slices)
	wk.mu.Unlock()
	if wk.reg != nil {
		wk.reg.Gauge("cluster.worker_slices").Set(float64(n))
	}
	w.WriteHeader(http.StatusNoContent)
}

func (wk *Worker) handleStep(w http.ResponseWriter, r *http.Request) {
	ws, ok := wk.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("cluster: no slice %q", r.PathValue("id")))
		return
	}
	var req StepRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSliceBody)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("cluster: parsing body: %w", err))
		return
	}
	ws.mu.Lock()
	defer ws.mu.Unlock()
	done := ws.slice.Epochs()
	switch {
	case req.Epoch == done && ws.lastStep != nil && ws.lastStep.Report.Epoch == req.Epoch:
		// A retry of the epoch we just integrated: the first response was
		// lost in flight. Replay it — never integrate twice.
		if wk.reg != nil {
			wk.reg.Counter("cluster.worker_step_replays").Inc()
		}
		writeJSON(w, http.StatusOK, ws.lastStep)
		return
	case req.Epoch != done+1:
		writeError(w, http.StatusConflict,
			fmt.Errorf("cluster: slice at epoch %d cannot step epoch %d", done, req.Epoch))
		return
	}
	// Deliver the previous barrier if it rode along (it must not have
	// been delivered already — that would double-apply updates).
	if len(req.Sync) > 0 {
		if ws.syncedEpoch >= done {
			writeError(w, http.StatusConflict,
				fmt.Errorf("cluster: barrier %d already delivered to slice", done))
			return
		}
		if err := ws.slice.ApplySync(req.Sync); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	ws.syncedEpoch = done
	start := time.Now()
	rep, err := ws.slice.RunEpoch()
	if err != nil {
		// Integrator divergence is not retryable; 422 tells the
		// coordinator to abort rather than back off.
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	ws.lastStep = &StepResponse{Report: rep}
	if ws.spans != nil {
		// The epoch's interval on the model axis, under the
		// coordinator's epoch span, with the worker-measured compute
		// wall time and this epoch's flip delta.
		ws.spans.Complete("chip_step", obs.RemoteSpan(req.Parent), ws.slice.Chip(),
			rep.ModelNS-rep.EpochNS, rep.EpochNS, time.Since(start).Nanoseconds(),
			&obs.Event{Count: rep.Flips - ws.spanFlips})
		ws.spanFlips = rep.Flips
	}
	if wk.reg != nil {
		wk.reg.Counter("cluster.worker_steps").Inc()
	}
	writeJSON(w, http.StatusOK, ws.lastStep)
}

func (wk *Worker) handleSync(w http.ResponseWriter, r *http.Request) {
	ws, ok := wk.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("cluster: no slice %q", r.PathValue("id")))
		return
	}
	var req SyncRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSliceBody)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("cluster: parsing body: %w", err))
		return
	}
	ws.mu.Lock()
	defer ws.mu.Unlock()
	done := ws.slice.Epochs()
	if req.Epoch != done {
		writeError(w, http.StatusConflict,
			fmt.Errorf("cluster: sync for barrier %d, slice at epoch %d", req.Epoch, done))
		return
	}
	if ws.syncedEpoch < done {
		start := time.Now()
		if err := ws.slice.ApplySync(req.Sync); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		ws.syncedEpoch = done
		if ws.spans != nil {
			// Zero-width on the model axis (a barrier delivery), under
			// the coordinator's checkpoint-round span. Retried syncs
			// take the acknowledge-only branch and emit nothing.
			ws.spans.Complete("slice_sync", obs.RemoteSpan(req.Parent), ws.slice.Chip(),
				ws.slice.ModelNS(), 0, time.Since(start).Nanoseconds(),
				&obs.Event{Count: int64(len(req.Sync))})
		}
	}
	// else: a retry of a barrier already delivered — acknowledge again.
	resp := &SyncResponse{Epoch: done}
	if req.WantState {
		resp.State = ws.slice.Snapshot()
	}
	writeJSON(w, http.StatusOK, resp)
}
