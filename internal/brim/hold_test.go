package brim

import (
	"testing"

	"mbrim/internal/ising"
	"mbrim/internal/sched"
)

// strongPair returns two spins that strongly prefer alignment — a kick
// against that preference reverts as soon as the control releases.
func strongPair() *ising.Model {
	m := ising.NewModel(2)
	m.SetCoupling(0, 1, 5)
	return m
}

func TestKickHeldAgainstDynamics(t *testing.T) {
	m := strongPair()
	ma := New(m, Config{
		Seed:        1,
		InducedFlip: sched.Constant(0), // no spontaneous kicks
		KickHoldNS:  5,
	})
	ma.SetHorizon(20)
	ma.SetSpins([]int8{1, 1})
	ma.Run(1)
	ma.Induce(0)
	if ma.Spins()[0] != -1 {
		t.Fatal("kick did not flip the readout")
	}
	// During the hold the node must stay kicked despite the strong
	// opposing coupling.
	ma.Run(4)
	if ma.Spins()[0] != -1 {
		t.Fatal("held kick reverted during the hold window")
	}
	// After release the ferromagnetic dynamics re-align the pair (the
	// partner may follow the held node down — either polarity is a
	// valid resolution, misalignment is not).
	ma.Run(10)
	if ma.Spins()[0] != ma.Spins()[1] {
		t.Fatalf("pair still misaligned after release: %v", ma.Spins())
	}
}

func TestKickWithoutHoldRevertsQuickly(t *testing.T) {
	m := strongPair()
	ma := New(m, Config{
		Seed:        1,
		InducedFlip: sched.Constant(0),
		KickHoldNS:  -1, // disabled
	})
	ma.SetHorizon(20)
	ma.SetSpins([]int8{1, 1})
	ma.Run(1)
	ma.Induce(0)
	ma.Run(4)
	if ma.Spins()[0] != 1 {
		t.Fatal("unheld kick against a strong coupling did not revert within 4 tau")
	}
}

func TestSetSpinsClearsHolds(t *testing.T) {
	m := strongPair()
	ma := New(m, Config{Seed: 1, InducedFlip: sched.Constant(0), KickHoldNS: 100})
	ma.SetHorizon(50)
	ma.SetSpins([]int8{1, 1})
	ma.Run(1)
	ma.Induce(0) // held at -1 for 100 ns nominally
	ma.SetSpins([]int8{1, 1})
	ma.Run(5)
	// If the hold survived the state load, node 0 would be clamped
	// back to -1; it must instead follow the loaded state.
	if ma.Spins()[0] != 1 {
		t.Fatal("stale hold survived SetSpins and corrupted the loaded state")
	}
}

func TestInduceCountsAsInduced(t *testing.T) {
	m := strongPair()
	ma := New(m, Config{Seed: 1, InducedFlip: sched.Constant(0)})
	ma.SetHorizon(10)
	ma.SetSpins([]int8{1, 1})
	before := ma.InducedFlips()
	ma.Induce(1)
	if ma.InducedFlips() != before+1 {
		t.Fatal("Induce did not count an induced flip")
	}
	if ma.Flips() < 1 {
		t.Fatal("Induce did not count a flip")
	}
}

func TestDoubleInduceToggles(t *testing.T) {
	m := ising.NewModel(1)
	ma := New(m, Config{Seed: 1, InducedFlip: sched.Constant(0)})
	ma.SetHorizon(10)
	ma.SetSpins([]int8{1})
	ma.Induce(0)
	if ma.Spins()[0] != -1 {
		t.Fatal("first kick")
	}
	ma.Induce(0)
	if ma.Spins()[0] != 1 {
		t.Fatal("second kick did not toggle back")
	}
	if ma.InducedFlips() != 2 {
		t.Fatalf("induced count %d, want 2", ma.InducedFlips())
	}
}
