package brim

import (
	"math"
	"testing"

	"mbrim/internal/graph"
	"mbrim/internal/ising"
	"mbrim/internal/rng"
	"mbrim/internal/sched"
)

func ferromagnet(n int) *ising.Model {
	m := ising.NewModel(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.SetCoupling(i, j, 1)
		}
	}
	return m
}

func TestSettlesFerromagnet(t *testing.T) {
	n := 16
	m := ferromagnet(n)
	res := Solve(m, SolveConfig{Duration: 80, Config: Config{Seed: 1}})
	want := -float64(n*(n-1)) / 2
	if res.Energy != want {
		t.Fatalf("energy %v, want ground %v (spins %v)", res.Energy, want, res.Spins)
	}
}

func TestSettlesAntiferromagnetPair(t *testing.T) {
	// Two spins with J = -1 must end up anti-aligned.
	m := ising.NewModel(2)
	m.SetCoupling(0, 1, -1)
	res := Solve(m, SolveConfig{Duration: 60, Config: Config{Seed: 2}})
	if res.Spins[0] == res.Spins[1] {
		t.Fatalf("antiferromagnetic pair aligned: %v", res.Spins)
	}
	if res.Energy != -1 {
		t.Fatalf("energy %v, want -1", res.Energy)
	}
}

func TestBiasPullsSpin(t *testing.T) {
	// A single strongly biased node must follow its bias.
	m := ising.NewModel(2)
	m.SetCoupling(0, 1, 0.01)
	m.SetBias(0, 3)
	m.SetBias(1, -3)
	res := Solve(m, SolveConfig{Duration: 60, Config: Config{Seed: 3}})
	if res.Spins[0] != 1 || res.Spins[1] != -1 {
		t.Fatalf("bias ignored: %v", res.Spins)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	r := rng.New(4)
	g := graph.Complete(24, r)
	m := g.ToIsing()
	a := Solve(m, SolveConfig{Duration: 40, Config: Config{Seed: 5}})
	b := Solve(m, SolveConfig{Duration: 40, Config: Config{Seed: 5}})
	if a.Energy != b.Energy || ising.HammingDistance(a.Spins, b.Spins) != 0 {
		t.Fatal("same seed produced different trajectories")
	}
	if a.Flips != b.Flips || a.Induced != b.Induced || a.Steps != b.Steps {
		t.Fatal("same seed produced different counters")
	}
}

func TestVoltagesStayOnRails(t *testing.T) {
	r := rng.New(6)
	g := graph.Complete(30, r)
	ma := New(g.ToIsing(), Config{Seed: 7})
	ma.Run(50)
	for i, v := range ma.Voltages() {
		if v < -1 || v > 1 || math.IsNaN(v) {
			t.Fatalf("voltage %d out of rails: %v", i, v)
		}
	}
}

func TestAnnealingBeatsFrozenDynamics(t *testing.T) {
	// With induced flips disabled the machine greedily settles; with
	// the default annealing schedule it must (statistically) match or
	// beat the frozen run on a frustrated instance.
	r := rng.New(8)
	g := graph.Complete(40, r)
	m := g.ToIsing()
	var frozen, annealed float64
	runs := 5
	for i := 0; i < runs; i++ {
		f := Solve(m, SolveConfig{
			Duration: 60,
			Config:   Config{Seed: uint64(10 + i), InducedFlip: sched.Constant(0)},
		})
		a := Solve(m, SolveConfig{Duration: 60, Config: Config{Seed: uint64(10 + i)}})
		frozen += f.Energy
		annealed += a.Energy
	}
	if annealed > frozen {
		t.Fatalf("annealing hurt on average: %v vs %v", annealed/5, frozen/5)
	}
}

func TestFlipsCounted(t *testing.T) {
	r := rng.New(9)
	g := graph.Complete(20, r)
	res := Solve(g.ToIsing(), SolveConfig{Duration: 60, Config: Config{Seed: 11}})
	if res.Flips == 0 {
		t.Fatal("no flips recorded over a full annealing run")
	}
	if res.Induced > res.Flips {
		t.Fatalf("induced flips (%d) exceed total flips (%d)", res.Induced, res.Flips)
	}
}

func TestOnFlipListener(t *testing.T) {
	r := rng.New(10)
	g := graph.Complete(20, r)
	ma := New(g.ToIsing(), Config{Seed: 12})
	var events int64
	ma.OnFlip(func(node int, newSpin int8, induced bool) {
		if node < 0 || node >= 20 {
			t.Fatalf("flip event for bad node %d", node)
		}
		if newSpin != 1 && newSpin != -1 {
			t.Fatalf("flip event with bad spin %d", newSpin)
		}
		events++
	})
	ma.SetHorizon(60)
	ma.Run(60)
	if events != ma.Flips() {
		t.Fatalf("listener saw %d events, machine counted %d", events, ma.Flips())
	}
}

func TestModelTimeAccounting(t *testing.T) {
	m := ferromagnet(8)
	res := Solve(m, SolveConfig{Duration: 25, Config: Config{Seed: 1}})
	if math.Abs(res.ModelNS-25) > 1e-6 {
		t.Fatalf("model time %v, want 25", res.ModelNS)
	}
}

func TestRunInChunksMatchesSingleRun(t *testing.T) {
	// Epoch-driven operation must integrate the same trajectory as one
	// long run when the horizon is declared up front.
	r := rng.New(13)
	g := graph.Complete(16, r)
	m := g.ToIsing()

	one := New(m, Config{Seed: 14})
	one.SetHorizon(40)
	one.Run(40)

	chunked := New(m, Config{Seed: 14})
	chunked.SetHorizon(40)
	for i := 0; i < 20; i++ {
		chunked.Run(2)
	}

	if ising.HammingDistance(one.Spins(), chunked.Spins()) != 0 {
		t.Fatal("chunked run diverged from single run")
	}
	for i := range one.Voltages() {
		if math.Abs(one.Voltages()[i]-chunked.Voltages()[i]) > 1e-6 {
			t.Fatalf("voltage %d differs: %v vs %v", i, one.Voltages()[i], chunked.Voltages()[i])
		}
	}
}

func TestExternalBiasActsLikeFrozenNeighbor(t *testing.T) {
	// A 1-node machine with external bias b must settle to sign(b) —
	// this is the shadow-copy mechanism in miniature.
	m := ising.NewModel(1)
	ma := New(m, Config{Seed: 15, InducedFlip: sched.Constant(0)})
	ma.SetExternalBias([]float64{1.5})
	ma.SetHorizon(30)
	ma.Run(30)
	if ma.Spins()[0] != 1 {
		t.Fatalf("positive external bias gave spin %d", ma.Spins()[0])
	}

	mb := New(m, Config{Seed: 15, InducedFlip: sched.Constant(0)})
	mb.SetExternalBias([]float64{-1.5})
	mb.SetHorizon(30)
	mb.Run(30)
	if mb.Spins()[0] != -1 {
		t.Fatalf("negative external bias gave spin %d", mb.Spins()[0])
	}
}

func TestAddExternalBiasAccumulates(t *testing.T) {
	m := ising.NewModel(2)
	ma := New(m, Config{Seed: 1})
	ma.SetExternalBias([]float64{0.5, -0.5})
	ma.AddExternalBias(0, 0.25)
	got := ma.ExternalBias()
	if got[0] != 0.75 || got[1] != -0.5 {
		t.Fatalf("external bias = %v", got)
	}
}

func TestSetSpinsWarmStart(t *testing.T) {
	m := ferromagnet(6)
	ma := New(m, Config{Seed: 16})
	s := []int8{1, -1, 1, -1, 1, -1}
	ma.SetSpins(s)
	if ising.HammingDistance(ma.Spins(), s) != 0 {
		t.Fatal("SetSpins did not set readout")
	}
	if ma.Flips() != 0 {
		t.Fatal("SetSpins counted flips")
	}
}

func TestSynchronizedMachinesInduceIdentically(t *testing.T) {
	// Two machines over the same model with cloned PRNGs and no
	// coupling differences must flip in lockstep (Sec 5.4.2).
	m := ferromagnet(10)
	master := rng.New(77)
	a := New(m, Config{Seed: 0})
	b := New(m, Config{Seed: 0})
	a.SetRNG(master.Clone())
	b.SetRNG(master.Clone())
	// Give both the same initial state to make trajectories identical.
	s := ising.RandomSpins(10, rng.New(5))
	a.SetSpins(s)
	b.SetSpins(s)
	a.SetHorizon(40)
	b.SetHorizon(40)
	a.Run(40)
	b.Run(40)
	if a.InducedFlips() != b.InducedFlips() {
		t.Fatalf("induced counts differ: %d vs %d", a.InducedFlips(), b.InducedFlips())
	}
	if ising.HammingDistance(a.Spins(), b.Spins()) != 0 {
		t.Fatal("synchronized machines diverged")
	}
}

func TestTraceSampling(t *testing.T) {
	r := rng.New(17)
	g := graph.Complete(12, r)
	res := Solve(g.ToIsing(), SolveConfig{
		Duration:       20,
		SampleInterval: 5,
		Config:         Config{Seed: 18},
	})
	if len(res.Trace) != 4 {
		t.Fatalf("trace has %d samples, want 4", len(res.Trace))
	}
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i].X <= res.Trace[i-1].X {
			t.Fatal("trace times not increasing")
		}
	}
	last := res.Trace[len(res.Trace)-1]
	if math.Abs(last.Y-res.Energy) > 1e-9 {
		t.Fatalf("last trace sample %v != final energy %v", last.Y, res.Energy)
	}
}

func TestSolveBatchBest(t *testing.T) {
	r := rng.New(19)
	g := graph.Complete(20, r)
	m := g.ToIsing()
	best, all := SolveBatch(m, SolveConfig{Duration: 30, Config: Config{Seed: 100}}, 5)
	if len(all) != 5 {
		t.Fatalf("got %d results", len(all))
	}
	for _, res := range all {
		if res.Energy < best.Energy {
			t.Fatal("best is not minimal")
		}
	}
}

func TestEulerRunsAndStaysBounded(t *testing.T) {
	r := rng.New(20)
	g := graph.Complete(16, r)
	ma := New(g.ToIsing(), Config{Seed: 21})
	ma.SetHorizon(30)
	ma.RunEuler(30)
	for _, v := range ma.Voltages() {
		if v < -1 || v > 1 || math.IsNaN(v) {
			t.Fatalf("Euler voltage escaped rails: %v", v)
		}
	}
}

func TestPanics(t *testing.T) {
	m := ferromagnet(4)
	for name, f := range map[string]func(){
		"zero duration":   func() { Solve(m, SolveConfig{Duration: 0}) },
		"zero runs":       func() { SolveBatch(m, SolveConfig{Duration: 1}, 0) },
		"neg run":         func() { New(m, Config{}).Run(-1) },
		"bad bias len":    func() { New(m, Config{}).SetExternalBias([]float64{1}) },
		"bad spins len":   func() { New(m, Config{}).SetSpins([]int8{1}) },
		"bad horizon":     func() { New(m, Config{}).SetHorizon(0) },
		"negative dt cfg": func() { New(m, Config{Dt: -1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestScaleConsistencyAcrossSlices(t *testing.T) {
	// Two machines given the same explicit Scale must normalize the
	// same coupling to the same value — required when one problem is
	// sliced over chips.
	m := ising.NewModel(2)
	m.SetCoupling(0, 1, 4)
	a := New(m, Config{Scale: 8})
	got := math.NaN()
	a.lat.Scan(0, func(j int, v float64) {
		if j == 1 {
			got = v
		}
	})
	if got != 0.5 {
		t.Fatalf("scaled coupling = %v, want 0.5", got)
	}
}

func TestMoreTimeDoesNotHurtQuality(t *testing.T) {
	r := rng.New(22)
	g := graph.Complete(32, r)
	m := g.ToIsing()
	var short, long float64
	for i := 0; i < 5; i++ {
		s := Solve(m, SolveConfig{Duration: 5, Config: Config{Seed: uint64(200 + i)}})
		l := Solve(m, SolveConfig{Duration: 80, Config: Config{Seed: uint64(200 + i)}})
		short += s.Energy
		long += l.Energy
	}
	if long > short {
		t.Fatalf("more annealing time hurt: %v vs %v", long/5, short/5)
	}
}

func BenchmarkStepN256(b *testing.B) {
	r := rng.New(1)
	g := graph.Complete(256, r)
	ma := New(g.ToIsing(), Config{Seed: 1})
	ma.SetHorizon(float64(b.N) * ma.cfg.Dt)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if bad, _ := ma.trialStep(ma.cfg.Dt); bad < 0 {
			ma.commitStep(ma.cfg.Dt)
		}
	}
}
