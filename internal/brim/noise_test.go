package brim

import (
	"testing"

	"mbrim/internal/graph"
	"mbrim/internal/ising"
	"mbrim/internal/lattice"
	"mbrim/internal/metrics"
	"mbrim/internal/rng"
)

func avgCut(t *testing.T, g *graph.Graph, m *ising.Model, cfg Config, runs int) float64 {
	t.Helper()
	cuts := make([]float64, runs)
	for i := range cuts {
		c := cfg
		c.Seed = uint64(1000 + i)
		res := Solve(m, SolveConfig{Duration: 80, Config: c})
		cuts[i] = g.CutFromEnergy(res.Energy)
	}
	return metrics.Summarize(cuts).Mean
}

func TestIdealMachineHasNoVariationState(t *testing.T) {
	m := ferromagnet(8)
	ma := New(m, Config{Seed: 1})
	if ma.invTauVar != nil || ma.kappaVar != nil {
		t.Fatal("ideal machine allocated variation state")
	}
}

func TestDeviceVariationDeterministic(t *testing.T) {
	g := graph.Complete(24, rng.New(2))
	m := g.ToIsing()
	cfg := Config{Seed: 3, DeviceVariation: 0.1}
	a := Solve(m, SolveConfig{Duration: 40, Config: cfg})
	b := Solve(m, SolveConfig{Duration: 40, Config: cfg})
	if a.Energy != b.Energy || ising.HammingDistance(a.Spins, b.Spins) != 0 {
		t.Fatal("variation broke determinism")
	}
}

func TestModerateVariationToleranted(t *testing.T) {
	// 5% process variation must not collapse solution quality — the
	// robustness any analog machine needs to be buildable.
	g := graph.Complete(48, rng.New(4))
	m := g.ToIsing()
	ideal := avgCut(t, g, m, Config{}, 6)
	varied := avgCut(t, g, m, Config{DeviceVariation: 0.05}, 6)
	if varied < 0.9*ideal {
		t.Fatalf("5%% variation cost >10%% quality: %v vs %v", varied, ideal)
	}
}

func TestVariationFactorsClamped(t *testing.T) {
	m := ferromagnet(64)
	ma := New(m, Config{Seed: 5, DeviceVariation: 3}) // absurd spread
	for i, f := range ma.invTauVar {
		if f < 0.1 {
			t.Fatalf("invTauVar[%d] = %v below clamp", i, f)
		}
	}
	for i, f := range ma.kappaVar {
		if f < 0.1 {
			t.Fatalf("kappaVar[%d] = %v below clamp", i, f)
		}
	}
}

func TestNoiseKeepsVoltagesBounded(t *testing.T) {
	g := graph.Complete(24, rng.New(6))
	ma := New(g.ToIsing(), Config{Seed: 7, NoiseAmp: 0.5})
	ma.SetHorizon(40)
	ma.Run(40)
	for i, v := range ma.Voltages() {
		if v < -1 || v > 1 {
			t.Fatalf("voltage %d escaped rails under noise: %v", i, v)
		}
	}
}

func TestMildNoiseTolerated(t *testing.T) {
	g := graph.Complete(48, rng.New(8))
	m := g.ToIsing()
	ideal := avgCut(t, g, m, Config{}, 6)
	noisy := avgCut(t, g, m, Config{NoiseAmp: 0.02}, 6)
	if noisy < 0.9*ideal {
		t.Fatalf("mild noise cost >10%% quality: %v vs %v", noisy, ideal)
	}
}

func TestHeavyNoiseDegrades(t *testing.T) {
	// Sanity check that the noise actually couples into the dynamics:
	// overwhelming noise must hurt.
	g := graph.Complete(48, rng.New(9))
	m := g.ToIsing()
	ideal := avgCut(t, g, m, Config{}, 5)
	drowned := avgCut(t, g, m, Config{NoiseAmp: 3}, 5)
	if drowned >= ideal {
		t.Fatalf("overwhelming noise did not degrade quality: %v vs %v", drowned, ideal)
	}
}

func TestNegativeParamsPanic(t *testing.T) {
	m := ferromagnet(4)
	for name, f := range map[string]func(){
		"neg variation": func() { New(m, Config{DeviceVariation: -0.1}) },
		"neg noise":     func() { New(m, Config{NoiseAmp: -1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestWorkersBitIdentical(t *testing.T) {
	g := graph.Complete(64, rng.New(40))
	m := g.ToIsing()
	seq := Solve(m, SolveConfig{Duration: 30, Config: Config{Seed: 41}})
	// Every backend × worker count must reproduce the serial dense
	// trajectory exactly — the kernel's fixed chunk boundaries and the
	// backends' shared accumulation order are what make this hold.
	for _, backend := range []lattice.Kind{lattice.Dense, lattice.CSR, lattice.Blocked} {
		for _, workers := range []int{1, 4} {
			par := Solve(m, SolveConfig{Duration: 30,
				Config: Config{Seed: 41, Workers: workers, Backend: backend}})
			if seq.Energy != par.Energy || ising.HammingDistance(seq.Spins, par.Spins) != 0 {
				t.Fatalf("%v × %d workers changed the trajectory", backend, workers)
			}
			if seq.Flips != par.Flips {
				t.Fatalf("%v × %d workers changed the flip count", backend, workers)
			}
		}
	}
}
