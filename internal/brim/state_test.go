package brim

import (
	"context"
	"errors"
	"math"
	"testing"

	"mbrim/internal/graph"
	"mbrim/internal/ising"
	"mbrim/internal/rng"
)

func stateTestModel(n int, seed uint64) *ising.Model {
	return graph.Complete(n, rng.New(seed)).ToIsing()
}

func TestSnapshotRestoreBitIdentical(t *testing.T) {
	// Run A straight through; run B in two halves with a snapshot
	// carried across a machine teardown in between. Every observable
	// must coincide.
	m := stateTestModel(48, 1)
	cfg := Config{Seed: 7}

	a := New(m, cfg)
	a.SetHorizon(40)
	if err := a.Run(40); err != nil {
		t.Fatal(err)
	}

	b1 := New(m, cfg)
	b1.SetHorizon(40)
	if err := b1.Run(17.5); err != nil {
		t.Fatal(err)
	}
	st := b1.Snapshot()

	b2 := New(m, cfg)
	if err := b2.Restore(st); err != nil {
		t.Fatal(err)
	}
	if err := b2.Run(40 - 17.5); err != nil {
		t.Fatal(err)
	}

	if ising.HammingDistance(a.Spins(), b2.Spins()) != 0 {
		t.Fatal("spins diverged across snapshot/restore")
	}
	if a.Flips() != b2.Flips() || a.InducedFlips() != b2.InducedFlips() {
		t.Fatalf("flip counters diverged: %d/%d vs %d/%d",
			a.Flips(), a.InducedFlips(), b2.Flips(), b2.InducedFlips())
	}
	av, bv := a.Voltages(), b2.Voltages()
	for i := range av {
		if av[i] != bv[i] {
			t.Fatalf("voltage %d diverged: %v vs %v", i, av[i], bv[i])
		}
	}
	if ar, br := a.r.State(), b2.r.State(); ar != br {
		t.Fatal("PRNG streams diverged")
	}
}

func TestRestoreRejectsCorruptState(t *testing.T) {
	m := stateTestModel(16, 2)
	ma := New(m, Config{Seed: 3})
	ma.SetHorizon(10)
	if err := ma.Run(5); err != nil {
		t.Fatal(err)
	}
	good := ma.Snapshot()

	corrupt := func(mut func(*State)) *State {
		st := *good
		st.V = append([]float64(nil), good.V...)
		st.Spins = append([]int8(nil), good.Spins...)
		st.Ext = append([]float64(nil), good.Ext...)
		st.HoldUntil = append([]float64(nil), good.HoldUntil...)
		st.HoldTarget = append([]int8(nil), good.HoldTarget...)
		mut(&st)
		return &st
	}
	cases := map[string]*State{
		"nil":            nil,
		"wrong seed":     corrupt(func(s *State) { s.Seed++ }),
		"short v":        corrupt(func(s *State) { s.V = s.V[:3] }),
		"nan voltage":    corrupt(func(s *State) { s.V[0] = math.NaN() }),
		"off-rail":       corrupt(func(s *State) { s.V[0] = 1.5 }),
		"bogus spin":     corrupt(func(s *State) { s.Spins[0] = 2 }),
		"inf ext":        corrupt(func(s *State) { s.Ext[0] = math.Inf(1) }),
		"negative time":  corrupt(func(s *State) { s.T = -1 }),
		"nan horizon":    corrupt(func(s *State) { s.Horizon = math.NaN() }),
		"negative flips": corrupt(func(s *State) { s.Flips = -1 }),
	}
	for name, st := range cases {
		fresh := New(m, Config{Seed: 3})
		if err := fresh.Restore(st); err == nil {
			t.Errorf("%s: corrupt state accepted", name)
		}
	}
	fresh := New(m, Config{Seed: 3})
	if err := fresh.Restore(good); err != nil {
		t.Fatalf("pristine state rejected: %v", err)
	}
}

// blowupModel has zero couplings (so coupling normalization is
// identity) and a bias large enough that the first RK4 step exceeds
// the blowup limit even after every halving the guardrail will try.
func blowupModel(n int, h float64) *ising.Model {
	m := ising.NewModel(n)
	for i := 0; i < n; i++ {
		m.SetBias(i, h)
	}
	return m
}

func TestGuardrailDivergenceIsTyped(t *testing.T) {
	m := blowupModel(8, 1e12)
	_, err := SolveCtx(context.Background(), m, SolveConfig{Duration: 5, Config: Config{Seed: 1}})
	var div *DivergenceError
	if !errors.As(err, &div) {
		t.Fatalf("want *DivergenceError, got %v", err)
	}
	if div.Node < 0 || div.Node >= 8 {
		t.Fatalf("bogus node %d", div.Node)
	}
	if len(div.DtHistory) < 2 {
		t.Fatalf("guardrail gave up without halving: %v", div.DtHistory)
	}
	for i := 1; i < len(div.DtHistory); i++ {
		if div.DtHistory[i] >= div.DtHistory[i-1] {
			t.Fatalf("dt history not decreasing: %v", div.DtHistory)
		}
	}
	if math.IsNaN(div.Value) {
		// The diagnostic may legitimately carry NaN (mixed-sign
		// overflow) — but the machine's committed state must not.
	}
}

func TestGuardrailRetriesRecoverModerateBlowup(t *testing.T) {
	// A bias overshooting the limit by a few halvings' worth must
	// finish cleanly, with finite committed state and retries counted.
	m := blowupModel(8, 1e8)
	res, err := SolveCtx(context.Background(), m, SolveConfig{Duration: 5, Config: Config{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.StepRetries == 0 {
		t.Fatal("expected halved-step retries")
	}
	if !ising.ValidSpins(res.Spins) {
		t.Fatal("invalid spins after guarded run")
	}
	if math.IsNaN(res.Energy) || math.IsInf(res.Energy, 0) {
		t.Fatalf("non-finite energy %v", res.Energy)
	}
}

func TestGuardrailDisabled(t *testing.T) {
	// MaxStepRetries < 0 turns retries off: the same model diverges
	// immediately, still with a typed error.
	m := blowupModel(4, 1e8)
	_, err := SolveCtx(context.Background(), m, SolveConfig{Duration: 5,
		Config: Config{Seed: 1, MaxStepRetries: -1}})
	var div *DivergenceError
	if !errors.As(err, &div) {
		t.Fatalf("want *DivergenceError, got %v", err)
	}
	if len(div.DtHistory) != 1 {
		t.Fatalf("retries disabled but dt history is %v", div.DtHistory)
	}
}

func TestRunCtxCancelReturnsConsistentState(t *testing.T) {
	m := stateTestModel(32, 4)
	ma := New(m, Config{Seed: 5})
	ma.SetHorizon(100)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := ma.RunCtx(ctx, 100)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// The machine stopped at a flip-interval boundary: its snapshot
	// must be valid and resumable.
	st := ma.Snapshot()
	fresh := New(m, Config{Seed: 5})
	if err := fresh.Restore(st); err != nil {
		t.Fatalf("post-cancel snapshot invalid: %v", err)
	}
}
