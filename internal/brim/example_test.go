package brim_test

import (
	"fmt"
	"math"

	"mbrim/internal/brim"
	"mbrim/internal/graph"
	"mbrim/internal/rng"
)

// ExampleSolve anneals a small K-graph on one chip and reads the cut.
func ExampleSolve() {
	g := graph.Complete(32, rng.New(7))
	res := brim.Solve(g.ToIsing(), brim.SolveConfig{
		Duration: 100, // 100 ns of machine time
		Config:   brim.Config{Seed: 7},
	})
	fmt.Println(math.Abs(res.ModelNS-100) < 1e-6, g.CutFromEnergy(res.Energy) > 0)
	// Output: true true
}

// ExampleMachine_Run drives the machine epoch by epoch, the way the
// multiprocessor runtime does, with an external bias standing in for a
// remote shadow spin.
func ExampleMachine_Run() {
	g := graph.Complete(16, rng.New(3))
	ma := brim.New(g.ToIsing(), brim.Config{Seed: 3})
	ma.SetHorizon(40)
	bias := make([]float64, 16)
	bias[0] = 0.5 // a remote +1 spin coupled to node 0
	ma.SetExternalBias(bias)
	for epoch := 0; epoch < 10; epoch++ {
		ma.Run(4)
	}
	fmt.Println(math.Abs(ma.Time()-40) < 1e-6, len(ma.Spins()))
	// Output: true 16
}
