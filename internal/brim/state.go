package brim

import (
	"errors"
	"fmt"
	"math"
)

// State is a complete snapshot of a Machine's mutable state at a
// consistent point (between steps): voltages, readout, external bias
// currents, timekeeping, kick-hold registers, counters, and the exact
// PRNG stream position. Everything else a Machine holds — the scaled
// couplings, device-variation factors, scratch buffers — is either
// immutable or derived deterministically from the model and the
// construction seed, so a machine rebuilt with New over the same model
// and configuration and then Restored continues bit-identically to one
// that was never snapshotted.
type State struct {
	// Seed is the construction seed (Config.Seed). A resuming driver
	// must rebuild the machine with this seed: the initial-voltage
	// draws and the device-variation fork both derive from it.
	Seed uint64 `json:"seed"`
	// V are the node voltages; Ext the external bias currents (shadow
	// contributions in a multiprocessor).
	V   []float64 `json:"v"`
	Ext []float64 `json:"ext"`
	// Spins is the hysteresis readout.
	Spins []int8 `json:"spins"`
	// Timekeeping: model time, schedule horizon, next induced-flip
	// draw.
	T        float64 `json:"t"`
	Horizon  float64 `json:"horizon"`
	NextFlip float64 `json:"nextFlip"`
	// Counters.
	Flips       int64 `json:"flips"`
	Induced     int64 `json:"induced"`
	Steps       int64 `json:"steps"`
	StepRetries int64 `json:"stepRetries,omitempty"`
	// Kick-hold registers: nodes the annealing control is still
	// driving.
	HoldUntil  []float64 `json:"holdUntil"`
	HoldTarget []int8    `json:"holdTarget"`
	// RNG is the main stream's exact position.
	RNG [4]uint64 `json:"rng"`
}

// Snapshot captures the machine's mutable state. Call it only between
// Run calls (or at a flip-interval boundary a cancelled RunCtx left the
// machine at) — never mid-step.
func (ma *Machine) Snapshot() *State {
	return &State{
		Seed:        ma.cfg.Seed,
		V:           append([]float64(nil), ma.v...),
		Ext:         append([]float64(nil), ma.ext...),
		Spins:       append([]int8(nil), ma.spins...),
		T:           ma.t,
		Horizon:     ma.horizon,
		NextFlip:    ma.nextFlip,
		Flips:       ma.flips,
		Induced:     ma.induced,
		Steps:       ma.steps,
		StepRetries: ma.stepRetries,
		HoldUntil:   append([]float64(nil), ma.holdUntil...),
		HoldTarget:  append([]int8(nil), ma.holdTarget...),
		RNG:         ma.r.State(),
	}
}

// Restore loads a snapshot onto a machine freshly constructed over the
// same model with the same configuration (including State.Seed — the
// device-variation factors regenerate from it). Snapshots may come
// from untrusted checkpoint bytes, so Restore validates dimensions and
// value ranges and reports an error rather than panicking or loading a
// state the dynamics cannot have produced.
func (ma *Machine) Restore(st *State) error {
	if st == nil {
		return errors.New("brim: nil state")
	}
	if len(st.V) != ma.n || len(st.Ext) != ma.n || len(st.Spins) != ma.n ||
		len(st.HoldUntil) != ma.n || len(st.HoldTarget) != ma.n {
		return fmt.Errorf("brim: state dimensions do not match a %d-node machine", ma.n)
	}
	if st.Seed != ma.cfg.Seed {
		return fmt.Errorf("brim: state seed %d does not match machine seed %d", st.Seed, ma.cfg.Seed)
	}
	for i, v := range st.V {
		if math.IsNaN(v) || v < -1 || v > 1 {
			return fmt.Errorf("brim: state voltage[%d]=%v outside the rails", i, v)
		}
	}
	for i, b := range st.Ext {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			return fmt.Errorf("brim: state ext[%d]=%v is not finite", i, b)
		}
	}
	for i, s := range st.Spins {
		if s < -1 || s > 1 {
			return fmt.Errorf("brim: state spin[%d]=%d", i, s)
		}
	}
	for i, h := range st.HoldUntil {
		if math.IsNaN(h) || math.IsInf(h, 0) {
			return fmt.Errorf("brim: state holdUntil[%d]=%v is not finite", i, h)
		}
	}
	for i, s := range st.HoldTarget {
		if s < -1 || s > 1 {
			return fmt.Errorf("brim: state holdTarget[%d]=%d", i, s)
		}
	}
	if math.IsNaN(st.T) || math.IsInf(st.T, 0) || st.T < 0 ||
		math.IsNaN(st.Horizon) || math.IsInf(st.Horizon, 0) || st.Horizon < 0 ||
		math.IsNaN(st.NextFlip) || math.IsInf(st.NextFlip, 0) || st.NextFlip < 0 {
		return fmt.Errorf("brim: state times t=%v horizon=%v nextFlip=%v", st.T, st.Horizon, st.NextFlip)
	}
	if st.Flips < 0 || st.Induced < 0 || st.Steps < 0 || st.StepRetries < 0 {
		return errors.New("brim: negative state counters")
	}
	copy(ma.v, st.V)
	copy(ma.ext, st.Ext)
	copy(ma.spins, st.Spins)
	copy(ma.holdUntil, st.HoldUntil)
	copy(ma.holdTarget, st.HoldTarget)
	ma.t = st.T
	ma.horizon = st.Horizon
	ma.nextFlip = st.NextFlip
	ma.flips = st.Flips
	ma.induced = st.Induced
	ma.steps = st.Steps
	ma.stepRetries = st.StepRetries
	ma.epochRetries = 0
	ma.r.SetState(st.RNG)
	return nil
}
