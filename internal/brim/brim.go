// Package brim simulates a Bistable Resistively-coupled Ising Machine
// (BRIM [3]), the paper's baseline Ising substrate. Following the
// paper's methodology (Sec 6.1), the machine's dynamical system is
// integrated with the 4th-order Runge–Kutta method.
//
// # Dynamics
//
// Node i is a capacitor voltage V_i ∈ [-1, 1]. Three currents drive it:
//
//   - Coupling: Σ_j Ĵ_ij V_j, the resistive network. Ĵ is the problem's
//     coupling matrix scaled so the largest magnitude is ~1 (resistor
//     value 1/J_ij in the physical machine).
//   - Bias: μ ĥ_i plus an externally supplied per-node current. In a
//     multiprocessor, the external term carries the shadow copies of
//     remote spins — a frozen ±1 value per remote spin pushed through
//     the local coupling column exactly like g = μh + J_× σ of Eq. 3.
//   - Bistable feedback: κ(t)·(tanh(γ V_i) − V_i), the latch circuit
//     that makes each node snap to a rail. Its gain κ follows an
//     annealing schedule: weak early (analog exploration), strong late
//     (digitization).
//
// giving τ·dV_i/dt = couple_i + bias_i + feedback_i, with τ the RC time
// constant in nanoseconds. Increasing τ is the "slow down the machine's
// physics" knob of Sec 5.3 — the response to a bandwidth-limited fabric.
//
// # Annealing
//
// To escape local minima, the machine stochastically induces spin flips
// (Sec 5.4.2): every FlipInterval of model time, each node flips with a
// probability from a decaying schedule. The draw is made from the
// machine's PRNG in a fixed order, so two machines holding clones of
// the same PRNG induce identical flips — the property the coordinated
// induced-flip optimization depends on.
//
// # Time
//
// All times are nanoseconds of *model time*: the machine's own physics,
// not host CPU time. Results carry model time so speedups against
// measured software solvers can be formed the way the paper forms them.
package brim

import (
	"context"
	"fmt"
	"math"

	"mbrim/internal/ising"
	"mbrim/internal/lattice"
	"mbrim/internal/rng"
	"mbrim/internal/sched"
)

// Config parameterizes a machine. The zero value of most fields
// selects a sensible default; see each field.
type Config struct {
	// Dt is the RK4 step in ns. Default 0.05·Tau.
	Dt float64
	// Tau is the RC time constant in ns. Default 1.
	Tau float64
	// Gamma is the feedback sharpness (tanh slope). Default 1.5.
	Gamma float64
	// FeedbackGain is the κ(t) schedule over run progress. Default
	// ramps 0.05 → 1.2 linearly: nearly free analog exploration early,
	// firm digitization by the end. (Defaults tuned on seeded K-graphs;
	// the paper notes schedule tuning has significant impact, Sec 6.1.)
	FeedbackGain sched.Schedule
	// InducedFlip is the per-node flip probability schedule over run
	// progress, drawn every FlipInterval. Default decays 0.08 → 0.
	InducedFlip sched.Schedule
	// FlipInterval is the model time between induced-flip draws, in
	// ns. Default = Tau/2.
	FlipInterval float64
	// KickHoldNS is how long the annealing control actively drives a
	// kicked node at its new rail before releasing it to the analog
	// dynamics. Holding the pulse lets the rest of the network adapt,
	// so induced flips persist the way the architecture assumes
	// (Sec 5.4.2). Default 0.5·Tau. Negative disables holding.
	KickHoldNS float64
	// Scale divides the coupling matrix (resistor normalization).
	// Default = the model's MaxRowNorm2, putting typical local fields at
	// unit scale — the operating point where the bistable feedback
	// competes meaningfully with the coupling network, and the regime
	// in which induced flips persist long enough to matter.
	// Multi-chip slices of one problem must share one global scale.
	Scale float64
	// Seed drives induced flips and the random initial voltages.
	Seed uint64
	// SpinThreshold is the hysteresis level for the digital readout:
	// the discrete spin changes only when the voltage crosses the
	// opposite threshold. Default 0.1.
	SpinThreshold float64
	// DeviceVariation is the relative σ of per-node process variation:
	// each node's time constant and feedback gain are scaled by
	// independent factors drawn from N(1, σ) at construction (clamped
	// to ≥ 0.1). Zero models ideal devices.
	DeviceVariation float64
	// NoiseAmp is the thermal-noise amplitude: after every integration
	// step each node receives an independent N(0, NoiseAmp·√dt)
	// voltage kick (Euler–Maruyama). Zero models a noiseless machine.
	NoiseAmp float64
	// Workers splits the coupling matrix-vector product across
	// goroutines — a host-side speedup for large chips with no effect
	// on the simulated trajectory. Zero or one runs single-threaded.
	Workers int
	// Backend selects the coupling-matrix layout feeding the RK4
	// derivative (lattice.Auto resolves by measured density). Every
	// backend is bit-identical; the choice only moves host time.
	Backend lattice.Kind
	// MaxStepRetries bounds the numerical guardrail's step-halving
	// backoff: a step whose candidate voltages come out NaN/Inf or
	// blown far past the rails is discarded and retried at halved dt
	// up to this many times before the run aborts with a
	// *DivergenceError. Zero selects the default 8; negative disables
	// retries (the first bad step aborts).
	MaxStepRetries int
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Tau == 0 {
		out.Tau = 1
	}
	if out.Dt == 0 {
		out.Dt = 0.05 * out.Tau
	}
	if out.Gamma == 0 {
		out.Gamma = 1.5
	}
	if out.FeedbackGain == nil {
		out.FeedbackGain = sched.Linear{From: 0.05, To: 1.2}
	}
	if out.InducedFlip == nil {
		out.InducedFlip = sched.Linear{From: 0.08, To: 0}
	}
	if out.FlipInterval == 0 {
		out.FlipInterval = 0.5 * out.Tau
	}
	if out.KickHoldNS == 0 {
		out.KickHoldNS = 0.5 * out.Tau
	}
	if out.SpinThreshold == 0 {
		out.SpinThreshold = 0.1
	}
	if out.MaxStepRetries == 0 {
		out.MaxStepRetries = defaultMaxStepRetries
	}
	if out.Dt <= 0 || out.Tau <= 0 || out.FlipInterval <= 0 {
		panic(fmt.Sprintf("brim: non-positive time parameter: %+v", out))
	}
	return out
}

// Machine is a stateful BRIM instance. It is advanced in model time
// with Run; the multiprocessor drives one Machine per chip epoch by
// epoch. Machine is not safe for concurrent use.
type Machine struct {
	model *ising.Model
	cfg   Config
	r     *rng.Source

	lat   lattice.Coupling // scaled couplings Ĵ = J/scale behind the backend interface
	bhat  []float64        // scaled biases: μ·h_i / scale
	scale float64
	n     int
	v     []float64 // voltages
	spins []int8    // hysteresis readout
	ext   []float64 // external bias currents (shadow contributions)

	t        float64 // model time, ns
	horizon  float64 // total planned duration, for schedule progress
	nextFlip float64 // model time of the next induced-flip draw

	flips        int64 // readout sign changes (all causes)
	induced      int64 // flips whose proximate cause was an induced kick
	steps        int64
	stepRetries  int64 // guardrail halved-step retries, cumulative
	epochRetries int64 // retries since the last TakeEpochRetries drain
	// retryLog, when enabled, records where on the model timeline the
	// guardrail spent retries — the raw feed of "rk4_retry" trace spans.
	// Appended only on the (rare) retry path, never per step.
	retryLog     []RetryRecord
	logRetries   bool
	flipListener func(node int, newSpin int8, induced bool)

	// Kick-hold state: nodes the annealing control is still driving.
	holdUntil  []float64
	holdTarget []int8

	// Per-node process variation factors (nil when ideal): invTauVar
	// multiplies 1/τ, kappaVar multiplies the feedback gain.
	invTauVar []float64
	kappaVar  []float64

	// scratch buffers for RK4; cand holds a step's candidate voltages
	// so the guardrail can inspect them before any state commits.
	k1, k2, k3, k4, vtmp, cand []float64
}

// New builds a machine for the model. The machine starts at random
// rail voltages (±0.5) drawn from the seed, at model time 0, with a
// planned horizon that Run extends as needed.
func New(m *ising.Model, cfg Config) *Machine {
	c := cfg.withDefaults()
	n := m.N()
	scale := c.Scale
	if scale == 0 {
		scale = m.MaxRowNorm2()
		if scale == 0 {
			scale = 1
		}
	}
	ma := &Machine{
		model: m,
		cfg:   c,
		r:     rng.New(c.Seed),
		n:     n,
		scale: scale,
		bhat:  make([]float64, n),
		v:     make([]float64, n),
		spins: make([]int8, n),
		ext:   make([]float64, n),
		k1:    make([]float64, n),
		k2:    make([]float64, n),
		k3:    make([]float64, n),
		k4:    make([]float64, n),
		vtmp:  make([]float64, n),
		cand:  make([]float64, n),

		holdUntil:  make([]float64, n),
		holdTarget: make([]int8, n),
	}
	// The backend stores Ĵ = J/scale — division, exactly as the old
	// private jhat copy did, so trajectories are bit-identical.
	ma.lat = lattice.FromDense(n, m.Couplings(), c.Backend, scale)
	for i := 0; i < n; i++ {
		ma.bhat[i] = m.Mu() * m.Bias(i) / scale
	}
	for i := range ma.v {
		s := ma.r.Spin()
		ma.v[i] = 0.5 * float64(s)
		ma.spins[i] = s
	}
	if c.DeviceVariation < 0 {
		panic(fmt.Sprintf("brim: DeviceVariation=%v", c.DeviceVariation))
	}
	if c.NoiseAmp < 0 {
		panic(fmt.Sprintf("brim: NoiseAmp=%v", c.NoiseAmp))
	}
	if c.DeviceVariation > 0 {
		// Variation factors come from a fork so they do not disturb
		// the main stream (and thus PRNG coordination).
		vr := ma.r.Fork(0xDE71CE)
		ma.invTauVar = make([]float64, n)
		ma.kappaVar = make([]float64, n)
		for i := 0; i < n; i++ {
			ma.invTauVar[i] = clampFactor(1 + c.DeviceVariation*vr.NormFloat64())
			ma.kappaVar[i] = clampFactor(1 + c.DeviceVariation*vr.NormFloat64())
		}
	}
	ma.nextFlip = c.FlipInterval
	return ma
}

// N returns the number of nodes.
func (ma *Machine) N() int { return ma.n }

// Model returns the Ising model this machine was built over (do not
// mutate — the machine holds pre-scaled copies of its parameters).
func (ma *Machine) Model() *ising.Model { return ma.model }

// Time returns the current model time in ns.
func (ma *Machine) Time() float64 { return ma.t }

// Spins returns the current digital readout (do not mutate).
func (ma *Machine) Spins() []int8 { return ma.spins }

// Voltages returns the current node voltages (do not mutate).
func (ma *Machine) Voltages() []float64 { return ma.v }

// Flips returns the total number of readout sign changes so far.
func (ma *Machine) Flips() int64 { return ma.flips }

// InducedFlips returns how many readout changes were caused by the
// stochastic annealing kicks rather than the analog dynamics.
func (ma *Machine) InducedFlips() int64 { return ma.induced }

// Steps returns the number of RK4 steps taken.
func (ma *Machine) Steps() int64 { return ma.steps }

// Scale returns the coupling normalization divisor in effect. External
// bias contributions (shadow-spin currents) must be divided by the
// same scale to stay commensurate with the on-chip couplings.
func (ma *Machine) Scale() float64 { return ma.scale }

// Induce applies an externally commanded annealing kick to node i,
// driving its voltage firmly past the opposite threshold. The
// multiprocessor runtime uses this to coordinate induced flips across
// chips (Sec 5.4.2); the resulting readout change is counted as an
// induced flip.
func (ma *Machine) Induce(i int) {
	target := -ma.spins[i]
	if target == 0 {
		target = 1
	}
	ma.v[i] = 0.8 * float64(target)
	if ma.cfg.KickHoldNS > 0 {
		ma.holdUntil[i] = ma.t + ma.cfg.KickHoldNS
		ma.holdTarget[i] = target
	}
	if ma.spins[i] != target {
		ma.recordFlip(i, target, true)
	}
}

// applyHolds re-clamps nodes the annealing control is still driving.
func (ma *Machine) applyHolds() {
	for i, until := range ma.holdUntil {
		if until > ma.t {
			ma.v[i] = 0.8 * float64(ma.holdTarget[i])
		}
	}
}

// RNG exposes the machine's PRNG so a multiprocessor can install
// synchronized clones across chips before the run starts.
func (ma *Machine) RNG() *rng.Source { return ma.r }

// SetRNG replaces the machine's PRNG (coordinated induced flips hand
// every chip a clone of one master source).
func (ma *Machine) SetRNG(r *rng.Source) { ma.r = r }

// OnFlip installs a listener called on every readout change with the
// node index, its new spin, and whether an induced kick caused it.
// The fabric model subscribes here to generate update traffic.
func (ma *Machine) OnFlip(f func(node int, newSpin int8, induced bool)) {
	ma.flipListener = f
}

// SetHorizon declares the total planned run length in ns, used only to
// convert model time into schedule progress. Run sets it automatically
// when the horizon is unset; multi-epoch drivers set it once up front
// so schedules span the whole run rather than each epoch.
func (ma *Machine) SetHorizon(ns float64) {
	if ns <= 0 {
		panic("brim: non-positive horizon")
	}
	ma.horizon = ns
}

// SetSpins forces the node voltages to the rails matching s (the
// warm-start used by batch mode when a chip picks up another job's
// state) and resets the readout accordingly. It does not count flips:
// it is a state load, not dynamics.
func (ma *Machine) SetSpins(s []int8) {
	if len(s) != ma.n {
		panic("brim: SetSpins length mismatch")
	}
	for i, sp := range s {
		ma.v[i] = 0.7 * float64(sp)
		ma.spins[i] = sp
		// A state load cancels any pending annealing-control pulse; a
		// hold from the previous context must not corrupt this one.
		ma.holdUntil[i] = 0
	}
}

// SetExternalBias replaces the external per-node bias currents (the
// shadow-spin contributions, already scaled like the couplings).
func (ma *Machine) SetExternalBias(b []float64) {
	if len(b) != ma.n {
		panic("brim: SetExternalBias length mismatch")
	}
	copy(ma.ext, b)
}

// AddExternalBias adds delta to node i's external bias current — the
// O(1)-per-shadow-update path: when remote spin j held at σ flips, the
// owner chip adds 2·Ĵ_ij·σ_new for each local i.
func (ma *Machine) AddExternalBias(i int, delta float64) {
	ma.ext[i] += delta
}

// ExternalBias returns the current external bias vector (do not
// mutate).
func (ma *Machine) ExternalBias() []float64 { return ma.ext }

// deriv computes dV/dt into out for voltages v at schedule progress p.
// The shared kernel fans rows over Workers at fixed chunk boundaries;
// rows are disjoint and the inputs read-only, so the result is
// bit-identical to the sequential path at any worker count.
func (ma *Machine) deriv(v []float64, p float64, out []float64) {
	lattice.ForRange(ma.n, ma.cfg.Workers, func(lo, hi int) {
		ma.derivRange(v, p, out, lo, hi)
	})
}

// derivRange computes rows [lo, hi) of the derivative: the coupling
// matvec through the backend, then the bias and bistable-feedback tail
// added in the historical association (acc = rowdot, then +(bhat+ext),
// then +feedback, then ×1/τ).
func (ma *Machine) derivRange(v []float64, p float64, out []float64, lo, hi int) {
	kappa := ma.cfg.FeedbackGain.At(p)
	gamma := ma.cfg.Gamma
	invTau := 1 / ma.cfg.Tau
	ma.lat.MatVecRange(v, nil, out, lo, hi)
	for i := lo; i < hi; i++ {
		acc := out[i]
		acc += ma.bhat[i] + ma.ext[i]
		k := kappa
		if ma.kappaVar != nil {
			k *= ma.kappaVar[i]
		}
		acc += k * (math.Tanh(gamma*v[i]) - v[i])
		out[i] = acc * invTau
		if ma.invTauVar != nil {
			out[i] *= ma.invTauVar[i]
		}
	}
}

// clampFactor keeps a process-variation factor physical.
func clampFactor(f float64) float64 {
	if f < 0.1 {
		return 0.1
	}
	return f
}

// applyNoise adds the thermal kick after an integration step of dt.
func (ma *Machine) applyNoise(dt float64) {
	amp := ma.cfg.NoiseAmp * math.Sqrt(dt)
	for i := range ma.v {
		v := ma.v[i] + amp*ma.r.NormFloat64()
		if v > 1 {
			v = 1
		} else if v < -1 {
			v = -1
		}
		ma.v[i] = v
	}
}

// progress maps a model time to schedule progress given the horizon.
func (ma *Machine) progress(t float64) float64 {
	if ma.horizon <= 0 {
		return 0
	}
	p := t / ma.horizon
	if p > 1 {
		p = 1
	}
	return p
}

// Numerical guardrail constants. A candidate voltage past blowupLimit
// means the integrator left its stability region: physical voltages
// clamp at ±1, and a stable step never overshoots the rails by six
// orders of magnitude. defaultMaxStepRetries bounds the step-halving
// backoff (2^8 ≈ 256× dt reduction reach).
const (
	blowupLimit           = 1e6
	defaultMaxStepRetries = 8
)

// DivergenceError reports that the integrator left its numerical
// stability region and the step-halving guardrail could not recover:
// some candidate voltage came out NaN/Inf or beyond blowupLimit at
// every attempted step size. The machine's committed state is still
// the last stable one — no NaN ever reaches the voltages or readout.
type DivergenceError struct {
	// Node is the first offending node index (machine-local).
	Node int
	// TimeNS is the model time at which the failing step began.
	TimeNS float64
	// Value is the offending candidate voltage of the final attempt.
	Value float64
	// DtHistory lists every step size attempted, largest first.
	DtHistory []float64
}

func (e *DivergenceError) Error() string {
	last := math.NaN()
	if len(e.DtHistory) > 0 {
		last = e.DtHistory[len(e.DtHistory)-1]
	}
	return fmt.Sprintf("brim: integrator diverged at node %d, t=%.4g ns (candidate v=%g after %d step size(s) down to dt=%g)",
		e.Node, e.TimeNS, e.Value, len(e.DtHistory), last)
}

// trialStep computes the RK4 candidate voltages for a step of size dt
// into ma.cand without committing any state, and returns the first node
// whose candidate is NaN/Inf or beyond blowupLimit (-1 when the step is
// clean). Overflow in an intermediate stage surfaces in the candidate —
// Inf propagates through the remaining stages and mixed-sign overflow
// yields NaN — so checking the candidate catches stage blowups too.
func (ma *Machine) trialStep(dt float64) (badNode int, badV float64) {
	n := ma.n
	p := ma.progress(ma.t)
	pm := ma.progress(ma.t + dt/2)
	pe := ma.progress(ma.t + dt)

	ma.deriv(ma.v, p, ma.k1)
	for i := 0; i < n; i++ {
		ma.vtmp[i] = ma.v[i] + dt/2*ma.k1[i]
	}
	ma.deriv(ma.vtmp, pm, ma.k2)
	for i := 0; i < n; i++ {
		ma.vtmp[i] = ma.v[i] + dt/2*ma.k2[i]
	}
	ma.deriv(ma.vtmp, pm, ma.k3)
	for i := 0; i < n; i++ {
		ma.vtmp[i] = ma.v[i] + dt*ma.k3[i]
	}
	ma.deriv(ma.vtmp, pe, ma.k4)
	badNode = -1
	for i := 0; i < n; i++ {
		v := ma.v[i] + dt/6*(ma.k1[i]+2*ma.k2[i]+2*ma.k3[i]+ma.k4[i])
		ma.cand[i] = v
		if badNode < 0 && (math.IsNaN(v) || v > blowupLimit || v < -blowupLimit) {
			badNode, badV = i, v
		}
	}
	return badNode, badV
}

// trialStepEuler is trialStep for the forward-Euler ablation.
func (ma *Machine) trialStepEuler(dt float64) (badNode int, badV float64) {
	ma.deriv(ma.v, ma.progress(ma.t), ma.k1)
	badNode = -1
	for i := 0; i < ma.n; i++ {
		v := ma.v[i] + dt*ma.k1[i]
		ma.cand[i] = v
		if badNode < 0 && (math.IsNaN(v) || v > blowupLimit || v < -blowupLimit) {
			badNode, badV = i, v
		}
	}
	return badNode, badV
}

// commitStep commits the candidate voltages of a clean trial as one
// step of size dt: rail-clamp, advance time, then noise, kick holds and
// readout, exactly as an unguarded step would.
func (ma *Machine) commitStep(dt float64) {
	for i, v := range ma.cand {
		// Rails: the physical voltage saturates at the supplies.
		if v > 1 {
			v = 1
		} else if v < -1 {
			v = -1
		}
		ma.v[i] = v
	}
	ma.t += dt
	ma.steps++
	if ma.cfg.NoiseAmp > 0 {
		ma.applyNoise(dt)
	}
	ma.applyHolds()
	ma.updateReadout(false)
}

// guardedStep advances one integration step of size dt with the
// numerical guardrail: a step whose candidate voltages are non-finite
// or blown past blowupLimit is discarded and retried at halved dt, up
// to MaxStepRetries times. A retried step commits the shortened step —
// the machine simply takes more, smaller steps to cross the interval —
// and retries consume no PRNG draws, so the guardrail never perturbs an
// already-stable trajectory and guarded runs stay deterministic.
func (ma *Machine) guardedStep(dt float64, trial func(float64) (int, float64)) error {
	dt0 := dt
	limit := ma.cfg.MaxStepRetries
	if limit < 0 {
		limit = 0
	}
	for attempt := 0; ; attempt++ {
		bad, badV := trial(dt)
		if bad < 0 {
			ma.commitStep(dt)
			if attempt > 0 {
				ma.stepRetries += int64(attempt)
				ma.epochRetries += int64(attempt)
				if ma.logRetries {
					ma.retryLog = append(ma.retryLog,
						RetryRecord{TimeNS: ma.t, Retries: attempt, FinalDt: dt})
				}
			}
			return nil
		}
		if attempt >= limit {
			hist := make([]float64, attempt+1)
			d := dt0
			for i := range hist {
				hist[i] = d
				d /= 2
			}
			return &DivergenceError{Node: bad, TimeNS: ma.t, Value: badV, DtHistory: hist}
		}
		dt /= 2
	}
}

// StepRetries returns the total halved-step retries the numerical
// guardrail has spent so far.
func (ma *Machine) StepRetries() int64 { return ma.stepRetries }

// TakeEpochRetries drains the retry count accumulated since the last
// call. The multiprocessor reads it at epoch barriers, in chip order,
// to emit Numerical trace events deterministically under Parallel.
func (ma *Machine) TakeEpochRetries() int64 {
	r := ma.epochRetries
	ma.epochRetries = 0
	return r
}

// RetryRecord is one guardedStep invocation that needed halved-dt
// retries: the model-time position it committed at, how many halvings
// it spent, and the step size that finally went through.
type RetryRecord struct {
	TimeNS  float64
	Retries int
	FinalDt float64
}

// SetRetryLog enables (or disables) recording of per-retry positions
// for span tracing. Off by default: the log costs an append on the
// retry path only, but span consumers must opt in explicitly.
func (ma *Machine) SetRetryLog(on bool) { ma.logRetries = on }

// TakeRetryLog drains the recorded retry positions. Reading it at a
// run or epoch boundary keeps emission off the integration path.
func (ma *Machine) TakeRetryLog() []RetryRecord {
	log := ma.retryLog
	ma.retryLog = nil
	return log
}

// updateReadout applies the hysteresis comparator to every node and
// fires flip events.
func (ma *Machine) updateReadout(induced bool) {
	th := ma.cfg.SpinThreshold
	for i := 0; i < ma.n; i++ {
		s := ma.spins[i]
		if s >= 0 && ma.v[i] < -th {
			ma.recordFlip(i, -1, induced)
		} else if s <= 0 && ma.v[i] > th {
			ma.recordFlip(i, 1, induced)
		}
	}
}

func (ma *Machine) recordFlip(i int, newSpin int8, induced bool) {
	ma.spins[i] = newSpin
	ma.flips++
	if induced {
		ma.induced++
	}
	if ma.flipListener != nil {
		ma.flipListener(i, newSpin, induced)
	}
}

// induceFlips draws the stochastic annealing kicks for the current
// schedule point. Every node is drawn in index order so that machines
// with synchronized PRNGs make identical draws.
func (ma *Machine) induceFlips() {
	prob := ma.cfg.InducedFlip.At(ma.progress(ma.t))
	for i := 0; i < ma.n; i++ {
		if !ma.r.Bool(prob) {
			continue
		}
		// Kick the node firmly past the opposite threshold.
		target := -ma.spins[i]
		if target == 0 {
			target = 1
		}
		ma.v[i] = 0.6 * float64(target)
	}
	ma.updateReadout(true)
}

// Run advances the machine by duration ns of model time, processing
// induced-flip draws on schedule. If no horizon was declared, the
// first Run call sets it to its own duration. A non-nil error is a
// *DivergenceError: the machine's committed state is still the last
// stable one.
func (ma *Machine) Run(duration float64) error {
	return ma.run(context.Background(), duration, ma.trialStep)
}

// RunCtx is Run with cooperative cancellation: the context is checked
// at every flip-interval boundary, and ctx.Err() is returned when it
// fires, leaving the machine at a consistent state mid-run.
func (ma *Machine) RunCtx(ctx context.Context, duration float64) error {
	return ma.run(ctx, duration, ma.trialStep)
}

// RunEuler is Run with forward-Euler integration, for the integrator
// ablation bench only.
func (ma *Machine) RunEuler(duration float64) error {
	return ma.run(context.Background(), duration, ma.trialStepEuler)
}

// run is the shared advance loop: integrate to the next induced-flip
// draw or the end, whichever comes first, with the numerical guardrail
// around every step and a cancellation check per flip interval.
func (ma *Machine) run(ctx context.Context, duration float64, trial func(float64) (int, float64)) error {
	if duration <= 0 {
		panic("brim: Run with non-positive duration")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if ma.horizon <= 0 {
		ma.horizon = duration
	}
	end := ma.t + duration
	const eps = 1e-12
	done := ctx.Done()
	for ma.t < end-eps {
		if done != nil {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
		}
		// Integrate up to the next induced-flip draw or the epoch end,
		// whichever comes first.
		next := end
		if ma.nextFlip < next {
			next = ma.nextFlip
		}
		for ma.t < next-eps {
			dt := ma.cfg.Dt
			if ma.t+dt > next {
				dt = next - ma.t
			}
			if err := ma.guardedStep(dt, trial); err != nil {
				return err
			}
		}
		if ma.t >= ma.nextFlip-eps {
			ma.induceFlips()
			ma.nextFlip += ma.cfg.FlipInterval
		}
	}
	return nil
}
