package brim

import (
	"context"
	"fmt"

	"mbrim/internal/ising"
	"mbrim/internal/metrics"
	"mbrim/internal/obs"
)

// Result is the outcome of a complete single-chip annealing run.
type Result struct {
	Spins  []int8
	Energy float64
	// ModelNS is the machine time spent, in nanoseconds.
	ModelNS float64
	// Flips counts readout sign changes; Induced the subset caused by
	// annealing kicks; Steps the RK4 steps taken.
	Flips, Induced, Steps int64
	// StepRetries counts the numerical guardrail's halved-step retries.
	StepRetries int64
	// Trace, if sampling was requested, holds (model time ns, energy)
	// samples of the digital readout over the run.
	Trace []metrics.Point
}

// SolveConfig extends Config with run-level parameters.
type SolveConfig struct {
	Config
	// Duration is the total annealing time in ns. Must be > 0.
	Duration float64
	// SampleInterval, if > 0, records an energy sample of the readout
	// every so many ns into Result.Trace.
	SampleInterval float64
	// Initial optionally warm-starts the machine at the given spins.
	Initial []int8
	// Tracer, if non-nil, receives an EnergySample event per trace
	// sample (requires SampleInterval > 0). Nil disables tracing.
	Tracer obs.Tracer
	// Metrics, if non-nil, accumulates run totals (brim.steps,
	// brim.flips, brim.induced_flips, brim.step_retries, brim.runs).
	Metrics *obs.Registry
	// Spans, if non-nil, records the run as a "brim_run" interval under
	// SpanParent, with one "rk4_retry" child interval per guardrail
	// retry burst. Emission happens at run boundaries only and never
	// perturbs the trajectory.
	Spans *obs.Spanner
	// SpanParent is the enclosing interval (zero = root).
	SpanParent obs.Span
	// SpanOffsetNS shifts the run's intervals on the trace timeline —
	// batch drivers lay runs end to end with it, since each machine's
	// own model clock starts at zero.
	SpanOffsetNS float64
}

// Solve runs one annealing job on a fresh machine and reports the
// final readout, its energy, and the machine-time ledger. It panics on
// integrator divergence; callers that need the typed error use
// SolveCtx.
func Solve(m *ising.Model, cfg SolveConfig) *Result {
	res, err := SolveCtx(context.Background(), m, cfg)
	if err != nil {
		panic(err)
	}
	return res
}

// SolveCtx is Solve with lifecycle control. Cancellation stops the run
// at the next flip-interval (or sample) boundary and returns the
// partial best-effort result alongside ctx.Err(); integrator
// divergence returns the last stable state alongside a
// *DivergenceError. The result is always non-nil and internally
// consistent.
func SolveCtx(ctx context.Context, m *ising.Model, cfg SolveConfig) (*Result, error) {
	if cfg.Duration <= 0 {
		panic(fmt.Sprintf("brim: Duration=%v", cfg.Duration))
	}
	if ctx == nil {
		ctx = context.Background()
	}
	ma := New(m, cfg.Config)
	ma.SetHorizon(cfg.Duration)
	if cfg.Initial != nil {
		ma.SetSpins(cfg.Initial)
	}
	var runSpan obs.Span
	if cfg.Spans != nil {
		runSpan = cfg.Spans.Start("brim_run", cfg.SpanParent, -1, cfg.SpanOffsetNS)
		ma.SetRetryLog(true)
	}
	res := &Result{}
	var runErr error
	if cfg.SampleInterval > 0 {
		for t := 0.0; t < cfg.Duration && runErr == nil; t += cfg.SampleInterval {
			chunk := cfg.SampleInterval
			if t+chunk > cfg.Duration {
				chunk = cfg.Duration - t
			}
			runErr = ma.RunCtx(ctx, chunk)
			if runErr != nil {
				break
			}
			en := m.Energy(ma.Spins())
			res.Trace = append(res.Trace, metrics.Point{
				X: ma.Time(),
				Y: en,
			})
			if cfg.Tracer != nil {
				cfg.Tracer.Emit(obs.Event{Kind: obs.EnergySample,
					ModelNS: ma.Time(), Value: en})
			}
		}
	} else {
		runErr = ma.RunCtx(ctx, cfg.Duration)
	}
	res.Spins = ising.CopySpins(ma.Spins())
	res.Energy = m.Energy(res.Spins)
	res.ModelNS = ma.Time()
	res.Flips = ma.Flips()
	res.Induced = ma.InducedFlips()
	res.Steps = ma.Steps()
	res.StepRetries = ma.StepRetries()
	if cfg.Spans != nil {
		for _, rr := range ma.TakeRetryLog() {
			cfg.Spans.Complete("rk4_retry", runSpan, -1,
				cfg.SpanOffsetNS+rr.TimeNS, 0, 0, &obs.Event{Count: int64(rr.Retries), Aux: rr.FinalDt})
		}
		runSpan.End(cfg.SpanOffsetNS+ma.Time(), &obs.Event{Count: res.Flips})
	}
	if cfg.Metrics != nil {
		cfg.Metrics.Counter("brim.runs").Inc()
		cfg.Metrics.Counter("brim.steps").Add(res.Steps)
		cfg.Metrics.Counter("brim.flips").Add(res.Flips)
		cfg.Metrics.Counter("brim.induced_flips").Add(res.Induced)
		cfg.Metrics.Counter("brim.step_retries").Add(res.StepRetries)
	}
	return res, runErr
}

// SolveBatch runs `runs` annealing jobs from different seeds on one
// machine design and returns the per-run results plus the index of the
// best. Model time accumulates across runs: a single chip performs the
// batch sequentially, which is exactly the baseline batch mode is
// measured against.
func SolveBatch(m *ising.Model, cfg SolveConfig, runs int) (best *Result, all []*Result) {
	best, all, err := SolveBatchCtx(context.Background(), m, cfg, runs)
	if err != nil {
		panic(err)
	}
	return best, all
}

// SolveBatchCtx is SolveBatch with lifecycle control: on cancellation
// or divergence it returns the completed runs plus the interrupted
// partial, the best among them, and the error.
func SolveBatchCtx(ctx context.Context, m *ising.Model, cfg SolveConfig, runs int) (best *Result, all []*Result, err error) {
	if runs < 1 {
		panic(fmt.Sprintf("brim: runs=%d", runs))
	}
	offset := cfg.SpanOffsetNS
	for i := 0; i < runs; i++ {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)
		c.SpanOffsetNS = offset
		res, rerr := SolveCtx(ctx, m, c)
		offset += res.ModelNS
		all = append(all, res)
		if best == nil || res.Energy < best.Energy {
			best = res
		}
		if rerr != nil {
			return best, all, rerr
		}
	}
	return best, all, nil
}
