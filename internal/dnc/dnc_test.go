package dnc

import (
	"math"
	"testing"

	"mbrim/internal/brim"
	"mbrim/internal/graph"
	"mbrim/internal/ising"
	"mbrim/internal/rng"
	"mbrim/internal/sa"
)

func testGraph(n int, seed uint64) *ising.Model {
	return graph.Complete(n, rng.New(seed)).ToIsing()
}

func proxy(cap int) *ProxyMachine {
	return &ProxyMachine{Cap: cap, AnnealNS: 1000, Program: 100, Sweeps: 40}
}

func TestQBSolvFitsInMachine(t *testing.T) {
	// Problem within capacity: one launch per pass, solution at least
	// as good as a short SA reference.
	m := testGraph(40, 1)
	res := QBSolv(m, proxy(64), QBSolvConfig{Seed: 2})
	if res.Launches == 0 {
		t.Fatal("machine never launched")
	}
	if d := math.Abs(res.Energy - m.Energy(res.Spins)); d > 1e-6 {
		t.Fatalf("energy off by %v", d)
	}
	ref := sa.Solve(m, sa.Config{Sweeps: 5, Seed: 3})
	if res.Energy > ref.Energy {
		t.Fatalf("qbsolv (%v) worse than 5-sweep SA (%v)", res.Energy, ref.Energy)
	}
}

func TestQBSolvBeyondCapacity(t *testing.T) {
	// Problem larger than the machine: must still produce a valid,
	// reasonable solution with multiple launches per pass.
	m := testGraph(90, 4)
	res := QBSolv(m, proxy(32), QBSolvConfig{Seed: 5})
	if res.Launches < res.Passes*2 {
		t.Fatalf("expected >=2 launches per pass, got %d launches %d passes",
			res.Launches, res.Passes)
	}
	if !ising.ValidSpins(res.Spins) || len(res.Spins) != 90 {
		t.Fatal("invalid solution vector")
	}
	if res.GlueOps == 0 {
		t.Fatal("no glue ops recorded despite oversized problem")
	}
}

func TestQBSolvGlueGrowsWithOversize(t *testing.T) {
	// The Sec 3.3 effect: glue work appears only when the problem
	// exceeds capacity, and grows with the excess.
	small := QBSolv(testGraph(60, 6), proxy(64), QBSolvConfig{Seed: 7})
	if small.GlueOps != 0 {
		t.Fatalf("within-capacity run has %d glue ops", small.GlueOps)
	}
	big := QBSolv(testGraph(80, 6), proxy(64), QBSolvConfig{Seed: 7})
	bigger := QBSolv(testGraph(128, 6), proxy(64), QBSolvConfig{Seed: 7})
	if big.GlueOps == 0 || bigger.GlueOps <= big.GlueOps {
		t.Fatalf("glue ops not growing: %d then %d", big.GlueOps, bigger.GlueOps)
	}
}

func TestQBSolvDeterministic(t *testing.T) {
	m := testGraph(50, 8)
	a := QBSolv(m, proxy(32), QBSolvConfig{Seed: 9})
	b := QBSolv(m, proxy(32), QBSolvConfig{Seed: 9})
	if a.Energy != b.Energy || ising.HammingDistance(a.Spins, b.Spins) != 0 {
		t.Fatal("same seed produced different runs")
	}
}

func TestQBSolvTimeLedger(t *testing.T) {
	m := testGraph(70, 10)
	res := QBSolv(m, proxy(32), QBSolvConfig{Seed: 11})
	wantHW := float64(res.Launches) * 1000
	wantProg := float64(res.Launches) * 100
	if res.HardwareNS != wantHW || res.ProgramNS != wantProg {
		t.Fatalf("ledger wrong: hw %v (want %v), prog %v (want %v)",
			res.HardwareNS, wantHW, res.ProgramNS, wantProg)
	}
	if res.SoftwareWall <= 0 {
		t.Fatal("no software time recorded")
	}
	if res.TotalNS() <= wantHW+wantProg {
		t.Fatal("TotalNS must include software wall time")
	}
}

func TestOrderByImpactSorted(t *testing.T) {
	m := testGraph(30, 12)
	s := ising.RandomSpins(30, rng.New(13))
	idx := orderByImpact(m, s)
	if len(idx) != 30 {
		t.Fatalf("index has %d entries", len(idx))
	}
	fields := m.LocalFields(s, nil)
	seen := make([]bool, 30)
	last := math.Inf(1)
	for _, i := range idx {
		if seen[i] {
			t.Fatalf("index %d repeated", i)
		}
		seen[i] = true
		d := math.Abs(m.FlipDelta(s, fields, i))
		if d > last+1e-9 {
			t.Fatal("impacts not descending")
		}
		last = d
	}
}

func TestOursFitsInMachine(t *testing.T) {
	m := testGraph(40, 14)
	res := Ours(m, proxy(64), OursConfig{Seed: 15})
	if res.Launches != res.Passes {
		t.Fatalf("expected one launch per pass, got %d/%d", res.Launches, res.Passes)
	}
	if d := math.Abs(res.Energy - m.Energy(res.Spins)); d > 1e-6 {
		t.Fatalf("energy off by %v", d)
	}
}

func TestOursBeyondCapacity(t *testing.T) {
	m := testGraph(100, 16)
	res := Ours(m, proxy(48), OursConfig{Seed: 17})
	if !ising.ValidSpins(res.Spins) || len(res.Spins) != 100 {
		t.Fatal("invalid solution")
	}
	if res.GlueOps == 0 {
		t.Fatal("no glue recorded")
	}
	if res.SoftwareWall <= 0 {
		t.Fatal("host partitions recorded no software time")
	}
}

func TestOursImprovesOverRandom(t *testing.T) {
	m := testGraph(80, 18)
	res := Ours(m, proxy(32), OursConfig{Seed: 19})
	// Random assignments on a ±1 K-graph average energy ~0.
	if res.Energy >= 0 {
		t.Fatalf("d&c no better than random: %v", res.Energy)
	}
}

func TestOursDeterministic(t *testing.T) {
	m := testGraph(60, 20)
	a := Ours(m, proxy(32), OursConfig{Seed: 21})
	b := Ours(m, proxy(32), OursConfig{Seed: 21})
	if a.Energy != b.Energy || ising.HammingDistance(a.Spins, b.Spins) != 0 {
		t.Fatal("same seed produced different runs")
	}
}

func TestBRIMMachineAnneal(t *testing.T) {
	// The real-dynamics machine on a small ferromagnetic sub-problem.
	m := ising.NewModel(8)
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			m.SetCoupling(i, j, 1)
		}
	}
	mach := &BRIMMachine{Cap: 8, Cfg: brim.SolveConfig{Duration: 60}, Program: 50}
	init := ising.RandomSpins(8, rng.New(22))
	sol, ns := mach.Anneal(m, init, 23)
	if math.Abs(ns-60) > 1e-6 {
		t.Fatalf("model time %v, want 60", ns)
	}
	if e := m.Energy(sol); e != -28 {
		t.Fatalf("BRIM sub-anneal energy %v, want ground -28", e)
	}
}

func TestBRIMMachineCapacityEnforced(t *testing.T) {
	mach := &BRIMMachine{Cap: 4, Cfg: brim.SolveConfig{Duration: 10}}
	defer func() {
		if recover() == nil {
			t.Fatal("oversized sub-problem accepted")
		}
	}()
	mach.Anneal(ising.NewModel(5), make([]int8, 5), 1)
}

func TestProxyMachineCapacityEnforced(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized sub-problem accepted")
		}
	}()
	proxy(4).Anneal(ising.NewModel(5), make([]int8, 5), 1)
}

func TestQBSolvWithBRIMMachineEndToEnd(t *testing.T) {
	// Full-stack smoke test: qbsolv gluing a real dynamical-system
	// machine on a problem 2x its capacity.
	m := testGraph(32, 24)
	mach := &BRIMMachine{Cap: 16, Cfg: brim.SolveConfig{Duration: 30}, Program: 50}
	res := QBSolv(m, mach, QBSolvConfig{Seed: 25, NumRepeats: 1})
	if !ising.ValidSpins(res.Spins) {
		t.Fatal("invalid spins")
	}
	if res.HardwareNS == 0 {
		t.Fatal("no hardware time accumulated")
	}
	if res.Energy >= 0 {
		t.Fatalf("no optimization progress: %v", res.Energy)
	}
}

func TestOursPanicsOnZeroCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Ours(testGraph(10, 1), &ProxyMachine{Cap: 0}, OursConfig{})
}

func TestQBSolvPanicsOnBadFraction(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	QBSolv(testGraph(10, 1), proxy(8), QBSolvConfig{Fraction: 2})
}
