// Package dnc implements the divide-and-conquer strategies of Sec 3
// and the appendix: D-Wave's qbsolv algorithm (Algorithm 1) and the
// paper's leaner alternative (Algorithm 2). Both glue a fixed-capacity
// Ising machine to a conventional computer; the package's accounting
// exposes exactly why that strategy collapses (Fig 1) — the glue
// computation and reprogramming dominate as soon as the problem
// exceeds the machine.
//
// Time accounting. A run accumulates three costs:
//
//   - HardwareNS: model time the Ising machine spends annealing.
//   - ProgramNS: model time spent reprogramming the machine, once per
//     sub-problem launch (D-Wave's 11.7 ms versus 240 µs of everything
//     else is the paper's cautionary example).
//   - SoftwareWall: measured wall time of everything the von Neumann
//     host does — tabu/SA passes, bias recomputation (the glue).
//
// The Fig 1 speedup divides a whole-problem SA wall time by the sum of
// the three (model nanoseconds plus measured nanoseconds).
package dnc

import (
	"context"
	"fmt"
	"sort"
	"time"

	"mbrim/internal/brim"
	"mbrim/internal/ising"
	"mbrim/internal/lattice"
	"mbrim/internal/obs"
	"mbrim/internal/rng"
	"mbrim/internal/sa"
	"mbrim/internal/tabu"
)

// Machine abstracts the fixed-capacity Ising machine being glued.
type Machine interface {
	// Capacity is the number of spins the hardware can map.
	Capacity() int
	// Anneal solves the sub-problem starting from init, returning the
	// final spins and the model time consumed in ns.
	Anneal(sub *ising.Model, init []int8, seed uint64) ([]int8, float64)
	// ProgramNS is the reprogramming latency charged per launch.
	ProgramNS() float64
}

// BRIMMachine runs sub-problems on the full BRIM dynamical-system
// simulator. Faithful but expensive to simulate; use for modest sizes.
type BRIMMachine struct {
	Cap int
	// Cfg configures each sub-anneal; Duration must be set.
	Cfg brim.SolveConfig
	// Program is the reprogramming latency in ns (BRIM's DAC array
	// programming; far cheaper than D-Wave's but not free).
	Program float64
}

// Capacity returns the hardware spin count.
func (b *BRIMMachine) Capacity() int { return b.Cap }

// ProgramNS returns the per-launch reprogramming latency.
func (b *BRIMMachine) ProgramNS() float64 { return b.Program }

// Anneal runs the dynamical system on the sub-problem.
func (b *BRIMMachine) Anneal(sub *ising.Model, init []int8, seed uint64) ([]int8, float64) {
	if sub.N() > b.Cap {
		panic(fmt.Sprintf("dnc: sub-problem of %d spins exceeds machine capacity %d", sub.N(), b.Cap))
	}
	cfg := b.Cfg
	cfg.Seed = seed
	cfg.Initial = init
	res := brim.Solve(sub, cfg)
	return res.Spins, res.ModelNS
}

// ProxyMachine stands in for an Ising machine when simulating the full
// dynamics is too slow for a parameter sweep: solution quality comes
// from a short SA polish, while the *charged* time is the hardware
// model (AnnealNS per launch). This mirrors the paper's own
// methodology of combining measured software with modeled hardware.
type ProxyMachine struct {
	Cap      int
	AnnealNS float64 // charged model time per launch
	Program  float64 // charged reprogramming time per launch
	Sweeps   int     // SA effort used as the quality proxy
}

// Capacity returns the hardware spin count.
func (p *ProxyMachine) Capacity() int { return p.Cap }

// ProgramNS returns the per-launch reprogramming latency.
func (p *ProxyMachine) ProgramNS() float64 { return p.Program }

// Anneal polishes the sub-problem with SA and charges AnnealNS.
func (p *ProxyMachine) Anneal(sub *ising.Model, init []int8, seed uint64) ([]int8, float64) {
	if sub.N() > p.Cap {
		panic(fmt.Sprintf("dnc: sub-problem of %d spins exceeds machine capacity %d", sub.N(), p.Cap))
	}
	sweeps := p.Sweeps
	if sweeps == 0 {
		sweeps = 50
	}
	res := sa.Solve(sub, sa.Config{Sweeps: sweeps, Seed: seed, Initial: init})
	return res.Spins, p.AnnealNS
}

// Result is the outcome of a divide-and-conquer run.
type Result struct {
	Spins  []int8
	Energy float64
	// HardwareNS and ProgramNS are modeled machine time; SoftwareWall
	// is measured host time (glue + software passes).
	HardwareNS   float64
	ProgramNS    float64
	SoftwareWall time.Duration
	// Launches counts machine invocations; GlueOps the multiply-adds
	// spent forming effective biases (Sec 3.3's glue).
	Launches int
	GlueOps  int64
	// Passes is the number of outer iterations performed.
	Passes int
}

// TotalNS returns the end-to-end cost in nanoseconds: modeled machine
// time plus measured software time. This is the denominator of the
// Fig 1 speedups.
func (r *Result) TotalNS() float64 {
	return r.HardwareNS + r.ProgramNS + float64(r.SoftwareWall.Nanoseconds())
}

// QBSolvConfig parameterizes Algorithm 1.
type QBSolvConfig struct {
	// NumRepeats is the pass budget without improvement before the
	// algorithm stops (the while-loop bound). Default 2.
	NumRepeats int
	// Fraction of the variables visited per pass (line 12's
	// fraction·size). Default 1.
	Fraction float64
	// TabuIters bounds each tabu polish. Default 20·n.
	TabuIters int
	// Backend selects the coupling view the per-window glue extraction
	// scans (lattice.Auto resolves by measured density). Bit-identical
	// across backends; a sparse view makes each extraction O(degree)
	// per spin instead of O(N).
	Backend lattice.Kind
	// Seed drives all stochastic choices.
	Seed uint64
	// Tracer, if non-nil, receives a ChipStep event per machine launch
	// and an EnergySample per outer pass.
	Tracer obs.Tracer
	// Metrics, if non-nil, accumulates run totals (dnc.launches,
	// dnc.glue_ops, dnc.passes, dnc.runs).
	Metrics *obs.Registry
}

// QBSolv runs Algorithm 1 (D-Wave's qbsolv) with the given machine as
// the sub-problem solver. The problem is supplied as an Ising model;
// qbsolv's QUBO view and the Ising view are interchangeable (Sec 2.1).
func QBSolv(m *ising.Model, mach Machine, cfg QBSolvConfig) *Result {
	res, _ := QBSolvCtx(context.Background(), m, mach, cfg)
	return res
}

// QBSolvCtx is QBSolv with cancellation, checked between machine
// launches and between outer passes: the run stops there and returns
// the best state found so far alongside ctx.Err(). The result is
// always non-nil and internally consistent.
func QBSolvCtx(ctx context.Context, m *ising.Model, mach Machine, cfg QBSolvConfig) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := m.N()
	numRepeats := cfg.NumRepeats
	if numRepeats == 0 {
		numRepeats = 2
	}
	fraction := cfg.Fraction
	if fraction == 0 {
		fraction = 1
	}
	if fraction < 0 || fraction > 1 {
		panic(fmt.Sprintf("dnc: Fraction=%v", fraction))
	}
	tabuIters := cfg.TabuIters
	if tabuIters == 0 {
		tabuIters = 20 * n
	}
	r := rng.New(cfg.Seed)
	res := &Result{}
	subSize := mach.Capacity()
	if subSize > n {
		subSize = n
	}

	// Lines 7-9: initial estimate via tabu search from a random state.
	var qbest []int8
	var vbest float64
	var index []int
	swStart := time.Now()
	tr := tabu.Solve(m, tabu.Config{MaxIters: tabuIters, Seed: r.Uint64()})
	qbest, vbest = tr.Spins, tr.Energy
	index = orderByImpact(m, qbest)
	res.SoftwareWall += time.Since(swStart)

	qtmp := ising.CopySpins(qbest)
	total := int(fraction * float64(n))
	view := m.View(cfg.Backend)

	done := ctx.Done()
	var runErr error
	passCount := 0
	for passCount < numRepeats && runErr == nil {
		res.Passes++
		// Lines 15-21: clamp, launch machine, project — one pass over
		// the impact-ordered variables in capacity-sized windows.
		for i := 0; i < total; i += subSize {
			select {
			case <-done:
				runErr = ctx.Err()
			default:
			}
			if runErr != nil {
				break
			}
			end := i + subSize
			if end > len(index) {
				end = len(index)
			}
			window := index[i:end]

			glueStart := time.Now()
			sp := ising.ExtractFrom(view, m, window, qtmp)
			res.GlueOps += sp.GlueOps
			init := sp.Gather(qtmp)
			res.SoftwareWall += time.Since(glueStart)

			sol, annealNS := mach.Anneal(sp.Model, init, r.Uint64())
			res.HardwareNS += annealNS
			res.ProgramNS += mach.ProgramNS()
			res.Launches++
			if cfg.Tracer != nil {
				cfg.Tracer.Emit(obs.Event{Kind: obs.ChipStep, Epoch: res.Passes,
					Chip: res.Launches - 1, ModelNS: annealNS,
					Count: int64(sp.Model.N()), Label: "launch"})
			}

			sp.Project(sol, qtmp)
		}
		if runErr != nil {
			break
		}
		// Lines 22-23: whole-problem tabu polish and re-ordering.
		swStart = time.Now()
		tr = tabu.Solve(m, tabu.Config{MaxIters: tabuIters, Seed: r.Uint64(), Initial: qtmp})
		index = orderByImpact(m, tr.Spins)
		res.SoftwareWall += time.Since(swStart)
		if cfg.Tracer != nil {
			cfg.Tracer.Emit(obs.Event{Kind: obs.EnergySample, Epoch: res.Passes,
				Value: tr.Energy})
		}

		// Lines 24-32: best tracking and pass counting.
		switch {
		case tr.Energy < vbest:
			vbest = tr.Energy
			qbest = ising.CopySpins(tr.Spins)
			passCount = 0
		case tr.Energy == vbest:
			qbest = ising.CopySpins(tr.Spins)
			passCount++
		default:
			passCount++
		}
		qtmp = ising.CopySpins(tr.Spins)
	}
	res.Spins = qbest
	res.Energy = vbest
	recordRunMetrics(cfg.Metrics, res)
	return res, runErr
}

// recordRunMetrics adds a finished divide-and-conquer run's totals to
// the registry; a nil registry is a no-op.
func recordRunMetrics(reg *obs.Registry, res *Result) {
	if reg == nil {
		return
	}
	reg.Counter("dnc.runs").Inc()
	reg.Counter("dnc.launches").Add(int64(res.Launches))
	reg.Counter("dnc.glue_ops").Add(res.GlueOps)
	reg.Counter("dnc.passes").Add(int64(res.Passes))
}

// orderByImpact returns variable indices sorted by decreasing |ΔE| of
// a single flip at the given state — qbsolv's OrderByImpact.
func orderByImpact(m *ising.Model, spins []int8) []int {
	n := m.N()
	fields := m.LocalFields(spins, nil)
	impact := make([]float64, n)
	for i := 0; i < n; i++ {
		d := m.FlipDelta(spins, fields, i)
		if d < 0 {
			d = -d
		}
		impact[i] = d
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := impact[idx[a]], impact[idx[b]]
		if ia != ib {
			return ia > ib
		}
		return idx[a] < idx[b]
	})
	return idx
}
