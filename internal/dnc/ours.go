package dnc

import (
	"context"
	"fmt"
	"time"

	"mbrim/internal/ising"
	"mbrim/internal/lattice"
	"mbrim/internal/obs"
	"mbrim/internal/rng"
	"mbrim/internal/sa"
)

// OursConfig parameterizes Algorithm 2, the paper's leaner
// divide-and-conquer: randomly partition once, then repeatedly solve
// each partition with the others frozen and synchronize.
type OursConfig struct {
	// NumRepeats is the number of outer passes. Default 4.
	NumRepeats int
	// SoftwareSweeps is the SA effort for partitions that do not fit
	// the machine (they are solved by the host). Default 30.
	SoftwareSweeps int
	// Backend selects the coupling view the Synchronise-step glue
	// extraction scans (lattice.Auto resolves by measured density).
	// Bit-identical across backends.
	Backend lattice.Kind
	// Seed drives partitioning, initial state and solver seeds.
	Seed uint64
	// Tracer, if non-nil, receives a ChipStep event per hardware launch
	// and an EnergySample per outer pass.
	Tracer obs.Tracer
	// Metrics, if non-nil, accumulates run totals (dnc.launches,
	// dnc.glue_ops, dnc.passes, dnc.runs).
	Metrics *obs.Registry
}

// Ours runs Algorithm 2. The first partition is sized to the machine's
// capacity and solved in hardware; the remainder is split into
// capacity-sized chunks solved by host SA. Every pass re-extracts each
// sub-problem against the current global state (the Synchronise step —
// this is where the glue cost lives) and solves them in sequence, as
// Sec 3.3 argues they must be.
func Ours(m *ising.Model, mach Machine, cfg OursConfig) *Result {
	res, _ := OursCtx(context.Background(), m, mach, cfg)
	return res
}

// OursCtx is Ours with cancellation, checked between partition solves
// and between outer passes: the run stops there and returns the
// current global state alongside ctx.Err(). The result is always
// non-nil and internally consistent.
func OursCtx(ctx context.Context, m *ising.Model, mach Machine, cfg OursConfig) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := m.N()
	numRepeats := cfg.NumRepeats
	if numRepeats == 0 {
		numRepeats = 4
	}
	swSweeps := cfg.SoftwareSweeps
	if swSweeps == 0 {
		swSweeps = 30
	}
	cap := mach.Capacity()
	if cap < 1 {
		panic(fmt.Sprintf("dnc: machine capacity %d", cap))
	}
	r := rng.New(cfg.Seed)
	res := &Result{}

	// Line 8: RandPartition. The first part fills the machine; the
	// rest is chunked for the host.
	perm := r.Perm(n)
	var parts [][]int
	for at := 0; at < n; at += cap {
		end := at + cap
		if end > n {
			end = n
		}
		part := append([]int(nil), perm[at:end]...)
		parts = append(parts, part)
	}

	spins := ising.RandomSpins(n, r)
	view := m.View(cfg.Backend)

	// Lines 10-16: repeat passes of sequential per-partition solving.
	done := ctx.Done()
	var runErr error
	for rep := 0; rep < numRepeats && runErr == nil; rep++ {
		res.Passes++
		for pi, part := range parts {
			select {
			case <-done:
				runErr = ctx.Err()
			default:
			}
			if runErr != nil {
				break
			}
			glueStart := time.Now()
			sp := ising.ExtractFrom(view, m, part, spins)
			res.GlueOps += sp.GlueOps
			init := sp.Gather(spins)
			res.SoftwareWall += time.Since(glueStart)

			if pi == 0 && len(part) <= cap {
				// Hardware partition.
				sol, annealNS := mach.Anneal(sp.Model, init, r.Uint64())
				res.HardwareNS += annealNS
				res.ProgramNS += mach.ProgramNS()
				res.Launches++
				if cfg.Tracer != nil {
					cfg.Tracer.Emit(obs.Event{Kind: obs.ChipStep, Epoch: res.Passes,
						Chip: res.Launches - 1, ModelNS: annealNS,
						Count: int64(sp.Model.N()), Label: "launch"})
				}
				sp.Project(sol, spins)
			} else {
				// Host partition: SA with the same frozen-complement
				// sub-problem.
				swStart := time.Now()
				sr := sa.Solve(sp.Model, sa.Config{
					Sweeps: swSweeps, Seed: r.Uint64(), Initial: init,
				})
				res.SoftwareWall += time.Since(swStart)
				sp.Project(sr.Spins, spins)
			}
		}
		// Line 15: Synchronise is implicit — the next pass's Extract
		// reads the updated global state.
		if cfg.Tracer != nil {
			cfg.Tracer.Emit(obs.Event{Kind: obs.EnergySample, Epoch: res.Passes,
				Value: m.Energy(spins)})
		}
	}

	res.Spins = spins
	res.Energy = m.Energy(spins)
	recordRunMetrics(cfg.Metrics, res)
	return res, runErr
}
