package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead checks the Gset parser never panics and that anything it
// accepts survives a write/read round trip.
func FuzzRead(f *testing.F) {
	f.Add("3 2\n1 2 1\n2 3 -1\n")
	f.Add("1 0\n")
	f.Add("2 1\n1 2 0.5\n")
	f.Add("bogus")
	f.Add("3 1\n1 1 1\n")
	f.Add("-1 -1\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		// Accepted graphs must be structurally valid and re-readable.
		if g.N() < 1 {
			t.Fatalf("accepted graph with n=%d", g.N())
		}
		var buf bytes.Buffer
		if err := g.Write(&buf); err != nil {
			t.Fatalf("re-write failed: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.N() != g.N() || back.M() != g.M() {
			t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
				back.N(), back.M(), g.N(), g.M())
		}
	})
}
