// Package graph provides the benchmark workloads of the paper: fully
// connected K-graphs (K2000, K16384, ...), random Gset-style graphs,
// the text interchange format used by the MaxCut community, and the
// graph↔Ising mapping with its cut-value bookkeeping.
//
// MaxCut convention. For an undirected graph with edge weights w_ij,
// the cut value of an assignment σ is
//
//	cut(σ) = Σ_{(i,j)∈E} w_ij (1 − σ_i σ_j) / 2
//
// The corresponding Ising model uses J_ij = −w_ij, giving
// E(σ) = Σ_{(i,j)∈E} w_ij σ_i σ_j and the exact relation
//
//	cut(σ) = (W − E(σ)) / 2, with W = Σ w_ij.
//
// Maximizing the cut is minimizing the energy; the K-graph "cut value"
// numbers reported in the paper (e.g. 33,337 for K2000) are this
// quantity.
package graph

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"mbrim/internal/ising"
	"mbrim/internal/rng"
)

// Edge is an undirected weighted edge. Endpoints satisfy U < V.
type Edge struct {
	U, V   int
	Weight float64
}

// Graph is an undirected weighted graph with vertices 0..N-1 stored as
// an edge list; duplicate edges are coalesced by AddEdge.
type Graph struct {
	n     int
	edges []Edge
	index map[[2]int]int // endpoint pair → position in edges
}

// New returns an empty graph on n vertices. It panics if n <= 0.
func New(n int) *Graph {
	if n <= 0 {
		panic(fmt.Sprintf("graph: New with n=%d", n))
	}
	return &Graph{n: n, index: make(map[[2]int]int)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of (distinct) edges.
func (g *Graph) M() int { return len(g.edges) }

// Edges returns the edge list (do not mutate).
func (g *Graph) Edges() []Edge { return g.edges }

// AddEdge adds weight w to edge (u, v). Self-loops and out-of-range
// endpoints panic. Repeated calls accumulate onto the same edge.
func (g *Graph) AddEdge(u, v int, w float64) {
	if u == v {
		panic("graph: self-loop")
	}
	if u < 0 || v < 0 || u >= g.n || v >= g.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range for n=%d", u, v, g.n))
	}
	if u > v {
		u, v = v, u
	}
	key := [2]int{u, v}
	if pos, ok := g.index[key]; ok {
		g.edges[pos].Weight += w
		return
	}
	g.index[key] = len(g.edges)
	g.edges = append(g.edges, Edge{U: u, V: v, Weight: w})
}

// Weight returns the weight of edge (u, v), or 0 if absent.
func (g *Graph) Weight(u, v int) float64 {
	if u > v {
		u, v = v, u
	}
	if pos, ok := g.index[[2]int{u, v}]; ok {
		return g.edges[pos].Weight
	}
	return 0
}

// TotalWeight returns W = Σ w_ij over all edges.
func (g *Graph) TotalWeight() float64 {
	w := 0.0
	for _, e := range g.edges {
		w += e.Weight
	}
	return w
}

// CutValue returns the weight of edges crossing the bipartition
// defined by the spin assignment: Σ w_ij (1 − σ_i σ_j)/2.
func (g *Graph) CutValue(spins []int8) float64 {
	if len(spins) != g.n {
		panic("graph: CutValue with wrong spin length")
	}
	cut := 0.0
	for _, e := range g.edges {
		if spins[e.U] != spins[e.V] {
			cut += e.Weight
		}
	}
	return cut
}

// ToIsing maps the MaxCut instance to an Ising model with J = −w and
// zero biases, so minimizing energy maximizes the cut.
func (g *Graph) ToIsing() *ising.Model {
	m := ising.NewModel(g.n)
	for _, e := range g.edges {
		m.SetCoupling(e.U, e.V, -e.Weight)
	}
	return m
}

// ToSparseIsing maps the MaxCut instance to a sparse Ising model with
// J = −w and zero biases — the right representation for Gset-style
// graphs where density is a few percent.
func (g *Graph) ToSparseIsing() *ising.SparseModel {
	entries := make([]ising.SparseEntry, 0, len(g.edges))
	for _, e := range g.edges {
		entries = append(entries, ising.SparseEntry{I: e.U, J: e.V, V: -e.Weight})
	}
	return ising.NewSparse(g.n, entries, nil)
}

// CutFromEnergy converts an Ising energy of the ToIsing model back to
// a cut value via cut = (W − E)/2.
func (g *Graph) CutFromEnergy(energy float64) float64 {
	return (g.TotalWeight() - energy) / 2
}

// Degrees returns the vertex degrees.
func (g *Graph) Degrees() []int {
	d := make([]int, g.n)
	for _, e := range g.edges {
		d[e.U]++
		d[e.V]++
	}
	return d
}

// Subgraph returns the induced subgraph over the given vertices (which
// are renumbered 0..len(vs)-1 in order) plus the index map used.
func (g *Graph) Subgraph(vs []int) (*Graph, []int) {
	local := make(map[int]int, len(vs))
	for i, v := range vs {
		if _, dup := local[v]; dup {
			panic(fmt.Sprintf("graph: Subgraph duplicate vertex %d", v))
		}
		local[v] = i
	}
	sg := New(len(vs))
	for _, e := range g.edges {
		lu, okU := local[e.U]
		lv, okV := local[e.V]
		if okU && okV {
			sg.AddEdge(lu, lv, e.Weight)
		}
	}
	return sg, append([]int(nil), vs...)
}

// --- Generators -----------------------------------------------------

// Complete returns the K-graph K_n with edge weights drawn uniformly
// from {-1, +1}, the benchmark family of the paper (K2000 [28],
// K16384 [49]). The instance is fully determined by n and the seed.
func Complete(n int, r *rng.Source) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j, float64(r.Spin()))
		}
	}
	return g
}

// Random returns an Erdős–Rényi G(n, p) graph with ±1 weights, the
// Gset-style sparse workload used for the divide-and-conquer study.
func Random(n int, p float64, r *rng.Source) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Bool(p) {
				g.AddEdge(i, j, float64(r.Spin()))
			}
		}
	}
	return g
}

// RandomRegularish returns a graph where each vertex gets exactly d
// randomly chosen distinct neighbours (so degrees are between d and
// ~2d). It is the cheap stand-in for d-regular benchmark graphs.
func RandomRegularish(n, d int, r *rng.Source) *Graph {
	if d >= n {
		panic("graph: RandomRegularish degree >= n")
	}
	g := New(n)
	for i := 0; i < n; i++ {
		seen := map[int]bool{i: true}
		for len(seen) < d+1 {
			j := r.Intn(n)
			if seen[j] {
				continue
			}
			seen[j] = true
			if g.Weight(i, j) == 0 {
				g.AddEdge(i, j, float64(r.Spin()))
			}
		}
	}
	return g
}

// --- Partitioning ---------------------------------------------------

// BlockPartition splits vertices 0..n-1 into k contiguous blocks whose
// sizes differ by at most one — the slicing used when a problem is
// spread over k chips.
func BlockPartition(n, k int) [][]int {
	if k <= 0 || k > n {
		panic(fmt.Sprintf("graph: BlockPartition n=%d k=%d", n, k))
	}
	parts := make([][]int, k)
	base, extra := n/k, n%k
	at := 0
	for i := range parts {
		size := base
		if i < extra {
			size++
		}
		p := make([]int, size)
		for j := range p {
			p[j] = at
			at++
		}
		parts[i] = p
	}
	return parts
}

// RandomPartition splits a random permutation of the vertices into k
// near-equal parts (Algorithm 2's RandPartition).
func RandomPartition(n, k int, r *rng.Source) [][]int {
	perm := r.Perm(n)
	parts := BlockPartition(n, k)
	for _, p := range parts {
		for j := range p {
			p[j] = perm[p[j]]
		}
		sort.Ints(p)
	}
	return parts
}

// --- Gset text format -----------------------------------------------

// Write emits the graph in the Gset interchange format: a header line
// "n m" followed by one "u v w" line per edge with 1-based vertices.
func (g *Graph) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", g.n, len(g.edges)); err != nil {
		return err
	}
	for _, e := range g.edges {
		if _, err := fmt.Fprintf(bw, "%d %d %g\n", e.U+1, e.V+1, e.Weight); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses the Gset format written by Write.
func Read(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var n, m int
	if _, err := fmt.Fscan(br, &n, &m); err != nil {
		return nil, fmt.Errorf("graph: bad header: %w", err)
	}
	if n <= 0 || m < 0 {
		return nil, fmt.Errorf("graph: invalid header n=%d m=%d", n, m)
	}
	g := New(n)
	for i := 0; i < m; i++ {
		var u, v int
		var w float64
		if _, err := fmt.Fscan(br, &u, &v, &w); err != nil {
			return nil, fmt.Errorf("graph: bad edge %d: %w", i, err)
		}
		if u < 1 || v < 1 || u > n || v > n || u == v {
			return nil, fmt.Errorf("graph: invalid edge %d: (%d,%d)", i, u, v)
		}
		g.AddEdge(u-1, v-1, w)
	}
	return g, nil
}

// Components returns the connected components as vertex lists, each
// sorted ascending, ordered by smallest member. Partitioning a
// disconnected problem across chips along component boundaries makes
// the cross-chip coupling empty — worth knowing before slicing.
func (g *Graph) Components() [][]int {
	parent := make([]int, g.n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range g.edges {
		ru, rv := find(e.U), find(e.V)
		if ru != rv {
			parent[ru] = rv
		}
	}
	groups := make(map[int][]int)
	for v := 0; v < g.n; v++ {
		r := find(v)
		groups[r] = append(groups[r], v)
	}
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool { return groups[roots[i]][0] < groups[roots[j]][0] })
	out := make([][]int, 0, len(groups))
	for _, r := range roots {
		out = append(out, groups[r])
	}
	return out
}

// Connected reports whether the graph has a single component.
func (g *Graph) Connected() bool { return len(g.Components()) == 1 }
