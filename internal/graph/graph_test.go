package graph

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"mbrim/internal/ising"
	"mbrim/internal/rng"
)

func TestAddEdgeCoalesces(t *testing.T) {
	g := New(4)
	g.AddEdge(1, 2, 1.5)
	g.AddEdge(2, 1, 0.5)
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1", g.M())
	}
	if w := g.Weight(1, 2); w != 2 {
		t.Fatalf("Weight = %v, want 2", w)
	}
	if w := g.Weight(2, 1); w != 2 {
		t.Fatalf("reversed Weight = %v, want 2", w)
	}
}

func TestAddEdgePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"self-loop":    func() { New(3).AddEdge(1, 1, 1) },
		"out-of-range": func() { New(3).AddEdge(0, 3, 1) },
		"negative":     func() { New(3).AddEdge(-1, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestWeightAbsent(t *testing.T) {
	g := New(3)
	if g.Weight(0, 1) != 0 {
		t.Fatal("absent edge has nonzero weight")
	}
}

func TestCompleteProperties(t *testing.T) {
	r := rng.New(1)
	n := 50
	g := Complete(n, r)
	if g.M() != n*(n-1)/2 {
		t.Fatalf("K%d has %d edges, want %d", n, g.M(), n*(n-1)/2)
	}
	for _, e := range g.Edges() {
		if e.Weight != 1 && e.Weight != -1 {
			t.Fatalf("K-graph weight %v not in {-1,+1}", e.Weight)
		}
	}
}

func TestCompleteDeterministic(t *testing.T) {
	a := Complete(20, rng.New(7))
	b := Complete(20, rng.New(7))
	for i := 0; i < 20; i++ {
		for j := i + 1; j < 20; j++ {
			if a.Weight(i, j) != b.Weight(i, j) {
				t.Fatal("same seed produced different K-graphs")
			}
		}
	}
}

func TestRandomDensity(t *testing.T) {
	r := rng.New(2)
	n := 200
	g := Random(n, 0.1, r)
	max := n * (n - 1) / 2
	frac := float64(g.M()) / float64(max)
	if math.Abs(frac-0.1) > 0.02 {
		t.Fatalf("G(n,0.1) density %v", frac)
	}
}

func TestRandomRegularishDegrees(t *testing.T) {
	r := rng.New(3)
	g := RandomRegularish(100, 6, r)
	for v, d := range g.Degrees() {
		if d < 6 {
			t.Fatalf("vertex %d has degree %d < 6", v, d)
		}
	}
}

func TestCutValueKnown(t *testing.T) {
	// Triangle with unit weights: best cut is 2.
	g := New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(0, 2, 1)
	if c := g.CutValue([]int8{1, -1, 1}); c != 2 {
		t.Fatalf("cut = %v, want 2", c)
	}
	if c := g.CutValue([]int8{1, 1, 1}); c != 0 {
		t.Fatalf("uncut = %v, want 0", c)
	}
}

func TestCutEnergyRelation(t *testing.T) {
	// The DESIGN.md invariant: cut(σ) = (W − E(σ))/2 for the ToIsing
	// mapping, for every graph and assignment.
	f := func(seed uint32) bool {
		r := rng.New(uint64(seed))
		n := 2 + r.Intn(30)
		g := Random(n, 0.5, r)
		m := g.ToIsing()
		s := ising.RandomSpins(n, r)
		cut := g.CutValue(s)
		viaEnergy := g.CutFromEnergy(m.Energy(s))
		return math.Abs(cut-viaEnergy) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestToIsingZeroBias(t *testing.T) {
	r := rng.New(4)
	g := Complete(10, r)
	m := g.ToIsing()
	for i := 0; i < 10; i++ {
		if m.Bias(i) != 0 {
			t.Fatal("MaxCut mapping must have zero biases")
		}
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSubgraphInduced(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 2)
	g.AddEdge(2, 3, 3)
	g.AddEdge(3, 4, 4)
	sg, idx := g.Subgraph([]int{1, 2, 3})
	if sg.N() != 3 || sg.M() != 2 {
		t.Fatalf("subgraph n=%d m=%d", sg.N(), sg.M())
	}
	if sg.Weight(0, 1) != 2 || sg.Weight(1, 2) != 3 {
		t.Fatal("subgraph weights wrong")
	}
	if len(idx) != 3 || idx[0] != 1 {
		t.Fatal("index map wrong")
	}
}

func TestBlockPartitionCoversExactly(t *testing.T) {
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw%200) + 1
		k := int(kRaw)%n + 1
		parts := BlockPartition(n, k)
		if len(parts) != k {
			return false
		}
		seen := make([]bool, n)
		minSize, maxSize := n+1, 0
		for _, p := range parts {
			if len(p) < minSize {
				minSize = len(p)
			}
			if len(p) > maxSize {
				maxSize = len(p)
			}
			for _, v := range p {
				if v < 0 || v >= n || seen[v] {
					return false
				}
				seen[v] = true
			}
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return maxSize-minSize <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandomPartitionCovers(t *testing.T) {
	r := rng.New(5)
	parts := RandomPartition(97, 8, r)
	seen := make([]bool, 97)
	for _, p := range parts {
		for _, v := range p {
			if seen[v] {
				t.Fatalf("vertex %d in two parts", v)
			}
			seen[v] = true
		}
	}
	for v, s := range seen {
		if !s {
			t.Fatalf("vertex %d unassigned", v)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	r := rng.New(6)
	g := Random(30, 0.3, r)
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != g.N() || back.M() != g.M() {
		t.Fatalf("round trip changed size: %d/%d vs %d/%d", back.N(), back.M(), g.N(), g.M())
	}
	for _, e := range g.Edges() {
		if back.Weight(e.U, e.V) != e.Weight {
			t.Fatalf("edge (%d,%d) weight changed", e.U, e.V)
		}
	}
}

func TestReadRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"bad header":   "x y\n",
		"negative n":   "-3 1\n1 2 1\n",
		"self loop":    "3 1\n2 2 1\n",
		"out of range": "3 1\n1 4 1\n",
		"short edge":   "3 1\n1 2\n",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Fatalf("Read accepted %s", name)
		}
	}
}

func TestTotalWeight(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 2, -3)
	if w := g.TotalWeight(); w != -1 {
		t.Fatalf("TotalWeight = %v, want -1", w)
	}
}

func TestCutValuePanicsOnLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(3).CutValue([]int8{1})
}

func TestComponents(t *testing.T) {
	g := New(7)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(3, 4, 1)
	// 5 and 6 are isolated.
	comps := g.Components()
	if len(comps) != 4 {
		t.Fatalf("%d components, want 4: %v", len(comps), comps)
	}
	if len(comps[0]) != 3 || comps[0][0] != 0 {
		t.Fatalf("first component %v", comps[0])
	}
	if len(comps[1]) != 2 || comps[1][0] != 3 {
		t.Fatalf("second component %v", comps[1])
	}
	if g.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
}

func TestComponentsCoverAllVertices(t *testing.T) {
	f := func(seed uint32) bool {
		r := rng.New(uint64(seed))
		n := 2 + r.Intn(40)
		g := Random(n, 0.05, r)
		seen := make([]bool, n)
		for _, comp := range g.Components() {
			for _, v := range comp {
				if v < 0 || v >= n || seen[v] {
					return false
				}
				seen[v] = true
			}
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCompleteIsConnected(t *testing.T) {
	if !Complete(10, rng.New(1)).Connected() {
		t.Fatal("complete graph not connected")
	}
}
