package core

import (
	"context"
	"time"

	"mbrim/internal/sa"
)

// saEngine adapts internal/sa to the registry. The loop semantics are
// the pre-registry dispatch verbatim: Runs independent anneals at
// consecutive seeds, best energy wins, attempts/flips accumulate.
type saEngine struct{}

func init() { Register(saEngine{}) }

func (saEngine) Kind() Kind { return SA }

func (saEngine) Capabilities() Capabilities {
	return Capabilities{
		WarmStart:   true,
		Backend:     true,
		Description: "simulated annealing (Isakov-style), best of Runs restarts",
	}
}

func (saEngine) Solve(ctx context.Context, r *Request) (*Outcome, error) {
	if len(r.Resume) > 0 {
		if err := r.applyWarmStart(); err != nil {
			return nil, err
		}
	}
	out := r.NewOutcome()
	start := time.Now()
	var best *sa.Result
	var attempts, flips float64
	for i := 0; i < r.Runs; i++ {
		res, rerr := sa.SolveCtx(ctx, r.Model, sa.Config{Sweeps: r.Sweeps,
			Seed: r.Seed + uint64(i), Initial: r.Initial, Backend: r.backend,
			Tracer: r.Tracer, Metrics: r.Metrics})
		attempts += float64(res.Attempts)
		flips += float64(res.Flips)
		if best == nil || res.Energy < best.Energy {
			best = res
		}
		if rerr != nil {
			out.Spins, out.Energy = best.Spins, best.Energy
			out.Stats["attempts"], out.Stats["flips"] = attempts, flips
			return r.Interrupted(out, start, rerr, nil)
		}
	}
	out.Spins, out.Energy = best.Spins, best.Energy
	out.Stats["attempts"] = attempts
	out.Stats["flips"] = flips
	r.Finish(out, start)
	return out, nil
}
