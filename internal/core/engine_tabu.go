package core

import (
	"context"
	"time"

	"mbrim/internal/tabu"
)

// tabuEngine adapts internal/tabu: Runs restarts at consecutive seeds,
// MaxIters scaled as Sweeps × N, the warm start applying to the first
// restart only (matching the pre-registry dispatch).
type tabuEngine struct{}

func init() { Register(tabuEngine{}) }

func (tabuEngine) Kind() Kind { return Tabu }

func (tabuEngine) Capabilities() Capabilities {
	return Capabilities{
		WarmStart:   true,
		Description: "tabu search, best of Runs restarts (MaxIters = Sweeps × N)",
	}
}

func (tabuEngine) Solve(ctx context.Context, r *Request) (*Outcome, error) {
	if len(r.Resume) > 0 {
		if err := r.applyWarmStart(); err != nil {
			return nil, err
		}
	}
	out := r.NewOutcome()
	start := time.Now()
	best, rerr := tabu.SolveCtx(ctx, r.Model, tabu.Config{MaxIters: r.Sweeps * r.Model.N(), Seed: r.Seed, Initial: r.Initial})
	for i := 1; i < r.Runs && rerr == nil; i++ {
		var res *tabu.Result
		res, rerr = tabu.SolveCtx(ctx, r.Model, tabu.Config{MaxIters: r.Sweeps * r.Model.N(), Seed: r.Seed + uint64(i)})
		if res.Energy < best.Energy {
			best = res
		}
	}
	out.Spins, out.Energy = best.Spins, best.Energy
	if rerr != nil {
		return r.Interrupted(out, start, rerr, nil)
	}
	r.Finish(out, start)
	return out, nil
}
