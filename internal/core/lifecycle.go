package core

import (
	"context"
	"errors"
	"fmt"
)

// ErrInterrupted is the sentinel matched by errors.Is when a solve was
// stopped by context cancellation or deadline. The concrete error in
// the chain is *InterruptedError, which carries the best-so-far state.
var ErrInterrupted = errors.New("core: solve interrupted")

// ErrInvalidModel is the sentinel matched by errors.Is when a request
// is rejected at the Solve boundary: non-finite couplings or biases,
// an asymmetric coupling matrix, or a warm start that does not match
// the model's dimensions.
var ErrInvalidModel = errors.New("core: invalid model")

// InterruptedError reports a solve stopped by its context. It is not a
// failure so much as a receipt: Outcome holds the best state and
// partial ledger reached by the interruption point, and for engines
// with durable state (the multichip modes) Checkpoint holds encoded
// resume bytes that Request.Resume accepts.
type InterruptedError struct {
	// Outcome is the partial result: always non-nil, always internally
	// consistent (spins, energy, whatever ledger the engine filled).
	Outcome *Outcome
	// Checkpoint is the serialized resume state, or nil for engines
	// whose state is not worth more than their best-so-far spins.
	Checkpoint []byte
	// Cause is the context error (context.Canceled or
	// context.DeadlineExceeded).
	Cause error
}

// Error describes the interruption.
func (e *InterruptedError) Error() string {
	what := "solve interrupted"
	if e.Checkpoint != nil {
		what = "solve interrupted (checkpoint available)"
	}
	return fmt.Sprintf("core: %s: %v", what, e.Cause)
}

// Unwrap exposes the context error.
func (e *InterruptedError) Unwrap() error { return e.Cause }

// Is matches ErrInterrupted as well as the underlying context error.
func (e *InterruptedError) Is(target error) bool { return target == ErrInterrupted }

// PanicError reports an engine panic that the Solve boundary converted
// into an error instead of unwinding the caller. A panic here means an
// internal invariant broke — the error exists so long-running drivers
// (sweeps, services) can log it with its stack and move on rather than
// die.
type PanicError struct {
	// Engine is the solver kind that panicked.
	Engine Kind
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

// Error describes the panic.
func (e *PanicError) Error() string {
	return fmt.Sprintf("core: engine %s panicked: %v", e.Engine, e.Value)
}

// isCtxErr reports whether err is a context cancellation/deadline —
// the class that yields an InterruptedError rather than a failure.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
