package core

import (
	"context"
	"time"

	"mbrim/internal/pt"
)

// ptEngine adapts internal/pt: one replica-exchange ladder, Runs
// interpreted as the replica count (minimum 2).
type ptEngine struct{}

func init() { Register(ptEngine{}) }

func (ptEngine) Kind() Kind { return PT }

func (ptEngine) Capabilities() Capabilities {
	return Capabilities{
		Description: "parallel tempering (replica exchange), Runs = replica count",
	}
}

func (ptEngine) Solve(ctx context.Context, r *Request) (*Outcome, error) {
	out := r.NewOutcome()
	start := time.Now()
	res, rerr := pt.SolveCtx(ctx, r.Model, pt.Config{Replicas: max(2, r.Runs), Sweeps: r.Sweeps, Seed: r.Seed})
	out.Spins, out.Energy = res.Spins, res.Energy
	out.Stats["swaps"] = float64(res.Swaps)
	out.Stats["swapAttempts"] = float64(res.SwapAttempts)
	if rerr != nil {
		return r.Interrupted(out, start, rerr, nil)
	}
	r.Finish(out, start)
	return out, nil
}
