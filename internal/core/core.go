// Package core is the orchestration layer: one request/outcome surface
// over every solver in the repository — software baselines (SA, tabu,
// SBM), the single-chip BRIM, the divide-and-conquer hybrids, and the
// multiprocessor in both operating modes. The CLI, the examples and
// the experiment harness all go through this package, so results carry
// a uniform time ledger (model ns for machines, wall time for
// software) no matter which engine produced them.
package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"mbrim/internal/brim"
	"mbrim/internal/dnc"
	"mbrim/internal/fault"
	"mbrim/internal/graph"
	"mbrim/internal/ising"
	"mbrim/internal/metrics"
	"mbrim/internal/multichip"
	"mbrim/internal/obs"
	"mbrim/internal/pt"
	"mbrim/internal/sa"
	"mbrim/internal/sbm"
	"mbrim/internal/tabu"
)

// Kind names a solver engine.
type Kind string

// The available engines.
const (
	SA              Kind = "sa"          // simulated annealing (Isakov-style)
	Tabu            Kind = "tabu"        // tabu search
	BSBM            Kind = "bsbm"        // ballistic simulated bifurcation
	DSBM            Kind = "dsbm"        // discrete simulated bifurcation
	BRIM            Kind = "brim"        // single-chip BRIM (RK4 dynamics)
	QBSolv          Kind = "qbsolv"      // Algorithm 1: D-Wave's d&c
	OursDnc         Kind = "ours-dnc"    // Algorithm 2: the paper's d&c
	MBRIMConcurrent Kind = "mbrim"       // multiprocessor, concurrent mode
	MBRIMBatch      Kind = "mbrim-batch" // multiprocessor, batch mode
	PT              Kind = "pt"          // parallel tempering (replica exchange)
	MBRIMSequential Kind = "mbrim-seq"   // multiprocessor, sequential (zero-ignorance) baseline
)

// Kinds returns every engine name, sorted.
func Kinds() []string {
	ks := []string{
		string(SA), string(Tabu), string(BSBM), string(DSBM), string(BRIM),
		string(QBSolv), string(OursDnc), string(MBRIMConcurrent), string(MBRIMBatch),
		string(PT), string(MBRIMSequential),
	}
	sort.Strings(ks)
	return ks
}

// ParseKind validates a solver name.
func ParseKind(s string) (Kind, error) {
	k := Kind(strings.ToLower(strings.TrimSpace(s)))
	for _, known := range Kinds() {
		if string(k) == known {
			return k, nil
		}
	}
	return "", fmt.Errorf("core: unknown solver %q (have %s)", s, strings.Join(Kinds(), ", "))
}

// Bandwidth presets of Sec 6.3, in channel bytes/ns (1 GB/s = 1 B/ns).
const (
	// HBChannelBytesPerNS is one of mBRIM_HB's three dedicated
	// 250 GB/s channels.
	HBChannelBytesPerNS = 250.0
	// LBChannelBytesPerNS is the low-bandwidth system: 4× less.
	LBChannelBytesPerNS = HBChannelBytesPerNS / 4
)

// Request describes one solve.
type Request struct {
	// Kind selects the engine.
	Kind Kind
	// Model is the problem. Required.
	Model *ising.Model
	// Graph, if the problem came from MaxCut, lets the outcome report
	// cut values alongside energies. Optional.
	Graph *graph.Graph
	// Seed drives all stochastic choices.
	Seed uint64
	// Runs is the batch size for engines that anneal repeatedly
	// (SA/SBM/BRIM batches; jobs for mbrim-batch). Default 1.
	Runs int

	// Sweeps is the SA/tabu effort per run. Default 200.
	Sweeps int
	// Steps is the SBM step count. Default 1000.
	Steps int
	// DurationNS is the annealing time for dynamical machines.
	// Default 100.
	DurationNS float64

	// Chips, EpochNS, Coordinated, Channels and ChannelBytesPerNS
	// configure the multiprocessor (defaults per multichip.Config;
	// ChannelBytesPerNS zero = unlimited, the mBRIM_3D preset).
	Chips             int
	EpochNS           float64
	Coordinated       bool
	Channels          int
	ChannelBytesPerNS float64

	// Initial optionally warm-starts the run at the given spins
	// (SA, tabu and BRIM engines; copied, not aliased). Hybrid flows
	// use it to polish a machine's readout in software.
	Initial []int8

	// MachineCapacity is the hardware size for the d&c engines.
	// Default 500 (the Fig 1 setup). The machine is a ProxyMachine
	// charging MachineAnnealNS and MachineProgramNS per launch.
	MachineCapacity  int
	MachineAnnealNS  float64
	MachineProgramNS float64

	// SampleEveryNS, if > 0, records (time, energy) samples into
	// Outcome.Trace for the engines that support tracing (BRIM and the
	// multiprocessor modes).
	SampleEveryNS float64
	// RecordEpochStats and Probes enable the multiprocessor's per-epoch
	// activity ledger and energy-surprise probe (Outcome.EpochStats,
	// Outcome.Surprises).
	RecordEpochStats bool
	Probes           bool
	// Parallel runs the multiprocessor's chips on host goroutines; the
	// result is bit-identical to the sequential simulation.
	Parallel bool

	// Faults configures the multiprocessor's deterministic
	// fault-injection layer and recovery policies. The zero value
	// injects nothing.
	Faults fault.Config

	// Tracer, if non-nil, receives the run's typed event stream: Solve
	// emits the RunStart/RunEnd bracket and the engine emits its inner
	// events (EpochSync, ChipStep, EnergySample, ...). Nil disables
	// tracing at the cost of one branch per emission site.
	Tracer obs.Tracer
	// Metrics, if non-nil, accumulates counters across runs (core.solves
	// plus per-engine totals such as multichip.flips).
	Metrics *obs.Registry
}

func (r *Request) withDefaults() (Request, error) {
	out := *r
	if out.Model == nil {
		return out, fmt.Errorf("core: Request.Model is nil")
	}
	if out.Runs == 0 {
		out.Runs = 1
	}
	if out.Sweeps == 0 {
		out.Sweeps = 200
	}
	if out.Steps == 0 {
		out.Steps = 1000
	}
	if out.DurationNS == 0 {
		out.DurationNS = 100
	}
	if out.MachineCapacity == 0 {
		out.MachineCapacity = 500
	}
	if out.MachineAnnealNS == 0 {
		out.MachineAnnealNS = 1000
	}
	if out.MachineProgramNS == 0 {
		out.MachineProgramNS = 100
	}
	return out, nil
}

// Outcome is a uniform solve report.
type Outcome struct {
	Kind   Kind
	Spins  []int8
	Energy float64
	// Cut is the MaxCut value when a Graph was supplied, else 0.
	Cut float64
	// ModelNS is machine model time (0 for pure software engines);
	// Wall is measured host time.
	ModelNS float64
	Wall    time.Duration
	// Stats carries engine-specific extras (flips, traffic, stalls...).
	Stats map[string]float64
	// Trace holds (time, energy) samples when Request.SampleEveryNS was
	// set and the engine supports tracing.
	Trace []metrics.Point
	// EpochStats and Surprises are the multiprocessor's optional
	// per-epoch ledger and energy-surprise probe.
	EpochStats []multichip.EpochStat
	Surprises  []multichip.SurpriseSample
}

// Solve runs the requested engine and returns a uniform outcome.
//
// When a Tracer is configured, Solve brackets the engine's inner events
// with a single RunStart/RunEnd pair — the uniform run ledger: engine
// kind (Label), seed, problem size (Count), requested duration (Value)
// on the way in; best energy (Value), model time and wall duration on
// the way out.
func Solve(req Request) (*Outcome, error) {
	r, err := req.withDefaults()
	if err != nil {
		return nil, err
	}
	out := &Outcome{Kind: r.Kind, Stats: map[string]float64{}}
	if r.Tracer != nil {
		r.Tracer.Emit(obs.Event{Kind: obs.RunStart, Label: string(r.Kind),
			Seed: r.Seed, Count: int64(r.Model.N()), Value: r.DurationNS})
	}
	start := time.Now()
	switch r.Kind {
	case SA:
		br := sa.SolveBatch(r.Model, sa.Config{Sweeps: r.Sweeps, Seed: r.Seed, Initial: r.Initial,
			Tracer: r.Tracer, Metrics: r.Metrics}, r.Runs)
		out.Spins, out.Energy = br.Best.Spins, br.Best.Energy
		var attempts, flips float64
		for _, res := range br.Results {
			attempts += float64(res.Attempts)
			flips += float64(res.Flips)
		}
		out.Stats["attempts"] = attempts
		out.Stats["flips"] = flips
	case PT:
		res := pt.Solve(r.Model, pt.Config{Replicas: max(2, r.Runs), Sweeps: r.Sweeps, Seed: r.Seed})
		out.Spins, out.Energy = res.Spins, res.Energy
		out.Stats["swaps"] = float64(res.Swaps)
		out.Stats["swapAttempts"] = float64(res.SwapAttempts)
	case Tabu:
		best := tabu.Solve(r.Model, tabu.Config{MaxIters: r.Sweeps * r.Model.N(), Seed: r.Seed, Initial: r.Initial})
		for i := 1; i < r.Runs; i++ {
			res := tabu.Solve(r.Model, tabu.Config{MaxIters: r.Sweeps * r.Model.N(), Seed: r.Seed + uint64(i)})
			if res.Energy < best.Energy {
				best = res
			}
		}
		out.Spins, out.Energy = best.Spins, best.Energy
	case BSBM, DSBM:
		variant := sbm.Ballistic
		if r.Kind == DSBM {
			variant = sbm.Discrete
		}
		br := sbm.SolveBatch(r.Model, sbm.Config{Variant: variant, Steps: r.Steps, Seed: r.Seed,
			Tracer: r.Tracer, Metrics: r.Metrics}, r.Runs)
		out.Spins, out.Energy = br.Best.Spins, br.Best.Energy
	case BRIM:
		best, all := brim.SolveBatch(r.Model, brim.SolveConfig{
			Duration:       r.DurationNS,
			SampleInterval: r.SampleEveryNS,
			Initial:        r.Initial,
			Config:         brim.Config{Seed: r.Seed},
			Tracer:         r.Tracer,
			Metrics:        r.Metrics,
		}, r.Runs)
		out.Spins, out.Energy = best.Spins, best.Energy
		out.Trace = best.Trace
		for _, res := range all {
			out.ModelNS += res.ModelNS
			out.Stats["flips"] += float64(res.Flips)
		}
	case QBSolv, OursDnc:
		mach := &dnc.ProxyMachine{
			Cap:      r.MachineCapacity,
			AnnealNS: r.MachineAnnealNS,
			Program:  r.MachineProgramNS,
			Sweeps:   r.Sweeps,
		}
		var res *dnc.Result
		if r.Kind == QBSolv {
			res = dnc.QBSolv(r.Model, mach, dnc.QBSolvConfig{Seed: r.Seed,
				Tracer: r.Tracer, Metrics: r.Metrics})
		} else {
			res = dnc.Ours(r.Model, mach, dnc.OursConfig{Seed: r.Seed,
				Tracer: r.Tracer, Metrics: r.Metrics})
		}
		out.Spins, out.Energy = res.Spins, res.Energy
		out.ModelNS = res.HardwareNS + res.ProgramNS
		out.Stats["glueOps"] = float64(res.GlueOps)
		out.Stats["launches"] = float64(res.Launches)
		out.Stats["softwareNS"] = float64(res.SoftwareWall.Nanoseconds())
	case MBRIMConcurrent:
		sys, err := multichip.NewSystem(r.Model, multichipConfig(r))
		if err != nil {
			return nil, err
		}
		res := sys.RunConcurrent(r.DurationNS)
		fillMultichip(out, res.Spins, res.Energy, res.ElapsedNS, res.StallNS,
			res.Flips, res.InducedFlips, res.BitChanges, res.TrafficBytes)
		fillFaultStats(out, res.FaultStats, res.LiveChips)
		out.Trace = res.Trace
		out.EpochStats = res.EpochStats
		out.Surprises = res.Surprises
	case MBRIMSequential:
		sys, err := multichip.NewSystem(r.Model, multichipConfig(r))
		if err != nil {
			return nil, err
		}
		res := sys.RunSequential(r.DurationNS)
		fillMultichip(out, res.Spins, res.Energy, res.ElapsedNS, res.StallNS,
			res.Flips, res.InducedFlips, res.BitChanges, res.TrafficBytes)
		fillFaultStats(out, res.FaultStats, res.LiveChips)
		out.Trace = res.Trace
		out.EpochStats = res.EpochStats
		out.Surprises = res.Surprises
	case MBRIMBatch:
		sys, err := multichip.NewSystem(r.Model, multichipConfig(r))
		if err != nil {
			return nil, err
		}
		res := sys.RunBatch(r.Runs, r.DurationNS)
		best := res.Jobs[res.Best]
		fillMultichip(out, best, res.BestEnergy, res.ElapsedNS, res.StallNS,
			res.Flips, res.InducedFlips, res.BitChanges, res.TrafficBytes)
		fillFaultStats(out, res.FaultStats, res.LiveChips)
		out.Trace = res.Trace
		out.EpochStats = res.EpochStats
	default:
		return nil, fmt.Errorf("core: unknown solver %q", r.Kind)
	}
	out.Wall = time.Since(start)
	if r.Graph != nil {
		out.Cut = r.Graph.CutValue(out.Spins)
	}
	if r.Tracer != nil {
		r.Tracer.Emit(obs.Event{Kind: obs.RunEnd, Label: string(r.Kind),
			Seed: r.Seed, Value: out.Energy, ModelNS: out.ModelNS,
			WallDurNS: out.Wall.Nanoseconds(), Count: int64(out.Stats["flips"])})
	}
	if r.Metrics != nil {
		r.Metrics.Counter("core.solves").Inc()
		r.Metrics.Counter("core.solves." + string(r.Kind)).Inc()
		r.Metrics.Histogram("core.solve_wall_ns").Observe(float64(out.Wall.Nanoseconds()))
	}
	return out, nil
}

func multichipConfig(r Request) multichip.Config {
	return multichip.Config{
		Chips:             r.Chips,
		EpochNS:           r.EpochNS,
		Coordinated:       r.Coordinated,
		Channels:          r.Channels,
		ChannelBytesPerNS: r.ChannelBytesPerNS,
		Seed:              r.Seed,
		SampleEveryNS:     r.SampleEveryNS,
		RecordEpochStats:  r.RecordEpochStats,
		Probes:            r.Probes,
		Parallel:          r.Parallel,
		Tracer:            r.Tracer,
		Metrics:           r.Metrics,
		Faults:            r.Faults,
	}
}

// fillFaultStats publishes the fault/recovery ledger into the uniform
// Stats map when any fault activity occurred.
func fillFaultStats(out *Outcome, fs fault.Stats, liveChips int) {
	out.Stats["liveChips"] = float64(liveChips)
	if !fs.Any() {
		return
	}
	out.Stats["faultDrops"] = float64(fs.Drops)
	out.Stats["faultCorruptions"] = float64(fs.Corruptions)
	out.Stats["faultDelays"] = float64(fs.Delays)
	out.Stats["faultStalls"] = float64(fs.Stalls)
	out.Stats["faultChipLosses"] = float64(fs.ChipLosses)
	out.Stats["recoveryRetransmits"] = float64(fs.Retransmits)
	out.Stats["recoveryResyncs"] = float64(fs.Resyncs)
	out.Stats["recoveryRepartitions"] = float64(fs.Repartitions)
	out.Stats["recoveryRetransmitBytes"] = fs.RetransmitBytes
	out.Stats["recoveryResyncBytes"] = fs.ResyncBytes
	out.Stats["recoveryStallNS"] = fs.RecoveryStallNS
}

func fillMultichip(out *Outcome, spins []int8, energy, elapsed, stall float64,
	flips, induced, changes int64, traffic float64) {
	out.Spins = spins
	out.Energy = energy
	out.ModelNS = elapsed
	out.Stats["stallNS"] = stall
	out.Stats["flips"] = float64(flips)
	out.Stats["inducedFlips"] = float64(induced)
	out.Stats["bitChanges"] = float64(changes)
	out.Stats["trafficBytes"] = traffic
}
