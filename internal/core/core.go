// Package core is the orchestration layer: one request/outcome surface
// over every solver in the repository — software baselines (SA, tabu,
// SBM), the single-chip BRIM, the divide-and-conquer hybrids, the
// multiprocessor in all operating modes, and composite engines such as
// the heterogeneous portfolio. The CLI, the examples, the daemon and
// the experiment harness all go through this package, so results carry
// a uniform time ledger (model ns for machines, wall time for
// software) no matter which engine produced them.
//
// Dispatch is registry-driven: each engine registers an adapter (see
// registry.go and the engine_*.go files; external engines like
// internal/portfolio register from their own package init), and
// Kinds/ParseKind/capability checks all derive from the registered
// set. There is no per-engine switch anywhere in the solve path.
package core

import (
	"context"
	"fmt"
	"math"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
	"time"

	"mbrim/internal/checkpoint"
	"mbrim/internal/fault"
	"mbrim/internal/graph"
	"mbrim/internal/ising"
	"mbrim/internal/lattice"
	"mbrim/internal/metrics"
	"mbrim/internal/multichip"
	"mbrim/internal/obs"
)

// Kind names a solver engine.
type Kind string

// The built-in engines. The names are registry keys — Kinds() reports
// whatever is actually registered, which may include engines linked
// from outside this package (e.g. "portfolio").
const (
	SA              Kind = "sa"          // simulated annealing (Isakov-style)
	Tabu            Kind = "tabu"        // tabu search
	BSBM            Kind = "bsbm"        // ballistic simulated bifurcation
	DSBM            Kind = "dsbm"        // discrete simulated bifurcation
	BRIM            Kind = "brim"        // single-chip BRIM (RK4 dynamics)
	QBSolv          Kind = "qbsolv"      // Algorithm 1: D-Wave's d&c
	OursDnc         Kind = "ours-dnc"    // Algorithm 2: the paper's d&c
	MBRIMConcurrent Kind = "mbrim"       // multiprocessor, concurrent mode
	MBRIMBatch      Kind = "mbrim-batch" // multiprocessor, batch mode
	PT              Kind = "pt"          // parallel tempering (replica exchange)
	MBRIMSequential Kind = "mbrim-seq"   // multiprocessor, sequential (zero-ignorance) baseline
	Portfolio       Kind = "portfolio"   // heterogeneous race (registered by internal/portfolio)
)

// Bandwidth presets of Sec 6.3, in channel bytes/ns (1 GB/s = 1 B/ns).
const (
	// HBChannelBytesPerNS is one of mBRIM_HB's three dedicated
	// 250 GB/s channels.
	HBChannelBytesPerNS = 250.0
	// LBChannelBytesPerNS is the low-bandwidth system: 4× less.
	LBChannelBytesPerNS = HBChannelBytesPerNS / 4
)

// Request describes one solve.
type Request struct {
	// Kind selects the engine.
	Kind Kind
	// Model is the problem. Required.
	Model *ising.Model
	// Graph, if the problem came from MaxCut, lets the outcome report
	// cut values alongside energies. Optional.
	Graph *graph.Graph
	// Seed drives all stochastic choices.
	Seed uint64
	// Backend selects the coupling-matrix layout the engines' hot loops
	// iterate: "auto" (default — dense unless the model's measured
	// density is at most 5%), "dense", "csr" or "blocked". Every
	// backend is bit-identical for a fixed seed; the choice only moves
	// host time. Engines without a coupling hot loop (tabu, pt) ignore
	// it. The resolved choice is reported in Outcome.Backend.
	Backend string
	// backend is Backend parsed and resolved against the model density
	// (withDefaults fills it).
	backend lattice.Kind
	// Runs is the batch size for engines that anneal repeatedly
	// (SA/SBM/BRIM batches; jobs for mbrim-batch). Default 1.
	Runs int

	// Sweeps is the SA/tabu effort per run. Default 200.
	Sweeps int
	// Steps is the SBM step count. Default 1000.
	Steps int
	// DurationNS is the annealing time for dynamical machines.
	// Default 100.
	DurationNS float64

	// Chips, EpochNS, Coordinated, Channels and ChannelBytesPerNS
	// configure the multiprocessor (defaults per multichip.Config;
	// ChannelBytesPerNS zero = unlimited, the mBRIM_3D preset).
	Chips             int
	EpochNS           float64
	Coordinated       bool
	Channels          int
	ChannelBytesPerNS float64

	// Initial optionally warm-starts the run at the given spins
	// (engines with the WarmStart capability: SA, tabu and BRIM;
	// copied, not aliased). Hybrid flows use it to polish a machine's
	// readout in software.
	Initial []int8

	// MachineCapacity is the hardware size for the d&c engines.
	// Default 500 (the Fig 1 setup). The machine is a ProxyMachine
	// charging MachineAnnealNS and MachineProgramNS per launch.
	MachineCapacity  int
	MachineAnnealNS  float64
	MachineProgramNS float64

	// SampleEveryNS, if > 0, records (time, energy) samples into
	// Outcome.Trace for the engines that support tracing (BRIM and the
	// multiprocessor modes).
	SampleEveryNS float64
	// RecordEpochStats and Probes enable the multiprocessor's per-epoch
	// activity ledger and energy-surprise probe (Outcome.EpochStats,
	// Outcome.Surprises).
	RecordEpochStats bool
	Probes           bool
	// Parallel runs the multiprocessor's chips on host goroutines; the
	// result is bit-identical to the sequential simulation.
	Parallel bool

	// Faults configures the multiprocessor's deterministic
	// fault-injection layer and recovery policies. The zero value
	// injects nothing.
	Faults fault.Config

	// Resume, if non-nil, is a checkpoint written by an earlier solve.
	// Engines with the Resume capability (the multichip modes) accept
	// the full-state envelope an InterruptedError carries and continue
	// bit-identically; the envelope must match this request's engine,
	// seed and model, and the run parameters (duration, jobs) must
	// match the interrupted run's. Engines with the WarmStart
	// capability (SA, tabu, BRIM) accept a warm-start envelope
	// (checkpoint.Warm — best spins from any engine, the portfolio
	// hand-off format) and start from those spins.
	Resume []byte

	// Portfolio parameterizes the portfolio engine (Kind "portfolio"):
	// entrants to race, the first-to-target threshold, the race budget
	// and the warm-start hand-off stage. Ignored by other engines.
	Portfolio PortfolioSpec

	// Tracer, if non-nil, receives the run's typed event stream: Solve
	// emits the RunStart/RunEnd bracket and the engine emits its inner
	// events (EpochSync, ChipStep, EnergySample, ...). Nil disables
	// tracing at the cost of one branch per emission site.
	Tracer obs.Tracer
	// SpanTrace additionally threads hierarchical span events (solve →
	// epoch → chip step → sync/recovery) through the Tracer, and labels
	// the solve's goroutines for runtime/pprof profiles. It is opt-in —
	// plain Tracer consumers keep the flat PR-1 stream — and requires a
	// non-nil Tracer. Span emission never perturbs the trajectory: a
	// seeded solve is bit-identical with it on or off.
	SpanTrace bool
	// Diag additionally emits partition-quality diagnostics (per
	// chip-pair shadow-disagreement PairStat events) for the multichip
	// engines — the raw feed of internal/diag. Opt-in for the same
	// reason as SpanTrace; read-only, trajectory-neutral.
	Diag bool
	// Metrics, if non-nil, accumulates counters across runs (core.solves
	// plus per-engine totals such as multichip.flips).
	Metrics *obs.Registry

	// spans and rootSpan are the live span context (withDefaults +
	// SolveCtx fill them when SpanTrace is set).
	spans    *obs.Spanner
	rootSpan obs.Span
}

func (r *Request) withDefaults() (Request, error) {
	out := *r
	if out.Model == nil {
		return out, fmt.Errorf("core: Request.Model is nil")
	}
	if out.Runs == 0 {
		out.Runs = 1
	}
	if out.Sweeps == 0 {
		out.Sweeps = 200
	}
	if out.Steps == 0 {
		out.Steps = 1000
	}
	if out.DurationNS == 0 {
		out.DurationNS = 100
	}
	if out.MachineCapacity == 0 {
		out.MachineCapacity = 500
	}
	if out.MachineAnnealNS == 0 {
		out.MachineAnnealNS = 1000
	}
	if out.MachineProgramNS == 0 {
		out.MachineProgramNS = 100
	}
	bk, err := lattice.ParseKind(out.Backend)
	if err != nil {
		return out, fmt.Errorf("core: %v", err)
	}
	out.backend = lattice.Resolve(bk, out.Model.N(), lattice.CountNNZ(out.Model.Couplings()))
	return out, nil
}

// Outcome is a uniform solve report.
type Outcome struct {
	Kind Kind
	// Backend is the resolved coupling backend the solve ran on
	// ("dense", "csr" or "blocked") — "auto" requests report what auto
	// picked.
	Backend string
	Spins   []int8
	Energy  float64
	// Cut is the MaxCut value when a Graph was supplied, else 0.
	Cut float64
	// ModelNS is machine model time (0 for pure software engines);
	// Wall is measured host time.
	ModelNS float64
	Wall    time.Duration
	// Stats carries engine-specific extras (flips, traffic, stalls...).
	Stats map[string]float64
	// Trace holds (time, energy) samples when Request.SampleEveryNS was
	// set and the engine supports tracing.
	Trace []metrics.Point
	// EpochStats and Surprises are the multiprocessor's optional
	// per-epoch ledger and energy-surprise probe.
	EpochStats []multichip.EpochStat
	Surprises  []multichip.SurpriseSample
	// Portfolio reports the portfolio engine's race: per-entrant
	// results and the winner attribution. Nil for every other engine.
	Portfolio *PortfolioReport
}

// validate rejects malformed requests at the public boundary with
// typed errors, before any engine can turn them into a panic or a NaN.
// It runs after withDefaults, so zero values have been filled; caps
// are the resolved engine's capabilities (the registry-derived
// replacement for the old hard-coded resume list).
func (r *Request) validate(caps Capabilities) error {
	if err := r.Model.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidModel, err)
	}
	if r.Initial != nil {
		if len(r.Initial) != r.Model.N() {
			return fmt.Errorf("%w: Initial has %d spins for a %d-spin model",
				ErrInvalidModel, len(r.Initial), r.Model.N())
		}
		for i, s := range r.Initial {
			if s != -1 && s != 1 {
				return fmt.Errorf("%w: Initial[%d]=%d is not a spin", ErrInvalidModel, i, s)
			}
		}
	}
	if r.Runs < 1 {
		return fmt.Errorf("core: Runs=%d", r.Runs)
	}
	if r.Sweeps < 1 {
		return fmt.Errorf("core: Sweeps=%d", r.Sweeps)
	}
	if r.Steps < 1 {
		return fmt.Errorf("core: Steps=%d", r.Steps)
	}
	if r.DurationNS <= 0 || math.IsNaN(r.DurationNS) || math.IsInf(r.DurationNS, 0) {
		return fmt.Errorf("core: DurationNS=%v", r.DurationNS)
	}
	if r.EpochNS < 0 || math.IsNaN(r.EpochNS) || math.IsInf(r.EpochNS, 0) {
		return fmt.Errorf("core: EpochNS=%v", r.EpochNS)
	}
	if r.SampleEveryNS < 0 || math.IsNaN(r.SampleEveryNS) || math.IsInf(r.SampleEveryNS, 0) {
		return fmt.Errorf("core: SampleEveryNS=%v", r.SampleEveryNS)
	}
	if len(r.Resume) > 0 && !caps.Resume && !caps.WarmStart {
		return fmt.Errorf("core: engine %s does not support resume", r.Kind)
	}
	return nil
}

// Solve runs the requested engine and returns a uniform outcome.
//
// When a Tracer is configured, Solve brackets the engine's inner events
// with a single RunStart/RunEnd pair — the uniform run ledger: engine
// kind (Label), seed, problem size (Count), requested duration (Value)
// on the way in; best energy (Value), model time and wall duration on
// the way out.
func Solve(req Request) (*Outcome, error) {
	return SolveCtx(context.Background(), req)
}

// SolveCtx is Solve with lifecycle control:
//
//   - The request is validated at this boundary: a model with NaN/Inf
//     couplings or biases, a mis-sized warm start, or nonsensical run
//     parameters yield a typed error (ErrInvalidModel for problem
//     defects) before any engine runs.
//   - Cancelling the context stops every engine at its next natural
//     boundary (epoch, sweep, step, iteration or launch) and returns a
//     *InterruptedError — matched by errors.Is(err, ErrInterrupted) —
//     carrying the best-so-far Outcome and, for the multichip engines,
//     serialized checkpoint bytes that Request.Resume accepts for a
//     bit-identical continuation.
//   - Integrator divergence in the BRIM dynamics surfaces as a typed
//     *brim.DivergenceError in the chain, never as NaN spins.
//   - An engine panic is converted into a *PanicError with the stack
//     attached instead of unwinding the caller.
//
// The engine itself is resolved through the registry: SolveCtx holds
// no per-engine dispatch of its own.
func SolveCtx(ctx context.Context, req Request) (out *Outcome, err error) {
	r, err := req.withDefaults()
	if err != nil {
		return nil, err
	}
	// Validation precedes dispatch (matching the pre-registry order, so
	// a bad model reports ErrInvalidModel even under an unknown kind);
	// an unknown kind's zero capabilities reject resume bytes exactly
	// like the old default case did.
	caps, _ := EngineCaps(r.Kind)
	if err := r.validate(caps); err != nil {
		return nil, err
	}
	eng, ok := lookupEngine(r.Kind)
	if !ok {
		return nil, unknownKindError(string(r.Kind))
	}
	if ctx == nil {
		ctx = context.Background()
	}
	defer func() {
		if p := recover(); p != nil {
			out = nil
			err = &PanicError{Engine: r.Kind, Value: p, Stack: debug.Stack()}
		}
	}()
	if r.Tracer != nil {
		r.Tracer.Emit(obs.Event{Kind: obs.RunStart, Label: string(r.Kind),
			Seed: r.Seed, Count: int64(r.Model.N()), Value: r.DurationNS})
	}
	if r.SpanTrace && r.Tracer != nil {
		r.spans = obs.NewSpanner(r.Tracer)
		r.rootSpan = r.spans.Start("solve", obs.Span{}, -1, 0)
		// The root span closes on every exit path — success, interrupt,
		// divergence, even a recovered panic — so exports always have a
		// complete tree. It lands after RunEnd in the stream; consumers
		// match spans by ID, not position.
		defer func() {
			var model float64
			if out != nil {
				model = out.ModelNS
			}
			r.rootSpan.End(model, nil)
		}()
		// Label this goroutine (and, transitively, the chip workers the
		// engines fork from this ctx) so CPU profiles attribute samples
		// to the solve.
		prev := ctx
		ctx = pprof.WithLabels(ctx, pprof.Labels(
			"mbrim_engine", string(r.Kind),
			"mbrim_seed", strconv.FormatUint(r.Seed, 10)))
		pprof.SetGoroutineLabels(ctx)
		defer pprof.SetGoroutineLabels(prev)
	}
	return eng.Solve(ctx, &r)
}

// NewOutcome returns the uniform outcome skeleton every engine adapter
// starts from. Exported for engines registered from other packages
// (e.g. internal/portfolio).
func (r *Request) NewOutcome() *Outcome {
	return &Outcome{Kind: r.Kind, Backend: r.backend.String(), Stats: map[string]float64{}}
}

// Interrupted finalizes a partial outcome and wraps it, with the
// optional checkpoint bytes, into the InterruptedError the SolveCtx
// contract promises on cancellation. Exported for engines registered
// from other packages.
func (r *Request) Interrupted(out *Outcome, start time.Time, cause error, ck []byte) (*Outcome, error) {
	out.Wall = time.Since(start)
	if r.Graph != nil && out.Spins != nil {
		out.Cut = r.Graph.CutValue(out.Spins)
	}
	return nil, &InterruptedError{Outcome: out, Checkpoint: ck, Cause: cause}
}

// applyWarmStart decodes a warm-start envelope from r.Resume into
// r.Initial — the hand-off path for engines with the WarmStart
// capability. The envelope's model hash must match this request's
// problem; the producing engine may differ (that is the point of a
// hand-off), so engine and seed are not checked.
func (r *Request) applyWarmStart() error {
	f, err := checkpoint.Decode(r.Resume)
	if err != nil {
		return err
	}
	if f.Warm == nil {
		return fmt.Errorf("core: checkpoint has no warm-start payload (engine %s accepts warm starts, not full-state resume)", r.Kind)
	}
	if err := f.ValidateWarm(r.Model); err != nil {
		return err
	}
	r.Initial = append([]int8(nil), f.Warm.Spins...)
	return nil
}

// Finish stamps the uniform tail of a completed solve: wall time, cut
// value, the RunEnd event and the registry counters.
func (r *Request) Finish(out *Outcome, start time.Time) {
	out.Wall = time.Since(start)
	if r.Graph != nil {
		out.Cut = r.Graph.CutValue(out.Spins)
	}
	if r.Tracer != nil {
		r.Tracer.Emit(obs.Event{Kind: obs.RunEnd, Label: string(r.Kind),
			Seed: r.Seed, Value: out.Energy, ModelNS: out.ModelNS,
			WallDurNS: out.Wall.Nanoseconds(), Count: int64(out.Stats["flips"])})
	}
	if r.Metrics != nil {
		// core.solves is the cross-engine total; the engine-labeled
		// series of the same family break it down per solver kind for
		// the Prometheus exposition.
		r.Metrics.Counter("core.solves").Inc()
		r.Metrics.CounterWith("core.solves", obs.Labels{"engine": string(r.Kind)}).Inc()
		// core.backend_solves breaks solves down by the resolved coupling
		// backend (a separate series so core.solves keeps its shape).
		r.Metrics.CounterWith("core.backend_solves",
			obs.Labels{"engine": string(r.Kind), "backend": out.Backend}).Inc()
		r.Metrics.HistogramWith("core.solve_wall_ns", obs.Labels{"engine": string(r.Kind)}).
			Observe(float64(out.Wall.Nanoseconds()))
	}
}
