package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// This file is the engine registry — the dispatch spine of the
// orchestration layer. Every solver engine registers an adapter
// (engine_*.go in this package; external engines such as
// internal/portfolio register from their own init), and everything
// that used to be a hard-coded engine list — Kinds, ParseKind, the
// resume-support check, SolveCtx's dispatch switch, the daemon's
// GET /engines — derives from the registered set instead.

// Engine is one registered solver: the adapter between the uniform
// Request/Outcome surface and an engine package's own Solve loop.
// Solve receives the request after withDefaults and validate have run
// (the backend is resolved, zero knobs are filled) and must honor the
// SolveCtx contract: context cancellation returns *InterruptedError
// carrying the best-so-far Outcome, and the uniform tail (wall time,
// cut value, RunEnd, registry counters) is stamped via Request.finish.
type Engine interface {
	// Kind is the engine's registry name (what ParseKind accepts).
	Kind() Kind
	// Capabilities declares what the engine supports; the registry
	// derives validation and service behavior from it.
	Capabilities() Capabilities
	// Solve runs one solve. The request is prepared (defaults filled,
	// validated) and owned by the caller; implementations must not
	// retain it past the call.
	Solve(ctx context.Context, r *Request) (*Outcome, error)
}

// Capabilities declares an engine's optional behaviors. The registry
// is the single source of truth: request validation (resume and
// warm-start envelopes), the daemon's default-sampling policy and the
// GET /engines surface all read these flags instead of matching on
// engine names.
type Capabilities struct {
	// Resume reports that Request.Resume accepts a full-state
	// checkpoint envelope for bit-identical continuation (the
	// multichip engines).
	Resume bool `json:"resume"`
	// WarmStart reports that the engine can start from caller-supplied
	// spins: Request.Initial, or a warm-start checkpoint envelope
	// (checkpoint.Warm) in Request.Resume — the portfolio hand-off
	// format.
	WarmStart bool `json:"warmStart"`
	// Backend reports that the engine's hot loop honors
	// Request.Backend (dense/CSR coupling layouts).
	Backend bool `json:"backend"`
	// Spans reports that the engine emits hierarchical span events
	// under Request.SpanTrace.
	Spans bool `json:"spans"`
	// Traced reports that the engine records (time, energy) samples
	// into Outcome.Trace when Request.SampleEveryNS is set.
	Traced bool `json:"traced"`
	// ModelTime reports that the engine accounts deterministic model
	// time (Outcome.ModelNS) rather than only wall time.
	ModelTime bool `json:"modelTime"`
	// Description is a one-line summary for UIs: GET /engines and the
	// README engine table render it verbatim.
	Description string `json:"description"`
}

// EngineInfo is one registry entry as the introspection surfaces
// (GET /engines, the README table generator) report it.
type EngineInfo struct {
	Kind         Kind         `json:"kind"`
	Capabilities Capabilities `json:"capabilities"`
}

var (
	registryMu sync.RWMutex
	registry   = map[Kind]Engine{}
)

// Register adds an engine to the registry. It panics on a duplicate
// kind or an empty name — registration happens in init functions, and
// a clashing engine is a build defect, not a runtime condition.
func Register(e Engine) {
	if e == nil {
		panic("core: Register(nil engine)")
	}
	k := e.Kind()
	if strings.TrimSpace(string(k)) == "" {
		panic("core: Register: engine has empty kind")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[k]; dup {
		panic(fmt.Sprintf("core: Register: duplicate engine %q", k))
	}
	registry[k] = e
}

// lookupEngine resolves a kind against the registry.
func lookupEngine(k Kind) (Engine, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	e, ok := registry[k]
	return e, ok
}

// Kinds returns every registered engine name, sorted.
func Kinds() []string {
	registryMu.RLock()
	ks := make([]string, 0, len(registry))
	for k := range registry {
		ks = append(ks, string(k))
	}
	registryMu.RUnlock()
	sort.Strings(ks)
	return ks
}

// Engines returns every registry entry, sorted by kind — the feed for
// GET /engines and the README engine table.
func Engines() []EngineInfo {
	registryMu.RLock()
	infos := make([]EngineInfo, 0, len(registry))
	for k, e := range registry {
		infos = append(infos, EngineInfo{Kind: k, Capabilities: e.Capabilities()})
	}
	registryMu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Kind < infos[j].Kind })
	return infos
}

// EngineCaps reports a registered engine's capabilities.
func EngineCaps(k Kind) (Capabilities, bool) {
	e, ok := lookupEngine(k)
	if !ok {
		return Capabilities{}, false
	}
	return e.Capabilities(), true
}

// ParseKind validates a solver name against the registry. An unknown
// name's error lists the registered engines and, when the name is a
// near-miss (edit distance ≤ 2, or ≤ 1 for very short names), suggests
// the closest one.
func ParseKind(s string) (Kind, error) {
	k := Kind(strings.ToLower(strings.TrimSpace(s)))
	if _, ok := lookupEngine(k); ok {
		return k, nil
	}
	return "", unknownKindError(s)
}

// unknownKindError builds the unknown-engine error (shared between
// ParseKind and SolveCtx's registry lookup).
func unknownKindError(s string) error {
	norm := strings.ToLower(strings.TrimSpace(s))
	if hint := closestKind(norm); hint != "" {
		return fmt.Errorf("core: unknown solver %q — did you mean %q? (have %s)",
			s, hint, strings.Join(Kinds(), ", "))
	}
	return fmt.Errorf("core: unknown solver %q (have %s)", s, strings.Join(Kinds(), ", "))
}

// closestKind returns the registered engine name nearest to s by edit
// distance, or "" when nothing is close enough to be a plausible typo.
// The threshold scales with the input: one edit for names up to four
// characters (so "as" suggests "sa" but "xy" suggests nothing), two
// beyond that.
func closestKind(s string) string {
	if s == "" {
		return ""
	}
	limit := 2
	if len(s) <= 4 {
		limit = 1
	}
	best, bestDist := "", limit+1
	for _, k := range Kinds() {
		d := editDistance(s, k)
		if d < bestDist || (d == bestDist && best != "" && k < best) {
			best, bestDist = k, d
		}
	}
	if bestDist > limit {
		return ""
	}
	return best
}

// editDistance is the Damerau–Levenshtein distance (insert, delete,
// substitute, adjacent transpose) — transpositions matter because
// "mbirm" for "mbrim" is the likeliest class of typo here.
func editDistance(a, b string) int {
	la, lb := len(a), len(b)
	prev2 := make([]int, lb+1) // row i-2
	prev := make([]int, lb+1)  // row i-1
	cur := make([]int, lb+1)   // row i
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := min(prev[j]+1, cur[j-1]+1) // delete, insert
			m = min(m, prev[j-1]+cost)      // substitute
			if i > 1 && j > 1 && a[i-1] == b[j-2] && a[i-2] == b[j-1] {
				m = min(m, prev2[j-2]+1) // transpose
			}
			cur[j] = m
		}
		prev2, prev, cur = prev, cur, prev2
	}
	return prev[lb]
}
