package core

import (
	"context"
	"fmt"
	"time"

	"mbrim/internal/brim"
)

// brimEngine adapts the single-chip BRIM (RK4 dynamics): a batch of
// Runs anneals, model time and flips accumulated across the batch,
// divergence surfacing as a typed error rather than an interrupt.
type brimEngine struct{}

func init() { Register(brimEngine{}) }

func (brimEngine) Kind() Kind { return BRIM }

func (brimEngine) Capabilities() Capabilities {
	return Capabilities{
		WarmStart:   true,
		Backend:     true,
		Spans:       true,
		Traced:      true,
		ModelTime:   true,
		Description: "single-chip BRIM (RK4 coupled-oscillator dynamics), best of Runs anneals",
	}
}

func (brimEngine) Solve(ctx context.Context, r *Request) (*Outcome, error) {
	if len(r.Resume) > 0 {
		if err := r.applyWarmStart(); err != nil {
			return nil, err
		}
	}
	out := r.NewOutcome()
	start := time.Now()
	best, all, rerr := brim.SolveBatchCtx(ctx, r.Model, brim.SolveConfig{
		Duration:       r.DurationNS,
		SampleInterval: r.SampleEveryNS,
		Initial:        r.Initial,
		Config:         brim.Config{Seed: r.Seed, Backend: r.backend},
		Tracer:         r.Tracer,
		Metrics:        r.Metrics,
		Spans:          r.spans,
		SpanParent:     r.rootSpan,
	}, r.Runs)
	out.Spins, out.Energy = best.Spins, best.Energy
	out.Trace = best.Trace
	for _, res := range all {
		out.ModelNS += res.ModelNS
		out.Stats["flips"] += float64(res.Flips)
	}
	if rerr != nil {
		if isCtxErr(rerr) {
			return r.Interrupted(out, start, rerr, nil)
		}
		return nil, fmt.Errorf("core: %s: %w", r.Kind, rerr)
	}
	r.Finish(out, start)
	return out, nil
}
