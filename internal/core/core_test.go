package core

import (
	"math"
	"testing"

	"mbrim/internal/graph"
	"mbrim/internal/rng"
)

func testProblem(n int, seed uint64) (*graph.Graph, *Request) {
	g := graph.Complete(n, rng.New(seed))
	return g, &Request{Model: g.ToIsing(), Graph: g, Seed: seed}
}

func TestParseKind(t *testing.T) {
	for _, s := range Kinds() {
		k, err := ParseKind(s)
		if err != nil || string(k) != s {
			t.Fatalf("ParseKind(%q) = %v, %v", s, k, err)
		}
	}
	if _, err := ParseKind("  SA "); err != nil {
		t.Fatal("ParseKind should trim and lowercase")
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Fatal("ParseKind accepted garbage")
	}
}

func TestEveryEngineSolves(t *testing.T) {
	g, base := testProblem(40, 1)
	for _, name := range Kinds() {
		k, _ := ParseKind(name)
		req := *base
		req.Kind = k
		req.Sweeps = 30
		req.Steps = 100
		req.DurationNS = 30
		req.Chips = 4
		req.Runs = 2
		req.MachineCapacity = 24
		out, err := Solve(req)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(out.Spins) != 40 {
			t.Fatalf("%s: %d spins", name, len(out.Spins))
		}
		if math.Abs(out.Energy-req.Model.Energy(out.Spins)) > 1e-6 {
			t.Fatalf("%s: reported energy inconsistent", name)
		}
		if math.Abs(out.Cut-g.CutValue(out.Spins)) > 1e-9 {
			t.Fatalf("%s: cut inconsistent", name)
		}
		if out.Energy >= 0 {
			t.Fatalf("%s: no optimization progress (E=%v)", name, out.Energy)
		}
		if out.Wall <= 0 {
			t.Fatalf("%s: no wall time", name)
		}
	}
}

func TestModelTimeLedger(t *testing.T) {
	_, base := testProblem(32, 2)
	// Pure software engines report zero model time.
	for _, k := range []Kind{SA, Tabu, BSBM, DSBM} {
		req := *base
		req.Kind = k
		req.Sweeps = 10
		req.Steps = 50
		out, err := Solve(req)
		if err != nil {
			t.Fatal(err)
		}
		if out.ModelNS != 0 {
			t.Fatalf("%s: software engine has model time %v", k, out.ModelNS)
		}
	}
	// Machines report model time.
	for _, k := range []Kind{BRIM, MBRIMConcurrent, MBRIMBatch} {
		req := *base
		req.Kind = k
		req.DurationNS = 20
		req.Chips = 4
		req.Runs = 2
		out, err := Solve(req)
		if err != nil {
			t.Fatal(err)
		}
		if out.ModelNS <= 0 {
			t.Fatalf("%s: machine engine has no model time", k)
		}
	}
}

func TestMultichipStatsExposed(t *testing.T) {
	_, base := testProblem(48, 3)
	req := *base
	req.Kind = MBRIMConcurrent
	req.Chips = 4
	req.DurationNS = 30
	out, err := Solve(req)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"flips", "bitChanges", "trafficBytes", "stallNS"} {
		if _, ok := out.Stats[key]; !ok {
			t.Fatalf("stat %q missing", key)
		}
	}
	if out.Stats["flips"] == 0 {
		t.Fatal("no flips recorded")
	}
}

func TestDncStatsExposed(t *testing.T) {
	_, base := testProblem(60, 4)
	req := *base
	req.Kind = QBSolv
	req.MachineCapacity = 32
	req.Sweeps = 20
	out, err := Solve(req)
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats["launches"] == 0 || out.Stats["glueOps"] == 0 {
		t.Fatalf("d&c stats missing: %v", out.Stats)
	}
	if out.ModelNS <= 0 {
		t.Fatal("d&c hardware time missing")
	}
}

func TestDeterministicOutcomes(t *testing.T) {
	_, base := testProblem(32, 5)
	for _, k := range []Kind{SA, DSBM, BRIM, MBRIMConcurrent} {
		req := *base
		req.Kind = k
		req.Sweeps = 10
		req.Steps = 50
		req.DurationNS = 20
		req.Chips = 2
		a, err := Solve(req)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Solve(req)
		if err != nil {
			t.Fatal(err)
		}
		if a.Energy != b.Energy {
			t.Fatalf("%s: nondeterministic outcome", k)
		}
	}
}

func TestNilModelErrors(t *testing.T) {
	if _, err := Solve(Request{Kind: SA}); err == nil {
		t.Fatal("nil model did not error")
	}
}

func TestNoGraphNoCut(t *testing.T) {
	_, base := testProblem(16, 6)
	req := *base
	req.Graph = nil
	req.Kind = SA
	req.Sweeps = 5
	out, err := Solve(req)
	if err != nil {
		t.Fatal(err)
	}
	if out.Cut != 0 {
		t.Fatalf("cut %v without a graph", out.Cut)
	}
}

func TestInitialWarmStart(t *testing.T) {
	// A warm start from a good state must not end worse than the
	// state's own energy for greedy-capable engines.
	_, base := testProblem(32, 7)
	good, err := Solve(Request{Kind: SA, Model: base.Model, Sweeps: 200, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Tabu returns the best state seen, so a warm start can never end
	// above its seed. (SA's final state can be worse transiently when
	// the schedule reheats; it is exercised separately.)
	req := *base
	req.Kind = Tabu
	req.Sweeps = 20
	req.Initial = good.Spins
	out, err := Solve(req)
	if err != nil {
		t.Fatal(err)
	}
	if out.Energy > good.Energy {
		t.Fatalf("tabu warm start ended worse (%v) than its seed state (%v)",
			out.Energy, good.Energy)
	}
	saReq := *base
	saReq.Kind = SA
	saReq.Sweeps = 20
	saReq.Initial = good.Spins
	if _, err := Solve(saReq); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialEngineSlower(t *testing.T) {
	// mbrim-seq charges chips× elapsed model time vs mbrim concurrent.
	_, base := testProblem(32, 9)
	conc := *base
	conc.Kind = MBRIMConcurrent
	conc.Chips = 4
	conc.DurationNS = 20
	co, err := Solve(conc)
	if err != nil {
		t.Fatal(err)
	}
	seq := conc
	seq.Kind = MBRIMSequential
	so, err := Solve(seq)
	if err != nil {
		t.Fatal(err)
	}
	if so.ModelNS < 3.9*co.ModelNS {
		t.Fatalf("sequential elapsed %v not ~4x concurrent %v", so.ModelNS, co.ModelNS)
	}
}

func TestPTStatsExposed(t *testing.T) {
	_, base := testProblem(32, 10)
	req := *base
	req.Kind = PT
	req.Sweeps = 20
	req.Runs = 4
	out, err := Solve(req)
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats["swapAttempts"] == 0 {
		t.Fatal("PT swap stats missing")
	}
}

func TestBandwidthPresets(t *testing.T) {
	if HBChannelBytesPerNS != 250 || LBChannelBytesPerNS != 62.5 {
		t.Fatalf("presets %v/%v drifted from the paper's Sec 6.3 values",
			HBChannelBytesPerNS, LBChannelBytesPerNS)
	}
}
