package core

import (
	"context"
	"time"

	"mbrim/internal/sbm"
)

// sbmEngine adapts internal/sbm; one registration per variant (bSBM
// ballistic, dSBM discrete) so each is a first-class registry entry.
type sbmEngine struct {
	kind    Kind
	variant sbm.Variant
	desc    string
}

func init() {
	Register(sbmEngine{kind: BSBM, variant: sbm.Ballistic,
		desc: "ballistic simulated bifurcation, best of Runs restarts"})
	Register(sbmEngine{kind: DSBM, variant: sbm.Discrete,
		desc: "discrete simulated bifurcation, best of Runs restarts"})
}

func (e sbmEngine) Kind() Kind { return e.kind }

func (e sbmEngine) Capabilities() Capabilities {
	return Capabilities{
		Backend:     true,
		Description: e.desc,
	}
}

func (e sbmEngine) Solve(ctx context.Context, r *Request) (*Outcome, error) {
	out := r.NewOutcome()
	start := time.Now()
	var best *sbm.Result
	for i := 0; i < r.Runs; i++ {
		res, rerr := sbm.SolveCtx(ctx, r.Model, sbm.Config{Variant: e.variant, Steps: r.Steps,
			Seed: r.Seed + uint64(i), Backend: r.backend,
			Tracer: r.Tracer, Metrics: r.Metrics})
		if best == nil || res.Energy < best.Energy {
			best = res
		}
		if rerr != nil {
			out.Spins, out.Energy = best.Spins, best.Energy
			return r.Interrupted(out, start, rerr, nil)
		}
	}
	out.Spins, out.Energy = best.Spins, best.Energy
	r.Finish(out, start)
	return out, nil
}
