package core

import (
	"context"
	"strings"
	"testing"
)

// fakeEngine is a registrable stub for registry-surface tests.
type fakeEngine struct{ kind Kind }

func (f fakeEngine) Kind() Kind                 { return f.kind }
func (f fakeEngine) Capabilities() Capabilities { return Capabilities{} }
func (f fakeEngine) Solve(context.Context, *Request) (*Outcome, error) {
	return nil, nil
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("duplicate Register did not panic")
		}
		if !strings.Contains(r.(string), "duplicate engine") {
			t.Fatalf("panic message %q", r)
		}
	}()
	Register(fakeEngine{kind: SA}) // sa registered by engine_sa.go's init
}

func TestRegisterNilAndEmptyPanic(t *testing.T) {
	for name, fn := range map[string]func(){
		"nil":   func() { Register(nil) },
		"empty": func() { Register(fakeEngine{kind: "  "}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Register(%s engine) did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestKindsRoundTrip pins that every registered kind parses back to
// itself and resolves to a live engine.
func TestKindsRoundTrip(t *testing.T) {
	ks := Kinds()
	if len(ks) < 11 {
		t.Fatalf("registry holds only %d engines: %v", len(ks), ks)
	}
	for _, s := range ks {
		k, err := ParseKind(s)
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", s, err)
		}
		if string(k) != s {
			t.Fatalf("ParseKind(%q) = %q", s, k)
		}
		if _, ok := lookupEngine(k); !ok {
			t.Fatalf("kind %q listed but not resolvable", s)
		}
		if _, ok := EngineCaps(k); !ok {
			t.Fatalf("EngineCaps(%q) missing", s)
		}
	}
}

func TestEnginesSortedAndComplete(t *testing.T) {
	infos := Engines()
	ks := Kinds()
	if len(infos) != len(ks) {
		t.Fatalf("Engines() has %d entries, Kinds() %d", len(infos), len(ks))
	}
	for i, inf := range infos {
		if string(inf.Kind) != ks[i] {
			t.Fatalf("Engines()[%d] = %q, want %q (sorted)", i, inf.Kind, ks[i])
		}
	}
	// The capability flags must reflect the adapters: only the
	// multichip modes resume, and the warm-start set is exactly the
	// hand-off-capable engines.
	caps, _ := EngineCaps(MBRIMConcurrent)
	if !caps.Resume {
		t.Fatal("mbrim must declare Resume")
	}
	for _, k := range []Kind{SA, Tabu, BRIM} {
		caps, _ := EngineCaps(k)
		if !caps.WarmStart {
			t.Fatalf("%s must declare WarmStart", k)
		}
	}
	caps, _ = EngineCaps(PT)
	if caps.Resume || caps.WarmStart {
		t.Fatal("pt must declare neither Resume nor WarmStart")
	}
}

func TestUnknownEngineError(t *testing.T) {
	_, err := ParseKind("no-such-engine")
	if err == nil {
		t.Fatal("unknown kind accepted")
	}
	if !strings.Contains(err.Error(), "unknown solver") {
		t.Fatalf("error %q", err)
	}
	// SolveCtx must reject unknown kinds with the same error shape
	// (after model validation, which takes priority).
	_, r := testProblem(8, 1)
	r.Kind = "no-such-engine"
	if _, serr := Solve(*r); serr == nil || !strings.Contains(serr.Error(), "unknown solver") {
		t.Fatalf("SolveCtx unknown-kind error: %v", serr)
	}
}

// TestParseKindDidYouMean pins the near-miss suggestions: close typos
// get a hint, distant garbage does not.
func TestParseKindDidYouMean(t *testing.T) {
	cases := []struct {
		in   string
		hint string // "" = no suggestion expected
	}{
		{"mbirm", "mbrim"},          // adjacent transposition
		{"taboo", "tabu"},           // one substitution + one insertion
		{"dsmb", "dsbm"},            // transposition
		{"qbslov", "qbsolv"},        // transposition
		{"as", "sa"},                // short name, one transposition
		{"portfolios", "portfolio"}, // trailing insertion (only when portfolio is linked)
		{"zzzzzz", ""},              // hopeless
		{"xy", ""},                  // short and not close
	}
	for _, c := range cases {
		if c.in == "portfolios" {
			// portfolio only exists when internal/portfolio is linked;
			// core's own test binary deliberately does not link it.
			if _, ok := lookupEngine(Portfolio); !ok {
				continue
			}
		}
		_, err := ParseKind(c.in)
		if err == nil {
			t.Fatalf("ParseKind(%q) unexpectedly succeeded", c.in)
		}
		msg := err.Error()
		if c.hint == "" {
			if strings.Contains(msg, "did you mean") {
				t.Fatalf("ParseKind(%q) suggested a hint: %q", c.in, msg)
			}
			continue
		}
		want := `did you mean "` + c.hint + `"`
		if !strings.Contains(msg, want) {
			t.Fatalf("ParseKind(%q) = %q, want %s", c.in, msg, want)
		}
	}
}

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b string
		d    int
	}{
		{"", "", 0},
		{"", "abc", 3},
		{"abc", "abc", 0},
		{"abc", "abd", 1},
		{"ab", "ba", 1}, // transposition counts once
		{"mbirm", "mbrim", 1},
		{"sa", "dsbm", 3},
		{"tabu", "taboo", 2},
	}
	for _, c := range cases {
		if got := editDistance(c.a, c.b); got != c.d {
			t.Fatalf("editDistance(%q, %q) = %d, want %d", c.a, c.b, got, c.d)
		}
		if got := editDistance(c.b, c.a); got != c.d {
			t.Fatalf("editDistance(%q, %q) = %d, want %d (symmetry)", c.b, c.a, got, c.d)
		}
	}
}

// TestResumeRejectedWithoutCapability pins the capability-derived
// validation: a resume envelope on an engine with neither Resume nor
// WarmStart fails validation before dispatch.
func TestResumeRejectedWithoutCapability(t *testing.T) {
	_, r := testProblem(8, 1)
	r.Kind = PT // neither Resume nor WarmStart
	r.Resume = []byte("whatever")
	if _, err := Solve(*r); err == nil || !strings.Contains(err.Error(), "resume") {
		t.Fatalf("pt resume error: %v", err)
	}
}
