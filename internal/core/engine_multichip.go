package core

import (
	"context"
	"fmt"
	"time"

	"mbrim/internal/checkpoint"
	"mbrim/internal/fault"
	"mbrim/internal/multichip"
)

// multichipEngine adapts the multiprocessor; one registration per
// operating mode (concurrent, sequential zero-ignorance baseline,
// batch). These are the only engines with full-state checkpoint
// resume: cancellation returns an InterruptedError whose Checkpoint
// bytes Request.Resume accepts for a bit-identical continuation.
type multichipEngine struct {
	kind Kind
	desc string
}

func init() {
	Register(multichipEngine{kind: MBRIMConcurrent,
		desc: "multiprocessor, concurrent mode (chips anneal while gradients sync)"})
	Register(multichipEngine{kind: MBRIMSequential,
		desc: "multiprocessor, sequential zero-ignorance baseline"})
	Register(multichipEngine{kind: MBRIMBatch,
		desc: "multiprocessor, batch mode (Runs staggered jobs rotate across chips)"})
}

func (e multichipEngine) Kind() Kind { return e.kind }

func (e multichipEngine) Capabilities() Capabilities {
	return Capabilities{
		Resume:      true,
		Backend:     true,
		Spans:       true,
		Traced:      true,
		ModelTime:   true,
		Description: e.desc,
	}
}

// Solve runs one of the multiprocessor modes with checkpoint resume
// and capture. On cancellation the partial result is wrapped in an
// InterruptedError whose Checkpoint bytes Request.Resume accepts; on
// divergence the typed error propagates with no checkpoint.
func (e multichipEngine) Solve(ctx context.Context, r *Request) (*Outcome, error) {
	out := r.NewOutcome()
	start := time.Now()
	sys, err := multichip.NewSystem(r.Model, multichipConfig(*r))
	if err != nil {
		return nil, err
	}
	var resume *multichip.Checkpoint
	if len(r.Resume) > 0 {
		f, err := checkpoint.Decode(r.Resume)
		if err != nil {
			return nil, err
		}
		if err := f.Validate(string(r.Kind), r.Seed, r.Model); err != nil {
			return nil, err
		}
		if f.Multichip == nil {
			return nil, fmt.Errorf("core: checkpoint has no multichip payload")
		}
		resume = f.Multichip
	}
	encode := func(ck *multichip.Checkpoint) ([]byte, error) {
		return checkpoint.Encode(&checkpoint.File{
			Engine:    string(r.Kind),
			Seed:      r.Seed,
			N:         r.Model.N(),
			ModelHash: checkpoint.HashModel(r.Model),
			Multichip: ck,
		})
	}
	if r.Kind == MBRIMBatch {
		res, ck, rerr := sys.RunBatchCtx(ctx, r.Runs, r.DurationNS, resume)
		if rerr != nil && !isCtxErr(rerr) {
			return nil, rerr
		}
		best := res.Jobs[res.Best]
		fillMultichip(out, best, res.BestEnergy, res.ElapsedNS, res.StallNS,
			res.Flips, res.InducedFlips, res.BitChanges, res.TrafficBytes)
		fillFaultStats(out, res.FaultStats, res.LiveChips)
		out.Trace = res.Trace
		out.EpochStats = res.EpochStats
		if rerr != nil {
			data, eerr := encode(ck)
			if eerr != nil {
				return nil, eerr
			}
			return r.Interrupted(out, start, rerr, data)
		}
		r.Finish(out, start)
		return out, nil
	}
	run := sys.RunConcurrentCtx
	if r.Kind == MBRIMSequential {
		run = sys.RunSequentialCtx
	}
	res, ck, rerr := run(ctx, r.DurationNS, resume)
	if rerr != nil && !isCtxErr(rerr) {
		return nil, rerr
	}
	fillMultichip(out, res.Spins, res.Energy, res.ElapsedNS, res.StallNS,
		res.Flips, res.InducedFlips, res.BitChanges, res.TrafficBytes)
	fillFaultStats(out, res.FaultStats, res.LiveChips)
	out.Trace = res.Trace
	out.EpochStats = res.EpochStats
	out.Surprises = res.Surprises
	if rerr != nil {
		data, eerr := encode(ck)
		if eerr != nil {
			return nil, eerr
		}
		return r.Interrupted(out, start, rerr, data)
	}
	r.Finish(out, start)
	return out, nil
}

func multichipConfig(r Request) multichip.Config {
	return multichip.Config{
		Backend:           r.backend,
		Chips:             r.Chips,
		EpochNS:           r.EpochNS,
		Coordinated:       r.Coordinated,
		Channels:          r.Channels,
		ChannelBytesPerNS: r.ChannelBytesPerNS,
		Seed:              r.Seed,
		SampleEveryNS:     r.SampleEveryNS,
		RecordEpochStats:  r.RecordEpochStats,
		Probes:            r.Probes,
		Parallel:          r.Parallel,
		Tracer:            r.Tracer,
		Metrics:           r.Metrics,
		Faults:            r.Faults,
		Spans:             r.spans,
		SpanRoot:          r.rootSpan,
		PairStats:         r.Diag,
	}
}

// fillFaultStats publishes the fault/recovery ledger into the uniform
// Stats map when any fault activity occurred.
func fillFaultStats(out *Outcome, fs fault.Stats, liveChips int) {
	out.Stats["liveChips"] = float64(liveChips)
	if !fs.Any() {
		return
	}
	out.Stats["faultDrops"] = float64(fs.Drops)
	out.Stats["faultCorruptions"] = float64(fs.Corruptions)
	out.Stats["faultDelays"] = float64(fs.Delays)
	out.Stats["faultStalls"] = float64(fs.Stalls)
	out.Stats["faultChipLosses"] = float64(fs.ChipLosses)
	out.Stats["recoveryRetransmits"] = float64(fs.Retransmits)
	out.Stats["recoveryResyncs"] = float64(fs.Resyncs)
	out.Stats["recoveryRepartitions"] = float64(fs.Repartitions)
	out.Stats["recoveryRetransmitBytes"] = fs.RetransmitBytes
	out.Stats["recoveryResyncBytes"] = fs.ResyncBytes
	out.Stats["recoveryStallNS"] = fs.RecoveryStallNS
}

func fillMultichip(out *Outcome, spins []int8, energy, elapsed, stall float64,
	flips, induced, changes int64, traffic float64) {
	out.Spins = spins
	out.Energy = energy
	out.ModelNS = elapsed
	out.Stats["stallNS"] = stall
	out.Stats["flips"] = float64(flips)
	out.Stats["inducedFlips"] = float64(induced)
	out.Stats["bitChanges"] = float64(changes)
	out.Stats["trafficBytes"] = traffic
}
