package core

// This file holds the portfolio engine's request/outcome types. The
// engine itself lives in internal/portfolio (it composes SolveCtx over
// other registered engines, so it cannot live in this package's
// registry files); the types live here so Request and Outcome can
// carry them without an import cycle.

// PortfolioSpec parameterizes the portfolio engine: which entrants to
// race, when the race ends, and the optional warm-start hand-off
// stage.
type PortfolioSpec struct {
	// Entrants are the engine/config variants to race. Empty means the
	// structure dispatcher picks them from the model's row statistics
	// (density, degree dispersion).
	Entrants []PortfolioEntrant `json:"entrants,omitempty"`
	// TargetEnergy, if non-nil, ends the race the moment any entrant
	// reaches an energy ≤ the target: the others are cancelled and the
	// first to cross wins. Nil races to completion (best final energy
	// wins).
	TargetEnergy *float64 `json:"targetEnergy,omitempty"`
	// BudgetMS, if > 0, bounds the race's wall time: at the budget
	// every still-running entrant is cancelled and the best state seen
	// anywhere wins.
	BudgetMS float64 `json:"budgetMS,omitempty"`
	// MaxEntrants caps how many entrants the structure dispatcher
	// fields when Entrants is empty. Default 3.
	MaxEntrants int `json:"maxEntrants,omitempty"`
	// HandOff, if non-nil, runs a second stage after the race: the
	// race's best spins are converted through the checkpoint layer into
	// a warm-start envelope and this entrant (which must name an engine
	// with the WarmStart capability) polishes from there.
	HandOff *PortfolioEntrant `json:"handOff,omitempty"`
}

// PortfolioEntrant is one engine/config variant in the race. Zero
// fields inherit the enclosing Request's values, so the common case —
// "race sa against tabu against brim on the same budget" — is just a
// list of kinds.
type PortfolioEntrant struct {
	// Kind names the engine (any registry name except "portfolio";
	// nesting is rejected).
	Kind string `json:"kind"`
	// SeedOffset decorrelates entrants that share an engine kind: the
	// entrant solves with Request.Seed + SeedOffset.
	SeedOffset uint64 `json:"seedOffset,omitempty"`
	// Runs/Sweeps/Steps/DurationNS/Chips override the enclosing
	// request's knobs for this entrant when non-zero.
	Runs       int     `json:"runs,omitempty"`
	Sweeps     int     `json:"sweeps,omitempty"`
	Steps      int     `json:"steps,omitempty"`
	DurationNS float64 `json:"durationNS,omitempty"`
	Chips      int     `json:"chips,omitempty"`
}

// PortfolioReport is the race ledger the portfolio engine attaches to
// its Outcome: every entrant's result, the win attribution, and the
// dispatcher's reasoning when it picked the field.
type PortfolioReport struct {
	// Winner indexes Entrants; WinnerKind repeats its engine name for
	// one-glance reading.
	Winner     int    `json:"winner"`
	WinnerKind string `json:"winnerKind"`
	// HitTarget reports that the race ended by first-to-target (vs
	// running to completion or budget).
	HitTarget bool `json:"hitTarget"`
	// Dispatched reports that the structure dispatcher (not the caller)
	// picked the entrants; Structure carries the row statistics it read.
	Dispatched bool            `json:"dispatched,omitempty"`
	Structure  *StructureStats `json:"structure,omitempty"`
	// Entrants holds one report per raced entrant, in entrant order.
	Entrants []EntrantReport `json:"entrants"`
	// HandOff reports the second-stage polish when one was configured.
	HandOff *EntrantReport `json:"handOff,omitempty"`
}

// EntrantReport is one entrant's line in the race ledger.
type EntrantReport struct {
	Index int    `json:"index"`
	Kind  string `json:"kind"`
	// Energy/Cut/ModelNS are the entrant's best state (for losers, the
	// best-so-far its InterruptedError carried).
	Energy  float64 `json:"energy"`
	Cut     float64 `json:"cut,omitempty"`
	ModelNS float64 `json:"modelNS,omitempty"`
	// WallNS is the entrant's own wall time (entrants overlap, so these
	// do not sum to the race's wall time).
	WallNS int64 `json:"wallNS"`
	// Interrupted reports the entrant was cancelled (lost the race or
	// hit the budget); Err carries any non-interrupt failure verbatim.
	Interrupted bool   `json:"interrupted,omitempty"`
	Err         string `json:"err,omitempty"`
	// HitTarget reports this entrant crossed the target energy.
	HitTarget bool `json:"hitTarget,omitempty"`
}

// StructureStats are the lattice row statistics the dispatcher reads:
// problem size, coupling density and the degree distribution's shape.
type StructureStats struct {
	N          int     `json:"n"`
	NNZ        int     `json:"nnz"`
	Density    float64 `json:"density"`
	MeanDegree float64 `json:"meanDegree"`
	MaxDegree  int     `json:"maxDegree"`
	// DegreeCV is the coefficient of variation of row degrees — near 0
	// for regular structures (K-graphs, grids), large for hub-and-spoke
	// embeddings.
	DegreeCV float64 `json:"degreeCV"`
}
