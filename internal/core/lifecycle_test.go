package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"mbrim/internal/brim"
	"mbrim/internal/ising"
	"mbrim/internal/obs"
)

// cancelOnEpoch cancels its context when the traced run reaches the
// target epoch barrier — the deterministic interruption primitive the
// lifecycle tests are built on.
type cancelOnEpoch struct {
	epoch  int
	cancel context.CancelFunc
}

func (c *cancelOnEpoch) Emit(e obs.Event) {
	if e.Kind == obs.EpochSync && e.Epoch >= c.epoch {
		c.cancel()
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	_, req := testProblem(16, 1)

	nan := ising.NewModel(8)
	nan.SetCoupling(0, 1, math.NaN())
	bad := *req
	bad.Model = nan
	if _, err := Solve(bad); !errors.Is(err, ErrInvalidModel) {
		t.Fatalf("NaN coupling: got %v", err)
	}

	inf := ising.NewModel(8)
	inf.SetBias(2, math.Inf(-1))
	bad = *req
	bad.Model = inf
	if _, err := Solve(bad); !errors.Is(err, ErrInvalidModel) {
		t.Fatalf("Inf bias: got %v", err)
	}

	bad = *req
	bad.Initial = make([]int8, 7) // wrong length, and zeros are not spins
	if _, err := Solve(bad); !errors.Is(err, ErrInvalidModel) {
		t.Fatalf("short warm start: got %v", err)
	}

	bad = *req
	bad.Initial = make([]int8, 16)
	if _, err := Solve(bad); !errors.Is(err, ErrInvalidModel) {
		t.Fatalf("zero-valued warm start: got %v", err)
	}

	bad = *req
	bad.Runs = -1
	if _, err := Solve(bad); err == nil {
		t.Fatal("negative Runs accepted")
	}

	bad = *req
	bad.DurationNS = math.NaN()
	if _, err := Solve(bad); err == nil {
		t.Fatal("NaN duration accepted")
	}
}

func TestResumeRejectedForSoftwareEngines(t *testing.T) {
	_, req := testProblem(16, 1)
	for _, kind := range []Kind{SA, Tabu, PT, BSBM, DSBM, BRIM, QBSolv, OursDnc} {
		r := *req
		r.Kind = kind
		r.Resume = []byte("whatever")
		if _, err := Solve(r); err == nil {
			t.Errorf("%s accepted resume bytes", kind)
		}
	}
}

func TestEveryEngineCancelsWithBestSoFar(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired: every engine must stop at its first barrier
	for _, kind := range []Kind{SA, Tabu, PT, BSBM, DSBM, BRIM, QBSolv, OursDnc,
		MBRIMConcurrent, MBRIMSequential, MBRIMBatch} {
		t.Run(string(kind), func(t *testing.T) {
			_, req := testProblem(24, 2)
			req.Kind = kind
			req.Runs = 2
			out, err := SolveCtx(ctx, *req)
			if out != nil {
				t.Fatal("cancelled solve returned a non-nil primary outcome")
			}
			if !errors.Is(err, ErrInterrupted) || !errors.Is(err, context.Canceled) {
				t.Fatalf("want ErrInterrupted/Canceled, got %v", err)
			}
			var intr *InterruptedError
			if !errors.As(err, &intr) {
				t.Fatalf("not an *InterruptedError: %v", err)
			}
			if intr.Outcome == nil || len(intr.Outcome.Spins) != 24 {
				t.Fatalf("best-so-far missing: %+v", intr.Outcome)
			}
			for i, s := range intr.Outcome.Spins {
				if s != -1 && s != 1 {
					t.Fatalf("best-so-far spin %d is %d", i, s)
				}
			}
			switch kind {
			case MBRIMConcurrent, MBRIMSequential, MBRIMBatch:
				if len(intr.Checkpoint) == 0 {
					t.Fatal("multichip interruption carried no checkpoint")
				}
			default:
				if intr.Checkpoint != nil {
					t.Fatalf("%s claims resumable state", kind)
				}
			}
		})
	}
}

func TestDivergenceIsTypedThroughCore(t *testing.T) {
	// A bias beyond the guardrail's halving budget must surface as the
	// integrator's typed error, not NaN spins and not an interruption.
	m := ising.NewModel(8)
	for i := 0; i < 8; i++ {
		m.SetBias(i, 1e12)
	}
	out, err := Solve(Request{Kind: BRIM, Model: m, DurationNS: 5})
	if out != nil {
		t.Fatal("divergent solve returned an outcome")
	}
	var div *brim.DivergenceError
	if !errors.As(err, &div) {
		t.Fatalf("want *brim.DivergenceError, got %v", err)
	}
	if errors.Is(err, ErrInterrupted) {
		t.Fatal("divergence misreported as interruption")
	}
}

func TestPanicBecomesTypedError(t *testing.T) {
	_, req := testProblem(16, 3)
	req.Kind = OursDnc
	req.MachineCapacity = -1 // trips the engine's internal invariant
	out, err := Solve(*req)
	if out != nil {
		t.Fatal("panicked solve returned an outcome")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %v", err)
	}
	if pe.Engine != OursDnc || len(pe.Stack) == 0 {
		t.Fatalf("panic diagnostics incomplete: engine=%s stack=%d bytes", pe.Engine, len(pe.Stack))
	}
}

func TestCoreResumeBitIdentical(t *testing.T) {
	for _, kind := range []Kind{MBRIMConcurrent, MBRIMSequential, MBRIMBatch} {
		t.Run(string(kind), func(t *testing.T) {
			_, req := testProblem(40, 4)
			req.Kind = kind
			req.Runs = 3
			req.DurationNS = 40
			full, err := Solve(*req)
			if err != nil {
				t.Fatal(err)
			}

			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			ireq := *req
			ireq.Tracer = &cancelOnEpoch{epoch: 3, cancel: cancel}
			_, err = SolveCtx(ctx, ireq)
			var intr *InterruptedError
			if !errors.As(err, &intr) || len(intr.Checkpoint) == 0 {
				t.Fatalf("interruption failed: %v", err)
			}

			rreq := *req
			rreq.Resume = intr.Checkpoint
			resumed, err := Solve(rreq)
			if err != nil {
				t.Fatal(err)
			}
			if full.Energy != resumed.Energy || full.Cut != resumed.Cut {
				t.Fatalf("resume not bit-identical: energy %v vs %v", full.Energy, resumed.Energy)
			}
			if ising.HammingDistance(full.Spins, resumed.Spins) != 0 {
				t.Fatal("resume produced different spins")
			}
			for _, stat := range []string{"flips", "bitChanges", "trafficBytes"} {
				if full.Stats[stat] != resumed.Stats[stat] {
					t.Fatalf("stat %q differs: %v vs %v", stat, full.Stats[stat], resumed.Stats[stat])
				}
			}
		})
	}
}

func TestCoreResumeRejectsTampering(t *testing.T) {
	_, req := testProblem(32, 5)
	req.Kind = MBRIMConcurrent
	req.DurationNS = 30
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ireq := *req
	ireq.Tracer = &cancelOnEpoch{epoch: 2, cancel: cancel}
	_, err := SolveCtx(ctx, ireq)
	var intr *InterruptedError
	if !errors.As(err, &intr) || len(intr.Checkpoint) == 0 {
		t.Fatalf("interruption failed: %v", err)
	}

	// Garbage bytes.
	bad := *req
	bad.Resume = []byte("garbage")
	if _, err := Solve(bad); err == nil {
		t.Fatal("garbage resume bytes accepted")
	}
	// Wrong engine.
	bad = *req
	bad.Kind = MBRIMSequential
	bad.Resume = intr.Checkpoint
	if _, err := Solve(bad); err == nil {
		t.Fatal("checkpoint resumed under a different engine")
	}
	// Wrong seed.
	bad = *req
	bad.Seed = 999
	bad.Resume = intr.Checkpoint
	if _, err := Solve(bad); err == nil {
		t.Fatal("checkpoint resumed under a different seed")
	}
	// Wrong model (same size, different couplings).
	_, other := testProblem(32, 6)
	bad = *req
	bad.Model = other.Model
	bad.Graph = other.Graph
	bad.Resume = intr.Checkpoint
	if _, err := Solve(bad); err == nil {
		t.Fatal("checkpoint resumed against a different model")
	}
	// The pristine bytes still work.
	good := *req
	good.Resume = intr.Checkpoint
	if _, err := Solve(good); err != nil {
		t.Fatalf("pristine resume rejected: %v", err)
	}
}
