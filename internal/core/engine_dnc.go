package core

import (
	"context"
	"time"

	"mbrim/internal/dnc"
)

// dncEngine adapts the divide-and-conquer hybrids over the proxy
// machine; one registration per algorithm (qbsolv = D-Wave's Algorithm
// 1, ours-dnc = the paper's Algorithm 2).
type dncEngine struct {
	kind Kind
	desc string
}

func init() {
	Register(dncEngine{kind: QBSolv,
		desc: "Algorithm 1: D-Wave's qbsolv divide-and-conquer on a proxy machine"})
	Register(dncEngine{kind: OursDnc,
		desc: "Algorithm 2: the paper's divide-and-conquer on a proxy machine"})
}

func (e dncEngine) Kind() Kind { return e.kind }

func (e dncEngine) Capabilities() Capabilities {
	return Capabilities{
		Backend:     true,
		ModelTime:   true,
		Description: e.desc,
	}
}

func (e dncEngine) Solve(ctx context.Context, r *Request) (*Outcome, error) {
	out := r.NewOutcome()
	start := time.Now()
	mach := &dnc.ProxyMachine{
		Cap:      r.MachineCapacity,
		AnnealNS: r.MachineAnnealNS,
		Program:  r.MachineProgramNS,
		Sweeps:   r.Sweeps,
	}
	var res *dnc.Result
	var rerr error
	if e.kind == QBSolv {
		res, rerr = dnc.QBSolvCtx(ctx, r.Model, mach, dnc.QBSolvConfig{Seed: r.Seed,
			Backend: r.backend, Tracer: r.Tracer, Metrics: r.Metrics})
	} else {
		res, rerr = dnc.OursCtx(ctx, r.Model, mach, dnc.OursConfig{Seed: r.Seed,
			Backend: r.backend, Tracer: r.Tracer, Metrics: r.Metrics})
	}
	out.Spins, out.Energy = res.Spins, res.Energy
	out.ModelNS = res.HardwareNS + res.ProgramNS
	out.Stats["glueOps"] = float64(res.GlueOps)
	out.Stats["launches"] = float64(res.Launches)
	out.Stats["softwareNS"] = float64(res.SoftwareWall.Nanoseconds())
	if rerr != nil {
		return r.Interrupted(out, start, rerr, nil)
	}
	r.Finish(out, start)
	return out, nil
}
