package core

import (
	"testing"

	"mbrim/internal/diag"
	"mbrim/internal/obs"
)

// collector accumulates every emitted event in order.
type collector struct{ events []obs.Event }

func (c *collector) Emit(e obs.Event) { c.events = append(c.events, e) }

// TestIntrospectionIsTrajectoryNeutral is the introspection
// equivalence guarantee: a seeded solve produces bit-identical spins,
// energy and ledger whether span tracing and diagnostics are off (the
// benchmark path) or fully on (tracer fan-out with a diag reducer, as
// the run manager attaches). Observability must observe, not perturb.
func TestIntrospectionIsTrajectoryNeutral(t *testing.T) {
	for _, kind := range []Kind{BRIM, MBRIMConcurrent, MBRIMSequential, MBRIMBatch} {
		_, base := testProblem(36, 9)
		req := *base
		req.Kind = kind
		req.DurationNS = 120
		req.Chips = 3
		req.EpochNS = 10
		req.Runs = 2
		req.SampleEveryNS = 10

		bare := req
		plain, err := Solve(bare)
		if err != nil {
			t.Fatalf("%s bare: %v", kind, err)
		}

		instr := req
		col := &collector{}
		instr.Tracer = obs.Fanout(col, diag.New(diag.Config{}))
		instr.SpanTrace = true
		instr.Diag = true
		traced, err := Solve(instr)
		if err != nil {
			t.Fatalf("%s traced: %v", kind, err)
		}

		if plain.Energy != traced.Energy || plain.Cut != traced.Cut ||
			plain.ModelNS != traced.ModelNS {
			t.Fatalf("%s: outcome diverged with introspection on: E %v vs %v, cut %v vs %v, model %v vs %v",
				kind, plain.Energy, traced.Energy, plain.Cut, traced.Cut, plain.ModelNS, traced.ModelNS)
		}
		for i := range plain.Spins {
			if plain.Spins[i] != traced.Spins[i] {
				t.Fatalf("%s: spin %d diverged with introspection on", kind, i)
			}
		}
		for k, v := range plain.Stats {
			if traced.Stats[k] != v {
				t.Fatalf("%s: stat %q diverged: %v vs %v", kind, k, v, traced.Stats[k])
			}
		}
		spans := 0
		for _, e := range col.events {
			if e.Kind == obs.SpanStart || e.Kind == obs.SpanEnd {
				spans++
			}
		}
		if spans == 0 {
			t.Fatalf("%s: SpanTrace on but no span events captured", kind)
		}
	}
}

// TestSpanStreamDeterministic pins the span stream itself: two solves
// with the same seed emit identical event sequences (IDs, parents,
// labels, model timestamps) once the wall-clock fields — the only
// nondeterminism-exempt fields of the obs contract — are cleared.
func TestSpanStreamDeterministic(t *testing.T) {
	run := func() []obs.Event {
		_, base := testProblem(30, 4)
		req := *base
		req.Kind = MBRIMConcurrent
		req.DurationNS = 90
		req.Chips = 3
		req.EpochNS = 10
		req.SampleEveryNS = 15
		req.SpanTrace = true
		req.Diag = true
		col := &collector{}
		req.Tracer = col
		if _, err := Solve(req); err != nil {
			t.Fatal(err)
		}
		for i := range col.events {
			col.events[i].WallNS = 0
			col.events[i].WallDurNS = 0
		}
		return col.events
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("event counts diverged: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d diverged:\n  %+v\n  %+v", i, a[i], b[i])
		}
	}
}
