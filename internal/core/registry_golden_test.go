package core

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"mbrim/internal/graph"
	"mbrim/internal/rng"
)

// -update regenerates the registry dispatch golden. It was first
// generated against the pre-registry switch dispatch, so a passing run
// of TestRegistryDispatchNeutral proves registry dispatch is
// bit-identical to the old hard-coded switch for every engine × seed ×
// model shape.
var updateGolden = flag.Bool("update", false, "rewrite testdata goldens")

const goldenPath = "testdata/registry_golden.json"

// goldenOutcome is the deterministic projection of one solve: energy
// and model time as IEEE-754 bits (exact, not printed floats), an
// FNV-1a hash of the spin vector, and every deterministic stat. Wall
// time and wall-derived stats (softwareNS) are excluded — they are the
// only nondeterminism the Outcome contract permits.
type goldenOutcome struct {
	Engine     string            `json:"engine"`
	Seed       uint64            `json:"seed"`
	Model      string            `json:"model"`
	Backend    string            `json:"backend"`
	EnergyBits uint64            `json:"energyBits"`
	CutBits    uint64            `json:"cutBits"`
	ModelNS    uint64            `json:"modelNSBits"`
	SpinsHash  uint64            `json:"spinsHash"`
	Stats      map[string]uint64 `json:"stats"`
}

// goldenModels are the two problem shapes the golden sweeps: the
// paper's dense K-graph family and a sparse instance that Auto
// resolves to the CSR backend.
func goldenModels() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"k36":        graph.Complete(36, rng.New(7)),
		"sparse-100": graph.Random(100, 0.04, rng.New(7)),
	}
}

// goldenRequest builds the fixed solve configuration the golden uses
// for every engine: small enough to keep the sweep fast, large enough
// that every engine does real work.
func goldenRequest(kind Kind, g *graph.Graph, seed uint64) Request {
	return Request{
		Kind:            kind,
		Model:           g.ToIsing(),
		Graph:           g,
		Seed:            seed,
		Runs:            2,
		Sweeps:          25,
		Steps:           80,
		DurationNS:      30,
		Chips:           3,
		MachineCapacity: 24,
	}
}

func hashSpins(spins []int8) uint64 {
	h := fnv.New64a()
	for _, s := range spins {
		h.Write([]byte{byte(s)})
	}
	return h.Sum64()
}

func projectOutcome(kind Kind, seed uint64, model string, out *Outcome) goldenOutcome {
	stats := map[string]uint64{}
	for k, v := range out.Stats {
		if k == "softwareNS" { // wall-derived; everything else is model-exact
			continue
		}
		stats[k] = math.Float64bits(v)
	}
	return goldenOutcome{
		Engine:     string(kind),
		Seed:       seed,
		Model:      model,
		Backend:    out.Backend,
		EnergyBits: math.Float64bits(out.Energy),
		CutBits:    math.Float64bits(out.Cut),
		ModelNS:    math.Float64bits(out.ModelNS),
		SpinsHash:  hashSpins(out.Spins),
		Stats:      stats,
	}
}

// goldenEngines returns the engines the golden pins: every registered
// engine except the portfolio meta-engine (not linked into this
// package's test binary; its raced entrants are pinned individually).
func goldenEngines() []string {
	var ks []string
	for _, k := range Kinds() {
		if k == "portfolio" {
			continue
		}
		ks = append(ks, k)
	}
	return ks
}

func runGoldenSweep(t *testing.T) []goldenOutcome {
	t.Helper()
	var got []goldenOutcome
	models := goldenModels()
	names := make([]string, 0, len(models))
	for name := range models {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		g := models[name]
		for _, engine := range goldenEngines() {
			kind, err := ParseKind(engine)
			if err != nil {
				t.Fatalf("ParseKind(%q): %v", engine, err)
			}
			for seed := uint64(1); seed <= 3; seed++ {
				req := goldenRequest(kind, g, seed)
				out, err := Solve(req)
				if err != nil {
					t.Fatalf("%s/%s/seed=%d: %v", engine, name, seed, err)
				}
				got = append(got, projectOutcome(kind, seed, name, out))
			}
		}
	}
	return got
}

// TestRegistryDispatchNeutral pins registry dispatch bit-identical to
// the pre-refactor switch dispatch: the golden file was generated
// before the engine registry replaced the `switch r.Kind` in SolveCtx,
// so any drift in energy bits, spin vectors, model time or the stats
// ledger is a real trajectory change, not noise.
func TestRegistryDispatchNeutral(t *testing.T) {
	if testing.Short() {
		t.Skip("golden sweep runs every engine × 3 seeds × 2 models")
	}
	got := runGoldenSweep(t)
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden rewritten: %d outcomes", len(got))
		return
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden (run with -update to generate): %v", err)
	}
	var want []goldenOutcome
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	index := map[string]goldenOutcome{}
	for _, w := range want {
		index[fmt.Sprintf("%s/%s/%d", w.Engine, w.Model, w.Seed)] = w
	}
	if len(got) != len(want) {
		t.Errorf("outcome count drifted: golden %d, now %d", len(want), len(got))
	}
	for _, g := range got {
		key := fmt.Sprintf("%s/%s/%d", g.Engine, g.Model, g.Seed)
		w, ok := index[key]
		if !ok {
			t.Errorf("%s: no golden entry (run -update after intentionally adding engines)", key)
			continue
		}
		if g.EnergyBits != w.EnergyBits {
			t.Errorf("%s: energy bits %#x, golden %#x (%v vs %v)", key,
				g.EnergyBits, w.EnergyBits,
				math.Float64frombits(g.EnergyBits), math.Float64frombits(w.EnergyBits))
		}
		if g.CutBits != w.CutBits {
			t.Errorf("%s: cut bits drifted", key)
		}
		if g.ModelNS != w.ModelNS {
			t.Errorf("%s: model time bits drifted", key)
		}
		if g.SpinsHash != w.SpinsHash {
			t.Errorf("%s: spin vector drifted", key)
		}
		if g.Backend != w.Backend {
			t.Errorf("%s: backend %q, golden %q", key, g.Backend, w.Backend)
		}
		if len(g.Stats) != len(w.Stats) {
			t.Errorf("%s: stats keys drifted: %d vs golden %d", key, len(g.Stats), len(w.Stats))
		}
		for k, v := range w.Stats {
			if g.Stats[k] != v {
				t.Errorf("%s: stat %q drifted: %#x vs golden %#x", key, k, g.Stats[k], v)
			}
		}
	}
}
