// Package sbm implements the simulated bifurcation machine of Goto et
// al. [22], the state-of-the-art computational annealer the paper
// compares against (the 8-FPGA system of [49] runs this algorithm).
// Both published variants are provided:
//
//   - Ballistic SB (bSB): the mean-field force uses the continuous
//     positions, with perfectly inelastic walls at x = ±1.
//   - Discrete SB (dSB): the force uses the *signs* of the positions,
//     which suppresses analog error and reaches better solutions.
//
// The dynamics follow the symplectic-Euler update of the paper:
//
//	y_i += [ −(a0 − a(t))·x_i + c0·f_i ] · dt
//	x_i += a0 · y_i · dt
//
// with the bifurcation parameter a(t) ramping 0 → a0 over the run and
// walls: |x_i| > 1 ⇒ x_i ← sign(x_i), y_i ← 0.
package sbm

import (
	"context"
	"fmt"
	"math"
	"time"

	"mbrim/internal/ising"
	"mbrim/internal/lattice"
	"mbrim/internal/obs"
	"mbrim/internal/rng"
)

// Variant selects the SB flavour.
type Variant int

// The two published high-performance SB variants.
const (
	Ballistic Variant = iota
	Discrete
)

// String names the variant.
func (v Variant) String() string {
	switch v {
	case Ballistic:
		return "bSBM"
	case Discrete:
		return "dSBM"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Config parameterizes an SB run.
type Config struct {
	// Variant selects ballistic or discrete SB. Default Ballistic.
	Variant Variant
	// Steps is the number of symplectic-Euler steps. Must be >= 1.
	Steps int
	// Dt is the time step. Default 0.5.
	Dt float64
	// A0 is the final bifurcation parameter. Default 1.
	A0 float64
	// C0 is the coupling strength. Default 0.5/(√N·σ_J), the value
	// recommended by Goto et al. for dense random couplings.
	C0 float64
	// Seed drives the random initial positions.
	Seed uint64
	// OnStep, if non-nil, is called after each step with the step
	// index and the energy of the current sign readout.
	OnStep func(step int, energy float64)
	// Backend selects the coupling-matrix layout behind the force
	// accumulation (lattice.Auto resolves by measured density) and
	// Workers fans it over goroutines. Both only move host time: every
	// backend × worker count produces bit-identical trajectories.
	Backend lattice.Kind
	Workers int
	// Tracer, if non-nil, receives EnergySample events on a bounded
	// cadence (~64 samples per run; each sample costs an O(N²) energy
	// evaluation, so per-step emission would dominate the run).
	Tracer obs.Tracer
	// Metrics, if non-nil, accumulates run totals (sbm.steps, sbm.runs).
	Metrics *obs.Registry
}

// Result is the outcome of one SB run.
type Result struct {
	Spins  []int8
	Energy float64
	Steps  int
	Wall   time.Duration
}

// defaultC0 is Goto's heuristic coupling scale.
func defaultC0(m *ising.Model) float64 {
	return defaultC0From(m.View(lattice.Dense))
}

// defaultC0From computes the heuristic from a coupling view. The
// moment statistics run over every upper-triangle pair, zeros included
// — the historical population — so cnt is n(n−1)/2 directly while the
// sums iterate only stored nonzeros (adding a zero never changes an
// accumulator's bits).
func defaultC0From(lat lattice.Coupling) float64 {
	n := lat.N()
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		lat.Scan(i, func(j int, v float64) {
			if j > i {
				sum += v
				sumSq += v * v
			}
		})
	}
	cnt := n * (n - 1) / 2
	if cnt == 0 {
		return 1
	}
	mean := sum / float64(cnt)
	variance := sumSq/float64(cnt) - mean*mean
	sigma := math.Sqrt(math.Max(variance, 1e-12))
	return 0.5 / (sigma * math.Sqrt(float64(n)))
}

// Solve runs simulated bifurcation on the model.
func Solve(m *ising.Model, cfg Config) *Result {
	res, _ := SolveCtx(context.Background(), m, cfg)
	return res
}

// SolveCtx is Solve with cancellation: the run stops at the next
// symplectic step boundary and returns the sign readout reached so far
// alongside ctx.Err(). The result is always non-nil and internally
// consistent.
func SolveCtx(ctx context.Context, m *ising.Model, cfg Config) (*Result, error) {
	if cfg.Steps < 1 {
		panic(fmt.Sprintf("sbm: Steps=%d", cfg.Steps))
	}
	if ctx == nil {
		ctx = context.Background()
	}
	dt := cfg.Dt
	if dt == 0 {
		dt = 0.5
	}
	if dt <= 0 {
		panic(fmt.Sprintf("sbm: Dt=%v", dt))
	}
	a0 := cfg.A0
	if a0 == 0 {
		a0 = 1
	}
	n := m.N()
	lat := m.View(cfg.Backend)
	// The bias term enters the force like a coupling to a fixed +1 spin;
	// precomputed once, it seeds every row's accumulator.
	base := make([]float64, n)
	for i := 0; i < n; i++ {
		base[i] = m.Mu() * m.Bias(i)
	}
	c0 := cfg.C0
	if c0 == 0 {
		c0 = defaultC0From(lat)
	}
	r := rng.New(cfg.Seed)
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = 0.1 * (r.Float64()*2 - 1)
		y[i] = 0.1 * (r.Float64()*2 - 1)
	}
	force := make([]float64, n)
	spins := make([]int8, n)
	sampleEvery := 0
	if cfg.Tracer != nil {
		sampleEvery = cfg.Steps / 64
		if sampleEvery < 1 {
			sampleEvery = 1
		}
	}

	start := time.Now()
	done := ctx.Done()
	stepsDone := 0
	var runErr error
	for step := 0; step < cfg.Steps; step++ {
		select {
		case <-done:
			runErr = ctx.Err()
		default:
		}
		if runErr != nil {
			break
		}
		at := a0 * float64(step) / float64(cfg.Steps)
		// Mean-field force. dSB uses sign(x), bSB uses x itself.
		switch cfg.Variant {
		case Discrete:
			for j := 0; j < n; j++ {
				if x[j] >= 0 {
					spins[j] = 1
				} else {
					spins[j] = -1
				}
			}
			lattice.Fields(lat, spins, base, force, cfg.Workers)
		default:
			lattice.MatVec(lat, x, base, force, cfg.Workers)
		}
		for i := 0; i < n; i++ {
			y[i] += (-(a0-at)*x[i] + c0*force[i]) * dt
			x[i] += a0 * y[i] * dt
			// Perfectly inelastic walls.
			if x[i] > 1 {
				x[i], y[i] = 1, 0
			} else if x[i] < -1 {
				x[i], y[i] = -1, 0
			}
		}
		stepsDone++
		if cfg.OnStep != nil {
			cfg.OnStep(step, m.Energy(readout(x, spins)))
		}
		if sampleEvery > 0 && (step+1)%sampleEvery == 0 {
			cfg.Tracer.Emit(obs.Event{Kind: obs.EnergySample,
				Epoch: step + 1, Value: m.Energy(readout(x, spins))})
		}
	}
	res := &Result{
		Spins: ising.CopySpins(readout(x, spins)),
		Steps: stepsDone,
		Wall:  time.Since(start),
	}
	res.Energy = m.Energy(res.Spins)
	if cfg.Metrics != nil {
		cfg.Metrics.Counter("sbm.runs").Inc()
		cfg.Metrics.Counter("sbm.steps").Add(int64(stepsDone))
	}
	return res, runErr
}

// readout writes sign(x) into buf and returns it.
func readout(x []float64, buf []int8) []int8 {
	for i, v := range x {
		if v >= 0 {
			buf[i] = 1
		} else {
			buf[i] = -1
		}
	}
	return buf
}

// BatchResult aggregates independent SB runs.
type BatchResult struct {
	Best    *Result
	Results []*Result
	Wall    time.Duration
}

// SolveBatch performs runs independent SB runs with consecutive seeds
// and returns all results plus the best by energy.
func SolveBatch(m *ising.Model, cfg Config, runs int) *BatchResult {
	if runs < 1 {
		panic(fmt.Sprintf("sbm: runs=%d", runs))
	}
	br := &BatchResult{Results: make([]*Result, runs)}
	start := time.Now()
	for i := 0; i < runs; i++ {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)
		br.Results[i] = Solve(m, c)
		if br.Best == nil || br.Results[i].Energy < br.Best.Energy {
			br.Best = br.Results[i]
		}
	}
	br.Wall = time.Since(start)
	return br
}
