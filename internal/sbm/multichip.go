package sbm

import (
	"fmt"

	"time"

	"mbrim/internal/graph"
	"mbrim/internal/ising"
	"mbrim/internal/rng"
)

// This file implements the multi-chip scale-out of simulated
// bifurcation following Tatsumura, Yamasaki & Goto (Nature Electronics
// 2021, reference [49]) — the 8-FPGA system the paper's Fig 12
// compares against. The spins are partitioned over chips; each chip
// advances its slice using *fresh* local positions and a *stale*
// snapshot of remote positions that is re-exchanged every
// ExchangeEvery steps. The staleness/quality trade mirrors the
// mBRIM concurrent-mode epoch trade (Sec 5.4), which is exactly why
// the paper can meaningfully compare the two architectures.

// MultiChipConfig parameterizes a partitioned SB run.
type MultiChipConfig struct {
	Config
	// Chips is the number of partitions. Must be >= 1.
	Chips int
	// ExchangeEvery is the number of steps between snapshot exchanges.
	// Default 1 (exchange after every step, the [49] pipeline).
	ExchangeEvery int
}

// MultiChipResult extends Result with exchange accounting.
type MultiChipResult struct {
	Result
	// Exchanges counts snapshot synchronizations; BytesExchanged the
	// total position traffic (4 bytes per remote position per chip,
	// the fixed-point width of [49]).
	Exchanges      int64
	BytesExchanged float64
}

// SolveMultiChip runs partitioned simulated bifurcation.
func SolveMultiChip(m *ising.Model, cfg MultiChipConfig) *MultiChipResult {
	if cfg.Steps < 1 {
		panic(fmt.Sprintf("sbm: Steps=%d", cfg.Steps))
	}
	if cfg.Chips < 1 {
		panic(fmt.Sprintf("sbm: Chips=%d", cfg.Chips))
	}
	exchangeEvery := cfg.ExchangeEvery
	if exchangeEvery == 0 {
		exchangeEvery = 1
	}
	if exchangeEvery < 1 {
		panic(fmt.Sprintf("sbm: ExchangeEvery=%d", cfg.ExchangeEvery))
	}
	dt := cfg.Dt
	if dt == 0 {
		dt = 0.5
	}
	a0 := cfg.A0
	if a0 == 0 {
		a0 = 1
	}
	c0 := cfg.C0
	if c0 == 0 {
		c0 = defaultC0(m)
	}

	n := m.N()
	if cfg.Chips > n {
		panic(fmt.Sprintf("sbm: Chips=%d for N=%d", cfg.Chips, n))
	}
	parts := graph.BlockPartition(n, cfg.Chips)
	owner := make([]int, n)
	for ci, part := range parts {
		for _, g := range part {
			owner[g] = ci
		}
	}

	r := rng.New(cfg.Seed)
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = 0.1 * (r.Float64()*2 - 1)
		y[i] = 0.1 * (r.Float64()*2 - 1)
	}
	// snapshot is every chip's view of remote positions, refreshed at
	// exchange boundaries.
	snapshot := make([]float64, n)
	copy(snapshot, x)

	spins := make([]int8, n)
	force := make([]float64, n)
	res := &MultiChipResult{}
	start := time.Now()
	for step := 0; step < cfg.Steps; step++ {
		at := a0 * float64(step) / float64(cfg.Steps)
		// Two-phase (Jacobi) update, matching Solve exactly: every
		// force is computed from start-of-step positions, with remote
		// positions taken from the possibly stale snapshot.
		if cfg.Variant == Discrete {
			for i := 0; i < n; i++ {
				row := m.Row(i)
				oi := owner[i]
				acc := m.Mu() * m.Bias(i)
				for j := 0; j < n; j++ {
					v := row[j]
					if v == 0 {
						continue
					}
					pos := snapshot[j]
					if owner[j] == oi {
						pos = x[j]
					}
					if pos >= 0 {
						acc += v
					} else {
						acc -= v
					}
				}
				force[i] = acc
			}
		} else {
			for i := 0; i < n; i++ {
				row := m.Row(i)
				oi := owner[i]
				acc := m.Mu() * m.Bias(i)
				for j := 0; j < n; j++ {
					v := row[j]
					if v == 0 {
						continue
					}
					if owner[j] == oi {
						acc += v * x[j]
					} else {
						acc += v * snapshot[j]
					}
				}
				force[i] = acc
			}
		}
		for i := 0; i < n; i++ {
			y[i] += (-(a0-at)*x[i] + c0*force[i]) * dt
			x[i] += a0 * y[i] * dt
			if x[i] > 1 {
				x[i], y[i] = 1, 0
			} else if x[i] < -1 {
				x[i], y[i] = -1, 0
			}
		}
		if (step+1)%exchangeEvery == 0 {
			copy(snapshot, x)
			res.Exchanges++
			// Each chip broadcasts its positions to the other chips.
			if cfg.Chips > 1 {
				res.BytesExchanged += 4 * float64(n) * float64(cfg.Chips-1)
			}
		}
		if cfg.OnStep != nil {
			cfg.OnStep(step, m.Energy(readout(x, spins)))
		}
	}
	res.Spins = ising.CopySpins(readout(x, spins))
	res.Energy = m.Energy(res.Spins)
	res.Steps = cfg.Steps
	res.Wall = time.Since(start)
	return res
}

// StalenessSweep measures final energy as a function of ExchangeEvery
// — the SBM analogue of Fig 14's epoch sweep, averaged over seeds.
func StalenessSweep(m *ising.Model, base MultiChipConfig, exchanges []int, seeds int) map[int]float64 {
	if seeds < 1 {
		panic(fmt.Sprintf("sbm: seeds=%d", seeds))
	}
	out := make(map[int]float64, len(exchanges))
	for _, ee := range exchanges {
		sum := 0.0
		for s := 0; s < seeds; s++ {
			cfg := base
			cfg.ExchangeEvery = ee
			cfg.Seed = base.Seed + uint64(s)
			sum += SolveMultiChip(m, cfg).Energy
		}
		out[ee] = sum / float64(seeds)
	}
	return out
}
