package sbm

import (
	"math"
	"testing"

	"mbrim/internal/graph"
	"mbrim/internal/ising"
	"mbrim/internal/rng"
)

func TestMultiChipOneChipMatchesMonolithic(t *testing.T) {
	// With a single chip everything is "local": the partitioned solver
	// must reproduce Solve exactly.
	g := graph.Complete(30, rng.New(1))
	m := g.ToIsing()
	for _, variant := range []Variant{Ballistic, Discrete} {
		mono := Solve(m, Config{Variant: variant, Steps: 80, Seed: 2})
		multi := SolveMultiChip(m, MultiChipConfig{
			Config: Config{Variant: variant, Steps: 80, Seed: 2},
			Chips:  1,
		})
		if mono.Energy != multi.Energy ||
			ising.HammingDistance(mono.Spins, multi.Spins) != 0 {
			t.Fatalf("%v: 1-chip multi diverged from monolithic", variant)
		}
	}
}

func TestMultiChipFindsFerromagnetGround(t *testing.T) {
	n := 24
	m := ising.NewModel(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.SetCoupling(i, j, 1)
		}
	}
	res := SolveMultiChip(m, MultiChipConfig{
		Config: Config{Variant: Ballistic, Steps: 400, Seed: 3},
		Chips:  4,
	})
	if want := -float64(n*(n-1)) / 2; res.Energy != want {
		t.Fatalf("energy %v, want %v", res.Energy, want)
	}
}

func TestMultiChipDeterministic(t *testing.T) {
	g := graph.Complete(40, rng.New(4))
	m := g.ToIsing()
	cfg := MultiChipConfig{Config: Config{Variant: Discrete, Steps: 60, Seed: 5}, Chips: 4}
	a := SolveMultiChip(m, cfg)
	b := SolveMultiChip(m, cfg)
	if a.Energy != b.Energy || a.BytesExchanged != b.BytesExchanged {
		t.Fatal("same seed produced different runs")
	}
}

func TestMultiChipExchangeAccounting(t *testing.T) {
	g := graph.Complete(32, rng.New(6))
	m := g.ToIsing()
	res := SolveMultiChip(m, MultiChipConfig{
		Config: Config{Steps: 100, Seed: 7}, Chips: 4, ExchangeEvery: 10,
	})
	if res.Exchanges != 10 {
		t.Fatalf("Exchanges = %d, want 10", res.Exchanges)
	}
	want := 10.0 * 4 * 32 * 3 // exchanges × 4B × n × (chips−1)
	if math.Abs(res.BytesExchanged-want) > 1e-9 {
		t.Fatalf("BytesExchanged = %v, want %v", res.BytesExchanged, want)
	}
	// One chip never exchanges bytes.
	solo := SolveMultiChip(m, MultiChipConfig{Config: Config{Steps: 100, Seed: 7}, Chips: 1})
	if solo.BytesExchanged != 0 {
		t.Fatalf("1-chip exchanged %v bytes", solo.BytesExchanged)
	}
}

func TestMultiChipStalenessDegradesQuality(t *testing.T) {
	// The SBM analogue of Fig 14: rare exchanges mean stale remote
	// views and worse solutions. Compare frequent vs very rare.
	g := graph.Complete(96, rng.New(8))
	m := g.ToIsing()
	sweep := StalenessSweep(m, MultiChipConfig{
		Config: Config{Variant: Ballistic, Steps: 400},
		Chips:  4,
	}, []int{1, 200}, 5)
	if sweep[200] < sweep[1] {
		t.Fatalf("stale exchange (%v) beat fresh exchange (%v) on average",
			sweep[200], sweep[1])
	}
}

func TestMultiChipFreshExchangeNearMonolithic(t *testing.T) {
	// Exchanging every step should track monolithic quality closely.
	g := graph.Complete(64, rng.New(9))
	m := g.ToIsing()
	var mono, multi float64
	for s := uint64(0); s < 5; s++ {
		mono += Solve(m, Config{Variant: Ballistic, Steps: 300, Seed: s}).Energy
		multi += SolveMultiChip(m, MultiChipConfig{
			Config: Config{Variant: Ballistic, Steps: 300, Seed: s},
			Chips:  4, ExchangeEvery: 1,
		}).Energy
	}
	if multi > mono+0.1*math.Abs(mono) {
		t.Fatalf("fresh-exchange multi (%v) far from monolithic (%v)", multi/5, mono/5)
	}
}

func TestMultiChipPanics(t *testing.T) {
	m := ising.NewModel(4)
	for name, f := range map[string]func(){
		"zero steps": func() { SolveMultiChip(m, MultiChipConfig{Chips: 1}) },
		"zero chips": func() { SolveMultiChip(m, MultiChipConfig{Config: Config{Steps: 1}}) },
		"too many":   func() { SolveMultiChip(m, MultiChipConfig{Config: Config{Steps: 1}, Chips: 5}) },
		"neg exch": func() {
			SolveMultiChip(m, MultiChipConfig{Config: Config{Steps: 1}, Chips: 1, ExchangeEvery: -1})
		},
		"zero seeds": func() { StalenessSweep(m, MultiChipConfig{Config: Config{Steps: 1}, Chips: 1}, []int{1}, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}
