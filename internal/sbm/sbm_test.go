package sbm

import (
	"math"
	"testing"

	"mbrim/internal/graph"
	"mbrim/internal/ising"
	"mbrim/internal/rng"
)

func ferromagnet(n int) *ising.Model {
	m := ising.NewModel(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.SetCoupling(i, j, 1)
		}
	}
	return m
}

func TestBallisticFindsFerromagnetGround(t *testing.T) {
	n := 20
	m := ferromagnet(n)
	res := Solve(m, Config{Variant: Ballistic, Steps: 400, Seed: 1})
	want := -float64(n*(n-1)) / 2
	if res.Energy != want {
		t.Fatalf("bSBM energy %v, want %v", res.Energy, want)
	}
}

func TestDiscreteFindsFerromagnetGround(t *testing.T) {
	n := 20
	m := ferromagnet(n)
	res := Solve(m, Config{Variant: Discrete, Steps: 400, Seed: 2})
	want := -float64(n*(n-1)) / 2
	if res.Energy != want {
		t.Fatalf("dSBM energy %v, want %v", res.Energy, want)
	}
}

func TestAntiferromagnetPair(t *testing.T) {
	m := ising.NewModel(2)
	m.SetCoupling(0, 1, -1)
	for _, v := range []Variant{Ballistic, Discrete} {
		res := Solve(m, Config{Variant: v, Steps: 300, Seed: 3})
		if res.Spins[0] == res.Spins[1] {
			t.Fatalf("%v aligned an antiferromagnetic pair", v)
		}
	}
}

func TestBiasRespected(t *testing.T) {
	m := ising.NewModel(2)
	m.SetCoupling(0, 1, 0.01)
	m.SetBias(0, 5)
	m.SetBias(1, -5)
	res := Solve(m, Config{Variant: Ballistic, Steps: 400, Seed: 4, C0: 0.5})
	if res.Spins[0] != 1 || res.Spins[1] != -1 {
		t.Fatalf("bias ignored: %v", res.Spins)
	}
}

func TestDeterministic(t *testing.T) {
	r := rng.New(5)
	g := graph.Complete(30, r)
	m := g.ToIsing()
	a := Solve(m, Config{Variant: Discrete, Steps: 100, Seed: 6})
	b := Solve(m, Config{Variant: Discrete, Steps: 100, Seed: 6})
	if a.Energy != b.Energy || ising.HammingDistance(a.Spins, b.Spins) != 0 {
		t.Fatal("same seed produced different runs")
	}
}

func TestEnergyMatchesSpins(t *testing.T) {
	r := rng.New(7)
	g := graph.Complete(25, r)
	m := g.ToIsing()
	res := Solve(m, Config{Variant: Ballistic, Steps: 150, Seed: 8})
	if d := math.Abs(res.Energy - m.Energy(res.Spins)); d > 1e-9 {
		t.Fatalf("energy off by %v", d)
	}
}

func TestPositionsBounded(t *testing.T) {
	// Walls must keep |x| <= 1; detectable through OnStep never seeing
	// a NaN energy and the run completing.
	r := rng.New(9)
	g := graph.Complete(40, r)
	m := g.ToIsing()
	res := Solve(m, Config{Variant: Ballistic, Steps: 200, Seed: 10,
		OnStep: func(step int, e float64) {
			if math.IsNaN(e) || math.IsInf(e, 0) {
				t.Fatalf("non-finite energy at step %d", step)
			}
		}})
	if math.IsNaN(res.Energy) {
		t.Fatal("non-finite final energy")
	}
}

func TestMoreStepsHelpOnAverage(t *testing.T) {
	r := rng.New(11)
	g := graph.Complete(50, r)
	m := g.ToIsing()
	var short, long float64
	for i := 0; i < 5; i++ {
		s := Solve(m, Config{Variant: Discrete, Steps: 10, Seed: uint64(100 + i)})
		l := Solve(m, Config{Variant: Discrete, Steps: 500, Seed: uint64(100 + i)})
		short += s.Energy
		long += l.Energy
	}
	if long > short {
		t.Fatalf("more SB steps hurt: %v vs %v", long/5, short/5)
	}
}

func TestDiscreteAtLeastMatchesBallisticOnFrustrated(t *testing.T) {
	// The literature result the paper leans on: dSB solution quality
	// is at least bSB's. Check on average over seeds on one graph.
	r := rng.New(12)
	g := graph.Complete(60, r)
	m := g.ToIsing()
	var db, bb float64
	for i := 0; i < 8; i++ {
		d := Solve(m, Config{Variant: Discrete, Steps: 300, Seed: uint64(i)})
		b := Solve(m, Config{Variant: Ballistic, Steps: 300, Seed: uint64(i)})
		db += d.Energy
		bb += b.Energy
	}
	// At this small size dSB's edge is statistical; only flag a
	// clearly broken variant (>5% worse on average).
	if db > bb+0.05*math.Abs(bb) {
		t.Fatalf("dSBM (%v) clearly worse than bSBM (%v)", db/8, bb/8)
	}
}

func TestOnStepCalledEveryStep(t *testing.T) {
	m := ferromagnet(8)
	calls := 0
	Solve(m, Config{Steps: 37, Seed: 1, OnStep: func(int, float64) { calls++ }})
	if calls != 37 {
		t.Fatalf("OnStep called %d times, want 37", calls)
	}
}

func TestSolveBatchBest(t *testing.T) {
	r := rng.New(13)
	g := graph.Complete(30, r)
	m := g.ToIsing()
	br := SolveBatch(m, Config{Variant: Discrete, Steps: 100, Seed: 50}, 6)
	if len(br.Results) != 6 {
		t.Fatalf("%d results", len(br.Results))
	}
	for _, res := range br.Results {
		if res.Energy < br.Best.Energy {
			t.Fatal("Best is not minimal")
		}
	}
}

func TestVariantString(t *testing.T) {
	if Ballistic.String() != "bSBM" || Discrete.String() != "dSBM" {
		t.Fatal("variant names wrong")
	}
	if Variant(9).String() != "Variant(9)" {
		t.Fatal("unknown variant name wrong")
	}
}

func TestPanics(t *testing.T) {
	m := ferromagnet(4)
	for name, f := range map[string]func(){
		"zero steps": func() { Solve(m, Config{Steps: 0}) },
		"neg dt":     func() { Solve(m, Config{Steps: 1, Dt: -0.5}) },
		"zero runs":  func() { SolveBatch(m, Config{Steps: 1}, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestDefaultC0Positive(t *testing.T) {
	r := rng.New(14)
	g := graph.Complete(20, r)
	if c := defaultC0(g.ToIsing()); c <= 0 || math.IsNaN(c) {
		t.Fatalf("defaultC0 = %v", c)
	}
	// Degenerate single-spin model must not divide by zero.
	if c := defaultC0(ising.NewModel(1)); c != 1 {
		t.Fatalf("defaultC0 on edgeless model = %v, want 1", c)
	}
}

func BenchmarkDiscreteK256Step(b *testing.B) {
	r := rng.New(1)
	g := graph.Complete(256, r)
	m := g.ToIsing()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Solve(m, Config{Variant: Discrete, Steps: 1, Seed: uint64(i)})
	}
}
