package lattice

import (
	"fmt"
	"math"
	"testing"
)

// The A side of the BENCH_kernel.json comparison: faithful copies of
// the per-engine hot loops as they existed before the lattice layer,
// so old-vs-new runs interleave on identical data.

// oldBrimDeriv is the pre-lattice brim derivative loop: a serial dense
// jhat scan with the bias and bistable-feedback tail.
func oldBrimDeriv(n int, jhat, bhat, ext, v, out []float64, kappa, gamma, invTau float64) {
	for i := 0; i < n; i++ {
		row := jhat[i*n : (i+1)*n]
		acc := 0.0
		for j := 0; j < n; j++ {
			acc += row[j] * v[j]
		}
		acc += bhat[i] + ext[i]
		acc += kappa * (math.Tanh(gamma*v[i]) - v[i])
		out[i] = acc * invTau
	}
}

// oldSBMDiscreteForce is the pre-lattice dSBM force loop: dense scan
// with zero skip over the sign readout.
func oldSBMDiscreteForce(n int, j []float64, mu float64, h []float64, spins []int8, force []float64) {
	for i := 0; i < n; i++ {
		row := j[i*n : (i+1)*n]
		acc := mu * h[i]
		for k := 0; k < n; k++ {
			if row[k] != 0 {
				acc += row[k] * float64(spins[k])
			}
		}
		force[i] = acc
	}
}

type benchSetup struct {
	n                  int
	data               []float64
	bhat, ext, v, out  []float64
	spins              []int8
	kappa, gamma, invT float64
}

func newBenchSetup(n int, density float64) *benchSetup {
	return &benchSetup{
		n:     n,
		data:  randSym(n, density, 1),
		bhat:  randVec(n, 2),
		ext:   randVec(n, 3),
		v:     randVec(n, 4),
		out:   make([]float64, n),
		spins: randSpins(n, 5),
		kappa: 0.7, gamma: 1.5, invT: 1,
	}
}

// kernelDeriv is the post-refactor brim derivative: the shared kernel
// for the matvec, the same pointwise tail.
func (s *benchSetup) kernelDeriv(c Coupling, workers int) {
	ForRange(s.n, workers, func(lo, hi int) {
		c.MatVecRange(s.v, nil, s.out, lo, hi)
		for i := lo; i < hi; i++ {
			acc := s.out[i]
			acc += s.bhat[i] + s.ext[i]
			acc += s.kappa * (math.Tanh(s.gamma*s.v[i]) - s.v[i])
			s.out[i] = acc * s.invT
		}
	})
}

// BenchmarkBRIMDeriv compares one RK4 derivative evaluation (the BRIM
// step's dominant cost — an RK4 step is four of these) between the old
// serial dense loop and the shared kernel at several worker counts.
func BenchmarkBRIMDeriv(b *testing.B) {
	for _, n := range []int{1024, 4096} {
		s := newBenchSetup(n, 1)
		b.Run(fmt.Sprintf("old/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				oldBrimDeriv(s.n, s.data, s.bhat, s.ext, s.v, s.out, s.kappa, s.gamma, s.invT)
			}
		})
		dense := FromDense(n, s.data, Dense, 0)
		for _, w := range []int{1, 4} {
			b.Run(fmt.Sprintf("kernel/n=%d/workers=%d", n, w), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					s.kernelDeriv(dense, w)
				}
			})
		}
	}
}

// BenchmarkSparseFields compares the local-field accumulation on a
// 5%-density model: the old dense zero-skipping scan versus the CSR
// backend, which touches only stored entries.
func BenchmarkSparseFields(b *testing.B) {
	for _, n := range []int{1024, 4096} {
		s := newBenchSetup(n, 0.05)
		b.Run(fmt.Sprintf("old-dense/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				oldSBMDiscreteForce(s.n, s.data, 1, s.bhat, s.spins, s.out)
			}
		})
		csr := FromDense(n, s.data, CSR, 0)
		b.Run(fmt.Sprintf("csr/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Fields(csr, s.spins, s.bhat, s.out, 1)
			}
		})
	}
}

// BenchmarkBlockedMatVec compares the plain dense matvec against the
// blocked alias at a size whose input vector spills L1. Since the
// cache-blocked walk was retired (it measured ~11% slower than dense;
// see blocked.go) both columns should read the same — the benchmark
// stays to keep that regression history visible in CI.
func BenchmarkBlockedMatVec(b *testing.B) {
	for _, n := range []int{1024, 4096} {
		s := newBenchSetup(n, 1)
		for _, kind := range []Kind{Dense, Blocked} {
			c := FromDense(n, s.data, kind, 0)
			b.Run(fmt.Sprintf("%s/n=%d", kind, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					MatVec(c, s.v, nil, s.out, 1)
				}
			})
		}
	}
}
