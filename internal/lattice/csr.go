package lattice

import "fmt"

// csr is the compressed-sparse-row layout: row i's nonzeros live at
// [rowStart[i], rowStart[i+1]) of cols/vals with ascending columns.
type csr struct {
	n        int
	rowStart []int
	cols     []int
	vals     []float64
}

// FromCSR builds a backend over an existing compressed-sparse-row
// triple with ascending column order per row (ising.SparseModel's
// invariant — violations panic). div, when nonzero and not 1, divides
// every value; otherwise the slices are aliased and must not be
// mutated by the caller.
func FromCSR(n int, rowStart, cols []int, vals []float64, div float64) Coupling {
	if n <= 0 || len(rowStart) != n+1 || len(cols) != len(vals) || rowStart[n] != len(cols) {
		panic(fmt.Sprintf("lattice: FromCSR inconsistent layout (n=%d, rows=%d, nnz=%d/%d)",
			n, len(rowStart), len(cols), len(vals)))
	}
	for i := 0; i < n; i++ {
		if rowStart[i] > rowStart[i+1] {
			panic(fmt.Sprintf("lattice: FromCSR row %d has negative extent", i))
		}
		for k := rowStart[i] + 1; k < rowStart[i+1]; k++ {
			if cols[k] <= cols[k-1] {
				panic(fmt.Sprintf("lattice: FromCSR row %d columns not ascending", i))
			}
		}
	}
	c := &csr{n: n, rowStart: rowStart, cols: cols, vals: vals}
	if div != 0 && div != 1 {
		scaled := make([]float64, len(vals))
		for i, v := range vals {
			scaled[i] = v / div
		}
		c.vals = scaled
	}
	return c
}

// csrFromDense compresses a dense row-major matrix, dividing each kept
// entry by div (0 means 1). Rows are scanned in ascending column
// order, so the stored order preserves the dense accumulation order.
func csrFromDense(n int, data []float64, div float64) *csr {
	if div == 0 {
		div = 1
	}
	nnz := CountNNZ(data)
	c := &csr{
		n:        n,
		rowStart: make([]int, n+1),
		cols:     make([]int, 0, nnz),
		vals:     make([]float64, 0, nnz),
	}
	for i := 0; i < n; i++ {
		c.rowStart[i] = len(c.cols)
		for j, v := range data[i*n : (i+1)*n] {
			if v != 0 {
				c.cols = append(c.cols, j)
				c.vals = append(c.vals, v/div)
			}
		}
	}
	c.rowStart[n] = len(c.cols)
	return c
}

func (c *csr) N() int   { return c.n }
func (c *csr) NNZ() int { return len(c.cols) }

func (c *csr) Kind() Kind { return CSR }

func (c *csr) RowNNZ(i int) int { return c.rowStart[i+1] - c.rowStart[i] }

func (c *csr) Scan(i int, fn func(j int, v float64)) {
	for k := c.rowStart[i]; k < c.rowStart[i+1]; k++ {
		fn(c.cols[k], c.vals[k])
	}
}

func (c *csr) MatVecRange(x, base, out []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		acc := 0.0
		if base != nil {
			acc = base[i]
		}
		for k := c.rowStart[i]; k < c.rowStart[i+1]; k++ {
			acc += c.vals[k] * x[c.cols[k]]
		}
		out[i] = acc
	}
}

func (c *csr) FieldsRange(spins []int8, base, out []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		acc := 0.0
		if base != nil {
			acc = base[i]
		}
		for k := c.rowStart[i]; k < c.rowStart[i+1]; k++ {
			acc += c.vals[k] * float64(spins[c.cols[k]])
		}
		out[i] = acc
	}
}

func (c *csr) FlipFanout(fields []float64, k int, delta float64) {
	for idx := c.rowStart[k]; idx < c.rowStart[k+1]; idx++ {
		fields[c.cols[idx]] += c.vals[idx] * delta
	}
}

func (c *csr) FlipDelta(spins []int8, fields []float64, k int, muH float64) float64 {
	return flipDelta(spins, fields, k, muH)
}
