package lattice

import (
	"math"
	"testing"

	"mbrim/internal/rng"
)

// randSym builds an n×n symmetric row-major matrix with zero diagonal
// where each upper pair is nonzero with probability density, values
// ±1 like the K-graph family (density 1 gives a complete graph).
func randSym(n int, density float64, seed uint64) []float64 {
	r := rng.New(seed)
	data := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < density {
				v := float64(r.Spin())
				data[i*n+j] = v
				data[j*n+i] = v
			}
		}
	}
	return data
}

func randSpins(n int, seed uint64) []int8 {
	r := rng.New(seed)
	s := make([]int8, n)
	for i := range s {
		s[i] = r.Spin()
	}
	return s
}

func allBackends(t *testing.T, n int, data []float64, div float64) map[Kind]Coupling {
	t.Helper()
	return map[Kind]Coupling{
		Dense:   FromDense(n, data, Dense, div),
		CSR:     FromDense(n, data, CSR, div),
		Blocked: FromDense(n, data, Blocked, div),
	}
}

func TestParseKind(t *testing.T) {
	cases := map[string]Kind{
		"": Auto, "auto": Auto, "AUTO": Auto, " dense ": Dense,
		"csr": CSR, "Blocked": Blocked,
	}
	for in, want := range cases {
		got, err := ParseKind(in)
		if err != nil || got != want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind(bogus) accepted")
	}
	for _, k := range []Kind{Auto, Dense, CSR, Blocked} {
		rt, err := ParseKind(k.String())
		if err != nil || rt != k {
			t.Errorf("round trip %v -> %q -> %v, %v", k, k.String(), rt, err)
		}
	}
}

func TestResolveByDensity(t *testing.T) {
	// 5% of 100×100 = 500 stored entries is the CSR cutoff.
	if got := Resolve(Auto, 100, 500); got != CSR {
		t.Errorf("Auto at cutoff density -> %v, want csr", got)
	}
	if got := Resolve(Auto, 100, 501); got != Dense {
		t.Errorf("Auto above cutoff -> %v, want dense", got)
	}
	for _, k := range []Kind{Dense, CSR, Blocked} {
		if got := Resolve(k, 100, 0); got != k {
			t.Errorf("Resolve(%v) = %v, want pass-through", k, got)
		}
	}
}

func TestFromDenseAutoPicksByDensity(t *testing.T) {
	n := 64
	if k := FromDense(n, randSym(n, 1, 1), Auto, 0).Kind(); k != Dense {
		t.Errorf("complete graph resolved to %v, want dense", k)
	}
	if k := FromDense(n, randSym(n, 0.02, 1), Auto, 0).Kind(); k != CSR {
		t.Errorf("2%%-density graph resolved to %v, want csr", k)
	}
}

func TestBackendStructure(t *testing.T) {
	n := 37
	data := randSym(n, 0.3, 7)
	nnz := CountNNZ(data)
	for kind, c := range allBackends(t, n, data, 0) {
		if c.Kind() != kind {
			t.Errorf("%v: Kind() = %v", kind, c.Kind())
		}
		if c.N() != n || c.NNZ() != nnz {
			t.Errorf("%v: N=%d NNZ=%d, want %d/%d", kind, c.N(), c.NNZ(), n, nnz)
		}
		for i := 0; i < n; i++ {
			prev := -1
			cnt := 0
			c.Scan(i, func(j int, v float64) {
				if j <= prev {
					t.Fatalf("%v: row %d columns not ascending (%d after %d)", kind, i, j, prev)
				}
				prev = j
				cnt++
				if v != data[i*n+j] {
					t.Fatalf("%v: entry (%d,%d) = %v, want %v", kind, i, j, v, data[i*n+j])
				}
			})
			if cnt != c.RowNNZ(i) {
				t.Errorf("%v: row %d scanned %d entries, RowNNZ says %d", kind, i, cnt, c.RowNNZ(i))
			}
		}
	}
}

func TestDivScalesLikeTheEngines(t *testing.T) {
	n := 16
	data := randSym(n, 1, 3)
	const scale = 3.7
	for kind, c := range allBackends(t, n, data, scale) {
		c.Scan(0, func(j int, v float64) {
			if want := data[j] / scale; v != want {
				t.Fatalf("%v: scaled entry (0,%d) = %v, want %v", kind, j, v, want)
			}
		})
	}
}

func TestFlipDeltaAndFanout(t *testing.T) {
	n := 24
	data := randSym(n, 0.5, 11)
	spins := randSpins(n, 12)
	for kind, c := range allBackends(t, n, data, 0) {
		fields := make([]float64, n)
		Fields(c, spins, nil, fields, 1)
		// ΔE from the rule must match a brute-force energy difference.
		k := 5
		muH := 0.25
		want := 2 * float64(spins[k]) * (fields[k] + muH)
		if got := c.FlipDelta(spins, fields, k, muH); got != want {
			t.Errorf("%v: FlipDelta = %v, want %v", kind, got, want)
		}
		// Fanout must land the fields exactly where a recompute does.
		old := spins[k]
		spins[k] = -spins[k]
		c.FlipFanout(fields, k, -2*float64(old))
		fresh := make([]float64, n)
		Fields(c, spins, nil, fresh, 1)
		for i := range fields {
			if i == k {
				continue // L_k does not depend on σ_k; fanout leaves it stale by design
			}
			if math.Abs(fields[i]-fresh[i]) > 1e-12 {
				t.Errorf("%v: field %d after fanout %v, recompute %v", kind, i, fields[i], fresh[i])
			}
		}
		spins[k] = old
	}
}

func TestFromCSRRejectsBadLayout(t *testing.T) {
	for name, fn := range map[string]func(){
		"short rowStart": func() { FromCSR(2, []int{0, 0}, nil, nil, 0) },
		"nnz mismatch":   func() { FromCSR(1, []int{0, 1}, []int{0}, nil, 0) },
		"descending":     func() { FromCSR(1, []int{0, 2}, []int{1, 0}, []float64{1, 2}, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FromCSR %s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFromDenseRejectsBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FromDense with wrong size did not panic")
		}
	}()
	FromDense(3, make([]float64, 8), Dense, 0)
}
