// Package lattice is the shared numeric substrate under every solver:
// pluggable read-only views of a symmetric Ising coupling matrix (the
// "lattice" the machines anneal over) behind one Coupling interface,
// plus a deterministic parallel kernel for the row-wise hot loops.
//
// # Backends
//
// Two layouts implement Coupling (plus one compatibility alias):
//
//   - Dense: the row-major n×n array the repository has always used —
//     right for the paper's fully connected K-graphs.
//   - CSR: compressed sparse rows with ascending column order — right
//     for Gset-scale instances at a few percent density, where the
//     dense loops spend almost all their time scanning zeros.
//   - Blocked: deprecated alias for Dense, kept for request
//     compatibility. The cache-blocked walk it named was retired
//     after benchmarking showed it consistently slower than the plain
//     dense pass (see blocked.go for the post-mortem).
//
// Auto resolves to CSR when the measured density is at most
// AutoCSRDensity, else Dense.
//
// # Determinism contract
//
// Every backend accumulates each output row in ascending column order,
// and the parallel kernel splits work at fixed KernelChunk-row
// boundaries that depend only on n — never on the worker count — with
// scalar reductions combined in ascending chunk order (SumOrdered).
// Two consequences, relied on by the checkpoint-resume goldens and the
// backend-equivalence suite:
//
//   - results are bit-identical across worker counts, and
//   - all three backends produce bit-identical results: skipping a
//     zero entry cannot change an accumulator's bits, because an
//     accumulator that starts at +0 can never become −0 (x + (−x)
//     rounds to +0 under round-to-nearest), and adding ±0 to such an
//     accumulator is the identity.
package lattice

import (
	"fmt"
	"strings"
)

// Kind selects a coupling-matrix backend.
type Kind int

// The backend kinds. Auto resolves by measured density at
// construction; the other three force a layout.
const (
	Auto Kind = iota
	Dense
	CSR
	Blocked
)

// String names the kind as ParseKind accepts it.
func (k Kind) String() string {
	switch k {
	case Auto:
		return "auto"
	case Dense:
		return "dense"
	case CSR:
		return "csr"
	case Blocked:
		return "blocked"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind validates a backend name. The empty string means Auto.
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "auto":
		return Auto, nil
	case "dense":
		return Dense, nil
	case "csr":
		return CSR, nil
	case "blocked":
		return Blocked, nil
	}
	return Auto, fmt.Errorf("lattice: unknown backend %q (have auto, dense, csr, blocked)", s)
}

// AutoCSRDensity is the density at or below which Auto picks CSR: at
// 5% nonzeros the CSR row walk touches 20× fewer entries than a dense
// scan, comfortably past its extra indexing cost.
const AutoCSRDensity = 0.05

// CountNNZ returns the number of nonzero entries of a dense row-major
// matrix.
func CountNNZ(data []float64) int {
	c := 0
	for _, v := range data {
		if v != 0 {
			c++
		}
	}
	return c
}

// Resolve maps Auto to a concrete backend by measured density
// (nnz / n²); concrete kinds pass through unchanged.
func Resolve(kind Kind, n, nnz int) Kind {
	if kind != Auto {
		return kind
	}
	if n > 0 && float64(nnz) <= AutoCSRDensity*float64(n)*float64(n) {
		return CSR
	}
	return Dense
}

// Coupling is a read-only view of a symmetric coupling matrix with
// zero diagonal. All row-wise methods accumulate in ascending column
// order (the package determinism contract). Implementations are safe
// for concurrent readers; FlipFanout mutates caller state and needs
// external synchronization like any other write.
type Coupling interface {
	// N is the spin count.
	N() int
	// NNZ is the number of stored nonzero entries (both triangles).
	NNZ() int
	// Kind reports the concrete backend (never Auto).
	Kind() Kind
	// RowNNZ is the number of nonzero couplings of spin i.
	RowNNZ(i int) int
	// Scan calls fn for every nonzero (j, J_ij) of row i in ascending
	// column order.
	Scan(i int, fn func(j int, v float64))
	// MatVecRange fills out[i] = base[i] + Σ_j J_ij·x[j] for rows
	// lo ≤ i < hi (nil base means zero). Only out[lo:hi] is written.
	MatVecRange(x, base, out []float64, lo, hi int)
	// FieldsRange is MatVecRange over a spin vector, skipping zero
	// couplings: out[i] = base[i] + Σ_j J_ij·σ_j.
	FieldsRange(spins []int8, base, out []float64, lo, hi int)
	// FlipFanout applies fields[j] += J_kj·d over row k — the O(row)
	// cached-field update after spin k changes by d = σ_new − σ_old.
	FlipFanout(fields []float64, k int, d float64)
	// FlipDelta returns the energy change of flipping spin k given its
	// cached local field and bias term μ·h_k: ΔE = 2σ_k(L_k + μh_k).
	FlipDelta(spins []int8, fields []float64, k int, muH float64) float64
}

// flipDelta is the shared ΔE rule; every backend delegates here so the
// formula association is identical across layouts.
func flipDelta(spins []int8, fields []float64, k int, muH float64) float64 {
	return 2 * float64(spins[k]) * (fields[k] + muH)
}
