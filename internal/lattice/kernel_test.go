package lattice

import (
	"math"
	"sync/atomic"
	"testing"

	"mbrim/internal/rng"
)

func randVec(n int, seed uint64) []float64 {
	r := rng.New(seed)
	x := make([]float64, n)
	for i := range x {
		x[i] = r.Float64()*2 - 1
	}
	return x
}

func TestForRangeCoversEveryRowOnce(t *testing.T) {
	for _, n := range []int{1, KernelChunk - 1, KernelChunk, KernelChunk + 1, 3*KernelChunk + 17} {
		for _, w := range []int{1, 2, 3, 8, 64} {
			hits := make([]int32, n)
			ForRange(n, w, func(lo, hi int) {
				if lo < 0 || hi > n || lo >= hi {
					t.Errorf("n=%d w=%d: bad range [%d,%d)", n, w, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d w=%d: row %d visited %d times", n, w, i, h)
				}
			}
		}
	}
}

// TestMatVecBitIdenticalAcrossWorkersAndBackends is the heart of the
// determinism contract: for the same matrix, every backend × every
// worker count must produce the exact same bits, equal to the serial
// dense scan.
func TestMatVecBitIdenticalAcrossWorkersAndBackends(t *testing.T) {
	for _, tc := range []struct {
		name    string
		n       int
		density float64
	}{
		{"dense-small", 63, 1},
		{"dense-chunky", 2*KernelChunk + 5, 1},
		{"sparse", 2*KernelChunk + 5, 0.03},
	} {
		t.Run(tc.name, func(t *testing.T) {
			data := randSym(tc.n, tc.density, 21)
			x := randVec(tc.n, 22)
			base := randVec(tc.n, 23)
			spins := randSpins(tc.n, 24)

			// Reference: plain serial dense scan, base-initialized.
			ref := make([]float64, tc.n)
			refF := make([]float64, tc.n)
			for i := 0; i < tc.n; i++ {
				acc, accF := base[i], base[i]
				for j := 0; j < tc.n; j++ {
					v := data[i*tc.n+j]
					acc += v * x[j]
					if v != 0 {
						accF += v * float64(spins[j])
					}
				}
				ref[i], refF[i] = acc, accF
			}

			for kind, c := range allBackends(t, tc.n, data, 0) {
				for _, w := range []int{1, 2, 3, 8} {
					out := make([]float64, tc.n)
					MatVec(c, x, base, out, w)
					for i := range out {
						if out[i] != ref[i] {
							t.Fatalf("%v w=%d: MatVec[%d] = %x, ref %x",
								kind, w, i, math.Float64bits(out[i]), math.Float64bits(ref[i]))
						}
					}
					Fields(c, spins, base, out, w)
					for i := range out {
						if out[i] != refF[i] {
							t.Fatalf("%v w=%d: Fields[%d] = %x, ref %x",
								kind, w, i, math.Float64bits(out[i]), math.Float64bits(refF[i]))
						}
					}
				}
			}
		})
	}
}

func TestMatVecNilBaseMeansZero(t *testing.T) {
	n := 40
	data := randSym(n, 1, 31)
	x := randVec(n, 32)
	c := FromDense(n, data, Dense, 0)
	zero := make([]float64, n)
	a := make([]float64, n)
	b := make([]float64, n)
	MatVec(c, x, nil, a, 1)
	MatVec(c, x, zero, b, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nil base differs from zero base at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSumOrderedWorkerIndependence(t *testing.T) {
	n := 5*KernelChunk + 99
	x := randVec(n, 41)
	sum := func(lo, hi int) float64 {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += x[i]
		}
		return s
	}
	want := SumOrdered(n, 1, sum)
	for _, w := range []int{2, 3, 8, 64} {
		if got := SumOrdered(n, w, sum); got != want {
			t.Fatalf("w=%d: SumOrdered = %x, serial %x", w, math.Float64bits(got), math.Float64bits(want))
		}
	}
}

func TestEnergyQuadraticAcrossBackends(t *testing.T) {
	n := KernelChunk + 33
	data := randSym(n, 0.4, 51)
	spins := randSpins(n, 52)

	// Brute-force pair sum for value-level agreement.
	brute := 0.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			brute -= data[i*n+j] * float64(spins[i]) * float64(spins[j])
		}
	}

	var ref float64
	first := true
	for kind, c := range allBackends(t, n, data, 0) {
		for _, w := range []int{1, 4} {
			got := EnergyQuadratic(c, spins, w)
			if first {
				ref, first = got, false
			}
			if got != ref {
				t.Errorf("%v w=%d: EnergyQuadratic = %x, ref %x", kind, w,
					math.Float64bits(got), math.Float64bits(ref))
			}
			if math.Abs(got-brute) > 1e-9*math.Max(1, math.Abs(brute)) {
				t.Errorf("%v w=%d: EnergyQuadratic = %v, brute force %v", kind, w, got, brute)
			}
		}
	}
}
