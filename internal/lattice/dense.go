package lattice

import "fmt"

// dense is the row-major n×n layout.
type dense struct {
	n    int
	data []float64 // row-major, symmetric, zero diagonal
	nnz  int
}

// FromDense builds a backend over a row-major n×n symmetric matrix.
// div, when nonzero and not 1, divides every entry — the resistor
// normalization the BRIM machines apply (Ĵ = J/scale); division, not
// multiplication by a reciprocal, so the stored values match the
// historical per-engine loops bit for bit. With div 0 or 1 the dense
// layouts alias data instead of copying — callers must not mutate it.
// Auto resolves by measured density.
func FromDense(n int, data []float64, kind Kind, div float64) Coupling {
	if n <= 0 || len(data) != n*n {
		panic(fmt.Sprintf("lattice: FromDense with %d entries for n=%d", len(data), n))
	}
	nnz := CountNNZ(data)
	switch Resolve(kind, n, nnz) {
	case CSR:
		return csrFromDense(n, data, div)
	case Blocked:
		return &blocked{dense{n: n, data: scaleDense(data, div), nnz: nnz}}
	default:
		return &dense{n: n, data: scaleDense(data, div), nnz: nnz}
	}
}

// scaleDense returns data/div, aliasing data when div is 0 or 1.
func scaleDense(data []float64, div float64) []float64 {
	if div == 0 || div == 1 {
		return data
	}
	scaled := make([]float64, len(data))
	for i, v := range data {
		scaled[i] = v / div
	}
	return scaled
}

func (d *dense) N() int   { return d.n }
func (d *dense) NNZ() int { return d.nnz }

func (d *dense) Kind() Kind { return Dense }

func (d *dense) row(i int) []float64 { return d.data[i*d.n : (i+1)*d.n] }

func (d *dense) RowNNZ(i int) int {
	c := 0
	for _, v := range d.row(i) {
		if v != 0 {
			c++
		}
	}
	return c
}

func (d *dense) Scan(i int, fn func(j int, v float64)) {
	for j, v := range d.row(i) {
		if v != 0 {
			fn(j, v)
		}
	}
}

func (d *dense) MatVecRange(x, base, out []float64, lo, hi int) {
	n := d.n
	x = x[:n]
	for i := lo; i < hi; i++ {
		row := d.data[i*n : (i+1)*n]
		acc := 0.0
		if base != nil {
			acc = base[i]
		}
		for j := 0; j < n; j++ {
			acc += row[j] * x[j]
		}
		out[i] = acc
	}
}

func (d *dense) FieldsRange(spins []int8, base, out []float64, lo, hi int) {
	n := d.n
	spins = spins[:n]
	for i := lo; i < hi; i++ {
		row := d.data[i*n : (i+1)*n]
		acc := 0.0
		if base != nil {
			acc = base[i]
		}
		for j := 0; j < n; j++ {
			if v := row[j]; v != 0 {
				acc += v * float64(spins[j])
			}
		}
		out[i] = acc
	}
}

// FlipFanout walks the whole row, zeros included, exactly as the dense
// model's ApplyFlip always has: adding J_kj·d = ±0 to a field that is
// never −0 is the identity, so the result matches the zero-skipping
// backends bit for bit while keeping the dense O(N) cost model.
func (d *dense) FlipFanout(fields []float64, k int, delta float64) {
	for j, v := range d.row(k) {
		fields[j] += v * delta
	}
}

func (d *dense) FlipDelta(spins []int8, fields []float64, k int, muH float64) float64 {
	return flipDelta(spins, fields, k, muH)
}
