package lattice

import (
	"sync"
	"sync/atomic"
)

// KernelChunk is the fixed work-unit size of the parallel kernel, in
// rows. Chunk boundaries depend only on n — never on the worker count
// — so every row is processed with the same slice bounds regardless of
// parallelism, and per-chunk reduction partials always combine in the
// same order. 256 rows of a 4096-spin dense matrix is 8 MiB of
// streaming reads: large enough to amortize the handoff, small enough
// that tail chunks balance.
const KernelChunk = 256

// ForRange runs fn(lo, hi) over [0, n) split at fixed KernelChunk
// boundaries, fanning chunks over min(workers, chunks) goroutines
// pulling from an atomic counter. fn must write only state owned by
// rows [lo, hi). workers <= 1 runs inline as a single fn(0, n) call —
// bit-identical for row-wise fn, because each row's work is
// independent of the chunk it arrives in. Reductions must NOT use
// ForRange directly; use SumOrdered, which keeps the per-chunk
// structure on the serial path too.
func ForRange(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	chunks := (n + KernelChunk - 1) / KernelChunk
	if workers > chunks {
		workers = chunks
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= chunks {
					return
				}
				lo := c * KernelChunk
				hi := lo + KernelChunk
				if hi > n {
					hi = n
				}
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// MatVec fills out[i] = base[i] + Σ_j J_ij·x[j] over all rows, fanned
// over workers. Bit-identical across worker counts and backends.
func MatVec(c Coupling, x, base, out []float64, workers int) {
	ForRange(c.N(), workers, func(lo, hi int) { c.MatVecRange(x, base, out, lo, hi) })
}

// Fields fills out[i] = base[i] + Σ_j J_ij·σ_j over all rows, fanned
// over workers. Bit-identical across worker counts and backends.
func Fields(c Coupling, spins []int8, base, out []float64, workers int) {
	ForRange(c.N(), workers, func(lo, hi int) { c.FieldsRange(spins, base, out, lo, hi) })
}

// SumOrdered reduces fn over [0, n) in fixed KernelChunk pieces,
// combining the per-chunk partials in ascending chunk order — the
// ordered reduction of the determinism contract. The serial path
// evaluates the same chunks in the same order, so the result is
// bit-identical for every worker count.
func SumOrdered(n, workers int, fn func(lo, hi int) float64) float64 {
	if n <= 0 {
		return 0
	}
	chunks := (n + KernelChunk - 1) / KernelChunk
	partials := make([]float64, chunks)
	eval := func(c int) {
		lo := c * KernelChunk
		hi := lo + KernelChunk
		if hi > n {
			hi = n
		}
		partials[c] = fn(lo, hi)
	}
	if workers > chunks {
		workers = chunks
	}
	if workers <= 1 {
		for c := 0; c < chunks; c++ {
			eval(c)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					c := int(next.Add(1)) - 1
					if c >= chunks {
						return
					}
					eval(c)
				}
			}()
		}
		wg.Wait()
	}
	total := 0.0
	for _, p := range partials {
		total += p
	}
	return total
}

// EnergyQuadratic returns the pair-counted quadratic energy
// −Σ_{i<j} J_ij σ_i σ_j via SumOrdered: deterministic across worker
// counts and bit-identical across backends. (It may differ from a
// fully serial row accumulation in the final few ulps — the chunk
// association is fixed but not flat — which is why the equivalence
// suite compares backends through this one function.)
func EnergyQuadratic(c Coupling, spins []int8, workers int) float64 {
	return SumOrdered(c.N(), workers, func(lo, hi int) float64 {
		e := 0.0
		for i := lo; i < hi; i++ {
			acc := 0.0
			c.Scan(i, func(j int, v float64) {
				if j > i {
					acc += v * float64(spins[j])
				}
			})
			e -= float64(spins[i]) * acc
		}
		return e
	})
}
