package lattice

// blockCols is the column-block width of the cache-blocked dense
// backend: 512 float64 columns is 4 KiB of the input vector per block,
// small enough to stay L1-resident while a chunk of rows streams over
// it.
const blockCols = 512

// blocked is plain dense storage walked in fixed column blocks. Each
// output row's accumulator is parked in out[i] between blocks and
// resumed, so the per-row addition sequence is exactly one ascending
// left-to-right pass — bit-identical to the dense backend.
type blocked struct {
	dense
}

func (b *blocked) Kind() Kind { return Blocked }

func (b *blocked) MatVecRange(x, base, out []float64, lo, hi int) {
	n := b.n
	x = x[:n]
	for i := lo; i < hi; i++ {
		if base != nil {
			out[i] = base[i]
		} else {
			out[i] = 0
		}
	}
	for jb := 0; jb < n; jb += blockCols {
		jhi := jb + blockCols
		if jhi > n {
			jhi = n
		}
		xb := x[jb:jhi]
		for i := lo; i < hi; i++ {
			row := b.data[i*n+jb : i*n+jhi]
			acc := out[i]
			for j, xv := range xb {
				acc += row[j] * xv
			}
			out[i] = acc
		}
	}
}

func (b *blocked) FieldsRange(spins []int8, base, out []float64, lo, hi int) {
	n := b.n
	spins = spins[:n]
	for i := lo; i < hi; i++ {
		if base != nil {
			out[i] = base[i]
		} else {
			out[i] = 0
		}
	}
	for jb := 0; jb < n; jb += blockCols {
		jhi := jb + blockCols
		if jhi > n {
			jhi = n
		}
		sb := spins[jb:jhi]
		for i := lo; i < hi; i++ {
			row := b.data[i*n+jb : i*n+jhi]
			acc := out[i]
			for j, v := range row {
				if v != 0 {
					acc += v * float64(sb[j])
				}
			}
			out[i] = acc
		}
	}
}
