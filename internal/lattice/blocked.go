package lattice

// blocked is a deprecated alias for the dense backend, kept so
// existing requests naming "blocked" keep working.
//
// The original cache-blocked walk (fixed 512-column blocks with
// accumulators parked in out[i] between blocks) was retired after
// benchmarking showed it ~11% SLOWER than the plain dense row walk at
// every measured size: the matvec is already streaming — each row of J
// is read once per call, so there is no row-block reuse for column
// blocking to exploit, and the extra pass structure only added loop
// overhead and a second write of every accumulator. BenchmarkBlockedMatVec
// (bench_test.go) measures the alias against dense and documents the
// history; CI runs it to keep the numbers visible.
//
// The alias embeds dense unchanged, so results remain what they always
// were: bit-identical across backends (one ascending left-to-right
// accumulation pass per row). Only Kind() differs, preserving the
// request→backend reporting contract.
type blocked struct {
	dense
}

func (b *blocked) Kind() Kind { return Blocked }
