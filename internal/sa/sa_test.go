package sa

import (
	"math"
	"testing"

	"mbrim/internal/graph"
	"mbrim/internal/ising"
	"mbrim/internal/metrics"
	"mbrim/internal/rng"
	"mbrim/internal/sched"
)

// ferromagnet returns a model whose ground states are the two uniform
// assignments, with ground energy -(n choose 2).
func ferromagnet(n int) *ising.Model {
	m := ising.NewModel(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.SetCoupling(i, j, 1)
		}
	}
	return m
}

func TestSolveFindsFerromagnetGround(t *testing.T) {
	n := 24
	m := ferromagnet(n)
	res := Solve(m, Config{Sweeps: 200, Seed: 1})
	want := -float64(n*(n-1)) / 2
	if res.Energy != want {
		t.Fatalf("energy %v, want ground %v", res.Energy, want)
	}
	mag := ising.Magnetization(res.Spins)
	if mag != 1 && mag != -1 {
		t.Fatalf("ground state not uniform: magnetization %v", mag)
	}
}

func TestSolveEnergyMatchesSpins(t *testing.T) {
	r := rng.New(2)
	g := graph.Complete(40, r)
	m := g.ToIsing()
	res := Solve(m, Config{Sweeps: 50, Seed: 3})
	if d := math.Abs(res.Energy - m.Energy(res.Spins)); d > 1e-6 {
		t.Fatalf("reported energy off by %v from spins", d)
	}
}

func TestSolveDeterministic(t *testing.T) {
	r := rng.New(4)
	g := graph.Complete(30, r)
	m := g.ToIsing()
	a := Solve(m, Config{Sweeps: 40, Seed: 9})
	b := Solve(m, Config{Sweeps: 40, Seed: 9})
	if a.Energy != b.Energy || ising.HammingDistance(a.Spins, b.Spins) != 0 {
		t.Fatal("same seed produced different runs")
	}
	if a.Flips != b.Flips || a.Attempts != b.Attempts {
		t.Fatal("same seed produced different counters")
	}
}

func TestSolveRespectsInitial(t *testing.T) {
	m := ferromagnet(10)
	init := make([]int8, 10)
	for i := range init {
		init[i] = 1
	}
	// Freeze dynamics with an enormous beta: nothing should flip out of
	// the ground state.
	res := Solve(m, Config{Sweeps: 5, Seed: 1, Initial: init, Beta: sched.Constant(1e9)})
	if ising.HammingDistance(res.Spins, init) != 0 {
		t.Fatal("ground state destroyed under frozen dynamics")
	}
	if init[0] != 1 {
		t.Fatal("caller's initial spins were mutated")
	}
}

func TestSolveInitialNotAliased(t *testing.T) {
	m := ferromagnet(8)
	init := ising.RandomSpins(8, rng.New(5))
	keep := ising.CopySpins(init)
	Solve(m, Config{Sweeps: 20, Seed: 2, Initial: init})
	if ising.HammingDistance(init, keep) != 0 {
		t.Fatal("Solve mutated the caller's Initial slice")
	}
}

func TestAttemptsCount(t *testing.T) {
	m := ferromagnet(16)
	res := Solve(m, Config{Sweeps: 10, Seed: 1})
	if res.Attempts != 160 {
		t.Fatalf("Attempts = %d, want 160", res.Attempts)
	}
	if res.Flips > res.Attempts {
		t.Fatal("more flips than attempts")
	}
}

func TestColdRunOnlyImproves(t *testing.T) {
	// At infinite beta, Metropolis is greedy: energy must be
	// non-increasing sweep over sweep.
	r := rng.New(6)
	g := graph.Complete(50, r)
	m := g.ToIsing()
	last := math.Inf(1)
	Solve(m, Config{
		Sweeps: 30, Seed: 7, Beta: sched.Constant(1e9),
		OnSweep: func(sweep int, e float64) {
			if e > last+1e-9 {
				t.Fatalf("greedy energy increased at sweep %d: %v -> %v", sweep, last, e)
			}
			last = e
		},
	})
}

func TestHotRunExplores(t *testing.T) {
	// At beta ~ 0 almost every proposal is accepted.
	m := ferromagnet(20)
	res := Solve(m, Config{Sweeps: 10, Seed: 8, Beta: sched.Constant(1e-9)})
	if float64(res.Flips) < 0.9*float64(res.Attempts) {
		t.Fatalf("hot run accepted only %d of %d", res.Flips, res.Attempts)
	}
}

func TestNaiveMatchesFastStatistically(t *testing.T) {
	// Same process, different arithmetic path: both must land on the
	// ferromagnet ground state.
	m := ferromagnet(16)
	fast := Solve(m, Config{Sweeps: 100, Seed: 11})
	naive := SolveNaive(m, Config{Sweeps: 100, Seed: 11})
	want := -float64(16*15) / 2
	if fast.Energy != want || naive.Energy != want {
		t.Fatalf("fast=%v naive=%v want=%v", fast.Energy, naive.Energy, want)
	}
}

func TestNaiveEnergyConsistent(t *testing.T) {
	r := rng.New(12)
	g := graph.Complete(20, r)
	m := g.ToIsing()
	res := SolveNaive(m, Config{Sweeps: 20, Seed: 13})
	if d := math.Abs(res.Energy - m.Energy(res.Spins)); d > 1e-6 {
		t.Fatalf("naive energy off by %v", d)
	}
}

func TestInstructionsPerFlip(t *testing.T) {
	m := ferromagnet(64)
	res := Solve(m, Config{Sweeps: 50, Seed: 14})
	if res.Flips == 0 {
		t.Skip("no flips")
	}
	ipf := res.InstructionsPerFlip()
	// Must at least cover one row update.
	if ipf < float64(64*instrPerRowUpdate) {
		t.Fatalf("instructions per flip %v below one row update", ipf)
	}
}

func TestInstructionsPerFlipNoFlips(t *testing.T) {
	r := &Result{Attempts: 10, Flips: 0, Instructions: 100}
	if !math.IsInf(r.InstructionsPerFlip(), 1) {
		t.Fatal("zero flips should give +Inf per-flip cost")
	}
}

func TestOpsAccounting(t *testing.T) {
	m := ferromagnet(8)
	ops := metrics.NewOpCounter()
	res := Solve(m, Config{Sweeps: 5, Seed: 1, Ops: ops})
	if ops.Get("sa.attempts") != res.Attempts || ops.Get("sa.flips") != res.Flips {
		t.Fatal("op counter disagrees with result")
	}
}

func TestSolveBatchBestIsMin(t *testing.T) {
	r := rng.New(15)
	g := graph.Complete(30, r)
	m := g.ToIsing()
	br := SolveBatch(m, Config{Sweeps: 30, Seed: 100}, 8)
	if len(br.Results) != 8 {
		t.Fatalf("got %d results", len(br.Results))
	}
	for _, res := range br.Results {
		if res.Energy < br.Best.Energy {
			t.Fatal("Best is not the minimum")
		}
	}
}

func TestSolveBatchSeedsDiffer(t *testing.T) {
	r := rng.New(16)
	g := graph.Complete(40, r)
	m := g.ToIsing()
	br := SolveBatch(m, Config{Sweeps: 5, Seed: 1}, 4)
	distinct := false
	for i := 1; i < len(br.Results); i++ {
		if ising.HammingDistance(br.Results[0].Spins, br.Results[i].Spins) != 0 {
			distinct = true
		}
	}
	if !distinct {
		t.Fatal("batch runs all identical; seeds not varied")
	}
}

func TestPanicsOnBadConfig(t *testing.T) {
	m := ferromagnet(4)
	for name, f := range map[string]func(){
		"zero sweeps":  func() { Solve(m, Config{Sweeps: 0}) },
		"bad initial":  func() { Solve(m, Config{Sweeps: 1, Initial: make([]int8, 3)}) },
		"zero runs":    func() { SolveBatch(m, Config{Sweeps: 1}, 0) },
		"naive sweeps": func() { SolveNaive(m, Config{Sweeps: 0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestQualityImprovesWithSweeps(t *testing.T) {
	// More annealing must not hurt on average — the shape behind every
	// quality-vs-time figure.
	r := rng.New(17)
	g := graph.Complete(60, r)
	m := g.ToIsing()
	short := SolveBatch(m, Config{Sweeps: 3, Seed: 500}, 6)
	long := SolveBatch(m, Config{Sweeps: 120, Seed: 500}, 6)
	if long.Best.Energy >= short.Best.Energy {
		t.Fatalf("120 sweeps (%v) no better than 3 sweeps (%v)",
			long.Best.Energy, short.Best.Energy)
	}
}

func BenchmarkSolveK256Sweep(b *testing.B) {
	r := rng.New(1)
	g := graph.Complete(256, r)
	m := g.ToIsing()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Solve(m, Config{Sweeps: 1, Seed: uint64(i)})
	}
}
