package sa

import (
	"fmt"
	"math"

	"mbrim/internal/ising"
	"mbrim/internal/sched"
)

// The paper observes (Sec 6.1, 6.3) that tuning the annealing schedule
// for a specific graph changes SA's time-to-target by up to ~140x.
// Tune automates the coarse version of what the cited authors did by
// hand: grid-search β ladders at a small sweep budget, score each by
// mean final energy over a few seeds, and return the winner.

// TuneConfig parameterizes the schedule search.
type TuneConfig struct {
	// Sweeps is the budget per trial run. Default 50.
	Sweeps int
	// Seeds is how many restarts average each candidate's score.
	// Default 3.
	Seeds int
	// Seed bases the trial seeds.
	Seed uint64
	// BetaStarts and BetaEnds are the grid axes. Defaults cover the
	// useful range for couplings of unit scale.
	BetaStarts, BetaEnds []float64
}

// TuneResult reports the search outcome.
type TuneResult struct {
	// Best is the winning schedule; use it as Config.Beta.
	Best sched.Schedule
	// BestStart and BestEnd are the winning ladder endpoints.
	BestStart, BestEnd float64
	// BestScore is the mean final energy the winner achieved; Scores
	// holds every candidate's mean for inspection, keyed
	// "start→end".
	BestScore float64
	Scores    map[string]float64
	// Trials counts annealing runs spent searching.
	Trials int
}

// Tune grid-searches linear β schedules for the model and returns the
// best. The cost is len(BetaStarts)·len(BetaEnds)·Seeds short runs.
func Tune(m *ising.Model, cfg TuneConfig) *TuneResult {
	if cfg.Sweeps == 0 {
		cfg.Sweeps = 50
	}
	if cfg.Sweeps < 1 {
		panic(fmt.Sprintf("sa: Tune Sweeps=%d", cfg.Sweeps))
	}
	if cfg.Seeds == 0 {
		cfg.Seeds = 3
	}
	if cfg.Seeds < 1 {
		panic(fmt.Sprintf("sa: Tune Seeds=%d", cfg.Seeds))
	}
	starts := cfg.BetaStarts
	if len(starts) == 0 {
		starts = []float64{0.01, 0.05, 0.1, 0.3}
	}
	ends := cfg.BetaEnds
	if len(ends) == 0 {
		ends = []float64{1, 2, 3, 5, 10}
	}

	res := &TuneResult{
		BestScore: math.Inf(1),
		Scores:    make(map[string]float64),
	}
	for _, b0 := range starts {
		for _, b1 := range ends {
			if b1 <= b0 {
				continue
			}
			schedule := sched.Linear{From: b0, To: b1}
			sum := 0.0
			for s := 0; s < cfg.Seeds; s++ {
				r := Solve(m, Config{
					Sweeps: cfg.Sweeps,
					Beta:   schedule,
					Seed:   cfg.Seed + uint64(s),
				})
				sum += r.Energy
				res.Trials++
			}
			mean := sum / float64(cfg.Seeds)
			res.Scores[fmt.Sprintf("%g→%g", b0, b1)] = mean
			if mean < res.BestScore {
				res.BestScore = mean
				res.Best = schedule
				res.BestStart, res.BestEnd = b0, b1
			}
		}
	}
	if res.Best == nil {
		panic("sa: Tune had no valid (start, end) pair")
	}
	return res
}
