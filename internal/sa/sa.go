// Package sa implements an optimized simulated annealer in the style
// of Isakov et al. [29], the fastest software baseline the paper
// measures against. The optimization that matters for fully connected
// graphs (Sec 6.1, "dense matrix representation") is caching the local
// field of every spin: a Metropolis attempt is then O(1) and only an
// accepted flip pays the O(N) field update.
//
// A deliberately naive variant (full energy recomputation per attempt)
// is provided for the ablation benchmark that quantifies how much the
// dense local-field representation buys.
package sa

import (
	"context"
	"fmt"
	"math"
	"time"

	"mbrim/internal/ising"
	"mbrim/internal/lattice"
	"mbrim/internal/metrics"
	"mbrim/internal/obs"
	"mbrim/internal/rng"
	"mbrim/internal/sched"
)

// Instruction-cost model for the first-principles analysis (Sec 6.4.1).
// Counting "instructions" exactly is host-specific; these constants
// approximate a scalar CPU: an attempt costs a handful of arithmetic
// ops plus an exp, an accepted flip additionally walks one dense row.
const (
	instrPerAttempt   = 24 // field read, delta, exp, compare, RNG
	instrPerRowUpdate = 3  // load, fma, store per neighbour on accept
)

// Config parameterizes one annealing run.
type Config struct {
	// Sweeps is the number of full passes over all spins. Must be >= 1.
	Sweeps int
	// Beta is the inverse-temperature schedule over run progress.
	// Nil defaults to DefaultBeta.
	Beta sched.Schedule
	// Seed drives all stochastic choices; the same seed reproduces the
	// run exactly.
	Seed uint64
	// Initial optionally fixes the starting spins (copied, not
	// aliased). Nil starts from a random assignment drawn from Seed.
	Initial []int8
	// OnSweep, if non-nil, is called after each sweep with the sweep
	// index and current energy. Quality-vs-time traces hook in here.
	OnSweep func(sweep int, energy float64)
	// Backend selects the coupling-matrix layout behind the field cache
	// when the problem is a concrete model (lattice.Auto resolves by
	// measured density). Every backend reproduces the model methods bit
	// for bit, so this only moves host time.
	Backend lattice.Kind
	// Ops, if non-nil, accumulates operation counts for the
	// first-principles analysis.
	Ops *metrics.OpCounter
	// Tracer, if non-nil, receives an EnergySample event per sweep
	// (the energy is already tracked incrementally, so this is free).
	Tracer obs.Tracer
	// Metrics, if non-nil, accumulates run totals (sa.attempts,
	// sa.flips, sa.sweeps, sa.runs).
	Metrics *obs.Registry
}

// DefaultBeta is the β ramp used when Config.Beta is nil: a linear
// ramp from a hot start to a cold finish, the Isakov default shape.
var DefaultBeta sched.Schedule = sched.Linear{From: 0.1, To: 3}

// Result is the outcome of one annealing run.
type Result struct {
	Spins  []int8
	Energy float64
	// Attempts and Flips count Metropolis proposals and acceptances.
	// Each acceptance is one explored state (Sec 6.4.1 counts these).
	Attempts, Flips int64
	// Instructions is the modeled instruction count of the run.
	Instructions int64
	Wall         time.Duration
}

// InstructionsPerFlip returns the modeled cost of one state change,
// the quantity the paper reports as ≈140,000 for K800.
func (r *Result) InstructionsPerFlip() float64 {
	if r.Flips == 0 {
		return math.Inf(1)
	}
	return float64(r.Instructions) / float64(r.Flips)
}

// Solve runs simulated annealing with cached local fields on a dense
// model. For sparse instances use SolveProblem with a SparseModel —
// flips then cost O(degree) instead of O(N).
func Solve(m *ising.Model, cfg Config) *Result {
	return SolveProblem(m, cfg)
}

// SolveProblem runs simulated annealing over any ising.Problem
// (dense or sparse).
func SolveProblem(m ising.Problem, cfg Config) *Result {
	res, _ := SolveProblemCtx(context.Background(), m, cfg)
	return res
}

// SolveCtx is Solve with cancellation: the run stops at the next sweep
// boundary and returns the state reached so far alongside ctx.Err().
// The result is always non-nil and internally consistent.
func SolveCtx(ctx context.Context, m *ising.Model, cfg Config) (*Result, error) {
	return SolveProblemCtx(ctx, m, cfg)
}

// SolveProblemCtx is SolveProblem with cancellation, checked at sweep
// boundaries.
func SolveProblemCtx(ctx context.Context, m ising.Problem, cfg Config) (*Result, error) {
	if cfg.Sweeps < 1 {
		panic(fmt.Sprintf("sa: Sweeps=%d", cfg.Sweeps))
	}
	if ctx == nil {
		ctx = context.Background()
	}
	beta := cfg.Beta
	if beta == nil {
		beta = DefaultBeta
	}
	r := rng.New(cfg.Seed)
	n := m.N()
	spins := cfg.Initial
	if spins == nil {
		spins = ising.RandomSpins(n, r)
	} else {
		if len(spins) != n {
			panic("sa: Initial length mismatch")
		}
		spins = ising.CopySpins(spins)
	}
	// Concrete models route the hot loop through the shared lattice
	// backend; the field build, per-attempt delta, and accepted-flip
	// fanout all reproduce the model methods bit for bit (same
	// ascending-column accumulation). Other Problem implementations keep
	// the interface path.
	var lat lattice.Coupling
	var biasMu []float64
	switch p := m.(type) {
	case *ising.Model:
		lat = p.View(cfg.Backend)
		biasMu = make([]float64, n)
		for i := range biasMu {
			biasMu[i] = p.Mu() * p.Bias(i)
		}
	case *ising.SparseModel:
		lat = p.View()
		biasMu = make([]float64, n)
		for i := range biasMu {
			biasMu[i] = p.Mu() * p.Bias(i)
		}
	}
	var fields []float64
	if lat != nil {
		fields = make([]float64, n)
		lattice.Fields(lat, spins, nil, fields, 1)
	} else {
		fields = m.LocalFields(spins, nil)
	}
	energy := m.EnergyFromFields(spins, fields)
	flipDelta := func(i int) float64 { return m.FlipDelta(spins, fields, i) }
	applyFlip := func(i int) { m.ApplyFlip(spins, fields, i) }
	if lat != nil {
		flipDelta = func(i int) float64 { return lat.FlipDelta(spins, fields, i, biasMu[i]) }
		applyFlip = func(i int) {
			old := float64(spins[i])
			spins[i] = -spins[i]
			lat.FlipFanout(fields, i, -2*old)
		}
	}

	// The modeled cost of an accepted flip is the field-update fanout:
	// the full row for a dense model, the degree for a sparse one.
	rowCost := func(int) int64 { return int64(n) * instrPerRowUpdate }
	if sm, ok := m.(*ising.SparseModel); ok {
		rowCost = func(i int) int64 { return int64(sm.Degree(i)) * instrPerRowUpdate }
	}

	res := &Result{}
	start := time.Now()
	done := ctx.Done()
	sweepsDone := 0
	var runErr error
	for sweep := 0; sweep < cfg.Sweeps; sweep++ {
		select {
		case <-done:
			runErr = ctx.Err()
		default:
		}
		if runErr != nil {
			break
		}
		b := beta.At(float64(sweep) / float64(cfg.Sweeps))
		for i := 0; i < n; i++ {
			res.Attempts++
			delta := flipDelta(i)
			if delta <= 0 || r.Float64() < math.Exp(-b*delta) {
				applyFlip(i)
				energy += delta
				res.Flips++
				res.Instructions += rowCost(i)
			}
			res.Instructions += instrPerAttempt
		}
		sweepsDone++
		if cfg.OnSweep != nil {
			cfg.OnSweep(sweep, energy)
		}
		if cfg.Tracer != nil {
			cfg.Tracer.Emit(obs.Event{Kind: obs.EnergySample,
				Epoch: sweep + 1, Value: energy})
		}
	}
	res.Wall = time.Since(start)
	res.Spins = spins
	res.Energy = energy
	if cfg.Ops != nil {
		cfg.Ops.Add("sa.attempts", res.Attempts)
		cfg.Ops.Add("sa.flips", res.Flips)
		cfg.Ops.Add("sa.instructions", res.Instructions)
	}
	if cfg.Metrics != nil {
		cfg.Metrics.Counter("sa.runs").Inc()
		cfg.Metrics.Counter("sa.sweeps").Add(int64(sweepsDone))
		cfg.Metrics.Counter("sa.attempts").Add(res.Attempts)
		cfg.Metrics.Counter("sa.flips").Add(res.Flips)
	}
	return res, runErr
}

// SolveNaive runs the same Metropolis process but recomputes the full
// energy for every proposal — the O(N²)-per-sweep strawman that the
// dense local-field representation replaces. It exists for the
// ablation bench; never use it for real work.
func SolveNaive(m *ising.Model, cfg Config) *Result {
	if cfg.Sweeps < 1 {
		panic(fmt.Sprintf("sa: Sweeps=%d", cfg.Sweeps))
	}
	beta := cfg.Beta
	if beta == nil {
		beta = DefaultBeta
	}
	r := rng.New(cfg.Seed)
	n := m.N()
	spins := cfg.Initial
	if spins == nil {
		spins = ising.RandomSpins(n, r)
	} else {
		spins = ising.CopySpins(spins)
	}
	energy := m.Energy(spins)
	res := &Result{}
	start := time.Now()
	for sweep := 0; sweep < cfg.Sweeps; sweep++ {
		b := beta.At(float64(sweep) / float64(cfg.Sweeps))
		for i := 0; i < n; i++ {
			res.Attempts++
			spins[i] = -spins[i]
			proposed := m.Energy(spins)
			delta := proposed - energy
			if delta <= 0 || r.Float64() < math.Exp(-b*delta) {
				energy = proposed
				res.Flips++
			} else {
				spins[i] = -spins[i]
			}
			res.Instructions += int64(n)*instrPerRowUpdate + instrPerAttempt
		}
		if cfg.OnSweep != nil {
			cfg.OnSweep(sweep, energy)
		}
	}
	res.Wall = time.Since(start)
	res.Spins = spins
	res.Energy = energy
	return res
}

// BatchResult aggregates a batch of independent runs of the same
// problem — the "anneal many times from different initial conditions
// and take the best" usage pattern the paper calls common if not
// universal.
type BatchResult struct {
	Best    *Result
	Results []*Result
	Wall    time.Duration
}

// SolveBatch performs runs independent annealing runs with seeds
// Seed, Seed+1, ... and returns all results plus the best by energy.
// Runs execute sequentially: the wall time is the honest cost a
// single-core von Neumann baseline would pay.
func SolveBatch(m *ising.Model, cfg Config, runs int) *BatchResult {
	if runs < 1 {
		panic(fmt.Sprintf("sa: runs=%d", runs))
	}
	br := &BatchResult{Results: make([]*Result, runs)}
	start := time.Now()
	for i := 0; i < runs; i++ {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)
		br.Results[i] = Solve(m, c)
		if br.Best == nil || br.Results[i].Energy < br.Best.Energy {
			br.Best = br.Results[i]
		}
	}
	br.Wall = time.Since(start)
	return br
}
