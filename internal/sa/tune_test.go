package sa

import (
	"math"
	"testing"

	"mbrim/internal/graph"
	"mbrim/internal/rng"
	"mbrim/internal/sched"
)

func TestTuneFindsReasonableSchedule(t *testing.T) {
	g := graph.Complete(64, rng.New(1))
	m := g.ToIsing()
	res := Tune(m, TuneConfig{Sweeps: 30, Seeds: 2, Seed: 2})
	if res.Best == nil || res.BestStart >= res.BestEnd {
		t.Fatalf("bad winner: %v→%v", res.BestStart, res.BestEnd)
	}
	if len(res.Scores) == 0 || res.Trials == 0 {
		t.Fatal("no candidates scored")
	}
	// The winner must score at least as well as every candidate.
	for key, score := range res.Scores {
		if score < res.BestScore-1e-9 {
			t.Fatalf("candidate %s (%v) beats claimed best (%v)", key, score, res.BestScore)
		}
	}
}

func TestTunedBeatsPathologicalSchedule(t *testing.T) {
	// A schedule frozen at an extremely high β from the start cannot
	// explore; the tuned one must beat it clearly on average.
	g := graph.Complete(80, rng.New(3))
	m := g.ToIsing()
	tuned := Tune(m, TuneConfig{Sweeps: 40, Seeds: 3, Seed: 4})
	var tunedSum, frozenSum float64
	for s := uint64(0); s < 4; s++ {
		tunedSum += Solve(m, Config{Sweeps: 40, Beta: tuned.Best, Seed: 100 + s}).Energy
		frozenSum += Solve(m, Config{Sweeps: 40, Beta: sched.Constant(1e6), Seed: 100 + s}).Energy
	}
	if tunedSum >= frozenSum {
		t.Fatalf("tuned (%v) no better than frozen-β (%v)", tunedSum/4, frozenSum/4)
	}
}

func TestTuneDeterministic(t *testing.T) {
	g := graph.Complete(40, rng.New(5))
	m := g.ToIsing()
	a := Tune(m, TuneConfig{Sweeps: 10, Seeds: 2, Seed: 6})
	b := Tune(m, TuneConfig{Sweeps: 10, Seeds: 2, Seed: 6})
	if a.BestStart != b.BestStart || a.BestEnd != b.BestEnd ||
		math.Abs(a.BestScore-b.BestScore) > 1e-12 {
		t.Fatal("Tune is nondeterministic for a fixed seed")
	}
}

func TestTuneCustomGrid(t *testing.T) {
	g := graph.Complete(30, rng.New(7))
	m := g.ToIsing()
	res := Tune(m, TuneConfig{
		Sweeps: 10, Seeds: 1, Seed: 8,
		BetaStarts: []float64{0.1},
		BetaEnds:   []float64{2},
	})
	if res.BestStart != 0.1 || res.BestEnd != 2 {
		t.Fatalf("winner %v→%v from a single-candidate grid", res.BestStart, res.BestEnd)
	}
	if res.Trials != 1 {
		t.Fatalf("Trials = %d, want 1", res.Trials)
	}
}

func TestTunePanics(t *testing.T) {
	m := ferromagnet(4)
	for name, f := range map[string]func(){
		"neg sweeps": func() { Tune(m, TuneConfig{Sweeps: -1}) },
		"neg seeds":  func() { Tune(m, TuneConfig{Seeds: -1}) },
		"empty grid": func() {
			Tune(m, TuneConfig{BetaStarts: []float64{5}, BetaEnds: []float64{1}})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}
