package pt

import (
	"math"
	"testing"

	"mbrim/internal/exact"
	"mbrim/internal/graph"
	"mbrim/internal/ising"
	"mbrim/internal/rng"
	"mbrim/internal/sa"
)

func ferromagnet(n int) *ising.Model {
	m := ising.NewModel(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.SetCoupling(i, j, 1)
		}
	}
	return m
}

func TestFindsFerromagnetGround(t *testing.T) {
	n := 24
	m := ferromagnet(n)
	res := Solve(m, Config{Sweeps: 50, Seed: 1})
	want := -float64(n*(n-1)) / 2
	if res.Energy != want {
		t.Fatalf("energy %v, want %v", res.Energy, want)
	}
}

func TestEnergyMatchesSpins(t *testing.T) {
	g := graph.Complete(40, rng.New(2))
	m := g.ToIsing()
	res := Solve(m, Config{Sweeps: 30, Seed: 3})
	if d := math.Abs(res.Energy - m.Energy(res.Spins)); d > 1e-6 {
		t.Fatalf("energy off by %v", d)
	}
}

func TestDeterministic(t *testing.T) {
	g := graph.Complete(30, rng.New(4))
	m := g.ToIsing()
	a := Solve(m, Config{Sweeps: 20, Seed: 5})
	b := Solve(m, Config{Sweeps: 20, Seed: 5})
	if a.Energy != b.Energy || a.Swaps != b.Swaps ||
		ising.HammingDistance(a.Spins, b.Spins) != 0 {
		t.Fatal("same seed produced different runs")
	}
}

func TestSwapsHappen(t *testing.T) {
	g := graph.Complete(40, rng.New(6))
	m := g.ToIsing()
	res := Solve(m, Config{Sweeps: 50, Seed: 7})
	if res.SwapAttempts == 0 {
		t.Fatal("no swap attempts")
	}
	if res.Swaps == 0 {
		t.Fatal("no swaps accepted over a full run")
	}
	if res.Swaps > res.SwapAttempts {
		t.Fatal("more swaps than attempts")
	}
}

func TestReachesExactOptimumSmall(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		g := graph.Complete(16, rng.New(seed+10))
		m := g.ToIsing()
		want := exact.Solve(m).Energy
		got := Solve(m, Config{Sweeps: 150, Seed: seed}).Energy
		if got != want {
			t.Fatalf("seed %d: PT best %v, optimum %v", seed, got, want)
		}
	}
}

func TestCompetitiveWithSAEqualBudget(t *testing.T) {
	// Same total sweep budget (replicas × sweeps = SA sweeps × runs):
	// PT must not be meaningfully worse on a frustrated instance.
	g := graph.Complete(80, rng.New(20))
	m := g.ToIsing()
	var ptSum, saSum float64
	const trials = 3
	for i := uint64(0); i < trials; i++ {
		ptSum += Solve(m, Config{Replicas: 8, Sweeps: 100, Seed: i}).Energy
		saSum += sa.SolveBatch(m, sa.Config{Sweeps: 100, Seed: i}, 8).Best.Energy
	}
	if ptSum > saSum+0.05*math.Abs(saSum) {
		t.Fatalf("PT (%v) clearly worse than SA restarts (%v) at equal budget",
			ptSum/trials, saSum/trials)
	}
}

func TestBestIsMonotoneInSweeps(t *testing.T) {
	g := graph.Complete(50, rng.New(8))
	m := g.ToIsing()
	short := Solve(m, Config{Sweeps: 5, Seed: 9}).Energy
	long := Solve(m, Config{Sweeps: 100, Seed: 9}).Energy
	if long > short {
		t.Fatalf("more sweeps worse: %v vs %v", long, short)
	}
}

func TestPanics(t *testing.T) {
	m := ferromagnet(4)
	for name, f := range map[string]func(){
		"zero sweeps":  func() { Solve(m, Config{Sweeps: 0}) },
		"one replica":  func() { Solve(m, Config{Sweeps: 1, Replicas: 1}) },
		"bad ladder":   func() { Solve(m, Config{Sweeps: 1, BetaMin: 2, BetaMax: 1}) },
		"neg exchange": func() { Solve(m, Config{Sweeps: 1, ExchangeEvery: -1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func BenchmarkPTK256(b *testing.B) {
	g := graph.Complete(256, rng.New(1))
	m := g.ToIsing()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Solve(m, Config{Replicas: 8, Sweeps: 5, Seed: uint64(i)})
	}
}

func TestPopulationFindsFerromagnetGround(t *testing.T) {
	n := 20
	m := ferromagnet(n)
	res := SolvePopulation(m, PopulationConfig{Population: 32, Rungs: 15, Seed: 1})
	if want := -float64(n*(n-1)) / 2; res.Energy != want {
		t.Fatalf("energy %v, want %v", res.Energy, want)
	}
}

func TestPopulationEnergyMatchesSpins(t *testing.T) {
	g := graph.Complete(30, rng.New(2))
	m := g.ToIsing()
	res := SolvePopulation(m, PopulationConfig{Population: 24, Rungs: 10, Seed: 3})
	if d := math.Abs(res.Energy - m.Energy(res.Spins)); d > 1e-6 {
		t.Fatalf("energy off by %v", d)
	}
}

func TestPopulationDeterministic(t *testing.T) {
	g := graph.Complete(24, rng.New(4))
	m := g.ToIsing()
	cfg := PopulationConfig{Population: 16, Rungs: 8, Seed: 5}
	a := SolvePopulation(m, cfg)
	b := SolvePopulation(m, cfg)
	if a.Energy != b.Energy || a.MaxPopulation != b.MaxPopulation {
		t.Fatal("population annealing nondeterministic")
	}
}

func TestPopulationStaysBounded(t *testing.T) {
	g := graph.Complete(40, rng.New(6))
	m := g.ToIsing()
	res := SolvePopulation(m, PopulationConfig{Population: 64, Rungs: 20, Seed: 7})
	if res.MinPopulation < 8 || res.MaxPopulation > 64*8 {
		t.Fatalf("population swung to [%d, %d] around target 64",
			res.MinPopulation, res.MaxPopulation)
	}
}

func TestPopulationReachesExactOptimum(t *testing.T) {
	for seed := uint64(0); seed < 3; seed++ {
		g := graph.Complete(16, rng.New(seed+30))
		m := g.ToIsing()
		want := exact.Solve(m).Energy
		got := SolvePopulation(m, PopulationConfig{
			Population: 64, Rungs: 30, SweepsPerRung: 3, Seed: seed,
		}).Energy
		if got != want {
			t.Fatalf("seed %d: population best %v, optimum %v", seed, got, want)
		}
	}
}

func TestPopulationPanics(t *testing.T) {
	m := ferromagnet(4)
	for name, f := range map[string]func(){
		"tiny pop":   func() { SolvePopulation(m, PopulationConfig{Population: 1}) },
		"neg rungs":  func() { SolvePopulation(m, PopulationConfig{Rungs: -1}) },
		"neg sweeps": func() { SolvePopulation(m, PopulationConfig{SweepsPerRung: -1}) },
		"bad ladder": func() { SolvePopulation(m, PopulationConfig{BetaMin: 3, BetaMax: 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}
