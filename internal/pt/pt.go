// Package pt implements parallel tempering (replica-exchange Monte
// Carlo), the strongest general-purpose software baseline for Ising
// optimization after tuned SA. R replicas of the problem run Metropolis
// sweeps at a geometric ladder of inverse temperatures; periodically,
// adjacent replicas propose to swap configurations with the detailed-
// balance acceptance min(1, exp(Δβ·ΔE)). Hot replicas roam the
// landscape, cold replicas refine — the combination escapes local
// minima that trap single-temperature annealing.
//
// The paper's evaluation uses Isakov-style SA as the sequential
// yardstick; parallel tempering is provided as the "tuned beyond the
// paper" software competitor for the extension benchmarks.
package pt

import (
	"context"
	"fmt"
	"math"
	"time"

	"mbrim/internal/ising"
	"mbrim/internal/rng"
)

// Config parameterizes a parallel-tempering run.
type Config struct {
	// Replicas is the number of temperature rungs. Default 16.
	Replicas int
	// BetaMin and BetaMax bound the geometric inverse-temperature
	// ladder. Defaults 0.1 and 3.
	BetaMin, BetaMax float64
	// Sweeps is the number of full Metropolis sweeps per replica.
	// Must be >= 1.
	Sweeps int
	// ExchangeEvery is the number of sweeps between swap rounds.
	// Default 1.
	ExchangeEvery int
	// Seed drives everything.
	Seed uint64
}

// Result is the outcome of a run.
type Result struct {
	Spins  []int8
	Energy float64
	// SwapAttempts and Swaps count replica-exchange proposals and
	// acceptances.
	SwapAttempts, Swaps int64
	Wall                time.Duration
}

// replica is one temperature rung's state.
type replica struct {
	spins  []int8
	fields []float64
	energy float64
}

// Solve runs parallel tempering and returns the best state seen by any
// replica at any time.
func Solve(m *ising.Model, cfg Config) *Result {
	res, _ := SolveCtx(context.Background(), m, cfg)
	return res
}

// SolveCtx is Solve with cancellation: the run stops at the next sweep
// boundary and returns the best state seen so far alongside ctx.Err().
// The result is always non-nil and internally consistent.
func SolveCtx(ctx context.Context, m *ising.Model, cfg Config) (*Result, error) {
	if cfg.Sweeps < 1 {
		panic(fmt.Sprintf("pt: Sweeps=%d", cfg.Sweeps))
	}
	if ctx == nil {
		ctx = context.Background()
	}
	replicas := cfg.Replicas
	if replicas == 0 {
		replicas = 16
	}
	if replicas < 2 {
		panic(fmt.Sprintf("pt: Replicas=%d (need >= 2)", replicas))
	}
	betaMin, betaMax := cfg.BetaMin, cfg.BetaMax
	if betaMin == 0 {
		betaMin = 0.1
	}
	if betaMax == 0 {
		betaMax = 3
	}
	if betaMin <= 0 || betaMax <= betaMin {
		panic(fmt.Sprintf("pt: beta ladder [%v, %v]", betaMin, betaMax))
	}
	exchangeEvery := cfg.ExchangeEvery
	if exchangeEvery == 0 {
		exchangeEvery = 1
	}
	if exchangeEvery < 1 {
		panic(fmt.Sprintf("pt: ExchangeEvery=%d", exchangeEvery))
	}

	n := m.N()
	r := rng.New(cfg.Seed)
	betas := make([]float64, replicas)
	ratio := math.Pow(betaMax/betaMin, 1/float64(replicas-1))
	for i := range betas {
		betas[i] = betaMin * math.Pow(ratio, float64(i))
	}

	reps := make([]*replica, replicas)
	for i := range reps {
		spins := ising.RandomSpins(n, r)
		fields := m.LocalFields(spins, nil)
		reps[i] = &replica{
			spins:  spins,
			fields: fields,
			energy: m.EnergyFromFields(spins, fields),
		}
	}

	res := &Result{Energy: math.Inf(1)}
	record := func(rep *replica) {
		if rep.energy < res.Energy {
			res.Energy = rep.energy
			res.Spins = ising.CopySpins(rep.spins)
		}
	}
	for _, rep := range reps {
		record(rep)
	}

	start := time.Now()
	done := ctx.Done()
	var runErr error
	for sweep := 0; sweep < cfg.Sweeps; sweep++ {
		select {
		case <-done:
			runErr = ctx.Err()
		default:
		}
		if runErr != nil {
			break
		}
		for ri, rep := range reps {
			beta := betas[ri]
			for k := 0; k < n; k++ {
				delta := m.FlipDelta(rep.spins, rep.fields, k)
				if delta <= 0 || r.Float64() < math.Exp(-beta*delta) {
					m.ApplyFlip(rep.spins, rep.fields, k)
					rep.energy += delta
				}
			}
			record(rep)
		}
		if (sweep+1)%exchangeEvery != 0 {
			continue
		}
		// Swap round: alternate even/odd adjacent pairs so every pair
		// is proposed at the same long-run rate.
		startPair := (sweep / exchangeEvery) % 2
		for i := startPair; i+1 < replicas; i += 2 {
			res.SwapAttempts++
			// Detailed balance: accept with exp((β_i − β_{i+1})(E_i − E_{i+1})).
			arg := (betas[i] - betas[i+1]) * (reps[i].energy - reps[i+1].energy)
			if arg >= 0 || r.Float64() < math.Exp(arg) {
				reps[i], reps[i+1] = reps[i+1], reps[i]
				res.Swaps++
			}
		}
	}
	res.Wall = time.Since(start)
	return res, runErr
}
