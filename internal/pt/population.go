package pt

import (
	"fmt"
	"math"
	"time"

	"mbrim/internal/ising"
	"mbrim/internal/rng"
)

// Population annealing is the other modern Monte Carlo baseline: a
// population of replicas is cooled through a β ladder; at each rung
// every replica is resampled with expected count ∝ exp(−Δβ·E), so
// low-energy configurations multiply and high-energy ones die out,
// with Metropolis sweeps re-equilibrating between rungs. Compared to
// parallel tempering it trades the swap ladder for a birth/death
// process — embarrassingly parallel and popular on spin glasses.

// PopulationConfig parameterizes a population-annealing run.
type PopulationConfig struct {
	// Population is the replica count, held constant in expectation.
	// Default 64.
	Population int
	// BetaMin/BetaMax bound the ladder; Rungs is the number of cooling
	// steps. Defaults 0.1, 3, 20.
	BetaMin, BetaMax float64
	Rungs            int
	// SweepsPerRung is the Metropolis re-equilibration effort at each
	// rung. Default 1.
	SweepsPerRung int
	// Seed drives everything.
	Seed uint64
}

// PopulationResult reports a run.
type PopulationResult struct {
	Spins  []int8
	Energy float64
	// MaxPopulation and MinPopulation track the resampling swing — a
	// healthy run stays within a small factor of the target.
	MaxPopulation, MinPopulation int
	Wall                         time.Duration
}

// SolvePopulation runs population annealing and returns the best state
// any replica ever held.
func SolvePopulation(m *ising.Model, cfg PopulationConfig) *PopulationResult {
	pop := cfg.Population
	if pop == 0 {
		pop = 64
	}
	if pop < 2 {
		panic(fmt.Sprintf("pt: Population=%d", pop))
	}
	rungs := cfg.Rungs
	if rungs == 0 {
		rungs = 20
	}
	if rungs < 1 {
		panic(fmt.Sprintf("pt: Rungs=%d", rungs))
	}
	sweeps := cfg.SweepsPerRung
	if sweeps == 0 {
		sweeps = 1
	}
	if sweeps < 1 {
		panic(fmt.Sprintf("pt: SweepsPerRung=%d", sweeps))
	}
	betaMin, betaMax := cfg.BetaMin, cfg.BetaMax
	if betaMin == 0 {
		betaMin = 0.1
	}
	if betaMax == 0 {
		betaMax = 3
	}
	if betaMin <= 0 || betaMax <= betaMin {
		panic(fmt.Sprintf("pt: beta ladder [%v, %v]", betaMin, betaMax))
	}

	n := m.N()
	r := rng.New(cfg.Seed)
	members := make([]*replica, pop)
	for i := range members {
		spins := ising.RandomSpins(n, r)
		fields := m.LocalFields(spins, nil)
		members[i] = &replica{spins: spins, fields: fields,
			energy: m.EnergyFromFields(spins, fields)}
	}

	res := &PopulationResult{Energy: math.Inf(1), MaxPopulation: pop, MinPopulation: pop}
	record := func(rep *replica) {
		if rep.energy < res.Energy {
			res.Energy = rep.energy
			res.Spins = ising.CopySpins(rep.spins)
		}
	}
	for _, rep := range members {
		record(rep)
	}

	betaAt := func(r int) float64 {
		if rungs == 1 {
			return betaMax
		}
		return betaMin + (betaMax-betaMin)*float64(r)/float64(rungs-1)
	}

	start := time.Now()
	for rung := 0; rung < rungs; rung++ {
		beta := betaAt(rung)
		dBeta := 0.0
		if rung > 0 {
			dBeta = beta - betaAt(rung-1)
		}

		// Resample: expected copies ∝ exp(−Δβ(E − Ē)), normalized to
		// keep the population near its target size.
		if dBeta > 0 {
			logW := make([]float64, len(members))
			maxLW := math.Inf(-1)
			for i, rep := range members {
				logW[i] = -dBeta * rep.energy
				if logW[i] > maxLW {
					maxLW = logW[i]
				}
			}
			sumW := 0.0
			for i := range logW {
				logW[i] = math.Exp(logW[i] - maxLW)
				sumW += logW[i]
			}
			var next []*replica
			for i, rep := range members {
				expect := float64(pop) * logW[i] / sumW
				copies := int(expect)
				if r.Float64() < expect-float64(copies) {
					copies++
				}
				for c := 0; c < copies; c++ {
					clone := &replica{
						spins:  ising.CopySpins(rep.spins),
						fields: append([]float64(nil), rep.fields...),
						energy: rep.energy,
					}
					next = append(next, clone)
				}
			}
			if len(next) == 0 {
				// Degenerate collapse: reseed from the best-so-far.
				fields := m.LocalFields(res.Spins, nil)
				next = append(next, &replica{
					spins:  ising.CopySpins(res.Spins),
					fields: fields,
					energy: m.EnergyFromFields(res.Spins, fields),
				})
			}
			members = next
			if len(members) > res.MaxPopulation {
				res.MaxPopulation = len(members)
			}
			if len(members) < res.MinPopulation {
				res.MinPopulation = len(members)
			}
		}

		// Re-equilibrate at the new temperature.
		for _, rep := range members {
			for s := 0; s < sweeps; s++ {
				for k := 0; k < n; k++ {
					delta := m.FlipDelta(rep.spins, rep.fields, k)
					if delta <= 0 || r.Float64() < math.Exp(-beta*delta) {
						m.ApplyFlip(rep.spins, rep.fields, k)
						rep.energy += delta
					}
				}
			}
			record(rep)
		}
	}
	res.Wall = time.Since(start)
	return res
}
