// Package hostinfo captures the benchmark host's execution context —
// CPU count, GOMAXPROCS, Go toolchain — so performance records carry
// machine-readable provenance. The BENCH_*.json files at the
// repository root each embed a host_info object, and every
// bench-bearing package's TestMain prints one when the binary runs
// with -test.bench, making the recurring "small-host caveat" a field
// instead of prose.
package hostinfo

import (
	"encoding/json"
	"flag"
	"fmt"
	"runtime"
)

// Info is one host context record.
type Info struct {
	GoVersion  string `json:"goVersion"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"numCPU"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// Collect reads the current process's host context.
func Collect() Info {
	return Info{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// BenchBanner prints a "host_info: {...}" line to stdout when the test
// binary was invoked with -test.bench, and is silent otherwise. Call
// it from TestMain after flag.Parse(): benchmark captures then start
// with the host record the BENCH_*.json emitters embed verbatim.
func BenchBanner() {
	f := flag.Lookup("test.bench")
	if f == nil || f.Value.String() == "" {
		return
	}
	b, err := json.Marshal(Collect())
	if err != nil {
		return // never fail a bench run over provenance
	}
	fmt.Printf("host_info: %s\n", b)
}
