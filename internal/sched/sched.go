// Package sched defines annealing schedules shared by every solver in
// the repository. A schedule maps normalized progress (0 at the start
// of a run, 1 at the end) to a control value — inverse temperature for
// simulated annealing, induced-flip probability for BRIM, bifurcation
// parameter for SBM. Keeping schedules as values makes the paper's
// observation that "tuning the annealing schedule has significant
// impact" (Sec 6.1) directly explorable: swap the value, rerun.
package sched

import (
	"fmt"
	"math"
	"sort"
)

// Schedule maps progress ∈ [0,1] to a control value. Implementations
// must be pure: the same progress always yields the same value.
type Schedule interface {
	At(progress float64) float64
}

// clamp limits progress to [0, 1] so integrator round-off at the ends
// of a run cannot push a schedule out of its domain.
func clamp(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// Constant is the schedule that always returns its value.
type Constant float64

// At returns the constant value regardless of progress.
func (c Constant) At(float64) float64 { return float64(c) }

// Linear interpolates From→To linearly in progress. It is the
// standard β ramp of Isakov-style simulated annealing.
type Linear struct {
	From, To float64
}

// At returns From + progress·(To−From).
func (l Linear) At(p float64) float64 {
	p = clamp(p)
	return l.From + p*(l.To-l.From)
}

// Geometric interpolates From→To geometrically; both endpoints must be
// positive. Classic simulated-annealing temperature decay.
type Geometric struct {
	From, To float64
}

// At returns From·(To/From)^progress.
func (g Geometric) At(p float64) float64 {
	if g.From <= 0 || g.To <= 0 {
		panic(fmt.Sprintf("sched: Geometric endpoints must be positive, got %v→%v", g.From, g.To))
	}
	p = clamp(p)
	return g.From * math.Pow(g.To/g.From, p)
}

// Exponential decays From→To with rate shaped by Tau (in progress
// units): value(p) = To + (From−To)·exp(−p/Tau).
type Exponential struct {
	From, To, Tau float64
}

// At evaluates the exponential decay at progress p.
func (e Exponential) At(p float64) float64 {
	if e.Tau <= 0 {
		panic("sched: Exponential Tau must be positive")
	}
	p = clamp(p)
	return e.To + (e.From-e.To)*math.Exp(-p/e.Tau)
}

// Point is a knot of a piecewise-linear schedule.
type Point struct {
	Progress, Value float64
}

// Piecewise is a piecewise-linear schedule through its points. The
// hardware annealing schedules in the paper (fast flips early, frozen
// late) are most naturally written this way.
type Piecewise struct {
	points []Point
}

// NewPiecewise builds a piecewise-linear schedule; points are sorted
// by progress. At least one point is required.
func NewPiecewise(points ...Point) Piecewise {
	if len(points) == 0 {
		panic("sched: NewPiecewise needs at least one point")
	}
	ps := append([]Point(nil), points...)
	sort.Slice(ps, func(i, j int) bool { return ps[i].Progress < ps[j].Progress })
	return Piecewise{points: ps}
}

// At linearly interpolates between the two bracketing knots, clamping
// outside the knot range.
func (pw Piecewise) At(p float64) float64 {
	p = clamp(p)
	ps := pw.points
	if p <= ps[0].Progress {
		return ps[0].Value
	}
	last := ps[len(ps)-1]
	if p >= last.Progress {
		return last.Value
	}
	i := sort.Search(len(ps), func(i int) bool { return ps[i].Progress >= p })
	a, b := ps[i-1], ps[i]
	if b.Progress == a.Progress {
		return b.Value
	}
	t := (p - a.Progress) / (b.Progress - a.Progress)
	return a.Value + t*(b.Value-a.Value)
}

// Sample evaluates s at n evenly spaced progress values including both
// endpoints (n >= 2), the precomputation used by tight solver loops.
func Sample(s Schedule, n int) []float64 {
	if n < 2 {
		panic("sched: Sample needs n >= 2")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = s.At(float64(i) / float64(n-1))
	}
	return out
}

// Cosine interpolates From→To along a half-cosine: flat near both
// endpoints, steep in the middle. Popular for annealing ramps that
// should dwell at the hot and cold extremes.
type Cosine struct {
	From, To float64
}

// At returns From + (To−From)·(1−cos(π·p))/2.
func (c Cosine) At(p float64) float64 {
	p = clamp(p)
	return c.From + (c.To-c.From)*(1-math.Cos(math.Pi*p))/2
}

// Step holds From until At (a progress fraction), then jumps to To —
// the quench schedule used to isolate exploration from digitization.
type Step struct {
	From, To float64
	// Threshold is the progress at which the jump happens; values are
	// From strictly before it and To at or after it.
	Threshold float64
}

// At returns From before the threshold and To from it onward.
func (s Step) At(p float64) float64 {
	if clamp(p) < s.Threshold {
		return s.From
	}
	return s.To
}
