package sched

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConstant(t *testing.T) {
	c := Constant(3.5)
	for _, p := range []float64{-1, 0, 0.5, 1, 2} {
		if c.At(p) != 3.5 {
			t.Fatalf("Constant.At(%v) = %v", p, c.At(p))
		}
	}
}

func TestLinearEndpoints(t *testing.T) {
	l := Linear{From: 2, To: 10}
	if l.At(0) != 2 || l.At(1) != 10 {
		t.Fatal("Linear endpoints wrong")
	}
	if got := l.At(0.5); got != 6 {
		t.Fatalf("Linear midpoint = %v, want 6", got)
	}
}

func TestLinearClamps(t *testing.T) {
	l := Linear{From: 0, To: 1}
	if l.At(-5) != 0 || l.At(5) != 1 {
		t.Fatal("Linear does not clamp progress")
	}
}

func TestLinearMonotoneProperty(t *testing.T) {
	l := Linear{From: 1, To: 9}
	f := func(a, b float64) bool {
		pa := clamp(math.Abs(math.Mod(a, 1)))
		pb := clamp(math.Abs(math.Mod(b, 1)))
		if pa > pb {
			pa, pb = pb, pa
		}
		return l.At(pa) <= l.At(pb)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeometricEndpoints(t *testing.T) {
	g := Geometric{From: 10, To: 0.1}
	if math.Abs(g.At(0)-10) > 1e-12 || math.Abs(g.At(1)-0.1) > 1e-12 {
		t.Fatal("Geometric endpoints wrong")
	}
	if got, want := g.At(0.5), 1.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("Geometric midpoint = %v, want %v", got, want)
	}
}

func TestGeometricPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for nonpositive endpoint")
		}
	}()
	Geometric{From: 0, To: 1}.At(0.5)
}

func TestExponentialShape(t *testing.T) {
	e := Exponential{From: 1, To: 0, Tau: 0.2}
	if math.Abs(e.At(0)-1) > 1e-12 {
		t.Fatal("Exponential start wrong")
	}
	if e.At(1) > 0.01 {
		t.Fatalf("Exponential end %v, want ~0", e.At(1))
	}
	if !(e.At(0.1) > e.At(0.5) && e.At(0.5) > e.At(0.9)) {
		t.Fatal("Exponential not decreasing")
	}
}

func TestExponentialPanicsOnTau(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for Tau<=0")
		}
	}()
	Exponential{From: 1, To: 0, Tau: 0}.At(0.5)
}

func TestPiecewiseInterpolation(t *testing.T) {
	pw := NewPiecewise(
		Point{0, 0},
		Point{0.5, 10},
		Point{1, 0},
	)
	if pw.At(0.25) != 5 || pw.At(0.75) != 5 {
		t.Fatalf("Piecewise interpolation wrong: %v, %v", pw.At(0.25), pw.At(0.75))
	}
	if pw.At(0.5) != 10 {
		t.Fatal("Piecewise knot value wrong")
	}
}

func TestPiecewiseClampsOutside(t *testing.T) {
	pw := NewPiecewise(Point{0.2, 3}, Point{0.8, 7})
	if pw.At(0) != 3 || pw.At(1) != 7 {
		t.Fatal("Piecewise does not clamp to end knots")
	}
}

func TestPiecewiseSortsPoints(t *testing.T) {
	pw := NewPiecewise(Point{1, 10}, Point{0, 0})
	if pw.At(0.5) != 5 {
		t.Fatalf("unsorted input mishandled: %v", pw.At(0.5))
	}
}

func TestPiecewiseSinglePoint(t *testing.T) {
	pw := NewPiecewise(Point{0.5, 4})
	for _, p := range []float64{0, 0.5, 1} {
		if pw.At(p) != 4 {
			t.Fatal("single-point Piecewise not constant")
		}
	}
}

func TestPiecewisePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty Piecewise")
		}
	}()
	NewPiecewise()
}

func TestSample(t *testing.T) {
	s := Sample(Linear{From: 0, To: 1}, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if math.Abs(s[i]-want[i]) > 1e-12 {
			t.Fatalf("Sample[%d] = %v, want %v", i, s[i], want[i])
		}
	}
}

func TestSamplePanicsOnShort(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on n<2")
		}
	}()
	Sample(Constant(1), 1)
}

func TestCosineEndpointsAndShape(t *testing.T) {
	c := Cosine{From: 0, To: 10}
	if math.Abs(c.At(0)) > 1e-12 || math.Abs(c.At(1)-10) > 1e-12 {
		t.Fatal("Cosine endpoints wrong")
	}
	if math.Abs(c.At(0.5)-5) > 1e-12 {
		t.Fatalf("Cosine midpoint %v, want 5", c.At(0.5))
	}
	// Flat near the ends: the first 10% moves less than the middle 10%.
	early := c.At(0.1) - c.At(0)
	middle := c.At(0.55) - c.At(0.45)
	if early >= middle {
		t.Fatalf("Cosine not end-flattened: early %v middle %v", early, middle)
	}
}

func TestCosineMonotone(t *testing.T) {
	c := Cosine{From: 2, To: 8}
	prev := c.At(0)
	for p := 0.05; p <= 1.0; p += 0.05 {
		v := c.At(p)
		if v < prev-1e-12 {
			t.Fatalf("Cosine decreased at p=%v", p)
		}
		prev = v
	}
}

func TestStepSchedule(t *testing.T) {
	s := Step{From: 1, To: 5, Threshold: 0.6}
	if s.At(0) != 1 || s.At(0.59) != 1 {
		t.Fatal("Step fired early")
	}
	if s.At(0.6) != 5 || s.At(1) != 5 {
		t.Fatal("Step did not fire at threshold")
	}
	if s.At(-1) != 1 || s.At(2) != 5 {
		t.Fatal("Step does not clamp progress")
	}
}
