package multichip

import (
	"mbrim/internal/metrics"
	"mbrim/internal/obs"
)

// runCollector materializes the optional result series (EpochStats,
// Surprises, Trace) by consuming the run's own obs event stream —
// the emission sites are the single source of bookkeeping. A nil
// destination pointer disables that series. Events arrive from the
// epoch barrier on one goroutine, so no locking is needed.
type runCollector struct {
	epochStats *[]EpochStat
	surprises  *[]SurpriseSample
	trace      *[]metrics.Point

	pending EpochStat
}

// active reports whether any series was requested.
func (rc *runCollector) active() bool {
	return rc.epochStats != nil || rc.surprises != nil || rc.trace != nil
}

// Emit folds one event into the requested series. ChipStep events
// accumulate into a pending stat that each EpochSync closes (one stat
// per sync: per-epoch in concurrent and batch modes, per-chip-turn in
// sequential mode); the following FabricTransfer back-fills the stall.
func (rc *runCollector) Emit(e obs.Event) {
	switch e.Kind {
	case obs.ChipStep:
		if rc.epochStats != nil {
			rc.pending.Epoch = e.Epoch
			rc.pending.Flips += e.Count
			rc.pending.InducedFlips += e.Induced
		}
	case obs.EpochSync:
		if rc.epochStats != nil {
			rc.pending.Epoch = e.Epoch
			rc.pending.BitChanges = e.Count
			rc.pending.InducedBitChanges = e.Induced
			*rc.epochStats = append(*rc.epochStats, rc.pending)
			rc.pending = EpochStat{}
		}
	case obs.FabricTransfer:
		if rc.epochStats != nil {
			if stats := *rc.epochStats; len(stats) > 0 && stats[len(stats)-1].Epoch == e.Epoch {
				stats[len(stats)-1].StallNS = e.StallNS
			}
		}
	case obs.Probe:
		if rc.surprises != nil {
			*rc.surprises = append(*rc.surprises, SurpriseSample{
				Epoch:     e.Epoch,
				Chip:      e.Chip,
				Ignorance: e.Aux,
				Surprise:  e.Value,
			})
		}
	case obs.EnergySample:
		if rc.trace != nil {
			*rc.trace = append(*rc.trace, metrics.Point{X: e.ModelNS, Y: e.Value})
		}
	}
}

// runTracer composes the user-configured tracer with the internal
// collector. It returns nil when neither is present — the disabled
// path costs one branch per emission site.
func (s *System) runTracer(rc *runCollector) obs.Tracer {
	if rc != nil && rc.active() {
		return obs.Fanout(s.cfg.Tracer, rc)
	}
	return obs.Fanout(s.cfg.Tracer)
}

// emitChipEpoch emits the per-chip epoch events (ChipStep plus
// InducedKick when kicks were applied) at a barrier, in chip order,
// so the stream is identical whether the chips ran sequentially or on
// goroutines.
func (s *System) emitChipEpoch(tr obs.Tracer, epoch int, modelNS float64) {
	for ci, c := range s.chips {
		tr.Emit(obs.Event{
			Kind: obs.ChipStep, Epoch: epoch, Chip: ci, ModelNS: modelNS,
			Count: c.epochFlips, Induced: c.epochInducedFlips,
		})
		if c.epochKicks > 0 {
			tr.Emit(obs.Event{
				Kind: obs.InducedKick, Epoch: epoch, Chip: ci, ModelNS: modelNS,
				Count: c.epochKicks,
			})
		}
	}
}

// recordRunMetrics adds a finished run's totals to the configured
// registry; a nil registry makes every call a no-op. The unlabeled
// series are cross-mode totals; mode-labeled multichip.runs series
// break the run count down by operating mode for the Prometheus
// exposition.
func (s *System) recordRunMetrics(mode string, flips, inducedFlips, bitChanges, inducedBitChanges int64,
	stallNS, trafficBytes float64, epochs int) {
	m := s.cfg.Metrics
	if m == nil {
		return
	}
	m.Counter("multichip.runs").Inc()
	m.CounterWith("multichip.runs", obs.Labels{"mode": mode}).Inc()
	m.Counter("multichip.flips").Add(flips)
	m.Counter("multichip.induced_flips").Add(inducedFlips)
	m.Counter("multichip.bit_changes").Add(bitChanges)
	m.Counter("multichip.induced_bit_changes").Add(inducedBitChanges)
	m.Counter("multichip.epochs").Add(int64(epochs))
	m.Gauge("multichip.stall_ns").Add(stallNS)
	m.Gauge("multichip.traffic_bytes").Add(trafficBytes)
}
