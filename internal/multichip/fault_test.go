package multichip

import (
	"math"
	"testing"

	"mbrim/internal/fault"
	"mbrim/internal/obs"
)

// faultyCfg is a base system config with every message/chip fault
// class active, against a finite fabric.
func faultyCfg(seed uint64) Config {
	return Config{
		Chips: 4, Seed: 1, EpochNS: 5,
		Faults: fault.Config{
			Seed:        seed,
			DropRate:    0.2,
			CorruptRate: 0.15,
			DelayRate:   0.15,
			StallRate:   0.1,
		},
	}
}

func TestImpotentFaultLayerBitIdentical(t *testing.T) {
	// Acceptance pin: with every fault rate zero, each run mode must be
	// bit-identical to the fault-free simulation. The fault layer here
	// is *armed* (a chip loss scheduled far past the horizon) so the
	// faultSend/beginFaultEpoch plumbing runs, yet injects nothing.
	m := kgraph(64, 1)
	armed := fault.Config{ChipLossEpoch: 1 << 20}
	base := Config{Chips: 4, Seed: 2, EpochNS: 5}
	withF := base
	withF.Faults = armed

	type run func(c Config) *Result
	for name, r := range map[string]run{
		"concurrent": func(c Config) *Result { return MustSystem(m, c).RunConcurrent(40) },
		"sequential": func(c Config) *Result { return MustSystem(m, c).RunSequential(40) },
	} {
		a, b := r(base), r(withF)
		if a.Energy != b.Energy || a.StallNS != b.StallNS ||
			a.TrafficBytes != b.TrafficBytes || a.BitChanges != b.BitChanges ||
			a.Flips != b.Flips || a.ElapsedNS != b.ElapsedNS {
			t.Fatalf("%s: armed-but-impotent fault layer changed the run:\n%+v\nvs\n%+v",
				name, summarize(a), summarize(b))
		}
		for i := range a.Spins {
			if a.Spins[i] != b.Spins[i] {
				t.Fatalf("%s: spin %d differs", name, i)
			}
		}
	}
	ba := MustSystem(m, base).RunBatch(4, 40)
	bb := MustSystem(m, withF).RunBatch(4, 40)
	if ba.BestEnergy != bb.BestEnergy || ba.TrafficBytes != bb.TrafficBytes ||
		ba.StallNS != bb.StallNS || ba.BitChanges != bb.BitChanges {
		t.Fatal("batch: armed-but-impotent fault layer changed the run")
	}
}

func summarize(r *Result) map[string]float64 {
	return map[string]float64{
		"energy": r.Energy, "stall": r.StallNS, "traffic": r.TrafficBytes,
		"changes": float64(r.BitChanges), "flips": float64(r.Flips), "elapsed": r.ElapsedNS,
	}
}

func TestFaultScheduleDeterministicAcrossParallel(t *testing.T) {
	// Same -fault-seed must yield the identical fault schedule and the
	// identical result whether chips run sequentially or on host
	// goroutines — fault decisions are stateless hashes, never consumed
	// streams.
	m := kgraph(64, 3)
	run := func(parallel bool) (*Result, []obs.Event) {
		cfg := faultyCfg(11)
		cfg.Parallel = parallel
		ring := obs.NewRing(4096)
		cfg.Tracer = ring
		res := MustSystem(m, cfg).RunConcurrent(60)
		evs := ring.Events()
		for i := range evs {
			evs[i].WallNS = 0 // the only nondeterministic field
		}
		return res, evs
	}
	seqRes, seqEvs := run(false)
	parRes, parEvs := run(true)
	if seqRes.Energy != parRes.Energy || seqRes.StallNS != parRes.StallNS ||
		seqRes.TrafficBytes != parRes.TrafficBytes {
		t.Fatalf("results diverged: %+v vs %+v", summarize(seqRes), summarize(parRes))
	}
	if seqRes.FaultStats != parRes.FaultStats {
		t.Fatalf("fault ledgers diverged:\n%+v\nvs\n%+v", seqRes.FaultStats, parRes.FaultStats)
	}
	if len(seqEvs) != len(parEvs) {
		t.Fatalf("event counts diverged: %d vs %d", len(seqEvs), len(parEvs))
	}
	for i := range seqEvs {
		if seqEvs[i] != parEvs[i] {
			t.Fatalf("event %d diverged: %+v vs %+v", i, seqEvs[i], parEvs[i])
		}
	}
	if !seqRes.FaultStats.Any() {
		t.Fatal("fault config injected nothing — schedule test is vacuous")
	}
}

func TestFaultsEmitTypedEvents(t *testing.T) {
	m := kgraph(64, 3)
	cfg := faultyCfg(11)
	ring := obs.NewRing(4096)
	cfg.Tracer = ring
	res := MustSystem(m, cfg).RunConcurrent(60)
	byLabel := map[string]int{}
	for _, e := range ring.Events() {
		if e.Kind == obs.Fault {
			byLabel[e.Label]++
		}
	}
	if int64(byLabel["drop"]) != res.FaultStats.Drops ||
		int64(byLabel["corrupt"]) != res.FaultStats.Corruptions ||
		int64(byLabel["delay"]) != res.FaultStats.Delays ||
		int64(byLabel["stall"]) != res.FaultStats.Stalls {
		t.Fatalf("event counts %v disagree with ledger %+v", byLabel, res.FaultStats)
	}
}

func TestChipLossWithoutRecoveryDegrades(t *testing.T) {
	m := kgraph(64, 5)
	cfg := Config{Chips: 4, Seed: 4, EpochNS: 5,
		Faults: fault.Config{ChipLossEpoch: 3, ChipLossChip: 1}}
	res := MustSystem(m, cfg).RunConcurrent(60)
	if res.LiveChips != 3 {
		t.Fatalf("LiveChips = %d, want 3", res.LiveChips)
	}
	if res.FaultStats.ChipLosses != 1 {
		t.Fatalf("ChipLosses = %d", res.FaultStats.ChipLosses)
	}
	if len(res.Spins) != 64 {
		t.Fatal("run did not produce a full state")
	}
}

func TestChipLossRepartitionCompletes(t *testing.T) {
	// Acceptance pin: a chip-loss run with graceful degradation enabled
	// completes via repartition, at reduced capacity, with the recovery
	// charged in bytes and stall.
	m := kgraph(64, 5)
	cfg := Config{Chips: 4, Seed: 4, EpochNS: 5,
		Faults: fault.Config{ChipLossEpoch: 3, ChipLossChip: 1,
			Recovery: fault.Recovery{Repartition: true}}}
	sys := MustSystem(m, cfg)
	res := sys.RunConcurrent(60)
	if res.LiveChips != 3 {
		t.Fatalf("LiveChips = %d, want 3 survivors", res.LiveChips)
	}
	if res.FaultStats.Repartitions != 1 {
		t.Fatalf("Repartitions = %d", res.FaultStats.Repartitions)
	}
	if res.FaultStats.ResyncBytes <= 0 {
		t.Fatal("repartition resync traffic not charged")
	}
	if sys.Fabric().BytesByKind("resync") != res.FaultStats.ResyncBytes {
		t.Fatalf("resync bytes %v not visible in fabric accounting %v",
			res.FaultStats.ResyncBytes, sys.Fabric().BytesByKind("resync"))
	}
	if res.FaultStats.RecoveryStallNS <= 0 {
		t.Fatal("repartition reprogramming stall not charged")
	}
	if res.StallNS < res.FaultStats.RecoveryStallNS {
		t.Fatalf("StallNS %v does not include recovery stall %v",
			res.StallNS, res.FaultStats.RecoveryStallNS)
	}
	if len(res.Spins) != 64 {
		t.Fatal("repartitioned run did not produce a full state")
	}
	if res.Energy >= 0 {
		t.Fatalf("no annealing progress after repartition: %v", res.Energy)
	}
	// The survivors jointly own every spin exactly once.
	seen := make([]bool, 64)
	for _, c := range sys.chips {
		for _, g := range c.owned {
			if seen[g] {
				t.Fatalf("spin %d owned twice after repartition", g)
			}
			seen[g] = true
		}
	}
	for g, ok := range seen {
		if !ok {
			t.Fatalf("spin %d orphaned after repartition", g)
		}
	}
}

func TestDetectRetransmitAccounting(t *testing.T) {
	m := kgraph(64, 7)
	cfg := Config{Chips: 4, Seed: 6, EpochNS: 5,
		Faults: fault.Config{Seed: 1, DropRate: 0.3,
			Recovery: fault.Recovery{Detect: true}}}
	sys := MustSystem(m, cfg)
	res := sys.RunConcurrent(80)
	if res.FaultStats.Drops == 0 {
		t.Fatal("no drops injected — accounting test is vacuous")
	}
	if res.FaultStats.Retransmits == 0 {
		t.Fatal("detection enabled but no retransmits")
	}
	if got := sys.Fabric().BytesByKind("retransmit"); math.Abs(got-res.FaultStats.RetransmitBytes) > 1e-9 {
		t.Fatalf("retransmit bytes: fabric %v vs ledger %v", got, res.FaultStats.RetransmitBytes)
	}
	if res.FaultStats.RecoveryStallNS <= 0 {
		t.Fatal("retransmit backoff stall not charged")
	}
	if res.StallNS < res.FaultStats.RecoveryStallNS-1e-9 {
		t.Fatalf("StallNS %v missing recovery stall %v", res.StallNS, res.FaultStats.RecoveryStallNS)
	}
}

func TestDetectRecoversQuality(t *testing.T) {
	// Under heavy silent drops the final believed/true states drift;
	// detection + retransmit must keep the run's shadow coherence far
	// better. Compare end-state divergence between the two policies.
	m := kgraph(96, 9)
	divergence := func(detect bool) float64 {
		cfg := Config{Chips: 4, Seed: 8, EpochNS: 5,
			Faults: fault.Config{Seed: 2, DropRate: 0.5,
				Recovery: fault.Recovery{Detect: detect}}}
		sys := MustSystem(m, cfg)
		sys.RunConcurrent(60)
		truth := sys.GlobalSpins()
		stale := 0
		remote := 0
		for _, c := range sys.chips {
			for g := 0; g < len(truth); g++ {
				if _, own := c.local[g]; own {
					continue
				}
				remote++
				if c.shadow[g] != truth[g] {
					stale++
				}
			}
		}
		return float64(stale) / float64(remote)
	}
	bare := divergence(false)
	detected := divergence(true)
	if bare == 0 {
		t.Fatal("heavy drops caused no divergence — test is vacuous")
	}
	if detected >= bare {
		t.Fatalf("detection did not reduce divergence: bare %v vs detected %v", bare, detected)
	}
}

func TestWatchdogResync(t *testing.T) {
	m := kgraph(64, 11)
	cfg := Config{Chips: 4, Seed: 10, EpochNS: 5,
		Faults: fault.Config{Seed: 3, DropRate: 0.6,
			Recovery: fault.Recovery{WatchdogThreshold: 0.05}}}
	sys := MustSystem(m, cfg)
	res := sys.RunConcurrent(80)
	if res.FaultStats.Resyncs == 0 {
		t.Fatal("watchdog never fired under heavy drops")
	}
	if got := sys.Fabric().BytesByKind("resync"); math.Abs(got-res.FaultStats.ResyncBytes) > 1e-9 {
		t.Fatalf("resync bytes: fabric %v vs ledger %v", got, res.FaultStats.ResyncBytes)
	}
}

func TestFaultySequentialAndBatchComplete(t *testing.T) {
	m := kgraph(64, 13)
	seqCfg := faultyCfg(21)
	seqCfg.Faults.ChipLossEpoch = 5
	seqCfg.Faults.ChipLossChip = -1
	seqCfg.Faults.Recovery = fault.Recovery{Detect: true, Repartition: true}
	res := MustSystem(m, seqCfg).RunSequential(40)
	if res.LiveChips != 3 || res.FaultStats.Repartitions != 1 {
		t.Fatalf("sequential loss+repartition: live=%d stats=%+v", res.LiveChips, res.FaultStats)
	}
	if len(res.Spins) != 64 {
		t.Fatal("sequential faulty run incomplete")
	}

	batchCfg := faultyCfg(22)
	batchCfg.Faults.ChipLossEpoch = 4
	batchCfg.Faults.ChipLossChip = 2
	batchCfg.Faults.Recovery = fault.Recovery{Detect: true, Repartition: true}
	bres := MustSystem(m, batchCfg).RunBatch(6, 40)
	if bres.LiveChips != 3 || bres.FaultStats.Repartitions != 1 {
		t.Fatalf("batch loss+repartition: live=%d stats=%+v", bres.LiveChips, bres.FaultStats)
	}
	if bres.Best < 0 || len(bres.Jobs[bres.Best]) != 64 {
		t.Fatal("batch faulty run incomplete")
	}
}

func TestFaultyBatchDeterministicAcrossParallel(t *testing.T) {
	m := kgraph(64, 15)
	run := func(parallel bool) *BatchResult {
		cfg := faultyCfg(31)
		cfg.Parallel = parallel
		return MustSystem(m, cfg).RunBatch(8, 40)
	}
	a, b := run(false), run(true)
	if a.BestEnergy != b.BestEnergy || a.TrafficBytes != b.TrafficBytes ||
		a.StallNS != b.StallNS || a.FaultStats != b.FaultStats {
		t.Fatalf("batch fault runs diverged across Parallel:\n%+v %v\nvs\n%+v %v",
			a.FaultStats, a.BestEnergy, b.FaultStats, b.BestEnergy)
	}
	for j := range a.Jobs {
		for i := range a.Jobs[j] {
			if a.Jobs[j][i] != b.Jobs[j][i] {
				t.Fatalf("job %d spin %d diverged", j, i)
			}
		}
	}
}
