package multichip

import (
	"math"
	"testing"

	"mbrim/internal/interconnect"
)

// driveSlices runs k slices in lockstep the way a cluster coordinator
// does — RunEpoch everywhere, then cross-deliver updates in ascending
// chip order — and returns the assembled final spins plus the summed
// bit-change / flip counters.
func driveSlices(t *testing.T, slices []*Slice) (spins []int8, bitChanges int64, flips int64) {
	t.Helper()
	n := 0
	for _, s := range slices {
		n += len(s.Owned())
	}
	global := make([]int8, n)
	for !slices[0].Done() {
		reps := make([]*EpochReport, len(slices))
		for i, s := range slices {
			rep, err := s.RunEpoch()
			if err != nil {
				t.Fatalf("slice %d epoch: %v", i, err)
			}
			reps[i] = rep
			for li, g := range s.Owned() {
				global[g] = rep.Spins[li]
			}
		}
		for _, rep := range reps {
			bitChanges += int64(len(rep.Updates))
		}
		// Deliver ci's updates to every other slice, senders ascending —
		// the accumulation order syncEpoch uses.
		for ci, rep := range reps {
			for di, d := range slices {
				if di == ci {
					continue
				}
				if err := d.ApplySync(rep.Updates); err != nil {
					t.Fatalf("slice %d sync: %v", di, err)
				}
			}
		}
	}
	for _, s := range slices {
		// Cumulative machine counters were reported each epoch; read the
		// final value off a fresh snapshot instead of re-running.
		flips += s.chip.machine.Flips()
	}
	return global, bitChanges, flips
}

// TestSlicesMatchSystem drives k isolated slices in lockstep and
// checks the trajectory is bit-identical to System.RunConcurrent —
// the parity contract the distributed fabric rests on.
func TestSlicesMatchSystem(t *testing.T) {
	for _, tc := range []struct {
		name        string
		chips       int
		coordinated bool
	}{
		{"2chips", 2, false},
		{"3chips-coordinated", 3, true},
		{"4chips", 4, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := kgraph(48, 7)
			cfg := Config{Chips: tc.chips, Coordinated: tc.coordinated, Seed: 99,
				ChannelBytesPerNS: 0.5}
			const duration = 25
			want := MustSystem(m, cfg).RunConcurrent(duration)

			slices := make([]*Slice, tc.chips)
			for i := range slices {
				s, err := NewSlice(m, cfg, i, duration)
				if err != nil {
					t.Fatalf("NewSlice(%d): %v", i, err)
				}
				slices[i] = s
			}
			got, bitChanges, flips := driveSlices(t, slices)

			for i := range got {
				if got[i] != want.Spins[i] {
					t.Fatalf("spin %d: slices=%d system=%d", i, got[i], want.Spins[i])
				}
			}
			if bitChanges != want.BitChanges {
				t.Errorf("bit changes: slices=%d system=%d", bitChanges, want.BitChanges)
			}
			if flips != want.Flips {
				t.Errorf("flips: slices=%d system=%d", flips, want.Flips)
			}
			if e := m.Energy(got); e != want.Energy {
				t.Errorf("energy: slices=%v system=%v", e, want.Energy)
			}
		})
	}
}

// TestSliceSnapshotRestoreContinuesBitIdentically interrupts a
// lockstep drive at a barrier, snapshots every slice, rebuilds fresh
// slices, restores, and finishes — the hand-off path cluster recovery
// uses. The result must equal an uninterrupted drive.
func TestSliceSnapshotRestoreContinuesBitIdentically(t *testing.T) {
	m := kgraph(40, 3)
	cfg := Config{Chips: 3, Coordinated: true, Seed: 5}
	const duration = 30

	build := func() []*Slice {
		ss := make([]*Slice, cfg.Chips)
		for i := range ss {
			s, err := NewSlice(m, cfg, i, duration)
			if err != nil {
				t.Fatalf("NewSlice(%d): %v", i, err)
			}
			ss[i] = s
		}
		return ss
	}

	reference := build()
	wantSpins, _, _ := driveSlices(t, reference)

	// Drive 3 epochs, snapshot at the barrier (post-sync), then restore
	// onto fresh slices and finish.
	first := build()
	for e := 0; e < 3; e++ {
		reps := make([]*EpochReport, len(first))
		for i, s := range first {
			rep, err := s.RunEpoch()
			if err != nil {
				t.Fatalf("epoch: %v", err)
			}
			reps[i] = rep
		}
		for ci, rep := range reps {
			for di, d := range first {
				if di != ci {
					if err := d.ApplySync(rep.Updates); err != nil {
						t.Fatalf("sync: %v", err)
					}
				}
			}
		}
	}
	states := make([]*SliceState, len(first))
	for i, s := range first {
		states[i] = s.Snapshot()
	}

	second := build()
	for i, s := range second {
		if err := s.Restore(states[i]); err != nil {
			t.Fatalf("restore %d: %v", i, err)
		}
		if s.Epochs() != 3 {
			t.Fatalf("restored slice %d at epoch %d, want 3", i, s.Epochs())
		}
	}
	gotSpins, _, _ := driveSlices(t, second)
	for i := range gotSpins {
		if gotSpins[i] != wantSpins[i] {
			t.Fatalf("spin %d after restore: %d, want %d", i, gotSpins[i], wantSpins[i])
		}
	}
}

// TestSliceFabricAccountingMatchesSystem replays the coordinator's
// fabric mirroring — Record per non-empty broadcast, EndEpoch per
// barrier — and checks traffic and stall equal the in-process run's.
func TestSliceFabricAccountingMatchesSystem(t *testing.T) {
	m := kgraph(36, 11)
	cfg := Config{Chips: 3, Seed: 17, Channels: 1, ChannelBytesPerNS: 0.25}
	const duration = 20
	want := MustSystem(m, cfg).RunConcurrent(duration)

	slices := make([]*Slice, cfg.Chips)
	for i := range slices {
		s, err := NewSlice(m, cfg, i, duration)
		if err != nil {
			t.Fatalf("NewSlice: %v", err)
		}
		slices[i] = s
	}
	fab, err := interconnect.New(cfg.Chips, cfg.Channels, cfg.ChannelBytesPerNS)
	if err != nil {
		t.Fatal(err)
	}
	for !slices[0].Done() {
		reps := make([]*EpochReport, len(slices))
		for i, s := range slices {
			rep, rerr := s.RunEpoch()
			if rerr != nil {
				t.Fatalf("epoch: %v", rerr)
			}
			reps[i] = rep
		}
		for ci, rep := range reps {
			if len(rep.Updates) > 0 {
				fab.Record(ci, interconnect.DeltaSyncBytes(len(rep.Updates), len(slices[ci].Owned()), cfg.Chips-1), "sync")
			}
			for di, d := range slices {
				if di != ci {
					if err := d.ApplySync(rep.Updates); err != nil {
						t.Fatalf("sync: %v", err)
					}
				}
			}
		}
		fab.EndEpoch(reps[0].EpochNS)
	}
	if got := fab.TotalBytes(); got != want.TrafficBytes {
		t.Errorf("traffic: %v, want %v", got, want.TrafficBytes)
	}
	if got := fab.StallNS(); got != want.StallNS {
		t.Errorf("stall: %v, want %v", got, want.StallNS)
	}
	if got := fab.PeakDemand(); math.Abs(got-want.PeakDemandBytesPerNS) > 1e-12 {
		t.Errorf("peak demand: %v, want %v", got, want.PeakDemandBytesPerNS)
	}
}

// TestSliceRejectsModeledFaults pins the boundary between the modeled
// fault layer (in-process simulation) and real cluster faults.
func TestSliceRejectsModeledFaults(t *testing.T) {
	m := kgraph(16, 1)
	cfg := Config{Chips: 2, Seed: 1}
	cfg.Faults.DropRate = 0.5
	cfg.Faults.Seed = 3
	if _, err := NewSlice(m, cfg, 0, 10); err == nil {
		t.Fatal("NewSlice accepted a modeled-fault config")
	}
}
