package multichip

import (
	"fmt"
	"math"

	"mbrim/internal/ising"
)

// AutoEpoch recommends the shortest epoch a bandwidth-limited system
// can sustain without congestion stalls — the design decision Sec 5.3
// leaves to the architect: concurrent mode wants the shortest epoch
// (least ignorance), the fabric wants the longest (fewest, larger
// syncs), and the crossover depends on the workload's flip rate.
//
// The tuner runs short calibration bursts at each candidate epoch on a
// fresh system (same model, same seed) and returns the smallest
// candidate whose stall fraction stays below tolerance, together with
// the measured stall fraction per candidate. If even the largest
// candidate stalls beyond tolerance it is returned with ok = false —
// the fabric is undersized and the machine must slow down instead
// (the paper's fallback).
type AutoEpochResult struct {
	// EpochNS is the recommendation; OK reports whether it meets the
	// tolerance.
	EpochNS float64
	OK      bool
	// StallFraction maps each candidate epoch to stall/elapsed
	// measured during calibration.
	StallFraction map[float64]float64
}

// AutoEpoch calibrates over the candidates (ascending; nil selects
// {0.5, 1, 2, 3.3, 5, 8, 12, 20}) using bursts of burstNS model time
// (0 selects 10× the largest candidate). tolerance is the acceptable
// stall fraction (0 selects 0.05).
func AutoEpoch(m *ising.Model, cfg Config, candidates []float64, burstNS, tolerance float64) *AutoEpochResult {
	if candidates == nil {
		candidates = []float64{0.5, 1, 2, 3.3, 5, 8, 12, 20}
	}
	if len(candidates) == 0 {
		panic("multichip: AutoEpoch with no candidates")
	}
	for i := 1; i < len(candidates); i++ {
		if candidates[i] <= candidates[i-1] {
			panic("multichip: AutoEpoch candidates must be ascending")
		}
	}
	if tolerance == 0 {
		tolerance = 0.05
	}
	if tolerance < 0 || tolerance >= 1 {
		panic(fmt.Sprintf("multichip: AutoEpoch tolerance %v", tolerance))
	}
	if burstNS == 0 {
		burstNS = 10 * candidates[len(candidates)-1]
	}
	if burstNS <= 0 {
		panic(fmt.Sprintf("multichip: AutoEpoch burst %v", burstNS))
	}

	res := &AutoEpochResult{StallFraction: make(map[float64]float64, len(candidates))}
	best := math.Inf(1)
	for _, epoch := range candidates {
		c := cfg
		c.EpochNS = epoch
		run := MustSystem(m, c).RunConcurrent(burstNS)
		frac := 0.0
		if run.ElapsedNS > 0 {
			frac = run.StallNS / run.ElapsedNS
		}
		res.StallFraction[epoch] = frac
		if frac <= tolerance && epoch < best {
			best = epoch
		}
	}
	if math.IsInf(best, 1) {
		// Nothing met the tolerance: recommend the least-bad candidate.
		leastBad, leastFrac := candidates[0], math.Inf(1)
		for _, epoch := range candidates {
			if f := res.StallFraction[epoch]; f < leastFrac {
				leastBad, leastFrac = epoch, f
			}
		}
		res.EpochNS = leastBad
		res.OK = false
		return res
	}
	res.EpochNS = best
	res.OK = true
	return res
}
