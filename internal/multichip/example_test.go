package multichip_test

import (
	"fmt"

	"mbrim/internal/graph"
	"mbrim/internal/multichip"
	"mbrim/internal/rng"
)

// ExampleSystem_RunConcurrent anneals one job across four chips with
// epoch-boundary shadow synchronization.
func ExampleSystem_RunConcurrent() {
	g := graph.Complete(64, rng.New(1))
	sys := multichip.MustSystem(g.ToIsing(), multichip.Config{
		Chips:   4,
		EpochNS: 3.3,
		Seed:    1,
	})
	res := sys.RunConcurrent(50)
	fmt.Println(res.Epochs > 0, res.BitChanges <= res.Flips, g.CutFromEnergy(res.Energy) > 0)
	// Output: true true true
}

// ExampleSystem_RunBatch staggers four jobs over four chips (Fig 10)
// and takes the best.
func ExampleSystem_RunBatch() {
	g := graph.Complete(64, rng.New(2))
	sys := multichip.MustSystem(g.ToIsing(), multichip.Config{
		Chips:   4,
		EpochNS: 10,
		Seed:    2,
	})
	res := sys.RunBatch(4, 100)
	fmt.Println(len(res.Jobs), res.Best >= 0, res.BestEnergy <= res.Energies[0])
	// Output: 4 true true
}

// ExamplePlanLayout prints the Fig 7 configuration for a 4-chip
// system.
func ExamplePlanLayout() {
	l, _ := multichip.PlanLayout(4, 2000, 4)
	fmt.Printf("%dn×%dn slice, %d regular / %d shadow / %d pass-through\n",
		l.RowsModules, l.ColsModules,
		l.RegularModules, l.ShadowModules, l.PassThroughModules)
	// Output: 2n×8n slice, 2 regular / 6 shadow / 8 pass-through
}

// ExampleEnergySurprise reproduces a slice of Fig 9.
func ExampleEnergySurprise() {
	g := graph.Complete(64, rng.New(3))
	samples := multichip.EnergySurprise(g.ToIsing(), multichip.SurpriseConfig{
		Solvers: 4, EpochMoves: 8, Epochs: 3, Runs: 2, Seed: 3,
	})
	fmt.Println(len(samples)) // runs × epochs × solvers
	// Output: 24
}
