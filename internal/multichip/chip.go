// Package multichip implements the paper's contribution: the
// multiprocessor Ising machine of Sec 5. A problem of N spins is
// sliced over k chips. Each chip holds:
//
//   - its owned spins, annealed by a full BRIM dynamical system over
//     the owned×owned block of the coupling matrix;
//   - shadow copies of every remote spin — registers holding a
//     delayed ±1 view of the rest of the system — whose influence
//     enters the local dynamics as an external bias current through
//     the owned×remote cross-couplings (exactly g = μh + J_× σ of
//     Eq. 3, realized in hardware rather than by glue software);
//   - a slice of the digital fabric that carries spin updates.
//
// Two operating modes are provided: concurrent (Sec 5.4) in system.go
// and batch (Sec 5.5) in batch.go, plus the coordinated induced-flip
// optimization (Sec 5.4.2) in both. reconfig.go models the macrochip
// and the reconfigurable module array of Secs 4.2/5.2. surprise.go
// reproduces the energy-surprise probe of Fig 9.
package multichip

import (
	"fmt"

	"mbrim/internal/brim"
	"mbrim/internal/ising"
	"mbrim/internal/lattice"
)

// chip is one processor of the multiprocessor: a BRIM machine over its
// owned spins plus shadow registers for everything else.
type chip struct {
	id    int
	owned []int // global indices owned by this chip, ascending
	local map[int]int

	machine *brim.Machine
	// shadow is this chip's belief about every global spin. Entries
	// for owned spins mirror the machine readout; entries for remote
	// spins update only when the fabric delivers news.
	shadow []int8
	// cross[i][j] is the scaled coupling Ĵ between owned spin i
	// (local index) and global spin j, zero for owned j. Shadow flips
	// turn into external-bias increments through these rows.
	cross [][]float64

	// lastFlipInduced tracks, per owned local spin, whether its most
	// recent readout change was an induced kick — the attribution used
	// to credit communication savings to coordination.
	lastFlipInduced []bool

	// Per-epoch counters, reset by the runtime at epoch boundaries.
	// epochKicks counts the induced-kick draws applied to owned spins
	// (the InducedKick trace event payload).
	epochFlips        int64
	epochInducedFlips int64
	epochKicks        int64
	// epochWallNS is the measured host wall time of this chip's last
	// epoch integration — recorded inside the worker when span tracing
	// is on, read at the barrier. Purely observational.
	epochWallNS int64
}

// newChip builds chip id owning the given global indices of the
// problem. lat is the system's coupling view of m — extraction scans
// its stored nonzeros once per owned row, so sparse problems pay
// O(degree) instead of O(N) per spin. scale is the global coupling
// normalization shared by all chips; cfg configures the local dynamics
// (its InducedFlip schedule is overridden to zero — the runtime
// coordinates kicks itself).
func newChip(id int, m *ising.Model, lat lattice.Coupling, owned []int, scale float64, cfg brim.Config, epochNS float64, initial []int8) *chip {
	if len(owned) == 0 {
		panic(fmt.Sprintf("multichip: chip %d owns no spins", id))
	}
	n := m.N()
	c := &chip{
		id:              id,
		owned:           append([]int(nil), owned...),
		local:           make(map[int]int, len(owned)),
		shadow:          make([]int8, n),
		cross:           make([][]float64, len(owned)),
		lastFlipInduced: make([]bool, len(owned)),
	}
	for li, g := range c.owned {
		c.local[g] = li
	}

	// One scan of each owned row splits it into the owned×owned
	// sub-model (biases come along so the machine applies μh itself)
	// and the owned×remote cross row, pre-scaled like the machine's own
	// couplings.
	sub := ising.NewModel(len(owned))
	sub.SetMu(m.Mu())
	for a, ga := range c.owned {
		sub.SetBias(a, m.Bias(ga))
		row := make([]float64, n)
		lat.Scan(ga, func(j int, v float64) {
			if lj, own := c.local[j]; own {
				if lj > a {
					sub.SetCoupling(a, lj, v)
				}
			} else {
				row[j] = v / scale
			}
		})
		c.cross[a] = row
	}

	mcfg := cfg
	mcfg.Scale = scale
	mcfg.InducedFlip = zeroSchedule{}
	if mcfg.KickHoldNS == 0 {
		// Latch kicked nodes long enough that a coordinated kick rarely
		// reverts before the next fabric synchronization (the
		// persistence Sec 5.4.2's free-of-communication claim needs),
		// but never so long that long epochs freeze the dynamics.
		tau := mcfg.Tau
		if tau == 0 {
			tau = 1
		}
		mcfg.KickHoldNS = epochNS
		if cap := 2 * tau; mcfg.KickHoldNS > cap {
			mcfg.KickHoldNS = cap
		}
	}
	c.machine = brim.New(sub, mcfg)
	copy(c.shadow, initial)
	localInit := make([]int8, len(owned))
	for li, g := range c.owned {
		localInit[li] = initial[g]
	}
	c.machine.SetSpins(localInit)
	c.machine.OnFlip(func(node int, newSpin int8, induced bool) {
		c.shadow[c.owned[node]] = newSpin
		c.lastFlipInduced[node] = induced
		c.epochFlips++
		if induced {
			c.epochInducedFlips++
		}
	})
	c.recomputeExternalBias()
	return c
}

// zeroSchedule disables the machine's internal induced flips.
type zeroSchedule struct{}

func (zeroSchedule) At(float64) float64 { return 0 }

// recomputeExternalBias rebuilds the machine's external bias from the
// shadow registers in O(owned × N). Used at construction and at batch
// job switches; incremental updates handle the common path.
func (c *chip) recomputeExternalBias() {
	ext := make([]float64, len(c.owned))
	for li := range c.owned {
		row := c.cross[li]
		acc := 0.0
		for j, v := range row {
			if v != 0 {
				acc += v * float64(c.shadow[j])
			}
		}
		ext[li] = acc
	}
	c.machine.SetExternalBias(ext)
}

// applyShadowUpdate records that remote global spin g now holds value
// s, updating the shadow register and the machine's bias currents
// incrementally. A no-op if the shadow already agrees.
func (c *chip) applyShadowUpdate(g int, s int8) {
	if _, own := c.local[g]; own {
		panic(fmt.Sprintf("multichip: chip %d got shadow update for owned spin %d", c.id, g))
	}
	old := c.shadow[g]
	if old == s {
		return
	}
	c.shadow[g] = s
	delta := float64(s - old) // ±2
	for li := range c.owned {
		if v := c.cross[li][g]; v != 0 {
			c.machine.AddExternalBias(li, v*delta)
		}
	}
}

// applyShadowToggle flips the shadow register of remote global spin g
// — the coordinated induced-flip path, where every chip reproduces the
// same kick decision locally instead of receiving it over the fabric.
func (c *chip) applyShadowToggle(g int) {
	old := c.shadow[g]
	if old == 0 {
		old = -1
	}
	c.applyShadowUpdate(g, -old)
}

// ownedSpins copies the current readout of the owned spins in owned
// order.
func (c *chip) ownedSpins() []int8 {
	return ising.CopySpins(c.machine.Spins())
}

// loadOwnedSpins warm-starts the machine at the given owned-order
// spins and mirrors them into the shadow view.
func (c *chip) loadOwnedSpins(s []int8) {
	c.machine.SetSpins(s)
	for li, g := range c.owned {
		c.shadow[g] = s[li]
	}
}

// loadJobState context-switches the chip onto a job: shadows take the
// job's full global state, the machine warm-starts at the job's owned
// slice, and the bias currents are rebuilt. This is batch mode's O(N)
// state load (versus the O(bN²) reprogram a context switch would cost
// if a whole job moved between machines, Sec 5.5).
func (c *chip) loadJobState(global []int8) {
	copy(c.shadow, global)
	local := make([]int8, len(c.owned))
	for li, g := range c.owned {
		local[li] = global[g]
	}
	c.machine.SetSpins(local)
	c.recomputeExternalBias()
}

// resetEpochCounters clears the per-epoch flip counters.
func (c *chip) resetEpochCounters() {
	c.epochFlips = 0
	c.epochInducedFlips = 0
	c.epochKicks = 0
}
