package multichip

import (
	"fmt"
	"math"
	"sort"
)

// This file models the structural architecture of Secs 4.2 and 5.2:
// the macrochip built from a k×k array of chips, the waste it suffers
// when solving smaller problems (Fig 4), and the reconfigurable module
// array that lets one chip serve as a slice of multiprocessors of
// different sizes (Fig 7).

// ModuleMode is the operating mode of a node module (Fig 7's colors).
type ModuleMode int

// The three module modes of the reconfigurable chip.
const (
	Regular     ModuleMode = iota // blue: real nodes live here
	ShadowCopy                    // orange: buffers of remote spins
	PassThrough                   // green: wires only
)

// String names the mode.
func (m ModuleMode) String() string {
	switch m {
	case Regular:
		return "regular"
	case ShadowCopy:
		return "shadow"
	case PassThrough:
		return "pass-through"
	default:
		return fmt.Sprintf("ModuleMode(%d)", int(m))
	}
}

// Layout describes how one reconfigurable chip of K×K modules (each
// with ModuleN nodes and ModuleN² coupling units) is configured to
// serve in a multiprocessor of Chips chips.
type Layout struct {
	K       int // module grid dimension (chip has K×K modules)
	ModuleN int // nodes per module
	Chips   int // multiprocessor size this layout serves

	// RowsModules×ColsModules is the logical slice shape in modules:
	// the chip covers a (RowsModules·ModuleN) × (ColsModules·ModuleN)
	// block of the system coupling matrix.
	RowsModules, ColsModules int
	// Module counts by mode. RegularModules + ShadowModules =
	// ColsModules; the rest pass through.
	RegularModules, ShadowModules, PassThroughModules int
	// SpinsPerChip and TotalSpins are the resulting capacities.
	SpinsPerChip, TotalSpins int
}

// PlanLayout computes the configuration of a K×K-module chip for a
// multiprocessor of `chips` chips. Valid values of chips are perfect
// squares whose root divides K (the paper's examples for K=4:
// 1 → 4n×4n, 4 → 2n×8n, 16 → 1n×16n).
func PlanLayout(k, moduleN, chips int) (*Layout, error) {
	if k < 1 || moduleN < 1 || chips < 1 {
		return nil, fmt.Errorf("multichip: PlanLayout(%d, %d, %d): all arguments must be positive", k, moduleN, chips)
	}
	root := int(math.Round(math.Sqrt(float64(chips))))
	if root*root != chips {
		return nil, fmt.Errorf("multichip: %d chips is not a perfect square", chips)
	}
	if k%root != 0 {
		return nil, fmt.Errorf("multichip: √%d = %d does not divide module grid K=%d", chips, root, k)
	}
	l := &Layout{
		K:           k,
		ModuleN:     moduleN,
		Chips:       chips,
		RowsModules: k / root,
		ColsModules: k * root,
	}
	l.RegularModules = l.RowsModules
	l.ShadowModules = l.ColsModules - l.RowsModules
	l.PassThroughModules = k*k - l.ColsModules
	l.SpinsPerChip = l.RowsModules * moduleN
	l.TotalSpins = l.ColsModules * moduleN
	return l, nil
}

// ModeGrid returns the K×K module-mode assignment in the physical
// grid, column-major like Fig 7: the modules of the first
// ColsModules/K physical columns are strung into the logical column.
func (l *Layout) ModeGrid() [][]ModuleMode {
	grid := make([][]ModuleMode, l.K)
	for r := range grid {
		grid[r] = make([]ModuleMode, l.K)
		for c := range grid[r] {
			grid[r][c] = PassThrough
		}
	}
	// Walk modules in column-major order; the first RowsModules are
	// regular, the next ShadowModules are shadows.
	assigned := 0
	for c := 0; c < l.K && assigned < l.ColsModules; c++ {
		for r := 0; r < l.K && assigned < l.ColsModules; r++ {
			if assigned < l.RegularModules {
				grid[r][c] = Regular
			} else {
				grid[r][c] = ShadowCopy
			}
			assigned++
		}
	}
	return grid
}

// Validate checks the layout's internal consistency.
func (l *Layout) Validate() error {
	if l.RegularModules+l.ShadowModules != l.ColsModules {
		return fmt.Errorf("multichip: regular+shadow=%d, want cols=%d",
			l.RegularModules+l.ShadowModules, l.ColsModules)
	}
	if l.RegularModules+l.ShadowModules+l.PassThroughModules != l.K*l.K {
		return fmt.Errorf("multichip: module modes do not cover the %d×%d grid", l.K, l.K)
	}
	if l.RowsModules*l.ColsModules != l.K*l.K {
		return fmt.Errorf("multichip: slice %d×%d does not use all %d coupling modules",
			l.RowsModules, l.ColsModules, l.K*l.K)
	}
	if l.SpinsPerChip*l.Chips != l.TotalSpins {
		return fmt.Errorf("multichip: %d chips × %d spins ≠ %d total",
			l.Chips, l.SpinsPerChip, l.TotalSpins)
	}
	return nil
}

// --- Macrochip packing (Sec 4.2, Figs 4 and 5) -----------------------

// Packing reports how a set of problems occupies Ising hardware.
type Packing struct {
	// ChipsUsed is how many chips carry at least one problem.
	ChipsUsed int
	// CouplersUsed is the number of coupling units actually
	// programmed (Σ nᵢ² over placed problems).
	CouplersUsed int
	// CouplersTotal is the hardware's coupler count.
	CouplersTotal int
	// PerChip lists the problem sizes placed on each used chip.
	PerChip [][]int
}

// Utilization is CouplersUsed / CouplersTotal.
func (p *Packing) Utilization() float64 {
	if p.CouplersTotal == 0 {
		return 0
	}
	return float64(p.CouplersUsed) / float64(p.CouplersTotal)
}

// PackMonolithic places the problems block-diagonally on a monolithic
// macrochip of k×k chips with chipN nodes each (Fig 4): the whole kN ×
// kN coupler array is committed whether or not it is used. Errors if
// the problems do not fit (Σ nᵢ > kN).
func PackMonolithic(chipN, k int, problems []int) (*Packing, error) {
	if chipN < 1 || k < 1 {
		return nil, fmt.Errorf("multichip: PackMonolithic(%d, %d)", chipN, k)
	}
	capacity := chipN * k
	sum, used := 0, 0
	for _, n := range problems {
		if n < 1 {
			return nil, fmt.Errorf("multichip: problem of size %d", n)
		}
		sum += n
		used += n * n
	}
	if sum > capacity {
		return nil, fmt.Errorf("multichip: problems need %d nodes, macrochip has %d", sum, capacity)
	}
	return &Packing{
		ChipsUsed:     k * k,
		CouplersUsed:  used,
		CouplersTotal: capacity * capacity,
		PerChip:       [][]int{append([]int(nil), problems...)},
	}, nil
}

// PackReconfigurable places the problems on independent chips of chipN
// nodes each (Fig 5's independent mode), first-fit-decreasing, with
// each chip solving its residents block-diagonally. Only the chips
// actually used count toward the coupler total — the waste Fig 4
// illustrates is avoided. Errors if any problem exceeds a single
// chip's capacity (it would need collective mode instead).
func PackReconfigurable(chipN int, problems []int) (*Packing, error) {
	if chipN < 1 {
		return nil, fmt.Errorf("multichip: PackReconfigurable(%d)", chipN)
	}
	sorted := append([]int(nil), problems...)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	var chips [][]int
	var free []int
	used := 0
	for _, n := range sorted {
		if n < 1 {
			return nil, fmt.Errorf("multichip: problem of size %d", n)
		}
		if n > chipN {
			return nil, fmt.Errorf("multichip: problem of %d nodes exceeds chip capacity %d (needs collective mode)", n, chipN)
		}
		used += n * n
		placed := false
		for i := range chips {
			if free[i] >= n {
				chips[i] = append(chips[i], n)
				free[i] -= n
				placed = true
				break
			}
		}
		if !placed {
			chips = append(chips, []int{n})
			free = append(free, chipN-n)
		}
	}
	return &Packing{
		ChipsUsed:     len(chips),
		CouplersUsed:  used,
		CouplersTotal: len(chips) * chipN * chipN,
		PerChip:       chips,
	}, nil
}
