package multichip

import (
	"mbrim/internal/obs"
)

// This file holds the span-tracing and partition-quality helpers the
// run modes share. Everything here is observational: no helper touches
// machine state, PRNG streams or the fabric ledger, so a seeded run is
// bit-identical with Config.Spans / Config.PairStats on or off. All
// emission happens at epoch barriers on the orchestration goroutine —
// the same determinism contract the flat event stream follows — with
// the single exception of chip.epochWallNS, which workers measure but
// barriers emit.

// emitChipSpans records each chip's just-finished epoch integration as
// a "chip_step" interval [startNS, startNS+epochNS] under the open
// epoch span, carrying the worker-measured wall time and the epoch's
// flip count. The returned handles (s.spChips) parent the per-chip
// "rk4_retry" intervals drainStepRetries may add.
func (s *System) emitChipSpans(startNS, epochNS float64) {
	sp := s.cfg.Spans
	if sp == nil {
		return
	}
	if cap(s.spChips) < len(s.chips) {
		s.spChips = make([]obs.Span, len(s.chips))
	}
	s.spChips = s.spChips[:len(s.chips)]
	for ci, c := range s.chips {
		s.spChips[ci] = sp.Complete("chip_step", s.spEpoch, ci,
			startNS, epochNS, c.epochWallNS, &obs.Event{Count: c.epochFlips})
	}
}

// spanPoint records barrier-resolved recovery work (retransmit bursts,
// resync bitmaps, repartitions) as an interval of durNS model time at
// the current barrier position, under the open epoch span. No-op when
// spans are off or no epoch is open (e.g. a direct unit-test call).
func (s *System) spanPoint(label string, chip int, durNS float64, count int64, stallNS float64) {
	sp := s.cfg.Spans
	if sp == nil {
		return
	}
	sp.Complete(label, s.spEpoch, chip, s.spPosNS, durNS, 0,
		&obs.Event{Count: count, StallNS: stallNS})
}

// emitPairStats measures, for every ordered pair of live chips
// (observer a, owner b), how many of b's owned spins a's shadow copy
// currently has wrong, and emits one PairStat event per pair: Chip is
// the observer, Peer the owner (1-based), Count the stale spins, Value
// the stale fraction of b's slice. This is the Burns & Huang
// partition-quality measure: called before boundary sync it reports
// the ignorance each chip annealed against during the epoch; called
// after (sequential mode) it reports the residual incoherence, which a
// healthy zero-ignorance baseline keeps at zero. Dead observers are
// skipped (their shadows drive nothing); dead owners are kept — peers'
// beliefs about a lost chip drifting is exactly the damage signal.
func (s *System) emitPairStats(tr obs.Tracer, epoch int, modelNS float64) {
	if tr == nil || len(s.chips) < 2 {
		return
	}
	for a, ca := range s.chips {
		if s.frt != nil && s.frt.dead[a] {
			continue
		}
		for b, cb := range s.chips {
			if a == b {
				continue
			}
			cur := cb.machine.Spins()
			stale := 0
			for li, g := range cb.owned {
				if ca.shadow[g] != cur[li] {
					stale++
				}
			}
			tr.Emit(obs.Event{Kind: obs.PairStat, Epoch: epoch, Chip: a, Peer: b + 1,
				ModelNS: modelNS, Count: int64(stale),
				Value: float64(stale) / float64(len(cb.owned))})
		}
	}
}
