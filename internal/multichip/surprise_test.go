package multichip

import (
	"testing"

	"mbrim/internal/metrics"
)

func TestEnergySurpriseEmitsSamples(t *testing.T) {
	m := kgraph(128, 1)
	samples := EnergySurprise(m, SurpriseConfig{
		Solvers: 4, EpochMoves: 10, Epochs: 5, Runs: 2, Seed: 2,
	})
	want := 2 * 5 * 4 // runs × epochs × solvers
	if len(samples) != want {
		t.Fatalf("%d samples, want %d", len(samples), want)
	}
	for _, s := range samples {
		if s.Ignorance < 0 || s.Ignorance > 1 {
			t.Fatalf("ignorance %v outside [0,1]", s.Ignorance)
		}
	}
}

func TestEnergySurpriseIgnoranceGrowsWithEpoch(t *testing.T) {
	// Fig 9's x-axis behaviour: longer epochs mean more external spins
	// change per epoch, so ignorance increases.
	m := kgraph(128, 3)
	mean := func(moves int) float64 {
		samples := EnergySurprise(m, SurpriseConfig{
			Solvers: 4, EpochMoves: moves, Epochs: 5, Runs: 3, Seed: 4,
		})
		xs := make([]float64, len(samples))
		for i, s := range samples {
			xs[i] = s.Ignorance
		}
		return metrics.Summarize(xs).Mean
	}
	small := mean(4)    // a handful of moves on a 32-spin partition
	large := mean(1000) // many sweeps' worth
	if large <= small {
		t.Fatalf("ignorance did not grow with epoch: %v (4 moves) vs %v (1000 moves)", small, large)
	}
}

func TestEnergySurpriseLargeEpochsMostlyNegative(t *testing.T) {
	// Fig 9's y-axis behaviour: with long epochs the surprise is
	// predominantly negative (the true state is worse than believed).
	// Partitions must be big enough (64 spins here) for cross-partition
	// interference to dominate sampling noise.
	m := kgraph(256, 5)
	samples := EnergySurprise(m, SurpriseConfig{
		Solvers: 4, EpochMoves: 1280, Epochs: 5, Runs: 3, Seed: 6,
	})
	neg := 0
	for _, s := range samples {
		if s.Surprise < 0 {
			neg++
		}
	}
	if frac := float64(neg) / float64(len(samples)); frac < 0.6 {
		t.Fatalf("only %.0f%% of large-epoch surprises negative", frac*100)
	}
}

func TestEnergySurpriseSmallEpochSmallerMagnitude(t *testing.T) {
	// The magnified-origin panel of Fig 9: with short epochs the
	// surprise magnitude shrinks.
	m := kgraph(128, 7)
	meanAbs := func(moves int) float64 {
		samples := EnergySurprise(m, SurpriseConfig{
			Solvers: 4, EpochMoves: moves, Epochs: 5, Runs: 3, Seed: 8,
		})
		xs := make([]float64, len(samples))
		for i, s := range samples {
			if s.Surprise < 0 {
				xs[i] = -s.Surprise
			} else {
				xs[i] = s.Surprise
			}
		}
		return metrics.Summarize(xs).Mean
	}
	small := meanAbs(4)
	large := meanAbs(2000)
	if small >= large {
		t.Fatalf("surprise magnitude not smaller for short epochs: %v vs %v", small, large)
	}
}

func TestEnergySurpriseDeterministic(t *testing.T) {
	m := kgraph(64, 9)
	cfg := SurpriseConfig{Solvers: 4, EpochMoves: 30, Epochs: 3, Runs: 2, Seed: 10}
	a := EnergySurprise(m, cfg)
	b := EnergySurprise(m, cfg)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs", i)
		}
	}
}

func TestEnergySurprisePanics(t *testing.T) {
	m := kgraph(16, 11)
	for name, f := range map[string]func(){
		"zero moves":       func() { EnergySurprise(m, SurpriseConfig{EpochMoves: 0}) },
		"too many solvers": func() { EnergySurprise(m, SurpriseConfig{Solvers: 17, EpochMoves: 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}
