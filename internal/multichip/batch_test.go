package multichip

import (
	"math"
	"testing"

	"mbrim/internal/ising"
	"mbrim/internal/sched"
)

func TestBatchFindsFerromagnetGround(t *testing.T) {
	n := 32
	m := ferromagnet(n)
	s := MustSystem(m, Config{Chips: 4, Seed: 1, EpochNS: 5})
	res := s.RunBatch(4, 100)
	want := -float64(n*(n-1)) / 2
	if res.BestEnergy != want {
		t.Fatalf("best energy %v, want ground %v", res.BestEnergy, want)
	}
}

func TestBatchEnergiesMatchStates(t *testing.T) {
	m := kgraph(48, 2)
	s := MustSystem(m, Config{Chips: 4, Seed: 3, EpochNS: 5})
	res := s.RunBatch(4, 60)
	if len(res.Jobs) != 4 || len(res.Energies) != 4 {
		t.Fatalf("jobs/energies badly sized: %d/%d", len(res.Jobs), len(res.Energies))
	}
	for j, state := range res.Jobs {
		if !ising.ValidSpins(state) {
			t.Fatalf("job %d state invalid", j)
		}
		if d := math.Abs(res.Energies[j] - m.Energy(state)); d > 1e-9 {
			t.Fatalf("job %d energy off by %v", j, d)
		}
	}
	if res.Energies[res.Best] != res.BestEnergy {
		t.Fatal("Best index inconsistent")
	}
	for _, e := range res.Energies {
		if e < res.BestEnergy {
			t.Fatal("BestEnergy not minimal")
		}
	}
}

func TestBatchDeterministic(t *testing.T) {
	m := kgraph(40, 4)
	a := MustSystem(m, Config{Chips: 4, Seed: 5, EpochNS: 5}).RunBatch(4, 40)
	b := MustSystem(m, Config{Chips: 4, Seed: 5, EpochNS: 5}).RunBatch(4, 40)
	if a.BestEnergy != b.BestEnergy || a.TrafficBytes != b.TrafficBytes {
		t.Fatal("same seed produced different batch runs")
	}
	for j := range a.Jobs {
		if ising.HammingDistance(a.Jobs[j], b.Jobs[j]) != 0 {
			t.Fatalf("job %d states differ", j)
		}
	}
}

func TestBatchJobsDiffer(t *testing.T) {
	// Different initial states must lead to genuinely different jobs.
	m := kgraph(64, 6)
	res := MustSystem(m, Config{Chips: 4, Seed: 7, EpochNS: 5}).RunBatch(4, 40)
	distinct := false
	for j := 1; j < len(res.Jobs); j++ {
		if ising.HammingDistance(res.Jobs[0], res.Jobs[j]) != 0 {
			distinct = true
		}
	}
	if !distinct {
		t.Fatal("all batch jobs identical")
	}
}

func TestBatchToleratesLongEpochs(t *testing.T) {
	// Fig 14's key contrast: batch-mode quality holds up at long
	// epochs where concurrent mode collapses. Compare degradation.
	m := kgraph(64, 8)
	const shortE, longE = 2.0, 25.0
	avg := func(f func(seed uint64) float64) float64 {
		var sum float64
		for i := 0; i < 4; i++ {
			sum += f(uint64(200 + i))
		}
		return sum / 4
	}
	concShort := avg(func(seed uint64) float64 {
		return MustSystem(m, Config{Chips: 4, Seed: seed, EpochNS: shortE}).RunConcurrent(100).Energy
	})
	concLong := avg(func(seed uint64) float64 {
		return MustSystem(m, Config{Chips: 4, Seed: seed, EpochNS: longE}).RunConcurrent(100).Energy
	})
	batchLong := avg(func(seed uint64) float64 {
		return MustSystem(m, Config{Chips: 4, Seed: seed, EpochNS: longE}).RunBatch(4, 100).BestEnergy
	})
	// Batch at long epochs must not be worse than concurrent at long
	// epochs (it should be much better; leave slack for noise).
	if batchLong > concLong+0.05*math.Abs(concLong) {
		t.Fatalf("batch (%v) worse than concurrent (%v) at long epochs", batchLong, concLong)
	}
	_ = concShort // reported by the harness; no strict assertion here
}

func TestBatchBitChangesNeverExceedFlips(t *testing.T) {
	m := kgraph(48, 9)
	res := MustSystem(m, Config{Chips: 4, Seed: 10, EpochNS: 5}).RunBatch(4, 50)
	if res.BitChanges > res.Flips {
		t.Fatalf("bit changes %d > flips %d", res.BitChanges, res.Flips)
	}
	if res.InducedBitChanges > res.BitChanges {
		t.Fatal("induced bit changes exceed bit changes")
	}
}

func TestBatchCoordinatedSavesTraffic(t *testing.T) {
	// Zero-coupling purity test, batch flavour: only kicks change
	// state; coordination must remove them from the wire.
	m := ising.NewModel(64)
	kicks := sched.Constant(0.05)
	plain := MustSystem(m, Config{Chips: 4, Seed: 11, EpochNS: 5, InducedFlip: kicks}).RunBatch(4, 50)
	coord := MustSystem(m, Config{Chips: 4, Seed: 11, EpochNS: 5, InducedFlip: kicks, Coordinated: true}).RunBatch(4, 50)
	if plain.TrafficBytes == 0 {
		t.Fatal("uncoordinated batch kicks generated no traffic")
	}
	if coord.TrafficBytes != 0 {
		t.Fatalf("coordinated batch still cost %v bytes", coord.TrafficBytes)
	}
}

func TestBatchStallsWhenStarved(t *testing.T) {
	m := kgraph(64, 12)
	res := MustSystem(m, Config{
		Chips: 4, Seed: 13, EpochNS: 5, Channels: 1, ChannelBytesPerNS: 0.001,
	}).RunBatch(4, 40)
	if res.StallNS <= 0 {
		t.Fatal("starved fabric did not stall batch mode")
	}
	if res.ElapsedNS <= res.ModelNS {
		t.Fatal("stall not reflected in elapsed time")
	}
}

func TestBatchTraceAndEpochStats(t *testing.T) {
	m := kgraph(32, 14)
	res := MustSystem(m, Config{
		Chips: 4, Seed: 15, EpochNS: 5, SampleEveryNS: 10, RecordEpochStats: true,
	}).RunBatch(4, 50)
	if len(res.Trace) == 0 {
		t.Fatal("no trace samples")
	}
	if len(res.EpochStats) != res.Epochs {
		t.Fatalf("%d stats for %d epochs", len(res.EpochStats), res.Epochs)
	}
	// Best-so-far trace must be non-increasing.
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i].Y > res.Trace[i-1].Y+1e-9 {
			t.Fatal("best-so-far energy increased")
		}
	}
}

func TestBatchMoreJobsThanChips(t *testing.T) {
	m := kgraph(32, 16)
	res := MustSystem(m, Config{Chips: 2, Seed: 17, EpochNS: 5}).RunBatch(6, 60)
	if len(res.Jobs) != 6 {
		t.Fatalf("%d jobs", len(res.Jobs))
	}
	for j, state := range res.Jobs {
		if !ising.ValidSpins(state) {
			t.Fatalf("job %d invalid", j)
		}
	}
}

func TestBatchPanics(t *testing.T) {
	m := ferromagnet(8)
	for name, f := range map[string]func(){
		"zero jobs":     func() { MustSystem(m, Config{Chips: 2}).RunBatch(0, 10) },
		"zero duration": func() { MustSystem(m, Config{Chips: 2}).RunBatch(2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}
