package multichip

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"sync"
	"time"

	"mbrim/internal/brim"
	"mbrim/internal/fault"
	"mbrim/internal/graph"
	"mbrim/internal/interconnect"
	"mbrim/internal/ising"
	"mbrim/internal/lattice"
	"mbrim/internal/metrics"
	"mbrim/internal/obs"
	"mbrim/internal/rng"
	"mbrim/internal/sched"
)

// Config parameterizes a multiprocessor system.
type Config struct {
	// Chips is the number of processors. Must be >= 1 and <= N.
	Chips int
	// Partition optionally assigns spins to chips explicitly — one
	// index list per chip, jointly covering 0..N-1 exactly once. It
	// overrides the default contiguous equal split and permits
	// heterogeneous chips (e.g. mixing 8192- and 4096-spin dies).
	// len(Partition) must equal Chips when set.
	Partition [][]int
	// EpochNS is the model time between fabric synchronizations.
	// Default 3.3 (the paper's reference epoch).
	EpochNS float64
	// FlipIntervalNS is the model time between induced-flip draws.
	// Default min(EpochNS, 1).
	FlipIntervalNS float64
	// InducedFlip is the per-spin kick probability schedule over run
	// progress. Default decays 0.08 → 0.
	InducedFlip sched.Schedule
	// Coordinated enables the synchronized-PRNG induced-flip
	// optimization of Sec 5.4.2: kicks are reproduced on every chip
	// and never transmitted.
	Coordinated bool
	// Channels is the number of dedicated egress channels per chip.
	// Default 3 (the mBRIM_HB configuration).
	Channels int
	// ChannelBytesPerNS is each channel's bandwidth in bytes/ns
	// (1 GB/s = 1 byte/ns). Zero models unlimited bandwidth — the
	// 3D-integrated mBRIM_3D.
	ChannelBytesPerNS float64
	// Topology selects the fabric congestion model (dedicated links,
	// shared bus, or ring). Default: the paper's dedicated channels.
	Topology interconnect.Topology
	// Backend selects the coupling-matrix layout used for chip
	// extraction and the per-chip dynamics (lattice.Auto resolves by
	// measured density). Every backend is bit-identical; only host time
	// moves.
	Backend lattice.Kind
	// Brim configures the per-chip dynamics. Its InducedFlip schedule
	// is ignored (the runtime coordinates kicks); its Scale is
	// overridden with the global normalization and its Backend follows
	// Config.Backend.
	Brim brim.Config
	// Seed drives the initial state and all stochastic choices.
	Seed uint64
	// SampleEveryNS, if > 0, records an (elapsed ns, energy) trace
	// sample at least every so many ns of elapsed time.
	SampleEveryNS float64
	// Probes enables the per-epoch ignorance / energy-surprise
	// measurement (costs O(N²) per epoch per chip).
	Probes bool
	// RecordEpochStats keeps per-epoch flip/bit-change/stall counts
	// (the time axes of Figs 13 and 15).
	RecordEpochStats bool
	// Parallel runs the chips' epoch integrations on separate
	// goroutines. Within an epoch chips touch only their own state
	// (shadows change at boundaries), so the result is bit-identical
	// to the sequential simulation — only the host wall time changes.
	Parallel bool
	// Tracer, if non-nil, receives the run's typed event stream
	// (ChipStep, EpochSync, FabricTransfer, InducedKick, Probe,
	// EnergySample). Events are emitted at epoch barriers in chip
	// order, so the stream is deterministic for a given seed and
	// config regardless of Parallel. Nil disables tracing at the cost
	// of one branch per epoch.
	Tracer obs.Tracer
	// Metrics, if non-nil, accumulates run totals (flips, bit changes,
	// stall and traffic) and per-epoch stall histograms into the named
	// instruments of the registry.
	Metrics *obs.Registry
	// Faults configures the deterministic fault-injection layer and
	// its recovery policies. The zero value injects nothing and leaves
	// every run mode bit-identical to a fault-free simulation.
	Faults fault.Config
	// Spans, if non-nil, opens hierarchical span events (epoch → chip
	// step → sync / fabric settle / recovery) in addition to the flat
	// stream. The spanner's tracer is the span sink; Tracer consumers
	// see span events only if the caller (e.g. internal/core) built the
	// spanner over the same tracer. Span IDs are allocated at epoch
	// barriers in chip order, so the stream stays deterministic under
	// Parallel; only wall-duration fields vary between hosts. Emission
	// is read-only — trajectories are bit-identical with spans on or
	// off.
	Spans *obs.Spanner
	// SpanRoot is the interval the run's epoch spans nest under
	// (internal/core passes its "solve" span; the zero value roots the
	// epochs directly).
	SpanRoot obs.Span
	// PairStats emits one PairStat event per ordered live chip pair per
	// epoch — the observer's shadow-spin disagreement against the
	// owner's true readout, measured before boundary sync repairs it
	// (after it, in sequential mode — the zero-ignorance baseline).
	// Costs O(chips·N) comparisons per epoch; off by default. Requires
	// Tracer. Batch mode emits nothing: chips hold different jobs, so
	// cross-chip shadow agreement is not defined there.
	PairStats bool
}

// withDefaults fills defaults and validates user-supplied fields,
// returning an error (not a panic) at this public configuration
// boundary.
func (c *Config) withDefaults(n int) (Config, error) {
	out := *c
	if out.Chips == 0 {
		out.Chips = 4
	}
	if out.Chips < 1 || out.Chips > n {
		return out, fmt.Errorf("multichip: Chips=%d for N=%d", out.Chips, n)
	}
	if out.EpochNS == 0 {
		out.EpochNS = 3.3
	}
	if out.EpochNS <= 0 || math.IsNaN(out.EpochNS) {
		return out, fmt.Errorf("multichip: EpochNS=%v", out.EpochNS)
	}
	if out.FlipIntervalNS == 0 {
		out.FlipIntervalNS = math.Min(out.EpochNS, 1)
	}
	if out.FlipIntervalNS <= 0 || math.IsNaN(out.FlipIntervalNS) {
		return out, fmt.Errorf("multichip: FlipIntervalNS=%v", out.FlipIntervalNS)
	}
	if out.InducedFlip == nil {
		out.InducedFlip = sched.Linear{From: 0.08, To: 0}
	}
	if out.Channels == 0 {
		out.Channels = 3
	}
	if out.Channels < 1 {
		return out, fmt.Errorf("multichip: Channels=%d", out.Channels)
	}
	if err := out.Faults.Validate(out.Chips); err != nil {
		return out, err
	}
	out.Brim.Backend = out.Backend
	return out, nil
}

// SurpriseSample is one Fig 9 data point: at an epoch boundary, one
// chip's degree of ignorance (fraction of remote spins whose shadow is
// stale) and its energy surprise E(believed) − E(true).
type SurpriseSample struct {
	Epoch     int
	Chip      int
	Ignorance float64
	Surprise  float64
}

// EpochStat is one epoch's activity record — the per-epoch series
// behind Figs 13 and 15.
type EpochStat struct {
	Epoch             int
	Flips             int64
	InducedFlips      int64
	BitChanges        int64
	InducedBitChanges int64
	StallNS           float64
}

// Result reports a multiprocessor run.
type Result struct {
	Spins  []int8
	Energy float64
	// ModelNS is annealing time; StallNS is congestion hold time;
	// ElapsedNS is their sum — the time-to-solution axis of Fig 12.
	ModelNS, StallNS, ElapsedNS float64
	// Flips counts all readout changes across chips; InducedFlips the
	// kick-caused subset; BitChanges the net changes actually
	// synchronized over the fabric (Fig 13's two curves);
	// InducedBitChanges the synchronized changes whose most recent
	// cause was an induced kick (Fig 15's numerator).
	Flips, InducedFlips, BitChanges, InducedBitChanges int64
	// TrafficBytes is total fabric traffic; PeakDemandBytesPerNS the
	// worst per-chip per-epoch egress demand (Sec 6.5).
	TrafficBytes, PeakDemandBytesPerNS float64
	// Epochs performed.
	Epochs int
	// Trace holds (elapsed ns, energy) samples if sampling was on.
	Trace []metrics.Point
	// Surprises holds Fig 9 probe samples if Probes was on.
	Surprises []SurpriseSample
	// EpochStats holds per-epoch activity if RecordEpochStats was on.
	EpochStats []EpochStat
	// FaultStats ledgers injected faults and recovery work when the
	// fault layer was enabled (zero otherwise).
	FaultStats fault.Stats
	// LiveChips is the number of chips still operating at run end —
	// less than the configured count after an unrecovered chip loss,
	// and after a repartition (the survivors).
	LiveChips int
}

// System is a k-chip multiprocessor holding one problem sliced over
// its chips. Create with NewSystem, then run one mode.
type System struct {
	model *ising.Model
	cfg   Config
	n     int
	// lat is the coupling view chip extraction scans; built once per
	// system and shared by every (re)partition.
	lat    lattice.Coupling
	scale  float64
	chips  []*chip
	fabric *interconnect.Fabric
	// receiverBelief[c][li] is what every other chip currently
	// believes chip c's owned spin li holds. Boundary sync sends only
	// disagreements; coordinated kicks update it for free.
	receiverBelief [][]int8
	// induceRNG[c] drives chip c's kick draws: clones of one master
	// when coordinated, independent forks otherwise.
	induceRNG []*rng.Source
	initial   []int8
	// frt is the fault-injection runtime; nil when Config.Faults is
	// disabled, which keeps every run mode bit-identical to the
	// fault-free simulation.
	frt *faultRuntime

	// Live span context, valid only while a run-mode epoch is open.
	// spEpoch is the current epoch (or round) interval; spChips the
	// current chip step/turn handles (parents for rk4_retry intervals);
	// spPosNS the barrier position point intervals (recovery spans)
	// anchor at.
	spEpoch obs.Span
	spChips []obs.Span
	spPosNS float64
}

// NewSystem slices the model over cfg.Chips chips in contiguous
// blocks and builds the fabric. Invalid user configuration is
// reported as an error; only internal invariant violations panic.
func NewSystem(m *ising.Model, cfg Config) (*System, error) {
	n := m.N()
	c, err := cfg.withDefaults(n)
	if err != nil {
		return nil, err
	}
	s := &System{model: m, cfg: c, n: n}
	s.lat = m.View(c.Backend)
	s.scale = m.MaxRowNorm2()
	if s.scale == 0 {
		s.scale = 1
	}
	master := rng.New(c.Seed)
	s.initial = ising.RandomSpins(n, master)
	parts := c.Partition
	if parts == nil {
		parts = graph.BlockPartition(n, c.Chips)
	} else {
		if len(parts) != c.Chips {
			return nil, fmt.Errorf("multichip: Partition has %d parts for %d chips", len(parts), c.Chips)
		}
		seen := make([]bool, n)
		for pi, part := range parts {
			if len(part) == 0 {
				return nil, fmt.Errorf("multichip: Partition part %d is empty", pi)
			}
			for _, g := range part {
				if g < 0 || g >= n || seen[g] {
					return nil, fmt.Errorf("multichip: Partition spin %d missing, repeated or out of range", g)
				}
				seen[g] = true
			}
		}
		for g, ok := range seen {
			if !ok {
				return nil, fmt.Errorf("multichip: Partition does not cover spin %d", g)
			}
		}
	}
	s.chips = make([]*chip, c.Chips)
	s.receiverBelief = make([][]int8, c.Chips)
	s.induceRNG = make([]*rng.Source, c.Chips)
	kickMaster := master.Fork(0xC0)
	for i, part := range parts {
		bc := c.Brim
		bc.Seed = c.Seed + uint64(i)
		s.chips[i] = newChip(i, m, s.lat, part, s.scale, bc, c.EpochNS, s.initial)
		s.receiverBelief[i] = s.chips[i].ownedSpins()
		if c.Coordinated {
			s.induceRNG[i] = kickMaster.Clone()
		} else {
			s.induceRNG[i] = kickMaster.Fork(uint64(i) + 1)
		}
	}
	s.fabric, err = interconnect.New(c.Chips, c.Channels, c.ChannelBytesPerNS)
	if err != nil {
		return nil, err
	}
	if err := s.fabric.SetTopology(c.Topology); err != nil {
		return nil, err
	}
	if c.Faults.Enabled() {
		inj, err := fault.NewInjector(c.Faults, c.Chips)
		if err != nil {
			return nil, err
		}
		s.frt = newFaultRuntime(inj)
	}
	return s, nil
}

// MustSystem is NewSystem for callers with statically known-good
// configuration (tests, benchmarks, experiment harnesses); it panics
// on configuration errors.
func MustSystem(m *ising.Model, cfg Config) *System {
	s, err := NewSystem(m, cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// NumChips returns the chip count.
func (s *System) NumChips() int { return len(s.chips) }

// Fabric exposes the fabric for traffic inspection.
func (s *System) Fabric() *interconnect.Fabric { return s.fabric }

// GlobalSpins assembles the true global state from every chip's
// current readout.
func (s *System) GlobalSpins() []int8 {
	out := make([]int8, s.n)
	for _, c := range s.chips {
		spins := c.machine.Spins()
		for li, g := range c.owned {
			out[g] = spins[li]
		}
	}
	return out
}

// drawInduced performs one induced-flip draw for chip c at the given
// schedule progress. Coordinated mode draws a decision for every
// global spin (same stream on every chip): owned spins get a kick,
// remote spins get their shadow toggled for free. Uncoordinated mode
// draws only for owned spins; the changes ride the next boundary sync.
func (s *System) drawInduced(ci int, progress float64) {
	prob := s.cfg.InducedFlip.At(progress)
	c := s.chips[ci]
	r := s.induceRNG[ci]
	if s.cfg.Coordinated {
		for g := 0; g < s.n; g++ {
			if !r.Bool(prob) {
				continue
			}
			if li, own := c.local[g]; own {
				c.machine.Induce(li)
				c.epochKicks++
				// Receivers toggled their shadows too; their belief
				// tracks the kick without traffic.
				s.receiverBelief[ci][li] = -s.receiverBelief[ci][li]
			} else {
				c.applyShadowToggle(g)
			}
		}
		return
	}
	for li := range c.owned {
		if r.Bool(prob) {
			c.machine.Induce(li)
			c.epochKicks++
		}
	}
}

// update is one item of a boundary broadcast payload: the owner's
// local index li / global index g now holds v; induced records whether
// the change was last caused by a kick (Fig 15 accounting).
type update struct {
	li, g   int
	v       int8
	induced bool
}

// syncEpoch performs the boundary synchronization: every chip
// broadcasts the owned spins that differ from what receivers believe,
// the fabric charges the traffic, and shadows update. It returns the
// number of bit changes communicated and how many of them were last
// caused by an induced kick. epochNo and tr feed the fault layer; with
// faults disabled the path is byte-identical to the seed simulation.
func (s *System) syncEpoch(epochNo int, tr obs.Tracer) (total, induced int64) {
	if s.frt != nil {
		// Last epoch's delayed broadcasts land first — late, in order.
		s.deliverPending()
	}
	if len(s.chips) == 1 {
		// No receivers: nothing is communicated. Keep the belief
		// ledger coherent anyway.
		c := s.chips[0]
		copy(s.receiverBelief[0], c.machine.Spins())
		return 0, 0
	}
	for ci, c := range s.chips {
		if s.frt != nil && s.frt.dead[ci] {
			continue
		}
		cur := c.machine.Spins()
		var ups []update
		for li, g := range c.owned {
			if cur[li] != s.receiverBelief[ci][li] {
				ups = append(ups, update{li, g, cur[li], c.lastFlipInduced[li]})
			}
		}
		if len(ups) == 0 {
			continue
		}
		if s.frt != nil {
			t, i := s.faultSend(epochNo, ci, ups, tr)
			total += t
			induced += i
			continue
		}
		for _, u := range ups {
			s.receiverBelief[ci][u.li] = u.v
			if u.induced {
				induced++
			}
		}
		total += int64(len(ups))
		s.fabric.Record(ci, interconnect.DeltaSyncBytes(len(ups), len(c.owned), len(s.chips)-1), "sync")
		for di, d := range s.chips {
			if di == ci {
				continue
			}
			for _, u := range ups {
				d.applyShadowUpdate(u.g, u.v)
			}
		}
	}
	return total, induced
}

// probe measures each chip's ignorance and energy surprise against the
// true global state, *before* boundary sync repairs the shadows, and
// emits one Probe event per chip.
func (s *System) probe(epoch int, tr obs.Tracer) {
	truth := s.GlobalSpins()
	trueEnergy := s.model.Energy(truth)
	for ci, c := range s.chips {
		stale := 0
		remote := s.n - len(c.owned)
		for g := 0; g < s.n; g++ {
			if _, own := c.local[g]; own {
				continue
			}
			if c.shadow[g] != truth[g] {
				stale++
			}
		}
		ign := 0.0
		if remote > 0 {
			ign = float64(stale) / float64(remote)
		}
		believed := s.model.Energy(c.shadow)
		tr.Emit(obs.Event{
			Kind:  obs.Probe,
			Epoch: epoch,
			Chip:  ci,
			Value: believed - trueEnergy,
			Aux:   ign,
		})
	}
}

// RunConcurrent anneals one job across all chips for durationNS of
// model time in concurrent mode (Sec 5.4): every chip integrates its
// slice continuously, exchanging net spin changes at each epoch
// boundary, stalling when the fabric cannot keep up. It panics on
// integrator divergence; callers that need lifecycle control use
// RunConcurrentCtx.
func (s *System) RunConcurrent(durationNS float64) *Result {
	res, _, err := s.RunConcurrentCtx(context.Background(), durationNS, nil)
	if err != nil {
		panic(err)
	}
	return res
}

// RunConcurrentCtx is RunConcurrent with lifecycle control.
// Cancellation stops the run at the next epoch barrier and returns the
// partial result plus a resumable Checkpoint alongside ctx.Err();
// resuming from that checkpoint on a freshly built identical System
// continues bit-identically to a run that was never interrupted.
// Integrator divergence aborts with the typed error (no checkpoint —
// the mid-epoch cut is not a consistent state).
func (s *System) RunConcurrentCtx(ctx context.Context, durationNS float64, resume *Checkpoint) (*Result, *Checkpoint, error) {
	if durationNS <= 0 {
		panic(fmt.Sprintf("multichip: duration=%v", durationNS))
	}
	if ctx == nil {
		ctx = context.Background()
	}
	cfg := s.cfg
	res := &Result{}
	nextSample := 0.0
	elapsed := 0.0
	model := 0.0
	if resume != nil {
		if err := s.applyCheckpoint(resume, ModeConcurrent, durationNS, 0); err != nil {
			return nil, nil, err
		}
		// Machine horizons were restored verbatim (after a repartition
		// they hold the remaining time, not the full duration), so they
		// are not reset here.
		res.Epochs = resume.EpochsDone
		res.BitChanges = resume.BitChanges
		res.InducedBitChanges = resume.InducedBitChanges
		res.Trace = append([]metrics.Point(nil), resume.Trace...)
		res.EpochStats = append([]EpochStat(nil), resume.EpochStats...)
		res.Surprises = append([]SurpriseSample(nil), resume.Surprises...)
		model = resume.ModelNS
		elapsed = resume.ElapsedNS
		nextSample = resume.NextSampleNS
	} else {
		for _, c := range s.chips {
			c.machine.SetHorizon(durationNS)
		}
	}
	rc := &runCollector{}
	if cfg.RecordEpochStats {
		rc.epochStats = &res.EpochStats
	}
	if cfg.Probes {
		rc.surprises = &res.Surprises
	}
	if cfg.SampleEveryNS > 0 {
		rc.trace = &res.Trace
	}
	tr := s.runTracer(rc)
	lastBytes := s.fabric.TotalBytes()
	done := ctx.Done()
	for model < durationNS-1e-9 {
		select {
		case <-done:
			ck := &Checkpoint{Mode: ModeConcurrent, DurationNS: durationNS}
			s.capturePosition(ck, res, model, elapsed, nextSample)
			s.captureInto(ck)
			s.collect(ModeConcurrent, res, model, elapsed)
			return res, ck, ctx.Err()
		default:
		}
		epoch := math.Min(cfg.EpochNS, durationNS-model)
		if sp := cfg.Spans; sp != nil {
			// The epoch interval opens on the elapsed (model + stall)
			// timeline, where epochs tile without overlap; recovery work
			// resolved before integration anchors at its start.
			s.spEpoch = sp.Start("epoch", cfg.SpanRoot, -1, elapsed)
			s.spPosNS = elapsed
		}
		if s.frt != nil {
			// Chip loss (with optional repartition) and this epoch's
			// stall draws, resolved at the barrier in chip order.
			s.beginFaultEpoch(res.Epochs+1, durationNS-model, tr)
		}
		// Each chip integrates the epoch in flip-interval chunks;
		// chips only read each other's state through shadows, which
		// change at boundaries, so this is faithful to parallel
		// hardware whether the host runs it sequentially or on one
		// goroutine per chip.
		badChip, chipErr := s.forEachChip(func(ci int, c *chip) error {
			if cfg.Spans != nil {
				defer func(w0 time.Time) {
					c.epochWallNS = time.Since(w0).Nanoseconds()
				}(time.Now())
			}
			c.resetEpochCounters()
			if s.frt != nil && s.frt.dead[ci] {
				// A lost chip stops integrating AND stops clocking its
				// kick PRNG; coordinated peers keep toggling its
				// shadows blindly — that divergence is the damage.
				return nil
			}
			// A transiently stalled chip holds its integrator but its
			// digital PRNG keeps clocking, so coordinated clones stay
			// aligned across the fleet.
			hold := s.frt != nil && s.frt.holds[ci]
			t := 0.0
			for t < epoch-1e-9 {
				chunk := math.Min(cfg.FlipIntervalNS, epoch-t)
				if !hold {
					if err := c.machine.Run(chunk); err != nil {
						return err
					}
				}
				t += chunk
				s.drawInduced(ci, (model+t)/durationNS)
			}
			return nil
		})
		if chipErr != nil {
			emitIf(tr, obs.Event{Kind: obs.Numerical, Label: "divergence",
				Epoch: res.Epochs + 1, Chip: badChip, ModelNS: model})
			return nil, nil, fmt.Errorf("multichip: chip %d: %w", badChip, chipErr)
		}
		model += epoch
		res.Epochs++
		s.emitChipSpans(elapsed, epoch)
		s.drainStepRetries(tr, res.Epochs, model)
		if tr != nil {
			s.emitChipEpoch(tr, res.Epochs, model)
		}
		if cfg.Probes {
			s.probe(res.Epochs, tr)
		}
		if cfg.PairStats {
			// Pre-sync: the staleness each chip actually annealed
			// against this epoch.
			s.emitPairStats(tr, res.Epochs, model)
		}
		s.spPosNS = elapsed + epoch
		var syncSpan obs.Span
		if sp := cfg.Spans; sp != nil {
			syncSpan = sp.Start("sync", s.spEpoch, -1, elapsed+epoch)
		}
		changes, inducedChanges := s.syncEpoch(res.Epochs, tr)
		res.BitChanges += changes
		res.InducedBitChanges += inducedChanges
		if tr != nil {
			tr.Emit(obs.Event{Kind: obs.EpochSync, Epoch: res.Epochs, ModelNS: model,
				Count: changes, Induced: inducedChanges})
		}
		if s.frt != nil {
			// Watchdog resyncs record fabric traffic, so they must land
			// inside the open epoch for congestion to see them.
			s.watchdog(res.Epochs, tr)
		}
		syncSpan.End(elapsed+epoch, &obs.Event{Count: changes})
		stall := s.fabric.EndEpochSpanned(epoch, cfg.Spans, s.spEpoch, elapsed+epoch)
		if s.frt != nil {
			// Recovery stall (retransmit backoff, repartition
			// reprogramming) holds the machine just like congestion.
			stall += s.frt.takeEpochStall(s.fabric)
		}
		elapsed += epoch + stall
		if tr != nil {
			total := s.fabric.TotalBytes()
			tr.Emit(obs.Event{Kind: obs.FabricTransfer, Epoch: res.Epochs, ModelNS: model,
				Value: total - lastBytes, StallNS: stall})
			lastBytes = total
		}
		s.spEpoch.End(elapsed, &obs.Event{StallNS: stall})
		s.spEpoch = obs.Span{}
		s.cfg.Metrics.Histogram("multichip.epoch_stall_ns").Observe(stall)
		if cfg.SampleEveryNS > 0 && elapsed >= nextSample {
			tr.Emit(obs.Event{Kind: obs.EnergySample, Epoch: res.Epochs, ModelNS: elapsed,
				Value: s.model.Energy(s.GlobalSpins())})
			nextSample = elapsed + cfg.SampleEveryNS
		}
	}
	s.collect(ModeConcurrent, res, model, elapsed)
	return res, nil, nil
}

// capturePosition fills a checkpoint's loop-position and partial-result
// fields from a single-job run's state at an epoch barrier.
func (s *System) capturePosition(ck *Checkpoint, res *Result, model, elapsed, nextSample float64) {
	ck.EpochsDone = res.Epochs
	ck.ModelNS = model
	ck.ElapsedNS = elapsed
	ck.NextSampleNS = nextSample
	ck.BitChanges = res.BitChanges
	ck.InducedBitChanges = res.InducedBitChanges
	ck.Trace = append([]metrics.Point(nil), res.Trace...)
	ck.EpochStats = append([]EpochStat(nil), res.EpochStats...)
	ck.Surprises = append([]SurpriseSample(nil), res.Surprises...)
}

// drainStepRetries reports each chip's integrator-guardrail activity
// for the epoch that just closed — halved-dt retries spent keeping the
// step finite — as Numerical events (in chip order, at the barrier)
// and a counter. Draining at every barrier also keeps the per-epoch
// retry ledger out of checkpoints: it is always zero at a barrier.
func (s *System) drainStepRetries(tr obs.Tracer, epoch int, modelNS float64) {
	for ci, c := range s.chips {
		r := c.machine.TakeEpochRetries()
		if r == 0 {
			continue
		}
		emitIf(tr, obs.Event{Kind: obs.Numerical, Label: "step-retry",
			Epoch: epoch, Chip: ci, ModelNS: modelNS, Count: r})
		if sp := s.cfg.Spans; sp != nil && ci < len(s.spChips) {
			// A point interval at the chip's step/turn start: the epoch's
			// guardrail retries, nested where they were spent.
			parent := s.spChips[ci]
			sp.Complete("rk4_retry", parent, ci, parent.StartNS(), 0, 0,
				&obs.Event{Count: r})
		}
		s.cfg.Metrics.Counter("brim.step_retries").Add(r)
		if s.cfg.Metrics != nil {
			s.cfg.Metrics.CounterWith("brim.chip_step_retries",
				obs.Labels{"chip": strconv.Itoa(ci)}).Add(r)
		}
	}
}

// forEachChip applies f to every chip, on goroutines when the
// configuration asks for host parallelism. Callers must ensure f(ci)
// touches only chip ci's state. On failure it reports the lowest
// failing chip index and its error (so the outcome is deterministic
// regardless of Parallel); otherwise (-1, nil).
func (s *System) forEachChip(f func(ci int, c *chip) error) (int, error) {
	if !s.cfg.Parallel || len(s.chips) == 1 {
		for ci, c := range s.chips {
			if err := f(ci, c); err != nil {
				return ci, err
			}
		}
		return -1, nil
	}
	errs := make([]error, len(s.chips))
	var wg sync.WaitGroup
	for ci, c := range s.chips {
		wg.Add(1)
		go func(ci int, c *chip) {
			defer wg.Done()
			errs[ci] = f(ci, c)
		}(ci, c)
	}
	wg.Wait()
	for ci, err := range errs {
		if err != nil {
			return ci, err
		}
	}
	return -1, nil
}

// collect fills the common result fields.
func (s *System) collect(mode string, res *Result, model, elapsed float64) {
	res.ModelNS = model
	res.ElapsedNS = elapsed
	res.StallNS = s.fabric.StallNS()
	res.TrafficBytes = s.fabric.TotalBytes()
	res.PeakDemandBytesPerNS = s.fabric.PeakDemand()
	for ci, c := range s.chips {
		res.Flips += c.machine.Flips()
		res.InducedFlips += c.machine.InducedFlips()
		if s.cfg.Metrics != nil {
			// Per-chip flip attribution for the exposition's chip
			// label; the unlabeled multichip.flips stays the total.
			s.cfg.Metrics.CounterWith("multichip.chip_flips",
				obs.Labels{"chip": strconv.Itoa(ci)}).Add(c.machine.Flips())
		}
	}
	res.Spins = s.GlobalSpins()
	res.Energy = s.model.Energy(res.Spins)
	res.LiveChips = s.liveChips()
	if s.frt != nil {
		res.FaultStats = s.frt.stats
	}
	s.recordRunMetrics(mode, res.Flips, res.InducedFlips, res.BitChanges, res.InducedBitChanges,
		res.StallNS, res.TrafficBytes, res.Epochs)
}
