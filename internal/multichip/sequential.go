package multichip

import (
	"context"
	"fmt"
	"math"

	"mbrim/internal/metrics"
	"mbrim/internal/obs"
)

// RunSequential anneals one job with the chips taking turns: in every
// round each chip runs one epoch *alone* while the others hold, and
// its state changes are synchronized before the next chip starts. No
// chip ever works against a stale view — the "running the solvers
// sequentially (without any ignorance)" baseline of Sec 5.4.1 — but
// nothing overlaps, so the elapsed time is chips× the annealing each
// chip receives. The paper's empirical claim is that concurrent
// operation with short epochs matches or beats this mode's quality
// while being chips× faster; RunSequential exists so that claim can be
// tested rather than assumed.
//
// durationNS is the annealing time each chip receives (matching
// RunConcurrent's semantics so qualities are comparable at equal
// per-chip annealing). It panics on integrator divergence; callers
// that need lifecycle control use RunSequentialCtx.
func (s *System) RunSequential(durationNS float64) *Result {
	res, _, err := s.RunSequentialCtx(context.Background(), durationNS, nil)
	if err != nil {
		panic(err)
	}
	return res
}

// RunSequentialCtx is RunSequential with lifecycle control, with the
// same contract as RunConcurrentCtx: cancellation returns the partial
// result plus a resumable Checkpoint alongside ctx.Err() (checked at
// round barriers, where every chip has had its turn); divergence
// aborts with the typed error and no checkpoint.
func (s *System) RunSequentialCtx(ctx context.Context, durationNS float64, resume *Checkpoint) (*Result, *Checkpoint, error) {
	if durationNS <= 0 {
		panic(fmt.Sprintf("multichip: duration=%v", durationNS))
	}
	if ctx == nil {
		ctx = context.Background()
	}
	cfg := s.cfg
	res := &Result{}
	elapsed := 0.0
	model := 0.0
	nextSample := 0.0
	if resume != nil {
		if err := s.applyCheckpoint(resume, ModeSequential, durationNS, 0); err != nil {
			return nil, nil, err
		}
		res.Epochs = resume.EpochsDone
		res.BitChanges = resume.BitChanges
		res.InducedBitChanges = resume.InducedBitChanges
		res.Trace = append([]metrics.Point(nil), resume.Trace...)
		res.EpochStats = append([]EpochStat(nil), resume.EpochStats...)
		model = resume.ModelNS
		elapsed = resume.ElapsedNS
		nextSample = resume.NextSampleNS
	} else {
		for _, c := range s.chips {
			c.machine.SetHorizon(durationNS)
		}
	}
	rc := &runCollector{}
	if cfg.RecordEpochStats {
		rc.epochStats = &res.EpochStats
	}
	if cfg.SampleEveryNS > 0 {
		rc.trace = &res.Trace
	}
	tr := s.runTracer(rc)
	lastBytes := s.fabric.TotalBytes()
	done := ctx.Done()
	for model < durationNS-1e-9 {
		select {
		case <-done:
			ck := &Checkpoint{Mode: ModeSequential, DurationNS: durationNS}
			s.capturePosition(ck, res, model, elapsed, nextSample)
			s.captureInto(ck)
			s.collect(ModeSequential, res, model, elapsed)
			return res, ck, ctx.Err()
		default:
		}
		epoch := math.Min(cfg.EpochNS, durationNS-model)
		if sp := cfg.Spans; sp != nil {
			// One "epoch" interval per round; each chip's exclusive turn
			// (integrate + sync) nests inside it as a "chip_turn".
			s.spEpoch = sp.Start("epoch", cfg.SpanRoot, -1, elapsed)
			s.spPosNS = elapsed
		}
		if s.frt != nil {
			s.beginFaultEpoch(res.Epochs+1, durationNS-model, tr)
		}
		for ci, c := range s.chips {
			c.resetEpochCounters()
			if s.frt != nil && s.frt.dead[ci] {
				// A lost chip's turn is skipped outright; the scheduler
				// knows it is gone, so no wall time is spent on it.
				continue
			}
			var turnSpan obs.Span
			if sp := cfg.Spans; sp != nil {
				turnSpan = sp.Start("chip_turn", s.spEpoch, ci, elapsed)
				if len(s.spChips) != len(s.chips) {
					s.spChips = make([]obs.Span, len(s.chips))
				}
				s.spChips[ci] = turnSpan
				s.spPosNS = elapsed + epoch
			}
			// A transiently stalled chip still occupies its turn on the
			// wall clock — the hold is physical — but integrates
			// nothing; its kick PRNG keeps clocking.
			hold := s.frt != nil && s.frt.holds[ci]
			t := 0.0
			for t < epoch-1e-9 {
				chunk := math.Min(cfg.FlipIntervalNS, epoch-t)
				if !hold {
					if err := c.machine.Run(chunk); err != nil {
						emitIf(tr, obs.Event{Kind: obs.Numerical, Label: "divergence",
							Epoch: res.Epochs + 1, Chip: ci, ModelNS: model + t})
						return nil, nil, fmt.Errorf("multichip: chip %d: %w", ci, err)
					}
				}
				t += chunk
				s.drawInduced(ci, (model+t)/durationNS)
			}
			if tr != nil {
				tr.Emit(obs.Event{Kind: obs.ChipStep, Epoch: res.Epochs + 1, Chip: ci,
					ModelNS: model + epoch, Count: c.epochFlips, Induced: c.epochInducedFlips})
				if c.epochKicks > 0 {
					tr.Emit(obs.Event{Kind: obs.InducedKick, Epoch: res.Epochs + 1, Chip: ci,
						ModelNS: model + epoch, Count: c.epochKicks})
				}
			}
			// Immediate synchronization: the next chip sees this one's
			// fresh state. Traffic is charged exactly as in concurrent
			// mode; the difference is purely that no work overlaps.
			var syncSpan obs.Span
			if sp := cfg.Spans; sp != nil {
				syncSpan = sp.Start("sync", turnSpan, ci, elapsed+epoch)
			}
			changes, inducedChanges := s.syncEpoch(res.Epochs+1, tr)
			res.BitChanges += changes
			res.InducedBitChanges += inducedChanges
			if tr != nil {
				tr.Emit(obs.Event{Kind: obs.EpochSync, Epoch: res.Epochs + 1, Chip: ci,
					ModelNS: model + epoch, Count: changes, Induced: inducedChanges})
			}
			syncSpan.End(elapsed+epoch, &obs.Event{Count: changes})
			// Every chip's epoch occupies the wall clock: no overlap.
			elapsed += epoch
			turnSpan.End(elapsed, nil)
		}
		if cfg.PairStats {
			// Post-sync residual: a healthy zero-ignorance baseline
			// reports zero disagreement here every round.
			s.emitPairStats(tr, res.Epochs+1, model+epoch)
		}
		s.spPosNS = elapsed
		if s.frt != nil {
			s.watchdog(res.Epochs+1, tr)
		}
		stall := s.fabric.EndEpochSpanned(epoch, cfg.Spans, s.spEpoch, elapsed)
		if s.frt != nil {
			stall += s.frt.takeEpochStall(s.fabric)
		}
		elapsed += stall
		model += epoch
		res.Epochs++
		s.spEpoch.End(elapsed, &obs.Event{StallNS: stall})
		s.spEpoch = obs.Span{}
		s.drainStepRetries(tr, res.Epochs, model)
		if tr != nil {
			total := s.fabric.TotalBytes()
			tr.Emit(obs.Event{Kind: obs.FabricTransfer, Epoch: res.Epochs, ModelNS: model,
				Value: total - lastBytes, StallNS: stall})
			lastBytes = total
		}
		s.cfg.Metrics.Histogram("multichip.epoch_stall_ns").Observe(stall)
		if cfg.SampleEveryNS > 0 && elapsed >= nextSample {
			tr.Emit(obs.Event{Kind: obs.EnergySample, Epoch: res.Epochs, ModelNS: elapsed,
				Value: s.model.Energy(s.GlobalSpins())})
			nextSample = elapsed + cfg.SampleEveryNS
		}
	}
	s.collect(ModeSequential, res, model, elapsed)
	return res, nil, nil
}
