package multichip

import (
	"fmt"
	"math"

	"mbrim/internal/obs"
)

// RunSequential anneals one job with the chips taking turns: in every
// round each chip runs one epoch *alone* while the others hold, and
// its state changes are synchronized before the next chip starts. No
// chip ever works against a stale view — the "running the solvers
// sequentially (without any ignorance)" baseline of Sec 5.4.1 — but
// nothing overlaps, so the elapsed time is chips× the annealing each
// chip receives. The paper's empirical claim is that concurrent
// operation with short epochs matches or beats this mode's quality
// while being chips× faster; RunSequential exists so that claim can be
// tested rather than assumed.
//
// durationNS is the annealing time each chip receives (matching
// RunConcurrent's semantics so qualities are comparable at equal
// per-chip annealing).
func (s *System) RunSequential(durationNS float64) *Result {
	if durationNS <= 0 {
		panic(fmt.Sprintf("multichip: duration=%v", durationNS))
	}
	cfg := s.cfg
	for _, c := range s.chips {
		c.machine.SetHorizon(durationNS)
	}
	res := &Result{}
	rc := &runCollector{}
	if cfg.RecordEpochStats {
		rc.epochStats = &res.EpochStats
	}
	if cfg.SampleEveryNS > 0 {
		rc.trace = &res.Trace
	}
	tr := s.runTracer(rc)
	elapsed := 0.0
	model := 0.0
	nextSample := 0.0
	lastBytes := s.fabric.TotalBytes()
	for model < durationNS-1e-9 {
		epoch := math.Min(cfg.EpochNS, durationNS-model)
		if s.frt != nil {
			s.beginFaultEpoch(res.Epochs+1, durationNS-model, tr)
		}
		for ci, c := range s.chips {
			c.resetEpochCounters()
			if s.frt != nil && s.frt.dead[ci] {
				// A lost chip's turn is skipped outright; the scheduler
				// knows it is gone, so no wall time is spent on it.
				continue
			}
			// A transiently stalled chip still occupies its turn on the
			// wall clock — the hold is physical — but integrates
			// nothing; its kick PRNG keeps clocking.
			hold := s.frt != nil && s.frt.holds[ci]
			t := 0.0
			for t < epoch-1e-9 {
				chunk := math.Min(cfg.FlipIntervalNS, epoch-t)
				if !hold {
					c.machine.Run(chunk)
				}
				t += chunk
				s.drawInduced(ci, (model+t)/durationNS)
			}
			if tr != nil {
				tr.Emit(obs.Event{Kind: obs.ChipStep, Epoch: res.Epochs + 1, Chip: ci,
					ModelNS: model + epoch, Count: c.epochFlips, Induced: c.epochInducedFlips})
				if c.epochKicks > 0 {
					tr.Emit(obs.Event{Kind: obs.InducedKick, Epoch: res.Epochs + 1, Chip: ci,
						ModelNS: model + epoch, Count: c.epochKicks})
				}
			}
			// Immediate synchronization: the next chip sees this one's
			// fresh state. Traffic is charged exactly as in concurrent
			// mode; the difference is purely that no work overlaps.
			changes, inducedChanges := s.syncEpoch(res.Epochs+1, tr)
			res.BitChanges += changes
			res.InducedBitChanges += inducedChanges
			if tr != nil {
				tr.Emit(obs.Event{Kind: obs.EpochSync, Epoch: res.Epochs + 1, Chip: ci,
					ModelNS: model + epoch, Count: changes, Induced: inducedChanges})
			}
			// Every chip's epoch occupies the wall clock: no overlap.
			elapsed += epoch
		}
		if s.frt != nil {
			s.watchdog(res.Epochs+1, tr)
		}
		stall := s.fabric.EndEpoch(epoch)
		if s.frt != nil {
			stall += s.frt.takeEpochStall(s.fabric)
		}
		elapsed += stall
		model += epoch
		res.Epochs++
		if tr != nil {
			total := s.fabric.TotalBytes()
			tr.Emit(obs.Event{Kind: obs.FabricTransfer, Epoch: res.Epochs, ModelNS: model,
				Value: total - lastBytes, StallNS: stall})
			lastBytes = total
		}
		s.cfg.Metrics.Histogram("multichip.epoch_stall_ns").Observe(stall)
		if cfg.SampleEveryNS > 0 && elapsed >= nextSample {
			tr.Emit(obs.Event{Kind: obs.EnergySample, Epoch: res.Epochs, ModelNS: elapsed,
				Value: s.model.Energy(s.GlobalSpins())})
			nextSample = elapsed + cfg.SampleEveryNS
		}
	}
	s.collect(res, model, elapsed)
	return res
}
