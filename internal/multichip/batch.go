package multichip

import (
	"context"
	"fmt"
	"math"
	"time"

	"mbrim/internal/fault"
	"mbrim/internal/interconnect"
	"mbrim/internal/ising"
	"mbrim/internal/metrics"
	"mbrim/internal/obs"
	"mbrim/internal/rng"
)

// BatchResult reports a batch-mode run.
type BatchResult struct {
	// Jobs holds the final global state of every job; Energies their
	// energies; Best indexes the winner.
	Jobs     [][]int8
	Energies []float64
	Best     int
	// BestEnergy is Energies[Best].
	BestEnergy float64
	// Time ledger, as in Result.
	ModelNS, StallNS, ElapsedNS float64
	// Activity counters, as in Result. BitChanges here counts the
	// cumulative per-epoch state changes actually communicated — the
	// quantity whose ratio to Flips is Fig 13.
	Flips, InducedFlips, BitChanges, InducedBitChanges int64
	TrafficBytes, PeakDemandBytesPerNS                 float64
	Epochs                                             int
	// Trace holds (elapsed ns, best-job energy) samples.
	Trace []metrics.Point
	// EpochStats holds per-epoch activity if requested.
	EpochStats []EpochStat
	// FaultStats ledgers injected faults and recovery work when the
	// fault layer was enabled (zero otherwise).
	FaultStats fault.Stats
	// LiveChips is the number of chips still operating at run end.
	LiveChips int
}

// RunBatch runs `jobs` staggered annealing jobs of the same problem
// from different initial states (Sec 5.5). Each epoch, every chip
// works on a different job: it loads the job's state, anneals its own
// slice, and broadcasts the resulting bit changes. durationNS is the
// annealing time each job receives.
//
// With Coordinated set, receivers reproduce the worker's induced
// kicks from their synchronized PRNG replica, so kick-caused changes
// are not transmitted — the Sec 5.4.2 saving applied to batch mode.
// It panics on integrator divergence; callers that need lifecycle
// control use RunBatchCtx.
func (s *System) RunBatch(jobs int, durationNS float64) *BatchResult {
	res, _, err := s.RunBatchCtx(context.Background(), jobs, durationNS, nil)
	if err != nil {
		panic(err)
	}
	return res
}

// RunBatchCtx is RunBatch with lifecycle control, with the same
// contract as RunConcurrentCtx: cancellation returns the partial
// result plus a resumable Checkpoint alongside ctx.Err() (checked at
// epoch barriers); divergence aborts with the typed error and no
// checkpoint. The checkpoint carries every job's state and the
// rotation position, so a resumed run assigns job (chip+epoch) mod
// jobs exactly as the uninterrupted one would.
func (s *System) RunBatchCtx(ctx context.Context, jobs int, durationNS float64, resume *Checkpoint) (*BatchResult, *Checkpoint, error) {
	if jobs < 1 {
		panic(fmt.Sprintf("multichip: jobs=%d", jobs))
	}
	if durationNS <= 0 {
		panic(fmt.Sprintf("multichip: duration=%v", durationNS))
	}
	if ctx == nil {
		ctx = context.Background()
	}
	cfg := s.cfg
	totalEpochs := int(math.Ceil(durationNS / cfg.EpochNS))
	horizon := float64(totalEpochs) * cfg.EpochNS

	res := &BatchResult{Best: -1}
	elapsed := 0.0
	nextSample := 0.0
	bestSoFar := math.Inf(1)
	startEpoch := 0
	var states [][]int8
	if resume != nil {
		if err := s.applyCheckpoint(resume, ModeBatch, durationNS, jobs); err != nil {
			return nil, nil, err
		}
		states = make([][]int8, jobs)
		for j := range states {
			states[j] = append([]int8(nil), resume.JobStates[j]...)
		}
		startEpoch = resume.EpochsDone
		res.Epochs = resume.EpochsDone
		res.Flips = resume.Flips
		res.InducedFlips = resume.InducedFlips
		res.BitChanges = resume.BitChanges
		res.InducedBitChanges = resume.InducedBitChanges
		res.Trace = append([]metrics.Point(nil), resume.Trace...)
		res.EpochStats = append([]EpochStat(nil), resume.EpochStats...)
		elapsed = resume.ElapsedNS
		nextSample = resume.NextSampleNS
		bestSoFar = math.Float64frombits(resume.BestSoFarBits)
	} else {
		for _, c := range s.chips {
			c.machine.SetHorizon(horizon)
		}
		// Independent initial states per job, derived from the system
		// seed.
		jobRNG := rng.New(cfg.Seed).Fork(0xBA7C)
		states = make([][]int8, jobs)
		for j := range states {
			states[j] = ising.RandomSpins(s.n, jobRNG)
		}
	}
	res.Jobs = states

	rc := &runCollector{}
	if cfg.RecordEpochStats {
		rc.epochStats = &res.EpochStats
	}
	if cfg.SampleEveryNS > 0 {
		rc.trace = &res.Trace
	}
	tr := s.runTracer(rc)
	lastBytes := s.fabric.TotalBytes()
	done := ctx.Done()

	// Within an epoch each chip works a different job (when jobs >=
	// chips), so the per-chip work is independent and can run on
	// goroutines; per-chip results are merged after the barrier so the
	// outcome is bit-identical either way. Fault fates are resolved
	// inside the worker (the injector is stateless), but all shared
	// accounting — fabric charges, stats, events, delayed-writeback
	// queuing — happens in the merge loop in chip order.
	type chipEpoch struct {
		flips, induced     int64
		changes, inducedCh int
		planned            bool // fault layer consulted for this send
		plan               fault.MessagePlan
		attempts           int      // retransmits spent (Detect)
		lost               bool     // writeback never delivered
		delayedJob         int      // destination of a delayed writeback
		delayedUps         []update // payload of a delayed writeback
	}
	perChip := make([]chipEpoch, len(s.chips))
	parallelOK := jobs >= len(s.chips)

	for e := startEpoch; e < totalEpochs; e++ {
		select {
		case <-done:
			ck := &Checkpoint{Mode: ModeBatch, DurationNS: durationNS, Jobs: jobs}
			ck.EpochsDone = res.Epochs
			ck.ModelNS = float64(res.Epochs) * cfg.EpochNS
			ck.ElapsedNS = elapsed
			ck.NextSampleNS = nextSample
			ck.BestSoFarBits = math.Float64bits(bestSoFar)
			ck.Flips = res.Flips
			ck.InducedFlips = res.InducedFlips
			ck.BitChanges = res.BitChanges
			ck.InducedBitChanges = res.InducedBitChanges
			ck.Trace = append([]metrics.Point(nil), res.Trace...)
			ck.EpochStats = append([]EpochStat(nil), res.EpochStats...)
			ck.JobStates = make([][]int8, jobs)
			for j := range states {
				ck.JobStates[j] = append([]int8(nil), states[j]...)
			}
			s.captureInto(ck)
			s.finalizeBatch(res, states, float64(res.Epochs)*cfg.EpochNS, elapsed)
			return res, ck, ctx.Err()
		default:
		}
		if sp := cfg.Spans; sp != nil {
			s.spEpoch = sp.Start("epoch", cfg.SpanRoot, -1, elapsed)
			s.spPosNS = elapsed
		}
		if s.frt != nil {
			s.beginFaultEpoch(e+1, float64(totalEpochs-e)*cfg.EpochNS, tr)
			if len(perChip) != len(s.chips) {
				// Repartition rebuilt the chip set.
				perChip = make([]chipEpoch, len(s.chips))
				parallelOK = jobs >= len(s.chips)
			}
			// Last epoch's delayed writebacks land before any chip
			// loads a job — late but in-order delivery.
			for _, wb := range s.frt.pendingBatch {
				for _, u := range wb.ups {
					states[wb.job][u.g] = u.v
				}
			}
			s.frt.pendingBatch = s.frt.pendingBatch[:0]
		}
		var st EpochStat
		st.Epoch = e + 1
		work := func(ci int, c *chip) error {
			if cfg.Spans != nil {
				defer func(w0 time.Time) { c.epochWallNS = time.Since(w0).Nanoseconds() }(time.Now())
			}
			perChip[ci] = chipEpoch{}
			if s.frt != nil && (s.frt.dead[ci] || s.frt.holds[ci]) {
				// Dead or transiently stalled: this chip's job receives
				// no annealing this epoch and writes nothing back.
				return nil
			}
			job := (ci + e) % jobs
			before := make([]int8, len(c.owned))
			for li, g := range c.owned {
				before[li] = states[job][g]
			}
			c.loadJobState(states[job])
			c.resetEpochCounters()

			// Anneal the slice in flip-interval chunks with induced
			// kicks, exactly as in concurrent mode.
			t := 0.0
			for t < cfg.EpochNS-1e-9 {
				chunk := math.Min(cfg.FlipIntervalNS, cfg.EpochNS-t)
				if err := c.machine.Run(chunk); err != nil {
					return err
				}
				t += chunk
				prob := cfg.InducedFlip.At((float64(e)*cfg.EpochNS + t) / horizon)
				r := s.induceRNG[ci]
				for li := range c.owned {
					if r.Bool(prob) {
						c.machine.Induce(li)
						c.epochKicks++
					}
				}
			}

			// Write back and count the broadcast.
			after := c.machine.Spins()
			pe := chipEpoch{flips: c.epochFlips, induced: c.epochInducedFlips}
			var ups []update
			for li, g := range c.owned {
				if after[li] != before[li] {
					ups = append(ups, update{li, g, after[li], c.lastFlipInduced[li]})
					pe.changes++
					if c.lastFlipInduced[li] {
						pe.inducedCh++
					}
				}
			}
			if s.frt != nil && len(ups) > 0 {
				// The whole epoch writeback is one message; resolve its
				// fate here (pure draws), account at the barrier.
				delivered, delayed, attempts, plan, payload := s.frt.resolveBatchSend(e+1, ci, ups)
				pe.planned, pe.plan, pe.attempts = true, plan, attempts
				switch {
				case !delivered:
					pe.lost = true // the epoch's work evaporates
				case delayed:
					pe.delayedJob = job
					pe.delayedUps = payload
				default:
					for _, u := range payload {
						states[job][u.g] = u.v
					}
				}
			} else {
				for _, u := range ups {
					states[job][u.g] = u.v
				}
			}
			perChip[ci] = pe
			return nil
		}
		var badChip int
		var chipErr error
		if parallelOK {
			badChip, chipErr = s.forEachChip(work)
		} else {
			// jobs < chips: two chips may share a job state; keep the
			// simulation sequential to stay deterministic.
			badChip = -1
			for ci, c := range s.chips {
				if err := work(ci, c); err != nil {
					badChip, chipErr = ci, err
					break
				}
			}
		}
		if chipErr != nil {
			emitIf(tr, obs.Event{Kind: obs.Numerical, Label: "divergence",
				Epoch: e + 1, Chip: badChip, ModelNS: float64(e) * cfg.EpochNS})
			return nil, nil, fmt.Errorf("multichip: chip %d: %w", badChip, chipErr)
		}
		// Chip intervals land before the merge accounting so the barrier
		// position can advance to the sync point for recovery spans.
		s.emitChipSpans(elapsed, cfg.EpochNS)
		s.spPosNS = elapsed + cfg.EpochNS
		for ci, c := range s.chips {
			pe := perChip[ci]
			st.Flips += pe.flips
			st.InducedFlips += pe.induced
			st.BitChanges += int64(pe.changes)
			st.InducedBitChanges += int64(pe.inducedCh)
			transmitted := pe.changes
			if cfg.Coordinated {
				transmitted -= pe.inducedCh
			}
			bytes := 0.0
			if transmitted > 0 {
				bytes = interconnect.DeltaSyncBytes(transmitted, len(c.owned), len(s.chips)-1)
				s.fabric.Record(ci, bytes, "sync")
			}
			if pe.planned {
				s.accountBatchSend(e+1, ci, pe.plan, pe.attempts, pe.lost,
					pe.delayedUps != nil, bytes, int64(pe.changes), tr)
				if pe.delayedUps != nil {
					s.frt.pendingBatch = append(s.frt.pendingBatch,
						delayedWriteback{job: pe.delayedJob, ups: pe.delayedUps})
				}
			}
		}
		if sp := cfg.Spans; sp != nil {
			sp.Complete("sync", s.spEpoch, -1, elapsed+cfg.EpochNS, 0, 0,
				&obs.Event{Count: st.BitChanges})
		}
		stall := s.fabric.EndEpochSpanned(cfg.EpochNS, cfg.Spans, s.spEpoch, elapsed+cfg.EpochNS)
		if s.frt != nil {
			stall += s.frt.takeEpochStall(s.fabric)
		}
		st.StallNS = stall
		elapsed += cfg.EpochNS + stall
		res.Epochs++
		s.spEpoch.End(elapsed, &obs.Event{StallNS: stall})
		s.spEpoch = obs.Span{}
		res.Flips += st.Flips
		res.InducedFlips += st.InducedFlips
		res.BitChanges += st.BitChanges
		res.InducedBitChanges += st.InducedBitChanges
		s.drainStepRetries(tr, e+1, float64(e+1)*cfg.EpochNS)
		if tr != nil {
			model := float64(e+1) * cfg.EpochNS
			s.emitChipEpoch(tr, e+1, model)
			tr.Emit(obs.Event{Kind: obs.EpochSync, Epoch: e + 1, ModelNS: model,
				Count: st.BitChanges, Induced: st.InducedBitChanges})
			total := s.fabric.TotalBytes()
			tr.Emit(obs.Event{Kind: obs.FabricTransfer, Epoch: e + 1, ModelNS: model,
				Value: total - lastBytes, StallNS: stall})
			lastBytes = total
		}
		s.cfg.Metrics.Histogram("multichip.epoch_stall_ns").Observe(stall)
		if cfg.SampleEveryNS > 0 && elapsed >= nextSample {
			for _, state := range states {
				if en := s.model.Energy(state); en < bestSoFar {
					bestSoFar = en
				}
			}
			tr.Emit(obs.Event{Kind: obs.EnergySample, Epoch: e + 1, ModelNS: elapsed,
				Value: bestSoFar})
			nextSample = elapsed + cfg.SampleEveryNS
		}
	}

	s.finalizeBatch(res, states, float64(totalEpochs)*cfg.EpochNS, elapsed)
	return res, nil, nil
}

// finalizeBatch fills the common batch-result fields: the time and
// traffic ledger, per-job energies and the winner. It serves both the
// normal completion path and the cancellation path (where the ledger
// covers the epochs actually performed).
func (s *System) finalizeBatch(res *BatchResult, states [][]int8, modelNS, elapsed float64) {
	res.ModelNS = modelNS
	res.StallNS = s.fabric.StallNS()
	res.ElapsedNS = elapsed
	res.TrafficBytes = s.fabric.TotalBytes()
	res.PeakDemandBytesPerNS = s.fabric.PeakDemand()
	res.LiveChips = s.liveChips()
	if s.frt != nil {
		res.FaultStats = s.frt.stats
	}
	s.recordRunMetrics(ModeBatch, res.Flips, res.InducedFlips, res.BitChanges, res.InducedBitChanges,
		res.StallNS, res.TrafficBytes, res.Epochs)
	res.Energies = make([]float64, len(states))
	res.BestEnergy = math.Inf(1)
	res.Best = -1
	for j, state := range states {
		res.Energies[j] = s.model.Energy(state)
		if res.Energies[j] < res.BestEnergy {
			res.BestEnergy = res.Energies[j]
			res.Best = j
		}
	}
}
