package multichip

import (
	"fmt"
	"math"

	"mbrim/internal/fault"
	"mbrim/internal/interconnect"
	"mbrim/internal/ising"
	"mbrim/internal/metrics"
	"mbrim/internal/obs"
	"mbrim/internal/rng"
)

// BatchResult reports a batch-mode run.
type BatchResult struct {
	// Jobs holds the final global state of every job; Energies their
	// energies; Best indexes the winner.
	Jobs     [][]int8
	Energies []float64
	Best     int
	// BestEnergy is Energies[Best].
	BestEnergy float64
	// Time ledger, as in Result.
	ModelNS, StallNS, ElapsedNS float64
	// Activity counters, as in Result. BitChanges here counts the
	// cumulative per-epoch state changes actually communicated — the
	// quantity whose ratio to Flips is Fig 13.
	Flips, InducedFlips, BitChanges, InducedBitChanges int64
	TrafficBytes, PeakDemandBytesPerNS                 float64
	Epochs                                             int
	// Trace holds (elapsed ns, best-job energy) samples.
	Trace []metrics.Point
	// EpochStats holds per-epoch activity if requested.
	EpochStats []EpochStat
	// FaultStats ledgers injected faults and recovery work when the
	// fault layer was enabled (zero otherwise).
	FaultStats fault.Stats
	// LiveChips is the number of chips still operating at run end.
	LiveChips int
}

// RunBatch runs `jobs` staggered annealing jobs of the same problem
// from different initial states (Sec 5.5). Each epoch, every chip
// works on a different job: it loads the job's state, anneals its own
// slice, and broadcasts the resulting bit changes. durationNS is the
// annealing time each job receives.
//
// With Coordinated set, receivers reproduce the worker's induced
// kicks from their synchronized PRNG replica, so kick-caused changes
// are not transmitted — the Sec 5.4.2 saving applied to batch mode.
func (s *System) RunBatch(jobs int, durationNS float64) *BatchResult {
	if jobs < 1 {
		panic(fmt.Sprintf("multichip: jobs=%d", jobs))
	}
	if durationNS <= 0 {
		panic(fmt.Sprintf("multichip: duration=%v", durationNS))
	}
	cfg := s.cfg
	totalEpochs := int(math.Ceil(durationNS / cfg.EpochNS))
	horizon := float64(totalEpochs) * cfg.EpochNS
	for _, c := range s.chips {
		c.machine.SetHorizon(horizon)
	}

	// Independent initial states per job, derived from the system seed.
	jobRNG := rng.New(cfg.Seed).Fork(0xBA7C)
	states := make([][]int8, jobs)
	for j := range states {
		states[j] = ising.RandomSpins(s.n, jobRNG)
	}

	res := &BatchResult{Jobs: states, Best: -1}
	rc := &runCollector{}
	if cfg.RecordEpochStats {
		rc.epochStats = &res.EpochStats
	}
	if cfg.SampleEveryNS > 0 {
		rc.trace = &res.Trace
	}
	tr := s.runTracer(rc)
	elapsed := 0.0
	nextSample := 0.0
	bestSoFar := math.Inf(1)
	lastBytes := s.fabric.TotalBytes()

	// Within an epoch each chip works a different job (when jobs >=
	// chips), so the per-chip work is independent and can run on
	// goroutines; per-chip results are merged after the barrier so the
	// outcome is bit-identical either way. Fault fates are resolved
	// inside the worker (the injector is stateless), but all shared
	// accounting — fabric charges, stats, events, delayed-writeback
	// queuing — happens in the merge loop in chip order.
	type chipEpoch struct {
		flips, induced     int64
		changes, inducedCh int
		planned            bool // fault layer consulted for this send
		plan               fault.MessagePlan
		attempts           int      // retransmits spent (Detect)
		lost               bool     // writeback never delivered
		delayedJob         int      // destination of a delayed writeback
		delayedUps         []update // payload of a delayed writeback
	}
	perChip := make([]chipEpoch, len(s.chips))
	parallelOK := jobs >= len(s.chips)

	for e := 0; e < totalEpochs; e++ {
		if s.frt != nil {
			s.beginFaultEpoch(e+1, float64(totalEpochs-e)*cfg.EpochNS, tr)
			if len(perChip) != len(s.chips) {
				// Repartition rebuilt the chip set.
				perChip = make([]chipEpoch, len(s.chips))
				parallelOK = jobs >= len(s.chips)
			}
			// Last epoch's delayed writebacks land before any chip
			// loads a job — late but in-order delivery.
			for _, wb := range s.frt.pendingBatch {
				for _, u := range wb.ups {
					states[wb.job][u.g] = u.v
				}
			}
			s.frt.pendingBatch = s.frt.pendingBatch[:0]
		}
		var st EpochStat
		st.Epoch = e + 1
		work := func(ci int, c *chip) {
			perChip[ci] = chipEpoch{}
			if s.frt != nil && (s.frt.dead[ci] || s.frt.holds[ci]) {
				// Dead or transiently stalled: this chip's job receives
				// no annealing this epoch and writes nothing back.
				return
			}
			job := (ci + e) % jobs
			before := make([]int8, len(c.owned))
			for li, g := range c.owned {
				before[li] = states[job][g]
			}
			c.loadJobState(states[job])
			c.resetEpochCounters()

			// Anneal the slice in flip-interval chunks with induced
			// kicks, exactly as in concurrent mode.
			t := 0.0
			for t < cfg.EpochNS-1e-9 {
				chunk := math.Min(cfg.FlipIntervalNS, cfg.EpochNS-t)
				c.machine.Run(chunk)
				t += chunk
				prob := cfg.InducedFlip.At((float64(e)*cfg.EpochNS + t) / horizon)
				r := s.induceRNG[ci]
				for li := range c.owned {
					if r.Bool(prob) {
						c.machine.Induce(li)
						c.epochKicks++
					}
				}
			}

			// Write back and count the broadcast.
			after := c.machine.Spins()
			pe := chipEpoch{flips: c.epochFlips, induced: c.epochInducedFlips}
			var ups []update
			for li, g := range c.owned {
				if after[li] != before[li] {
					ups = append(ups, update{li, g, after[li], c.lastFlipInduced[li]})
					pe.changes++
					if c.lastFlipInduced[li] {
						pe.inducedCh++
					}
				}
			}
			if s.frt != nil && len(ups) > 0 {
				// The whole epoch writeback is one message; resolve its
				// fate here (pure draws), account at the barrier.
				delivered, delayed, attempts, plan, payload := s.frt.resolveBatchSend(e+1, ci, ups)
				pe.planned, pe.plan, pe.attempts = true, plan, attempts
				switch {
				case !delivered:
					pe.lost = true // the epoch's work evaporates
				case delayed:
					pe.delayedJob = job
					pe.delayedUps = payload
				default:
					for _, u := range payload {
						states[job][u.g] = u.v
					}
				}
			} else {
				for _, u := range ups {
					states[job][u.g] = u.v
				}
			}
			perChip[ci] = pe
		}
		if parallelOK {
			s.forEachChip(work)
		} else {
			// jobs < chips: two chips may share a job state; keep the
			// simulation sequential to stay deterministic.
			for ci, c := range s.chips {
				work(ci, c)
			}
		}
		for ci, c := range s.chips {
			pe := perChip[ci]
			st.Flips += pe.flips
			st.InducedFlips += pe.induced
			st.BitChanges += int64(pe.changes)
			st.InducedBitChanges += int64(pe.inducedCh)
			transmitted := pe.changes
			if cfg.Coordinated {
				transmitted -= pe.inducedCh
			}
			bytes := 0.0
			if transmitted > 0 {
				bytes = interconnect.DeltaSyncBytes(transmitted, len(c.owned), len(s.chips)-1)
				s.fabric.Record(ci, bytes, "sync")
			}
			if pe.planned {
				s.accountBatchSend(e+1, ci, pe.plan, pe.attempts, pe.lost,
					pe.delayedUps != nil, bytes, int64(pe.changes), tr)
				if pe.delayedUps != nil {
					s.frt.pendingBatch = append(s.frt.pendingBatch,
						delayedWriteback{job: pe.delayedJob, ups: pe.delayedUps})
				}
			}
		}
		stall := s.fabric.EndEpoch(cfg.EpochNS)
		if s.frt != nil {
			stall += s.frt.takeEpochStall(s.fabric)
		}
		st.StallNS = stall
		elapsed += cfg.EpochNS + stall
		res.Epochs++
		res.Flips += st.Flips
		res.InducedFlips += st.InducedFlips
		res.BitChanges += st.BitChanges
		res.InducedBitChanges += st.InducedBitChanges
		if tr != nil {
			model := float64(e+1) * cfg.EpochNS
			s.emitChipEpoch(tr, e+1, model)
			tr.Emit(obs.Event{Kind: obs.EpochSync, Epoch: e + 1, ModelNS: model,
				Count: st.BitChanges, Induced: st.InducedBitChanges})
			total := s.fabric.TotalBytes()
			tr.Emit(obs.Event{Kind: obs.FabricTransfer, Epoch: e + 1, ModelNS: model,
				Value: total - lastBytes, StallNS: stall})
			lastBytes = total
		}
		s.cfg.Metrics.Histogram("multichip.epoch_stall_ns").Observe(stall)
		if cfg.SampleEveryNS > 0 && elapsed >= nextSample {
			for _, state := range states {
				if en := s.model.Energy(state); en < bestSoFar {
					bestSoFar = en
				}
			}
			tr.Emit(obs.Event{Kind: obs.EnergySample, Epoch: e + 1, ModelNS: elapsed,
				Value: bestSoFar})
			nextSample = elapsed + cfg.SampleEveryNS
		}
	}

	res.ModelNS = float64(totalEpochs) * cfg.EpochNS
	res.StallNS = s.fabric.StallNS()
	res.ElapsedNS = elapsed
	res.TrafficBytes = s.fabric.TotalBytes()
	res.PeakDemandBytesPerNS = s.fabric.PeakDemand()
	res.LiveChips = s.liveChips()
	if s.frt != nil {
		res.FaultStats = s.frt.stats
	}
	s.recordRunMetrics(res.Flips, res.InducedFlips, res.BitChanges, res.InducedBitChanges,
		res.StallNS, res.TrafficBytes, res.Epochs)
	res.Energies = make([]float64, jobs)
	res.BestEnergy = math.Inf(1)
	for j, state := range states {
		res.Energies[j] = s.model.Energy(state)
		if res.Energies[j] < res.BestEnergy {
			res.BestEnergy = res.Energies[j]
			res.Best = j
		}
	}
	return res
}
