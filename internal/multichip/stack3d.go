package multichip

import "fmt"

// This file models the 3D-integrated multiprocessor of Fig 8: L layers
// stacked vertically, each layer operating as a 1n×Ln slice of the
// coupling matrix. Layer l's regular (node-bearing) module sits on the
// diagonal position (l, l); the other modules of its row hold shadow
// copies. Because module (l, c) of every layer shares the (x, y)
// footprint of module (c, c) — the owner of block c's real nodes — a
// shadow register and its real node are vertically adjacent and
// connect with a through-silicon via of |l − c| layer pitches.

// Stack describes an L-layer 3D-integrated multiprocessor where each
// layer carries ModuleN real spins.
type Stack struct {
	Layers  int
	ModuleN int
}

// PlanStack validates and builds a stack description.
func PlanStack(layers, moduleN int) (*Stack, error) {
	if layers < 1 || moduleN < 1 {
		return nil, fmt.Errorf("multichip: PlanStack(%d, %d): arguments must be positive", layers, moduleN)
	}
	return &Stack{Layers: layers, ModuleN: moduleN}, nil
}

// TotalSpins returns the system capacity, Layers × ModuleN.
func (s *Stack) TotalSpins() int { return s.Layers * s.ModuleN }

// RegularModule returns the grid position of layer l's real nodes:
// the diagonal (l, l).
func (s *Stack) RegularModule(layer int) (row, col int) {
	s.checkLayer(layer)
	return layer, layer
}

// ShadowLayers returns the layers holding shadow copies of block c's
// spins: every layer except c itself.
func (s *Stack) ShadowLayers(block int) []int {
	s.checkLayer(block)
	out := make([]int, 0, s.Layers-1)
	for l := 0; l < s.Layers; l++ {
		if l != block {
			out = append(out, l)
		}
	}
	return out
}

// TSVLength returns the vertical distance, in layer pitches, between
// block's real nodes (layer `block`) and its shadow on layer `layer`.
// The short, fixed-length vertical hop is why the paper notes shadow
// registers become architecturally optional in a 3D stack.
func (s *Stack) TSVLength(block, layer int) int {
	s.checkLayer(block)
	s.checkLayer(layer)
	d := layer - block
	if d < 0 {
		d = -d
	}
	return d
}

// ModeGrid returns the Layers×Layers module-mode map of the whole
// stack (row l = layer l): Regular on the diagonal, ShadowCopy
// elsewhere — Fig 8's logical view.
func (s *Stack) ModeGrid() [][]ModuleMode {
	grid := make([][]ModuleMode, s.Layers)
	for l := range grid {
		grid[l] = make([]ModuleMode, s.Layers)
		for c := range grid[l] {
			if c == l {
				grid[l][c] = Regular
			} else {
				grid[l][c] = ShadowCopy
			}
		}
	}
	return grid
}

// Validate checks the stack's structural invariants.
func (s *Stack) Validate() error {
	if s.Layers < 1 || s.ModuleN < 1 {
		return fmt.Errorf("multichip: invalid stack %d×%d", s.Layers, s.ModuleN)
	}
	grid := s.ModeGrid()
	for l, row := range grid {
		regular := 0
		for _, m := range row {
			if m == Regular {
				regular++
			}
		}
		if regular != 1 {
			return fmt.Errorf("multichip: layer %d has %d regular modules, want 1", l, regular)
		}
	}
	// Every block's shadows stack directly above/below its owner:
	// constant column, TSV length ≤ Layers−1.
	for block := 0; block < s.Layers; block++ {
		for _, l := range s.ShadowLayers(block) {
			if tsv := s.TSVLength(block, l); tsv < 1 || tsv > s.Layers-1 {
				return fmt.Errorf("multichip: block %d shadow on layer %d has TSV length %d", block, l, tsv)
			}
		}
	}
	return nil
}

// System builds a conventional multiprocessor configuration equivalent
// to this stack: one chip per layer with unlimited fabric bandwidth
// (TSVs are, to first order, free — this is exactly the mBRIM_3D
// configuration of Sec 6.3).
func (s *Stack) System() Config {
	return Config{
		Chips:             s.Layers,
		ChannelBytesPerNS: 0, // unlimited: the 3D premise
	}
}

func (s *Stack) checkLayer(l int) {
	if l < 0 || l >= s.Layers {
		panic(fmt.Sprintf("multichip: layer %d of %d", l, s.Layers))
	}
}
