package multichip

import "testing"

func TestPlanStackPaperExample(t *testing.T) {
	// Fig 8: four layers, each a 1n×4n slice.
	s, err := PlanStack(4, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if s.TotalSpins() != 4000 {
		t.Fatalf("TotalSpins = %d", s.TotalSpins())
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStackRegularOnDiagonal(t *testing.T) {
	s, _ := PlanStack(4, 1)
	for l := 0; l < 4; l++ {
		r, c := s.RegularModule(l)
		if r != l || c != l {
			t.Fatalf("layer %d regular at (%d,%d)", l, r, c)
		}
	}
}

func TestStackShadowAlignment(t *testing.T) {
	// Fig 8's caption: block 6's shadows are blocks 2, 10, 14 — in the
	// 4×4 row-major numbering, module (1,1)'s shadows are (0,1), (2,1)
	// and (3,1): same column, other layers.
	s, _ := PlanStack(4, 1)
	shadows := s.ShadowLayers(1)
	want := []int{0, 2, 3}
	if len(shadows) != len(want) {
		t.Fatalf("shadows %v", shadows)
	}
	for i := range want {
		if shadows[i] != want[i] {
			t.Fatalf("shadows %v, want %v", shadows, want)
		}
	}
	// Row-major module ids of column 1 on layers 0,2,3 are 2, 10, 14
	// (1-based), matching the paper's example.
	ids := []int{}
	for _, l := range shadows {
		ids = append(ids, l*4+1+1)
	}
	if ids[0] != 2 || ids[1] != 10 || ids[2] != 14 {
		t.Fatalf("module ids %v, want [2 10 14]", ids)
	}
}

func TestStackTSVLengths(t *testing.T) {
	s, _ := PlanStack(4, 1)
	if s.TSVLength(1, 1) != 0 {
		t.Fatal("self TSV not zero")
	}
	if s.TSVLength(0, 3) != 3 || s.TSVLength(3, 0) != 3 {
		t.Fatal("TSV length not symmetric distance")
	}
}

func TestStackModeGrid(t *testing.T) {
	s, _ := PlanStack(3, 1)
	grid := s.ModeGrid()
	for l := range grid {
		for c := range grid[l] {
			want := ShadowCopy
			if l == c {
				want = Regular
			}
			if grid[l][c] != want {
				t.Fatalf("(%d,%d) = %v", l, c, grid[l][c])
			}
		}
	}
}

func TestStackSystemIsUnlimited(t *testing.T) {
	s, _ := PlanStack(4, 256)
	cfg := s.System()
	if cfg.Chips != 4 || cfg.ChannelBytesPerNS != 0 {
		t.Fatalf("System config %+v", cfg)
	}
	// And it actually runs as an mBRIM_3D.
	m := kgraph(64, 1)
	cfg.Seed = 2
	res := MustSystem(m, cfg).RunConcurrent(20)
	if res.StallNS != 0 {
		t.Fatal("3D system stalled")
	}
}

func TestPlanStackRejectsInvalid(t *testing.T) {
	if _, err := PlanStack(0, 1); err == nil {
		t.Fatal("accepted zero layers")
	}
	if _, err := PlanStack(1, 0); err == nil {
		t.Fatal("accepted zero module size")
	}
}

func TestStackLayerBoundsPanic(t *testing.T) {
	s, _ := PlanStack(2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	s.ShadowLayers(2)
}
