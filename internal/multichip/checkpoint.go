package multichip

import (
	"fmt"
	"math"

	"mbrim/internal/brim"
	"mbrim/internal/fault"
	"mbrim/internal/interconnect"
	"mbrim/internal/metrics"
	"mbrim/internal/rng"
)

// This file implements deterministic checkpoint/resume for all three
// run modes. A Checkpoint is captured only at an epoch barrier — the
// one point where every chip's integrator sits between steps, the
// fabric's open-epoch buckets are empty, and the delayed-message
// queues are quiescent — so the snapshot is a consistent cut of the
// whole machine. Resuming from it is bit-identical to a run that was
// never interrupted: the snapshot carries the exact PRNG stream
// positions (chip machines, induced-kick sources), every voltage and
// shadow register, the batch-rotation position (EpochsDone), and the
// in-flight fault state including delayed broadcasts.

// Run-mode names recorded in Checkpoint.Mode.
const (
	ModeConcurrent = "concurrent"
	ModeSequential = "sequential"
	ModeBatch      = "batch"
)

// PendingUpdate is one serializable item of a boundary-broadcast
// payload: the owner's local index Li / global index G now holds V;
// Induced records whether the change was last caused by a kick.
type PendingUpdate struct {
	Li      int  `json:"li"`
	G       int  `json:"g"`
	V       int8 `json:"v"`
	Induced bool `json:"induced,omitempty"`
}

// PendingMessage is one delayed boundary broadcast still in flight
// (a fault-injected delay awaiting next-epoch delivery).
type PendingMessage struct {
	From    int             `json:"from"`
	Updates []PendingUpdate `json:"updates"`
}

// PendingWriteback is one delayed batch-mode job writeback in flight.
type PendingWriteback struct {
	Job     int             `json:"job"`
	Updates []PendingUpdate `json:"updates"`
}

// FaultState snapshots the fault runtime's mutable state. The injector
// itself is stateless (fates are hashed from seed, epoch and chip), so
// resuming needs only the accumulated damage: dead chips, in-flight
// delayed messages, and the stats ledger.
type FaultState struct {
	Dead         []bool             `json:"dead"`
	Pending      []PendingMessage   `json:"pending,omitempty"`
	PendingBatch []PendingWriteback `json:"pendingBatch,omitempty"`
	Stats        fault.Stats        `json:"stats"`
}

// ChipState snapshots one chip: its partition slice, the full BRIM
// machine state (which carries the construction seed — after a
// repartition, survivors keep their original seeds, not positional
// ones), the shadow registers, and the kick-attribution bits.
type ChipState struct {
	Owned           []int       `json:"owned"`
	Machine         *brim.State `json:"machine"`
	Shadow          []int8      `json:"shadow"`
	LastFlipInduced []bool      `json:"lastFlipInduced"`
}

// Checkpoint is a complete, resumable snapshot of a run in progress,
// captured at an epoch barrier. It is an in-memory structure; the
// versioned serialized form lives in internal/checkpoint.
type Checkpoint struct {
	// Mode and the run parameters the checkpoint was taken under; a
	// resume validates them against the new call.
	Mode       string  `json:"mode"`
	DurationNS float64 `json:"durationNS"`
	Jobs       int     `json:"jobs,omitempty"`
	// Loop position. EpochsDone doubles as the batch-rotation
	// position: epoch e assigns job (chip+e) mod jobs.
	EpochsDone   int     `json:"epochsDone"`
	ModelNS      float64 `json:"modelNS"`
	ElapsedNS    float64 `json:"elapsedNS"`
	NextSampleNS float64 `json:"nextSampleNS"`
	// BestSoFarBits is batch mode's running best sampled energy as
	// IEEE-754 bits — it starts at +Inf, which JSON cannot carry.
	BestSoFarBits uint64 `json:"bestSoFarBits,omitempty"`
	// Partial run counters (batch mode also accumulates flips in the
	// result rather than reading machine totals at the end).
	BitChanges        int64 `json:"bitChanges"`
	InducedBitChanges int64 `json:"inducedBitChanges"`
	Flips             int64 `json:"flips,omitempty"`
	InducedFlips      int64 `json:"inducedFlips,omitempty"`
	// Partial result series.
	Trace      []metrics.Point  `json:"trace,omitempty"`
	EpochStats []EpochStat      `json:"epochStats,omitempty"`
	Surprises  []SurpriseSample `json:"surprises,omitempty"`
	// Machine state.
	Chips          []ChipState         `json:"chips"`
	ReceiverBelief [][]int8            `json:"receiverBelief"`
	InduceRNG      [][4]uint64         `json:"induceRNG"`
	Fabric         *interconnect.State `json:"fabric"`
	Fault          *FaultState         `json:"fault,omitempty"`
	// JobStates is batch mode's per-job global state.
	JobStates [][]int8 `json:"jobStates,omitempty"`
}

// PendingMessages returns the delayed boundary broadcasts currently in
// flight — fault-injected delays awaiting next-epoch delivery. Without
// this accessor a checkpoint would silently drop delayed messages and
// the resumed run would diverge from an uninterrupted one. Empty when
// the fault layer is off or nothing is delayed.
func (s *System) PendingMessages() []PendingMessage {
	if s.frt == nil || len(s.frt.pending) == 0 {
		return nil
	}
	out := make([]PendingMessage, len(s.frt.pending))
	for i, msg := range s.frt.pending {
		out[i] = PendingMessage{From: msg.from, Updates: toPendingUpdates(msg.ups)}
	}
	return out
}

// PendingWritebacks returns batch mode's delayed job writebacks in
// flight, for the same reason as PendingMessages.
func (s *System) PendingWritebacks() []PendingWriteback {
	if s.frt == nil || len(s.frt.pendingBatch) == 0 {
		return nil
	}
	out := make([]PendingWriteback, len(s.frt.pendingBatch))
	for i, wb := range s.frt.pendingBatch {
		out[i] = PendingWriteback{Job: wb.job, Updates: toPendingUpdates(wb.ups)}
	}
	return out
}

func toPendingUpdates(ups []update) []PendingUpdate {
	out := make([]PendingUpdate, len(ups))
	for i, u := range ups {
		out[i] = PendingUpdate{Li: u.li, G: u.g, V: u.v, Induced: u.induced}
	}
	return out
}

func fromPendingUpdates(ups []PendingUpdate) []update {
	out := make([]update, len(ups))
	for i, u := range ups {
		out[i] = update{li: u.Li, g: u.G, v: u.V, induced: u.Induced}
	}
	return out
}

// captureInto fills ck's machine-state fields (chips, beliefs, RNG
// positions, fabric, fault state) from the system at an epoch barrier.
// The caller has already filled the loop-position and partial-result
// fields, which belong to the run mode.
func (s *System) captureInto(ck *Checkpoint) {
	ck.Chips = make([]ChipState, len(s.chips))
	for i, c := range s.chips {
		ck.Chips[i] = ChipState{
			Owned:           append([]int(nil), c.owned...),
			Machine:         c.machine.Snapshot(),
			Shadow:          append([]int8(nil), c.shadow...),
			LastFlipInduced: append([]bool(nil), c.lastFlipInduced...),
		}
	}
	ck.ReceiverBelief = make([][]int8, len(s.receiverBelief))
	for i, b := range s.receiverBelief {
		ck.ReceiverBelief[i] = append([]int8(nil), b...)
	}
	ck.InduceRNG = make([][4]uint64, len(s.induceRNG))
	for i, r := range s.induceRNG {
		ck.InduceRNG[i] = r.State()
	}
	ck.Fabric = s.fabric.Snapshot()
	if s.frt != nil {
		ck.Fault = &FaultState{
			Dead:         append([]bool(nil), s.frt.dead...),
			Pending:      s.PendingMessages(),
			PendingBatch: s.PendingWritebacks(),
			Stats:        s.frt.stats,
		}
	}
}

// applyCheckpoint validates ck against this freshly constructed system
// and the resuming call's parameters, then loads it: the chip set is
// rebuilt to the checkpoint's partition (which may be narrower than
// the configuration after a repartition recovery) and every machine,
// shadow, belief, RNG, fabric counter and fault queue is restored
// exactly. Checkpoints may come from untrusted bytes, so every reach
// into an array is validated first; failures are errors, never panics.
func (s *System) applyCheckpoint(ck *Checkpoint, mode string, durationNS float64, jobs int) error {
	if ck == nil {
		return fmt.Errorf("multichip: nil checkpoint")
	}
	if ck.Mode != mode {
		return fmt.Errorf("multichip: checkpoint was taken in %s mode, resuming %s", ck.Mode, mode)
	}
	if ck.DurationNS != durationNS {
		return fmt.Errorf("multichip: checkpoint duration %v ns, resuming %v ns", ck.DurationNS, durationNS)
	}
	if ck.Jobs != jobs {
		return fmt.Errorf("multichip: checkpoint has %d jobs, resuming %d", ck.Jobs, jobs)
	}
	if ck.EpochsDone < 0 || !isFiniteRange(ck.ModelNS, 0, durationNS) ||
		!isFiniteRange(ck.ElapsedNS, 0, math.MaxFloat64) ||
		!isFiniteRange(ck.NextSampleNS, 0, math.MaxFloat64) {
		return fmt.Errorf("multichip: checkpoint position epochs=%d model=%v elapsed=%v",
			ck.EpochsDone, ck.ModelNS, ck.ElapsedNS)
	}
	if ck.BitChanges < 0 || ck.InducedBitChanges < 0 || ck.Flips < 0 || ck.InducedFlips < 0 {
		return fmt.Errorf("multichip: negative checkpoint counters")
	}
	if len(ck.Chips) == 0 || len(ck.Chips) > s.cfg.Chips {
		return fmt.Errorf("multichip: checkpoint has %d chips for a %d-chip system", len(ck.Chips), s.cfg.Chips)
	}
	if len(ck.ReceiverBelief) != len(ck.Chips) || len(ck.InduceRNG) != len(ck.Chips) {
		return fmt.Errorf("multichip: checkpoint belief/RNG tables do not match its %d chips", len(ck.Chips))
	}
	if ck.Fabric == nil {
		return fmt.Errorf("multichip: checkpoint is missing fabric state")
	}
	if (ck.Fault != nil) != (s.frt != nil) {
		return fmt.Errorf("multichip: checkpoint fault state does not match the fault configuration")
	}

	// The partition must cover every spin exactly once, each slice
	// strictly ascending (the invariant newChip and the shadow-update
	// paths rely on).
	seen := make([]bool, s.n)
	for pi, cs := range ck.Chips {
		if len(cs.Owned) == 0 {
			return fmt.Errorf("multichip: checkpoint chip %d owns no spins", pi)
		}
		prev := -1
		for _, g := range cs.Owned {
			if g < 0 || g >= s.n || g <= prev || seen[g] {
				return fmt.Errorf("multichip: checkpoint chip %d has invalid owned list", pi)
			}
			seen[g] = true
			prev = g
		}
		if cs.Machine == nil || len(cs.Machine.Spins) != len(cs.Owned) {
			return fmt.Errorf("multichip: checkpoint chip %d machine state is missing or mis-sized", pi)
		}
		if len(cs.Shadow) != s.n || len(cs.LastFlipInduced) != len(cs.Owned) {
			return fmt.Errorf("multichip: checkpoint chip %d shadow/attribution tables are mis-sized", pi)
		}
		if err := validateSpins(cs.Shadow); err != nil {
			return fmt.Errorf("multichip: checkpoint chip %d shadow: %w", pi, err)
		}
		if err := validateSpins(ck.ReceiverBelief[pi]); err != nil {
			return fmt.Errorf("multichip: checkpoint chip %d belief: %w", pi, err)
		}
		if len(ck.ReceiverBelief[pi]) != len(cs.Owned) {
			return fmt.Errorf("multichip: checkpoint chip %d belief is mis-sized", pi)
		}
	}
	for g, ok := range seen {
		if !ok {
			return fmt.Errorf("multichip: checkpoint partition does not cover spin %d", g)
		}
	}
	if mode == ModeBatch {
		if len(ck.JobStates) != jobs {
			return fmt.Errorf("multichip: checkpoint has %d job states for %d jobs", len(ck.JobStates), jobs)
		}
		for j, st := range ck.JobStates {
			if len(st) != s.n {
				return fmt.Errorf("multichip: checkpoint job %d state is mis-sized", j)
			}
			if err := validateSpins(st); err != nil {
				return fmt.Errorf("multichip: checkpoint job %d state: %w", j, err)
			}
		}
		totalEpochs := int(math.Ceil(durationNS / s.cfg.EpochNS))
		if ck.EpochsDone > totalEpochs {
			return fmt.Errorf("multichip: checkpoint at epoch %d of %d", ck.EpochsDone, totalEpochs)
		}
	}
	if ck.Fault != nil {
		fs := ck.Fault
		if len(fs.Dead) != len(ck.Chips) {
			return fmt.Errorf("multichip: checkpoint fault dead-table is mis-sized")
		}
		for _, msg := range fs.Pending {
			if msg.From < 0 || msg.From >= len(ck.Chips) {
				return fmt.Errorf("multichip: checkpoint pending message from chip %d", msg.From)
			}
			owned := ck.Chips[msg.From].Owned
			for _, u := range msg.Updates {
				if u.Li < 0 || u.Li >= len(owned) || owned[u.Li] != u.G || (u.V != -1 && u.V != 1) {
					return fmt.Errorf("multichip: checkpoint pending message has invalid update")
				}
			}
		}
		for _, wb := range fs.PendingBatch {
			if wb.Job < 0 || wb.Job >= jobs {
				return fmt.Errorf("multichip: checkpoint pending writeback for job %d", wb.Job)
			}
			for _, u := range wb.Updates {
				if u.G < 0 || u.G >= s.n || (u.V != -1 && u.V != 1) {
					return fmt.Errorf("multichip: checkpoint pending writeback has invalid update")
				}
			}
		}
	}

	// Rebuild the chip set to the checkpoint's partition. The global
	// warm-start handed to newChip is immediately overwritten by each
	// machine's Restore; assembling it from the snapshots just keeps
	// construction from inventing state.
	global := make([]int8, s.n)
	for _, cs := range ck.Chips {
		for li, g := range cs.Owned {
			global[g] = cs.Machine.Spins[li]
		}
	}
	chips := make([]*chip, len(ck.Chips))
	for i, cs := range ck.Chips {
		bc := s.cfg.Brim
		bc.Seed = cs.Machine.Seed
		c := newChip(i, s.model, s.lat, cs.Owned, s.scale, bc, s.cfg.EpochNS, global)
		// Restore replaces voltages, readout, external bias, holds,
		// timekeeping and the PRNG position verbatim; in particular the
		// external bias must NOT be recomputed from shadows, because a
		// fresh accumulation order would not be bit-identical to the
		// incrementally maintained one.
		if err := c.machine.Restore(cs.Machine); err != nil {
			return fmt.Errorf("multichip: checkpoint chip %d: %w", i, err)
		}
		copy(c.shadow, cs.Shadow)
		copy(c.lastFlipInduced, cs.LastFlipInduced)
		chips[i] = c
	}
	s.chips = chips
	s.receiverBelief = make([][]int8, len(ck.ReceiverBelief))
	for i, b := range ck.ReceiverBelief {
		s.receiverBelief[i] = append([]int8(nil), b...)
	}
	s.induceRNG = make([]*rng.Source, len(ck.InduceRNG))
	for i, st := range ck.InduceRNG {
		r := rng.New(0)
		r.SetState(st)
		s.induceRNG[i] = r
	}
	if err := s.fabric.Restore(ck.Fabric); err != nil {
		return fmt.Errorf("multichip: %w", err)
	}
	if s.frt != nil {
		fs := ck.Fault
		s.frt.dead = append([]bool(nil), fs.Dead...)
		s.frt.holds = make([]bool, len(chips))
		s.frt.pending = nil
		for _, msg := range fs.Pending {
			s.frt.pending = append(s.frt.pending, delayedMsg{from: msg.From, ups: fromPendingUpdates(msg.Updates)})
		}
		s.frt.pendingBatch = nil
		for _, wb := range fs.PendingBatch {
			s.frt.pendingBatch = append(s.frt.pendingBatch, delayedWriteback{job: wb.Job, ups: fromPendingUpdates(wb.Updates)})
		}
		s.frt.epochStallNS = 0
		s.frt.stats = fs.Stats
	}
	return nil
}

// isFiniteRange reports whether v is finite and within [lo, hi].
func isFiniteRange(v, lo, hi float64) bool {
	return !math.IsNaN(v) && v >= lo && v <= hi
}

// validateSpins rejects spin vectors the dynamics cannot have
// produced (anything but ±1).
func validateSpins(s []int8) error {
	for i, v := range s {
		if v != -1 && v != 1 {
			return fmt.Errorf("spin[%d]=%d", i, v)
		}
	}
	return nil
}
