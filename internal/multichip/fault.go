package multichip

import (
	"sort"

	"mbrim/internal/fault"
	"mbrim/internal/interconnect"
	"mbrim/internal/obs"
	"mbrim/internal/rng"
)

// This file threads the fault-injection layer (internal/fault) through
// the multiprocessor runtime: message faults on the epoch-boundary
// broadcasts, transient chip stalls, permanent chip loss, and the
// recovery policies — CRC detect + bounded retransmit, the
// shadow-staleness watchdog, and graceful degradation by repartition.
// Everything here is inert (s.frt == nil) unless Config.Faults is
// enabled, keeping fault-free runs bit-identical to the seed
// simulation.

// faultRuntime is the per-run mutable state of the fault layer. All
// mutation happens at epoch barriers on one goroutine; the injector
// itself is stateless and may be consulted from chip goroutines.
type faultRuntime struct {
	inj  *fault.Injector
	dead []bool // per-chip permanent-loss flags (current chip indexing)
	// holds marks chips whose integration freezes this epoch; computed
	// at the epoch barrier in chip order so event emission and
	// schedules are deterministic under host parallelism.
	holds []bool
	// pending are delayed boundary broadcasts awaiting delivery at the
	// next epoch (concurrent/sequential modes).
	pending []delayedMsg
	// pendingBatch are delayed batch-mode writebacks keyed by job.
	pendingBatch []delayedWriteback
	// epochStallNS is recovery stall accumulated this epoch (retransmit
	// backoff, repartition reprogramming), drained by takeEpochStall.
	epochStallNS float64
	stats        fault.Stats
}

// delayedMsg is one epoch-late boundary broadcast. from uses the chip
// indexing current at send time; repartition clears the queue, so the
// index never dangles.
type delayedMsg struct {
	from int
	ups  []update
}

// delayedWriteback is one epoch-late batch-mode job writeback.
type delayedWriteback struct {
	job int
	ups []update
}

func newFaultRuntime(inj *fault.Injector) *faultRuntime {
	return &faultRuntime{inj: inj}
}

// emit forwards an event when tracing is live.
func emitIf(tr obs.Tracer, e obs.Event) {
	if tr != nil {
		tr.Emit(e)
	}
}

// takeEpochStall drains the recovery stall accumulated this epoch,
// charging it to the fabric's stall ledger so Result.StallNS stays the
// one honest total.
func (frt *faultRuntime) takeEpochStall(f *interconnect.Fabric) float64 {
	ns := frt.epochStallNS
	frt.epochStallNS = 0
	if ns > 0 {
		f.AddStall(ns)
	}
	return ns
}

// liveFanout counts the live receivers of chip ci's broadcasts.
func (s *System) liveFanout(ci int) int {
	n := 0
	for di := range s.chips {
		if di != ci && !s.frt.dead[di] {
			n++
		}
	}
	return n
}

// liveChips counts chips still operating.
func (s *System) liveChips() int {
	if s.frt == nil {
		return len(s.chips)
	}
	n := 0
	for ci := range s.chips {
		if !s.frt.dead[ci] {
			n++
		}
	}
	return n
}

// beginFaultEpoch runs the epoch-start fault bookkeeping at the
// barrier, in chip order: permanent chip loss (with optional
// repartition recovery, which rebuilds s.chips), then this epoch's
// transient stall draws. remainingNS is the model time left in the
// run — the horizon handed to repartitioned machines.
func (s *System) beginFaultEpoch(epochNo int, remainingNS float64, tr obs.Tracer) {
	frt := s.frt
	if frt.dead == nil || len(frt.dead) != len(s.chips) {
		frt.dead = make([]bool, len(s.chips))
	}
	if victim, lost := frt.inj.LostChip(epochNo); lost && !frt.dead[victim] {
		frt.dead[victim] = true
		frt.stats.ChipLosses++
		emitIf(tr, obs.Event{Kind: obs.Fault, Label: "chip-loss", Epoch: epochNo,
			Chip: victim, Count: int64(len(s.chips[victim].owned))})
		s.cfg.Metrics.Counter("fault.chip_losses").Inc()
		if frt.inj.Config().Recovery.Repartition && s.liveChips() >= 1 && len(s.chips) > 1 {
			s.repartition(victim, epochNo, remainingNS, tr)
		}
	}
	if len(frt.holds) != len(s.chips) {
		frt.holds = make([]bool, len(s.chips))
	}
	for ci := range s.chips {
		frt.holds[ci] = false
		if frt.dead[ci] {
			continue
		}
		if frt.inj.ChipStalled(epochNo, ci) {
			frt.holds[ci] = true
			frt.stats.Stalls++
			emitIf(tr, obs.Event{Kind: obs.Fault, Label: "stall", Epoch: epochNo, Chip: ci})
			s.cfg.Metrics.Counter("fault.stalls").Inc()
		}
	}
}

// repartition is the graceful-degradation recovery: the dead chip's
// slice is redistributed round-robin onto the survivors, which are
// reprogrammed (via the same chip-construction machinery the
// reconfigurable module array uses) and warm-started from the current
// global truth. The cost is charged honestly: each survivor broadcasts
// a bitmap of its newly acquired spins (kind "resync") and the system
// stalls RepartitionNSPerSpin per moved spin while coupler rows are
// rewritten.
func (s *System) repartition(victim, epochNo int, remainingNS float64, tr obs.Tracer) {
	frt := s.frt
	global := s.GlobalSpins() // includes the dead chip's frozen slice
	moved := s.chips[victim].owned
	var survivors []int
	for ci := range s.chips {
		if !frt.dead[ci] {
			survivors = append(survivors, ci)
		}
	}
	if len(survivors) == 0 {
		return
	}
	parts := make([][]int, len(survivors))
	added := make([]int, len(survivors))
	for i, ci := range survivors {
		parts[i] = append([]int(nil), s.chips[ci].owned...)
	}
	for i, g := range moved {
		parts[i%len(parts)] = append(parts[i%len(parts)], g)
		added[i%len(parts)]++
	}
	newChips := make([]*chip, len(survivors))
	newBelief := make([][]int8, len(survivors))
	newRNG := make([]*rng.Source, len(survivors))
	for i, part := range parts {
		sort.Ints(part)
		bc := s.cfg.Brim
		bc.Seed = s.cfg.Seed + uint64(survivors[i])
		nc := newChip(i, s.model, s.lat, part, s.scale, bc, s.cfg.EpochNS, global)
		nc.machine.SetHorizon(remainingNS)
		newChips[i] = nc
		newBelief[i] = nc.ownedSpins()
		newRNG[i] = s.induceRNG[survivors[i]]
	}
	s.chips = newChips
	s.receiverBelief = newBelief
	s.induceRNG = newRNG
	frt.dead = make([]bool, len(newChips))
	frt.holds = make([]bool, len(newChips))
	// In-flight delayed broadcasts describe the old configuration; the
	// full warm-start from global truth supersedes them.
	frt.pending = nil

	resyncBytes := 0.0
	for i := range newChips {
		if added[i] == 0 || len(newChips) == 1 {
			continue
		}
		b := float64(added[i]) / 8 * float64(len(newChips)-1)
		s.fabric.Record(i, b, "resync")
		resyncBytes += b
	}
	stallNS := frt.inj.Config().Recovery.RepartitionNSPerSpin * float64(len(moved))
	frt.epochStallNS += stallNS
	frt.stats.Repartitions++
	frt.stats.ResyncBytes += resyncBytes
	frt.stats.RecoveryStallNS += stallNS
	emitIf(tr, obs.Event{Kind: obs.Recovery, Label: "repartition", Epoch: epochNo,
		Chip: victim, Count: int64(len(moved)), Value: resyncBytes, StallNS: stallNS})
	s.spanPoint("recovery_repartition", victim, stallNS, int64(len(moved)), stallNS)
	s.cfg.Metrics.Counter("fault.repartitions").Inc()
}

// deliverPending applies last epoch's delayed broadcasts, in send
// order, before the current boundary's fresh updates are computed —
// late but in-order delivery.
func (s *System) deliverPending() {
	frt := s.frt
	if len(frt.pending) == 0 {
		return
	}
	for _, msg := range frt.pending {
		s.applyBroadcast(msg.ups)
	}
	frt.pending = frt.pending[:0]
}

// applyBroadcast updates every live non-owner chip's shadow registers
// with the payload.
func (s *System) applyBroadcast(ups []update) {
	for di, d := range s.chips {
		if s.frt != nil && s.frt.dead[di] {
			continue
		}
		for _, u := range ups {
			if _, own := d.local[u.g]; own {
				continue
			}
			d.applyShadowUpdate(u.g, u.v)
		}
	}
}

// faultSend pushes one boundary broadcast through the fault layer:
// charge the send, resolve drop/corrupt (with CRC detect + bounded
// retransmit when enabled), then deliver — immediately, one epoch
// late, corrupted, or not at all. Returns the bit changes transmitted
// and the induced subset, matching the fault-free accounting.
func (s *System) faultSend(epochNo, ci int, ups []update, tr obs.Tracer) (total, induced int64) {
	frt := s.frt
	cfg := frt.inj.Config()
	c := s.chips[ci]
	total = int64(len(ups))
	for _, u := range ups {
		if u.induced {
			induced++
		}
	}
	fanout := s.liveFanout(ci)
	bytes := interconnect.DeltaSyncBytes(len(ups), len(c.owned), fanout)
	s.fabric.Record(ci, bytes, "sync")

	plan := frt.inj.Message(epochNo, ci, 0)
	if plan.Drop {
		frt.stats.Drops++
		emitIf(tr, obs.Event{Kind: obs.Fault, Label: "drop", Epoch: epochNo, Chip: ci,
			Count: int64(len(ups))})
		s.cfg.Metrics.Counter("fault.drops").Inc()
	} else if plan.Corrupt {
		frt.stats.Corruptions++
		emitIf(tr, obs.Event{Kind: obs.Fault, Label: "corrupt", Epoch: epochNo, Chip: ci,
			Count: int64(len(ups))})
		s.cfg.Metrics.Counter("fault.corruptions").Inc()
	}

	delivered := true
	corrupt := plan.Corrupt
	salt := plan.Salt
	if plan.Faulted() && cfg.Recovery.Detect {
		// CRC caught the damage; retransmit with backoff, bounded.
		corrupt = false
		delivered = false
		attempts := 0
		for a := 1; a <= cfg.Recovery.MaxRetransmits; a++ {
			attempts++
			s.fabric.Record(ci, bytes, "retransmit")
			frt.stats.Retransmits++
			frt.stats.RetransmitBytes += bytes
			frt.stats.RecoveryStallNS += cfg.Recovery.RetransmitBackoffNS
			frt.epochStallNS += cfg.Recovery.RetransmitBackoffNS
			if !frt.inj.Message(epochNo, ci, a).Faulted() {
				delivered = true
				break
			}
		}
		emitIf(tr, obs.Event{Kind: obs.Recovery, Label: "retransmit", Epoch: epochNo,
			Chip: ci, Count: int64(attempts), Value: bytes * float64(attempts),
			StallNS: cfg.Recovery.RetransmitBackoffNS * float64(attempts)})
		backoff := cfg.Recovery.RetransmitBackoffNS * float64(attempts)
		s.spanPoint("recovery_retransmit", ci, backoff, int64(attempts), backoff)
		s.cfg.Metrics.Counter("fault.retransmits").Add(int64(attempts))
		if !delivered {
			// Retries exhausted: the sender KNOWS delivery failed, so
			// it keeps its belief ledger stale and the changes ride the
			// next boundary sync naturally.
			return total, induced
		}
	} else if plan.Drop {
		// Undetected loss: the sender believes it delivered. Commit the
		// belief ledger but never touch the shadows — silent staleness.
		delivered = false
	}

	// The sender now believes the payload landed (true for clean and
	// corrupted deliveries, silently false for undetected drops).
	for _, u := range ups {
		s.receiverBelief[ci][u.li] = u.v
	}
	if !delivered {
		return total, induced
	}

	payload := ups
	if corrupt {
		payload = append([]update(nil), ups...)
		i := int(salt % uint64(len(payload)))
		payload[i].v = -payload[i].v
	}
	if plan.Delay {
		frt.stats.Delays++
		emitIf(tr, obs.Event{Kind: obs.Fault, Label: "delay", Epoch: epochNo, Chip: ci,
			Count: int64(len(ups))})
		s.cfg.Metrics.Counter("fault.delays").Inc()
		frt.pending = append(frt.pending, delayedMsg{from: ci, ups: payload})
		return total, induced
	}
	s.applyBroadcast(payload)
	return total, induced
}

// watchdog is the shadow-staleness recovery: after the boundary sync,
// any live chip whose receiver shadows diverge from its true readout
// by more than the threshold broadcasts a full bitmap of its slice,
// repairing every shadow and the belief ledger at full-bitmap cost.
// All receivers of a broadcast apply identical payloads, so one
// representative receiver measures the divergence exactly.
func (s *System) watchdog(epochNo int, tr obs.Tracer) {
	frt := s.frt
	th := frt.inj.Config().Recovery.WatchdogThreshold
	if th <= 0 || len(s.chips) < 2 {
		return
	}
	for ci, c := range s.chips {
		if frt.dead[ci] {
			continue
		}
		recv := -1
		for di := range s.chips {
			if di != ci && !frt.dead[di] {
				recv = di
				break
			}
		}
		if recv == -1 {
			continue
		}
		cur := c.machine.Spins()
		sh := s.chips[recv].shadow
		stale := 0
		for li, g := range c.owned {
			if sh[g] != cur[li] {
				stale++
			}
		}
		div := float64(stale) / float64(len(c.owned))
		s.cfg.Metrics.Histogram("fault.divergence").Observe(div)
		if div <= th {
			continue
		}
		fanout := s.liveFanout(ci)
		bytes := float64(len(c.owned)) / 8 * float64(fanout)
		s.fabric.Record(ci, bytes, "resync")
		for di, d := range s.chips {
			if di == ci || frt.dead[di] {
				continue
			}
			for li, g := range c.owned {
				d.applyShadowUpdate(g, cur[li])
			}
		}
		copy(s.receiverBelief[ci], cur)
		// Drop any delayed broadcast from this chip still in flight: the
		// bitmap supersedes it, and late delivery would re-stale the
		// freshly repaired shadows.
		kept := frt.pending[:0]
		for _, msg := range frt.pending {
			if msg.from != ci {
				kept = append(kept, msg)
			}
		}
		frt.pending = kept
		frt.stats.Resyncs++
		frt.stats.ResyncBytes += bytes
		emitIf(tr, obs.Event{Kind: obs.Recovery, Label: "resync", Epoch: epochNo,
			Chip: ci, Count: int64(len(c.owned)), Value: bytes, Aux: div})
		s.spanPoint("recovery_resync", ci, 0, int64(len(c.owned)), 0)
		s.cfg.Metrics.Counter("fault.resyncs").Inc()
	}
}

// accountBatchSend does the shared-state half of a batch-mode fault
// resolution at the barrier merge, in chip order: fabric retransmit
// charges, stall, stats, and events. bytes is the clean send's fabric
// cost (already recorded under "sync"); count is the writeback size.
func (s *System) accountBatchSend(epochNo, ci int, plan fault.MessagePlan, attempts int, lost, delayed bool, bytes float64, count int64, tr obs.Tracer) {
	frt := s.frt
	cfg := frt.inj.Config()
	if plan.Drop {
		frt.stats.Drops++
		emitIf(tr, obs.Event{Kind: obs.Fault, Label: "drop", Epoch: epochNo, Chip: ci, Count: count})
		s.cfg.Metrics.Counter("fault.drops").Inc()
	} else if plan.Corrupt {
		frt.stats.Corruptions++
		emitIf(tr, obs.Event{Kind: obs.Fault, Label: "corrupt", Epoch: epochNo, Chip: ci, Count: count})
		s.cfg.Metrics.Counter("fault.corruptions").Inc()
	}
	if attempts > 0 {
		for a := 0; a < attempts; a++ {
			s.fabric.Record(ci, bytes, "retransmit")
		}
		frt.stats.Retransmits += int64(attempts)
		frt.stats.RetransmitBytes += bytes * float64(attempts)
		backoff := cfg.Recovery.RetransmitBackoffNS * float64(attempts)
		frt.stats.RecoveryStallNS += backoff
		frt.epochStallNS += backoff
		emitIf(tr, obs.Event{Kind: obs.Recovery, Label: "retransmit", Epoch: epochNo,
			Chip: ci, Count: int64(attempts), Value: bytes * float64(attempts), StallNS: backoff})
		s.spanPoint("recovery_retransmit", ci, backoff, int64(attempts), backoff)
		s.cfg.Metrics.Counter("fault.retransmits").Add(int64(attempts))
	}
	if delayed && !lost {
		frt.stats.Delays++
		emitIf(tr, obs.Event{Kind: obs.Fault, Label: "delay", Epoch: epochNo, Chip: ci, Count: count})
		s.cfg.Metrics.Counter("fault.delays").Inc()
	}
}

// resolveBatchSend decides the fate of one batch-mode writeback
// broadcast without touching shared state, so chip goroutines can call
// it; the barrier merge does the accounting. It returns whether the
// payload lands, whether it lands a full epoch late, how many
// retransmit attempts were spent, and the (possibly corrupted)
// payload to apply.
func (frt *faultRuntime) resolveBatchSend(epochNo, ci int, ups []update) (delivered, delayed bool, attempts int, plan fault.MessagePlan, payload []update) {
	cfg := frt.inj.Config()
	plan = frt.inj.Message(epochNo, ci, 0)
	payload = ups
	delivered = true
	corrupt := plan.Corrupt
	if plan.Faulted() && cfg.Recovery.Detect {
		corrupt = false
		delivered = false
		for a := 1; a <= cfg.Recovery.MaxRetransmits; a++ {
			attempts++
			if !frt.inj.Message(epochNo, ci, a).Faulted() {
				delivered = true
				break
			}
		}
	} else if plan.Drop {
		delivered = false
	}
	if delivered && corrupt {
		payload = append([]update(nil), ups...)
		i := int(plan.Salt % uint64(len(payload)))
		payload[i].v = -payload[i].v
	}
	delayed = delivered && plan.Delay
	return delivered, delayed, attempts, plan, payload
}
