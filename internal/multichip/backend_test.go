package multichip

import (
	"context"
	"testing"

	"mbrim/internal/lattice"
)

// TestBackendsBitIdenticalWithResume pins the lattice refactor's
// contract at the system level: chip extraction and the per-chip
// dynamics through any coupling backend reproduce the dense run's full
// ledger exactly, and an interrupted-and-resumed run on a non-dense
// backend still matches — checkpoints carry no backend state, so the
// choice must not leak into the trajectory.
func TestBackendsBitIdenticalWithResume(t *testing.T) {
	m := kgraph(48, 2)
	const duration = 40
	base := Config{Chips: 4, Seed: 5}
	ref := MustSystem(m, base).RunConcurrent(duration)
	for _, backend := range []lattice.Kind{lattice.CSR, lattice.Blocked} {
		cfg := base
		cfg.Backend = backend
		got := MustSystem(m, cfg).RunConcurrent(duration)
		sameLedger(t, ref, got)

		runC := func(s *System, ctx context.Context, ck *Checkpoint) (*Result, *Checkpoint, error) {
			return s.RunConcurrentCtx(ctx, duration, ck)
		}
		ck := interruptAt(t, m, cfg, 3, runC)
		resumed, ck2, err := MustSystem(m, cfg).RunConcurrentCtx(context.Background(), duration, ck)
		if err != nil || ck2 != nil {
			t.Fatalf("%v resume: err=%v, checkpoint=%v", backend, err, ck2)
		}
		sameLedger(t, ref, resumed)
	}
}
