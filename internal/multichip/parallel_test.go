package multichip

import (
	"testing"

	"mbrim/internal/fault"
	"mbrim/internal/interconnect"
	"mbrim/internal/ising"
)

func TestParallelConcurrentMatchesSequential(t *testing.T) {
	// Host parallelism is an implementation detail: the simulated
	// system must be bit-identical.
	m := kgraph(64, 1)
	seq := MustSystem(m, Config{Chips: 4, Seed: 2}).RunConcurrent(30)
	par := MustSystem(m, Config{Chips: 4, Seed: 2, Parallel: true}).RunConcurrent(30)
	if seq.Energy != par.Energy || ising.HammingDistance(seq.Spins, par.Spins) != 0 {
		t.Fatal("parallel concurrent run diverged from sequential")
	}
	if seq.Flips != par.Flips || seq.BitChanges != par.BitChanges ||
		seq.TrafficBytes != par.TrafficBytes || seq.InducedFlips != par.InducedFlips {
		t.Fatal("parallel counters diverged from sequential")
	}
}

func TestParallelBatchMatchesSequential(t *testing.T) {
	m := kgraph(64, 3)
	seq := MustSystem(m, Config{Chips: 4, Seed: 4, EpochNS: 5}).RunBatch(4, 40)
	par := MustSystem(m, Config{Chips: 4, Seed: 4, EpochNS: 5, Parallel: true}).RunBatch(4, 40)
	if seq.BestEnergy != par.BestEnergy || seq.TrafficBytes != par.TrafficBytes {
		t.Fatal("parallel batch diverged from sequential")
	}
	for j := range seq.Jobs {
		if ising.HammingDistance(seq.Jobs[j], par.Jobs[j]) != 0 {
			t.Fatalf("job %d state diverged", j)
		}
	}
}

func TestParallelBatchCoordinatedMatches(t *testing.T) {
	m := kgraph(48, 5)
	seq := MustSystem(m, Config{Chips: 4, Seed: 6, EpochNS: 5, Coordinated: true}).RunBatch(4, 30)
	par := MustSystem(m, Config{Chips: 4, Seed: 6, EpochNS: 5, Coordinated: true, Parallel: true}).RunBatch(4, 30)
	if seq.BestEnergy != par.BestEnergy || seq.TrafficBytes != par.TrafficBytes {
		t.Fatal("coordinated parallel batch diverged")
	}
}

func TestParallelFewerJobsThanChipsStaysCorrect(t *testing.T) {
	// jobs < chips forces the sequential path even when Parallel is
	// set; the results must still match a sequential run.
	m := kgraph(48, 7)
	seq := MustSystem(m, Config{Chips: 4, Seed: 8, EpochNS: 5}).RunBatch(2, 30)
	par := MustSystem(m, Config{Chips: 4, Seed: 8, EpochNS: 5, Parallel: true}).RunBatch(2, 30)
	if seq.BestEnergy != par.BestEnergy {
		t.Fatal("jobs<chips parallel batch diverged")
	}
}

func TestParallelSingleChip(t *testing.T) {
	m := kgraph(32, 9)
	res := MustSystem(m, Config{Chips: 1, Seed: 10, Parallel: true}).RunConcurrent(20)
	if res.Flips == 0 {
		t.Fatal("single-chip parallel run did nothing")
	}
}

func TestTopologyAffectsStalls(t *testing.T) {
	m := kgraph(64, 20)
	run := func(topo interconnect.Topology) float64 {
		return MustSystem(m, Config{
			Chips: 4, Seed: 21, Channels: 1, ChannelBytesPerNS: 0.02,
			Topology: topo,
		}).RunConcurrent(30).StallNS
	}
	dedicated := run(interconnect.Dedicated)
	bus := run(interconnect.SharedBus)
	if dedicated <= 0 {
		t.Fatal("starved dedicated fabric did not stall")
	}
	if bus <= dedicated {
		t.Fatalf("shared bus (%v) should stall more than dedicated (%v)", bus, dedicated)
	}
}

func TestCustomPartition(t *testing.T) {
	m := kgraph(40, 30)
	// Heterogeneous chips: 24 + 10 + 6 spins.
	parts := [][]int{{}, {}, {}}
	for i := 0; i < 24; i++ {
		parts[0] = append(parts[0], i)
	}
	for i := 24; i < 34; i++ {
		parts[1] = append(parts[1], i)
	}
	for i := 34; i < 40; i++ {
		parts[2] = append(parts[2], i)
	}
	res := MustSystem(m, Config{Chips: 3, Seed: 31, Partition: parts}).RunConcurrent(30)
	if !ising.ValidSpins(res.Spins) || len(res.Spins) != 40 {
		t.Fatal("invalid result with custom partition")
	}
	if res.Energy >= 0 {
		t.Fatalf("no progress: %v", res.Energy)
	}
}

func TestCustomPartitionValidation(t *testing.T) {
	m := kgraph(8, 32)
	for name, parts := range map[string][][]int{
		"wrong count": {{0, 1, 2, 3}, {4, 5, 6, 7}},
		"duplicate":   {{0, 1, 2}, {2, 3, 4}, {5, 6, 7}},
		"missing":     {{0, 1}, {2, 3}, {4, 5}},
		"empty part":  {{0, 1, 2, 3, 4, 5, 6, 7}, {}, nil},
		"range":       {{0, 1, 2}, {3, 4, 5}, {6, 7, 99}},
	} {
		if _, err := NewSystem(m, Config{Chips: 3, Seed: 1, Partition: parts}); err == nil {
			t.Fatalf("%s did not error", name)
		}
	}
}

func TestConfigValidationErrors(t *testing.T) {
	m := kgraph(8, 32)
	for name, cfg := range map[string]Config{
		"too many chips": {Chips: 9},
		"neg chips":      {Chips: -1},
		"neg epoch":      {Chips: 2, EpochNS: -1},
		"neg interval":   {Chips: 2, FlipIntervalNS: -1},
		"neg channels":   {Chips: 2, Channels: -1},
		"bad topology":   {Chips: 2, Topology: interconnect.Topology(42)},
		"bad fault rate": {Chips: 2, Faults: fault.Config{DropRate: 1.5}},
		"bad loss chip":  {Chips: 2, Faults: fault.Config{ChipLossEpoch: 1, ChipLossChip: 7}},
	} {
		if _, err := NewSystem(m, cfg); err == nil {
			t.Fatalf("%s did not error", name)
		}
	}
}
