package multichip

import (
	"math"
	"testing"
)

func TestPlanLayoutPaperExamples(t *testing.T) {
	// Fig 7's three configurations for a 4×4-module chip.
	cases := []struct {
		chips                    int
		rows, cols               int
		regular, shadow, pass    int
		spinsPerChip, totalSpins int
	}{
		{1, 4, 4, 4, 0, 12, 4, 4},    // ② 4n×4n standalone
		{4, 2, 8, 2, 6, 8, 2, 8},     // ① 2n×8n in a 4-chip system
		{16, 1, 16, 1, 15, 0, 1, 16}, // ③ 1n×16n in a 16-chip system
	}
	for _, c := range cases {
		l, err := PlanLayout(4, 1, c.chips)
		if err != nil {
			t.Fatalf("chips=%d: %v", c.chips, err)
		}
		if l.RowsModules != c.rows || l.ColsModules != c.cols {
			t.Fatalf("chips=%d: slice %dx%d, want %dx%d",
				c.chips, l.RowsModules, l.ColsModules, c.rows, c.cols)
		}
		if l.RegularModules != c.regular || l.ShadowModules != c.shadow || l.PassThroughModules != c.pass {
			t.Fatalf("chips=%d: modes %d/%d/%d, want %d/%d/%d", c.chips,
				l.RegularModules, l.ShadowModules, l.PassThroughModules,
				c.regular, c.shadow, c.pass)
		}
		if l.SpinsPerChip != c.spinsPerChip || l.TotalSpins != c.totalSpins {
			t.Fatalf("chips=%d: spins %d/%d, want %d/%d", c.chips,
				l.SpinsPerChip, l.TotalSpins, c.spinsPerChip, c.totalSpins)
		}
		if err := l.Validate(); err != nil {
			t.Fatalf("chips=%d: %v", c.chips, err)
		}
	}
}

func TestPlanLayoutModuleNScales(t *testing.T) {
	l, err := PlanLayout(4, 2000, 4)
	if err != nil {
		t.Fatal(err)
	}
	// 4×4 modules of 2000 nodes → the paper's 8000-spin chip; four of
	// them form a 16000-spin multiprocessor in this layout family.
	if l.SpinsPerChip != 4000 || l.TotalSpins != 16000 {
		t.Fatalf("spins %d/%d", l.SpinsPerChip, l.TotalSpins)
	}
}

func TestPlanLayoutRejectsInvalid(t *testing.T) {
	if _, err := PlanLayout(4, 1, 2); err == nil {
		t.Fatal("accepted non-square chip count")
	}
	if _, err := PlanLayout(4, 1, 9); err == nil {
		t.Fatal("accepted √chips that does not divide K")
	}
	if _, err := PlanLayout(0, 1, 1); err == nil {
		t.Fatal("accepted K=0")
	}
	if _, err := PlanLayout(4, 0, 1); err == nil {
		t.Fatal("accepted moduleN=0")
	}
	if _, err := PlanLayout(4, 1, 0); err == nil {
		t.Fatal("accepted chips=0")
	}
}

func TestModeGridCounts(t *testing.T) {
	for _, chips := range []int{1, 4, 16} {
		l, err := PlanLayout(4, 1, chips)
		if err != nil {
			t.Fatal(err)
		}
		grid := l.ModeGrid()
		counts := map[ModuleMode]int{}
		for _, row := range grid {
			for _, m := range row {
				counts[m]++
			}
		}
		if counts[Regular] != l.RegularModules ||
			counts[ShadowCopy] != l.ShadowModules ||
			counts[PassThrough] != l.PassThroughModules {
			t.Fatalf("chips=%d: grid counts %v disagree with layout", chips, counts)
		}
	}
}

func TestModuleModeString(t *testing.T) {
	if Regular.String() != "regular" || ShadowCopy.String() != "shadow" ||
		PassThrough.String() != "pass-through" {
		t.Fatal("mode names wrong")
	}
	if ModuleMode(7).String() != "ModuleMode(7)" {
		t.Fatal("unknown mode name wrong")
	}
}

func TestPackMonolithicWaste(t *testing.T) {
	// Fig 4's scenario: a 2×2 macrochip of N-node chips solving two
	// N-node problems uses only the diagonal — utilization 1/2· (n²+n²)/(2n)².
	p, err := PackMonolithic(100, 2, []int{100, 100})
	if err != nil {
		t.Fatal(err)
	}
	if p.ChipsUsed != 4 {
		t.Fatalf("monolithic macrochip must commit all %d chips, got %d", 4, p.ChipsUsed)
	}
	if got, want := p.Utilization(), 0.5; math.Abs(got-want) > 1e-12 {
		t.Fatalf("utilization %v, want %v", got, want)
	}
}

func TestPackMonolithicRejectsOverflow(t *testing.T) {
	if _, err := PackMonolithic(100, 2, []int{150, 100}); err == nil {
		t.Fatal("accepted problems exceeding macrochip capacity")
	}
	if _, err := PackMonolithic(100, 2, []int{0}); err == nil {
		t.Fatal("accepted zero-size problem")
	}
}

func TestPackReconfigurableAvoidsWaste(t *testing.T) {
	// The same two N-node problems on reconfigurable chips use two
	// chips at full utilization.
	p, err := PackReconfigurable(100, []int{100, 100})
	if err != nil {
		t.Fatal(err)
	}
	if p.ChipsUsed != 2 {
		t.Fatalf("chips used %d, want 2", p.ChipsUsed)
	}
	if p.Utilization() != 1 {
		t.Fatalf("utilization %v, want 1", p.Utilization())
	}
}

func TestPackReconfigurableBinPacks(t *testing.T) {
	// 60+40 fit one chip; 80 needs its own.
	p, err := PackReconfigurable(100, []int{60, 80, 40})
	if err != nil {
		t.Fatal(err)
	}
	if p.ChipsUsed != 2 {
		t.Fatalf("chips used %d, want 2 (FFD packing)", p.ChipsUsed)
	}
	total := 0
	for _, chip := range p.PerChip {
		sum := 0
		for _, n := range chip {
			sum += n
			total += n
		}
		if sum > 100 {
			t.Fatalf("chip overloaded: %v", chip)
		}
	}
	if total != 180 {
		t.Fatalf("problems lost in packing: %d nodes placed", total)
	}
}

func TestPackReconfigurableRejectsOversize(t *testing.T) {
	if _, err := PackReconfigurable(100, []int{101}); err == nil {
		t.Fatal("accepted problem larger than one chip")
	}
}

func TestReconfigurableBeatsMonolithicUtilization(t *testing.T) {
	// The headline of Sec 4.2: for k same-size problems, monolithic
	// utilization is 1/k while reconfigurable stays 1.
	for _, k := range []int{2, 3, 4} {
		problems := make([]int, k)
		for i := range problems {
			problems[i] = 50
		}
		mono, err := PackMonolithic(50, k, problems)
		if err != nil {
			t.Fatal(err)
		}
		reconf, err := PackReconfigurable(50, problems)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(mono.Utilization()-1/float64(k)) > 1e-12 {
			t.Fatalf("k=%d: monolithic utilization %v, want %v", k, mono.Utilization(), 1/float64(k))
		}
		if reconf.Utilization() != 1 {
			t.Fatalf("k=%d: reconfigurable utilization %v", k, reconf.Utilization())
		}
	}
}
