package multichip

import (
	"fmt"
	"math"

	"mbrim/internal/graph"
	"mbrim/internal/ising"
	"mbrim/internal/rng"
)

// This file implements the distributed counterpart of System: a Slice
// hosts exactly ONE chip of a k-chip system on behalf of a remote
// coordinator (internal/cluster). The coordinator plays the role of
// RunConcurrentCtx's epoch loop and of the fabric; the Slice plays the
// role of one chip plus its belief ledger and kick PRNG.
//
// The contract is bit-identical parity: k Slices built from the same
// (model, Config, durationNS) and driven in lockstep — RunEpoch on
// every slice, then cross-delivery of the reported updates in ascending
// chip order — produce exactly the trajectory System.RunConcurrentCtx
// produces for the same inputs. That works because NewSlice replicates
// NewSystem's derivation chain verbatim (initial spins from the seed
// master, kick source = clone or fork of master.Fork(0xC0), brim seed =
// Seed + chip index, partition = Config.Partition or BlockPartition)
// and because rng.Fork derives children without disturbing the parent,
// so building chip ci alone draws the same streams chip ci gets inside
// a full System.

// Slice is one chip of a multiprocessor system hosted in isolation,
// stepped one epoch at a time by an external coordinator. It is not
// safe for concurrent use.
type Slice struct {
	model *ising.Model
	cfg   Config
	n     int
	ci    int

	durationNS float64
	chip       *chip
	induce     *rng.Source
	// belief mirrors System.receiverBelief[ci]: what every other chip
	// currently believes this slice's owned spins hold. RunEpoch
	// reports only disagreements and then advances the ledger, exactly
	// like syncEpoch (the cluster wire is logically reliable — the
	// coordinator retries until delivery, so sends are never lost).
	belief []int8

	modelNS float64
	epochs  int
}

// EpochReport is what one slice tells the coordinator at an epoch
// barrier: the boundary broadcast (owned spins that changed since the
// last barrier), the owned readout, and the counters the coordinator
// ledgers.
type EpochReport struct {
	// Epoch is the 1-based epoch just completed; EpochNS its model
	// duration; ModelNS the slice's position after it.
	Epoch   int     `json:"epoch"`
	EpochNS float64 `json:"epochNS"`
	ModelNS float64 `json:"modelNS"`
	// Updates is the boundary broadcast in owned order.
	Updates []PendingUpdate `json:"updates,omitempty"`
	// Spins is the owned readout after the epoch, in owned order — the
	// coordinator's global mirror (energy sampling, final assembly)
	// comes from these, so no separate readout RPC exists.
	Spins []int8 `json:"spins"`
	// Flips / InducedFlips are the machine's CUMULATIVE counters (what
	// Result reads at run end); Kicks and StepRetries are this epoch's.
	Flips        int64 `json:"flips"`
	InducedFlips int64 `json:"inducedFlips"`
	Kicks        int64 `json:"kicks,omitempty"`
	StepRetries  int64 `json:"stepRetries,omitempty"`
}

// SliceState is a slice's resumable snapshot at an epoch barrier,
// after the barrier's cross-chip updates were applied (ApplySync). It
// is the hand-off unit of cluster recovery: a coordinator collects one
// per slice and either re-creates a lost worker's slice from it or
// assembles all of them into a full multichip Checkpoint.
type SliceState struct {
	Chip       int       `json:"chip"`
	DurationNS float64   `json:"durationNS"`
	ModelNS    float64   `json:"modelNS"`
	Epochs     int       `json:"epochs"`
	State      ChipState `json:"state"`
	Belief     []int8    `json:"belief"`
	InduceRNG  [4]uint64 `json:"induceRNG"`
}

// NewSlice builds chip ci of the cfg.Chips-chip system over m, exactly
// as NewSystem would, without building the other chips. durationNS is
// the full run horizon (needed up front: induced-flip schedules are
// driven by run progress). The modeled fault layer belongs to the
// in-process simulator; a cluster solve meets real faults instead, so
// enabling Config.Faults here is an error.
func NewSlice(m *ising.Model, cfg Config, ci int, durationNS float64) (*Slice, error) {
	n := m.N()
	c, err := cfg.withDefaults(n)
	if err != nil {
		return nil, err
	}
	if c.Faults.Enabled() {
		return nil, fmt.Errorf("multichip: slices host real distributed runs; the modeled fault layer (Config.Faults) is not supported")
	}
	if ci < 0 || ci >= c.Chips {
		return nil, fmt.Errorf("multichip: slice index %d of %d chips", ci, c.Chips)
	}
	if durationNS <= 0 || math.IsNaN(durationNS) {
		return nil, fmt.Errorf("multichip: slice duration=%v", durationNS)
	}
	s := &Slice{model: m, cfg: c, n: n, ci: ci, durationNS: durationNS}

	lat := m.View(c.Backend)
	scale := m.MaxRowNorm2()
	if scale == 0 {
		scale = 1
	}
	// The derivation chain below must track NewSystem exactly — any
	// divergence breaks the cluster-vs-in-process parity contract.
	master := rng.New(c.Seed)
	initial := ising.RandomSpins(n, master)
	parts := c.Partition
	if parts == nil {
		parts = graph.BlockPartition(n, c.Chips)
	} else if len(parts) != c.Chips {
		return nil, fmt.Errorf("multichip: Partition has %d parts for %d chips", len(parts), c.Chips)
	}
	if len(parts[ci]) == 0 {
		return nil, fmt.Errorf("multichip: slice %d owns no spins", ci)
	}
	kickMaster := master.Fork(0xC0)
	bc := c.Brim
	bc.Seed = c.Seed + uint64(ci)
	s.chip = newChip(ci, m, lat, parts[ci], scale, bc, c.EpochNS, initial)
	s.belief = s.chip.ownedSpins()
	if c.Coordinated {
		s.induce = kickMaster.Clone()
	} else {
		s.induce = kickMaster.Fork(uint64(ci) + 1)
	}
	s.chip.machine.SetHorizon(durationNS)
	return s, nil
}

// Chip returns the slice's chip index.
func (s *Slice) Chip() int { return s.ci }

// Owned returns the global spin indices this slice owns, ascending.
func (s *Slice) Owned() []int { return append([]int(nil), s.chip.owned...) }

// Epochs returns how many epochs the slice has completed.
func (s *Slice) Epochs() int { return s.epochs }

// ModelNS returns the slice's model-time position.
func (s *Slice) ModelNS() float64 { return s.modelNS }

// Done reports whether the slice has reached its run horizon.
func (s *Slice) Done() bool { return s.modelNS >= s.durationNS-1e-9 }

// RunEpoch integrates one epoch — flip-interval chunks with induced
// draws between them, mirroring RunConcurrentCtx's chip body — then
// computes the boundary broadcast against the belief ledger and
// advances the ledger. The caller must have delivered the previous
// barrier's cross-chip updates (ApplySync) first.
func (s *Slice) RunEpoch() (*EpochReport, error) {
	if s.Done() {
		return nil, fmt.Errorf("multichip: slice %d past its %v ns horizon", s.ci, s.durationNS)
	}
	c := s.chip
	c.resetEpochCounters()
	epoch := math.Min(s.cfg.EpochNS, s.durationNS-s.modelNS)
	t := 0.0
	for t < epoch-1e-9 {
		chunk := math.Min(s.cfg.FlipIntervalNS, epoch-t)
		if err := c.machine.Run(chunk); err != nil {
			return nil, err
		}
		t += chunk
		s.drawInduced((s.modelNS + t) / s.durationNS)
	}
	s.modelNS += epoch
	s.epochs++

	rep := &EpochReport{
		Epoch:        s.epochs,
		EpochNS:      epoch,
		ModelNS:      s.modelNS,
		Spins:        c.ownedSpins(),
		Flips:        c.machine.Flips(),
		InducedFlips: c.machine.InducedFlips(),
		Kicks:        c.epochKicks,
		// Draining the guardrail-retry ledger at every barrier keeps it
		// zero in snapshots, like System.drainStepRetries does.
		StepRetries: c.machine.TakeEpochRetries(),
	}
	for li, g := range c.owned {
		if rep.Spins[li] != s.belief[li] {
			rep.Updates = append(rep.Updates, PendingUpdate{Li: li, G: g, V: rep.Spins[li], Induced: c.lastFlipInduced[li]})
		}
	}
	for _, u := range rep.Updates {
		s.belief[u.Li] = u.V
	}
	return rep, nil
}

// drawInduced is System.drawInduced for this one chip, with the
// slice-local belief ledger standing in for receiverBelief[ci].
func (s *Slice) drawInduced(progress float64) {
	prob := s.cfg.InducedFlip.At(progress)
	c := s.chip
	if s.cfg.Coordinated {
		for g := 0; g < s.n; g++ {
			if !s.induce.Bool(prob) {
				continue
			}
			if li, own := c.local[g]; own {
				c.machine.Induce(li)
				c.epochKicks++
				s.belief[li] = -s.belief[li]
			} else {
				c.applyShadowToggle(g)
			}
		}
		return
	}
	for li := range c.owned {
		if s.induce.Bool(prob) {
			c.machine.Induce(li)
			c.epochKicks++
		}
	}
}

// ApplySync delivers a barrier's cross-chip updates — the other
// slices' EpochReport.Updates, concatenated by the coordinator in
// ascending chip order — updating shadows and bias currents exactly as
// syncEpoch's receiver loop does. Updates arrive over the network, so
// malformed items are errors, never panics.
func (s *Slice) ApplySync(ups []PendingUpdate) error {
	c := s.chip
	for _, u := range ups {
		if u.G < 0 || u.G >= s.n || (u.V != -1 && u.V != 1) {
			return fmt.Errorf("multichip: slice %d: invalid sync update g=%d v=%d", s.ci, u.G, u.V)
		}
		if _, own := c.local[u.G]; own {
			return fmt.Errorf("multichip: slice %d: sync update for owned spin %d", s.ci, u.G)
		}
		c.applyShadowUpdate(u.G, u.V)
	}
	return nil
}

// Snapshot captures the slice at an epoch barrier, after ApplySync.
func (s *Slice) Snapshot() *SliceState {
	c := s.chip
	return &SliceState{
		Chip:       s.ci,
		DurationNS: s.durationNS,
		ModelNS:    s.modelNS,
		Epochs:     s.epochs,
		State: ChipState{
			Owned:           append([]int(nil), c.owned...),
			Machine:         c.machine.Snapshot(),
			Shadow:          append([]int8(nil), c.shadow...),
			LastFlipInduced: append([]bool(nil), c.lastFlipInduced...),
		},
		Belief:    append([]int8(nil), s.belief...),
		InduceRNG: s.induce.State(),
	}
}

// Restore loads a snapshot onto a freshly built identical slice.
// Snapshots cross the network, so every reach is validated; failures
// are errors, never panics. The machine's Restore refuses a snapshot
// whose construction seed differs, which catches a state handed to the
// wrong chip index.
func (s *Slice) Restore(st *SliceState) error {
	if st == nil {
		return fmt.Errorf("multichip: nil slice state")
	}
	c := s.chip
	if st.Chip != s.ci {
		return fmt.Errorf("multichip: state for slice %d restored onto slice %d", st.Chip, s.ci)
	}
	if st.DurationNS != s.durationNS {
		return fmt.Errorf("multichip: state horizon %v ns, slice horizon %v ns", st.DurationNS, s.durationNS)
	}
	if st.Epochs < 0 || !isFiniteRange(st.ModelNS, 0, s.durationNS) {
		return fmt.Errorf("multichip: state position epochs=%d model=%v", st.Epochs, st.ModelNS)
	}
	if len(st.State.Owned) != len(c.owned) {
		return fmt.Errorf("multichip: state owns %d spins, slice owns %d", len(st.State.Owned), len(c.owned))
	}
	for i, g := range st.State.Owned {
		if g != c.owned[i] {
			return fmt.Errorf("multichip: state partition differs at owned[%d]: %d vs %d", i, g, c.owned[i])
		}
	}
	if st.State.Machine == nil || len(st.State.Machine.Spins) != len(c.owned) {
		return fmt.Errorf("multichip: state machine is missing or mis-sized")
	}
	if len(st.State.Shadow) != s.n || len(st.State.LastFlipInduced) != len(c.owned) || len(st.Belief) != len(c.owned) {
		return fmt.Errorf("multichip: state shadow/attribution/belief tables are mis-sized")
	}
	if err := validateSpins(st.State.Shadow); err != nil {
		return fmt.Errorf("multichip: state shadow: %w", err)
	}
	if err := validateSpins(st.Belief); err != nil {
		return fmt.Errorf("multichip: state belief: %w", err)
	}
	// Restore replaces voltages, readout, external bias, holds,
	// timekeeping and the PRNG position verbatim; the external bias must
	// NOT be recomputed from shadows (a fresh accumulation order would
	// not be bit-identical to the incrementally maintained one).
	if err := c.machine.Restore(st.State.Machine); err != nil {
		return fmt.Errorf("multichip: slice %d: %w", s.ci, err)
	}
	copy(c.shadow, st.State.Shadow)
	copy(c.lastFlipInduced, st.State.LastFlipInduced)
	copy(s.belief, st.Belief)
	s.induce.SetState(st.InduceRNG)
	s.modelNS = st.ModelNS
	s.epochs = st.Epochs
	return nil
}
