package multichip

import (
	"testing"

	"mbrim/internal/obs"
)

// stripWall zeroes WallNS — the only field excluded from the
// determinism guarantee — so event streams compare with ==.
func stripWall(evs []obs.Event) []obs.Event {
	out := append([]obs.Event(nil), evs...)
	for i := range out {
		out[i].WallNS = 0
	}
	return out
}

func runTraced(t *testing.T, cfg Config, run func(*System) any) []obs.Event {
	t.Helper()
	ring := obs.NewRing(1 << 16)
	cfg.Tracer = ring
	run(MustSystem(kgraph(64, 1), cfg))
	evs := ring.Events()
	if int64(len(evs)) != ring.Total() {
		t.Fatalf("ring overflowed: %d retained of %d", len(evs), ring.Total())
	}
	return stripWall(evs)
}

// TestTraceDeterminism is the companion of parallel_test.go's
// bit-identity guarantee, extended to the observability layer: the same
// seed and config must produce the exact same event sequence — kinds,
// order, and every payload field — whether the chips are simulated
// sequentially or on host goroutines. Events are emitted at epoch
// barriers in chip order precisely so this holds.
func TestTraceDeterminism(t *testing.T) {
	base := Config{Chips: 4, Seed: 2, EpochNS: 5, Probes: true, RecordEpochStats: true,
		SampleEveryNS: 7}
	concurrent := func(s *System) any { return s.RunConcurrent(30) }

	seq := runTraced(t, base, concurrent)
	if len(seq) == 0 {
		t.Fatal("no events emitted")
	}
	par := base
	par.Parallel = true
	got := runTraced(t, par, concurrent)
	if len(got) != len(seq) {
		t.Fatalf("parallel emitted %d events, sequential %d", len(got), len(seq))
	}
	for i := range seq {
		if got[i] != seq[i] {
			t.Fatalf("event %d diverged:\nseq %+v\npar %+v", i, seq[i], got[i])
		}
	}

	// A re-run with the identical config must also reproduce exactly.
	again := runTraced(t, base, concurrent)
	if len(again) != len(seq) {
		t.Fatalf("re-run emitted %d events, want %d", len(again), len(seq))
	}
	for i := range seq {
		if again[i] != seq[i] {
			t.Fatalf("re-run event %d diverged", i)
		}
	}
}

func TestTraceDeterminismBatch(t *testing.T) {
	base := Config{Chips: 4, Seed: 4, EpochNS: 5, RecordEpochStats: true, SampleEveryNS: 7}
	batch := func(s *System) any { return s.RunBatch(4, 40) }
	seq := runTraced(t, base, batch)
	par := base
	par.Parallel = true
	got := runTraced(t, par, batch)
	if len(got) != len(seq) {
		t.Fatalf("parallel batch emitted %d events, sequential %d", len(got), len(seq))
	}
	for i := range seq {
		if got[i] != seq[i] {
			t.Fatalf("batch event %d diverged:\nseq %+v\npar %+v", i, seq[i], got[i])
		}
	}
}

// TestCollectorMatchesResult checks the "series are consumers of the
// event stream" invariant: the EpochStats a traced run reports must sum
// to the run's own totals, and every event-series pair must agree.
func TestCollectorMatchesResult(t *testing.T) {
	ring := obs.NewRing(1 << 16)
	sys := MustSystem(kgraph(64, 1), Config{Chips: 4, Seed: 2, EpochNS: 5,
		RecordEpochStats: true, Tracer: ring})
	res := sys.RunConcurrent(30)
	if len(res.EpochStats) != res.Epochs {
		t.Fatalf("EpochStats has %d entries, want %d", len(res.EpochStats), res.Epochs)
	}
	var flips, induced, changes int64
	for _, st := range res.EpochStats {
		flips += st.Flips
		induced += st.InducedFlips
		changes += st.BitChanges
	}
	if flips != res.Flips || induced != res.InducedFlips || changes != res.BitChanges {
		t.Fatalf("EpochStats sums (%d/%d/%d) disagree with totals (%d/%d/%d)",
			flips, induced, changes, res.Flips, res.InducedFlips, res.BitChanges)
	}
	// The raw stream must carry the same totals.
	var evFlips, evChanges int64
	for _, e := range ring.Events() {
		switch e.Kind {
		case obs.ChipStep:
			evFlips += e.Count
		case obs.EpochSync:
			evChanges += e.Count
		}
	}
	if evFlips != res.Flips || evChanges != res.BitChanges {
		t.Fatalf("event totals (%d flips, %d changes) disagree with result (%d, %d)",
			evFlips, evChanges, res.Flips, res.BitChanges)
	}
}

// TestMetricsMatchResult checks the registry counters against the run's
// reported totals — the acceptance invariant of the -metrics flag.
func TestMetricsMatchResult(t *testing.T) {
	reg := obs.NewRegistry()
	res := MustSystem(kgraph(64, 1), Config{Chips: 4, Seed: 2, EpochNS: 5,
		Metrics: reg}).RunConcurrent(30)
	snap := reg.Snapshot()
	if snap.Counters["multichip.flips"] != res.Flips {
		t.Errorf("flips counter %d != result %d", snap.Counters["multichip.flips"], res.Flips)
	}
	if snap.Counters["multichip.bit_changes"] != res.BitChanges {
		t.Errorf("bit_changes counter %d != result %d",
			snap.Counters["multichip.bit_changes"], res.BitChanges)
	}
	if snap.Counters["multichip.epochs"] != int64(res.Epochs) {
		t.Errorf("epochs counter %d != result %d", snap.Counters["multichip.epochs"], res.Epochs)
	}
	if snap.Gauges["multichip.traffic_bytes"] != res.TrafficBytes {
		t.Errorf("traffic gauge %v != result %v",
			snap.Gauges["multichip.traffic_bytes"], res.TrafficBytes)
	}
	if snap.Histograms["multichip.epoch_stall_ns"].Count != int64(res.Epochs) {
		t.Errorf("stall histogram has %d observations, want %d",
			snap.Histograms["multichip.epoch_stall_ns"].Count, res.Epochs)
	}
}
