package multichip

import (
	"math"
	"testing"
)

func TestSequentialFindsFerromagnetGround(t *testing.T) {
	n := 32
	m := ferromagnet(n)
	res := MustSystem(m, Config{Chips: 4, Seed: 1}).RunSequential(60)
	if want := -float64(n*(n-1)) / 2; res.Energy != want {
		t.Fatalf("energy %v, want %v", res.Energy, want)
	}
}

func TestSequentialNoIgnorance(t *testing.T) {
	// After every chip's turn its changes are synced, so at the end
	// all shadows agree with the truth.
	m := kgraph(40, 2)
	s := MustSystem(m, Config{Chips: 4, Seed: 3})
	s.RunSequential(33)
	truth := s.GlobalSpins()
	for ci, c := range s.chips {
		for g := 0; g < s.n; g++ {
			if c.shadow[g] != truth[g] {
				t.Fatalf("chip %d shadow of %d stale in sequential mode", ci, g)
			}
		}
	}
}

func TestSequentialElapsedIsChipsTimesModel(t *testing.T) {
	m := kgraph(32, 4)
	res := MustSystem(m, Config{Chips: 4, Seed: 5}).RunSequential(30)
	if math.Abs(res.ModelNS-30) > 1e-6 {
		t.Fatalf("model time %v, want 30", res.ModelNS)
	}
	if math.Abs(res.ElapsedNS-4*30) > 1e-6 {
		t.Fatalf("elapsed %v, want %v (no overlap)", res.ElapsedNS, 4*30.0)
	}
}

func TestSequentialDeterministic(t *testing.T) {
	m := kgraph(40, 6)
	a := MustSystem(m, Config{Chips: 4, Seed: 7}).RunSequential(20)
	b := MustSystem(m, Config{Chips: 4, Seed: 7}).RunSequential(20)
	if a.Energy != b.Energy || a.BitChanges != b.BitChanges {
		t.Fatal("sequential mode nondeterministic")
	}
}

func TestConcurrentMatchesSequentialQuality(t *testing.T) {
	// Sec 5.4.1's claim: with short epochs, concurrent quality is no
	// worse than sequential (statistically). Average over seeds and
	// allow a small band.
	m := kgraph(64, 8)
	var conc, seq float64
	const runs = 5
	for i := 0; i < runs; i++ {
		seed := uint64(300 + i)
		conc += MustSystem(m, Config{Chips: 4, Seed: seed, EpochNS: 1}).RunConcurrent(60).Energy
		seq += MustSystem(m, Config{Chips: 4, Seed: seed, EpochNS: 1}).RunSequential(60).Energy
	}
	if conc > seq+0.1*math.Abs(seq) {
		t.Fatalf("concurrent (%v) clearly worse than sequential (%v)", conc/runs, seq/runs)
	}
}

func TestSequentialPanicsOnBadDuration(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MustSystem(ferromagnet(8), Config{Chips: 2}).RunSequential(0)
}
