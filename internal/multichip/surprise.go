package multichip

import (
	"fmt"
	"math"

	"mbrim/internal/graph"
	"mbrim/internal/ising"
	"mbrim/internal/rng"
	"mbrim/internal/sched"
)

// SurpriseConfig parameterizes the Fig 9 experiment: a problem is
// partitioned over several *software* (SA) solvers that search in
// parallel against a stale snapshot of each other, synchronizing every
// epoch. The experiment measures how ignorance of the true global
// state translates into energy surprise.
type SurpriseConfig struct {
	// Solvers is the number of parallel SA solvers. Default 8 (the
	// paper's setup).
	Solvers int
	// EpochMoves is the local-search effort per epoch per solver,
	// counted in attempted Metropolis moves — the "fixed amount of
	// time" knob whose size the figure sweeps. Small values (a
	// fraction of the partition size) give the low-ignorance regime;
	// multiple sweeps' worth gives the high-ignorance regime.
	EpochMoves int
	// Epochs per run. Default 20.
	Epochs int
	// Runs with different initial states. Default 20 (the paper's).
	Runs int
	// BurnInSweeps equilibrates the global state with sequential
	// whole-problem sweeps before measurement starts, so the samples
	// reflect steady-state search rather than the initial greedy
	// collapse. Default 2.
	BurnInSweeps int
	// Beta is the SA inverse-temperature schedule across the whole
	// run. The default (0.5 → 3 linear) is colder than the
	// general-purpose SA default: at a hot start nearly half of all
	// spins change every sweep, which saturates the ignorance metric
	// and hides the epoch-size effect the experiment exists to show.
	Beta sched.Schedule
	// Seed drives everything.
	Seed uint64
}

// metropolis performs `moves` random-site Metropolis attempts on the
// model at inverse temperature beta, updating spins in place.
func metropolis(m *ising.Model, spins []int8, beta float64, moves int, r *rng.Source) {
	n := m.N()
	fields := m.LocalFields(spins, nil)
	for t := 0; t < moves; t++ {
		k := r.Intn(n)
		delta := m.FlipDelta(spins, fields, k)
		if delta <= 0 || r.Float64() < math.Exp(-beta*delta) {
			m.ApplyFlip(spins, fields, k)
		}
	}
}

// EnergySurprise reproduces Fig 9. For every epoch of every run it
// emits one sample per solver: the solver's degree of ignorance (the
// fraction of external spins that changed while it was searching) and
// its energy surprise E(believed) − E(true). Defined this way, a
// positive surprise means the true state is better than the solver
// believed (the paper's footnote 5).
func EnergySurprise(m *ising.Model, cfg SurpriseConfig) []SurpriseSample {
	if cfg.Solvers == 0 {
		cfg.Solvers = 8
	}
	if cfg.Solvers < 1 || cfg.Solvers > m.N() {
		panic(fmt.Sprintf("multichip: Solvers=%d for N=%d", cfg.Solvers, m.N()))
	}
	if cfg.EpochMoves < 1 {
		panic(fmt.Sprintf("multichip: EpochMoves=%d", cfg.EpochMoves))
	}
	if cfg.Epochs == 0 {
		cfg.Epochs = 20
	}
	if cfg.Runs == 0 {
		cfg.Runs = 20
	}
	if cfg.BurnInSweeps == 0 {
		cfg.BurnInSweeps = 2
	}
	beta := cfg.Beta
	if beta == nil {
		beta = sched.Linear{From: 0.5, To: 3}
	}

	n := m.N()
	r := rng.New(cfg.Seed)
	var samples []SurpriseSample

	for run := 0; run < cfg.Runs; run++ {
		parts := graph.BlockPartition(n, cfg.Solvers)
		global := ising.RandomSpins(n, r)
		metropolis(m, global, beta.At(0), cfg.BurnInSweeps*n, r)

		for epoch := 0; epoch < cfg.Epochs; epoch++ {
			// Every solver searches against this frozen snapshot — the
			// "parallel against stale state" regime under test.
			snapshot := ising.CopySpins(global)
			progress := float64(epoch) / float64(cfg.Epochs)
			b := beta.At(progress)

			updated := make([][]int8, cfg.Solvers)
			for si, part := range parts {
				sp := ising.Extract(m, part, snapshot)
				local := sp.Gather(snapshot)
				metropolis(sp.Model, local, b, cfg.EpochMoves, r)
				updated[si] = local
			}

			// Commit all updates: the true post-epoch global state.
			truth := ising.CopySpins(snapshot)
			for si, part := range parts {
				sp := &ising.SubProblem{Index: part}
				sp.Project(updated[si], truth)
			}
			trueEnergy := m.Energy(truth)

			// Per-solver: believed = snapshot with only its own slice
			// updated; ignorance = fraction of external spins that
			// moved during the epoch.
			for si, part := range parts {
				believed := ising.CopySpins(snapshot)
				sp := &ising.SubProblem{Index: part}
				sp.Project(updated[si], believed)

				own := make(map[int]bool, len(part))
				for _, g := range part {
					own[g] = true
				}
				stale, external := 0, 0
				for g := 0; g < n; g++ {
					if own[g] {
						continue
					}
					external++
					if believed[g] != truth[g] {
						stale++
					}
				}
				ign := 0.0
				if external > 0 {
					ign = float64(stale) / float64(external)
				}
				samples = append(samples, SurpriseSample{
					Epoch:     run*cfg.Epochs + epoch + 1,
					Chip:      si,
					Ignorance: ign,
					Surprise:  m.Energy(believed) - trueEnergy,
				})
			}
			global = truth
		}
	}
	return samples
}
