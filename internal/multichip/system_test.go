package multichip

import (
	"math"
	"testing"
	"testing/quick"

	"mbrim/internal/graph"
	"mbrim/internal/ising"
	"mbrim/internal/rng"
	"mbrim/internal/sched"
)

func ferromagnet(n int) *ising.Model {
	m := ising.NewModel(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.SetCoupling(i, j, 1)
		}
	}
	return m
}

func kgraph(n int, seed uint64) *ising.Model {
	return graph.Complete(n, rng.New(seed)).ToIsing()
}

func TestConcurrentFindsFerromagnetGround(t *testing.T) {
	n := 32
	m := ferromagnet(n)
	s := MustSystem(m, Config{Chips: 4, Seed: 1})
	res := s.RunConcurrent(60)
	want := -float64(n*(n-1)) / 2
	if res.Energy != want {
		t.Fatalf("energy %v, want ground %v", res.Energy, want)
	}
}

func TestConcurrentEnergyMatchesSpins(t *testing.T) {
	m := kgraph(48, 2)
	s := MustSystem(m, Config{Chips: 4, Seed: 3})
	res := s.RunConcurrent(40)
	if d := math.Abs(res.Energy - m.Energy(res.Spins)); d > 1e-9 {
		t.Fatalf("energy off by %v", d)
	}
	if !ising.ValidSpins(res.Spins) {
		t.Fatal("invalid spins")
	}
}

func TestConcurrentDeterministic(t *testing.T) {
	m := kgraph(40, 4)
	a := MustSystem(m, Config{Chips: 4, Seed: 5}).RunConcurrent(30)
	b := MustSystem(m, Config{Chips: 4, Seed: 5}).RunConcurrent(30)
	if a.Energy != b.Energy || ising.HammingDistance(a.Spins, b.Spins) != 0 {
		t.Fatal("same seed produced different runs")
	}
	if a.Flips != b.Flips || a.BitChanges != b.BitChanges || a.TrafficBytes != b.TrafficBytes {
		t.Fatal("same seed produced different counters")
	}
}

func TestShadowConsistencyAfterSync(t *testing.T) {
	// DESIGN.md invariant: after the final epoch boundary, every
	// chip's shadow view equals the true global state.
	m := kgraph(40, 6)
	s := MustSystem(m, Config{Chips: 4, Seed: 7})
	s.RunConcurrent(33) // exactly 10 epochs of 3.3
	truth := s.GlobalSpins()
	for ci, c := range s.chips {
		for g := 0; g < s.n; g++ {
			if c.shadow[g] != truth[g] {
				t.Fatalf("chip %d shadow of spin %d is stale after final sync", ci, g)
			}
		}
	}
}

func TestExternalBiasMatchesShadows(t *testing.T) {
	// The incremental bias updates must agree with a full recompute.
	m := kgraph(32, 8)
	s := MustSystem(m, Config{Chips: 4, Seed: 9})
	s.RunConcurrent(20)
	for ci, c := range s.chips {
		got := append([]float64(nil), c.machine.ExternalBias()...)
		c.recomputeExternalBias()
		want := c.machine.ExternalBias()
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-6 {
				t.Fatalf("chip %d bias %d drifted: %v vs %v", ci, i, got[i], want[i])
			}
		}
	}
}

func TestBitChangesNeverExceedFlips(t *testing.T) {
	m := kgraph(48, 10)
	res := MustSystem(m, Config{Chips: 4, Seed: 11}).RunConcurrent(40)
	if res.BitChanges > res.Flips {
		t.Fatalf("bit changes %d > flips %d", res.BitChanges, res.Flips)
	}
	if res.InducedFlips > res.Flips {
		t.Fatal("induced flips exceed total flips")
	}
	if res.InducedBitChanges > res.BitChanges {
		t.Fatal("induced bit changes exceed bit changes")
	}
}

func TestLongerEpochsImproveFlipToChangeRatio(t *testing.T) {
	// Fig 13-right: the flips/bit-changes ratio grows with epoch size.
	m := kgraph(64, 12)
	short := MustSystem(m, Config{Chips: 4, Seed: 13, EpochNS: 1}).RunConcurrent(60)
	long := MustSystem(m, Config{Chips: 4, Seed: 13, EpochNS: 15}).RunConcurrent(60)
	ratio := func(r *Result) float64 {
		if r.BitChanges == 0 {
			return math.Inf(1)
		}
		return float64(r.Flips) / float64(r.BitChanges)
	}
	if ratio(long) < ratio(short) {
		t.Fatalf("ratio did not grow with epoch: short %v, long %v", ratio(short), ratio(long))
	}
}

func TestUnlimitedFabricNoStall(t *testing.T) {
	m := kgraph(32, 14)
	res := MustSystem(m, Config{Chips: 4, Seed: 15}).RunConcurrent(30)
	if res.StallNS != 0 {
		t.Fatalf("unlimited fabric stalled %v ns", res.StallNS)
	}
	if math.Abs(res.ElapsedNS-res.ModelNS) > 1e-6 {
		t.Fatal("elapsed != model time without stalls")
	}
}

func TestLimitedFabricStalls(t *testing.T) {
	// A starved fabric must stall and stretch elapsed time.
	m := kgraph(64, 16)
	res := MustSystem(m, Config{
		Chips: 4, Seed: 17, Channels: 1, ChannelBytesPerNS: 0.001,
	}).RunConcurrent(30)
	if res.StallNS <= 0 {
		t.Fatal("starved fabric did not stall")
	}
	if res.ElapsedNS <= res.ModelNS {
		t.Fatal("stalls did not stretch elapsed time")
	}
}

func TestCoordinatedSavesTraffic(t *testing.T) {
	// Fig 15's effect in its purest form: with zero couplings the only
	// spin changes are induced kicks. Uncoordinated, every kick must
	// ride the fabric; coordinated, receivers reproduce kicks locally
	// and traffic is exactly zero.
	m := ising.NewModel(64) // no couplings, no dynamics-driven flips
	heavyKicks := sched.Constant(0.05)
	plain := MustSystem(m, Config{
		Chips: 4, Seed: 19, InducedFlip: heavyKicks,
	}).RunConcurrent(40)
	coord := MustSystem(m, Config{
		Chips: 4, Seed: 19, InducedFlip: heavyKicks, Coordinated: true,
	}).RunConcurrent(40)
	if plain.TrafficBytes == 0 {
		t.Fatal("uncoordinated kicks generated no traffic")
	}
	if coord.TrafficBytes != 0 {
		t.Fatalf("coordinated kicks still cost %v bytes", coord.TrafficBytes)
	}
	if coord.InducedFlips == 0 {
		t.Fatal("coordinated run induced no flips at all")
	}
}

func TestCoordinatedShadowsStayConsistent(t *testing.T) {
	// Coordinated kicks toggle shadows without traffic; after a sync
	// boundary everything must still agree.
	m := kgraph(40, 20)
	s := MustSystem(m, Config{Chips: 4, Seed: 21, Coordinated: true,
		InducedFlip: sched.Constant(0.05)})
	s.RunConcurrent(33)
	truth := s.GlobalSpins()
	for ci, c := range s.chips {
		for g := 0; g < s.n; g++ {
			if c.shadow[g] != truth[g] {
				t.Fatalf("chip %d shadow of %d inconsistent in coordinated mode", ci, g)
			}
		}
	}
}

func TestSingleChipDegeneratesToMonolith(t *testing.T) {
	// One chip has no remote spins: no traffic, no bit changes, but
	// real annealing.
	m := kgraph(32, 22)
	res := MustSystem(m, Config{Chips: 1, Seed: 23}).RunConcurrent(40)
	if res.TrafficBytes != 0 || res.BitChanges != 0 {
		t.Fatalf("single chip generated traffic: %v bytes, %d changes",
			res.TrafficBytes, res.BitChanges)
	}
	if res.Flips == 0 {
		t.Fatal("single chip never flipped")
	}
	if res.Energy >= 0 {
		t.Fatalf("no optimization progress: %v", res.Energy)
	}
}

func TestTraceSamples(t *testing.T) {
	m := kgraph(32, 24)
	res := MustSystem(m, Config{Chips: 4, Seed: 25, SampleEveryNS: 10}).RunConcurrent(40)
	if len(res.Trace) == 0 {
		t.Fatal("no trace samples")
	}
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i].X <= res.Trace[i-1].X {
			t.Fatal("trace not increasing in time")
		}
	}
}

func TestEpochStatsRecorded(t *testing.T) {
	m := kgraph(32, 26)
	res := MustSystem(m, Config{Chips: 4, Seed: 27, RecordEpochStats: true}).RunConcurrent(33)
	if len(res.EpochStats) != res.Epochs {
		t.Fatalf("%d stats for %d epochs", len(res.EpochStats), res.Epochs)
	}
	var flips, changes int64
	for _, st := range res.EpochStats {
		flips += st.Flips
		changes += st.BitChanges
	}
	if flips != res.Flips || changes != res.BitChanges {
		t.Fatal("epoch stats do not sum to totals")
	}
}

func TestProbesEmitSamples(t *testing.T) {
	m := kgraph(32, 28)
	res := MustSystem(m, Config{Chips: 4, Seed: 29, Probes: true}).RunConcurrent(20)
	if len(res.Surprises) == 0 {
		t.Fatal("no surprise samples with Probes on")
	}
	for _, sample := range res.Surprises {
		if sample.Ignorance < 0 || sample.Ignorance > 1 {
			t.Fatalf("ignorance %v outside [0,1]", sample.Ignorance)
		}
	}
}

func TestQualityComparableToMonolith(t *testing.T) {
	// Sec 5.4.1's punchline: with short epochs, concurrent operation
	// matches monolithic quality. Compare 4-chip vs 1-chip averages.
	m := kgraph(48, 30)
	var mono, multi float64
	runs := 4
	for i := 0; i < runs; i++ {
		mono += MustSystem(m, Config{Chips: 1, Seed: uint64(100 + i)}).RunConcurrent(50).Energy
		multi += MustSystem(m, Config{Chips: 4, Seed: uint64(100 + i), EpochNS: 1}).RunConcurrent(50).Energy
	}
	mono /= float64(runs)
	multi /= float64(runs)
	// Allow 15% slack — these are stochastic dynamics on a small graph.
	if multi > mono+0.15*math.Abs(mono) {
		t.Fatalf("4-chip quality (%v) far from monolithic (%v)", multi, mono)
	}
}

func TestPanicsOnBadConfig(t *testing.T) {
	m := ferromagnet(8)
	for name, f := range map[string]func(){
		"too many chips": func() { MustSystem(m, Config{Chips: 9}) },
		"neg epoch":      func() { MustSystem(m, Config{Chips: 2, EpochNS: -1}) },
		"zero duration":  func() { MustSystem(m, Config{Chips: 2}).RunConcurrent(0) },
		"neg interval":   func() { MustSystem(m, Config{Chips: 2, FlipIntervalNS: -1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestChipModelsReconstructGlobalEnergy(t *testing.T) {
	// Structural invariant: the chips' local sub-models plus the
	// cross-coupling rows partition the global Hamiltonian exactly.
	// For any state σ: Σ_c E_local_c(σ_c) + E_cross(σ) = E_global(σ),
	// where E_cross = −Σ_{(i,j) across chips} J_ij σ_i σ_j (each pair
	// once).
	m := kgraph(40, 50)
	s := MustSystem(m, Config{Chips: 4, Seed: 51})
	spins := ising.RandomSpins(40, rng.New(52))

	sumLocal := 0.0
	for _, c := range s.chips {
		local := make([]int8, len(c.owned))
		for li, g := range c.owned {
			local[li] = spins[g]
		}
		sumLocal += c.machine.Model().Energy(local)
	}
	cross := 0.0
	owner := make([]int, 40)
	for ci, c := range s.chips {
		for _, g := range c.owned {
			owner[g] = ci
		}
	}
	for i := 0; i < 40; i++ {
		for j := i + 1; j < 40; j++ {
			if owner[i] != owner[j] {
				cross -= m.Coupling(i, j) * float64(spins[i]) * float64(spins[j])
			}
		}
	}
	if d := math.Abs(sumLocal + cross - m.Energy(spins)); d > 1e-9 {
		t.Fatalf("local+cross misses global energy by %v", d)
	}
}

func TestCrossRowsMatchGlobalModel(t *testing.T) {
	// Every cross entry must be the global coupling divided by the
	// shared scale, and zero for same-chip pairs.
	m := kgraph(24, 53)
	s := MustSystem(m, Config{Chips: 3, Seed: 54})
	for _, c := range s.chips {
		for li, g := range c.owned {
			for j := 0; j < 24; j++ {
				want := 0.0
				if _, own := c.local[j]; !own {
					want = m.Coupling(g, j) / s.scale
				}
				if got := c.cross[li][j]; math.Abs(got-want) > 1e-12 {
					t.Fatalf("chip %d cross[%d][%d] = %v, want %v", c.id, li, j, got, want)
				}
			}
		}
	}
}

func TestSystemInvariantsProperty(t *testing.T) {
	// Randomized integration property: for arbitrary small systems and
	// settings, every accounting and consistency invariant must hold.
	f := func(seed uint32, chipsRaw, epochRaw uint8, coordinated bool) bool {
		r := rng.New(uint64(seed))
		n := 16 + r.Intn(32)
		chips := int(chipsRaw)%4 + 1
		epoch := 0.5 + float64(epochRaw%8)
		m := kgraph(n, uint64(seed))
		s := MustSystem(m, Config{
			Chips: chips, Seed: uint64(seed), EpochNS: epoch,
			Coordinated: coordinated,
		})
		res := s.RunConcurrent(10)

		if res.BitChanges > res.Flips || res.InducedFlips > res.Flips ||
			res.InducedBitChanges > res.BitChanges {
			return false
		}
		if math.Abs(res.Energy-m.Energy(res.Spins)) > 1e-6 {
			return false
		}
		if res.ElapsedNS < res.ModelNS-1e-9 {
			return false
		}
		if math.Abs((res.ElapsedNS-res.ModelNS)-res.StallNS) > 1e-6 {
			return false
		}
		truth := s.GlobalSpins()
		for _, c := range s.chips {
			for g := 0; g < s.n; g++ {
				if c.shadow[g] != truth[g] {
					return false
				}
			}
		}
		return ising.ValidSpins(res.Spins)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
