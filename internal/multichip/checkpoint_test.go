package multichip

import (
	"context"
	"errors"
	"testing"

	"mbrim/internal/fault"
	"mbrim/internal/ising"
	"mbrim/internal/obs"
)

// epochCanceller cancels a context the moment the run's epoch barrier
// reaches the target — a deterministic interruption point, unlike a
// wall-clock timeout.
type epochCanceller struct {
	epoch  int
	cancel context.CancelFunc
}

func (t *epochCanceller) Emit(e obs.Event) {
	if e.Kind == obs.EpochSync && e.Epoch >= t.epoch {
		t.cancel()
	}
}

// resumeCase is one (mode × parallel × faults) configuration whose
// interrupted-and-resumed run must be bit-identical to an
// uninterrupted one.
type resumeCase struct {
	name     string
	parallel bool
	faults   fault.Config
}

func resumeCases() []resumeCase {
	noisy := fault.Config{
		Seed:        7,
		DropRate:    0.15,
		CorruptRate: 0.1,
		DelayRate:   0.1,
		StallRate:   0.05,
		Recovery:    fault.Recovery{Detect: true, WatchdogThreshold: 0.05},
	}
	return []resumeCase{
		{"clean", false, fault.Config{}},
		{"clean/parallel", true, fault.Config{}},
		{"faulty", false, noisy},
		{"faulty/parallel", true, noisy},
	}
}

func (rc resumeCase) config(chips int) Config {
	return Config{Chips: chips, Seed: 5, Parallel: rc.parallel, Faults: rc.faults}
}

// sameLedger compares every deterministic field of two results.
func sameLedger(t *testing.T, a, b *Result) {
	t.Helper()
	if a.Energy != b.Energy || ising.HammingDistance(a.Spins, b.Spins) != 0 {
		t.Fatalf("states differ: energy %v vs %v", a.Energy, b.Energy)
	}
	if a.Flips != b.Flips || a.InducedFlips != b.InducedFlips {
		t.Fatalf("flip ledgers differ: %d/%d vs %d/%d", a.Flips, a.InducedFlips, b.Flips, b.InducedFlips)
	}
	if a.BitChanges != b.BitChanges || a.InducedBitChanges != b.InducedBitChanges {
		t.Fatalf("bit-change ledgers differ: %d/%d vs %d/%d",
			a.BitChanges, a.InducedBitChanges, b.BitChanges, b.InducedBitChanges)
	}
	if a.TrafficBytes != b.TrafficBytes || a.StallNS != b.StallNS || a.ElapsedNS != b.ElapsedNS {
		t.Fatalf("fabric ledgers differ: traffic %v vs %v, stall %v vs %v, elapsed %v vs %v",
			a.TrafficBytes, b.TrafficBytes, a.StallNS, b.StallNS, a.ElapsedNS, b.ElapsedNS)
	}
	if a.Epochs != b.Epochs || a.FaultStats != b.FaultStats {
		t.Fatalf("epoch/fault ledgers differ: %d vs %d epochs, %+v vs %+v",
			a.Epochs, b.Epochs, a.FaultStats, b.FaultStats)
	}
}

// interruptAt runs the system under a context that the tracer cancels
// at the given epoch and returns the checkpoint.
func interruptAt(t *testing.T, m *ising.Model, cfg Config, epoch int,
	run func(*System, context.Context, *Checkpoint) (*Result, *Checkpoint, error)) *Checkpoint {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg.Tracer = &epochCanceller{epoch: epoch, cancel: cancel}
	s := MustSystem(m, cfg)
	res, ck, err := run(s, ctx, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("expected cancellation, got %v", err)
	}
	if ck == nil {
		t.Fatal("cancelled run returned no checkpoint")
	}
	if res == nil || len(res.Spins) != m.N() || !ising.ValidSpins(res.Spins) {
		t.Fatal("cancelled run returned no usable best-so-far state")
	}
	if ck.EpochsDone < epoch {
		t.Fatalf("checkpoint at epoch %d, wanted at least %d", ck.EpochsDone, epoch)
	}
	return ck
}

func TestConcurrentResumeBitIdentical(t *testing.T) {
	m := kgraph(48, 2)
	const duration = 40
	for _, rc := range resumeCases() {
		t.Run(rc.name, func(t *testing.T) {
			full := MustSystem(m, rc.config(4)).RunConcurrent(duration)
			runC := func(s *System, ctx context.Context, ck *Checkpoint) (*Result, *Checkpoint, error) {
				return s.RunConcurrentCtx(ctx, duration, ck)
			}
			ck := interruptAt(t, m, rc.config(4), 3, runC)
			resumed, ck2, err := MustSystem(m, rc.config(4)).RunConcurrentCtx(context.Background(), duration, ck)
			if err != nil || ck2 != nil {
				t.Fatalf("resume: err=%v, checkpoint=%v", err, ck2)
			}
			sameLedger(t, full, resumed)
		})
	}
}

func TestSequentialResumeBitIdentical(t *testing.T) {
	m := kgraph(40, 3)
	const duration = 36
	for _, rc := range resumeCases() {
		t.Run(rc.name, func(t *testing.T) {
			full := MustSystem(m, rc.config(4)).RunSequential(duration)
			runS := func(s *System, ctx context.Context, ck *Checkpoint) (*Result, *Checkpoint, error) {
				return s.RunSequentialCtx(ctx, duration, ck)
			}
			ck := interruptAt(t, m, rc.config(4), 2, runS)
			resumed, ck2, err := MustSystem(m, rc.config(4)).RunSequentialCtx(context.Background(), duration, ck)
			if err != nil || ck2 != nil {
				t.Fatalf("resume: err=%v, checkpoint=%v", err, ck2)
			}
			sameLedger(t, full, resumed)
		})
	}
}

func TestBatchResumeBitIdentical(t *testing.T) {
	m := kgraph(40, 4)
	const duration, jobs = 40, 3
	for _, rc := range resumeCases() {
		t.Run(rc.name, func(t *testing.T) {
			// Interrupt at epoch 4: with 3 jobs, that is mid-way through
			// the job rotation, so the resume must also restore the
			// (chip+epoch)%jobs assignment correctly.
			full := MustSystem(m, rc.config(4)).RunBatch(jobs, duration)
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			cfg := rc.config(4)
			cfg.Tracer = &epochCanceller{epoch: 4, cancel: cancel}
			_, ck, err := MustSystem(m, cfg).RunBatchCtx(ctx, jobs, duration, nil)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("expected cancellation, got %v", err)
			}
			if ck == nil || ck.EpochsDone < 4 || ck.EpochsDone%jobs == 0 {
				t.Fatalf("wanted a mid-rotation checkpoint, got %+v", ck)
			}
			resumed, ck2, err := MustSystem(m, rc.config(4)).RunBatchCtx(context.Background(), jobs, duration, ck)
			if err != nil || ck2 != nil {
				t.Fatalf("resume: err=%v, checkpoint=%v", err, ck2)
			}
			if full.BestEnergy != resumed.BestEnergy || full.Best != resumed.Best {
				t.Fatalf("best job differs: %d@%v vs %d@%v",
					full.Best, full.BestEnergy, resumed.Best, resumed.BestEnergy)
			}
			for j := range full.Jobs {
				if ising.HammingDistance(full.Jobs[j], resumed.Jobs[j]) != 0 {
					t.Fatalf("job %d spins differ after resume", j)
				}
				if full.Energies[j] != resumed.Energies[j] {
					t.Fatalf("job %d energy %v vs %v", j, full.Energies[j], resumed.Energies[j])
				}
			}
			if full.Flips != resumed.Flips || full.BitChanges != resumed.BitChanges ||
				full.TrafficBytes != resumed.TrafficBytes || full.StallNS != resumed.StallNS {
				t.Fatal("batch ledgers differ after resume")
			}
		})
	}
}

func TestResumeWithChipLossRepartition(t *testing.T) {
	// Interrupt after a permanent chip loss has repartitioned the dead
	// chip's slice onto the survivors: the checkpoint must carry the
	// reshaped partition and the resumed run must still match.
	m := kgraph(40, 6)
	const duration = 40
	cfg := Config{Chips: 4, Seed: 9, Faults: fault.Config{
		Seed: 3, ChipLossEpoch: 2,
		Recovery: fault.Recovery{Repartition: true},
	}}
	full := MustSystem(m, cfg).RunConcurrent(duration)
	runC := func(s *System, ctx context.Context, ck *Checkpoint) (*Result, *Checkpoint, error) {
		return s.RunConcurrentCtx(ctx, duration, ck)
	}
	ck := interruptAt(t, m, cfg, 4, runC)
	if len(ck.Chips) != 3 {
		t.Fatalf("checkpoint has %d chips, want 3 survivors", len(ck.Chips))
	}
	resumed, _, err := MustSystem(m, cfg).RunConcurrentCtx(context.Background(), duration, ck)
	if err != nil {
		t.Fatal(err)
	}
	sameLedger(t, full, resumed)
}

func TestApplyCheckpointRejectsMismatch(t *testing.T) {
	m := kgraph(32, 2)
	cfg := Config{Chips: 4, Seed: 5}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	trcfg := cfg
	trcfg.Tracer = &epochCanceller{epoch: 2, cancel: cancel}
	_, ck, err := MustSystem(m, trcfg).RunConcurrentCtx(ctx, 30, nil)
	if !errors.Is(err, context.Canceled) || ck == nil {
		t.Fatalf("setup: err=%v ck=%v", err, ck)
	}

	// Wrong mode.
	if _, _, err := MustSystem(m, cfg).RunSequentialCtx(context.Background(), 30, ck); err == nil {
		t.Fatal("sequential accepted a concurrent checkpoint")
	}
	// Wrong duration.
	if _, _, err := MustSystem(m, cfg).RunConcurrentCtx(context.Background(), 60, ck); err == nil {
		t.Fatal("accepted a checkpoint for a different duration")
	}
	// Fault-layer parity.
	fcfg := cfg
	fcfg.Faults = fault.Config{Seed: 1, DropRate: 0.1}
	if _, _, err := MustSystem(m, fcfg).RunConcurrentCtx(context.Background(), 30, ck); err == nil {
		t.Fatal("fault-injecting system accepted a fault-free checkpoint")
	}
	// Corrupt spins.
	bad := *ck
	bad.Chips = append([]ChipState(nil), ck.Chips...)
	badMachine := *ck.Chips[0].Machine
	badMachine.Spins = append([]int8(nil), badMachine.Spins...)
	badMachine.Spins[0] = 3
	bad.Chips[0] = ChipState{Owned: ck.Chips[0].Owned, Machine: &badMachine,
		Shadow: ck.Chips[0].Shadow, LastFlipInduced: ck.Chips[0].LastFlipInduced}
	if _, _, err := MustSystem(m, cfg).RunConcurrentCtx(context.Background(), 30, &bad); err == nil {
		t.Fatal("accepted corrupt spins")
	}
}

func TestPendingAccessors(t *testing.T) {
	// The in-flight inspection accessors must expose queued fabric
	// messages at an interruption point without disturbing the run.
	m := kgraph(40, 8)
	cfg := Config{Chips: 4, Seed: 11, Faults: fault.Config{
		Seed: 2, DelayRate: 0.6,
	}}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg.Tracer = &epochCanceller{epoch: 3, cancel: cancel}
	s := MustSystem(m, cfg)
	_, ck, err := s.RunConcurrentCtx(ctx, 40, nil)
	if !errors.Is(err, context.Canceled) || ck == nil {
		t.Fatalf("setup: err=%v ck=%v", err, ck)
	}
	msgs := s.PendingMessages()
	if ck.Fault == nil {
		t.Fatal("fault state missing from checkpoint")
	}
	if len(msgs) != len(ck.Fault.Pending) {
		t.Fatalf("accessor reports %d pending, checkpoint %d", len(msgs), len(ck.Fault.Pending))
	}
	for _, msg := range msgs {
		if msg.From < 0 || msg.From >= 4 {
			t.Fatalf("pending message from bogus chip %d", msg.From)
		}
	}
	if got := s.PendingWritebacks(); len(got) != 0 {
		t.Fatalf("concurrent mode has %d batch writebacks pending", len(got))
	}
}
