package multichip

import "testing"

func TestAutoEpochUnlimitedPicksSmallest(t *testing.T) {
	m := kgraph(48, 60)
	res := AutoEpoch(m, Config{Chips: 4, Seed: 61}, nil, 40, 0)
	if !res.OK {
		t.Fatal("unlimited fabric failed calibration")
	}
	if res.EpochNS != 0.5 {
		t.Fatalf("recommended %v, want the smallest candidate (nothing stalls)", res.EpochNS)
	}
	for epoch, frac := range res.StallFraction {
		if frac != 0 {
			t.Fatalf("epoch %v recorded stall fraction %v on unlimited fabric", epoch, frac)
		}
	}
}

func TestAutoEpochPrefersLongerUnderPressure(t *testing.T) {
	m := kgraph(64, 62)
	tight := Config{Chips: 4, Seed: 63, Channels: 1, ChannelBytesPerNS: 0.15}
	res := AutoEpoch(m, tight, nil, 60, 0.05)
	loose := AutoEpoch(m, Config{Chips: 4, Seed: 63}, nil, 60, 0.05)
	if res.OK && res.EpochNS <= loose.EpochNS {
		t.Fatalf("pressured fabric recommended %v, not longer than unlimited's %v",
			res.EpochNS, loose.EpochNS)
	}
	// Stall fractions must be non-increasing in epoch size (longer
	// epochs batch more per sync).
	prev := 2.0
	for _, epoch := range []float64{0.5, 1, 2, 3.3, 5, 8, 12, 20} {
		f := res.StallFraction[epoch]
		if f > prev+0.15 { // allow mild non-monotonicity from dynamics
			t.Fatalf("stall fraction jumped at epoch %v: %v after %v", epoch, f, prev)
		}
		prev = f
	}
}

func TestAutoEpochReportsFailure(t *testing.T) {
	// A hopeless fabric: nothing meets the tolerance; the tuner must
	// say so and still recommend the least-bad option.
	m := kgraph(64, 64)
	res := AutoEpoch(m, Config{Chips: 4, Seed: 65, Channels: 1, ChannelBytesPerNS: 1e-6},
		[]float64{1, 4}, 20, 0.01)
	if res.OK {
		t.Fatal("hopeless fabric passed calibration")
	}
	if res.EpochNS != 1 && res.EpochNS != 4 {
		t.Fatalf("recommendation %v not among candidates", res.EpochNS)
	}
}

func TestAutoEpochPanics(t *testing.T) {
	m := kgraph(16, 66)
	for name, f := range map[string]func(){
		"empty":     func() { AutoEpoch(m, Config{Chips: 2}, []float64{}, 10, 0) },
		"unsorted":  func() { AutoEpoch(m, Config{Chips: 2}, []float64{2, 1}, 10, 0) },
		"tolerance": func() { AutoEpoch(m, Config{Chips: 2}, nil, 10, 1.5) },
		"burst":     func() { AutoEpoch(m, Config{Chips: 2}, nil, -1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}
