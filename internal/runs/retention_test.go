package runs

import (
	"context"
	"strings"
	"testing"

	"mbrim/internal/obs"
)

// TestRetentionBoundsRegistryCardinality drives 100 runs through a
// manager with RetainRuns=5 and asserts the registry's series count
// stays bounded — the leak this pins against is per-run labeled diag
// series (diag.pair_disagreement{run,from,to} et al.) accumulating
// forever in a long-lived daemon.
func TestRetentionBoundsRegistryCardinality(t *testing.T) {
	const (
		total  = 100
		retain = 5
	)
	reg := obs.NewRegistry()
	m := NewManager(Config{Registry: reg, RetainRuns: retain})
	peak := 0
	for i := 0; i < total; i++ {
		r, err := m.Submit(context.Background(), mbrimSeqRequest(12, 10))
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, r)
		if n := reg.SeriesCount(); n > peak {
			peak = n
		}
	}

	if got := len(m.List()); got != retain {
		t.Fatalf("retained %d runs, want %d", got, retain)
	}
	if _, ok := m.Get("run-1"); ok {
		t.Fatal("evicted run-1 still registered")
	}
	if _, ok := m.Get("run-100"); !ok {
		t.Fatal("newest run evicted")
	}

	// Without release, each run leaves ~16 labeled diag series behind
	// (directed pair gauges alone are chips·(chips−1) per run), so 100
	// runs would push cardinality past 1600. The bound asserts the
	// retained-runs plateau instead.
	if peak > 400 {
		t.Fatalf("registry cardinality peaked at %d series across %d runs — per-run diag series are leaking", peak, total)
	}

	// Evicted runs' series are gone from the snapshot; retained ones
	// are still there.
	snap := reg.Snapshot()
	for key := range snap.Gauges {
		if strings.Contains(key, `run="run-1"`) {
			t.Fatalf("evicted run's series %q still registered", key)
		}
	}
	seenRetained := false
	for key := range snap.Gauges {
		if strings.HasPrefix(key, "diag.") && strings.Contains(key, `run="run-100"`) {
			seenRetained = true
			break
		}
	}
	if !seenRetained {
		t.Fatal("retained run has no diag series — the assertion above is vacuous")
	}

	if got := snap.Counters["runs.evicted_total"]; got != total-retain {
		t.Fatalf("runs.evicted_total = %d, want %d", got, total-retain)
	}
	if snap.Counters["runs.diag_series_released_total"] == 0 {
		t.Fatal("no diag series were released on eviction")
	}
}

// TestRetentionZeroKeepsEverything pins the historical default: no
// RetainRuns, no eviction.
func TestRetentionZeroKeepsEverything(t *testing.T) {
	m := NewManager(Config{})
	for i := 0; i < 3; i++ {
		r, err := m.Submit(context.Background(), saRequest(8))
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, r)
	}
	if got := len(m.List()); got != 3 {
		t.Fatalf("retained %d runs, want all 3", got)
	}
}
