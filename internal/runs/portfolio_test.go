package runs

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"mbrim/internal/core"
	"mbrim/internal/obs"
)

// TestEnginesEndpoint pins the registry-derived GET /engines surface:
// every registered engine appears with its capability flags, the
// portfolio included (linked through this package's import).
func TestEnginesEndpoint(t *testing.T) {
	srv, _, _ := newTestServer(t, Config{})
	resp, body := getBody(t, srv.URL+"/engines")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /engines = %d %s", resp.StatusCode, body)
	}
	var payload struct {
		Engines []core.EngineInfo `json:"engines"`
	}
	if err := json.Unmarshal(body, &payload); err != nil {
		t.Fatal(err)
	}
	if len(payload.Engines) != len(core.Kinds()) {
		t.Fatalf("GET /engines lists %d engines, registry has %d",
			len(payload.Engines), len(core.Kinds()))
	}
	byKind := map[core.Kind]core.Capabilities{}
	for _, e := range payload.Engines {
		byKind[e.Kind] = e.Capabilities
	}
	if caps, ok := byKind[core.Portfolio]; !ok {
		t.Fatal("portfolio engine not listed")
	} else if caps.Description == "" {
		t.Fatal("portfolio listed without a description")
	}
	if caps := byKind[core.MBRIMConcurrent]; !caps.Resume {
		t.Fatal("mbrim listed without the resume capability")
	}
	if caps := byKind[core.SA]; !caps.WarmStart {
		t.Fatal("sa listed without the warm-start capability")
	}
}

// TestPortfolioOverHTTP submits an engine=portfolio run and follows it
// to a terminal state: the status must carry per-entrant progress and
// the winner, the outcome must carry the merged ledger.
func TestPortfolioOverHTTP(t *testing.T) {
	srv, m, _ := newTestServer(t, Config{})
	resp, body := postJSON(t, srv.URL+"/runs", `{
		"engine": "portfolio", "k": 24, "sweeps": 10,
		"portfolio": {"entrants": [
			{"kind": "sa", "sweeps": 10, "runs": 1},
			{"kind": "tabu", "sweeps": 10}
		]}
	}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d %s", resp.StatusCode, body)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	run, ok := m.Get(st.ID)
	if !ok {
		t.Fatal("run not registered")
	}
	waitDone(t, run)

	if _, body = getBody(t, srv.URL+"/runs/"+st.ID); true {
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
	}
	if st.State != StateCompleted {
		t.Fatalf("state = %s (%s)", st.State, st.Error)
	}
	if len(st.Progress.Entrants) != 2 {
		t.Fatalf("entrant progress: %+v", st.Progress.Entrants)
	}
	e0, ok := st.Progress.Entrants["e0"]
	if !ok {
		t.Fatalf("no e0 entry: %+v", st.Progress.Entrants)
	}
	if e0.Engine != "sa" {
		t.Fatalf("e0 engine = %q", e0.Engine)
	}
	if e0.Phase == "racing" {
		t.Fatalf("e0 still racing after terminal state")
	}
	if st.Progress.Winner == "" || st.Progress.WinnerKind == "" {
		t.Fatalf("winner not recorded: %+v", st.Progress)
	}
	won := st.Progress.Entrants[st.Progress.Winner]
	if !won.Won {
		t.Fatalf("winner entry not marked: %+v", won)
	}

	// The outcome carries the merged ledger.
	resp, body = getBody(t, srv.URL+"/runs/"+st.ID+"/outcome")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("outcome = %d %s", resp.StatusCode, body)
	}
	var out OutcomeBody
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Engine != "portfolio" || out.Stats["entrants"] != 2 {
		t.Fatalf("outcome: engine %q stats %v", out.Engine, out.Stats)
	}
	if len(out.Spins) != 24 {
		t.Fatalf("spins length %d", len(out.Spins))
	}
	if out.Portfolio == nil || len(out.Portfolio.Entrants) != 2 {
		t.Fatalf("outcome portfolio report: %+v", out.Portfolio)
	}
	if got := out.Portfolio.WinnerKind; got == "" {
		t.Fatal("outcome report missing winner attribution")
	}

	// The diag snapshot folds the same race into its portfolio section.
	resp, body = getBody(t, srv.URL+"/runs/"+st.ID+"/diag")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("diag = %d", resp.StatusCode)
	}
	var snap struct {
		Portfolio *struct {
			Entrants []struct {
				Kind  string `json:"kind"`
				Phase string `json:"phase"`
			} `json:"entrants"`
			Winner int `json:"winner"`
		} `json:"portfolio"`
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Portfolio == nil || len(snap.Portfolio.Entrants) != 2 {
		t.Fatalf("diag portfolio section: %s", body)
	}
	if snap.Portfolio.Winner < 0 {
		t.Fatalf("diag winner not folded: %s", body)
	}
}

// TestPortfolioSubmitValidation pins the 400 surface: malformed specs
// are rejected at submit, not as failed runs.
func TestPortfolioSubmitValidation(t *testing.T) {
	srv, _, _ := newTestServer(t, Config{})
	cases := []struct {
		name, body, want string
	}{
		{"spec without portfolio engine",
			`{"engine":"sa","k":8,"portfolio":{"entrants":[{"kind":"sa"}]}}`,
			"requires engine"},
		{"unknown entrant",
			`{"engine":"portfolio","k":8,"portfolio":{"entrants":[{"kind":"taboo"}]}}`,
			"did you mean"},
		{"nested portfolio",
			`{"engine":"portfolio","k":8,"portfolio":{"entrants":[{"kind":"portfolio"}]}}`,
			"do not nest"},
		{"hand-off without warm start",
			`{"engine":"portfolio","k":8,"portfolio":{"entrants":[{"kind":"sa"}],"handOff":{"kind":"pt"}}}`,
			"warm start"},
	}
	for _, c := range cases {
		resp, body := postJSON(t, srv.URL+"/runs", c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d %s", c.name, resp.StatusCode, body)
		}
		if !strings.Contains(string(body), c.want) {
			t.Fatalf("%s: body %s, want substring %q", c.name, body, c.want)
		}
	}
}

// TestProgressEntrantFolding drives the Progress reducer directly with
// the event shapes the portfolio engine emits.
func TestProgressEntrantFolding(t *testing.T) {
	var p Progress
	p.observe(obs.Event{Kind: obs.EntrantStart, Label: "sa", Chip: 0, Seed: 1})
	p.observe(obs.Event{Kind: obs.EntrantStart, Label: "tabu", Chip: 1, Seed: 2})
	p.observe(obs.Event{Kind: obs.RunStart, Label: "sa", Seed: 1, Origin: "e0"})
	p.observe(obs.Event{Kind: obs.EnergySample, Value: -10, Origin: "e0"})
	p.observe(obs.Event{Kind: obs.EnergySample, Value: -25, Origin: "e0"})
	p.observe(obs.Event{Kind: obs.EnergySample, Value: -5, Origin: "e0"})
	p.observe(obs.Event{Kind: obs.EntrantEnd, Label: "tabu", Chip: 1, Count: 1, WallDurNS: 100})
	p.observe(obs.Event{Kind: obs.EntrantEnd, Label: "sa", Chip: 0, Value: -25, WallDurNS: 200})
	p.observe(obs.Event{Kind: obs.PortfolioWin, Label: "sa", Chip: 0, Value: -25, Count: 1})

	if len(p.Entrants) != 2 {
		t.Fatalf("entrants: %+v", p.Entrants)
	}
	e0 := p.Entrants["e0"]
	if e0.Engine != "sa" || e0.BestEnergy != -25 || e0.LastEnergy != -25 || !e0.HasEnergy {
		t.Fatalf("e0: %+v", e0)
	}
	if e0.Phase != "done" || !e0.Won {
		t.Fatalf("e0 terminal state: %+v", e0)
	}
	if e1 := p.Entrants["e1"]; e1.Phase != "cancelled" || e1.Won {
		t.Fatalf("e1: %+v", e1)
	}
	if p.Winner != "e0" || p.WinnerKind != "sa" {
		t.Fatalf("winner: %q %q", p.Winner, p.WinnerKind)
	}
	// Entrant events must not clobber the run-level engine field.
	if p.Engine == "sa" {
		t.Fatal("entrant RunStart leaked into the top-level engine")
	}
	// The snapshot deep-copies the entrant map.
	snap := p.snapshot()
	p.observe(obs.Event{Kind: obs.EnergySample, Value: -99, Origin: "e0"})
	if snap.Entrants["e0"].BestEnergy == -99 {
		t.Fatal("snapshot aliased the live entrant map")
	}
}
