package runs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"mbrim/internal/checkpoint"
	"mbrim/internal/core"
	"mbrim/internal/diag"
	"mbrim/internal/journal"
	"mbrim/internal/obs"
)

// This file is the durability layer: write-through journaling of every
// run transition, periodic durable checkpoints for the checkpointable
// engines, restart-once panic supervision, and the replay pass that
// reconstructs the run table after a daemon restart.
//
// The crash-recovery contract leans entirely on PR 3's bit-identity
// guarantee: a multichip solve resumed from a checkpoint produces the
// same trajectory, ledgers included, as one that was never stopped. So
// periodic persistence runs the solve in segments — cancel at the
// checkpoint cadence, persist the InterruptedError's envelope, resume
// in place — and a kill -9 at any instant loses at most one segment of
// wall time, never a bit of the final outcome. Engines without
// checkpoints (sa, tabu, ...) are seed-deterministic: replay restarts
// them from scratch and lands on the same answer.

// minCheckpointEvery floors the periodic-checkpoint cadence: below
// this, fsync time would rival solve time and a segment might not span
// a single engine epoch.
const minCheckpointEvery = 20 * time.Millisecond

// durable reports whether run state persists across restarts.
func (m *Manager) durable() bool { return m.cfg.Journal != nil && m.cfg.StateDir != "" }

// checkpointDir is where periodic checkpoint files live, beside the
// journal inside StateDir.
func (m *Manager) checkpointDir() string { return filepath.Join(m.cfg.StateDir, "checkpoints") }

// initStateDir creates the checkpoint directory; called by NewManager.
func (m *Manager) initStateDir() {
	if m.durable() {
		_ = os.MkdirAll(m.checkpointDir(), 0o755)
	}
}

// journalAppend writes rec through the journal, if one is configured.
// Append failures are counted, not fatal: a daemon with a full disk
// keeps solving, it just loses durability (the append-error counter is
// the alert).
func (m *Manager) journalAppend(rec journal.Record) {
	if m.cfg.Journal == nil {
		return
	}
	if err := m.cfg.Journal.Append(rec); err != nil {
		m.reg.Counter("journal.append_errors_total").Inc()
	}
}

// journalTerminal records a run's final state, error and outcome
// summary.
func (m *Manager) journalTerminal(r *Run, state State) {
	if m.cfg.Journal == nil {
		return
	}
	rec := journal.Record{Type: journal.TypeTerminal, ID: r.id, State: string(state)}
	r.mu.Lock()
	if r.err != nil {
		rec.Error = r.err.Error()
	}
	if r.outcome != nil {
		o := r.outcome
		sum := OutcomeSummary{
			Energy: o.Energy, Cut: o.Cut, ModelNS: o.ModelNS,
			WallNS: o.Wall.Nanoseconds(), Spins: len(o.Spins),
			Backend: o.Backend, Stats: o.Stats,
		}
		if data, err := json.Marshal(&sum); err == nil {
			rec.Summary = data
		}
	}
	r.mu.Unlock()
	m.journalAppend(rec)
}

// persistCheckpoint atomically writes data as a fresh, uniquely named
// checkpoint file and journals its ref. Files are immutable once
// journaled — the previous one is deleted only after the new ref is
// durably on the log, so the journal's newest intact ref always points
// at bytes that still exist and still hash. (A crash between journal
// append and delete leaves one stale file behind; harmless.)
func (m *Manager) persistCheckpoint(r *Run, data []byte) {
	r.mu.Lock()
	r.ckptSeq++
	name := fmt.Sprintf("%s.%d.ckpt", r.id, r.ckptSeq)
	prev := r.lastRef
	r.mu.Unlock()
	ref, err := checkpoint.WriteRef(m.checkpointDir(), name, data)
	if err != nil {
		m.reg.Counter("journal.checkpoint_errors_total").Inc()
		return
	}
	r.mu.Lock()
	r.lastRef = &ref
	r.mu.Unlock()
	jerr := error(nil)
	if m.cfg.Journal != nil {
		if jerr = m.cfg.Journal.Append(journal.Record{
			Type: journal.TypeCheckpoint, ID: r.id, Checkpoint: &ref,
		}); jerr != nil {
			m.reg.Counter("journal.append_errors_total").Inc()
		}
	}
	m.reg.Counter("runs.checkpoints_persisted_total").Inc()
	if jerr == nil && prev != nil && prev.Name != ref.Name {
		_ = os.Remove(filepath.Join(m.checkpointDir(), prev.Name))
	}
}

// dropCheckpointFile deletes a completed run's last checkpoint file —
// the terminal record is journaled, so nothing will ever resume from
// it, and a torn-tail replay that misses the terminal record falls
// back to a scratch restart (same outcome by seed determinism).
func (m *Manager) dropCheckpointFile(r *Run) {
	if !m.durable() {
		return
	}
	r.mu.Lock()
	ref := r.lastRef
	r.lastRef = nil
	r.mu.Unlock()
	if ref != nil {
		_ = os.Remove(filepath.Join(m.checkpointDir(), ref.Name))
	}
}

// checkpointable reports whether the engine kind supports resume (the
// multichip engines carry checkpoints through InterruptedError).
func checkpointable(kind core.Kind) bool {
	switch kind {
	case core.MBRIMConcurrent, core.MBRIMSequential, core.MBRIMBatch:
		return true
	}
	return false
}

// supervisedSolve adds restart-once supervision over the segmented
// solve: an engine panic (already converted to *core.PanicError at the
// SolveCtx boundary) gets one supervised restart, resuming from the
// last durable checkpoint when one exists. A second panic fails the
// run — restart loops on a deterministic panic would burn the slot
// forever.
func (m *Manager) supervisedSolve(ctx context.Context, r *Run, req core.Request) (*core.Outcome, error) {
	out, err := m.checkpointedSolve(ctx, r, req)
	var pe *core.PanicError
	if err == nil || !errors.As(err, &pe) || ctx.Err() != nil {
		return out, err
	}
	r.mu.Lock()
	r.restarts++
	ref := r.lastRef
	r.mu.Unlock()
	m.reg.Counter("runs.restarts_total").Inc()
	reason := err.Error()
	if i := strings.IndexByte(reason, '\n'); i > 0 {
		reason = reason[:i]
	}
	m.journalAppend(journal.Record{Type: journal.TypeRestart, ID: r.id, Reason: reason})
	if ref != nil {
		if data, lerr := ref.Load(m.checkpointDir()); lerr == nil {
			req.Resume = data
		}
	}
	return m.checkpointedSolve(ctx, r, req)
}

// checkpointedSolve runs the solve with periodic durable checkpoints:
// each CheckpointEvery, the segment's context is cancelled, the
// resulting interrupt checkpoint is persisted, and the solve resumes
// from it in place. Bit-identity of resume (PR 3) makes the
// segmentation invisible in the outcome. Without durability, a
// cadence, or a checkpointable engine this is exactly core.SolveCtx.
func (m *Manager) checkpointedSolve(ctx context.Context, r *Run, req core.Request) (*core.Outcome, error) {
	every := m.cfg.CheckpointEvery
	if !m.durable() || every <= 0 || !checkpointable(req.Kind) {
		return core.SolveCtx(ctx, req)
	}
	if every < minCheckpointEvery {
		every = minCheckpointEvery
	}
	prev := req.Resume
	for {
		segCtx, segCancel := context.WithCancel(ctx)
		var fired atomic.Bool
		timer := time.AfterFunc(every, func() {
			fired.Store(true)
			segCancel()
		})
		out, err := core.SolveCtx(segCtx, req)
		timer.Stop()
		segCancel()
		var intr *core.InterruptedError
		if err == nil || !errors.As(err, &intr) || !fired.Load() || ctx.Err() != nil {
			// Finished, failed, or interrupted by the caller rather than
			// the checkpoint timer: surface as-is (finish persists an
			// interrupt's checkpoint).
			return out, err
		}
		// Timer-driven segment boundary: persist, then resume in place.
		m.persistCheckpoint(r, intr.Checkpoint)
		if prev != nil && bytes.Equal(prev, intr.Checkpoint) {
			// The segment made no progress (shorter than one engine
			// epoch): widen the cadence so the loop cannot livelock.
			every *= 2
		}
		prev = intr.Checkpoint
		req.Resume = intr.Checkpoint
	}
}

// RecoverSummary reports what a journal replay reconstructed.
type RecoverSummary struct {
	// Tombstones are terminal runs restored with their recorded
	// summaries (checkpoints, for interrupts, stay downloadable).
	Tombstones int
	// Resumed runs were mid-flight at the crash and re-admitted from
	// their last durable checkpoint.
	Resumed int
	// Restarted runs were mid-flight with no usable checkpoint and
	// re-admitted from scratch (seed determinism preserves outcomes).
	Restarted int
	// Unrecoverable runs could not be reconstructed (no spec, an
	// unbuildable spec, or an expired deadline); they resurface as
	// failed tombstones so their IDs are not silently forgotten.
	Unrecoverable int
}

// replayState is one run's journal records folded in order.
type replayState struct {
	spec       json.RawMessage
	priority   int
	deadlineNS int64
	submitNS   int64
	ref        *checkpoint.Ref
	terminal   *journal.Record
	restarts   int
}

// Recover reconstructs the run table from journal records — the replay
// pass the daemon runs (gate closed) before accepting traffic.
// Terminal runs come back as queryable tombstones; mid-flight runs are
// re-admitted under their original IDs through the normal admission
// path (so a restart storm still respects MaxActive) and resume from
// their last durable checkpoint. Records from other scopes (the
// cluster coordinator's) are ignored here.
func (m *Manager) Recover(recs []journal.Record) RecoverSummary {
	var order []string
	states := map[string]*replayState{}
	maxSeq := 0
	for i := range recs {
		rec := &recs[i]
		if rec.Scope != "" && rec.Scope != journal.ScopeRun {
			continue
		}
		s := states[rec.ID]
		if s == nil {
			s = &replayState{}
			states[rec.ID] = s
			order = append(order, rec.ID)
			if n, ok := runSeq(rec.ID); ok && n > maxSeq {
				maxSeq = n
			}
		}
		switch rec.Type {
		case journal.TypeSubmit:
			s.spec = rec.Spec
			s.priority = rec.Priority
			s.deadlineNS = rec.DeadlineWallNS
			s.submitNS = rec.WallNS
		case journal.TypeCheckpoint:
			s.ref = rec.Checkpoint
		case journal.TypeRestart:
			s.restarts++
		case journal.TypeTerminal:
			s.terminal = rec
		}
	}
	m.mu.Lock()
	if maxSeq > m.seq {
		m.seq = maxSeq
	}
	m.mu.Unlock()

	var sum RecoverSummary
	for _, id := range order {
		s := states[id]
		if s.terminal != nil {
			m.restoreTombstone(id, s)
			sum.Tombstones++
			continue
		}
		switch m.resumeCrashed(id, s) {
		case resumedFromCheckpoint:
			sum.Resumed++
		case restartedFromScratch:
			sum.Restarted++
		default:
			sum.Unrecoverable++
		}
	}
	return sum
}

// runSeq parses "run-N" IDs so replay can restore the ID counter.
func runSeq(id string) (int, bool) {
	rest, ok := strings.CutPrefix(id, "run-")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

type resumeResult int

const (
	unrecoverable resumeResult = iota
	resumedFromCheckpoint
	restartedFromScratch
)

// resumeCrashed re-admits a run that was mid-flight at the crash.
func (m *Manager) resumeCrashed(id string, s *replayState) resumeResult {
	fail := func(msg string) resumeResult {
		m.tombstone(id, s, StateFailed, msg, nil)
		return unrecoverable
	}
	if len(s.spec) == 0 {
		return fail("runs: crashed run recorded no spec; not replayable")
	}
	var sr SubmitRequest
	if err := json.Unmarshal(s.spec, &sr); err != nil {
		return fail(fmt.Sprintf("runs: crashed run spec unreadable: %v", err))
	}
	req, err := m.buildRequest(&sr)
	if err != nil {
		return fail(fmt.Sprintf("runs: crashed run spec no longer builds: %v", err))
	}
	var deadline time.Time
	if s.deadlineNS > 0 {
		deadline = time.Unix(0, s.deadlineNS)
		if !time.Now().Before(deadline) {
			m.reg.Counter("runs.shed_total").Inc()
			return fail("runs: deadline expired during daemon restart")
		}
	}
	result := restartedFromScratch
	if s.ref != nil {
		if data, lerr := s.ref.Load(m.checkpointDir()); lerr == nil {
			req.Resume = data
			result = resumedFromCheckpoint
		} else {
			// Fall back to scratch: seed determinism still lands on the
			// same outcome, the work is just redone.
			m.reg.Counter("journal.checkpoint_load_errors_total").Inc()
		}
	}
	m.journalAppend(journal.Record{Type: journal.TypeRestart, ID: id, Reason: "replay"})
	opts := SubmitOptions{Priority: s.priority, Deadline: deadline, Spec: s.spec, restarts: s.restarts + 1}
	if _, err := m.admit(nil, id, req, opts, true); err != nil {
		return fail(fmt.Sprintf("runs: replay admission: %v", err))
	}
	return result
}

// restoreTombstone registers a terminal run recovered from the
// journal: status, error and summary are queryable again, and an
// interrupt's checkpoint is downloadable if its file survived.
func (m *Manager) restoreTombstone(id string, s *replayState) {
	state := State(s.terminal.State)
	switch state {
	case StateCompleted, StateInterrupted, StateFailed:
	default:
		state = StateFailed
	}
	var sum *OutcomeSummary
	if len(s.terminal.Summary) > 0 {
		var o OutcomeSummary
		if err := json.Unmarshal(s.terminal.Summary, &o); err == nil {
			sum = &o
		}
	}
	errMsg := s.terminal.Error
	var ck []byte
	if state == StateInterrupted && s.ref != nil {
		if data, err := s.ref.Load(m.checkpointDir()); err == nil {
			ck = data
		}
	}
	r := m.tombstone(id, s, state, errMsg, sum)
	if r != nil && ck != nil {
		r.mu.Lock()
		r.checkpoint = ck
		r.mu.Unlock()
	}
}

// tombstone registers a dead run: terminal from birth, live tail
// closed, engine name recovered from the spec when present. Returns
// nil if the ID is somehow already registered.
func (m *Manager) tombstone(id string, s *replayState, state State, errMsg string, sum *OutcomeSummary) *Run {
	_, cancel := context.WithCancel(context.Background())
	cancel()
	r := &Run{
		id:       id,
		mgr:      m,
		ring:     obs.NewRing(m.cfg.RingSize),
		bcast:    obs.NewBroadcast(m.cfg.BroadcastBuffer),
		done:     make(chan struct{}),
		cancel:   cancel,
		state:    state,
		restarts: s.restarts,
		summary:  sum,
	}
	if len(s.spec) > 0 {
		var sr SubmitRequest
		if err := json.Unmarshal(s.spec, &sr); err == nil {
			r.req.Kind = core.Kind(sr.Engine)
			r.req.Seed = sr.Seed
		}
	}
	r.diag = diag.New(diag.Config{RunID: id})
	r.progress.Phase = "recovered"
	if errMsg != "" {
		r.err = errors.New(errMsg)
	}
	if s.submitNS > 0 {
		r.created = time.Unix(0, s.submitNS)
	} else {
		r.created = time.Now()
	}
	if s.terminal != nil && s.terminal.WallNS > 0 {
		r.ended = time.Unix(0, s.terminal.WallNS)
	} else {
		r.ended = time.Now()
	}
	r.bcast.Close()
	close(r.done)
	m.mu.Lock()
	if _, exists := m.runs[id]; exists {
		m.mu.Unlock()
		return nil
	}
	m.runs[id] = r
	m.order = append(m.order, id)
	m.mu.Unlock()
	m.reg.CounterWith("runs.finished", obs.Labels{
		"engine": string(r.req.Kind), "state": string(state)}).Inc()
	return r
}
