package runs

import (
	"context"
	"encoding/json"
	"math"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mbrim/internal/core"
	"mbrim/internal/journal"
	"mbrim/internal/obs"
)

// durableManager builds a Manager journaling into dir, returning the
// manager and its open journal writer.
func durableManager(t *testing.T, dir string, reg *obs.Registry, every time.Duration) (*Manager, *journal.Writer) {
	t.Helper()
	jw, err := journal.Open(filepath.Join(dir, "run.journal"), reg)
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(Config{Registry: reg, Journal: jw, StateDir: dir, CheckpointEvery: every})
	return m, jw
}

// outcomesMatch asserts bit-identity of the fields the crash-recovery
// contract pins: energy (exact bits), flips, and the full spin state.
func outcomesMatch(t *testing.T, label string, got, want *core.Outcome) {
	t.Helper()
	if math.Float64bits(got.Energy) != math.Float64bits(want.Energy) {
		t.Fatalf("%s: energy %x != %x (%v vs %v)", label,
			math.Float64bits(got.Energy), math.Float64bits(want.Energy), got.Energy, want.Energy)
	}
	if got.Stats["flips"] != want.Stats["flips"] {
		t.Fatalf("%s: flips %v != %v", label, got.Stats["flips"], want.Stats["flips"])
	}
	if len(got.Spins) != len(want.Spins) {
		t.Fatalf("%s: %d spins != %d", label, len(got.Spins), len(want.Spins))
	}
	for i := range got.Spins {
		if got.Spins[i] != want.Spins[i] {
			t.Fatalf("%s: spin %d differs", label, i)
		}
	}
}

func TestJournalWriteThrough(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	m, jw := durableManager(t, dir, reg, 0)

	sr := SubmitRequest{Engine: "sa", K: 12, Seed: 1, Sweeps: 5}
	spec, _ := json.Marshal(&sr)
	req, err := m.buildRequest(&sr)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.SubmitWith(context.Background(), req, SubmitOptions{Priority: 2, Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, r)
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}

	rep, err := journal.Replay(filepath.Join(dir, "run.journal"))
	if err != nil || rep.Torn {
		t.Fatalf("replay: %v torn=%v", err, rep.Torn)
	}
	if len(rep.Records) != 3 {
		t.Fatalf("journal = %d records, want submit/start/terminal", len(rep.Records))
	}
	sub, start, term := rep.Records[0], rep.Records[1], rep.Records[2]
	if sub.Type != journal.TypeSubmit || sub.ID != "run-1" || sub.Priority != 2 || len(sub.Spec) == 0 {
		t.Fatalf("submit record = %+v", sub)
	}
	if start.Type != journal.TypeStart || start.ID != "run-1" || start.WallNS == 0 {
		t.Fatalf("start record = %+v", start)
	}
	if term.Type != journal.TypeTerminal || term.State != string(StateCompleted) || len(term.Summary) == 0 {
		t.Fatalf("terminal record = %+v", term)
	}
	var sum OutcomeSummary
	if err := json.Unmarshal(term.Summary, &sum); err != nil || sum.Spins != 12 {
		t.Fatalf("terminal summary = %s (%v)", term.Summary, err)
	}
}

// TestSegmentedCheckpointBitIdentity pins the keystone property behind
// crash recovery: running a multichip solve in checkpoint segments is
// invisible in the outcome — bit-identical energy, ledgers and spins
// versus the same request solved in one unbroken pass.
func TestSegmentedCheckpointBitIdentity(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	m, jw := durableManager(t, dir, reg, 50*time.Millisecond)
	defer jw.Close()

	sr := SubmitRequest{Engine: "mbrim-seq", K: 20, Seed: 3, Chips: 4, DurationNS: 10000}
	req, err := m.buildRequest(&sr)
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := json.Marshal(&sr)
	r, err := m.SubmitWith(context.Background(), req, SubmitOptions{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, r)
	out, err := r.Outcome()
	if err != nil || out == nil {
		t.Fatalf("outcome: %v, %v", out, err)
	}
	if n := reg.Snapshot().Counters["runs.checkpoints_persisted_total"]; n < 1 {
		t.Fatalf("no checkpoints persisted — the segmentation never engaged (%d)", n)
	}

	refReq, err := m.buildRequest(&sr)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.Solve(refReq)
	if err != nil {
		t.Fatal(err)
	}
	outcomesMatch(t, "segmented vs unbroken", out, ref)
}

// TestCrashReplayBitIdentity simulates a daemon crash mid-run: the
// journal stops cold (no terminal record), the run dies, and a fresh
// manager replays the journal, resumes run-1 from its last durable
// checkpoint, and must land on the exact outcome of a run that never
// crashed.
func TestCrashReplayBitIdentity(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	m1, jw1 := durableManager(t, dir, reg, 50*time.Millisecond)

	sr := SubmitRequest{Engine: "mbrim-seq", K: 20, Seed: 3, Chips: 4, DurationNS: 10000}
	spec, _ := json.Marshal(&sr)
	req, err := m1.buildRequest(&sr)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := m1.SubmitWith(context.Background(), req, SubmitOptions{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	// Let at least two checkpoints land so the crash loses real
	// progress, then "crash": the journal closes first (nothing more can
	// be recorded, exactly like kill -9), then the run dies.
	deadline := time.Now().Add(20 * time.Second)
	for reg.Snapshot().Counters["runs.checkpoints_persisted_total"] < 2 {
		select {
		case <-r1.Done():
			t.Fatal("run finished before two checkpoints; raise durationNS")
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoints persisted in 20s")
		}
		time.Sleep(10 * time.Millisecond)
	}
	jw1.Close()
	r1.Cancel()
	waitDone(t, r1)

	// Restart: replay the surviving journal into a fresh manager.
	rep, err := journal.Replay(filepath.Join(dir, "run.journal"))
	if err != nil {
		t.Fatal(err)
	}
	reg2 := obs.NewRegistry()
	m2, jw2 := durableManager(t, dir, reg2, 50*time.Millisecond)
	defer jw2.Close()
	sum := m2.Recover(rep.Records)
	if sum.Resumed != 1 || sum.Tombstones != 0 || sum.Unrecoverable != 0 {
		t.Fatalf("recover summary = %+v, want exactly one resumed run", sum)
	}
	r2, ok := m2.Get("run-1")
	if !ok {
		t.Fatal("replay lost run-1")
	}
	waitDone(t, r2)
	out, err := r2.Outcome()
	if err != nil || out == nil {
		t.Fatalf("resumed outcome: %v, %v", out, err)
	}
	if st := r2.Status(); st.Restarts < 1 {
		t.Fatalf("resumed run reports %d restarts, want >= 1", st.Restarts)
	}

	// The resumed run's ID counter moved past run-1.
	next, err := m2.SubmitWith(context.Background(), saRequest(8), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if next.ID() != "run-2" {
		t.Fatalf("post-replay ID = %s, want run-2", next.ID())
	}
	waitDone(t, next)

	refReq, err := m2.buildRequest(&sr)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.Solve(refReq)
	if err != nil {
		t.Fatal(err)
	}
	outcomesMatch(t, "crash-resumed vs uninterrupted", out, ref)
}

// TestRecoverTombstones covers the replay state machine's other arms:
// terminal runs come back as queryable tombstones, crashed
// seed-deterministic runs restart from scratch, and journal garbage
// surfaces as failed tombstones instead of vanishing.
func TestRecoverTombstones(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewManager(Config{Registry: reg})
	sum := m.Recover([]journal.Record{
		{Type: journal.TypeSubmit, ID: "run-1", WallNS: 100,
			Spec: json.RawMessage(`{"engine":"sa","k":8,"sweeps":5}`)},
		{Type: journal.TypeStart, ID: "run-1", WallNS: 200},
		{Type: journal.TypeTerminal, ID: "run-1", WallNS: 300, State: "completed",
			Summary: json.RawMessage(`{"energy":-12.5,"spins":8}`)},
		// run-2 crashed mid-flight; sa has no checkpoints, so replay
		// restarts it from scratch (seed-deterministic outcome).
		{Type: journal.TypeSubmit, ID: "run-2", WallNS: 400,
			Spec: json.RawMessage(`{"engine":"sa","k":8,"seed":1,"sweeps":5}`)},
		{Type: journal.TypeStart, ID: "run-2", WallNS: 500},
		// run-3 crashed with no spec: unrecoverable, but not forgotten.
		{Type: journal.TypeStart, ID: "run-3", WallNS: 600},
		// Cluster-scoped records are not this manager's business.
		{Type: journal.TypeSubmit, ID: "cr-1", Scope: journal.ScopeCluster},
	})
	if sum.Tombstones != 1 || sum.Restarted != 1 || sum.Unrecoverable != 1 || sum.Resumed != 0 {
		t.Fatalf("recover summary = %+v", sum)
	}

	r1, ok := m.Get("run-1")
	if !ok {
		t.Fatal("tombstone run-1 missing")
	}
	st := r1.Status()
	if st.State != StateCompleted || st.Engine != "sa" {
		t.Fatalf("tombstone status = %+v", st)
	}
	if st.Outcome == nil || st.Outcome.Energy != -12.5 || st.Outcome.Spins != 8 {
		t.Fatalf("tombstone summary = %+v", st.Outcome)
	}

	r2, ok := m.Get("run-2")
	if !ok {
		t.Fatal("restarted run-2 missing")
	}
	waitDone(t, r2)
	out2, err := r2.Outcome()
	if err != nil || out2 == nil {
		t.Fatalf("restarted outcome: %v, %v", out2, err)
	}
	refReq, err := m.buildRequest(&SubmitRequest{Engine: "sa", K: 8, Seed: 1, Sweeps: 5})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.Solve(refReq)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(out2.Energy) != math.Float64bits(ref.Energy) {
		t.Fatalf("scratch restart drifted: %v vs %v", out2.Energy, ref.Energy)
	}

	r3, ok := m.Get("run-3")
	if !ok {
		t.Fatal("unrecoverable run-3 missing")
	}
	if st := r3.Status(); st.State != StateFailed {
		t.Fatalf("run-3 state = %s, want failed", st.State)
	}
	if _, err := r3.Outcome(); err == nil || !strings.Contains(err.Error(), "not replayable") {
		t.Fatalf("run-3 error = %v", err)
	}
	if _, ok := m.Get("cr-1"); ok {
		t.Fatal("cluster-scoped record leaked into the runs table")
	}

	// The restored sequence continues past the journaled IDs.
	next, err := m.SubmitWith(context.Background(), saRequest(8), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if next.ID() != "run-4" {
		t.Fatalf("next ID = %s, want run-4", next.ID())
	}
	waitDone(t, next)
}

// panicOnce is a Tracer that panics on its nth Emit, exactly once —
// injected through Request.Tracer it detonates inside the engine, where
// core.SolveCtx's recover converts it to *core.PanicError.
type panicOnce struct {
	after int64
	seen  atomic.Int64
	fired atomic.Bool
}

func (p *panicOnce) Emit(e obs.Event) {
	if p.fired.Load() {
		return
	}
	if p.seen.Add(1) > p.after && p.fired.CompareAndSwap(false, true) {
		panic("injected tracer fault")
	}
}

func TestPanicRestartOnce(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	m, jw := durableManager(t, dir, reg, 50*time.Millisecond)
	defer jw.Close()

	sr := SubmitRequest{Engine: "mbrim-seq", K: 20, Seed: 3, Chips: 4, DurationNS: 4000}
	req, err := m.buildRequest(&sr)
	if err != nil {
		t.Fatal(err)
	}
	req.Tracer = &panicOnce{after: 40}
	spec, _ := json.Marshal(&sr)
	r, err := m.SubmitWith(context.Background(), req, SubmitOptions{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, r)
	st := r.Status()
	if st.State != StateCompleted {
		t.Fatalf("state = %s, want completed after one supervised restart", st.State)
	}
	if st.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1", st.Restarts)
	}
	if n := reg.Snapshot().Counters["runs.restarts_total"]; n != 1 {
		t.Fatalf("runs.restarts_total = %d, want 1", n)
	}
	// The restart is on the journal.
	jw.Close()
	rep, err := journal.Replay(filepath.Join(dir, "run.journal"))
	if err != nil {
		t.Fatal(err)
	}
	sawRestart := false
	for _, rec := range rep.Records {
		if rec.Type == journal.TypeRestart && rec.ID == r.ID() {
			sawRestart = true
		}
	}
	if !sawRestart {
		t.Fatal("no restart record journaled")
	}

	// Restart-once means once: a run that panics deterministically on
	// every attempt fails instead of looping.
	req2, _ := m.buildRequest(&sr)
	req2.Tracer = &alwaysPanic{}
	r2, err := m.SubmitWith(context.Background(), req2, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, r2)
	if st := r2.Status(); st.State != StateFailed {
		t.Fatalf("deterministic panicker state = %s, want failed", st.State)
	}
}

type alwaysPanic struct{}

func (alwaysPanic) Emit(obs.Event) { panic("deterministic fault") }
